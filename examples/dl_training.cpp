// Example: projecting distributed training speedup for a custom deep
// learning workload (the §5.4.2 methodology as a reusable tool).
//
// Define your model's gradient-bucket mix and its %time-blocked-on-
// allreduce, and the library projects how much GPU-TN (or GDS) would speed
// up training on a simulated cluster.
//
// Usage: dl_training [nodes] [pct_blocked]
#include <cstdio>
#include <cstdlib>

#include "workloads/dl_projection.hpp"

using namespace gputn;
using namespace gputn::workloads;

int main(int argc, char** argv) {
  int nodes = argc > 1 ? std::atoi(argv[1]) : 8;
  double blocked = argc > 2 ? std::atof(argv[2]) : 0.35;
  if (nodes < 2 || blocked <= 0.0 || blocked >= 1.0) {
    std::fprintf(stderr, "usage: %s [nodes>=2] [0<pct_blocked<1]\n", argv[0]);
    return 1;
  }

  // A custom "transformer-ish" workload: medium buckets, reduction-heavy.
  DlWorkload custom;
  custom.name = "Custom";
  custom.domain = "User model";
  custom.pct_blocked = blocked;
  custom.reductions = 100000;
  custom.bucket_weight = {0.05, 0.15, 0.40, 0.30, 0.10};

  cluster::SystemConfig sys = cluster::SystemConfig::table2();
  AllreduceLatencyModel model(sys, nodes);

  std::printf("Projected training speedup, %d nodes, %.0f%% blocked on "
              "allreduce under HDN\n\n",
              nodes, blocked * 100);
  std::printf("%-8s %18s %18s %10s\n", "strategy", "comm (s/run)",
              "app time (s/run)", "speedup");

  std::map<Strategy, double> comm;
  for (Strategy s : kAllStrategies) {
    double total = 0.0;
    for (std::size_t b = 0; b < kBucketElems.size(); ++b) {
      if (custom.bucket_weight[b] <= 0.0) continue;
      double calls =
          custom.bucket_weight[b] * static_cast<double>(custom.reductions);
      total += calls * sim::to_sec(model.latency(s, kBucketElems[b]));
    }
    comm[s] = total;
  }
  double compute = comm[Strategy::kHdn] * (1.0 - blocked) / blocked;
  double base = compute + comm[Strategy::kCpu];
  for (Strategy s : kAllStrategies) {
    double app = compute + comm[s];
    std::printf("%-8s %18.3f %18.3f %9.3fx\n", strategy_name(s), comm[s], app,
                base / app);
  }
  std::printf(
      "\nRule of thumb from the paper: GPU-TN helps most when reductions\n"
      "are frequent and small-to-medium — exactly where kernel-boundary\n"
      "overheads dominate the wire time.\n");
  return 0;
}

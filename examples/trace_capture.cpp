// Example: capture a Chrome-tracing timeline of a GPU-TN exchange.
//
// Runs the quickstart flow with tracing enabled and writes
// gputn_trace.json — open it at chrome://tracing or https://ui.perfetto.dev
// to see the kernel phases, the NIC command pipeline, and the trigger
// match/fire events on separate lanes per node.
//
// Usage: trace_capture [output.json]
#include <cstdio>

#include "cluster/cluster.hpp"
#include "sim/sync.hpp"
#include "sim/trace.hpp"

using namespace gputn;

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "gputn_trace.json";

  sim::Simulator sim;
  cluster::SystemConfig config = cluster::SystemConfig::table2();
  config.dram_bytes = 8u << 20;
  cluster::Cluster cluster(sim, config, 2);
  sim::TraceRecorder trace;
  cluster.enable_tracing(trace);

  auto& a = cluster.node(0);
  auto& b = cluster.node(1);
  constexpr std::uint64_t kBytes = 8192;
  constexpr int kWgs = 8;
  mem::Addr src = a.memory().alloc(kBytes);
  mem::Addr dst = b.memory().alloc(kBytes);
  mem::Addr flag = b.rt().alloc_flag();

  sim.spawn(
      [](cluster::Node& n, mem::Addr s, mem::Addr d, mem::Addr f)
          -> sim::Task<> {
        nic::PutDesc put;
        put.target = 1;
        put.local_addr = s;
        put.bytes = kBytes;
        put.remote_addr = d;
        put.remote_flag = f;
        co_await n.rt().trig_put(/*tag=*/1, /*threshold=*/kWgs, put);
        mem::Addr trig = n.rt().trigger_addr();
        gpu::KernelDesc k;
        k.name = "producer";
        k.num_wgs = kWgs;
        k.fn = [trig, s](gpu::WorkGroupCtx& ctx) -> sim::Task<> {
          ctx.store_data<std::uint64_t>(s + ctx.wg_id() * 8, 0xABC0 + ctx.wg_id());
          co_await ctx.compute_mem(kBytes / ctx.num_wgs());
          co_await ctx.barrier();
          co_await ctx.fence_system();
          co_await ctx.store_system(trig, 1);
        };
        co_await n.rt().launch_sync(std::move(k));
      }(a, src, dst, flag),
      "host0");
  sim.spawn(
      [](cluster::Node& n, mem::Addr f) -> sim::Task<> {
        co_await n.cpu().wait_value_ge(f, 1);
      }(b, flag),
      "host1");
  sim.run();

  if (!trace.write_json(path)) {
    std::fprintf(stderr, "failed to write %s\n", path);
    return 1;
  }
  std::printf("captured %zu events over %.2f us -> %s\n", trace.event_count(),
              sim::to_us(sim.now()), path);
  std::printf("open chrome://tracing or https://ui.perfetto.dev and load it\n");
  return 0;
}

// Example: ring Allreduce on a cluster of GPUs (Figure 2 / §5.4.1).
//
// Sums an fp32 vector across all nodes with the libNBC-style ring schedule
// under each strategy and verifies every rank ends with the exact
// sequential reduction. With GPU-TN the whole collective runs inside one
// persistent kernel: work-groups reduce arriving slices and trigger the
// next hop's puts from inside the kernel.
//
// Usage: allreduce_ring [nodes] [megabytes]
#include <cstdio>
#include <cstdlib>

#include "workloads/allreduce.hpp"

using namespace gputn;
using namespace gputn::workloads;

int main(int argc, char** argv) {
  int nodes = argc > 1 ? std::atoi(argv[1]) : 8;
  double mb = argc > 2 ? std::atof(argv[2]) : 8.0;
  if (nodes < 2 || mb <= 0) {
    std::fprintf(stderr, "usage: %s [nodes>=2] [megabytes>0]\n", argv[0]);
    return 1;
  }
  std::size_t elements = static_cast<std::size_t>(mb * 1024 * 1024 / 4);

  std::printf("Ring Allreduce: %.1f MB fp32 sum across %d nodes\n\n", mb,
              nodes);
  std::printf("%-8s %14s %16s %10s\n", "strategy", "total (us)",
              "alg bandwidth", "result");

  for (Strategy s : kAllStrategies) {
    AllreduceConfig cfg;
    cfg.strategy = s;
    cfg.nodes = nodes;
    cfg.elements = elements;
    AllreduceResult res = run_allreduce(cfg);
    // Algorithmic bandwidth: 2*(N-1)/N * bytes / time (the standard metric).
    double alg_bw = 2.0 * (nodes - 1) / nodes *
                    static_cast<double>(elements) * 4.0 /
                    sim::to_sec(res.total_time) / 1e9;
    std::printf("%-8s %14.0f %13.2f GB/s %10s\n", strategy_name(s),
                sim::to_us(res.total_time), alg_bw,
                res.correct ? "exact" : "MISMATCH");
  }
  std::printf(
      "\nEvery rank's vector equals the sequential sum (fp32-exact inputs).\n"
      "Note GPU-TN's bandwidth edge: slices pipeline compute with transfer\n"
      "and no kernel boundaries separate the %d ring steps.\n",
      2 * (nodes - 1));
  return 0;
}

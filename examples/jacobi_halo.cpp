// Example: the workload the paper's introduction motivates — an iterative
// stencil whose halo exchange is driven four different ways (§5.3).
//
// Runs a 2-D Jacobi relaxation at a few local grid sizes under every
// strategy, verifies the numerics against the scalar reference, and prints
// the per-iteration times so the kernel-boundary cost is visible.
//
// Usage: jacobi_halo [N] [iterations]
#include <cstdio>
#include <cstdlib>

#include "workloads/jacobi.hpp"

using namespace gputn;
using namespace gputn::workloads;

int main(int argc, char** argv) {
  int n = argc > 1 ? std::atoi(argv[1]) : 128;
  int iterations = argc > 2 ? std::atoi(argv[2]) : 10;
  if (n < 4 || iterations < 1) {
    std::fprintf(stderr, "usage: %s [N>=4] [iterations>=1]\n", argv[0]);
    return 1;
  }

  std::printf("2-D Jacobi relaxation, %dx%d local grid per node, 4 nodes "
              "(2x2 torus), %d iterations\n\n",
              n, n, iterations);
  std::printf("%-8s %14s %14s %10s\n", "strategy", "total (us)", "us/iter",
              "numerics");

  double hdn_per_iter = 0.0;
  for (Strategy s : kAllStrategies) {
    JacobiConfig cfg;
    cfg.strategy = s;
    cfg.n = n;
    cfg.iterations = iterations;
    JacobiResult res = run_jacobi(cfg);
    if (s == Strategy::kHdn) hdn_per_iter = sim::to_us(res.per_iteration());
    std::printf("%-8s %14.2f %14.2f %10s\n", strategy_name(s),
                sim::to_us(res.total_time), sim::to_us(res.per_iteration()),
                res.correct ? "verified" : "MISMATCH");
  }

  JacobiConfig cfg;
  cfg.strategy = Strategy::kGpuTn;
  cfg.n = n;
  cfg.iterations = iterations;
  JacobiResult tn = run_jacobi(cfg);
  std::printf("\nGPU-TN runs ONE persistent kernel for all %d iterations;\n"
              "HDN re-launches per iteration (3 us of launch+teardown each).\n"
              "Speedup vs HDN at this size: %.2fx\n",
              iterations, hdn_per_iter / sim::to_us(tn.per_iteration()));
  return 0;
}

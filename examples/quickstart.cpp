// Quickstart: the complete GPU-TN flow from Figure 6 (host) and Figure 7c
// (kernel) on a simulated 2-node cluster.
//
//   1. RdmaInit      -> build a Cluster (CPU + GPU + NIC + trigger unit per
//                       node, star fabric)
//   2. TrigPut       -> rt().trig_put(tag, threshold, put)
//   3. GetTriggerAddr-> rt().trigger_addr()
//   4. LaunchKern    -> rt().launch(...); the kernel writes its buffer,
//                       issues a release fence, and stores the tag to the
//                       trigger address
//   5. The NIC matches the tag, counts to the threshold, and fires the put;
//      the target observes completion through a NIC-written flag.
//
// Build: cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "cluster/cluster.hpp"
#include "sim/sync.hpp"

using namespace gputn;

int main() {
  sim::Simulator sim;
  cluster::SystemConfig config = cluster::SystemConfig::table2();
  config.dram_bytes = 8u << 20;
  cluster::Cluster cluster(sim, config, /*nodes=*/2);

  auto& initiator = cluster.node(0);
  auto& target = cluster.node(1);

  // A message buffer on the initiator and a landing zone + completion flag
  // on the target.
  constexpr std::uint64_t kBytes = 4096;
  constexpr int kWorkGroups = 8;
  mem::Addr send_buf = initiator.memory().alloc(kBytes);
  mem::Addr recv_buf = target.memory().alloc(kBytes);
  mem::Addr done_flag = target.rt().alloc_flag();

  // Host-side program on node 0 (Figure 6).
  sim.spawn(
      [](cluster::Node& node, mem::Addr send_buf, mem::Addr recv_buf,
         mem::Addr done_flag) -> sim::Task<> {
        // (2) Register the triggered put: fire when every work-group of the
        // kernel has stored the tag (kernel-level granularity, Figure 7c).
        nic::PutDesc put;
        put.target = 1;
        put.local_addr = send_buf;
        put.bytes = kBytes;
        put.remote_addr = recv_buf;
        put.remote_flag = done_flag;
        co_await node.rt().trig_put(/*tag=*/42, /*threshold=*/kWorkGroups,
                                    put);

        // (3) The memory-mapped trigger address, passed as a kernel arg.
        mem::Addr trig_addr = node.rt().trigger_addr();

        // (4) The kernel: each work-group fills its slice of the buffer,
        // then the leader stores the tag after a barrier + release fence.
        gpu::KernelDesc kernel;
        kernel.name = "quickstart";
        kernel.num_wgs = kWorkGroups;
        kernel.fn = [trig_addr, send_buf](gpu::WorkGroupCtx& ctx)
            -> sim::Task<> {
          std::uint64_t slice = kBytes / ctx.num_wgs();
          for (std::uint64_t i = 0; i < slice / 8; ++i) {
            ctx.store_data<std::uint64_t>(
                send_buf + ctx.wg_id() * slice + i * 8,
                0xC0FFEE00 + ctx.wg_id());
          }
          co_await ctx.compute_mem(slice);   // the "do work" part
          co_await ctx.barrier();            // work_group_barrier(...)
          co_await ctx.fence_system();       // release to system scope
          co_await ctx.store_system(trig_addr, /*tag=*/42);
        };
        co_await node.rt().launch_sync(std::move(kernel));
        std::printf("[%8.3f us] initiator: kernel complete\n",
                    sim::to_us(node.gpu().simulator().now()));
      }(initiator, send_buf, recv_buf, done_flag),
      "initiator-host");

  // Host-side program on node 1: poll the NIC-written completion flag.
  sim.spawn(
      [](cluster::Node& node, mem::Addr flag, mem::Addr recv_buf)
          -> sim::Task<> {
        co_await node.cpu().wait_value_ge(flag, 1);
        std::printf("[%8.3f us] target: payload landed, first word = 0x%llx\n",
                    sim::to_us(node.cpu().simulator().now()),
                    static_cast<unsigned long long>(
                        node.memory().load<std::uint64_t>(recv_buf)));
      }(target, done_flag, recv_buf),
      "target-host");

  sim.run();

  std::printf("\ntriggers received by NIC : %llu\n",
              static_cast<unsigned long long>(
                  initiator.triggered().triggers_received()));
  std::printf("puts delivered           : %llu\n",
              static_cast<unsigned long long>(
                  target.nic().stats().counter_value("puts_received")));
  std::printf("memory-model hazards     : %llu (0 = kernel fenced correctly)\n",
              static_cast<unsigned long long>(
                  initiator.gpu().memory_model_hazards()));
  return 0;
}

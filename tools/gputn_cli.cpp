// gputn — command-line driver for the simulation experiments.
//
//   gputn config     [--loss P]
//   gputn microbench [--strategy CPU|HDN|GDS|GPU-TN|GHN|GNN]
//   gputn jacobi     [--strategy S] [--n N] [--iterations K] [--overlap]
//   gputn allreduce  [--strategy S] [--nodes N] [--mb M] [--offload]
//   gputn broadcast  [--drive HDN|GPU-TN|NIC-chain] [--nodes N] [--mb M]
//                    [--chunks C]
//
// jacobi/allreduce/broadcast additionally accept fault injection:
//   --loss P   uniform per-packet loss rate on every link (e.g. 0.01);
//              enables NIC reliable delivery and prints fault/retry stats
//   --seed S   fault-injection RNG seed (default 1)
//
// Exit code is nonzero on verification failure. For Chrome-tracing
// timeline capture, see examples/trace_capture.cpp.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "workloads/allreduce.hpp"
#include "workloads/broadcast.hpp"
#include "workloads/jacobi.hpp"
#include "workloads/microbench.hpp"

using namespace gputn;
using namespace gputn::workloads;

namespace {

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: gputn <config|microbench|jacobi|allreduce|broadcast> [opts]\n"
      "  common: --strategy CPU|HDN|GDS|GPU-TN (+GHN|GNN for microbench)\n"
      "  jacobi: --n <grid> --iterations <k> --overlap\n"
      "  allreduce: --nodes <n> --mb <size> --offload\n"
      "  broadcast: --drive HDN|GPU-TN|NIC-chain --nodes <n> --mb <size> "
      "--chunks <c>\n"
      "  fault injection (jacobi/allreduce/broadcast): --loss <rate> "
      "--seed <s>\n");
  std::exit(2);
}

/// Tiny flag parser: --key value and boolean --key.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) usage();
      key = key.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }
  bool has(const std::string& k) const { return values_.count(k) > 0; }
  std::string get(const std::string& k, const std::string& dflt) const {
    auto it = values_.find(k);
    return it != values_.end() && !it->second.empty() ? it->second : dflt;
  }
  long get_int(const std::string& k, long dflt) const {
    auto it = values_.find(k);
    return it != values_.end() ? std::atol(it->second.c_str()) : dflt;
  }
  double get_double(const std::string& k, double dflt) const {
    auto it = values_.find(k);
    return it != values_.end() ? std::atof(it->second.c_str()) : dflt;
  }

 private:
  std::map<std::string, std::string> values_;
};

Strategy parse_strategy(const std::string& s) {
  for (Strategy st : kTaxonomyStrategies) {
    if (s == strategy_name(st)) return st;
  }
  std::fprintf(stderr, "unknown strategy '%s'\n", s.c_str());
  std::exit(2);
}

BroadcastDrive parse_drive(const std::string& s) {
  for (BroadcastDrive d : {BroadcastDrive::kHdn, BroadcastDrive::kGpuTn,
                           BroadcastDrive::kNicChain}) {
    if (s == broadcast_drive_name(d)) return d;
  }
  std::fprintf(stderr, "unknown drive '%s'\n", s.c_str());
  std::exit(2);
}

/// Table 2, plus --loss/--seed fault injection when requested.
cluster::SystemConfig system_config(const Args& args) {
  return cluster::SystemConfig::table2_with_loss(
      args.get_double("loss", 0.0),
      static_cast<std::uint64_t>(args.get_int("seed", 1)));
}

/// One summary line of the fault/retry counters a lossy run produced.
void print_net_stats(const Args& args, const sim::StatRegistry& s) {
  if (!args.has("loss")) return;
  std::printf(
      "  faults: %llu dropped, %llu corrupted; recovery: %llu retransmits, "
      "%llu acks, %llu nacks\n",
      static_cast<unsigned long long>(s.counter_value("fault.drops")),
      static_cast<unsigned long long>(s.counter_value("fault.corruptions")),
      static_cast<unsigned long long>(s.counter_value("rel.retransmits")),
      static_cast<unsigned long long>(s.counter_value("rel.acks_tx")),
      static_cast<unsigned long long>(s.counter_value("rel.nacks_tx")));
}

int cmd_config(const Args& args) {
  std::printf("%s", system_config(args).describe().c_str());
  return 0;
}

int cmd_microbench(const Args& args) {
  Strategy s = parse_strategy(args.get("strategy", "GPU-TN"));
  MicrobenchResult res = run_microbench(s);
  std::printf("%s one-cache-line microbenchmark:\n", strategy_name(s));
  for (const auto& ph : res.initiator_phases) {
    std::printf("  %-10s %.3f us\n", ph.label.c_str(), ph.us());
  }
  std::printf("  target completion   %.3f us\n",
              sim::to_us(res.target_completion));
  std::printf("  initiator complete  %.3f us\n",
              sim::to_us(res.initiator_completion));
  std::printf("  payload %s\n", res.payload_correct ? "verified" : "WRONG");
  return res.payload_correct ? 0 : 1;
}

int cmd_jacobi(const Args& args) {
  JacobiConfig cfg;
  cfg.strategy = parse_strategy(args.get("strategy", "GPU-TN"));
  cfg.n = static_cast<int>(args.get_int("n", 256));
  cfg.iterations = static_cast<int>(args.get_int("iterations", 10));
  cfg.overlap = args.has("overlap");
  JacobiResult res = run_jacobi(cfg, system_config(args));
  std::printf("%s Jacobi %dx%d x%d iters: %.2f us total, %.2f us/iter, %s\n",
              strategy_name(cfg.strategy), cfg.n, cfg.n, cfg.iterations,
              sim::to_us(res.total_time), sim::to_us(res.per_iteration()),
              res.correct ? "verified" : "NUMERICS MISMATCH");
  print_net_stats(args, res.net_stats);
  return res.correct ? 0 : 1;
}

int cmd_allreduce(const Args& args) {
  AllreduceConfig cfg;
  cfg.strategy = parse_strategy(args.get("strategy", "GPU-TN"));
  cfg.nodes = static_cast<int>(args.get_int("nodes", 8));
  cfg.elements =
      static_cast<std::size_t>(args.get_double("mb", 8.0) * 1024 * 1024 / 4);
  cfg.nic_offload_allgather = args.has("offload");
  AllreduceResult res = run_allreduce(cfg, system_config(args));
  std::printf("%s allreduce, %zu fp32 x %d nodes%s: %.1f us, %s\n",
              strategy_name(cfg.strategy), cfg.elements, cfg.nodes,
              cfg.nic_offload_allgather ? " (NIC-offloaded allgather)" : "",
              sim::to_us(res.total_time),
              res.correct ? "exact" : "REDUCTION MISMATCH");
  print_net_stats(args, res.net_stats);
  return res.correct ? 0 : 1;
}

int cmd_broadcast(const Args& args) {
  BroadcastConfig cfg;
  cfg.drive = parse_drive(args.get("drive", "NIC-chain"));
  cfg.nodes = static_cast<int>(args.get_int("nodes", 8));
  cfg.bytes =
      static_cast<std::size_t>(args.get_double("mb", 1.0) * 1024 * 1024);
  cfg.chunks = static_cast<int>(args.get_int("chunks", 16));
  BroadcastResult res = run_broadcast(cfg, system_config(args));
  std::printf("%s broadcast, %zu B x %d nodes, %d chunks: %.1f us, %s\n",
              broadcast_drive_name(cfg.drive), cfg.bytes, cfg.nodes,
              cfg.chunks, sim::to_us(res.total_time),
              res.correct ? "verified" : "DATA MISMATCH");
  print_net_stats(args, res.net_stats);
  return res.correct ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  std::string cmd = argv[1];
  Args args(argc, argv, 2);
  // Simulation failures (deadlock watchdog, reliability giving up under a
  // pathological loss rate) surface as exceptions; report them as a normal
  // CLI error instead of an abort.
  try {
    if (cmd == "config") return cmd_config(args);
    if (cmd == "microbench") return cmd_microbench(args);
    if (cmd == "jacobi") return cmd_jacobi(args);
    if (cmd == "allreduce") return cmd_allreduce(args);
    if (cmd == "broadcast") return cmd_broadcast(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gputn: %s\n", e.what());
    return 1;
  }
  usage();
}

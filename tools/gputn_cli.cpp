// gputn — command-line driver for the simulation experiments.
//
//   gputn config     [--loss P]
//   gputn <workload> [workload options]
//
// Workloads come from workloads::Registry (microbench, jacobi, allreduce,
// broadcast); `gputn` with no arguments lists them. Shared options:
//   --strategy S   driving strategy where the workload takes one
//   --nodes N      node count where the workload is size-flexible
//
// jacobi/allreduce/broadcast additionally accept fault injection:
//   --loss P   uniform per-packet loss rate on every link (e.g. 0.01);
//              enables NIC reliable delivery and prints fault/retry stats
//   --seed S   fault-injection RNG seed (default 1)
//
// Every workload also accepts observability flags:
//   --trace FILE       write a Chrome-trace (Perfetto) JSON timeline with
//                      per-message flow arrows
//   --stats-json FILE  write counters + latency histograms as JSON
//   --log-level L      trace|debug|info|warn|error|off (default warn)
//
// Exit code is nonzero on verification failure or bad arguments.
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "sim/log.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "workloads/registry.hpp"

using namespace gputn;
using namespace gputn::workloads;

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr, "usage: gputn <command> [opts]\n\n  config");
  std::fprintf(stderr, "%-12s print the simulated system parameters\n", "");
  for (const auto& e : Registry::instance().entries()) {
    std::fprintf(stderr, "  %-18s %s\n", e.name.c_str(),
                 e.description.c_str());
    std::fprintf(stderr, "  %-18s   %s\n", "", e.options_help.c_str());
  }
  std::fprintf(
      stderr,
      "\n  fault injection (jacobi/allreduce/broadcast): --loss <rate> "
      "--seed <s>\n"
      "  observability (any workload): --trace <file> --stats-json <file> "
      "--log-level trace|debug|info|warn|error|off\n");
  std::exit(2);
}

/// Tiny flag parser: --key value and boolean --key.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) usage();
      key = key.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }
  bool has(const std::string& k) const { return values_.count(k) > 0; }
  std::string get(const std::string& k, const std::string& dflt) const {
    auto it = values_.find(k);
    return it != values_.end() && !it->second.empty() ? it->second : dflt;
  }
  const std::map<std::string, std::string>& all() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

void apply_log_level(const Args& args) {
  if (!args.has("log-level")) return;
  std::string l = args.get("log-level", "warn");
  if (l == "trace") {
    sim::LogConfig::set_level(sim::LogLevel::kTrace);
  } else if (l == "debug") {
    sim::LogConfig::set_level(sim::LogLevel::kDebug);
  } else if (l == "info") {
    sim::LogConfig::set_level(sim::LogLevel::kInfo);
  } else if (l == "warn") {
    sim::LogConfig::set_level(sim::LogLevel::kWarn);
  } else if (l == "error") {
    sim::LogConfig::set_level(sim::LogLevel::kError);
  } else if (l == "off") {
    sim::LogConfig::set_level(sim::LogLevel::kOff);
  } else {
    std::fprintf(stderr, "unknown log level '%s'\n", l.c_str());
    std::exit(2);
  }
}

/// --trace / --stats-json handling shared by every workload subcommand.
/// Owns the TraceRecorder for the run and writes both artifacts at the end.
class Observability {
 public:
  explicit Observability(const Args& args)
      : trace_path_(args.get("trace", "")),
        stats_path_(args.get("stats-json", "")) {}

  /// Recorder to hand to the workload config, or nullptr when not requested.
  sim::TraceRecorder* trace() {
    return trace_path_.empty() ? nullptr : &recorder_;
  }

  /// Write the requested artifacts; returns 0, or 1 on I/O failure.
  int finish(const ResultBase& res) {
    int rc = 0;
    if (!trace_path_.empty()) {
      if (recorder_.write_json(trace_path_)) {
        std::printf("  trace: %s (%zu events)\n", trace_path_.c_str(),
                    recorder_.event_count());
      } else {
        std::fprintf(stderr, "gputn: cannot write trace to '%s'\n",
                     trace_path_.c_str());
        rc = 1;
      }
    }
    if (!stats_path_.empty()) {
      std::ofstream out(stats_path_);
      out << res.stats_json() << "\n";
      if (out.good()) {
        std::printf("  stats: %s\n", stats_path_.c_str());
      } else {
        std::fprintf(stderr, "gputn: cannot write stats to '%s'\n",
                     stats_path_.c_str());
        rc = 1;
      }
    }
    return rc;
  }

 private:
  std::string trace_path_;
  std::string stats_path_;
  sim::TraceRecorder recorder_;
};

/// The RunOptions fields and driver-level flags everything shares; the rest
/// of the command line becomes the workload's WorkloadParams.
bool is_driver_key(const std::string& k) {
  return k == "nodes" || k == "trace" || k == "stats-json" ||
         k == "log-level" || k == "loss" || k == "seed";
}

int run_workload(const WorkloadEntry& entry, const Args& args) {
  WorkloadParams params;
  for (const auto& [k, v] : args.all()) {
    if (!is_driver_key(k)) params.set(k, v);
  }

  Observability obs(args);
  RunOptions opts;  // nodes stays 0 (= workload default) without --nodes
  opts.trace = obs.trace();
  if (args.has("nodes")) {
    WorkloadParams n;
    n.set("nodes", args.get("nodes", ""));
    opts.nodes = static_cast<int>(n.get_int("nodes", 0, 2, 1 << 16));
  }

  // Table 2, plus --loss/--seed fault injection when requested. Validated
  // through WorkloadParams so `--loss lots` is a usage error, not 0.0.
  WorkloadParams fault;
  if (args.has("loss")) fault.set("loss", args.get("loss", ""));
  if (args.has("seed")) fault.set("seed", args.get("seed", ""));
  cluster::SystemConfig sys = cluster::SystemConfig::table2_with_loss(
      fault.get_double("loss", 0.0, 0.0, 1.0),
      static_cast<std::uint64_t>(fault.get_int("seed", 1, 0, LONG_MAX)));

  ResultBase res = entry.run(opts, params, sys);
  int obs_rc = obs.finish(res);
  return res.correct ? obs_rc : 1;
}

}  // namespace

int main(int argc, char** argv) {
  register_builtin_workloads(Registry::instance());
  if (argc < 2) usage();
  std::string cmd = argv[1];
  Args args(argc, argv, 2);
  apply_log_level(args);
  // Bad parameters and simulation failures (deadlock watchdog, reliability
  // giving up under a pathological loss rate) surface as exceptions; report
  // them as a normal CLI error instead of an abort.
  try {
    if (cmd == "config") {
      WorkloadParams fault;
      if (args.has("loss")) fault.set("loss", args.get("loss", ""));
      if (args.has("seed")) fault.set("seed", args.get("seed", ""));
      auto sys = cluster::SystemConfig::table2_with_loss(
          fault.get_double("loss", 0.0, 0.0, 1.0),
          static_cast<std::uint64_t>(fault.get_int("seed", 1, 0, LONG_MAX)));
      std::printf("%s", sys.describe().c_str());
      return 0;
    }
    if (const WorkloadEntry* entry = Registry::instance().find(cmd)) {
      return run_workload(*entry, args);
    }
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "gputn: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gputn: %s\n", e.what());
    return 1;
  }
  usage();
}

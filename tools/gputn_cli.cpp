// gputn — command-line driver for the simulation experiments.
//
//   gputn config     [--loss P]
//   gputn microbench [--strategy CPU|HDN|GDS|GPU-TN|GHN|GNN]
//   gputn jacobi     [--strategy S] [--n N] [--iterations K] [--overlap]
//   gputn allreduce  [--strategy S] [--nodes N] [--mb M] [--offload]
//   gputn broadcast  [--drive HDN|GPU-TN|NIC-chain] [--nodes N] [--mb M]
//                    [--chunks C]
//
// jacobi/allreduce/broadcast additionally accept fault injection:
//   --loss P   uniform per-packet loss rate on every link (e.g. 0.01);
//              enables NIC reliable delivery and prints fault/retry stats
//   --seed S   fault-injection RNG seed (default 1)
//
// Every subcommand that runs a simulation also accepts observability flags:
//   --trace FILE       write a Chrome-trace (Perfetto) JSON timeline with
//                      per-message flow arrows
//   --stats-json FILE  write counters + latency histograms as JSON
//   --log-level L      trace|debug|info|warn|error|off (default warn)
//
// Exit code is nonzero on verification failure.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "sim/log.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "workloads/allreduce.hpp"
#include "workloads/broadcast.hpp"
#include "workloads/jacobi.hpp"
#include "workloads/microbench.hpp"

using namespace gputn;
using namespace gputn::workloads;

namespace {

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: gputn <config|microbench|jacobi|allreduce|broadcast> [opts]\n"
      "  common: --strategy CPU|HDN|GDS|GPU-TN (+GHN|GNN for microbench)\n"
      "  jacobi: --n <grid> --iterations <k> --overlap\n"
      "  allreduce: --nodes <n> --mb <size> --offload\n"
      "  broadcast: --drive HDN|GPU-TN|NIC-chain --nodes <n> --mb <size> "
      "--chunks <c>\n"
      "  fault injection (jacobi/allreduce/broadcast): --loss <rate> "
      "--seed <s>\n"
      "  observability (any workload): --trace <file> --stats-json <file> "
      "--log-level trace|debug|info|warn|error|off\n");
  std::exit(2);
}

/// Tiny flag parser: --key value and boolean --key.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) usage();
      key = key.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }
  bool has(const std::string& k) const { return values_.count(k) > 0; }
  std::string get(const std::string& k, const std::string& dflt) const {
    auto it = values_.find(k);
    return it != values_.end() && !it->second.empty() ? it->second : dflt;
  }
  long get_int(const std::string& k, long dflt) const {
    auto it = values_.find(k);
    return it != values_.end() ? std::atol(it->second.c_str()) : dflt;
  }
  double get_double(const std::string& k, double dflt) const {
    auto it = values_.find(k);
    return it != values_.end() ? std::atof(it->second.c_str()) : dflt;
  }

 private:
  std::map<std::string, std::string> values_;
};

Strategy parse_strategy(const std::string& s) {
  for (Strategy st : kTaxonomyStrategies) {
    if (s == strategy_name(st)) return st;
  }
  std::fprintf(stderr, "unknown strategy '%s'\n", s.c_str());
  std::exit(2);
}

BroadcastDrive parse_drive(const std::string& s) {
  for (BroadcastDrive d : {BroadcastDrive::kHdn, BroadcastDrive::kGpuTn,
                           BroadcastDrive::kNicChain}) {
    if (s == broadcast_drive_name(d)) return d;
  }
  std::fprintf(stderr, "unknown drive '%s'\n", s.c_str());
  std::exit(2);
}

/// Table 2, plus --loss/--seed fault injection when requested.
cluster::SystemConfig system_config(const Args& args) {
  return cluster::SystemConfig::table2_with_loss(
      args.get_double("loss", 0.0),
      static_cast<std::uint64_t>(args.get_int("seed", 1)));
}

/// One summary line of the fault/retry counters a lossy run produced.
void print_net_stats(const Args& args, const sim::StatRegistry& s) {
  if (!args.has("loss")) return;
  std::printf(
      "  faults: %llu dropped, %llu corrupted; recovery: %llu retransmits, "
      "%llu acks, %llu nacks\n",
      static_cast<unsigned long long>(s.counter_value("fault.drops")),
      static_cast<unsigned long long>(s.counter_value("fault.corruptions")),
      static_cast<unsigned long long>(s.counter_value("rel.retransmits")),
      static_cast<unsigned long long>(s.counter_value("rel.acks_tx")),
      static_cast<unsigned long long>(s.counter_value("rel.nacks_tx")));
}

void apply_log_level(const Args& args) {
  if (!args.has("log-level")) return;
  std::string l = args.get("log-level", "warn");
  if (l == "trace") {
    sim::LogConfig::set_level(sim::LogLevel::kTrace);
  } else if (l == "debug") {
    sim::LogConfig::set_level(sim::LogLevel::kDebug);
  } else if (l == "info") {
    sim::LogConfig::set_level(sim::LogLevel::kInfo);
  } else if (l == "warn") {
    sim::LogConfig::set_level(sim::LogLevel::kWarn);
  } else if (l == "error") {
    sim::LogConfig::set_level(sim::LogLevel::kError);
  } else if (l == "off") {
    sim::LogConfig::set_level(sim::LogLevel::kOff);
  } else {
    std::fprintf(stderr, "unknown log level '%s'\n", l.c_str());
    std::exit(2);
  }
}

/// --trace / --stats-json handling shared by every workload subcommand.
/// Owns the TraceRecorder for the run and writes both artifacts at the end.
class Observability {
 public:
  explicit Observability(const Args& args)
      : trace_path_(args.get("trace", "")),
        stats_path_(args.get("stats-json", "")) {}

  /// Recorder to hand to the workload config, or nullptr when not requested.
  sim::TraceRecorder* trace() {
    return trace_path_.empty() ? nullptr : &recorder_;
  }

  /// Write the requested artifacts; returns 0, or 1 on I/O failure.
  int finish(const sim::StatRegistry& stats) {
    int rc = 0;
    if (!trace_path_.empty()) {
      if (recorder_.write_json(trace_path_)) {
        std::printf("  trace: %s (%zu events)\n", trace_path_.c_str(),
                    recorder_.event_count());
      } else {
        std::fprintf(stderr, "gputn: cannot write trace to '%s'\n",
                     trace_path_.c_str());
        rc = 1;
      }
    }
    if (!stats_path_.empty()) {
      std::ofstream out(stats_path_);
      out << sim::stats_json(stats) << "\n";
      if (out.good()) {
        std::printf("  stats: %s\n", stats_path_.c_str());
      } else {
        std::fprintf(stderr, "gputn: cannot write stats to '%s'\n",
                     stats_path_.c_str());
        rc = 1;
      }
    }
    return rc;
  }

 private:
  std::string trace_path_;
  std::string stats_path_;
  sim::TraceRecorder recorder_;
};

int cmd_config(const Args& args) {
  std::printf("%s", system_config(args).describe().c_str());
  return 0;
}

int cmd_microbench(const Args& args) {
  Strategy s = parse_strategy(args.get("strategy", "GPU-TN"));
  Observability obs(args);
  MicrobenchResult res =
      run_microbench(s, cluster::SystemConfig::table2(), obs.trace());
  std::printf("%s one-cache-line microbenchmark:\n", strategy_name(s));
  for (const auto& ph : res.initiator_phases) {
    std::printf("  %-10s %.3f us\n", ph.label.c_str(), ph.us());
  }
  std::printf("  target completion   %.3f us\n",
              sim::to_us(res.target_completion));
  std::printf("  initiator complete  %.3f us\n",
              sim::to_us(res.initiator_completion));
  std::printf("  payload %s\n", res.payload_correct ? "verified" : "WRONG");
  int obs_rc = obs.finish(res.net_stats);
  return res.payload_correct ? obs_rc : 1;
}

int cmd_jacobi(const Args& args) {
  JacobiConfig cfg;
  cfg.strategy = parse_strategy(args.get("strategy", "GPU-TN"));
  cfg.n = static_cast<int>(args.get_int("n", 256));
  cfg.iterations = static_cast<int>(args.get_int("iterations", 10));
  cfg.overlap = args.has("overlap");
  Observability obs(args);
  cfg.trace = obs.trace();
  JacobiResult res = run_jacobi(cfg, system_config(args));
  std::printf("%s Jacobi %dx%d x%d iters: %.2f us total, %.2f us/iter, %s\n",
              strategy_name(cfg.strategy), cfg.n, cfg.n, cfg.iterations,
              sim::to_us(res.total_time), sim::to_us(res.per_iteration()),
              res.correct ? "verified" : "NUMERICS MISMATCH");
  print_net_stats(args, res.net_stats);
  int obs_rc = obs.finish(res.net_stats);
  return res.correct ? obs_rc : 1;
}

int cmd_allreduce(const Args& args) {
  AllreduceConfig cfg;
  cfg.strategy = parse_strategy(args.get("strategy", "GPU-TN"));
  cfg.nodes = static_cast<int>(args.get_int("nodes", 8));
  cfg.elements =
      static_cast<std::size_t>(args.get_double("mb", 8.0) * 1024 * 1024 / 4);
  cfg.nic_offload_allgather = args.has("offload");
  Observability obs(args);
  cfg.trace = obs.trace();
  AllreduceResult res = run_allreduce(cfg, system_config(args));
  std::printf("%s allreduce, %zu fp32 x %d nodes%s: %.1f us, %s\n",
              strategy_name(cfg.strategy), cfg.elements, cfg.nodes,
              cfg.nic_offload_allgather ? " (NIC-offloaded allgather)" : "",
              sim::to_us(res.total_time),
              res.correct ? "exact" : "REDUCTION MISMATCH");
  print_net_stats(args, res.net_stats);
  int obs_rc = obs.finish(res.net_stats);
  return res.correct ? obs_rc : 1;
}

int cmd_broadcast(const Args& args) {
  BroadcastConfig cfg;
  cfg.drive = parse_drive(args.get("drive", "NIC-chain"));
  cfg.nodes = static_cast<int>(args.get_int("nodes", 8));
  cfg.bytes =
      static_cast<std::size_t>(args.get_double("mb", 1.0) * 1024 * 1024);
  cfg.chunks = static_cast<int>(args.get_int("chunks", 16));
  Observability obs(args);
  cfg.trace = obs.trace();
  BroadcastResult res = run_broadcast(cfg, system_config(args));
  std::printf("%s broadcast, %zu B x %d nodes, %d chunks: %.1f us, %s\n",
              broadcast_drive_name(cfg.drive), cfg.bytes, cfg.nodes,
              cfg.chunks, sim::to_us(res.total_time),
              res.correct ? "verified" : "DATA MISMATCH");
  print_net_stats(args, res.net_stats);
  int obs_rc = obs.finish(res.net_stats);
  return res.correct ? obs_rc : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  std::string cmd = argv[1];
  Args args(argc, argv, 2);
  apply_log_level(args);
  // Simulation failures (deadlock watchdog, reliability giving up under a
  // pathological loss rate) surface as exceptions; report them as a normal
  // CLI error instead of an abort.
  try {
    if (cmd == "config") return cmd_config(args);
    if (cmd == "microbench") return cmd_microbench(args);
    if (cmd == "jacobi") return cmd_jacobi(args);
    if (cmd == "allreduce") return cmd_allreduce(args);
    if (cmd == "broadcast") return cmd_broadcast(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gputn: %s\n", e.what());
    return 1;
  }
  usage();
}

// gputn — command-line driver for the simulation experiments.
//
//   gputn config     [--loss P]
//   gputn sweep      [--jobs N] [--stats-json FILE]
//   gputn report     FILE... [--baseline FILE] [--threshold PCT] [--top N]
//   gputn analyze    FILE... [--baseline FILE] [--threshold PCT] [--top N]
//                    [--exemplar ID --trace OUT]
//   gputn whatif     WORKLOAD [workload options] [--strategies A,B]
//                    [--knobs K1,K2] [--scales 0.5,2,inf] [--jobs N]
//                    [--json FILE] [--baseline FILE] [--threshold PCT]
//                    [--tolerance PCT] [--top N] [--no-curve]
//   gputn <workload> [workload options]
//
// Workloads come from workloads::Registry (microbench, jacobi, allreduce,
// broadcast); `gputn` with no arguments lists them. Shared options:
//   --strategy S   driving strategy where the workload takes one
//   --nodes N      node count where the workload is size-flexible
//
// jacobi/allreduce/broadcast additionally accept fault injection:
//   --loss P   uniform per-packet loss rate on every link (e.g. 0.01);
//              enables NIC reliable delivery and prints fault/retry stats
//   --seed S   fault-injection RNG seed (default 1)
//
// Parallel experiments (the exp engine):
//   --replicas R   run the workload R times with seeds S, S+1, ... as an
//                  exp::Plan; results are reported in plan order and
//                  --stats-json becomes the merged per-replica JSON
//   --jobs N       worker threads for multi-point runs (replicas / sweep);
//                  0 or absent = hardware concurrency. Output is
//                  bit-identical for every jobs value.
// `gputn sweep` runs the built-in fig09+fig10+ablation mini-sweep through
// the same engine (the plan bench/micro_sweep measures).
//
// Intra-run parallel DES:
//   --shards S     partition one run's cluster across S worker threads
//                  (sim::ShardEngine, conservative lookahead). Every result,
//                  checksum, stat and flight dump is bit-identical to
//                  --shards 1. Single-run only: rejected with --replicas,
//                  --trace and --timeseries.
//
// Every workload also accepts observability flags:
//   --trace FILE       write a Chrome-trace (Perfetto) JSON timeline with
//                      per-message flow arrows (single runs only)
//   --stats-json FILE  write counters + latency histograms as JSON
//   --timeseries FILE  sample per-link bytes, NIC queue depths, retransmit
//                      windows and CU occupancy at a fixed simulated-time
//                      interval; .csv extension selects CSV, else JSON
//                      (single runs only, like --trace)
//   --sample-interval NS  sampling interval in simulated ns (default 1000)
//   --flight FILE      write the per-op flight recorder dump (stage stamps,
//                      tail exemplars) as JSON; unlike --trace this composes
//                      with --replicas: each replica gets its own recorder
//                      and the dumps are merged in plan order
//   --flight-sample P      record 1-in-P ops (deterministic hash sampling,
//                          default 1 = every op); exemplars ignore P
//   --flight-capacity N    op-ring capacity (default 4096, oldest evicted)
//   --flight-exemplars K   slowest ops kept per tenant (default 4)
//   --log-level L      trace|debug|info|warn|error|off (default warn)
//
// `gputn analyze` turns a flight dump into a critical-path blame report:
// per-path (put/get/oneway) category tables at p50/p99/p999, the tail
// exemplar list, --baseline category-by-category diffing (nonzero exit on
// regression past --threshold), and --exemplar ID --trace OUT to dump one
// op as a single-op Chrome trace for Perfetto.
//
// `gputn report` turns stats/sweep JSON files into a bottleneck attribution
// report (resources ranked by busy fraction, queue p99s, saturated links
// flagged, latency decomposition); with --baseline it prints per-metric
// deltas and exits nonzero when a gated metric regressed past --threshold
// (default 5%), which makes it usable as a CI perf gate.
//
// `gputn whatif` is the causal what-if profiler: it re-runs the workload
// under a matrix of virtually-scaled hardware knobs (see `gputn config` for
// the registry), ranks knobs by measured end-to-end improvement, and
// cross-validates each measured win against the blame-model and
// busy-fraction predictions from the baseline run, flagging divergences
// (queueing nonlinearity, hidden overlap, unattributed host software time).
// --json writes a deterministic report; --baseline diffs against a previous
// report and exits nonzero past --threshold, like `gputn report`.
//
// Exit code is nonzero on verification failure or bad arguments.
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "exp/plan.hpp"
#include "exp/runner.hpp"
#include "exp/sweeps.hpp"
#include "obs/critical.hpp"
#include "obs/flight.hpp"
#include "obs/report.hpp"
#include "obs/timeseries.hpp"
#include "obs/whatif.hpp"
#include "sim/log.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "sim/units.hpp"
#include "workloads/registry.hpp"

using namespace gputn;
using namespace gputn::workloads;

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr, "usage: gputn <command> [opts]\n\n  config");
  std::fprintf(stderr, "%-12s print the simulated system parameters\n", "");
  std::fprintf(stderr,
               "  %-18s run the fig09+fig10+ablation mini-sweep in "
               "parallel\n  %-18s   --jobs <n> --stats-json <file>\n",
               "sweep", "");
  std::fprintf(stderr,
               "  %-18s bottleneck attribution from stats/sweep JSON\n"
               "  %-18s   <file>... --baseline <file> --threshold <pct> "
               "--top <n>\n",
               "report", "");
  std::fprintf(stderr,
               "  %-18s critical-path blame tables from a --flight dump\n"
               "  %-18s   <file>... --baseline <file> --threshold <pct> "
               "--top <n> --exemplar <id> --trace <out>\n",
               "analyze", "");
  std::fprintf(stderr,
               "  %-18s causal hardware sensitivity profile (counterfactual "
               "re-runs)\n"
               "  %-18s   <workload> [workload opts] --strategies <a,b> "
               "--knobs <k1,k2> --scales <0.5,2,inf> --jobs <n> "
               "--json <file> --baseline <file> --threshold <pct> "
               "--tolerance <pct> --top <n> --no-curve\n",
               "whatif", "");
  for (const auto& e : Registry::instance().entries()) {
    std::fprintf(stderr, "  %-18s %s\n", e.name.c_str(),
                 e.description.c_str());
    std::fprintf(stderr, "  %-18s   %s\n", "", e.options_help.c_str());
  }
  std::fprintf(
      stderr,
      "\n  fabric (any workload): --topology "
      "star|fat-tree:k=8|torus:4x4x4|dragonfly:a=4,h=2,p=2 "
      "--routing deterministic|adaptive --credits <n per switch port>\n"
      "  fault injection (jacobi/allreduce/broadcast): --loss <rate> "
      "--seed <s>\n"
      "  replication (any workload): --replicas <r> --jobs <n>\n"
      "  parallel DES (any workload): --shards <s> worker threads inside "
      "one run, bit-identical output; excludes "
      "--replicas/--trace/--timeseries\n"
      "  observability (any workload): --trace <file> --stats-json <file> "
      "--timeseries <file> --sample-interval <ns> "
      "--flight <file> --flight-sample <p> --flight-capacity <n> "
      "--flight-exemplars <k> "
      "--log-level trace|debug|info|warn|error|off\n");
  std::exit(2);
}

/// Tiny flag parser: --key value and boolean --key.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) usage();
      key = key.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }
  bool has(const std::string& k) const { return values_.count(k) > 0; }
  std::string get(const std::string& k, const std::string& dflt) const {
    auto it = values_.find(k);
    return it != values_.end() && !it->second.empty() ? it->second : dflt;
  }
  const std::map<std::string, std::string>& all() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

void apply_log_level(const Args& args) {
  if (!args.has("log-level")) return;
  std::string l = args.get("log-level", "warn");
  if (l == "trace") {
    sim::LogConfig::set_level(sim::LogLevel::kTrace);
  } else if (l == "debug") {
    sim::LogConfig::set_level(sim::LogLevel::kDebug);
  } else if (l == "info") {
    sim::LogConfig::set_level(sim::LogLevel::kInfo);
  } else if (l == "warn") {
    sim::LogConfig::set_level(sim::LogLevel::kWarn);
  } else if (l == "error") {
    sim::LogConfig::set_level(sim::LogLevel::kError);
  } else if (l == "off") {
    sim::LogConfig::set_level(sim::LogLevel::kOff);
  } else {
    std::fprintf(stderr, "unknown log level '%s'\n", l.c_str());
    std::exit(2);
  }
}

/// The RunOptions fields and driver-level flags everything shares; the rest
/// of the command line becomes the workload's WorkloadParams.
bool is_driver_key(const std::string& k) {
  return k == "nodes" || k == "trace" || k == "stats-json" ||
         k == "timeseries" || k == "sample-interval" || k == "log-level" ||
         k == "loss" || k == "seed" || k == "jobs" || k == "replicas" ||
         k == "shards" ||
         k == "flight" || k == "flight-sample" || k == "flight-capacity" ||
         k == "flight-exemplars" || k == "topology" || k == "routing" ||
         k == "credits";
}

/// Validated value of a numeric driver flag (shared Args -> long plumbing).
long driver_int(const Args& args, const std::string& key, long dflt, long min,
                long max) {
  if (!args.has(key)) return dflt;
  WorkloadParams p;
  p.set(key, args.get(key, ""));
  return p.get_int(key, dflt, min, max);
}

/// Same, floating point (whatif's --tolerance / --threshold).
double driver_double(const Args& args, const std::string& key, double dflt,
                     double min, double max) {
  if (!args.has(key)) return dflt;
  WorkloadParams p;
  p.set(key, args.get(key, ""));
  return p.get_double(key, dflt, min, max);
}

/// The --flight-* knobs as a recorder config (shared by single runs and the
/// per-replica recorders). The sampling seed is the run seed, so replicas
/// (seed S, S+1, ...) make independent keep decisions.
obs::FlightConfig flight_config(const Args& args, long seed) {
  obs::FlightConfig cfg;
  cfg.sample_period = static_cast<std::uint64_t>(
      driver_int(args, "flight-sample", 1, 1, 1L << 30));
  cfg.capacity =
      static_cast<std::size_t>(driver_int(args, "flight-capacity", 4096, 1,
                                          1 << 24));
  cfg.exemplars_per_tenant = static_cast<std::size_t>(
      driver_int(args, "flight-exemplars", 4, 0, 4096));
  cfg.seed = static_cast<std::uint64_t>(seed);
  return cfg;
}

/// --trace / --stats-json / --timeseries / --flight handling shared by every
/// workload subcommand. Owns the TraceRecorder, TimeSeries and
/// FlightRecorder for the run and writes the artifacts at the end. Every
/// write reports I/O failures to stderr and makes finish() return nonzero:
/// an unwritable artifact must fail the run, not silently vanish (these
/// files gate CI).
class ObservabilityFlags {
 public:
  explicit ObservabilityFlags(const Args& args, long seed)
      : trace_path_(args.get("trace", "")),
        stats_path_(args.get("stats-json", "")),
        ts_path_(args.get("timeseries", "")),
        flight_path_(args.get("flight", "")) {
    if (!ts_path_.empty()) {
      long interval_ns =
          driver_int(args, "sample-interval", 1000, 1, 1L << 40);
      ts_ = std::make_unique<obs::TimeSeries>(sim::ns(interval_ns));
    }
    if (!flight_path_.empty()) {
      flight_ =
          std::make_unique<obs::FlightRecorder>(flight_config(args, seed));
    }
  }

  /// Recorder to hand to the workload config, or nullptr when not requested.
  sim::TraceRecorder* trace() {
    return trace_path_.empty() ? nullptr : &recorder_;
  }
  /// Sampler to hand to the workload config, or nullptr when not requested.
  obs::TimeSeries* timeseries() { return ts_.get(); }
  /// Flight recorder for the run, or nullptr when not requested.
  obs::FlightRecorder* flight() { return flight_.get(); }

  /// Write the requested artifacts; returns 0, or 1 on I/O failure.
  int finish(const ResultBase& res) {
    int rc = 0;
    if (!trace_path_.empty()) {
      if (recorder_.write_json(trace_path_)) {
        std::printf("  trace: %s (%zu events)\n", trace_path_.c_str(),
                    recorder_.event_count());
      } else {
        std::fprintf(stderr, "gputn: cannot write trace to '%s'\n",
                     trace_path_.c_str());
        rc = 1;
      }
    }
    if (!stats_path_.empty()) {
      // Flush before checking: buffered bytes that fail at close time (disk
      // full, dead mount) must surface here, not in a destructor nobody
      // checks.
      std::ofstream out(stats_path_);
      if (out) out << res.stats_json() << "\n" << std::flush;
      if (out.good()) {
        std::printf("  stats: %s\n", stats_path_.c_str());
      } else {
        std::fprintf(stderr, "gputn: cannot write stats to '%s'\n",
                     stats_path_.c_str());
        rc = 1;
      }
    }
    if (ts_ != nullptr) {
      std::ofstream out(ts_path_);
      if (out) {
        bool csv = ts_path_.size() >= 4 &&
                   ts_path_.compare(ts_path_.size() - 4, 4, ".csv") == 0;
        if (csv) {
          ts_->write_csv(out);
        } else {
          ts_->write_json(out);
        }
        out << std::flush;
      }
      if (out.good()) {
        std::printf("  timeseries: %s (%zu samples)\n", ts_path_.c_str(),
                    ts_->rows());
      } else {
        std::fprintf(stderr, "gputn: cannot write timeseries to '%s'\n",
                     ts_path_.c_str());
        rc = 1;
      }
    }
    if (flight_ != nullptr) {
      flight_->set_run_info(res.label, !res.mode.empty()
                                           ? res.mode
                                           : strategy_name(res.strategy));
      std::ofstream out(flight_path_);
      if (out) out << flight_->json() << "\n" << std::flush;
      if (out.good()) {
        std::printf("  flight: %s (%llu ops offered, %llu recorded)\n",
                    flight_path_.c_str(),
                    static_cast<unsigned long long>(flight_->offered()),
                    static_cast<unsigned long long>(flight_->recorded()));
      } else {
        std::fprintf(stderr, "gputn: cannot write flight dump to '%s'\n",
                     flight_path_.c_str());
        rc = 1;
      }
    }
    return rc;
  }

 private:
  std::string trace_path_;
  std::string stats_path_;
  std::string ts_path_;
  std::string flight_path_;
  sim::TraceRecorder recorder_;
  std::unique_ptr<obs::TimeSeries> ts_;
  std::unique_ptr<obs::FlightRecorder> flight_;
};

/// Write a merged sweep JSON when --stats-json was given; 0 or 1 (I/O).
int write_sweep_json(const Args& args, const gputn::exp::RunSummary& summary) {
  std::string path = args.get("stats-json", "");
  if (path.empty()) return 0;
  std::ofstream out(path);
  if (out) out << gputn::exp::results_json(summary) << "\n" << std::flush;
  if (!out.good()) {
    std::fprintf(stderr, "gputn: cannot write stats to '%s'\n", path.c_str());
    return 1;
  }
  std::printf("  stats: %s\n", path.c_str());
  return 0;
}

/// Report a completed multi-point run in plan order; returns the exit code.
int report_sweep(const gputn::exp::RunSummary& summary, int jobs) {
  for (const auto& r : summary.results) {
    if (r.ok) {
      std::printf("[%-28s] ", r.id.c_str());
      r.result.report();
    } else {
      std::printf("[%-28s] FAILED: %s\n", r.id.c_str(), r.error.c_str());
    }
  }
  std::printf("%zu points, %d jobs, %.2f s host time, %zu failed\n",
              summary.results.size(), jobs, summary.wall_ms / 1000.0,
              summary.failures);
  return summary.all_correct() ? 0 : 1;
}

/// `gputn <workload> --replicas R`: the run-point list for seeds S..S+R-1.
/// `flights`, when non-empty, holds one recorder per replica (plan order);
/// per-point recorders are what lets --flight compose with --jobs and stay
/// bit-identical — no replica ever shares recorder state with another.
gputn::exp::Plan replica_plan(
    const WorkloadEntry& entry, RunOptions opts, const WorkloadParams& params,
    double loss, long seed, long replicas,
    const std::vector<std::unique_ptr<obs::FlightRecorder>>& flights) {
  gputn::exp::Plan plan;
  for (long r = 0; r < replicas; ++r) {
    long s = seed + r;
    opts.flight = flights.empty() ? nullptr
                                  : flights[static_cast<std::size_t>(r)].get();
    plan.add_workload(Registry::instance(),
                      entry.name + "/seed" + std::to_string(s), entry.name,
                      opts, params,
                      cluster::SystemConfig::table2_with_loss(
                          loss, static_cast<std::uint64_t>(s)));
  }
  return plan;
}

/// Write the plan-order merged flight dump for a --replicas run; 0 or 1.
int write_merged_flight(
    const Args& args, const gputn::exp::RunSummary& summary,
    const std::vector<std::unique_ptr<obs::FlightRecorder>>& flights) {
  if (flights.empty()) return 0;
  std::vector<std::pair<std::string, obs::FlightRecorder*>> points;
  for (std::size_t i = 0;
       i < summary.results.size() && i < flights.size(); ++i) {
    const auto& r = summary.results[i];
    if (r.ok) {
      flights[i]->set_run_info(r.result.label,
                               !r.result.mode.empty()
                                   ? r.result.mode
                                   : strategy_name(r.result.strategy));
    }
    points.emplace_back(r.id, flights[i].get());
  }
  std::string path = args.get("flight", "");
  std::ofstream out(path);
  if (out) out << obs::merged_flight_json(std::move(points)) << "\n"
               << std::flush;
  if (!out.good()) {
    std::fprintf(stderr, "gputn: cannot write flight dump to '%s'\n",
                 path.c_str());
    return 1;
  }
  std::printf("  flight: %s (%zu points)\n", path.c_str(), flights.size());
  return 0;
}

int run_workload(const WorkloadEntry& entry, const Args& args) {
  WorkloadParams params;
  for (const auto& [k, v] : args.all()) {
    if (!is_driver_key(k)) params.set(k, v);
  }

  RunOptions opts;  // nodes stays 0 (= workload default) without --nodes
  opts.nodes = static_cast<int>(driver_int(args, "nodes", 0, 2, 1 << 16));
  // Fabric selection; empty / -1 keep the Table 2 defaults (star,
  // deterministic routing, unlimited credits). Spec strings are validated
  // by the topology/router factories when the fabric is finalized.
  opts.topology = args.get("topology", "");
  opts.routing = args.get("routing", "");
  opts.credits = static_cast<int>(driver_int(args, "credits", -1, -1, 1 << 20));

  // Table 2, plus --loss/--seed fault injection when requested. Validated
  // through WorkloadParams so `--loss lots` is a usage error, not 0.0.
  WorkloadParams fault;
  if (args.has("loss")) fault.set("loss", args.get("loss", ""));
  double loss = fault.get_double("loss", 0.0, 0.0, 1.0);
  long seed = driver_int(args, "seed", 1, 0, LONG_MAX - (1 << 20));

  long replicas = driver_int(args, "replicas", 1, 1, 1 << 20);
  int jobs = static_cast<int>(driver_int(args, "jobs", 0, 0, 4096));
  int shards = static_cast<int>(driver_int(args, "shards", 1, 1, 4096));
  // Pairwise multi-run / observer flag rules come from the one shared table
  // (workloads::kFlagRules — also printed by `gputn config`), so the driver
  // cannot drift from make_config's own rejections.
  ActiveFlags active;
  active.replicas = replicas > 1;
  active.shards = shards > 1;
  active.trace = args.has("trace");
  active.timeseries = args.has("timeseries");
  active.flight = args.has("flight");
  if (std::string conflict = flag_conflict(active); !conflict.empty()) {
    std::fprintf(stderr, "gputn: %s\n", conflict.c_str());
    return 2;
  }
  if (replicas > 1) {
    // Seed-replicated run through the parallel engine. Each replica is an
    // isolated simulation; the merged report/JSON is in plan (seed) order
    // and bit-identical for any --jobs value.
    std::vector<std::unique_ptr<obs::FlightRecorder>> flights;
    if (args.has("flight")) {
      for (long r = 0; r < replicas; ++r) {
        flights.push_back(std::make_unique<obs::FlightRecorder>(
            flight_config(args, seed + r)));
      }
    }
    gputn::exp::Runner runner(jobs);
    gputn::exp::RunSummary summary = runner.run(
        replica_plan(entry, opts, params, loss, seed, replicas, flights));
    int rc = report_sweep(summary, runner.jobs());
    int io_rc = write_sweep_json(args, summary);
    int fl_rc = write_merged_flight(args, summary, flights);
    if (rc != 0) return rc;
    return io_rc != 0 ? io_rc : fl_rc;
  }

  ObservabilityFlags obs(args, seed);
  opts.trace = obs.trace();
  opts.timeseries = obs.timeseries();
  opts.flight = obs.flight();
  opts.shards = shards;  // --trace/--timeseries conflicts rejected downstream
  cluster::SystemConfig sys = cluster::SystemConfig::table2_with_loss(
      loss, static_cast<std::uint64_t>(seed));

  ResultBase res = entry.run(opts, params, sys);
  int obs_rc = obs.finish(res);
  return res.correct ? obs_rc : 1;
}

/// `gputn sweep`: the built-in mini-sweep on the parallel engine.
int run_sweep(const Args& args) {
  if (args.has("trace") || args.has("timeseries") || args.has("shards")) {
    std::fprintf(stderr,
                 "gputn: --trace/--timeseries/--shards are single-run only; "
                 "the sweep runs its points in parallel\n");
    return 2;
  }
  int jobs = static_cast<int>(driver_int(args, "jobs", 0, 0, 4096));
  gputn::exp::Runner runner(jobs);
  gputn::exp::RunSummary summary = runner.run(gputn::exp::mini_sweep_plan());
  int rc = report_sweep(summary, runner.jobs());
  int io_rc = write_sweep_json(args, summary);
  return rc != 0 ? rc : io_rc;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// `gputn report FILE... [--baseline FILE] [--threshold PCT] [--top N]`.
/// Parsed by hand: report takes positional file arguments, which the
/// --key-only Args parser rejects.
int run_report(int argc, char** argv) {
  obs::ReportOptions opt;
  std::vector<std::string> files;
  std::string baseline;
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (a == "--baseline") {
      baseline = value();
    } else if (a == "--threshold") {
      char* end = nullptr;
      opt.threshold_pct = std::strtod(value(), &end);
      if (end == nullptr || *end != '\0' || opt.threshold_pct < 0.0) usage();
    } else if (a == "--top") {
      char* end = nullptr;
      long n = std::strtol(value(), &end, 10);
      if (end == nullptr || *end != '\0' || n < 0) usage();
      opt.top = static_cast<int>(n);
    } else if (a.rfind("--", 0) == 0) {
      usage();
    } else {
      files.push_back(a);
    }
  }
  if (files.empty()) usage();
  obs::Report base;
  if (!baseline.empty()) {
    base = obs::parse_report(slurp(baseline), baseline);
  }
  int rc = 0;
  for (const std::string& f : files) {
    obs::Report rep = obs::parse_report(slurp(f), f);
    std::fputs(obs::render_report(rep, opt).c_str(), stdout);
    if (!baseline.empty()) {
      obs::Diff d = obs::diff_reports(rep, base, opt);
      std::fputs(d.text.c_str(), stdout);
      if (d.regressions > 0) rc = 1;
    }
  }
  return rc;
}

/// `gputn analyze FILE... [--baseline FILE] [--threshold PCT] [--top N]
///  [--exemplar ID --trace OUT]`. Hand-parsed for the same reason as
/// `report`: positional file arguments.
int run_analyze(int argc, char** argv) {
  obs::AnalyzeOptions opt;
  std::vector<std::string> files;
  std::string baseline;
  std::string trace_out;
  bool want_exemplar = false;
  std::uint64_t exemplar = 0;
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (a == "--baseline") {
      baseline = value();
    } else if (a == "--threshold") {
      char* end = nullptr;
      opt.threshold_pct = std::strtod(value(), &end);
      if (end == nullptr || *end != '\0' || opt.threshold_pct < 0.0) usage();
    } else if (a == "--top") {
      char* end = nullptr;
      long n = std::strtol(value(), &end, 10);
      if (end == nullptr || *end != '\0' || n < 0) usage();
      opt.top = static_cast<int>(n);
    } else if (a == "--exemplar") {
      char* end = nullptr;
      exemplar = std::strtoull(value(), &end, 10);
      if (end == nullptr || *end != '\0') usage();
      want_exemplar = true;
    } else if (a == "--trace") {
      trace_out = value();
    } else if (a.rfind("--", 0) == 0) {
      usage();
    } else {
      files.push_back(a);
    }
  }
  if (files.empty() || (want_exemplar != !trace_out.empty())) usage();
  obs::Analysis base;
  if (!baseline.empty()) {
    base = obs::analyze_flight(slurp(baseline), baseline);
  }
  int rc = 0;
  for (const std::string& f : files) {
    obs::Analysis a = obs::analyze_flight(slurp(f), f);
    std::fputs(obs::render_analysis(a, opt).c_str(), stdout);
    if (!baseline.empty()) {
      obs::AnalyzeDiff d = obs::diff_analyses(a, base, opt);
      std::fputs(d.text.c_str(), stdout);
      if (d.regressions > 0) rc = 1;
    }
    if (want_exemplar) {
      bool dumped = false;
      for (const obs::AnalyzedRun& run : a.runs) {
        if (obs::dump_exemplar_trace(run, exemplar, trace_out)) {
          std::printf("  exemplar %llu: %s\n",
                      static_cast<unsigned long long>(exemplar),
                      trace_out.c_str());
          dumped = true;
          break;
        }
      }
      if (!dumped) {
        std::fprintf(stderr,
                     "gputn: no op with id %llu in '%s' (or '%s' is not "
                     "writable)\n",
                     static_cast<unsigned long long>(exemplar), f.c_str(),
                     trace_out.c_str());
        rc = 1;
      }
    }
  }
  return rc;
}

/// Comma-split a list flag value ("a,b,c" -> {"a","b","c"}, empties
/// dropped).
std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

/// `gputn whatif WORKLOAD [...]`: the causal what-if profiler.
int run_whatif_cmd(int argc, char** argv) {
  if (argc < 3 || std::strncmp(argv[2], "--", 2) == 0) usage();
  std::string workload = argv[2];
  Args args(argc, argv, 3);
  apply_log_level(args);

  // The profiler owns its own plan, recorders and parallelism; the
  // single-run observer and multi-run flags do not compose with it.
  static const char* kRejected[] = {
      "trace",           "timeseries",      "flight",        "shards",
      "replicas",        "stats-json",      "flight-sample",
      "flight-capacity", "flight-exemplars", "sample-interval"};
  for (const char* k : kRejected) {
    if (args.has(k)) {
      std::fprintf(stderr,
                   "gputn: --%s cannot be combined with whatif (the profiler "
                   "drives its own runs and recorders)\n",
                   k);
      return 2;
    }
  }

  auto is_whatif_key = [](const std::string& k) {
    return k == "strategies" || k == "knobs" || k == "scales" ||
           k == "tolerance" || k == "threshold" || k == "baseline" ||
           k == "json" || k == "top" || k == "no-curve";
  };
  WorkloadParams params;
  for (const auto& [k, v] : args.all()) {
    if (!is_driver_key(k) && !is_whatif_key(k)) params.set(k, v);
  }

  obs::WhatifOptions opt;
  opt.jobs = static_cast<int>(driver_int(args, "jobs", 0, 0, 4096));
  opt.tolerance_pct = driver_double(args, "tolerance", 2.0, 0.0, 100.0);
  opt.threshold_pct = driver_double(args, "threshold", 5.0, 0.0, 1e6);
  opt.top = static_cast<int>(driver_int(args, "top", 0, 0, 1 << 20));
  opt.curve = !args.has("no-curve");
  opt.knobs = split_csv(args.get("knobs", ""));
  opt.strategies.clear();
  for (const std::string& name : split_csv(
           args.get("strategies", "CPU,GPU-TN"))) {
    bool found = false;
    for (Strategy s : kTaxonomyStrategies) {
      if (name == strategy_name(s)) {
        opt.strategies.push_back(s);
        found = true;
      }
    }
    if (!found) {
      throw std::invalid_argument("unknown strategy: " + name +
                                  " (CPU, HDN, GDS, GPU-TN, GHN, GNN)");
    }
  }
  opt.scales.clear();
  for (const std::string& tok : split_csv(args.get("scales", "0.5,2,inf"))) {
    if (tok == "inf") {
      opt.scales.push_back(obs::kInfiniteSpeed);
      continue;
    }
    WorkloadParams p;
    p.set("scale", tok);
    opt.scales.push_back(p.get_double("scale", 0.0, 1e-6, 1e12));
  }

  RunOptions opts;
  opts.nodes = static_cast<int>(driver_int(args, "nodes", 0, 2, 1 << 16));
  opts.topology = args.get("topology", "");
  opts.routing = args.get("routing", "");
  opts.credits =
      static_cast<int>(driver_int(args, "credits", -1, -1, 1 << 20));

  WorkloadParams fault;
  if (args.has("loss")) fault.set("loss", args.get("loss", ""));
  double loss = fault.get_double("loss", 0.0, 0.0, 1.0);
  long seed = driver_int(args, "seed", 1, 0, LONG_MAX - (1 << 20));
  cluster::SystemConfig sys = cluster::SystemConfig::table2_with_loss(
      loss, static_cast<std::uint64_t>(seed));

  // Parse the baseline before burning the matrix: a corrupt file fails in
  // milliseconds, not after the full counterfactual sweep.
  std::string baseline = args.get("baseline", "");
  obs::WhatifReport base;
  if (!baseline.empty()) base = obs::parse_whatif(slurp(baseline), baseline);

  obs::WhatifReport rep = obs::run_whatif(Registry::instance(), workload,
                                          params, opts, sys, opt);
  std::fputs(obs::render_whatif(rep, opt).c_str(), stdout);

  int rc = 0;
  for (const obs::StrategyReport& sr : rep.strategies) {
    if (!sr.baseline_ok) rc = 1;
  }
  std::string json_path = args.get("json", "");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (out) out << obs::whatif_json(rep) << std::flush;
    if (out.good()) {
      std::printf("  whatif: %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "gputn: cannot write whatif report to '%s'\n",
                   json_path.c_str());
      rc = 1;
    }
  }
  if (!baseline.empty()) {
    obs::WhatifDiff d = obs::diff_whatif(rep, base, opt.threshold_pct);
    std::fputs(d.text.c_str(), stdout);
    if (d.regressions > 0) rc = 1;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  register_builtin_workloads(Registry::instance());
  if (argc < 2) usage();
  std::string cmd = argv[1];
  if (cmd == "report") {
    // Positional file arguments: dispatched before the Args parser, which
    // only understands --flags. Unreadable / malformed input surfaces as a
    // runtime_error -> exit 1; regressions against --baseline also exit 1.
    try {
      return run_report(argc, argv);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "gputn: %s\n", e.what());
      return 1;
    }
  }
  if (cmd == "analyze") {
    // Same contract as report: unreadable / malformed dumps exit 1, blame
    // regressions against --baseline exit 1, a self-diff exits 0.
    try {
      return run_analyze(argc, argv);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "gputn: %s\n", e.what());
      return 1;
    }
  }
  if (cmd == "whatif") {
    // Positional workload argument, so dispatched before the Args parser.
    // Usage errors (unknown workload / knob / strategy) exit 2; runtime
    // failures (unreadable or malformed --baseline) exit 1, like report.
    try {
      return run_whatif_cmd(argc, argv);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "gputn: %s\n", e.what());
      return 2;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "gputn: %s\n", e.what());
      return 1;
    }
  }
  Args args(argc, argv, 2);
  apply_log_level(args);
  // Bad parameters and simulation failures (deadlock watchdog, reliability
  // giving up under a pathological loss rate) surface as exceptions; report
  // them as a normal CLI error instead of an abort.
  try {
    if (cmd == "config") {
      WorkloadParams fault;
      if (args.has("loss")) fault.set("loss", args.get("loss", ""));
      if (args.has("seed")) fault.set("seed", args.get("seed", ""));
      auto sys = cluster::SystemConfig::table2_with_loss(
          fault.get_double("loss", 0.0, 0.0, 1.0),
          static_cast<std::uint64_t>(fault.get_int("seed", 1, 0, LONG_MAX)));
      std::printf("%s", sys.describe().c_str());
      // The DES engine a run with these parameters would use: --shards
      // workers with the conservative lookahead the fabric derives (the
      // minimum cross-shard wire propagation = link latency on every
      // built-in topology).
      long shards = driver_int(args, "shards", 1, 1, 4096);
      std::printf("Engine:   %ld shard%s (%s DES), lookahead %.0f ns "
                  "(min cross-shard wire latency)\n",
                  shards, shards == 1 ? "" : "s",
                  shards == 1 ? "sequential" : "conservative parallel",
                  sim::to_ns(sys.fabric.link_latency));
      std::printf("\n%s", flag_matrix().c_str());
      std::printf("\nWhatif knobs (gputn whatif --knobs ...):\n");
      for (const obs::Knob& k : obs::knob_registry()) {
        std::printf("  %-15s %-9s %s\n", k.name.c_str(), k.kind.c_str(),
                    k.description.c_str());
      }
      return 0;
    }
    if (cmd == "sweep") {
      return run_sweep(args);
    }
    if (const WorkloadEntry* entry = Registry::instance().find(cmd)) {
      return run_workload(*entry, args);
    }
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "gputn: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gputn: %s\n", e.what());
    return 1;
  }
  usage();
}

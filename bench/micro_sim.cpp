// Engineering microbenchmarks of the simulator's hot paths
// (google-benchmark): event queue throughput, coroutine switches, channel
// operations, trigger-table matching, and a full end-to-end microbench run.
#include <benchmark/benchmark.h>

#include "core/trigger_table.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "workloads/microbench.hpp"

using namespace gputn;

namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    int sink = 0;
    for (int i = 0; i < n; ++i) {
      sim.schedule_at(sim::ns(i % 97), [&sink] { ++sink; });
    }
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(65536);

void BM_CoroutineDelayChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    sim.spawn(
        [](sim::Simulator& s, int reps) -> sim::Task<> {
          for (int i = 0; i < reps; ++i) co_await s.delay(sim::ns(1));
        }(sim, n),
        "chain");
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CoroutineDelayChain)->Arg(1024)->Arg(16384);

void BM_ChannelPingPong(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Channel<int> ping(sim), pong(sim);
    sim.spawn(
        [](sim::Channel<int>& in, sim::Channel<int>& out, int reps)
            -> sim::Task<> {
          for (int i = 0; i < reps; ++i) out.push(co_await in.pop());
        }(ping, pong, n),
        "echo");
    sim.spawn(
        [](sim::Channel<int>& out, sim::Channel<int>& in, int reps)
            -> sim::Task<> {
          for (int i = 0; i < reps; ++i) {
            out.push(i);
            co_await in.pop();
          }
        }(ping, pong, n),
        "driver");
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ChannelPingPong)->Arg(4096);

void BM_TriggerTableMatch(benchmark::State& state) {
  const int entries = static_cast<int>(state.range(0));
  core::TriggerTableConfig cfg;
  cfg.lookup = core::LookupKind::kHash;
  core::TriggerTable table(cfg);
  std::vector<nic::Command> fired;
  for (int i = 0; i < entries; ++i) {
    table.register_op(
        core::TriggeredOp{static_cast<core::Tag>(i), 1u << 30,
                          nic::Command(nic::PutDesc{}), false, 0, {}},
        fired);
  }
  std::uint64_t tag = 0;
  for (auto _ : state) {
    auto r = table.find_or_create(tag % entries);
    table.increment(*r.counter, fired);
    ++tag;
    benchmark::DoNotOptimize(r.counter);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TriggerTableMatch)->Arg(16)->Arg(1024);

void BM_FullMicrobench(benchmark::State& state) {
  auto strategy = static_cast<workloads::Strategy>(state.range(0));
  cluster::SystemConfig cfg = cluster::SystemConfig::table2();
  cfg.dram_bytes = 4u << 20;
  for (auto _ : state) {
    auto res = workloads::run_microbench(strategy, cfg);
    benchmark::DoNotOptimize(res.target_completion);
  }
}
BENCHMARK(BM_FullMicrobench)
    ->Arg(static_cast<int>(workloads::Strategy::kHdn))
    ->Arg(static_cast<int>(workloads::Strategy::kGds))
    ->Arg(static_cast<int>(workloads::Strategy::kGpuTn))
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

// Ablation (§3.4): static vs dynamic GPU-TN.
//
// The paper's base design fixes all networking metadata on the CPU
// ("static networking scheme ... offers the best performance at the cost
// of some flexibility") and leaves dynamic target selection as future
// work. We implement it: the GPU encodes the target node into the trigger
// store; the NIC patches the pre-staged put. This harness measures the
// price of that flexibility on a data-dependent scatter the static scheme
// can only handle if the host predicts the pattern.
#include <cstdio>
#include <vector>

#include "cluster/cluster.hpp"
#include "sim/sync.hpp"

using namespace gputn;

namespace {

constexpr int kMessages = 32;
constexpr std::uint64_t kBytes = 512;

/// The data-dependent pattern (known to the bench, unknown to the "host"
/// in the dynamic variant): message i goes to node (i * 7) % peers + 1.
int pattern(int i, int peers) { return (i * 7) % peers + 1; }

double run_scatter(bool dynamic, int nodes) {
  sim::Simulator sim;
  cluster::SystemConfig cfg = cluster::SystemConfig::table2();
  cfg.dram_bytes = 4u << 20;
  cfg.triggered.table.lookup = core::LookupKind::kHash;
  cluster::Cluster cl(sim, cfg, nodes);
  auto& origin = cl.node(0);
  int peers = nodes - 1;

  mem::Addr src = origin.memory().alloc(kBytes * kMessages);
  // Symmetric landing buffers (same offsets on every node, PGAS-style).
  std::vector<mem::Addr> dst(nodes), flag(nodes);
  for (int i = 1; i < nodes; ++i) {
    dst[i] = cl.node(i).memory().alloc(kBytes * kMessages);
    flag[i] = cl.node(i).rt().alloc_flag();
  }

  sim.spawn(
      [](cluster::Cluster& cl2, cluster::Node& n, bool dynamic, int peers,
         mem::Addr src, std::vector<mem::Addr> dst,
         std::vector<mem::Addr> flag) -> sim::Task<> {
        for (int i = 0; i < kMessages; ++i) {
          int target = pattern(i, peers);
          nic::PutDesc put;
          put.local_addr = src + i * kBytes;
          put.bytes = kBytes;
          put.remote_addr = dst[target] + i * kBytes;
          put.remote_flag = flag[target];
          put.flag_value = static_cast<std::uint64_t>(i) + 1;
          if (dynamic) {
            // Host does NOT know the pattern: it stages target-less puts.
            co_await n.cpu().compute(n.cpu().config().post_cost);
            n.triggered().register_dynamic_put(i, put);
          } else {
            // Host predicted the pattern exactly (best case for static).
            put.target = target;
            co_await n.rt().trig_put(i, 1, put);
          }
        }
        mem::Addr trig = dynamic ? n.triggered().dynamic_trigger_address()
                                 : n.rt().trigger_addr();
        gpu::KernelDesc k;
        k.num_wgs = 1;
        k.fn = [trig, dynamic, peers](gpu::WorkGroupCtx& ctx) -> sim::Task<> {
          co_await ctx.fence_system();
          for (int i = 0; i < kMessages; ++i) {
            if (dynamic) {
              // Compute the data-dependent target in-kernel: a divergent
              // scalar decision per message.
              co_await ctx.diverged(2, sim::ns(8));
              co_await ctx.store_system(
                  trig, core::encode_dynamic_trigger(i, pattern(i, peers)));
            } else {
              co_await ctx.store_system(trig, i);
            }
          }
        };
        co_await n.rt().launch_sync(std::move(k));
        (void)cl2;
      }(cl, origin, dynamic, peers, src, dst, flag),
      "origin");
  sim.run();

  // Verify every peer got its messages.
  for (int i = 0; i < kMessages; ++i) {
    int t = pattern(i, peers);
    if (cl.node(t).memory().load<std::uint64_t>(flag[t]) == 0) {
      std::printf("  [message %d never arrived!]\n", i);
    }
  }
  return sim::to_us(sim.now());
}

}  // namespace

int main() {
  std::printf("Ablation: static vs dynamic GPU-TN (§3.4), %d-message\n"
              "data-dependent scatter\n\n",
              kMessages);
  std::printf("%8s %14s %14s %12s\n", "nodes", "static (us)", "dynamic (us)",
              "overhead");
  for (int nodes : {3, 5, 9, 17}) {
    double s = run_scatter(false, nodes);
    double d = run_scatter(true, nodes);
    std::printf("%8d %14.2f %14.2f %11.1f%%\n", nodes, s, d,
                100.0 * (d / s - 1.0));
  }
  std::printf(
      "\nThe static scheme is benchmarked in its best case (the host\n"
      "predicted the pattern perfectly); dynamic pays in-kernel target\n"
      "computation (divergence) + NIC decode, a few percent here — the\n"
      "flexibility/performance continuum of §3.4. When the host CANNOT\n"
      "predict the pattern, only the dynamic scheme works at all.\n");
  return 0;
}

// Figure 3: control-flow timelines of the networking strategies.
//
// The paper's Figure 3 is a schematic; this harness renders the *measured*
// timeline of each strategy from the microbenchmark simulation as ASCII
// bars, so the schematic can be checked against actual control flow.
#include <algorithm>
#include <cstdio>
#include <string>

#include "workloads/microbench.hpp"

using namespace gputn;
using namespace gputn::workloads;

namespace {

void render(const MicrobenchResult& r, double scale_us) {
  const int width = 70;
  auto col = [&](sim::Tick t) {
    int c = static_cast<int>(sim::to_us(t) / scale_us * width);
    return std::clamp(c, 0, width - 1);
  };
  std::printf("%-7s |", strategy_name(r.strategy));
  std::string line(width, ' ');
  for (const auto& ph : r.initiator_phases) {
    char mark = ph.label == "launch"     ? 'L'
                : ph.label == "kernel"   ? 'K'
                : ph.label == "teardown" ? 'T'
                : ph.label == "send"     ? 'S'
                                         : 'C';
    for (int c = col(ph.begin); c <= col(ph.end - 1); ++c) line[c] = mark;
  }
  std::printf("%s|\n", line.c_str());
  std::string target(width, ' ');
  target[col(r.target_completion)] = 'V';
  std::printf("%-7s |%s|  V = target got data (%.2f us)\n", "", target.c_str(),
              sim::to_us(r.target_completion));
}

}  // namespace

int main() {
  std::printf("Figure 3: measured control-flow timelines (initiator row)\n");
  std::printf("L=launch K=kernel T=teardown S=host send C=cpu copy\n\n");

  MicrobenchResult rs[4] = {
      run_microbench(Strategy::kCpu),
      run_microbench(Strategy::kHdn),
      run_microbench(Strategy::kGds),
      run_microbench(Strategy::kGpuTn),
  };
  double scale = 0.0;
  for (const auto& r : rs) {
    scale = std::max(scale, sim::to_us(std::max(r.initiator_completion,
                                                r.target_completion)));
  }
  scale *= 1.02;
  for (const auto& r : rs) render(r, scale);
  std::printf(
      "\nNote how only GPU-TN's Put (V) lands inside the kernel's lifetime —\n"
      "intra-kernel networking; the kernel-boundary strategies' V trails the\n"
      "kernel teardown.\n");
  return 0;
}

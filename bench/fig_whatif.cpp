// Causal what-if profile of the paper's headline contrast, cross-validated
// against the blame model.
//
// Part 1 — jacobi (64^2 halo exchange, 32 iterations): under the CPU proxy
// the biggest causal win is the host posting cost (the paper's thesis: the
// CPU on the critical path), and the blame taxonomy cannot even see it —
// host time between ops never reaches a NIC stage stamp, so the knob is
// flagged "unattributed". Under GPU-TN the host is off the path: the top
// knob is a wire/NIC parameter instead. Both shapes are asserted.
//
// Part 2 — serve at the knee (offered load past the proxy's saturation
// point): blame shares stop composing linearly, so measured counterfactual
// deltas diverge from the linear blame prediction. At least one flagged
// divergence is asserted — the reason `gputn whatif` exists at all.
//
// Part 3 — determinism: the full matrix re-run at --jobs 1 and --jobs 2
// must produce byte-identical JSON (exp::Runner's merge is plan-ordered).
//
// Every simulated number is machine-independent; only wall time varies.
// Emits BENCH_whatif.json. Usage: fig_whatif [out.json] [--jobs N]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "cluster/config.hpp"
#include "obs/whatif.hpp"
#include "sim/json.hpp"
#include "workloads/registry.hpp"

using namespace gputn;

namespace {

obs::WhatifReport profile(workloads::Registry& reg,
                          const std::string& workload,
                          const workloads::WorkloadParams& params,
                          const obs::WhatifOptions& opt) {
  return obs::run_whatif(reg, workload, params, workloads::RunOptions{},
                         cluster::SystemConfig::table2(), opt);
}

const obs::StrategyReport* find_strategy(const obs::WhatifReport& rep,
                                         const std::string& name) {
  for (const obs::StrategyReport& sr : rep.strategies)
    if (sr.strategy == name) return &sr;
  return nullptr;
}

std::string top_knob(const obs::StrategyReport* sr) {
  if (sr == nullptr || !sr->baseline_ok || sr->ranking.empty()) return "";
  return sr->ranking.front();
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_whatif.json";
  if (argc > 1 && std::strncmp(argv[1], "--", 2) != 0) out_path = argv[1];
  int jobs = 0;  // exp::Runner: 0 = hardware concurrency
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0) jobs = std::atoi(argv[i + 1]);
  }

  workloads::Registry reg;
  workloads::register_builtin_workloads(reg);

  // Part 1: jacobi, CPU proxy vs GPU-TN.
  std::printf("fig_whatif: jacobi 64^2 x 32 iterations, CPU vs GPU-TN\n");
  workloads::WorkloadParams jp;
  jp.set("n", "64");
  jp.set("iterations", "32");
  obs::WhatifOptions jopt;
  jopt.jobs = jobs;
  obs::WhatifReport jacobi = profile(reg, "jacobi", jp, jopt);
  std::fputs(obs::render_whatif(jacobi, jopt).c_str(), stdout);

  const obs::StrategyReport* jcpu = find_strategy(jacobi, "CPU");
  const obs::StrategyReport* jgtn = find_strategy(jacobi, "GPU-TN");
  const std::string cpu_top = top_knob(jcpu);
  const std::string gputn_top = top_knob(jgtn);
  bool shape_ok = cpu_top == "host_post" && !gputn_top.empty() &&
                  gputn_top != "host_post";
  bool cpu_unattributed = false;
  if (jcpu != nullptr) {
    for (const obs::KnobResult& k : jcpu->knobs) {
      if (k.name == "host_post") cpu_unattributed = k.verdict == "unattributed";
    }
  }
  std::printf(
      "  paper shape: CPU top knob = %s, GPU-TN top knob = %s  -> %s\n",
      cpu_top.c_str(), gputn_top.c_str(), shape_ok ? "ok" : "WRONG");

  // Part 2: serve past the proxy's knee — contention makes blame
  // non-linear, so divergences must be flagged.
  std::printf("\nfig_whatif: serve at the knee (CPU proxy, 4M req/s)\n");
  workloads::WorkloadParams sp;
  sp.set("clients", "2");
  sp.set("servers", "2");
  sp.set("tenants", "2");
  sp.set("requests", "120");
  sp.set("offered-load", "4000000");
  sp.set("rw-mix", "0.5");
  obs::WhatifOptions sopt;
  sopt.jobs = jobs;
  sopt.strategies = {workloads::Strategy::kCpu};
  obs::WhatifReport serve = profile(reg, "serve", sp, sopt);
  std::fputs(obs::render_whatif(serve, sopt).c_str(), stdout);
  const obs::StrategyReport* scpu = find_strategy(serve, "CPU");
  int serve_divergences =
      (scpu != nullptr && scpu->baseline_ok) ? scpu->divergences : 0;

  // Part 3: bit-identical JSON at --jobs 1 vs 2 (cheap matrix).
  obs::WhatifOptions d1;
  d1.jobs = 1;
  d1.curve = false;
  obs::WhatifOptions d2 = d1;
  d2.jobs = 2;
  const std::string j1 = obs::whatif_json(
      profile(reg, "microbench", workloads::WorkloadParams{}, d1));
  const std::string j2 = obs::whatif_json(
      profile(reg, "microbench", workloads::WorkloadParams{}, d2));
  bool deterministic = j1 == j2;
  std::printf("\n  determinism (--jobs 1 vs 2): %s\n",
              deterministic ? "bit-identical" : "NONDETERMINISTIC");

  bool ok = shape_ok && cpu_unattributed && serve_divergences >= 1 &&
            deterministic;
  if (!ok) {
    std::fprintf(stderr,
                 "fig_whatif: ASSERTION FAILED (shape=%d unattributed=%d "
                 "serve_divergences=%d deterministic=%d)\n",
                 shape_ok, cpu_unattributed, serve_divergences, deterministic);
  }

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"jacobi\": {\n"
      << "    \"cpu_baseline_us\": "
      << (jcpu != nullptr ? jcpu->baseline_ps / 1e6 : 0.0) << ",\n"
      << "    \"gputn_baseline_us\": "
      << (jgtn != nullptr ? jgtn->baseline_ps / 1e6 : 0.0) << ",\n"
      << "    \"cpu_top_knob\": \"" << sim::json_escape(cpu_top) << "\",\n"
      << "    \"gputn_top_knob\": \"" << sim::json_escape(gputn_top)
      << "\",\n"
      << "    \"cpu_host_post_unattributed\": "
      << (cpu_unattributed ? "true" : "false") << "\n"
      << "  },\n"
      << "  \"serve_knee_divergences\": " << serve_divergences << ",\n"
      << "  \"deterministic\": " << (deterministic ? "true" : "false")
      << ",\n"
      << "  \"paper_shape_ok\": " << (ok ? "true" : "false") << "\n"
      << "}\n";
  if (!out.good()) {
    std::fprintf(stderr, "fig_whatif: cannot write %s\n", out_path);
    return 1;
  }
  std::printf("  wrote %s\n", out_path);
  return ok ? 0 : 1;
}

// Ablation (§5.3): communication/computation overlap in GPU-TN Jacobi.
//
// "This particular implementation of Jacobi does not exploit overlap."
// Intra-kernel networking makes the overlap trivial to add: compute the
// halo-independent interior while the halos fly, then finish the boundary
// ring. This harness quantifies what the paper's implementation left on
// the table.
#include <cstdio>

#include "workloads/jacobi.hpp"

using namespace gputn;
using namespace gputn::workloads;

int main() {
  std::printf("Ablation: GPU-TN Jacobi with/without compute-communication "
              "overlap\n\n");
  std::printf("%6s %16s %16s %10s   %s\n", "N", "no overlap", "overlap",
              "saving", "verified");
  for (int n : {16, 32, 64, 128, 256, 512}) {
    JacobiConfig base;
    base.strategy = Strategy::kGpuTn;
    base.n = n;
    base.iterations = 10;
    JacobiConfig ovl = base;
    ovl.overlap = true;
    JacobiResult a = run_jacobi(base);
    JacobiResult b = run_jacobi(ovl);
    std::printf("%6d %13.2fus %13.2fus %9.1f%%   %s\n", n,
                sim::to_us(a.per_iteration()), sim::to_us(b.per_iteration()),
                100.0 * (1.0 - sim::to_us(b.per_iteration()) /
                                   sim::to_us(a.per_iteration())),
                (a.correct && b.correct) ? "ok" : "NUMERICS MISMATCH");
  }
  std::printf(
      "\nThe win peaks where halo wire time and interior compute are\n"
      "comparable; tiny grids have nothing to hide behind, huge grids are\n"
      "compute-bound anyway. Kernel-boundary strategies cannot do this at\n"
      "all without splitting each iteration into two kernels (costing two\n"
      "more boundaries).\n");
  return 0;
}

// Ablation (§5.3): communication/computation overlap in GPU-TN Jacobi.
//
// "This particular implementation of Jacobi does not exploit overlap."
// Intra-kernel networking makes the overlap trivial to add: compute the
// halo-independent interior while the halos fly, then finish the boundary
// ring. This harness quantifies what the paper's implementation left on
// the table.
//
// Sweep runs through the parallel experiment engine (`--jobs N`, default
// all cores); output is identical at any jobs value.
#include <cstdio>
#include <vector>

#include "exp/runner.hpp"
#include "exp/sweeps.hpp"

using namespace gputn;

int main(int argc, char** argv) {
  const std::vector<int> grids = {16, 32, 64, 128, 256, 512};
  const int iterations = 10;

  exp::Runner runner(exp::jobs_from_args(argc, argv));
  exp::RunSummary sweep =
      runner.run(exp::jacobi_overlap_plan(grids, iterations));
  for (const exp::RunResult& r : sweep.results) {
    if (!r.ok) {
      std::fprintf(stderr, "abl_jacobi_overlap: %s failed: %s\n", r.id.c_str(),
                   r.error.c_str());
      return 1;
    }
  }

  std::printf("Ablation: GPU-TN Jacobi with/without compute-communication "
              "overlap\n\n");
  std::printf("%6s %16s %16s %10s   %s\n", "N", "no overlap", "overlap",
              "saving", "verified");
  for (std::size_t gi = 0; gi < grids.size(); ++gi) {
    // Plan order: per grid, {no-overlap, overlap}.
    const exp::RunResult& a = sweep.results[gi * 2];
    const exp::RunResult& b = sweep.results[gi * 2 + 1];
    double a_us = sim::to_us(a.result.per_op(iterations));
    double b_us = sim::to_us(b.result.per_op(iterations));
    std::printf("%6d %13.2fus %13.2fus %9.1f%%   %s\n", grids[gi], a_us, b_us,
                100.0 * (1.0 - b_us / a_us),
                (a.result.correct && b.result.correct) ? "ok"
                                                       : "NUMERICS MISMATCH");
  }
  std::printf(
      "\nThe win peaks where halo wire time and interior compute are\n"
      "comparable; tiny grids have nothing to hide behind, huge grids are\n"
      "compute-bound anyway. Kernel-boundary strategies cannot do this at\n"
      "all without splitting each iteration into two kernels (costing two\n"
      "more boundaries).\n");
  return 0;
}

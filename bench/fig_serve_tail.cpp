// Serving-workload tail latency: CPU host proxy vs GPU-TN write-back
// across offered load.
//
// The sweep drives the Zipf-skewed multi-tenant KV workload (src/serve/) at
// increasing open-loop offered load and reports the worst-tenant p50 / p99 /
// p999 for both put-response strategies. The CPU proxy serializes put
// handling through host cores (poll + compute + post per request), so past
// its service rate the open-loop arrival queue blows up the tail; GPU-TN
// fires the write-back from the persistent kernel's triggered put, and the
// parallel slots hold the tail flat for far longer. The knee — the first
// load whose p99 exceeds 2x the lowest-load p99 — lands earlier for CPU.
//
// Sweep runs through the parallel experiment engine (`--jobs N`); output is
// identical at any jobs value.
//
// Emits BENCH_serve.json. Usage: fig_serve_tail [out.json] [--jobs N]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "exp/sweeps.hpp"
#include "obs/critical.hpp"
#include "obs/flight.hpp"
#include "serve/serve.hpp"
#include "sim/stats.hpp"

using namespace gputn;

namespace {

struct TenantTail {
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double p999_ns = 0.0;
  std::uint64_t ops = 0;
  std::uint64_t slo_ok = 0;
};

struct Point {
  double load = 0.0;
  const char* strategy = "";
  std::vector<TenantTail> tenants;
  double worst_p99_ns = 0.0;
  double worst_p999_ns = 0.0;
  double goodput_rps = 0.0;
  double window_us = 0.0;
};

/// Per-tenant tails out of the lat.serve.t<i> histograms the workload
/// exports for `gputn report` (values are nanoseconds).
Point extract(double load, const char* strategy,
              const workloads::ResultBase& res, int tenants) {
  Point p;
  p.load = load;
  p.strategy = strategy;
  std::uint64_t window_ps = res.net_stats.counter_value("serve.window_ps");
  p.window_us = static_cast<double>(window_ps) / 1e6;
  std::uint64_t slo_ok_total = 0;
  for (int t = 0; t < tenants; ++t) {
    char name[32];
    std::snprintf(name, sizeof(name), "lat.serve.t%d", t);
    const sim::Histogram* h = res.net_stats.find_histogram(name);
    if (h == nullptr || h->count() == 0) {
      std::fprintf(stderr, "fig_serve_tail: missing histogram %s\n", name);
      std::exit(1);
    }
    TenantTail tt;
    tt.p50_ns = h->quantile(0.50);
    tt.p99_ns = h->quantile(0.99);
    tt.p999_ns = h->quantile(0.999);
    tt.ops = h->count();
    std::snprintf(name, sizeof(name), "serve.t%d.slo_ok", t);
    tt.slo_ok = res.net_stats.counter_value(name);
    slo_ok_total += tt.slo_ok;
    p.worst_p99_ns = std::max(p.worst_p99_ns, tt.p99_ns);
    p.worst_p999_ns = std::max(p.worst_p999_ns, tt.p999_ns);
    p.tenants.push_back(tt);
  }
  if (window_ps > 0) {
    p.goodput_rps =
        static_cast<double>(slo_ok_total) * 1e12 / static_cast<double>(window_ps);
  }
  return p;
}

/// First load whose worst-tenant p99 exceeds 2x the lowest-load p99, or -1
/// if the strategy never knees inside the sweep.
double knee_load(const std::vector<Point>& pts) {
  if (pts.empty()) return -1.0;
  double base = pts.front().worst_p99_ns;
  for (const Point& p : pts) {
    if (p.worst_p99_ns > 2.0 * base) return p.load;
  }
  return -1.0;
}

void json_points(std::ofstream& out, const std::vector<Point>& pts) {
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const Point& p = pts[i];
    out << "      {\"offered_load_rps\": " << p.load
        << ", \"worst_p99_ns\": " << p.worst_p99_ns
        << ", \"worst_p999_ns\": " << p.worst_p999_ns
        << ", \"goodput_rps\": " << p.goodput_rps
        << ", \"window_us\": " << p.window_us << ", \"tenants\": [";
    for (std::size_t t = 0; t < p.tenants.size(); ++t) {
      const TenantTail& tt = p.tenants[t];
      out << (t ? ", " : "") << "{\"p50_ns\": " << tt.p50_ns
          << ", \"p99_ns\": " << tt.p99_ns << ", \"p999_ns\": " << tt.p999_ns
          << ", \"ops\": " << tt.ops << ", \"slo_ok\": " << tt.slo_ok << "}";
    }
    out << "]}" << (i + 1 < pts.size() ? "," : "") << "\n";
  }
}

/// Put-path blame at one load: rerun one point with a flight recorder
/// attached (recording is zero-drift, so the tails match the sweep's) and
/// pull the put path's heaviest categories out of `gputn analyze`'s tables.
struct BlamePoint {
  const char* strategy = "";
  double put_p999_ns = 0.0;
  double server_proc_share_pct = 0.0;
  double server_proc_p999_ns = 0.0;
  std::vector<obs::CategoryRow> rows;
};

BlamePoint blame_at(double load, workloads::Strategy strat,
                    const char* name, const serve::ServeConfig& base) {
  obs::FlightRecorder rec{obs::FlightConfig{}};
  serve::ServeConfig cfg = base;
  cfg.strategy = strat;
  cfg.offered_load = load;
  cfg.flight = &rec;
  serve::ServeResult res = serve::run_serve(cfg);
  if (!res.correct) {
    std::fprintf(stderr, "fig_serve_tail: blame run %s failed\n", name);
    std::exit(1);
  }
  obs::Analysis a = obs::analyze_flight(rec.json(), name);
  BlamePoint bp;
  bp.strategy = name;
  for (const obs::PathTable& t : a.runs[0].paths) {
    if (t.path != "put") continue;
    bp.put_p999_ns = t.latency.quantile(0.999);
    bp.rows = t.rows;
    for (const obs::CategoryRow& r : t.rows) {
      if (r.category == "server_proc") {
        bp.server_proc_share_pct = r.share_pct;
        bp.server_proc_p999_ns = r.p999_ns;
      }
    }
  }
  return bp;
}

void json_blame(std::ofstream& out, const BlamePoint& bp) {
  out << "      {\"strategy\": \"" << bp.strategy
      << "\", \"put_p999_ns\": " << bp.put_p999_ns
      << ", \"server_proc_share_pct\": " << bp.server_proc_share_pct
      << ", \"server_proc_p999_ns\": " << bp.server_proc_p999_ns
      << ", \"categories\": [";
  for (std::size_t i = 0; i < bp.rows.size(); ++i) {
    const obs::CategoryRow& r = bp.rows[i];
    out << (i ? ", " : "") << "{\"category\": \"" << r.category
        << "\", \"share_pct\": " << r.share_pct
        << ", \"p999_ns\": " << r.p999_ns << "}";
  }
  out << "]}";
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_serve.json";
  if (argc > 1 && std::strncmp(argv[1], "--", 2) != 0) out_path = argv[1];

  const std::vector<double> loads = {1e6, 2e6, 4e6};
  serve::ServeConfig base;
  base.tenants = 4;
  base.window = 4;
  base.requests = 200;
  base.keyspace = 256;
  base.read_fraction = 0.5;

  exp::Runner runner(exp::jobs_from_args(argc, argv));
  exp::RunSummary sweep = runner.run(exp::serve_load_plan(loads, base));
  for (const exp::RunResult& r : sweep.results) {
    if (!r.ok || !r.result.correct) {
      std::fprintf(stderr, "fig_serve_tail: %s failed: %s\n", r.id.c_str(),
                   r.error.c_str());
      return 1;
    }
  }

  // Plan order is load-major with {CPU, GPU-TN} inner.
  std::vector<Point> cpu, gputn;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    cpu.push_back(extract(loads[i], "CPU", sweep.results[2 * i].result,
                          base.tenants));
    gputn.push_back(extract(loads[i], "GPU-TN",
                            sweep.results[2 * i + 1].result, base.tenants));
  }
  double cpu_knee = knee_load(cpu);
  double gputn_knee = knee_load(gputn);
  double tail_advantage = cpu.back().worst_p99_ns / gputn.back().worst_p99_ns;

  std::printf("Serving tail latency: %d tenants, zipf %.2f, rw-mix %.2f, "
              "%zu requests/tenant\n\n",
              base.tenants, base.zipf, base.read_fraction,
              static_cast<std::size_t>(base.requests));
  std::printf("%10s %8s %10s %10s %10s %12s\n", "load/s", "strat", "p50 us",
              "p99 us", "p999 us", "goodput/s");
  for (std::size_t i = 0; i < loads.size(); ++i) {
    for (const Point* p : {&cpu[i], &gputn[i]}) {
      double p50 = 0.0;
      for (const TenantTail& tt : p->tenants) p50 = std::max(p50, tt.p50_ns);
      std::printf("%10.0f %8s %10.2f %10.2f %10.2f %12.0f\n", p->load,
                  p->strategy, p50 / 1e3, p->worst_p99_ns / 1e3,
                  p->worst_p999_ns / 1e3, p->goodput_rps);
    }
  }
  std::printf("\nknee (p99 > 2x lowest-load p99): CPU at ");
  if (cpu_knee > 0) std::printf("%.0f req/s", cpu_knee);
  else std::printf("none in sweep");
  std::printf(", GPU-TN at ");
  if (gputn_knee > 0) std::printf("%.0f req/s", gputn_knee);
  else std::printf("none in sweep");
  std::printf("\nGPU-TN p99 advantage at %.0f req/s: %.2fx\n", loads.back(),
              tail_advantage);

  // Where does the put tail go at peak load? Blame attribution from the
  // flight recorder: the CPU proxy's put p999 should sit in server_proc
  // (host scan + post), GPU-TN's should not.
  BlamePoint cpu_blame = blame_at(loads.back(), workloads::Strategy::kCpu,
                                  "CPU", base);
  BlamePoint gputn_blame = blame_at(loads.back(),
                                    workloads::Strategy::kGpuTn, "GPU-TN",
                                    base);
  std::printf("\nput-path blame at %.0f req/s (share of path time):\n",
              loads.back());
  for (const BlamePoint* bp : {&cpu_blame, &gputn_blame}) {
    std::printf("%10s  put p999 %8.2f us  server_proc %5.1f%% "
                "(p999 %.2f us)\n",
                bp->strategy, bp->put_p999_ns / 1e3,
                bp->server_proc_share_pct, bp->server_proc_p999_ns / 1e3);
  }

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"tenants\": " << base.tenants << ",\n"
      << "  \"zipf\": " << base.zipf << ",\n"
      << "  \"read_fraction\": " << base.read_fraction << ",\n"
      << "  \"requests_per_tenant\": " << base.requests << ",\n"
      << "  \"cpu_knee_rps\": " << cpu_knee << ",\n"
      << "  \"gputn_knee_rps\": " << gputn_knee << ",\n"
      << "  \"gputn_p99_advantage_at_peak\": " << tail_advantage << ",\n"
      << "  \"cpu\": {\n    \"points\": [\n";
  json_points(out, cpu);
  out << "    ]\n  },\n  \"gputn\": {\n    \"points\": [\n";
  json_points(out, gputn);
  out << "    ]\n  },\n  \"blame_at_peak\": {\n    \"points\": [\n";
  json_blame(out, cpu_blame);
  out << ",\n";
  json_blame(out, gputn_blame);
  out << "\n    ]\n  }\n}\n";
  if (!out.good()) {
    std::fprintf(stderr, "fig_serve_tail: cannot write %s\n", out_path);
    return 1;
  }
  std::printf("wrote %s\n", out_path);
  return tail_advantage > 1.0 ? 0 : 1;
}

// Table 2: the simulation configuration in force for all experiments.
#include <cstdio>

#include "cluster/config.hpp"

int main() {
  std::printf("Table 2: GPU-TN simulation configuration\n\n%s",
              gputn::cluster::SystemConfig::table2().describe().c_str());
  return 0;
}

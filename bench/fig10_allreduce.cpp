// Figure 10: strong scaling of an 8 MB ring Allreduce, speedup relative to
// the CPU implementation, 2..32 nodes (§5.4.1).
//
// Paper shape: ~1.4x for all GPU strategies at small node counts; HDN
// decays below 1.0 by ~24 nodes; GDS decays to ~1.0; GPU-TN keeps its
// speedup through 32 nodes.
#include <cstdio>

#include "workloads/allreduce.hpp"

using namespace gputn;
using namespace gputn::workloads;

int main() {
  std::printf("Figure 10: 8MB fp32 ring Allreduce, speedup vs CPU\n\n");
  std::printf("%6s %12s %8s %8s %8s %8s   %s\n", "nodes", "CPU us", "CPU",
              "HDN", "GDS", "GPU-TN", "verified");

  for (int nodes : {2, 5, 8, 11, 14, 17, 20, 23, 26, 29, 32}) {
    AllreduceResult res[4];
    bool all_ok = true;
    for (int i = 0; i < 4; ++i) {
      AllreduceConfig cfg;
      cfg.strategy = kAllStrategies[i];
      cfg.nodes = nodes;
      cfg.elements = 2 * 1024 * 1024;  // 8 MB fp32
      res[i] = run_allreduce(cfg);
      all_ok = all_ok && res[i].correct;
    }
    double cpu = sim::to_us(res[0].total_time);
    std::printf("%6d %12.0f %8.3f %8.3f %8.3f %8.3f   %s\n", nodes, cpu, 1.0,
                cpu / sim::to_us(res[1].total_time),
                cpu / sim::to_us(res[2].total_time),
                cpu / sim::to_us(res[3].total_time),
                all_ok ? "ok" : "REDUCTION MISMATCH");
  }
  return 0;
}

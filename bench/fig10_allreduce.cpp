// Figure 10: strong scaling of an 8 MB ring Allreduce, speedup relative to
// the CPU implementation, 2..32 nodes (§5.4.1).
//
// Paper shape: ~1.4x for all GPU strategies at small node counts; HDN
// decays below 1.0 by ~24 nodes; GDS decays to ~1.0; GPU-TN keeps its
// speedup through 32 nodes.
//
// The (nodes x strategy) sweep runs through the parallel experiment engine;
// pass `--jobs N` to bound the worker count (default: all cores). Output is
// identical at any jobs value.
#include <cstdio>
#include <vector>

#include "exp/runner.hpp"
#include "exp/sweeps.hpp"

using namespace gputn;

int main(int argc, char** argv) {
  const std::vector<int> nodes = {2, 5, 8, 11, 14, 17, 20, 23, 26, 29, 32};

  exp::Runner runner(exp::jobs_from_args(argc, argv));
  exp::RunSummary sweep =
      runner.run(exp::fig10_plan(nodes, /*elements=*/2 * 1024 * 1024));
  for (const exp::RunResult& r : sweep.results) {
    if (!r.ok) {
      std::fprintf(stderr, "fig10: %s failed: %s\n", r.id.c_str(),
                   r.error.c_str());
      return 1;
    }
  }

  std::printf("Figure 10: 8MB fp32 ring Allreduce, speedup vs CPU\n\n");
  std::printf("%6s %12s %8s %8s %8s %8s   %s\n", "nodes", "CPU us", "CPU",
              "HDN", "GDS", "GPU-TN", "verified");
  for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
    // Plan order: for each node count, CPU/HDN/GDS/GPU-TN.
    const exp::RunResult* row = &sweep.results[ni * 4];
    auto us = [&](int s) { return sim::to_us(row[s].result.total_time); };
    bool all_ok = row[0].result.correct && row[1].result.correct &&
                  row[2].result.correct && row[3].result.correct;
    double cpu = us(0);
    std::printf("%6d %12.0f %8.3f %8.3f %8.3f %8.3f   %s\n", nodes[ni], cpu,
                1.0, cpu / us(1), cpu / us(2), cpu / us(3),
                all_ok ? "ok" : "REDUCTION MISMATCH");
  }
  return 0;
}

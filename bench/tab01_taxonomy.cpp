// Table 1, quantified: the full GPU-networking taxonomy on the latency
// microbenchmark.
//
// The paper compares GPU Host Networking and GPU Native Networking only
// qualitatively (§5.1.1: no open-source implementations were available for
// its simulation environment). Having built the whole substrate, we can
// run them: GHN burns a polling helper thread and pays the host send stack
// per message; GNN keeps the CPU out entirely but serializes packet
// construction onto the GPU.
#include <cstdio>

#include "workloads/microbench.hpp"

using namespace gputn;
using namespace gputn::workloads;

namespace {

struct Row {
  const char* gpu_triggered;
  const char* intra_kernel;
  const char* gpu_overhead;
  const char* cpu_overhead;
};

Row describe(Strategy s) {
  switch (s) {
    case Strategy::kCpu:
      return {"-", "-", "-", "everything"};
    case Strategy::kHdn:
      return {"no", "no", "kernel boundary", "network stack"};
    case Strategy::kGds:
      return {"yes", "no", "kernel boundary, trigger", "partial stack"};
    case Strategy::kGhn:
      return {"no", "yes", "CPU/GPU queues", "service thread + stack"};
    case Strategy::kGnn:
      return {"yes", "yes", "network stack on GPU", "none"};
    case Strategy::kGpuTn:
      return {"yes", "yes", "trigger", "partial stack"};
  }
  return {};
}

}  // namespace

int main() {
  std::printf("Table 1 (quantified): GPU networking taxonomy on the\n"
              "one-cache-line microbenchmark\n\n");
  std::printf("%-7s %10s %12s %11s %9s   %-26s %s\n", "config", "e2e (us)",
              "vs GPU-TN", "GPU trig?", "intra-k?", "GPU overhead",
              "CPU overhead");

  double tn_us = 0.0;
  MicrobenchResult results[6];
  int i = 0;
  for (Strategy s : kTaxonomyStrategies) {
    results[i] = run_microbench(s);
    if (s == Strategy::kGpuTn) tn_us = sim::to_us(results[i].end_to_end());
    ++i;
  }
  i = 0;
  for (Strategy s : kTaxonomyStrategies) {
    Row row = describe(s);
    double us = sim::to_us(results[i].end_to_end());
    std::printf("%-7s %10.2f %11.2fx %11s %9s   %-26s %s\n", strategy_name(s),
                us, us / tn_us, row.gpu_triggered, row.intra_kernel,
                row.gpu_overhead, row.cpu_overhead);
    ++i;
  }
  std::printf(
      "\n§5.1.1's qualitative claims, now measured: GPU-TN matches GHN's\n"
      "intra-kernel latency class without the helper thread, and beats\n"
      "GNN because packet construction stays on the CPU (off the critical\n"
      "path). GHN additionally burned a host core polling.\n");
  return 0;
}

// Ablation (§6, triggered operations): NIC-offloaded forwarding chains vs
// GPU-triggered forwarding.
//
// A buffer is relayed around a ring of N nodes. Two implementations:
//
//   GPU relay : each intermediate node's persistent kernel polls the
//               arrival flag and triggers the next hop's pre-staged put
//               (GPU-TN style).
//   NIC relay : each hop's put carries a counting-receive tag that directly
//               arms the next pre-staged put on the receiving NIC — no GPU
//               or CPU touches the critical path at intermediate nodes
//               (Portals-4 triggered-op chains, the §6 lineage of GPU-TN).
//
// The NIC relay removes the GPU's poll + system-scope store from every hop.
#include <cstdio>
#include <vector>

#include "cluster/cluster.hpp"
#include "sim/sync.hpp"

using namespace gputn;

namespace {

constexpr std::uint64_t kBytes = 4096;

cluster::SystemConfig config() {
  cluster::SystemConfig cfg = cluster::SystemConfig::table2();
  cfg.dram_bytes = 4u << 20;
  return cfg;
}

struct Ring {
  explicit Ring(sim::Simulator& sim, int n) : cluster(sim, config(), n) {
    for (int i = 0; i < n; ++i) {
      buf.push_back(cluster.node(i).memory().alloc(kBytes));
      flag.push_back(cluster.node(i).rt().alloc_flag());
    }
    cluster.node(0).memory().store<std::uint64_t>(buf[0], 0xFEEDFACE);
  }
  cluster::Cluster cluster;
  std::vector<mem::Addr> buf;
  std::vector<mem::Addr> flag;
};

/// GPU relay: intermediate kernels poll + trigger.
double run_gpu_relay(int n) {
  sim::Simulator sim;
  Ring r(sim, n);
  for (int i = 0; i < n - 1; ++i) {
    auto& node = r.cluster.node(i);
    nic::PutDesc put;
    put.target = i + 1;
    put.local_addr = r.buf[i];
    put.bytes = kBytes;
    put.remote_addr = r.buf[i + 1];
    put.remote_flag = r.flag[i + 1];
    node.triggered().register_put(/*tag=*/1, /*threshold=*/1, put);

    mem::Addr trig = node.rt().trigger_addr();
    mem::Addr my_flag = r.flag[i];
    gpu::KernelDesc k;
    k.name = "relay";
    k.num_wgs = 1;
    bool is_origin = i == 0;
    k.fn = [trig, my_flag, is_origin](gpu::WorkGroupCtx& ctx) -> sim::Task<> {
      if (!is_origin) co_await ctx.wait_value_ge(my_flag, 1);
      co_await ctx.store_system(trig, 1);
    };
    node.gpu().enqueue_kernel(std::move(k));
  }
  sim.run();
  auto& last = r.cluster.node(n - 1);
  if (last.memory().load<std::uint64_t>(r.flag[n - 1]) != 1 ||
      last.memory().load<std::uint64_t>(r.buf[n - 1]) != 0xFEEDFACE) {
    std::printf("  [gpu relay failed!]\n");
  }
  // Subtract the one-time launch cost of the origin kernel so the per-hop
  // comparison is clean: measure from origin trigger availability.
  return sim::to_us(sim.now());
}

/// NIC relay: pre-staged chain, processor-free forwarding.
double run_nic_relay(int n) {
  sim::Simulator sim;
  Ring r(sim, n);
  for (int i = 1; i < n - 1; ++i) {
    auto& node = r.cluster.node(i);
    nic::PutDesc put;
    put.target = i + 1;
    put.local_addr = r.buf[i];
    put.bytes = kBytes;
    put.remote_addr = r.buf[i + 1];
    put.remote_flag = r.flag[i + 1];
    put.remote_trigger_tag_plus1 = (i + 1 < n - 1) ? 1 + 1 : 0;
    node.triggered().register_put(/*tag=*/1, /*threshold=*/1, put);
  }
  // Origin: a kernel triggers the first hop (as in GPU-TN); hops beyond
  // run entirely on NICs.
  auto& origin = r.cluster.node(0);
  nic::PutDesc first;
  first.target = 1;
  first.local_addr = r.buf[0];
  first.bytes = kBytes;
  first.remote_addr = r.buf[1];
  first.remote_flag = r.flag[1];
  first.remote_trigger_tag_plus1 = (n > 2) ? 1 + 1 : 0;
  origin.triggered().register_put(1, 1, first);
  mem::Addr trig = origin.rt().trigger_addr();
  gpu::KernelDesc k;
  k.num_wgs = 1;
  k.fn = [trig](gpu::WorkGroupCtx& ctx) -> sim::Task<> {
    co_await ctx.store_system(trig, 1);
  };
  origin.gpu().enqueue_kernel(std::move(k));

  sim.run();
  auto& last = r.cluster.node(n - 1);
  if (last.memory().load<std::uint64_t>(r.flag[n - 1]) != 1 ||
      last.memory().load<std::uint64_t>(r.buf[n - 1]) != 0xFEEDFACE) {
    std::printf("  [nic relay failed!]\n");
  }
  return sim::to_us(sim.now());
}

}  // namespace

int main() {
  std::printf("Ablation: NIC-offloaded trigger chains vs GPU-relayed "
              "forwarding (4 KiB ring relay)\n\n");
  std::printf("%6s %12s %12s %14s\n", "hops", "GPU relay", "NIC chain",
              "saved per hop");
  double prev_gpu = 0, prev_nic = 0;
  for (int n : {2, 4, 8, 16, 32}) {
    double gpu = run_gpu_relay(n);
    double nic = run_nic_relay(n);
    double per_hop = n > 2 ? (gpu - nic) / (n - 2) : 0.0;
    std::printf("%6d %10.2fus %10.2fus %12.3fus\n", n - 1, gpu, nic, per_hop);
    prev_gpu = gpu;
    prev_nic = nic;
  }
  (void)prev_gpu;
  (void)prev_nic;
  std::printf(
      "\nEach intermediate hop in the GPU relay pays flag-poll + system-\n"
      "scope trigger store (plus keeping a kernel resident); the NIC chain\n"
      "forwards in the rx pipeline. This is the §6 triggered-operations\n"
      "lineage (Underwood et al.) that GPU-TN builds on.\n");
  return 0;
}

// Figure 11: projected training speedup for six deep-learning workloads on
// an 8-node cluster (§5.4.2).
//
// Paper: up to ~20% over HDN and ~5% over GDS (AN4 LSTM); negligible for
// CIFAR. Projection methodology as in the paper: per-bucket allreduce
// latencies come from the ring-allreduce simulation; compute time is
// inferred from Table 3's %Blocked; synchronous SGD means no overlap.
#include <cstdio>

#include "workloads/dl_projection.hpp"

using namespace gputn;
using namespace gputn::workloads;

int main() {
  std::printf("Figure 11: deep learning speedup on 8 nodes (vs CPU allreduce)\n\n");
  DlProjectionConfig cfg;
  auto projections =
      project_dl_workloads(cfg, cluster::SystemConfig::table2());

  std::printf("%-14s %8s %8s %8s %8s   %10s %12s\n", "workload", "CPU", "HDN",
              "GDS", "GPU-TN", "TN vs HDN", "TN vs GDS");
  for (const auto& p : projections) {
    double tn_hdn = (p.compute_seconds + p.comm_seconds.at(Strategy::kHdn)) /
                        (p.compute_seconds + p.comm_seconds.at(Strategy::kGpuTn)) -
                    1.0;
    double tn_gds = (p.compute_seconds + p.comm_seconds.at(Strategy::kGds)) /
                        (p.compute_seconds + p.comm_seconds.at(Strategy::kGpuTn)) -
                    1.0;
    std::printf("%-14s %8.3f %8.3f %8.3f %8.3f   %9.1f%% %11.1f%%\n",
                p.workload.name.c_str(), p.speedup.at(Strategy::kCpu),
                p.speedup.at(Strategy::kHdn), p.speedup.at(Strategy::kGds),
                p.speedup.at(Strategy::kGpuTn), 100.0 * tn_hdn,
                100.0 * tn_gds);
  }
  std::printf(
      "\nPaper: GPU-TN up to 20%% over HDN and 5%% over GDS (AN4 LSTM);\n"
      "little improvement on CIFAR. Benefit tracks the share of small-to-\n"
      "medium reductions and the %%Blocked figure.\n");
  return 0;
}

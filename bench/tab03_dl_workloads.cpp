// Table 3: the six CNTK deep-learning workloads and their Allreduce
// characteristics (synthesized traces calibrated to the published table;
// see DESIGN.md for the substitution).
#include <cstdio>

#include "workloads/dl_traces.hpp"

int main() {
  std::printf("Table 3: CNTK workload description\n\n%s",
              gputn::workloads::format_table3().c_str());
  std::printf(
      "\n%%Blocked = share of time blocked on Allreduce under the HDN\n"
      "baseline; Reductions = total reduction calls (both from the paper's\n"
      "Table 3). The bucket-size mix per workload is synthesized; see\n"
      "src/workloads/dl_traces.cpp.\n");
  return 0;
}

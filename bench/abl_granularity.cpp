// Ablation (§4.2): trigger granularity.
//
// The same 64 KiB payload is sent from a 16-work-group kernel at four
// granularities:
//   work-item : 256 tags, threshold 1  -> 256 messages of 256 B
//   pair      : 128 tags, threshold 2  -> 128 messages of 512 B (§4.2.3)
//   work-group:  16 tags, threshold 1  ->  16 messages of 4 KiB
//   kernel    :   1 tag, threshold 16  ->   1 message of 64 KiB
//
// Finer granularities start transfers earlier (pipelining) but pay
// per-message wire/NIC overheads and more trigger traffic.
#include <cstdio>
#include <vector>

#include "cluster/cluster.hpp"
#include "sim/sync.hpp"

using namespace gputn;

namespace {

struct Result {
  double total_us;
  std::uint64_t messages;
  std::uint64_t triggers;
};

Result run_granularity(int num_msgs, int writes_per_msg, int num_wgs) {
  const std::uint64_t kTotalBytes = 64 * 1024;
  const std::uint64_t msg_bytes = kTotalBytes / num_msgs;

  sim::Simulator sim;
  cluster::SystemConfig cfg = cluster::SystemConfig::table2();
  cfg.dram_bytes = 8u << 20;
  cfg.triggered.table.lookup = core::LookupKind::kHash;
  cluster::Cluster cl(sim, cfg, 2);
  auto& a = cl.node(0);
  auto& b = cl.node(1);

  mem::Addr src = a.memory().alloc(kTotalBytes);
  mem::Addr dst = b.memory().alloc(kTotalBytes);
  std::vector<mem::Addr> flags;
  for (int i = 0; i < num_msgs; ++i) flags.push_back(b.rt().alloc_flag());

  sim.spawn(
      [](cluster::Node& n, int num_msgs, int writes_per_msg, int num_wgs,
         std::uint64_t msg_bytes, mem::Addr src, mem::Addr dst,
         std::vector<mem::Addr> flags) -> sim::Task<> {
        for (int i = 0; i < num_msgs; ++i) {
          nic::PutDesc p;
          p.target = 1;
          p.local_addr = src + msg_bytes * i;
          p.bytes = msg_bytes;
          p.remote_addr = dst + msg_bytes * i;
          p.remote_flag = flags[i];
          co_await n.rt().trig_put(i, writes_per_msg, p);
        }
        mem::Addr trig = n.rt().trigger_addr();
        // Total trigger writes = num_msgs * writes_per_msg, spread evenly
        // across work-groups (work-items modelled as per-WG write loops).
        int total_writes = num_msgs * writes_per_msg;
        int per_wg = total_writes / num_wgs;
        gpu::KernelDesc k;
        k.num_wgs = num_wgs;
        std::uint64_t slice = 64 * 1024 / static_cast<std::uint64_t>(num_wgs);
        k.fn = [trig, per_wg, num_msgs, writes_per_msg, slice](
                   gpu::WorkGroupCtx& ctx) -> sim::Task<> {
          co_await ctx.compute_mem(slice);  // produce this WG's data
          co_await ctx.fence_system();
          int base = ctx.wg_id() * per_wg;
          for (int w = 0; w < per_wg; ++w) {
            int write_index = base + w;
            std::uint64_t tag = write_index / writes_per_msg;
            (void)num_msgs;
            co_await ctx.store_system(trig, tag);
          }
        };
        co_await n.rt().launch_sync(std::move(k));
      }(a, num_msgs, writes_per_msg, num_wgs, msg_bytes, src, dst, flags),
      "host");
  // Target-side observer: completion when every message's flag is set.
  sim::Tick all_arrived = -1;
  sim.spawn(
      [](cluster::Node& n, std::vector<mem::Addr> flags,
         sim::Tick& out) -> sim::Task<> {
        for (auto f : flags) co_await n.cpu().wait_value_ge(f, 1);
        out = n.cpu().simulator().now();
      }(b, flags, all_arrived),
      "target");
  sim.run();
  if (all_arrived < 0) std::printf("  [messages never completed!]\n");

  Result r;
  r.total_us = sim::to_us(all_arrived);
  r.messages = b.nic().stats().counter_value("puts_received");
  r.triggers = a.triggered().triggers_received();
  return r;
}

}  // namespace

int main() {
  std::printf("Ablation: trigger granularity (§4.2), 64 KiB total payload\n\n");
  std::printf("%-12s %10s %10s %10s %12s\n", "granularity", "messages",
              "triggers", "bytes/msg", "total us");
  struct Case {
    const char* name;
    int msgs;
    int writes_per_msg;
  } cases[] = {
      {"work-item", 256, 1},
      {"pair", 128, 2},
      {"work-group", 16, 1},
      {"kernel", 1, 16},
  };
  for (const auto& c : cases) {
    Result r = run_granularity(c.msgs, c.writes_per_msg, 16);
    std::printf("%-12s %10llu %10llu %10d %12.2f\n", c.name,
                static_cast<unsigned long long>(r.messages),
                static_cast<unsigned long long>(r.triggers),
                64 * 1024 / c.msgs, r.total_us);
  }
  std::printf(
      "\n§4.2.3: the threshold/counter pair lets the programmer trade\n"
      "message count against per-message overhead freely — pairs use half\n"
      "the messages of work-item granularity with the same trigger count.\n");
  return 0;
}

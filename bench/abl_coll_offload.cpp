// Ablation (§6): NIC-offloaded allgather inside the GPU-TN allreduce.
//
// In the baseline GPU-TN collective the persistent kernel paces every ring
// step: it polls the arrival flag and stores the trigger tag even for pure
// forwarding steps. With triggered-op chains (counting receive events
// arming pre-staged puts), the entire allgather phase runs on the NICs:
// each arriving chunk immediately launches the next hop, and the GPU only
// observes its own final arrivals.
#include <cstdio>

#include "workloads/allreduce.hpp"

using namespace gputn;
using namespace gputn::workloads;

namespace {

void sweep(const char* label, int nodes, std::size_t elements) {
  AllreduceConfig base;
  base.strategy = Strategy::kGpuTn;
  base.nodes = nodes;
  base.elements = elements;
  AllreduceConfig off = base;
  off.nic_offload_allgather = true;
  auto a = run_allreduce(base);
  auto b = run_allreduce(off);
  std::printf("%-14s %6d %12.1fus %12.1fus %9.2f%%   %s\n", label, nodes,
              sim::to_us(a.total_time), sim::to_us(b.total_time),
              100.0 * (1.0 - sim::to_us(b.total_time) /
                                 sim::to_us(a.total_time)),
              (a.correct && b.correct) ? "ok" : "REDUCTION MISMATCH");
}

}  // namespace

int main() {
  std::printf("Ablation: GPU-paced vs NIC-offloaded allgather in the GPU-TN\n"
              "ring allreduce\n\n");
  std::printf("%-14s %6s %14s %14s %10s   %s\n", "payload", "nodes",
              "GPU-paced", "NIC-offloaded", "saving", "verified");
  // Large payloads: wire time dominates; pipelining hides the GPU pacing.
  for (int nodes : {8, 16, 32}) sweep("8 MB", nodes, 2 * 1024 * 1024);
  // Small payloads: per-hop GPU poll quantization + trigger stores are a
  // real fraction of each forwarding step.
  for (int nodes : {8, 16, 32}) sweep("64 KB", nodes, 16 * 1024);
  for (int nodes : {8, 16, 32}) sweep("16 KB", nodes, 4 * 1024);
  std::printf(
      "\nAt 8 MB the GPU pacing is fully hidden behind the wire; at small\n"
      "payloads the chained allgather shaves the per-hop GPU poll +\n"
      "system-scope trigger store. Either way the GPU leaves the\n"
      "allgather's control path entirely — the point of the §6\n"
      "triggered-operations lineage.\n");
  return 0;
}

// Ablation (§6): NIC-offloaded allgather inside the GPU-TN allreduce.
//
// In the baseline GPU-TN collective the persistent kernel paces every ring
// step: it polls the arrival flag and stores the trigger tag even for pure
// forwarding steps. With triggered-op chains (counting receive events
// arming pre-staged puts), the entire allgather phase runs on the NICs:
// each arriving chunk immediately launches the next hop, and the GPU only
// observes its own final arrivals.
//
// Sweep runs through the parallel experiment engine (`--jobs N`, default
// all cores); output is identical at any jobs value.
#include <cstdio>
#include <utility>
#include <vector>

#include "exp/runner.hpp"
#include "exp/sweeps.hpp"

using namespace gputn;

int main(int argc, char** argv) {
  struct Row {
    const char* label;
    int nodes;
    std::size_t elements;
  };
  // Large payloads: wire time dominates; pipelining hides the GPU pacing.
  // Small payloads: per-hop GPU poll quantization + trigger stores are a
  // real fraction of each forwarding step.
  std::vector<Row> rows;
  for (int n : {8, 16, 32}) rows.push_back({"8 MB", n, 2 * 1024 * 1024});
  for (int n : {8, 16, 32}) rows.push_back({"64 KB", n, 16 * 1024});
  for (int n : {8, 16, 32}) rows.push_back({"16 KB", n, 4 * 1024});

  std::vector<std::pair<int, std::size_t>> points;
  for (const Row& r : rows) points.emplace_back(r.nodes, r.elements);

  exp::Runner runner(exp::jobs_from_args(argc, argv));
  exp::RunSummary sweep = runner.run(exp::coll_offload_plan(points));
  for (const exp::RunResult& r : sweep.results) {
    if (!r.ok) {
      std::fprintf(stderr, "abl_coll_offload: %s failed: %s\n", r.id.c_str(),
                   r.error.c_str());
      return 1;
    }
  }

  std::printf("Ablation: GPU-paced vs NIC-offloaded allgather in the GPU-TN\n"
              "ring allreduce\n\n");
  std::printf("%-14s %6s %14s %14s %10s   %s\n", "payload", "nodes",
              "GPU-paced", "NIC-offloaded", "saving", "verified");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    // Plan order: per row, {GPU-paced, NIC-offloaded}.
    const exp::RunResult& a = sweep.results[i * 2];
    const exp::RunResult& b = sweep.results[i * 2 + 1];
    std::printf("%-14s %6d %12.1fus %12.1fus %9.2f%%   %s\n", rows[i].label,
                rows[i].nodes, sim::to_us(a.result.total_time),
                sim::to_us(b.result.total_time),
                100.0 * (1.0 - sim::to_us(b.result.total_time) /
                                   sim::to_us(a.result.total_time)),
                (a.result.correct && b.result.correct) ? "ok"
                                                       : "REDUCTION MISMATCH");
  }
  std::printf(
      "\nAt 8 MB the GPU pacing is fully hidden behind the wire; at small\n"
      "payloads the chained allgather shaves the per-hop GPU poll +\n"
      "system-scope trigger store. Either way the GPU leaves the\n"
      "allgather's control path entirely — the point of the §6\n"
      "triggered-operations lineage.\n");
  return 0;
}

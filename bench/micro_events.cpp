// Event-engine microbenchmark: the calendar-queue + EventFn hot path
// against the engine this repo started with (std::priority_queue of
// heap-allocated std::function closures).
//
// The baseline below is a faithful miniature of the original
// sim::Simulator core — same Scheduled record, same (when, seq) ordering
// comparator, same per-event std::function allocation — so the speedup is
// the engine swap, not an apples-to-oranges workload change.
//
// The event mix was measured from this repo's own workloads (jacobi,
// allreduce, microbench under the Table 2 config) by instrumenting
// schedule_at: ~5% zero-delay wakeups, delays clustered at 30-130 ns
// (doorbells, DMA, wire hops) with tails at 4-8 ns and 0.25-0.5 us, and a
// steady-state pending-event depth of ~19 events per node (allreduce on
// the Table 2 machine: avg 76 pending at 4 nodes, 320 at 16, 1217 at 64).
// The 1024 concurrent chains below reproduce the depth of a ~50-node
// cluster, the scale-out regime the paper targets. A small far-future
// share is added on top to keep the overflow/promotion tier honest.
//
// Closure sizes follow the real call sites too: zero-delay wakeups carry
// one pointer (a coroutine handle), while the wire-hop/timer events that
// dominate the mix capture a pointer plus a small packet or timer record —
// 32 bytes, as in net/link.cpp and net/switch.cpp ([out, Packet]) and
// fault/reliability.cpp ([this, peer, epoch]). That is past libstdc++
// std::function's 16-byte small-object buffer, so the baseline pays the
// same per-event heap allocation the seed engine paid.
//
// Emits BENCH_events.json with events/sec for both engines and the ratio.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <queue>
#include <vector>

#include "sim/simulator.hpp"

namespace {

// --------------------------------------------------------------------------
// Baseline: the seed engine, miniaturised. priority_queue + std::function.
// --------------------------------------------------------------------------
class BaselineSim {
 public:
  // noinline: the seed's schedule_at and run lived out of line in their own
  // translation unit; letting the compiler flatten the miniature into the
  // harness would make the baseline faster than the engine it stands for.
  __attribute__((noinline)) void schedule_at(gputn::sim::Tick when,
                                             std::function<void()> fn) {
    queue_.push(Scheduled{when, next_seq_++, std::move(fn)});
  }
  __attribute__((noinline)) void schedule_in(gputn::sim::Tick delay,
                                             std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }
  gputn::sim::Tick now() const { return now_; }

  __attribute__((noinline)) std::uint64_t run() {
    std::uint64_t executed = 0;
    while (!queue_.empty()) {
      // priority_queue::top is const; const_cast move matches the seed.
      auto& top = const_cast<Scheduled&>(queue_.top());
      now_ = top.when;
      std::function<void()> fn = std::move(top.fn);
      queue_.pop();
      fn();
      ++executed;
    }
    return executed;
  }

 private:
  struct Scheduled {
    gputn::sim::Tick when;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Scheduled& o) const {
      return when != o.when ? when > o.when : seq > o.seq;
    }
  };
  std::priority_queue<Scheduled, std::vector<Scheduled>, std::greater<>>
      queue_;
  gputn::sim::Tick now_ = 0;
  std::uint64_t next_seq_ = 0;
};

// --------------------------------------------------------------------------
// Workload: a fixed event mix driven identically into either engine.
// Each executed event reschedules itself until its chain is spent, so the
// queue stays populated and the measurement is steady-state.
// --------------------------------------------------------------------------
constexpr int kChains = 1024;       // concurrent self-rescheduling chains
constexpr int kEventsPerChain = 1000;
constexpr std::uint64_t kTotalEvents =
    static_cast<std::uint64_t>(kChains) * kEventsPerChain;

/// Delay table following the measured distribution (see the header
/// comment). Precomputed so the timed loop is queue operations, not hash
/// arithmetic — both engines index the same table.
constexpr std::size_t kDelayTableSize = 4096;  // power of two, L1-resident
std::vector<gputn::sim::Tick> build_delay_table() {
  std::vector<gputn::sim::Tick> t(kDelayTableSize);
  for (std::size_t i = 0; i < kDelayTableSize; ++i) {
    std::uint32_t h = static_cast<std::uint32_t>(i * 2654435761u) ^
                      static_cast<std::uint32_t>(i >> 3);
    std::uint32_t r = h % 100;
    gputn::sim::Tick d;
    if (r < 6) d = 0;                             // wakeup (when == now)
    else if (r < 16) d = 4096 + (h % 4096);       // 4-8 ns (cmd fetch, hops)
    else if (r < 36) d = 32768 + (h % 32768);     // 33-65 ns (doorbell, DMA)
    else if (r < 86) d = 65536 + (h % 65536);     // 65-131 ns (wire, kernel)
    else if (r < 99) d = 262144 + (h % 262144);   // 0.26-0.52 us (launches)
    else d = (1 << 22) + (h % (1 << 20));         // ~4 us: overflow tier
    t[i] = d;
  }
  return t;
}
const std::vector<gputn::sim::Tick>& delay_table() {
  static const std::vector<gputn::sim::Tick> t = build_delay_table();
  return t;
}

template <typename Sim>
double measure(Sim& sim) {
  const gputn::sim::Tick* delays = delay_table().data();
  struct Chain {
    Sim* sim;
    const gputn::sim::Tick* delays;
    std::uint32_t cursor;
    int remaining;
    std::uint64_t checksum = 0;  // forces the closures to do real work
    // Packet-hand-off record, sized like the real ones (owner pointer plus
    // a 24-byte Packet — see the header comment).
    struct Hop {
      Chain* chain;
      std::uint64_t payload;
      std::uint32_t wire_bytes;
      std::uint32_t flags;
      std::uint64_t tag;
    };
    static_assert(sizeof(Hop) == 32);
    void fire() {
      checksum += static_cast<std::uint64_t>(sim->now());
      if (--remaining > 0) {
        gputn::sim::Tick d = delays[cursor++ & (kDelayTableSize - 1)];
        if (d == 0) {
          // Wakeup: one pointer of state, like a coroutine resumption.
          sim->schedule_in(0, [this] { this->fire(); });
        } else {
          // Wire hop / timer: closure carries the packet it delivers.
          Hop h{this, checksum, static_cast<std::uint32_t>(d), 0, checksum};
          sim->schedule_in(d, [h] { h.chain->deliver(h); });
        }
      }
    }
    void deliver(const Hop& h) {
      checksum ^= h.payload + h.tag + h.wire_bytes;
      fire();
    }
  };
  std::vector<Chain> chains(kChains);
  for (int c = 0; c < kChains; ++c) {
    chains[c] = Chain{&sim, delays, static_cast<std::uint32_t>(c * 97),
                      kEventsPerChain};
    sim.schedule_at(delays[static_cast<std::size_t>(c * 31) &
                           (kDelayTableSize - 1)],
                    [&chains, c] { chains[c].fire(); });
  }

  auto t0 = std::chrono::steady_clock::now();
  std::uint64_t executed = sim.run();
  auto t1 = std::chrono::steady_clock::now();
  if (executed != kTotalEvents) {
    std::fprintf(stderr, "micro_events: executed %llu, expected %llu\n",
                 static_cast<unsigned long long>(executed),
                 static_cast<unsigned long long>(kTotalEvents));
    std::exit(1);
  }
  double secs = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(executed) / secs;
}

double run_baseline() {
  BaselineSim sim;
  return measure(sim);
}

double run_engine() {
  gputn::sim::Simulator sim;
  return measure(sim);
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_events.json";
  const int reps = 5;

  std::printf("micro_events: %llu events per engine, best of %d runs\n",
              static_cast<unsigned long long>(kTotalEvents), reps);
  // Interleave the repetitions so frequency/thermal phases of the host hit
  // both engines alike, and take the MEDIAN of the per-pair ratios: each
  // ratio compares runs adjacent in time, so a phase shift mid-benchmark
  // moves both sides of a pair together instead of skewing the result.
  double baseline_eps = 0.0;
  double engine_eps = 0.0;
  std::vector<double> ratios;
  for (int i = 0; i < reps; ++i) {
    double b = run_baseline();
    double e = run_engine();
    baseline_eps = std::max(baseline_eps, b);
    engine_eps = std::max(engine_eps, e);
    ratios.push_back(e / b);
  }
  std::sort(ratios.begin(), ratios.end());
  std::printf("  baseline (priority_queue + std::function): %.2f Mev/s\n",
              baseline_eps / 1e6);
  std::printf("  engine   (calendar queue + EventFn):       %.2f Mev/s\n",
              engine_eps / 1e6);
  double speedup = ratios[ratios.size() / 2];
  std::printf("  speedup: %.2fx\n", speedup);

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"events\": " << kTotalEvents << ",\n"
      << "  \"baseline_eps\": " << static_cast<std::uint64_t>(baseline_eps)
      << ",\n"
      << "  \"engine_eps\": " << static_cast<std::uint64_t>(engine_eps)
      << ",\n"
      << "  \"speedup\": " << speedup << "\n"
      << "}\n";
  if (!out.good()) {
    std::fprintf(stderr, "micro_events: cannot write %s\n", out_path);
    return 1;
  }
  std::printf("  wrote %s\n", out_path);
  return 0;
}

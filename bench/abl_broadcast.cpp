// Extension bench: pipelined ring broadcast under three drives (§6:
// collectives motivated triggered semantics). HDN forwards on the host at
// every hop; GPU-TN forwards from a persistent kernel; the NIC chain
// forwards in NIC hardware with neither processor in the control path.
//
// Sweep runs through the parallel experiment engine (`--jobs N`, default
// all cores); output is identical at any jobs value.
#include <cstdio>
#include <vector>

#include "exp/runner.hpp"
#include "exp/sweeps.hpp"

using namespace gputn;

int main(int argc, char** argv) {
  const std::vector<int> nodes = {2, 4, 8, 16, 32};

  exp::Runner runner(exp::jobs_from_args(argc, argv));
  exp::RunSummary sweep =
      runner.run(exp::broadcast_plan(nodes, /*bytes=*/1 << 20, /*chunks=*/16));
  for (const exp::RunResult& r : sweep.results) {
    if (!r.ok) {
      std::fprintf(stderr, "abl_broadcast: %s failed: %s\n", r.id.c_str(),
                   r.error.c_str());
      return 1;
    }
  }

  std::printf("Extension: 1 MB pipelined ring broadcast (16 chunks)\n\n");
  std::printf("%6s %12s %12s %12s %16s\n", "nodes", "HDN", "GPU-TN",
              "NIC-chain", "chain vs HDN");
  for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
    // Plan order: for each node count, HDN / GPU-TN / NIC-chain.
    const exp::RunResult* row = &sweep.results[ni * 3];
    double t[3];
    bool ok = true;
    for (int i = 0; i < 3; ++i) {
      t[i] = sim::to_us(row[i].result.total_time);
      ok = ok && row[i].result.correct;
    }
    std::printf("%6d %10.1fus %10.1fus %10.1fus %15.1f%%   %s\n", nodes[ni],
                t[0], t[1], t[2], 100.0 * (1.0 - t[2] / t[0]),
                ok ? "" : "[DATA MISMATCH]");
  }
  std::printf(
      "\nPer-hop control cost sets the pipeline's fill latency: host stack\n"
      "(HDN) > GPU poll + trigger (GPU-TN) > NIC rx event (chain). With\n"
      "data streaming through many hops the chain's advantage compounds.\n");
  return 0;
}

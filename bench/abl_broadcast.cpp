// Extension bench: pipelined ring broadcast under three drives (§6:
// collectives motivated triggered semantics). HDN forwards on the host at
// every hop; GPU-TN forwards from a persistent kernel; the NIC chain
// forwards in NIC hardware with neither processor in the control path.
#include <cstdio>

#include "workloads/broadcast.hpp"

using namespace gputn;
using namespace gputn::workloads;

int main() {
  std::printf("Extension: 1 MB pipelined ring broadcast (16 chunks)\n\n");
  std::printf("%6s %12s %12s %12s %16s\n", "nodes", "HDN", "GPU-TN",
              "NIC-chain", "chain vs HDN");
  for (int nodes : {2, 4, 8, 16, 32}) {
    double t[3];
    int i = 0;
    bool ok = true;
    for (BroadcastDrive d : {BroadcastDrive::kHdn, BroadcastDrive::kGpuTn,
                             BroadcastDrive::kNicChain}) {
      BroadcastConfig cfg;
      cfg.drive = d;
      cfg.nodes = nodes;
      cfg.bytes = 1 << 20;
      cfg.chunks = 16;
      auto res = run_broadcast(cfg);
      ok = ok && res.correct;
      t[i++] = sim::to_us(res.total_time);
    }
    std::printf("%6d %10.1fus %10.1fus %10.1fus %15.1f%%   %s\n", nodes, t[0],
                t[1], t[2], 100.0 * (1.0 - t[2] / t[0]),
                ok ? "" : "[DATA MISMATCH]");
  }
  std::printf(
      "\nPer-hop control cost sets the pipeline's fill latency: host stack\n"
      "(HDN) > GPU poll + trigger (GPU-TN) > NIC rx event (chain). With\n"
      "data streaming through many hops the chain's advantage compounds.\n");
  return 0;
}

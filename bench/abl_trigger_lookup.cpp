// Ablation (§3.3): trigger-list lookup structures.
//
// The paper discusses three tag-matching implementations: a hardware linked
// list (Portals-style), a bounded associative array (their prototype: <= 16
// entries), and a hash table. This harness measures the trigger-store ->
// put-on-the-wire latency as the number of active trigger entries grows.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/triggered.hpp"
#include "net/fabric.hpp"
#include "nic/nic.hpp"
#include "sim/simulator.hpp"

using namespace gputn;

namespace {

/// Time from trigger MMIO store to target-side completion, with the target
/// tag registered *behind* `occupancy - 1` other active entries.
double trigger_latency_us(core::LookupKind kind, int occupancy) {
  sim::Simulator sim;
  net::Fabric fabric(sim, net::FabricConfig{});
  mem::Memory m0(1 << 20), m1(1 << 20);
  nic::Nic n0(sim, m0, fabric, nic::NicConfig{});
  nic::Nic n1(sim, m1, fabric, nic::NicConfig{});
  core::TriggeredNicConfig tcfg;
  tcfg.table.lookup = kind;
  tcfg.table.associative_entries = 1 << 20;  // capacity not under test here
  core::TriggeredNic trig(sim, n0, m0, tcfg);

  mem::Addr src = m0.alloc(64);
  mem::Addr dst = m1.alloc(64);
  mem::Addr rflag = m1.alloc(8);
  m1.store<std::uint64_t>(rflag, 0);

  for (int i = 0; i < occupancy - 1; ++i) {
    nic::PutDesc p;
    p.target = 1;
    p.local_addr = src;
    p.bytes = 64;
    p.remote_addr = dst;
    trig.register_put(1000 + i, /*threshold=*/1u << 30, p);
  }
  nic::PutDesc p;
  p.target = 1;
  p.local_addr = src;
  p.bytes = 64;
  p.remote_addr = dst;
  p.remote_flag = rflag;
  trig.register_put(7, 1, p);

  m0.mmio_store(trig.trigger_address(), 7);
  sim.run();
  double us = sim::to_us(sim.now());
  sim.reap_processes();
  if (m1.load<std::uint64_t>(rflag) != 1) std::printf("  [did not fire!]\n");
  return us;
}

}  // namespace

int main() {
  std::printf("Ablation: trigger-entry lookup structure (§3.3)\n");
  std::printf("trigger store -> target completion latency (us)\n\n");
  std::printf("%10s %14s %10s %14s\n", "entries", "associative", "hash",
              "linked-list");
  for (int occ : {1, 4, 8, 16, 64, 256, 1024}) {
    std::printf("%10d %14.3f %10.3f %14.3f\n", occ,
                trigger_latency_us(core::LookupKind::kAssociative, occ),
                trigger_latency_us(core::LookupKind::kHash, occ),
                trigger_latency_us(core::LookupKind::kLinkedList, occ));
  }
  std::printf(
      "\nThe associative CAM is flat but capacity-bounded (prototype: 16);\n"
      "hash is flat and unbounded; the linked list degrades linearly with\n"
      "active entries — why §3.3 recommends bounding active entries or\n"
      "hashing.\n");
  return 0;
}

// Ablation (§5.1 calibration): sensitivity of the Figure 8 uplifts to the
// modelled kernel launch/teardown overhead.
//
// The paper calibrates to 3 us total (optimistic end of Figure 1) and notes
// that "for situations where the number of available kernels exposed to the
// hardware scheduler at once are small ... the performance uplift of GPU-TN
// could be even higher." This sweep quantifies that claim.
#include <cstdio>

#include "workloads/microbench.hpp"

using namespace gputn;
using namespace gputn::workloads;

int main() {
  std::printf("Ablation: Figure 8 uplift vs kernel overhead calibration\n\n");
  std::printf("%16s %10s %10s %10s %12s %12s\n", "launch+teardown", "HDN us",
              "GDS us", "GPU-TN us", "TN vs HDN", "TN vs GDS");
  for (double each_us : {0.5, 1.0, 1.5, 2.5, 5.0, 10.0}) {
    cluster::SystemConfig cfg = cluster::SystemConfig::table2();
    cfg.gpu.launch_latency = sim::us(each_us);
    cfg.gpu.teardown_latency = sim::us(each_us);
    cfg.dram_bytes = 8u << 20;
    double hdn = sim::to_us(run_microbench(Strategy::kHdn, cfg).end_to_end());
    double gds = sim::to_us(run_microbench(Strategy::kGds, cfg).end_to_end());
    double tn = sim::to_us(run_microbench(Strategy::kGpuTn, cfg).end_to_end());
    std::printf("%13.1fus %10.2f %10.2f %10.2f %11.1f%% %11.1f%%\n",
                2 * each_us, hdn, gds, tn, 100.0 * (1.0 - tn / hdn),
                100.0 * (1.0 - tn / gds));
  }
  std::printf(
      "\nGPU-TN's end-to-end latency is launch-bound only; GDS/HDN pay the\n"
      "teardown too, so the uplift grows with kernel overhead — toward the\n"
      "20 us end of Figure 1 the gap widens well past the paper's 25-35%%.\n");
  return 0;
}

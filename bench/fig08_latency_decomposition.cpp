// Figure 8: latency decomposition of the one-cache-line microbenchmark
// under HDN, GDS, and GPU-TN (§5.2).
//
// Paper calibration targets: GPU-TN target completion ~2.71 us, GDS
// ~3.76 us, HDN ~4.21 us; ~35% uplift over HDN and ~25% over GDS; and the
// GPU-TN target receives the data before the initiator's kernel completes.
#include <cstdio>

#include "workloads/microbench.hpp"

using namespace gputn;
using namespace gputn::workloads;

int main() {
  std::printf("Figure 8: microbenchmark latency decomposition (us)\n\n");

  MicrobenchResult results[3] = {
      run_microbench(Strategy::kGpuTn),
      run_microbench(Strategy::kGds),
      run_microbench(Strategy::kHdn),
  };

  for (const auto& r : results) {
    std::printf("%-7s initiator:", strategy_name(r.strategy));
    for (const auto& ph : r.initiator_phases) {
      std::printf("  %s=%.2f", ph.label.c_str(), ph.us());
    }
    std::printf("  (done %.2f)\n", sim::to_us(r.initiator_completion));
    std::printf("%-7s target:    data received at %.2f%s\n", "",
                sim::to_us(r.target_completion),
                r.correct ? "" : "  [PAYLOAD MISMATCH!]");
  }

  double tn = sim::to_us(results[0].end_to_end());
  double gds = sim::to_us(results[1].end_to_end());
  double hdn = sim::to_us(results[2].end_to_end());
  std::printf("\nEnd-to-end (target completion): GPU-TN %.2f | GDS %.2f | HDN %.2f\n",
              tn, gds, hdn);
  std::printf("GPU-TN uplift: %.1f%% vs HDN (paper ~35%%), %.1f%% vs GDS (paper ~25%%)\n",
              100.0 * (1.0 - tn / hdn), 100.0 * (1.0 - tn / gds));
  std::printf("GPU-TN target completes %s the initiator kernel finishes (paper: before)\n",
              results[0].target_completion < results[0].initiator_completion
                  ? "BEFORE"
                  : "AFTER");
  return 0;
}

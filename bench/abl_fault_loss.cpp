// Ablation: GPU-TN allreduce under increasing packet loss.
//
// The paper assumes a lossless fabric; this sweep shows what end-to-end
// NIC reliability (fault/reliability.hpp) costs when the fabric is not.
// Each row injects a uniform per-packet loss rate on every link and reports
// completion time, retransmissions, and the injected-drop count. Loss 0 is
// the exact lossless protocol (the reliability layer stays disabled), so the
// first row doubles as the zero-overhead baseline.
#include <cstdio>

#include "workloads/allreduce.hpp"

using namespace gputn;
using namespace gputn::workloads;

int main() {
  const int nodes = 8;
  const std::size_t elements = 256 * 1024;  // 1 MiB vector
  std::printf("GPU-TN allreduce, %d nodes, %zu KiB, loss-rate sweep\n\n",
              nodes, elements * sizeof(float) / 1024);
  std::printf("%8s %12s %10s %8s %8s %8s %10s  %s\n", "loss", "time",
              "vs 0", "drops", "retx", "acks", "timeo_us", "ok");

  double base = 0.0;
  for (double loss : {0.0, 0.001, 0.005, 0.01, 0.02, 0.05}) {
    AllreduceConfig cfg;
    cfg.strategy = Strategy::kGpuTn;
    cfg.nodes = nodes;
    cfg.elements = elements;
    auto sys = cluster::SystemConfig::table2_with_loss(loss, /*seed=*/1);
    AllreduceResult res = run_allreduce(cfg, sys);
    double us = sim::to_us(res.total_time);
    if (loss == 0.0) base = us;
    const auto& s = res.net_stats;
    std::printf("%7.2f%% %10.1fus %9.2fx %8llu %8llu %8llu %10.1f  %s\n",
                100.0 * loss, us, us / base,
                static_cast<unsigned long long>(s.counter_value("fault.drops")),
                static_cast<unsigned long long>(
                    s.counter_value("rel.retransmits")),
                static_cast<unsigned long long>(s.counter_value("rel.acks_tx")),
                s.accumulators().count("rel.timeout_us")
                    ? s.accumulators().at("rel.timeout_us").mean()
                    : 0.0,
                res.correct ? "ok" : "[DATA MISMATCH]");
  }
  std::printf(
      "\nRecovery is timeout-driven (base RTO 100 us + 1 ns/B), so each\n"
      "dropped chunk stalls its ring slot for ~an RTO; pipelining across\n"
      "slices hides isolated drops until the loss rate makes stalls the\n"
      "common case. ACK traffic is the steady-state overhead: one small\n"
      "control message per data message.\n");
  return 0;
}

// Ablation: GPU-TN allreduce under increasing packet loss.
//
// The paper assumes a lossless fabric; this sweep shows what end-to-end
// NIC reliability (fault/reliability.hpp) costs when the fabric is not.
// Each row injects a uniform per-packet loss rate on every link and reports
// completion time, retransmissions, and the injected-drop count. Loss 0 is
// the exact lossless protocol (the reliability layer stays disabled), so the
// first row doubles as the zero-overhead baseline.
//
// Sweep runs through the parallel experiment engine (`--jobs N`, default
// all cores); output is identical at any jobs value.
#include <cstdio>
#include <vector>

#include "exp/runner.hpp"
#include "exp/sweeps.hpp"

using namespace gputn;

int main(int argc, char** argv) {
  const int nodes = 8;
  const std::size_t elements = 256 * 1024;  // 1 MiB vector
  const std::vector<double> rates = {0.0, 0.001, 0.005, 0.01, 0.02, 0.05};

  exp::Runner runner(exp::jobs_from_args(argc, argv));
  exp::RunSummary sweep =
      runner.run(exp::fault_loss_plan(rates, nodes, elements, /*seed=*/1));
  for (const exp::RunResult& r : sweep.results) {
    if (!r.ok) {
      std::fprintf(stderr, "abl_fault_loss: %s failed: %s\n", r.id.c_str(),
                   r.error.c_str());
      return 1;
    }
  }

  std::printf("GPU-TN allreduce, %d nodes, %zu KiB, loss-rate sweep\n\n",
              nodes, elements * sizeof(float) / 1024);
  std::printf("%8s %12s %10s %8s %8s %8s %10s  %s\n", "loss", "time",
              "vs 0", "drops", "retx", "acks", "timeo_us", "ok");

  double base = sim::to_us(sweep.results[0].result.total_time);
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const workloads::ResultBase& res = sweep.results[i].result;
    double us = sim::to_us(res.total_time);
    const auto& s = res.net_stats;
    std::printf("%7.2f%% %10.1fus %9.2fx %8llu %8llu %8llu %10.1f  %s\n",
                100.0 * rates[i], us, us / base,
                static_cast<unsigned long long>(s.counter_value("fault.drops")),
                static_cast<unsigned long long>(
                    s.counter_value("rel.retransmits")),
                static_cast<unsigned long long>(s.counter_value("rel.acks_tx")),
                s.accumulators().count("rel.timeout_us")
                    ? s.accumulators().at("rel.timeout_us").mean()
                    : 0.0,
                res.correct ? "ok" : "[DATA MISMATCH]");
  }
  std::printf(
      "\nRecovery is timeout-driven (base RTO 100 us + 1 ns/B), so each\n"
      "dropped chunk stalls its ring slot for ~an RTO; pipelining across\n"
      "slices hides isolated drops until the loss rate makes stalls the\n"
      "common case. ACK traffic is the steady-state overhead: one small\n"
      "control message per data message.\n");
  return 0;
}

// Sweep-throughput benchmark: the parallel experiment engine against
// serial execution on the paper's evaluation mini-sweep.
//
// The workload is exp::mini_sweep_plan() — small-parameter fig09 + fig10 +
// ablation points, the same plan the exp tests assert bit-identity on. Each
// point is an independent deterministic simulation, so jobs=N is pure
// replica throughput: the interesting numbers are the speedup over jobs=1
// at hardware concurrency and the determinism check that the merged JSON is
// byte-identical either way.
//
// Repetitions are interleaved (1, N, 1, N, ...) so host frequency/thermal
// phases hit both modes alike, and the reported speedup is the MEDIAN of
// per-pair ratios — adjacent-in-time pairs move together under a phase
// shift instead of skewing the result (same protocol as micro_events).
//
// Also profiles per-run construction cost: building a 4-node Table 2
// Cluster cold (first-touch page faults on every DRAM backing) vs warm
// (backings recycled through mem::DramArena) — the setup the engine pays
// at every run point, and why short microbench points aren't dominated by
// it.
//
// Emits BENCH_sweep.json. Usage: micro_sweep [out.json] [--jobs N]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "exp/runner.hpp"
#include "exp/sweeps.hpp"
#include "mem/arena.hpp"
#include "sim/simulator.hpp"

using namespace gputn;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Seconds to run the whole plan at the given job count; the merged JSON is
/// appended to `jsons` for the cross-jobs determinism check.
double timed_run(const exp::Plan& plan, int jobs,
                 std::vector<std::string>& jsons) {
  exp::Runner runner(jobs);
  double t0 = now_s();
  exp::RunSummary summary = runner.run(plan);
  double secs = now_s() - t0;
  if (summary.failures != 0 || !summary.all_correct()) {
    std::fprintf(stderr, "micro_sweep: sweep failed at jobs=%d\n", jobs);
    std::exit(1);
  }
  jsons.push_back(exp::results_json(summary));
  return secs;
}

/// Microseconds to construct + destroy one 4-node Table 2 cluster.
double setup_us_once() {
  double t0 = now_s();
  {
    sim::Simulator sim;
    cluster::Cluster cl(sim, cluster::SystemConfig::table2(), 4);
  }
  return (now_s() - t0) * 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_sweep.json";
  if (argc > 1 && std::strncmp(argv[1], "--", 2) != 0) out_path = argv[1];
  const int hw = exp::Runner::hardware_jobs();
  const int jobs = exp::jobs_from_args(argc, argv, /*dflt=*/hw);
  const int reps = 3;

  exp::Plan plan = exp::mini_sweep_plan();
  std::printf("micro_sweep: %zu run points, jobs=1 vs jobs=%d (hw=%d), "
              "%d interleaved reps\n",
              plan.size(), jobs, hw, reps);

  // Per-run construction cost: cold = fresh OS pages (arena emptied), warm
  // = recycled backings. One throwaway run first so code/data are hot.
  setup_us_once();
  mem::DramArena::clear();
  double setup_cold_us = setup_us_once();
  double setup_warm_us = 0.0;
  const int setup_reps = 10;
  for (int i = 0; i < setup_reps; ++i) setup_warm_us += setup_us_once();
  setup_warm_us /= setup_reps;
  std::printf("  cluster setup: %.0f us cold, %.0f us warm (arena reuse)\n",
              setup_cold_us, setup_warm_us);

  std::vector<std::string> jsons;
  double best1 = 1e300;
  double bestN = 1e300;
  std::vector<double> ratios;
  for (int i = 0; i < reps; ++i) {
    double t1 = timed_run(plan, 1, jsons);
    double tN = timed_run(plan, jobs, jsons);
    best1 = std::min(best1, t1);
    bestN = std::min(bestN, tN);
    ratios.push_back(t1 / tN);
  }
  bool deterministic = true;
  for (const std::string& j : jsons) deterministic &= (j == jsons.front());
  std::sort(ratios.begin(), ratios.end());
  double speedup = ratios[ratios.size() / 2];

  double pts = static_cast<double>(plan.size());
  std::printf("  jobs=1:  %6.2f s (%.1f points/s)\n", best1, pts / best1);
  std::printf("  jobs=%-2d: %6.2f s (%.1f points/s)\n", jobs, bestN,
              pts / bestN);
  std::printf("  speedup: %.2fx, merged output %s\n", speedup,
              deterministic ? "bit-identical" : "NONDETERMINISTIC");
  if (!deterministic) return 1;

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"points\": " << plan.size() << ",\n"
      << "  \"jobs\": " << jobs << ",\n"
      << "  \"hw_concurrency\": " << hw << ",\n"
      << "  \"jobs1_s\": " << best1 << ",\n"
      << "  \"jobsN_s\": " << bestN << ",\n"
      << "  \"speedup\": " << speedup << ",\n"
      << "  \"deterministic\": " << (deterministic ? "true" : "false")
      << ",\n"
      << "  \"setup_cold_us\": " << setup_cold_us << ",\n"
      << "  \"setup_warm_us\": " << setup_warm_us << "\n"
      << "}\n";
  if (!out.good()) {
    std::fprintf(stderr, "micro_sweep: cannot write %s\n", out_path);
    return 1;
  }
  std::printf("  wrote %s\n", out_path);
  return 0;
}

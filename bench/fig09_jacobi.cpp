// Figure 9: 2-D Jacobi relaxation, speedup relative to HDN over local grid
// sizes (§5.3).
//
// Paper: GPU-TN up to ~10% over GDS and ~20% over HDN on medium grids; the
// CPU is competitive only on the smallest grids.
#include <cstdio>

#include "workloads/jacobi.hpp"

using namespace gputn;
using namespace gputn::workloads;

int main() {
  std::printf("Figure 9: 2-D Jacobi, speedup vs HDN (per iteration)\n\n");
  std::printf("%6s %12s %10s %10s %10s %10s   %s\n", "N", "HDN us/iter",
              "CPU", "HDN", "GDS", "GPU-TN", "verified");

  for (int n : {16, 32, 64, 128, 256, 512, 1024}) {
    JacobiResult res[4];
    bool all_ok = true;
    for (int i = 0; i < 4; ++i) {
      JacobiConfig cfg;
      cfg.strategy = kAllStrategies[i];
      cfg.n = n;
      cfg.iterations = 10;
      cfg.num_wgs = 16;
      res[i] = run_jacobi(cfg);
      all_ok = all_ok && res[i].correct;
    }
    double hdn = sim::to_us(res[1].per_iteration());
    std::printf("%6d %12.2f %10.3f %10.3f %10.3f %10.3f   %s\n", n, hdn,
                hdn / sim::to_us(res[0].per_iteration()),
                1.0,
                hdn / sim::to_us(res[2].per_iteration()),
                hdn / sim::to_us(res[3].per_iteration()),
                all_ok ? "ok" : "NUMERICS MISMATCH");
  }
  std::printf(
      "\nPaper shape: CPU > 1 only at the far left; GPU-TN ~1.2x and GDS\n"
      "~1.1x over HDN on medium grids, converging toward 1 at the right\n"
      "as compute dominates.\n");
  return 0;
}

// Figure 9: 2-D Jacobi relaxation, speedup relative to HDN over local grid
// sizes (§5.3).
//
// Paper: GPU-TN up to ~10% over GDS and ~20% over HDN on medium grids; the
// CPU is competitive only on the smallest grids.
//
// The (grid x strategy) sweep runs through the parallel experiment engine;
// pass `--jobs N` to bound the worker count (default: all cores). Output is
// identical at any jobs value.
#include <cstdio>
#include <vector>

#include "exp/runner.hpp"
#include "exp/sweeps.hpp"

using namespace gputn;

int main(int argc, char** argv) {
  const std::vector<int> grids = {16, 32, 64, 128, 256, 512, 1024};
  const int iterations = 10;

  exp::Runner runner(exp::jobs_from_args(argc, argv));
  exp::RunSummary sweep = runner.run(exp::fig09_plan(grids, iterations));
  for (const exp::RunResult& r : sweep.results) {
    if (!r.ok) {
      std::fprintf(stderr, "fig09: %s failed: %s\n", r.id.c_str(),
                   r.error.c_str());
      return 1;
    }
  }

  std::printf("Figure 9: 2-D Jacobi, speedup vs HDN (per iteration)\n\n");
  std::printf("%6s %12s %10s %10s %10s %10s   %s\n", "N", "HDN us/iter",
              "CPU", "HDN", "GDS", "GPU-TN", "verified");
  for (std::size_t gi = 0; gi < grids.size(); ++gi) {
    // Plan order: for each grid, CPU/HDN/GDS/GPU-TN (see exp::fig09_plan).
    const exp::RunResult* row = &sweep.results[gi * 4];
    auto per_iter = [&](int s) {
      return sim::to_us(row[s].result.per_op(iterations));
    };
    bool all_ok = row[0].result.correct && row[1].result.correct &&
                  row[2].result.correct && row[3].result.correct;
    double hdn = per_iter(1);
    std::printf("%6d %12.2f %10.3f %10.3f %10.3f %10.3f   %s\n", grids[gi],
                hdn, hdn / per_iter(0), 1.0, hdn / per_iter(2),
                hdn / per_iter(3), all_ok ? "ok" : "NUMERICS MISMATCH");
  }
  std::printf(
      "\nPaper shape: CPU > 1 only at the far left; GPU-TN ~1.2x and GDS\n"
      "~1.1x over HDN on medium grids, converging toward 1 at the right\n"
      "as compute dominates.\n");
  return 0;
}

// Scale-out fabric benchmark: allreduce strong scaling on star vs
// fat-tree(16), both put strategies, plus an incast flow-control
// microbench (star vs fat-tree, with and without per-port credits).
//
// The scaling sweep runs through the parallel experiment engine and is
// bit-identical at any `--jobs` value; every simulated number is
// machine-independent, so only wall time varies across runners. The
// default sweep stops at 256 nodes to keep single-core CI wall time in
// check; `--full` extends it to 4096 nodes (the fat-tree k=16 capacity
// ceiling is k^3/4 = 1024, so the 2048/4096 tiers run on k=32).
//
// The incast microbench drives the Fabric directly: 15 senders blast one
// receiver. With credits=0 (the seed's unlimited default) the egress port
// never stalls; with a finite pool the port saturates, the stall counter
// moves, and the util.sw.* ledger pins the egress at ~100% busy — the
// signal `gputn report` renders as SATURATED.
//
// Emits BENCH_fabric.json. Usage: fig_fabric_scale [out.json] [--jobs N]
// [--full]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "exp/sweeps.hpp"
#include "net/fabric.hpp"
#include "net/switch.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/units.hpp"

using namespace gputn;

namespace {

struct ScalePoint {
  int nodes = 0;
  std::string topology;
  double cpu_us = 0.0;
  double gputn_us = 0.0;
  bool correct = false;
};

// ---------------------------------------------------------------------------
// Incast microbench: raw Fabric, no nodes, one contended egress port.

class CountingSink : public net::MessageSink {
 public:
  explicit CountingSink(sim::Simulator& sim) : sim_(&sim) {}
  void deliver(net::Message&&) override {
    ++received;
    last_arrival = sim_->now();
  }
  sim::Simulator* sim_;
  std::size_t received = 0;
  sim::Tick last_arrival = 0;
};

struct IncastResult {
  std::string topology;
  int credits = 0;
  double finish_us = 0.0;
  std::uint64_t credit_stalls = 0;
  double max_port_busy_pct = 0.0;
  bool saturated = false;
  bool deterministic = false;
};

net::FabricConfig incast_config(const std::string& topology, int credits) {
  net::FabricConfig c;
  c.topology = topology;
  c.routing = "deterministic";
  c.credits_per_port = credits;
  return c;  // Table 2 wire parameters are the defaults
}

sim::Tick incast_once(const std::string& topology, int credits,
                      std::uint64_t* stalls, double* busy_pct) {
  const int nodes = 16;
  const int bursts = 20;
  sim::Simulator sim;
  net::Fabric fabric(sim, incast_config(topology, credits));
  std::vector<std::unique_ptr<CountingSink>> sinks;
  for (int i = 0; i < nodes; ++i) {
    sinks.push_back(std::make_unique<CountingSink>(sim));
    fabric.add_node(sinks.back().get());
  }
  for (int b = 0; b < bursts; ++b) {
    for (int src = 1; src < nodes; ++src) {
      net::Message m;
      m.src = src;
      m.dst = 0;
      m.kind = 1;
      m.payload.resize(8192, std::byte{0x5a});
      fabric.send(std::move(m));
    }
  }
  sim.run();
  if (sinks[0]->received != static_cast<std::size_t>(bursts * (nodes - 1))) {
    std::fprintf(stderr, "fig_fabric_scale: incast lost messages on %s\n",
                 topology.c_str());
    std::exit(1);
  }
  *stalls = 0;
  for (int s = 0; s < fabric.switch_count(); ++s) {
    *stalls += fabric.switch_at(s).credit_stalls();
  }
  // Worst per-port credit occupancy across the fabric, out of the same
  // util.sw.* ledger `gputn report` ranks.
  sim::StatRegistry reg;
  fabric.export_stats(reg);
  double window = static_cast<double>(sim.now());
  double worst = 0.0;
  for (const auto& [name, value] : reg.counters()) {
    if (name.rfind("util.sw.", 0) != 0) continue;
    if (name.size() < 8 || name.substr(name.size() - 8) != ".busy_ps") {
      continue;
    }
    std::string base = name.substr(0, name.size() - 8);
    std::uint64_t cap = reg.counter_value(base + ".capacity");
    if (cap == 0 || window <= 0.0) continue;
    worst = std::max(worst, 100.0 * static_cast<double>(value) /
                                (static_cast<double>(cap) * window));
  }
  *busy_pct = worst;
  sim::Tick finish = sinks[0]->last_arrival;
  sim.reap_processes();
  return finish;
}

IncastResult run_incast(const std::string& topology, int credits) {
  IncastResult r;
  r.topology = topology;
  r.credits = credits;
  std::uint64_t stalls = 0;
  double busy = 0.0;
  sim::Tick t1 = incast_once(topology, credits, &stalls, &busy);
  std::uint64_t stalls2 = 0;
  double busy2 = 0.0;
  sim::Tick t2 = incast_once(topology, credits, &stalls2, &busy2);
  r.finish_us = sim::to_us(t1);
  r.credit_stalls = stalls;
  r.max_port_busy_pct = busy;
  r.saturated = busy > 90.0;
  r.deterministic = (t1 == t2 && stalls == stalls2 && busy == busy2);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_fabric.json";
  if (argc > 1 && std::strncmp(argv[1], "--", 2) != 0) out_path = argv[1];
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) full = true;
  }

  // 64 KB payload: past 256 ranks the per-rank chunks are tiny, so the
  // sweep measures fabric traversal + software path, not serialization.
  const std::size_t elements = 16 * 1024;
  std::vector<int> nodes = {64, 128, 256};
  if (full) {
    nodes.push_back(512);
    nodes.push_back(1024);
    nodes.push_back(4096);
  }
  auto fat_tree_for = [](int n) {
    return n <= 1024 ? std::string("fat-tree:k=16")
                     : std::string("fat-tree:k=32");
  };

  // One plan per node count so each tier can pick the fat-tree radix that
  // actually fits; plan order within a tier is topology-major with
  // {CPU, GPU-TN} inner.
  exp::Runner runner(exp::jobs_from_args(argc, argv));
  std::vector<ScalePoint> points;
  for (int n : nodes) {
    exp::RunSummary tier = runner.run(
        exp::fabric_scale_plan({n}, {"star", fat_tree_for(n)}, elements));
    for (const exp::RunResult& r : tier.results) {
      if (!r.ok) {
        std::fprintf(stderr, "fig_fabric_scale: %s failed: %s\n",
                     r.id.c_str(), r.error.c_str());
        return 1;
      }
    }
    for (std::size_t ti = 0; ti < 2; ++ti) {
      const exp::RunResult* row = &tier.results[ti * 2];
      ScalePoint p;
      p.nodes = n;
      p.topology = ti == 0 ? "star" : fat_tree_for(n);
      p.cpu_us = sim::to_us(row[0].result.total_time);
      p.gputn_us = sim::to_us(row[1].result.total_time);
      p.correct = row[0].result.correct && row[1].result.correct;
      points.push_back(p);
    }
  }

  std::printf("Fabric strong scaling: 64KB fp32 ring allreduce%s\n\n",
              full ? " (--full)" : "");
  std::printf("%6s %16s %12s %12s %8s   %s\n", "nodes", "topology", "CPU us",
              "GPU-TN us", "speedup", "verified");
  for (const ScalePoint& p : points) {
    std::printf("%6d %16s %12.1f %12.1f %8.3f   %s\n", p.nodes,
                p.topology.c_str(), p.cpu_us, p.gputn_us,
                p.cpu_us / p.gputn_us, p.correct ? "ok" : "MISMATCH");
  }

  // Multi-hop tax at the largest common tier: fat-tree over star, GPU-TN.
  double fat_over_star = 0.0;
  for (std::size_t i = 0; i + 1 < points.size(); i += 2) {
    fat_over_star = points[i + 1].gputn_us / points[i].gputn_us;
  }
  std::printf("\nfat-tree/star GPU-TN time ratio at %d nodes: %.3fx\n",
              points[points.size() - 1].nodes, fat_over_star);

  std::vector<IncastResult> incast;
  for (const char* topo : {"star", "fat-tree:k=4"}) {
    for (int credits : {0, 2}) {
      incast.push_back(run_incast(topo, credits));
    }
  }
  std::printf("\nincast (15 senders x 20 msgs -> node 0):\n");
  std::printf("%16s %8s %10s %8s %10s %6s %6s\n", "topology", "credits",
              "finish us", "stalls", "busy %", "sat", "det");
  for (const IncastResult& r : incast) {
    std::printf("%16s %8d %10.2f %8llu %10.1f %6s %6s\n", r.topology.c_str(),
                r.credits, r.finish_us,
                static_cast<unsigned long long>(r.credit_stalls),
                r.max_port_busy_pct, r.saturated ? "yes" : "no",
                r.deterministic ? "yes" : "NO");
  }

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"elements\": " << elements << ",\n"
      << "  \"full\": " << (full ? "true" : "false") << ",\n"
      << "  \"fat_tree_over_star_at_max\": " << fat_over_star << ",\n"
      << "  \"scaling\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ScalePoint& p = points[i];
    out << "    {\"nodes\": " << p.nodes << ", \"topology\": \"" << p.topology
        << "\", \"cpu_us\": " << p.cpu_us << ", \"gputn_us\": " << p.gputn_us
        << ", \"speedup\": " << p.cpu_us / p.gputn_us
        << ", \"correct\": " << (p.correct ? "true" : "false") << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"incast\": [\n";
  for (std::size_t i = 0; i < incast.size(); ++i) {
    const IncastResult& r = incast[i];
    out << "    {\"topology\": \"" << r.topology
        << "\", \"credits\": " << r.credits
        << ", \"finish_us\": " << r.finish_us
        << ", \"credit_stalls\": " << r.credit_stalls
        << ", \"max_port_busy_pct\": " << r.max_port_busy_pct
        << ", \"saturated\": " << (r.saturated ? "true" : "false")
        << ", \"deterministic\": " << (r.deterministic ? "true" : "false")
        << "}" << (i + 1 < incast.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  if (!out.good()) {
    std::fprintf(stderr, "fig_fabric_scale: cannot write %s\n", out_path);
    return 1;
  }
  std::printf("wrote %s\n", out_path);

  bool ok = true;
  for (const ScalePoint& p : points) ok = ok && p.correct;
  for (const IncastResult& r : incast) {
    ok = ok && r.deterministic;
    if (r.credits > 0) ok = ok && r.credit_stalls > 0;
    if (r.credits == 0) ok = ok && r.credit_stalls == 0;
  }
  return ok ? 0 : 1;
}

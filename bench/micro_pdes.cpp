// Intra-run parallel DES benchmark: the sharded conservative engine
// against the sequential engine on one large run.
//
// The workload is a single 8-rank GPU-TN ring allreduce — one simulation,
// not a sweep: unlike micro_sweep (replica throughput), this measures the
// engine's ability to parallelize INSIDE a run by partitioning the cluster
// over worker threads with conservative lookahead windows. The interesting
// numbers are the speedup of --shards N over --shards 1 at hardware
// concurrency and the determinism check: results, checksums, and the
// stats export (minus the partition-shaped util.shard*/util.engine*
// telemetry) must be byte-identical at every shard count.
//
// Repetitions are interleaved (1, N, 1, N, ...) so host frequency/thermal
// phases hit both modes alike, and the reported speedup is the MEDIAN of
// per-pair ratios — the same protocol as micro_sweep/micro_events.
//
// On a 1-core host the barrier rounds are pure overhead and the "speedup"
// is an honest slowdown; the determinism check is the part that must hold
// everywhere, which is why CI gates speedup only on >= 4 hardware threads
// (see EXPERIMENTS.md).
//
// Emits BENCH_pdes.json. Usage: micro_pdes [out.json] [--shards N]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "workloads/allreduce.hpp"

using namespace gputn;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Stats JSON minus the engine telemetry that is a function of the
/// partition by construction (same strip as the golden suite).
std::string strip_shard_keys(const std::string& json) {
  std::istringstream in(json);
  std::string out, line;
  while (std::getline(in, line)) {
    if (line.find("\"util.shard") != std::string::npos ||
        line.find("\"util.engine") != std::string::npos) {
      continue;
    }
    out += line;
    out += '\n';
  }
  return out;
}

workloads::AllreduceConfig bench_config(int shards) {
  workloads::AllreduceConfig cfg;
  cfg.strategy = workloads::Strategy::kGpuTn;
  cfg.nodes = 8;
  cfg.elements = 1048576;
  cfg.shards = shards;
  return cfg;
}

/// Seconds for one run; the observable surface (total time + stripped
/// stats) is appended to `images` for the determinism check.
double timed_run(int shards, std::vector<std::string>& images) {
  workloads::AllreduceConfig cfg = bench_config(shards);
  double t0 = now_s();
  workloads::AllreduceResult r = workloads::run_allreduce(cfg);
  double secs = now_s() - t0;
  if (!r.correct) {
    std::fprintf(stderr, "micro_pdes: run failed at shards=%d\n", shards);
    std::exit(1);
  }
  images.push_back(std::to_string(r.total_time) + "\n" +
                   strip_shard_keys(r.stats_json()));
  return secs;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_pdes.json";
  if (argc > 1 && std::strncmp(argv[1], "--", 2) != 0) out_path = argv[1];
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  int shards = std::min(std::max(hw, 1), 8);  // one worker per node at most
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0) shards = std::atoi(argv[i + 1]);
  }
  const int reps = 3;

  std::printf("micro_pdes: 8-rank GPU-TN allreduce, shards=1 vs shards=%d "
              "(hw=%d), %d interleaved reps\n",
              shards, hw, reps);

  std::vector<std::string> images;
  double best1 = 1e300;
  double bestN = 1e300;
  std::vector<double> ratios;
  timed_run(1, images);  // throwaway: warm code, allocators, page cache
  images.clear();
  for (int i = 0; i < reps; ++i) {
    double t1 = timed_run(1, images);
    double tN = timed_run(shards, images);
    best1 = std::min(best1, t1);
    bestN = std::min(bestN, tN);
    ratios.push_back(t1 / tN);
  }
  bool deterministic = true;
  for (const std::string& im : images) {
    deterministic &= (im == images.front());
  }
  std::sort(ratios.begin(), ratios.end());
  double speedup = ratios[ratios.size() / 2];

  std::printf("  shards=1:  %6.2f s\n", best1);
  std::printf("  shards=%-2d: %6.2f s\n", shards, bestN);
  std::printf("  speedup: %.2fx, output %s\n", speedup,
              deterministic ? "bit-identical" : "NONDETERMINISTIC");
  if (!deterministic) return 1;

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"workload\": \"allreduce-gputn-8x1048576\",\n"
      << "  \"shards\": " << shards << ",\n"
      << "  \"hw_concurrency\": " << hw << ",\n"
      << "  \"shards1_s\": " << best1 << ",\n"
      << "  \"shardsN_s\": " << bestN << ",\n"
      << "  \"speedup\": " << speedup << ",\n"
      << "  \"deterministic\": " << (deterministic ? "true" : "false") << "\n"
      << "}\n";
  if (!out.good()) {
    std::fprintf(stderr, "micro_pdes: cannot write %s\n", out_path);
    return 1;
  }
  std::printf("  wrote %s\n", out_path);
  return 0;
}

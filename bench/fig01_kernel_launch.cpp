// Figure 1: kernel launch latencies on three modern GPUs as a function of
// how many kernel commands are queued at the hardware scheduler at once.
//
// Reproduction: three vendor-anonymous launch-latency profiles drive the
// simulated GPU front-end; for each queue depth we enqueue that many empty
// kernels in one batch and report the mean per-kernel launch latency
// actually measured in simulation (not the closed-form model).
#include <cstdio>
#include <vector>

#include "gpu/gpu.hpp"
#include "mem/memory.hpp"
#include "sim/simulator.hpp"

using namespace gputn;

namespace {

double measure_mean_launch_us(const gpu::LaunchModel& profile, int queued) {
  sim::Simulator sim;
  mem::Memory memory(1 << 20);
  gpu::GpuConfig cfg;
  cfg.teardown_latency = 0;  // isolate launch costs, as the Figure 1 study
  gpu::Gpu g(sim, memory, cfg);
  if (const auto* am = dynamic_cast<const gpu::AmortizedLaunchModel*>(&profile)) {
    g.set_launch_model(std::make_unique<gpu::AmortizedLaunchModel>(
        am->name(), am->floor(), am->amortized()));
  }
  std::vector<std::shared_ptr<gpu::KernelRecord>> recs;
  for (int i = 0; i < queued; ++i) {
    recs.push_back(g.enqueue_kernel(gpu::KernelDesc{"empty", 1, 64, nullptr}));
  }
  sim.run();
  double total_us = 0.0;
  for (const auto& r : recs) total_us += sim::to_us(r->exec_begin - r->launch_begin);
  sim.reap_processes();
  return total_us / queued;
}

}  // namespace

int main() {
  std::printf("Figure 1: kernel launch latency vs. queued kernel commands\n");
  std::printf("(mean per-kernel launch latency, us)\n\n");
  auto profiles = gpu::figure1_gpu_profiles();
  std::printf("%8s", "queued");
  for (const auto& p : profiles) std::printf("%10s", p->name().c_str());
  std::printf("\n");
  for (int q : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
    std::printf("%8d", q);
    for (const auto& p : profiles) {
      std::printf("%10.2f", measure_mean_launch_us(*p, q));
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper: 3-20 us depending on queue depth and hardware; even the\n"
      "best case takes 3-4 us, discouraging kernel-boundary networking\n"
      "for fine-grained communication.\n");
  return 0;
}

// Ablation (§3.2): relaxed synchronization.
//
// With strict synchronization the CPU must register every triggered op
// before launching the kernel; with relaxed synchronization registration
// overlaps the launch + execution and early GPU triggers park as orphan
// counters on the NIC. The benefit grows with the number of pre-registered
// operations (host post cost is serial).
#include <cstdio>

#include "cluster/cluster.hpp"
#include "sim/sync.hpp"

using namespace gputn;

namespace {

double run_once(int ops, bool relaxed) {
  sim::Simulator sim;
  cluster::SystemConfig cfg = cluster::SystemConfig::table2();
  cfg.dram_bytes = 8u << 20;
  cfg.triggered.table.lookup = core::LookupKind::kHash;
  cluster::Cluster cl(sim, cfg, 2);
  auto& a = cl.node(0);
  auto& b = cl.node(1);

  mem::Addr src = a.memory().alloc(64 * ops);
  mem::Addr dst = b.memory().alloc(64 * ops);
  std::vector<mem::Addr> flags;
  for (int i = 0; i < ops; ++i) flags.push_back(b.rt().alloc_flag());

  sim.spawn(
      [](cluster::Node& n, int ops, bool relaxed, mem::Addr src, mem::Addr dst,
         std::vector<mem::Addr> flags) -> sim::Task<> {
        auto register_all = [&]() -> sim::Task<> {
          for (int i = 0; i < ops; ++i) {
            nic::PutDesc p;
            p.target = 1;
            p.local_addr = src + 64 * i;
            p.bytes = 64;
            p.remote_addr = dst + 64 * i;
            p.remote_flag = flags[i];
            co_await n.rt().trig_put(i, 1, p);
          }
        };
        mem::Addr trig = n.rt().trigger_addr();
        gpu::KernelDesc k;
        k.num_wgs = 1;
        k.fn = [trig, ops](gpu::WorkGroupCtx& ctx) -> sim::Task<> {
          co_await ctx.compute(sim::ns(200));
          co_await ctx.fence_system();
          for (int i = 0; i < ops; ++i) co_await ctx.store_system(trig, i);
        };
        if (relaxed) {
          // Launch first; post while the kernel runs (§4.1: "steps 2 and 4
          // do not need to occur in the order presented").
          auto rec = co_await n.rt().launch(std::move(k));
          co_await register_all();
          co_await rec->done.wait();
        } else {
          co_await register_all();
          co_await n.rt().launch_sync(std::move(k));
        }
      }(a, ops, relaxed, src, dst, flags),
      "host");
  sim.run();

  // Completion = all target flags set.
  for (auto f : flags) {
    if (b.memory().load<std::uint64_t>(f) != 1) std::printf("  [missing put!]\n");
  }
  return sim::to_us(sim.now());
}

}  // namespace

int main() {
  std::printf("Ablation: relaxed synchronization (§3.2)\n");
  std::printf("time until all triggered puts complete (us)\n\n");
  std::printf("%8s %10s %10s %10s\n", "ops", "strict", "relaxed", "saving");
  for (int ops : {1, 2, 4, 8, 16, 32, 64}) {
    double strict = run_once(ops, false);
    double relaxed = run_once(ops, true);
    std::printf("%8d %10.2f %10.2f %9.1f%%\n", ops, strict, relaxed,
                100.0 * (1.0 - relaxed / strict));
  }
  std::printf(
      "\nRelaxed synchronization hides the serial host posting cost behind\n"
      "the kernel launch; early GPU triggers allocate orphan counters and\n"
      "fire on late registration — no software synchronization needed.\n");
  return 0;
}

#include "obs/whatif.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <stdexcept>
#include <utility>

#include "exp/plan.hpp"
#include "exp/runner.hpp"
#include "obs/critical.hpp"
#include "obs/flight.hpp"
#include "sim/json.hpp"
#include "sim/units.hpp"

namespace gputn::obs {

namespace json = ::gputn::sim::json;

namespace {

std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), f, v);
  return buf;
}

/// Scale as a stable token: "0.5" / "2" / "1.25" / "inf". Used in point
/// ids, the JSON, and the render, so all three agree.
std::string fmt_scale(double s) {
  if (std::isinf(s)) return "inf";
  return fmt("%g", s);
}

double parse_scale(const std::string& tok) {
  if (tok == "inf") return kInfiniteSpeed;
  return std::strtod(tok.c_str(), nullptr);
}

/// Cost knob at speed s: new = old / s (s = inf -> free).
sim::Tick scale_cost(sim::Tick t, double s) {
  if (std::isinf(s)) return 0;
  return static_cast<sim::Tick>(
      std::llround(static_cast<double>(t) / s));
}

/// Capacity knob at speed s: new rate = old * s (s = inf -> effectively
/// unlimited; 1e18 B/s serializes a 4 KiB message in under a picosecond).
sim::Bandwidth scale_bw(sim::Bandwidth b, double s) {
  if (std::isinf(s)) return sim::Bandwidth::bytes_per_sec(1e18);
  return sim::Bandwidth::bytes_per_sec(b.bytes_per_second() * s);
}

}  // namespace

const std::vector<Knob>& knob_registry() {
  static const std::vector<Knob> kKnobs = [] {
    std::vector<Knob> v;
    using workloads::WorkloadParams;
    using Cfg = cluster::SystemConfig;

    v.push_back(Knob{
        "link_bw", "capacity", "fabric link bandwidth",
        [](Cfg& c, WorkloadParams&, double s) {
          c.fabric.bandwidth = scale_bw(c.fabric.bandwidth, s);
          return true;
        },
        {},
        WirePart::kSerialization,
        "link.",
        {}});
    v.push_back(Knob{
        "link_lat", "cost", "fabric link propagation latency",
        [](Cfg& c, WorkloadParams&, double s) {
          if (c.fabric.link_latency <= 0) return false;
          c.fabric.link_latency = scale_cost(c.fabric.link_latency, s);
          return true;
        },
        {},
        WirePart::kLinkLatency,
        "",
        {}});
    v.push_back(Knob{
        "switch_lat", "cost", "switch crossbar latency",
        [](Cfg& c, WorkloadParams&, double s) {
          if (c.fabric.switch_latency <= 0) return false;
          c.fabric.switch_latency = scale_cost(c.fabric.switch_latency, s);
          return true;
        },
        {},
        WirePart::kSwitchLatency,
        "",
        {}});
    v.push_back(Knob{
        "switch_credits", "capacity", "switch output-port credits",
        [](Cfg& c, WorkloadParams&, double s) {
          // 0 already means unlimited — nothing to speed up.
          if (c.fabric.credits_per_port <= 0) return false;
          if (std::isinf(s)) {
            c.fabric.credits_per_port = 0;
          } else {
            c.fabric.credits_per_port = std::max(
                1, static_cast<int>(
                       std::llround(c.fabric.credits_per_port * s)));
          }
          return true;
        },
        {"switch_queue"},
        WirePart::kNone,
        "sw.",
        {}});
    v.push_back(Knob{
        "nic_cmd_rate", "capacity", "NIC command-pipeline fetch rate",
        [](Cfg& c, WorkloadParams&, double s) {
          if (c.nic.cmd_fetch <= 0) return false;
          c.nic.cmd_fetch = scale_cost(c.nic.cmd_fetch, s);
          return true;
        },
        {"cmd_queue"},
        WirePart::kNone,
        "nic.cmd",
        {}});
    v.push_back(Knob{
        "dma_bw", "capacity", "NIC DMA engine bandwidth",
        [](Cfg& c, WorkloadParams&, double s) {
          c.nic.dma_bandwidth = scale_bw(c.nic.dma_bandwidth, s);
          c.nic.dma_startup = scale_cost(c.nic.dma_startup, s);
          return true;
        },
        {"tx_proc", "deposit"},
        WirePart::kNone,
        "dma.",
        {}});
    v.push_back(Knob{
        "host_post", "cost", "host software post / network-stack cost",
        [](Cfg& c, WorkloadParams&, double s) {
          if (c.cpu.post_cost <= 0 && c.cpu.send_stack_cost <= 0 &&
              c.cpu.recv_stack_cost <= 0) {
            return false;
          }
          c.cpu.post_cost = scale_cost(c.cpu.post_cost, s);
          c.cpu.send_stack_cost = scale_cost(c.cpu.send_stack_cost, s);
          c.cpu.recv_stack_cost = scale_cost(c.cpu.recv_stack_cost, s);
          return true;
        },
        // Deliberately empty: host software time between ops is invisible
        // to the per-op blame taxonomy — the cross-check surfaces it as
        // "unattributed", which is the paper's CPU-proxy story.
        {},
        WirePart::kNone,
        ".cpu",
        {}});
    v.push_back(Knob{
        "trigger", "cost", "trigger-table scan / fire latency",
        [](Cfg& c, WorkloadParams&, double s) {
          c.triggered.update_cost = scale_cost(c.triggered.update_cost, s);
          c.triggered.dynamic_decode_cost =
              scale_cost(c.triggered.dynamic_decode_cost, s);
          c.triggered.table.associative_cost =
              scale_cost(c.triggered.table.associative_cost, s);
          c.triggered.table.hash_cost =
              scale_cost(c.triggered.table.hash_cost, s);
          c.triggered.table.list_hop_cost =
              scale_cost(c.triggered.table.list_hop_cost, s);
          return true;
        },
        {"trigger_wait"},
        WirePart::kNone,
        "",
        {}});
    v.push_back(Knob{
        "doorbell", "cost", "doorbell ring-to-visible latency",
        [](Cfg& c, WorkloadParams&, double s) {
          if (c.nic.doorbell_latency <= 0 &&
              c.gpu.gds_doorbell_latency <= 0) {
            return false;
          }
          c.nic.doorbell_latency = scale_cost(c.nic.doorbell_latency, s);
          c.gpu.gds_doorbell_latency =
              scale_cost(c.gpu.gds_doorbell_latency, s);
          return true;
        },
        {"doorbell"},
        WirePart::kNone,
        "",
        {}});
    v.push_back(Knob{
        "doorbell_batch", "capacity", "QP doorbell batch size (serve)",
        [](Cfg&, WorkloadParams& p, double s) {
          long old = p.get_int("batch", 4, 1, 1024);
          long next = std::isinf(s)
                          ? 1024
                          : std::clamp<long>(std::lround(old * s), 1, 1024);
          if (next == old) return false;
          p.set("batch", std::to_string(next));
          return true;
        },
        {"qp_batch"},
        WirePart::kNone,
        "",
        {"serve"}});
    v.push_back(Knob{
        "gpu_cus", "capacity", "GPU compute-unit count",
        [](Cfg& c, WorkloadParams&, double s) {
          // Upscale only: persistent kernels size their launch for the
          // baseline CU budget, and a grid larger than cu_count *
          // max_wgs_per_cu that synchronizes across work-groups livelocks
          // (GpuConfig's documented constraint) — an infinite poll loop the
          // deadlock watchdog reads as progress.
          if (s < 1.0) return false;
          int old = c.gpu.cu_count;
          double eff = std::isinf(s) ? 64.0 : s;
          c.gpu.cu_count =
              std::max(1, static_cast<int>(std::llround(old * eff)));
          if (c.gpu.cu_count == old) return false;
          // A bigger GPU, not a starved one: the model shares
          // mem_bandwidth across CUs, so co-scale it to keep the per-CU
          // slice constant.
          c.gpu.mem_bandwidth = scale_bw(
              c.gpu.mem_bandwidth,
              static_cast<double>(c.gpu.cu_count) / old);
          return true;
        },
        {},
        WirePart::kNone,
        "gpu.cu",
        {}});
    return v;
  }();
  return kKnobs;
}

namespace {

// ---- baseline attribution --------------------------------------------------

/// Blame totals over the baseline's recorded ops: per-category sums plus
/// the per-leg split of the blamed wire time into the three wire-knob
/// slices (serialization / link propagation / switch crossbar).
struct BlameTotals {
  std::map<std::string, std::int64_t> cats;
  std::int64_t wire_ser = 0;
  std::int64_t wire_link = 0;
  std::int64_t wire_switch = 0;
};

/// Split one leg's blamed wire time. The three parts are computed with the
/// identical arithmetic as critical.cpp's ideal_wire_ps, so on an
/// uncongested fabric (blamed == ideal) they are exact; when congestion
/// clamps the blamed wire below ideal, the parts are scaled proportionally
/// and still sum to the blamed time.
void leg_wire_parts(const FlightLeg& l, const WireParams& w, BlameTotals& bt) {
  if (l.t_wire < 0 || l.t_rx <= l.t_wire) return;
  std::int64_t wire_meas = l.t_rx - l.t_wire;
  auto ser = [&](std::uint64_t bytes) -> std::int64_t {
    if (bytes == 0 || w.bytes_per_sec <= 0.0) return 0;
    return static_cast<std::int64_t>(
        static_cast<double>(bytes) / w.bytes_per_sec * 1e12 + 0.5);
  };
  std::int64_t h = l.hops > 0 ? static_cast<std::int64_t>(l.hops) : 1;
  std::uint64_t wire = w.header_bytes + l.bytes;
  std::uint64_t mtu = w.mtu_bytes > 0 ? w.mtu_bytes : wire;
  if (mtu == 0) mtu = 1;
  std::uint64_t first_pkt = std::min(wire, mtu) + w.per_packet_overhead;
  std::uint64_t packets = (wire + mtu - 1) / mtu;
  std::uint64_t total_wire = wire + packets * w.per_packet_overhead;
  std::int64_t ser_part = ser(total_wire) + h * ser(first_pkt);
  std::int64_t link_part = (h + 1) * w.link_latency_ps;
  std::int64_t switch_part = h * w.switch_latency_ps;
  std::int64_t ideal = ser_part + link_part + switch_part;
  std::int64_t blamed = std::min(wire_meas, ideal);
  if (ideal > 0 && blamed < ideal) {
    double f = static_cast<double>(blamed) / static_cast<double>(ideal);
    ser_part = std::llround(static_cast<double>(ser_part) * f);
    link_part = std::llround(static_cast<double>(link_part) * f);
    switch_part = blamed - ser_part - link_part;
  }
  bt.wire_ser += ser_part;
  bt.wire_link += link_part;
  bt.wire_switch += switch_part;
}

BlameTotals blame_totals(const AnalyzedRun& run) {
  BlameTotals bt;
  for (const OpRecord& op : run.ops) {
    for (const auto& [cat, ps] : blame_op(op, run.wire)) bt.cats[cat] += ps;
    leg_wire_parts(op.req, run.wire, bt);
    if (op.has_resp()) leg_wire_parts(op.resp, run.wire, bt);
  }
  return bt;
}

/// The knob's attributed critical-path picoseconds under the blame model.
std::int64_t knob_blame_ps(const Knob& k, const BlameTotals& bt,
                           double sample_factor) {
  std::int64_t ps = 0;
  for (const std::string& cat : k.blame_categories) {
    auto it = bt.cats.find(cat);
    if (it != bt.cats.end()) ps += it->second;
  }
  switch (k.wire_part) {
    case WirePart::kSerialization: ps += bt.wire_ser; break;
    case WirePart::kLinkLatency: ps += bt.wire_link; break;
    case WirePart::kSwitchLatency: ps += bt.wire_switch; break;
    case WirePart::kNone: break;
  }
  if (sample_factor > 1.0) {
    ps = std::llround(static_cast<double>(ps) * sample_factor);
  }
  return ps;
}

/// Busiest matching util.* resource's effective busy time (busy integral
/// normalized by unit capacity) — the PR 5 predictor.
std::int64_t knob_busy_ps(const sim::StatRegistry& st,
                          const std::string& pattern) {
  if (pattern.empty()) return 0;
  std::int64_t best = 0;
  const std::string suffix = ".busy_ps";
  for (const auto& [name, value] : st.counters()) {
    if (name.rfind("util.", 0) != 0) continue;
    if (name.size() <= suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    std::string resource = name.substr(0, name.size() - suffix.size());
    if (resource.find(pattern) == std::string::npos) continue;
    std::uint64_t cap = st.counter_value(resource + ".capacity");
    if (cap == 0) cap = 1;
    best = std::max(best, static_cast<std::int64_t>(value / cap));
  }
  return best;
}

// ---- plan bookkeeping ------------------------------------------------------

struct PointRef {
  double scale = 1.0;
  std::size_t idx = 0;
};

struct KnobPlan {
  const Knob* knob = nullptr;
  bool inert = false;
  std::vector<PointRef> points;
};

struct StrategyPlan {
  workloads::Strategy st{};
  std::size_t baseline_idx = 0;
  std::unique_ptr<FlightRecorder> recorder;
  std::vector<KnobPlan> knobs;
};

bool workload_allowed(const Knob& k, const std::string& workload) {
  if (k.only_workloads.empty()) return true;
  for (const std::string& w : k.only_workloads) {
    if (w == workload) return true;
  }
  return false;
}

std::int64_t improvement(std::int64_t baseline_ps, const WhatifPoint& p) {
  return p.ok ? baseline_ps - p.total_ps : 0;
}

/// Predicted improvement at speed s from `attributed` baseline-critical
/// picoseconds, clamped so a prediction never exceeds the whole baseline.
std::int64_t predict_at(std::int64_t attributed, std::int64_t baseline_ps,
                        double s) {
  std::int64_t a = std::min(attributed, baseline_ps);
  if (std::isinf(s)) return a;
  return std::llround(static_cast<double>(a) * (1.0 - 1.0 / s));
}

}  // namespace

WhatifReport run_whatif(const workloads::Registry& reg,
                        const std::string& workload,
                        const workloads::WorkloadParams& params,
                        const workloads::RunOptions& base_opts,
                        const cluster::SystemConfig& sys,
                        const WhatifOptions& opt) {
  if (reg.find(workload) == nullptr) {
    throw std::invalid_argument("unknown workload: " + workload);
  }
  if (params.has("strategy")) {
    throw std::invalid_argument(
        "whatif drives strategies itself; use --strategies, not --strategy");
  }
  if (opt.strategies.empty()) {
    throw std::invalid_argument("whatif needs at least one strategy");
  }
  if (opt.scales.empty()) {
    throw std::invalid_argument("whatif needs at least one --scales value");
  }
  for (double s : opt.scales) {
    if (!(s > 0.0)) {
      throw std::invalid_argument("--scales values must be > 0 (or inf)");
    }
  }

  // Resolve the knob subset up front so a typo fails before any run.
  const std::vector<Knob>& all = knob_registry();
  std::vector<const Knob*> knobs;
  if (opt.knobs.empty()) {
    for (const Knob& k : all) knobs.push_back(&k);
  } else {
    for (const std::string& name : opt.knobs) {
      const Knob* found = nullptr;
      for (const Knob& k : all) {
        if (k.name == name) found = &k;
      }
      if (found == nullptr) {
        throw std::invalid_argument("unknown knob: " + name +
                                    " (see `gputn config` for the registry)");
      }
      knobs.push_back(found);
    }
  }

  // Fold the CLI's fabric overrides into the config once, *before* knobs
  // apply, then neutralize them in the per-point options — otherwise
  // make_config would re-apply e.g. --credits on top of the scaled config
  // and silently clobber the switch_credits knob.
  cluster::SystemConfig base_sys = with_fabric_overrides(base_opts, sys);
  workloads::RunOptions opts = base_opts;
  opts.topology.clear();
  opts.routing.clear();
  opts.credits = -1;
  opts.quiet = true;
  opts.trace = nullptr;
  opts.timeseries = nullptr;
  opts.flight = nullptr;

  // ---- phase 1: baseline + counterfactual matrix -------------------------
  exp::Plan plan;
  std::vector<StrategyPlan> splans;
  for (workloads::Strategy st : opt.strategies) {
    StrategyPlan sp;
    sp.st = st;
    std::string sname = workloads::strategy_name(st);
    workloads::RunOptions st_opts = opts;
    st_opts.strategy = st;

    FlightConfig fc;
    fc.capacity = 65536;
    fc.sample_period = 1;
    sp.recorder = std::make_unique<FlightRecorder>(fc);
    workloads::RunOptions base_run = st_opts;
    base_run.flight = sp.recorder.get();
    sp.baseline_idx = plan.add_workload(reg, sname + "/baseline", workload,
                                        base_run, params, base_sys);

    for (const Knob* k : knobs) {
      KnobPlan kp;
      kp.knob = k;
      if (!workload_allowed(*k, workload)) {
        kp.inert = true;
        sp.knobs.push_back(std::move(kp));
        continue;
      }
      for (double s : opt.scales) {
        cluster::SystemConfig ksys = base_sys;
        workloads::WorkloadParams kparams = params;
        // apply() == false skips just this scale-point (e.g. gpu_cus
        // refuses downscales). The knob is inert only when no scale
        // produced a point (e.g. credits already unlimited at every s).
        if (!k->apply(ksys, kparams, s)) continue;
        std::size_t idx = plan.add_workload(
            reg, sname + "/" + k->name + "/x" + fmt_scale(s), workload,
            st_opts, kparams, ksys);
        kp.points.push_back(PointRef{s, idx});
      }
      kp.inert = kp.points.empty();
      sp.knobs.push_back(std::move(kp));
    }
    splans.push_back(std::move(sp));
  }

  exp::Runner runner(opt.jobs);
  exp::RunSummary summary = runner.run(plan);

  // ---- assemble per-strategy reports -------------------------------------
  WhatifReport rep;
  rep.workload = workload;
  rep.tolerance_pct = opt.tolerance_pct;
  for (StrategyPlan& sp : splans) {
    StrategyReport sr;
    sr.strategy = workloads::strategy_name(sp.st);
    const exp::RunResult& base = summary.results[sp.baseline_idx];
    sr.baseline_ok = base.ok;
    sr.baseline_error = base.error;
    sr.baseline_ps = base.ok ? static_cast<std::int64_t>(
                                   base.result.total_time)
                             : 0;

    BlameTotals bt;
    double sample_factor = 1.0;
    if (base.ok) {
      Analysis a = analyze_flight(sp.recorder->json(), "baseline");
      if (!a.runs.empty()) {
        const AnalyzedRun& run = a.runs.front();
        sr.ops_offered = run.offered;
        sr.ops_recorded = run.recorded;
        bt = blame_totals(run);
        if (run.recorded > 0 && run.offered > run.recorded) {
          sample_factor = static_cast<double>(run.offered) /
                          static_cast<double>(run.recorded);
        }
      }
    }

    // Cross-check scale: 2x when run, else the smallest finite speedup.
    double vscale = 0.0;
    for (double s : opt.scales) {
      if (std::isinf(s) || s <= 1.0) continue;
      if (s == 2.0) {
        vscale = 2.0;
        break;
      }
      if (vscale == 0.0 || s < vscale) vscale = s;
    }
    std::int64_t tol_ps = std::llround(static_cast<double>(sr.baseline_ps) *
                                       opt.tolerance_pct / 100.0);

    for (const KnobPlan& kp : sp.knobs) {
      KnobResult kr;
      kr.name = kp.knob->name;
      kr.kind = kp.knob->kind;
      kr.inert = kp.inert;
      if (kp.inert) {
        kr.verdict = "inert";
        sr.knobs.push_back(std::move(kr));
        continue;
      }
      for (const PointRef& pr : kp.points) {
        const exp::RunResult& r = summary.results[pr.idx];
        WhatifPoint pt;
        pt.scale = pr.scale;
        pt.ok = r.ok;
        pt.error = r.error;
        pt.total_ps =
            r.ok ? static_cast<std::int64_t>(r.result.total_time) : 0;
        kr.points.push_back(std::move(pt));
      }
      if (sr.baseline_ok) {
        std::int64_t fastest = sr.baseline_ps;
        std::int64_t slowest = sr.baseline_ps;
        for (const WhatifPoint& pt : kr.points) {
          if (!pt.ok) continue;
          fastest = std::min(fastest, pt.total_ps);
          slowest = std::max(slowest, pt.total_ps);
          std::int64_t imp = improvement(sr.baseline_ps, pt);
          if (pt.scale == 2.0) kr.improve2x_ps = imp;
          if (std::isinf(pt.scale)) kr.ideal_ps = imp;
          if (pt.scale > 1.0) {
            kr.best_improve_ps = std::max(kr.best_improve_ps, imp);
          }
        }
        if (sr.baseline_ps > 0) {
          kr.swing_pct = 100.0 * static_cast<double>(slowest - fastest) /
                         static_cast<double>(sr.baseline_ps);
        }
        kr.predicted_blame_ps = knob_blame_ps(*kp.knob, bt, sample_factor);
        kr.predicted_busy_ps = knob_busy_ps(base.result.net_stats,
                                            kp.knob->busy_pattern);

        // Verdict at the cross-check scale.
        const WhatifPoint* vp = nullptr;
        for (const WhatifPoint& pt : kr.points) {
          if (pt.ok && pt.scale == vscale) vp = &pt;
        }
        if (vp != nullptr) {
          kr.measured_ps = improvement(sr.baseline_ps, *vp);
          kr.predicted_ps =
              predict_at(kr.predicted_blame_ps, sr.baseline_ps, vscale);
          if (kr.predicted_ps <= tol_ps && kr.measured_ps > tol_ps) {
            kr.verdict = "unattributed";
          } else if (kr.measured_ps > kr.predicted_ps + tol_ps) {
            kr.verdict = "queueing";
          } else if (kr.measured_ps < kr.predicted_ps - tol_ps) {
            kr.verdict = "overlapped";
          } else {
            kr.verdict = "match";
          }
        }
      }
      sr.knobs.push_back(std::move(kr));
    }

    // Ranking: biggest causal win first; inert knobs are excluded.
    for (const KnobResult& kr : sr.knobs) {
      if (!kr.inert) sr.ranking.push_back(kr.name);
    }
    auto key = [&](const std::string& name) -> const KnobResult* {
      for (const KnobResult& kr : sr.knobs) {
        if (kr.name == name) return &kr;
      }
      return nullptr;
    };
    std::sort(sr.ranking.begin(), sr.ranking.end(),
              [&](const std::string& a, const std::string& b) {
                const KnobResult* ka = key(a);
                const KnobResult* kb = key(b);
                if (ka->ideal_ps != kb->ideal_ps) {
                  return ka->ideal_ps > kb->ideal_ps;
                }
                if (ka->improve2x_ps != kb->improve2x_ps) {
                  return ka->improve2x_ps > kb->improve2x_ps;
                }
                if (ka->best_improve_ps != kb->best_improve_ps) {
                  return ka->best_improve_ps > kb->best_improve_ps;
                }
                return a < b;
              });
    for (const KnobResult& kr : sr.knobs) {
      if (kr.verdict == "queueing" || kr.verdict == "overlapped" ||
          kr.verdict == "unattributed") {
        ++sr.divergences;
      }
    }
    rep.strategies.push_back(std::move(sr));
  }

  // ---- phase 2: virtual-speedup curve for each strategy's top knob -------
  if (opt.curve) {
    static const double kCurveScales[] = {1.25, 1.5, 4.0, 8.0};
    exp::Plan curve_plan;
    struct CurveRef {
      std::size_t strategy = 0;
      std::vector<PointRef> points;
    };
    std::vector<CurveRef> crefs;
    for (std::size_t si = 0; si < rep.strategies.size(); ++si) {
      StrategyReport& sr = rep.strategies[si];
      if (!sr.baseline_ok || sr.ranking.empty()) continue;
      const Knob* top = nullptr;
      for (const Knob& k : all) {
        if (k.name == sr.ranking.front()) top = &k;
      }
      if (top == nullptr) continue;
      CurveRef cr;
      cr.strategy = si;
      workloads::RunOptions st_opts = opts;
      st_opts.strategy = splans[si].st;
      for (double s : kCurveScales) {
        cluster::SystemConfig ksys = base_sys;
        workloads::WorkloadParams kparams = params;
        if (!top->apply(ksys, kparams, s)) continue;
        std::size_t idx = curve_plan.add_workload(
            reg,
            sr.strategy + "/curve/" + top->name + "/x" + fmt_scale(s),
            workload, st_opts, kparams, ksys);
        cr.points.push_back(PointRef{s, idx});
      }
      if (!cr.points.empty()) {
        sr.curve_knob = top->name;
        crefs.push_back(std::move(cr));
      }
    }
    if (!curve_plan.empty()) {
      exp::RunSummary csum = runner.run(curve_plan);
      for (const CurveRef& cr : crefs) {
        StrategyReport& sr = rep.strategies[cr.strategy];
        for (const PointRef& pr : cr.points) {
          const exp::RunResult& r = csum.results[pr.idx];
          WhatifPoint pt;
          pt.scale = pr.scale;
          pt.ok = r.ok;
          pt.error = r.error;
          pt.total_ps =
              r.ok ? static_cast<std::int64_t>(r.result.total_time) : 0;
          sr.curve.push_back(std::move(pt));
        }
      }
    }
  }
  return rep;
}

// ---- render ---------------------------------------------------------------

namespace {

std::string us(std::int64_t ps) {
  return fmt("%.3f", static_cast<double>(ps) / 1e6);
}

const KnobResult* find_knob(const StrategyReport& sr,
                            const std::string& name) {
  for (const KnobResult& kr : sr.knobs) {
    if (kr.name == name) return &kr;
  }
  return nullptr;
}

}  // namespace

std::string render_whatif(const WhatifReport& rep, const WhatifOptions& opt) {
  std::string out = "whatif: " + rep.workload + "  (tolerance " +
                    fmt("%.1f", rep.tolerance_pct) + "% of baseline)\n";
  for (const StrategyReport& sr : rep.strategies) {
    out += "\n== strategy " + sr.strategy + ": ";
    if (!sr.baseline_ok) {
      out += "BASELINE FAILED: " + sr.baseline_error + "\n";
      continue;
    }
    out += "baseline " + us(sr.baseline_ps) + " us, ops " +
           std::to_string(sr.ops_recorded) + "/" +
           std::to_string(sr.ops_offered) + " recorded\n";
    out +=
        "  rank  knob            kind       ideal_us   meas@2x_us"
        "   pred@2x_us    busy_us  verdict\n";
    std::size_t shown = 0;
    for (std::size_t i = 0; i < sr.ranking.size(); ++i) {
      if (opt.top > 0 && static_cast<int>(i) >= opt.top) break;
      const KnobResult* kr = find_knob(sr, sr.ranking[i]);
      if (kr == nullptr) continue;
      char line[200];
      std::snprintf(line, sizeof(line),
                    "  %4zu  %-14s  %-8s %10s %12s %12s %10s  %s\n", i + 1,
                    kr->name.c_str(), kr->kind.c_str(),
                    us(kr->ideal_ps).c_str(), us(kr->measured_ps).c_str(),
                    us(kr->predicted_ps).c_str(),
                    us(kr->predicted_busy_ps).c_str(), kr->verdict.c_str());
      out += line;
      ++shown;
    }
    if (opt.top > 0 && sr.ranking.size() > static_cast<std::size_t>(opt.top)) {
      out += "  ... " + std::to_string(sr.ranking.size() - shown) +
             " more knobs (--top)\n";
    }
    std::string inert;
    for (const KnobResult& kr : sr.knobs) {
      if (!kr.inert) continue;
      if (!inert.empty()) inert += ", ";
      inert += kr.name;
    }
    if (!inert.empty()) out += "  inert: " + inert + "\n";
    bool failed = false;
    for (const KnobResult& kr : sr.knobs) {
      for (const WhatifPoint& pt : kr.points) {
        if (!pt.ok && !failed) {
          out += "  failed points:";
          failed = true;
        }
        if (!pt.ok) out += " " + kr.name + "/x" + fmt_scale(pt.scale);
      }
    }
    if (failed) out += "\n";
    out += "  divergences: " + std::to_string(sr.divergences);
    if (sr.divergences > 0) {
      out += " (";
      bool first = true;
      for (const KnobResult& kr : sr.knobs) {
        if (kr.verdict != "queueing" && kr.verdict != "overlapped" &&
            kr.verdict != "unattributed") {
          continue;
        }
        if (!first) out += ", ";
        out += kr.name + " " + kr.verdict;
        first = false;
      }
      out += ")";
    }
    out += "\n";
    if (!sr.curve_knob.empty()) {
      out += "  virtual speedup [" + sr.curve_knob + "]:";
      for (const WhatifPoint& pt : sr.curve) {
        out += " x" + fmt_scale(pt.scale) + "=";
        if (!pt.ok) {
          out += "fail";
        } else if (sr.baseline_ps > 0) {
          out += fmt("%+.2f",
                     -100.0 *
                         static_cast<double>(sr.baseline_ps - pt.total_ps) /
                         static_cast<double>(sr.baseline_ps)) +
                 "%";
        } else {
          out += us(pt.total_ps);
        }
      }
      out += "\n";
    }
  }
  return out;
}

// ---- JSON -----------------------------------------------------------------

namespace {

std::string point_json(const WhatifPoint& pt) {
  std::string o = "{\"scale\":\"" + fmt_scale(pt.scale) + "\",\"ok\":";
  o += pt.ok ? "true" : "false";
  if (pt.ok) {
    o += ",\"total_ps\":" + std::to_string(pt.total_ps);
  } else {
    o += ",\"error\":\"" + sim::json_escape(pt.error) + "\"";
  }
  o += "}";
  return o;
}

}  // namespace

std::string whatif_json(const WhatifReport& rep) {
  std::string o = "{\n  \"whatif\": 1,\n  \"workload\": \"" +
                  sim::json_escape(rep.workload) + "\",\n";
  o += "  \"tolerance_pct\": " + fmt("%.4f", rep.tolerance_pct) + ",\n";
  o += "  \"strategies\": [";
  for (std::size_t si = 0; si < rep.strategies.size(); ++si) {
    const StrategyReport& sr = rep.strategies[si];
    o += si == 0 ? "\n" : ",\n";
    o += "    {\"strategy\": \"" + sim::json_escape(sr.strategy) + "\",\n";
    o += "     \"baseline_ok\": ";
    o += sr.baseline_ok ? "true" : "false";
    if (!sr.baseline_ok) {
      o += ",\n     \"baseline_error\": \"" +
           sim::json_escape(sr.baseline_error) + "\"";
    }
    o += ",\n     \"baseline_ps\": " + std::to_string(sr.baseline_ps);
    o += ",\n     \"ops_offered\": " + std::to_string(sr.ops_offered);
    o += ",\n     \"ops_recorded\": " + std::to_string(sr.ops_recorded);
    o += ",\n     \"knobs\": [";
    for (std::size_t ki = 0; ki < sr.knobs.size(); ++ki) {
      const KnobResult& kr = sr.knobs[ki];
      o += ki == 0 ? "\n" : ",\n";
      o += "      {\"name\":\"" + sim::json_escape(kr.name) + "\",\"kind\":\"" +
           kr.kind + "\",\"inert\":";
      o += kr.inert ? "true" : "false";
      o += ",\"points\":[";
      for (std::size_t pi = 0; pi < kr.points.size(); ++pi) {
        if (pi != 0) o += ",";
        o += point_json(kr.points[pi]);
      }
      o += "]";
      o += ",\"improve2x_ps\":" + std::to_string(kr.improve2x_ps);
      o += ",\"ideal_ps\":" + std::to_string(kr.ideal_ps);
      o += ",\"best_improve_ps\":" + std::to_string(kr.best_improve_ps);
      o += ",\"swing_pct\":" + fmt("%.4f", kr.swing_pct);
      o += ",\"predicted_blame_ps\":" + std::to_string(kr.predicted_blame_ps);
      o += ",\"predicted_busy_ps\":" + std::to_string(kr.predicted_busy_ps);
      o += ",\"measured_ps\":" + std::to_string(kr.measured_ps);
      o += ",\"predicted_ps\":" + std::to_string(kr.predicted_ps);
      o += ",\"verdict\":\"" + kr.verdict + "\"}";
    }
    o += "\n     ],\n     \"ranking\": [";
    for (std::size_t ri = 0; ri < sr.ranking.size(); ++ri) {
      if (ri != 0) o += ",";
      o += "\"" + sim::json_escape(sr.ranking[ri]) + "\"";
    }
    o += "],\n     \"divergences\": " + std::to_string(sr.divergences);
    o += ",\n     \"curve_knob\": \"" + sim::json_escape(sr.curve_knob) +
         "\",\n     \"curve\": [";
    for (std::size_t ci = 0; ci < sr.curve.size(); ++ci) {
      if (ci != 0) o += ",";
      o += point_json(sr.curve[ci]);
    }
    o += "]}";
  }
  o += "\n  ]\n}\n";
  return o;
}

// ---- parse ----------------------------------------------------------------

namespace {

[[noreturn]] void bad(const std::string& source, const std::string& what) {
  throw std::runtime_error(source + ": " + what);
}

double jnum(const json::Value& obj, const std::string& key,
            double dflt = 0.0) {
  if (!obj.has(key)) return dflt;
  const json::Value& v = obj.at(key);
  return v.is_number() ? v.number : dflt;
}

std::string jstr(const json::Value& obj, const std::string& key) {
  if (!obj.has(key)) return {};
  const json::Value& v = obj.at(key);
  return v.is_string() ? v.string : std::string();
}

bool jbool(const json::Value& obj, const std::string& key) {
  return obj.has(key) && obj.at(key).kind == json::Value::Kind::kBool &&
         obj.at(key).boolean;
}

std::int64_t jint(const json::Value& obj, const std::string& key) {
  return static_cast<std::int64_t>(jnum(obj, key));
}

WhatifPoint parse_point(const json::Value& v) {
  WhatifPoint pt;
  pt.scale = parse_scale(jstr(v, "scale"));
  pt.ok = jbool(v, "ok");
  pt.total_ps = jint(v, "total_ps");
  pt.error = jstr(v, "error");
  return pt;
}

}  // namespace

WhatifReport parse_whatif(const std::string& json_text,
                          const std::string& source) {
  json::Value doc;
  try {
    doc = json::parse(json_text);
  } catch (const std::runtime_error& e) {
    bad(source, e.what());
  }
  if (!doc.is_object() || !doc.has("whatif")) {
    bad(source, "not a whatif report (no \"whatif\" marker)");
  }
  WhatifReport rep;
  rep.workload = jstr(doc, "workload");
  rep.tolerance_pct = jnum(doc, "tolerance_pct", 2.0);
  if (!doc.has("strategies") || !doc.at("strategies").is_array()) {
    bad(source, "missing strategies array");
  }
  for (const json::Value& sv : *doc.at("strategies").array) {
    if (!sv.is_object()) bad(source, "strategy entry is not an object");
    StrategyReport sr;
    sr.strategy = jstr(sv, "strategy");
    sr.baseline_ok = jbool(sv, "baseline_ok");
    sr.baseline_error = jstr(sv, "baseline_error");
    sr.baseline_ps = jint(sv, "baseline_ps");
    sr.ops_offered = static_cast<std::uint64_t>(jnum(sv, "ops_offered"));
    sr.ops_recorded = static_cast<std::uint64_t>(jnum(sv, "ops_recorded"));
    if (sv.has("knobs") && sv.at("knobs").is_array()) {
      for (const json::Value& kv : *sv.at("knobs").array) {
        if (!kv.is_object()) bad(source, "knob entry is not an object");
        KnobResult kr;
        kr.name = jstr(kv, "name");
        kr.kind = jstr(kv, "kind");
        kr.inert = jbool(kv, "inert");
        if (kv.has("points") && kv.at("points").is_array()) {
          for (const json::Value& pv : *kv.at("points").array) {
            kr.points.push_back(parse_point(pv));
          }
        }
        kr.improve2x_ps = jint(kv, "improve2x_ps");
        kr.ideal_ps = jint(kv, "ideal_ps");
        kr.best_improve_ps = jint(kv, "best_improve_ps");
        kr.swing_pct = jnum(kv, "swing_pct");
        kr.predicted_blame_ps = jint(kv, "predicted_blame_ps");
        kr.predicted_busy_ps = jint(kv, "predicted_busy_ps");
        kr.measured_ps = jint(kv, "measured_ps");
        kr.predicted_ps = jint(kv, "predicted_ps");
        kr.verdict = jstr(kv, "verdict");
        sr.knobs.push_back(std::move(kr));
      }
    }
    if (sv.has("ranking") && sv.at("ranking").is_array()) {
      for (const json::Value& rv : *sv.at("ranking").array) {
        if (rv.is_string()) sr.ranking.push_back(rv.string);
      }
    }
    sr.divergences = static_cast<int>(jnum(sv, "divergences"));
    sr.curve_knob = jstr(sv, "curve_knob");
    if (sv.has("curve") && sv.at("curve").is_array()) {
      for (const json::Value& cv : *sv.at("curve").array) {
        sr.curve.push_back(parse_point(cv));
      }
    }
    rep.strategies.push_back(std::move(sr));
  }
  return rep;
}

// ---- diff -----------------------------------------------------------------

namespace {

const StrategyReport* find_strategy(const WhatifReport& rep,
                                    const std::string& name) {
  for (const StrategyReport& sr : rep.strategies) {
    if (sr.strategy == name) return &sr;
  }
  return nullptr;
}

}  // namespace

WhatifDiff diff_whatif(const WhatifReport& cur, const WhatifReport& base,
                       double threshold_pct) {
  WhatifDiff d;
  d.text = "whatif diff (threshold " + fmt("%.1f", threshold_pct) + "%)\n";
  for (const StrategyReport& c : cur.strategies) {
    const StrategyReport* b = find_strategy(base, c.strategy);
    if (b == nullptr) {
      d.text += "== strategy " + c.strategy + ": only in current (note)\n";
      continue;
    }
    d.text += "== strategy " + c.strategy + "\n";
    // Denominator for relative gates: the baseline run time (gating small
    // knob deltas against themselves would be all noise).
    double denom =
        static_cast<double>(b->baseline_ps > 0 ? b->baseline_ps : 1);
    auto rel = [&](std::int64_t curv, std::int64_t basev) {
      return 100.0 * std::abs(static_cast<double>(curv - basev)) / denom;
    };
    double base_delta = rel(c.baseline_ps, b->baseline_ps);
    d.text += "  baseline: " + us(b->baseline_ps) + " -> " +
              us(c.baseline_ps) + " us (" + fmt("%.2f", base_delta) + "%)";
    if (base_delta > threshold_pct) {
      d.text += "  REGRESSION";
      ++d.regressions;
    }
    d.text += "\n";
    std::string ctop = c.ranking.empty() ? "" : c.ranking.front();
    std::string btop = b->ranking.empty() ? "" : b->ranking.front();
    if (ctop != btop) {
      d.text += "  top knob: " + (btop.empty() ? "(none)" : btop) + " -> " +
                (ctop.empty() ? "(none)" : ctop) + "  REGRESSION\n";
      ++d.regressions;
    }
    for (const KnobResult& ck : c.knobs) {
      const KnobResult* bk = find_knob(*b, ck.name);
      if (bk == nullptr) continue;
      if (ck.inert != bk->inert) {
        d.text += "  knob " + ck.name + ": inert " +
                  (bk->inert ? "true" : "false") + " -> " +
                  (ck.inert ? "true" : "false") + " (note)\n";
        continue;
      }
      double di = rel(ck.ideal_ps, bk->ideal_ps);
      double d2 = rel(ck.improve2x_ps, bk->improve2x_ps);
      if (di > threshold_pct) {
        d.text += "  knob " + ck.name + " ideal: " + us(bk->ideal_ps) +
                  " -> " + us(ck.ideal_ps) + " us (" + fmt("%.2f", di) +
                  "%)  REGRESSION\n";
        ++d.regressions;
      }
      if (d2 > threshold_pct) {
        d.text += "  knob " + ck.name + " improve@2x: " +
                  us(bk->improve2x_ps) + " -> " + us(ck.improve2x_ps) +
                  " us (" + fmt("%.2f", d2) + "%)  REGRESSION\n";
        ++d.regressions;
      }
      if (ck.verdict != bk->verdict) {
        d.text += "  knob " + ck.name + " verdict: " + bk->verdict + " -> " +
                  ck.verdict + " (note)\n";
      }
    }
  }
  for (const StrategyReport& b : base.strategies) {
    if (find_strategy(cur, b.strategy) == nullptr) {
      d.text += "== strategy " + b.strategy + ": only in baseline (note)\n";
    }
  }
  d.text += d.regressions == 0
                ? "no regressions\n"
                : std::to_string(d.regressions) + " regression(s)\n";
  return d;
}

}  // namespace gputn::obs

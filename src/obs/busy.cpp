#include "obs/busy.hpp"

namespace gputn::obs {

void BusyTracker::export_into(sim::StatRegistry& reg,
                              const std::string& prefix, sim::Tick now) const {
  reg.counter(prefix + ".busy_ps") += busy_ps(now);
  reg.counter(prefix + ".capacity") += static_cast<std::uint64_t>(capacity_);
  reg.counter(prefix + ".ops") += ops_;
  if (bytes_ > 0) reg.counter(prefix + ".bytes") += bytes_;
  if (qdepth_.count() > 0) {
    reg.counter(prefix + ".q.max") += static_cast<std::uint64_t>(queue_max_);
    reg.counter(prefix + ".q.time_ps") += queue_time_ps(now);
    reg.histogram(prefix + ".qdepth").merge(qdepth_);
  }
}

}  // namespace gputn::obs

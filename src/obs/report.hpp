// Bottleneck attribution report over exported stats (`gputn report`).
//
// Reads the JSON our own exporters write — a single-run stats file
// (sim::stats_json: {"counters", "accumulators", "histograms"}) or a sweep
// results file (exp::results_json: an array of points each carrying a
// nested "stats" object) — and derives, per point:
//   * the resource attribution table from the util.* utilization-ledger
//     counters (ranked by busy fraction over util.window_ps, saturated
//     resources flagged, time-weighted queue means and queue p99s), and
//   * the latency decomposition summary from the lat.* stage histograms,
//     and
//   * the serving summary from the serve.t<i>.* SLO counters (per-tenant
//     SLO-goodput and tail latency), when the stats came from `gputn serve`.
// Two reports can be diffed metric-by-metric; regressions past a
// configurable threshold on the gated metrics (total_time_ps and lat.*
// mean/p50/p90/p99/p999, where lat.serve.t<i>.p999 is each tenant's tail;
// serve.t<i>.goodput_rps is gated in the opposite direction — a *drop*
// past the threshold regresses) make the diff "failing", which is what lets
// `gputn report NEW.json --baseline OLD.json` act as a CI perf gate.
// lat.* metrics present on only one side are printed as "(metric absent)"
// rows; a gated lat.* metric the candidate *lost* counts as a regression
// (new metrics appearing only in the candidate do not).
//
// The functions are pure (string -> struct -> string) so tests can pin the
// rendered output exactly; all formatting is fixed-width and deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gputn::obs {

struct ReportOptions {
  double saturation_pct = 90.0;  ///< flag resources busier than this
  double threshold_pct = 5.0;    ///< diff: allowed regression on gated metrics
  int top = 0;                   ///< show only the N busiest resources (0=all)
};

/// One resource's utilization-ledger summary (util.<name>.* counters).
struct ResourceRow {
  std::string name;
  std::uint64_t busy_ps = 0;
  std::uint64_t capacity = 1;
  std::uint64_t ops = 0;
  std::uint64_t bytes = 0;
  bool has_queue = false;
  std::uint64_t q_max = 0;
  std::uint64_t q_time_ps = 0;
  double q_p99 = 0.0;

  /// Busy percentage of `window_ps` across all `capacity` units.
  double busy_pct(std::uint64_t window_ps) const {
    if (window_ps == 0 || capacity == 0) return 0.0;
    return 100.0 * static_cast<double>(busy_ps) /
           (static_cast<double>(capacity) * static_cast<double>(window_ps));
  }
  /// Time-weighted mean queue depth over `window_ps`.
  double q_mean(std::uint64_t window_ps) const {
    if (window_ps == 0) return 0.0;
    return static_cast<double>(q_time_ps) / static_cast<double>(window_ps);
  }
};

/// One lat.* stage histogram (values recorded in nanoseconds).
struct LatencyRow {
  std::string stage;  ///< name with the "lat." prefix stripped
  std::uint64_t count = 0;
  double mean_ns = 0.0;
  double p50_ns = 0.0;
  double p90_ns = 0.0;
  double p99_ns = 0.0;
  double p999_ns = 0.0;
  double max_ns = 0.0;
};

/// One serving tenant's SLO summary (serve.t<i>.* counters plus the
/// lat.serve.t<i> histogram's tail).
struct ServeRow {
  int tenant = 0;
  std::uint64_t ops = 0;
  std::uint64_t slo_ok = 0;
  std::uint64_t bytes = 0;
  double slo_pct = 0.0;      ///< slo_ok / ops
  double goodput_rps = 0.0;  ///< SLO-met ops per second of serve window
  double p999_ns = 0.0;      ///< lat.serve.t<i> p999
};

/// Everything derived from one stats object (a whole stats file, or one
/// point of a sweep file).
struct PointReport {
  std::string id;  ///< sweep point id; empty for a plain stats file
  bool ok = true;
  std::string error;             ///< failed sweep points carry this instead
  std::int64_t total_time_ps = -1;  ///< sweep points only (-1 = absent)
  std::uint64_t window_ps = 0;      ///< util.window_ps
  std::uint64_t serve_window_ps = 0;   ///< serve.window_ps (0 = not a serve run)
  std::vector<ResourceRow> resources;  ///< ranked by busy fraction, desc
  std::vector<LatencyRow> latency;     ///< name-sorted lat.* stages
  std::vector<ServeRow> serve;         ///< tenant-sorted serve.t<i>.* rows
  /// Every numeric leaf flattened to "counters.x" / "histograms.y.p99" /
  /// "total_time_ps" keys — the diffable view of the point.
  std::map<std::string, double> metrics;
};

struct Report {
  std::string source;  ///< file name (or test label) the report came from
  std::vector<PointReport> points;
};

/// Parse a stats or sweep JSON document. Throws std::runtime_error on
/// malformed JSON or an unrecognized document shape.
Report parse_report(const std::string& json_text, std::string source);

/// Render the attribution tables (one block per point).
std::string render_report(const Report& rep, const ReportOptions& opt);

struct Diff {
  std::string text;
  /// Gated metrics that regressed past ReportOptions::threshold_pct; the
  /// CLI exits nonzero when this is > 0.
  int regressions = 0;
};

/// Per-metric deltas of `cur` against `base`. Points are matched by id
/// (by position when ids are empty); unmatched points are reported but not
/// gated.
Diff diff_reports(const Report& cur, const Report& base,
                  const ReportOptions& opt);

}  // namespace gputn::obs

#include "obs/timeseries.hpp"

#include <ostream>
#include <stdexcept>

#include "sim/json.hpp"

namespace gputn::obs {

TimeSeries::TimeSeries(sim::Tick interval) : interval_(interval) {
  if (interval <= 0) {
    throw std::invalid_argument("timeseries: sample interval must be > 0");
  }
}

void TimeSeries::add_gauge(std::string name,
                           std::function<std::uint64_t()> fn) {
  probes_.push_back(Probe{std::move(name), false, std::move(fn), 0});
}

void TimeSeries::add_counter(std::string name,
                             std::function<std::uint64_t()> fn) {
  probes_.push_back(Probe{std::move(name), true, std::move(fn), 0});
}

void TimeSeries::start(sim::Simulator& sim) {
  if (sim_ != nullptr) throw std::logic_error("timeseries: started twice");
  sim_ = &sim;
  sample();
  schedule_next();
}

void TimeSeries::sample() {
  data_.push_back(static_cast<std::uint64_t>(sim_->now()));
  for (Probe& p : probes_) {
    std::uint64_t v = p.fn();
    if (p.delta) {
      data_.push_back(v - p.last);
      p.last = v;
    } else {
      data_.push_back(v);
    }
  }
}

void TimeSeries::schedule_next() {
  sim_->schedule_in(interval_, [this] {
    sample();
    // Keep sampling only while the simulation is still live: with the
    // sampler's own event consumed and nothing else pending, no coroutine
    // can ever be woken again, so this row was the final one.
    if (sim_->pending_events() > 0) schedule_next();
  });
}

void TimeSeries::write_csv(std::ostream& out) const {
  out << "t_ps";
  for (const Probe& p : probes_) out << ',' << p.name;
  out << '\n';
  std::size_t stride = 1 + probes_.size();
  for (std::size_t r = 0; r * stride < data_.size(); ++r) {
    for (std::size_t c = 0; c < stride; ++c) {
      if (c > 0) out << ',';
      out << data_[r * stride + c];
    }
    out << '\n';
  }
}

void TimeSeries::write_json(std::ostream& out) const {
  out << "{\n  \"interval_ps\": " << interval_ << ",\n  \"columns\": [\"t_ps\"";
  for (const Probe& p : probes_) {
    out << ", \"" << sim::json_escape(p.name) << '"';
  }
  out << "],\n  \"rows\": [";
  std::size_t stride = 1 + probes_.size();
  std::size_t nrows = probes_.empty() ? 0 : data_.size() / stride;
  for (std::size_t r = 0; r < nrows; ++r) {
    out << (r == 0 ? "\n    [" : ",\n    [");
    for (std::size_t c = 0; c < stride; ++c) {
      if (c > 0) out << ", ";
      out << data_[r * stride + c];
    }
    out << ']';
  }
  out << (nrows == 0 ? "]\n}\n" : "\n  ]\n}\n");
}

}  // namespace gputn::obs

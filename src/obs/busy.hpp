// Utilization ledger: busy-time and queue-depth accounting for one named
// simulated resource (link wire, NIC command pipeline, DMA engine, CPU
// cores, GPU compute units).
//
// A BusyTracker is pure bookkeeping: it never touches the simulator, never
// schedules events, and does all its accounting in integer picoseconds —
// so instrumented components behave bit-identically to uninstrumented ones
// (the always-on, zero-drift property the observability tests enforce).
// Busy time is a time integral in unit-picoseconds: a resource of capacity
// C that keeps k units busy for t picoseconds accumulates k*t, so the busy
// fraction over a window W is busy_ps / (C * W). Queue depth is accounted
// the same way (depth-picoseconds), giving an exact time-weighted mean
// depth q_time_ps / W; the depth observed at each enqueue instant also
// feeds a pow2 histogram for queue p99s.
#pragma once

#include <cstdint>
#include <string>

#include "sim/stats.hpp"
#include "sim/units.hpp"

namespace gputn::obs {

class BusyTracker {
 public:
  /// `capacity` is the number of units that can be busy at once (1 for a
  /// serialized pipeline, cu_count * wgs_per_cu for a GPU, ...).
  explicit BusyTracker(int capacity = 1)
      : capacity_(capacity > 0 ? capacity : 1) {}

  // -- service occupancy ---------------------------------------------------
  /// One unit goes busy at `now` (counts one op).
  void acquire(sim::Tick now) {
    settle_busy(now);
    ++in_use_;
    if (in_use_ > in_use_max_) in_use_max_ = in_use_;
    ++ops_;
  }
  /// One unit goes idle at `now`.
  void release(sim::Tick now) {
    settle_busy(now);
    if (in_use_ > 0) --in_use_;
  }

  // -- feeding queue -------------------------------------------------------
  /// Work arrived in the resource's input queue at `now`.
  void enqueue(sim::Tick now) {
    settle_queue(now);
    ++queue_;
    if (queue_ > queue_max_) queue_max_ = queue_;
    qdepth_.add(static_cast<std::uint64_t>(queue_));
  }
  /// Work left the queue (entered service) at `now`.
  void dequeue(sim::Tick now) {
    settle_queue(now);
    if (queue_ > 0) --queue_;
  }

  void add_bytes(std::uint64_t n) { bytes_ += n; }

  int capacity() const { return capacity_; }
  int in_use() const { return in_use_; }
  int in_use_max() const { return in_use_max_; }
  int queue_depth() const { return queue_; }
  int queue_max() const { return queue_max_; }
  std::uint64_t ops() const { return ops_; }
  std::uint64_t bytes() const { return bytes_; }
  /// Busy integral in unit-picoseconds, settled up to `now` (>= the last
  /// acquire/release instant).
  std::uint64_t busy_ps(sim::Tick now) const {
    return busy_integral_ +
           static_cast<std::uint64_t>(in_use_) *
               static_cast<std::uint64_t>(now - last_busy_change_);
  }
  /// Queue-depth integral in depth-picoseconds, settled up to `now`.
  std::uint64_t queue_time_ps(sim::Tick now) const {
    return queue_integral_ +
           static_cast<std::uint64_t>(queue_) *
               static_cast<std::uint64_t>(now - last_queue_change_);
  }
  /// Enqueue-instant depth distribution (for queue p99s).
  const sim::Histogram& queue_depths() const { return qdepth_; }

  /// Publish the ledger into `reg` as integer counters under `prefix`:
  /// .busy_ps, .capacity, .ops, plus .bytes when any were recorded and
  /// .q.max / .q.time_ps / a .qdepth histogram when the queue was ever
  /// used. `now` must be at or after the last recorded transition.
  void export_into(sim::StatRegistry& reg, const std::string& prefix,
                   sim::Tick now) const;

 private:
  void settle_busy(sim::Tick now) {
    busy_integral_ += static_cast<std::uint64_t>(in_use_) *
                      static_cast<std::uint64_t>(now - last_busy_change_);
    last_busy_change_ = now;
  }
  void settle_queue(sim::Tick now) {
    queue_integral_ += static_cast<std::uint64_t>(queue_) *
                       static_cast<std::uint64_t>(now - last_queue_change_);
    last_queue_change_ = now;
  }

  int capacity_;
  int in_use_ = 0;
  int in_use_max_ = 0;
  int queue_ = 0;
  int queue_max_ = 0;
  std::uint64_t ops_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t busy_integral_ = 0;   // unit-picoseconds
  std::uint64_t queue_integral_ = 0;  // depth-picoseconds
  sim::Tick last_busy_change_ = 0;
  sim::Tick last_queue_change_ = 0;
  sim::Histogram qdepth_;
};

}  // namespace gputn::obs

#include "obs/flight.hpp"

#include <algorithm>
#include <iterator>
#include <utility>

namespace gputn::obs {

namespace {

// splitmix64 finalizer: cheap, well-distributed 64-bit mix. The keep
// decision must look uniform over op keys even when tags are structured
// (serve packs server/slot/round into bit fields).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void append_stamp(std::string& out, const char* name, std::int64_t v,
                  bool& first) {
  if (v < 0) return;  // stage did not occur: omit rather than emit -1
  if (!first) out += ',';
  first = false;
  out += '"';
  out += name;
  out += "\":";
  out += std::to_string(v);
}

void append_leg(std::string& out, const FlightLeg& leg) {
  out += "{\"flow\":" + std::to_string(leg.flow) +
         ",\"src\":" + std::to_string(leg.src) +
         ",\"dst\":" + std::to_string(leg.dst) +
         ",\"kind\":" + std::to_string(leg.kind) +
         ",\"bytes\":" + std::to_string(leg.bytes) +
         ",\"retransmits\":" + std::to_string(leg.retransmits) +
         ",\"hops\":" + std::to_string(leg.hops) + ",\"stamps\":{";
  bool first = true;
  append_stamp(out, "trigger", leg.t_trigger, first);
  append_stamp(out, "post", leg.t_post, first);
  append_stamp(out, "ring", leg.t_ring, first);
  append_stamp(out, "cmd", leg.t_cmd, first);
  append_stamp(out, "pop", leg.t_pop, first);
  append_stamp(out, "admit", leg.t_admit, first);
  append_stamp(out, "wire_first", leg.t_wire_first, first);
  append_stamp(out, "wire", leg.t_wire, first);
  append_stamp(out, "switch", leg.t_switch, first);
  append_stamp(out, "rx", leg.t_rx, first);
  append_stamp(out, "deposit", leg.t_deposit, first);
  out += "}}";
}

void append_op(std::string& out, const OpRecord& op) {
  // op_tag is a string on purpose: serve tags use the full 64-bit range,
  // which a double-backed JSON number parser would round past 2^53.
  out += "{\"op_tag\":\"" + std::to_string(op.op_tag) +
         "\",\"tenant\":" + std::to_string(op.tenant) +
         ",\"latency_ps\":" + std::to_string(op.latency()) + ",\"req\":";
  append_leg(out, op.req);
  if (op.has_resp()) {
    out += ",\"resp\":";
    append_leg(out, op.resp);
  }
  out += '}';
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

void replay_spools(std::vector<FlightSpool*> spools, FlightSink& sink) {
  std::vector<FlightSpool::Entry> all;
  for (FlightSpool* s : spools) {
    if (s == nullptr) continue;
    auto& e = s->entries();
    all.insert(all.end(), std::make_move_iterator(e.begin()),
               std::make_move_iterator(e.end()));
    e.clear();
  }
  // Per-node order (node, seq) is deterministic at every shard count; the
  // stable global order interleaves nodes by recording time.
  std::sort(all.begin(), all.end(),
            [](const FlightSpool::Entry& a, const FlightSpool::Entry& b) {
              if (a.t_record != b.t_record) return a.t_record < b.t_record;
              if (a.node != b.node) return a.node < b.node;
              return a.seq < b.seq;
            });
  for (auto& e : all) sink.record(e.leg, e.op_tag, e.tenant);
}

FlightRecorder::FlightRecorder(FlightConfig cfg) : cfg_(cfg) {
  if (cfg_.capacity == 0) cfg_.capacity = 1;
  if (cfg_.sample_period == 0) cfg_.sample_period = 1;
  if (cfg_.exemplars_per_tenant < 0) cfg_.exemplars_per_tenant = 0;
}

bool FlightRecorder::sampled(std::uint64_t key, std::uint64_t seed,
                             std::uint64_t period) {
  if (period <= 1) return true;
  return mix64(key ^ mix64(seed)) % period == 0;
}

void FlightRecorder::record(const FlightLeg& leg, std::uint64_t op_tag,
                            std::int32_t tenant) {
  ++arrivals_;
  if (op_tag == 0) {
    OpRecord op;
    op.tenant = tenant;
    op.req = leg;
    finish_op(std::move(op));
    return;
  }
  auto it = pending_.find(op_tag);
  if (it == pending_.end()) {
    pending_.emplace(op_tag, Pending{leg, tenant, arrivals_});
    return;
  }
  OpRecord op;
  op.op_tag = op_tag;
  // The first leg carries the op's tenant; a reply that lost the tag in a
  // protocol corner still inherits it from the request.
  op.tenant = it->second.tenant >= 0 ? it->second.tenant : tenant;
  op.req = it->second.leg;
  op.resp = leg;
  pending_.erase(it);
  finish_op(std::move(op));
}

void FlightRecorder::finish_op(OpRecord&& op) {
  ++offered_;
  std::uint64_t key = op.op_tag != 0 ? op.op_tag : op.req.flow;
  if (sampled(key, cfg_.seed, cfg_.sample_period)) {
    if (ring_.size() == cfg_.capacity) {
      ring_.pop_front();
      ++evicted_;
    }
    ring_.push_back(op);
  }
  if (cfg_.exemplars_per_tenant == 0) return;
  // Tail exemplars: keep the K slowest per tenant regardless of sampling.
  // Insertion sort into a K-bounded vector; ties break towards the earlier
  // flow id so the set is independent of completion-order perturbations.
  auto& ex = exemplars_[op.tenant];
  auto slower = [](const OpRecord& a, const OpRecord& b) {
    if (a.latency() != b.latency()) return a.latency() > b.latency();
    return a.req.flow < b.req.flow;
  };
  auto pos = std::upper_bound(ex.begin(), ex.end(), op, slower);
  if (pos == ex.end() &&
      ex.size() >= static_cast<std::size_t>(cfg_.exemplars_per_tenant)) {
    return;
  }
  ex.insert(pos, std::move(op));
  if (ex.size() > static_cast<std::size_t>(cfg_.exemplars_per_tenant)) {
    ex.pop_back();
  }
}

std::vector<OpRecord> FlightRecorder::exemplars(std::int32_t tenant) const {
  auto it = exemplars_.find(tenant);
  return it == exemplars_.end() ? std::vector<OpRecord>{} : it->second;
}

void FlightRecorder::flush_pending() {
  if (pending_.empty()) return;
  // Unmatched legs (ops whose partner never completed, or genuinely one-way
  // tagged traffic) become single-leg ops. Flush in arrival order so the
  // dump is independent of map iteration quirks across platforms.
  std::vector<std::pair<std::uint64_t, Pending>> left(pending_.begin(),
                                                      pending_.end());
  pending_.clear();
  std::sort(left.begin(), left.end(),
            [](const auto& a, const auto& b) {
              return a.second.order < b.second.order;
            });
  for (auto& [tag, p] : left) {
    OpRecord op;
    op.op_tag = tag;
    op.tenant = p.tenant;
    op.req = p.leg;
    finish_op(std::move(op));
  }
}

std::string FlightRecorder::json() {
  flush_pending();
  std::string out;
  out.reserve(256 + ring_.size() * 384);
  out += "{\"workload\":\"" + escape(label_) + "\",\"mode\":\"" +
         escape(mode_) + "\"";
  out += ",\"wire\":{\"bytes_per_sec\":" +
         std::to_string(static_cast<std::uint64_t>(wire_.bytes_per_sec)) +
         ",\"link_latency_ps\":" + std::to_string(wire_.link_latency_ps) +
         ",\"switch_latency_ps\":" + std::to_string(wire_.switch_latency_ps) +
         ",\"mtu_bytes\":" + std::to_string(wire_.mtu_bytes) +
         ",\"header_bytes\":" + std::to_string(wire_.header_bytes) +
         ",\"per_packet_overhead\":" +
         std::to_string(wire_.per_packet_overhead) + "}";
  out += ",\"sample_period\":" + std::to_string(cfg_.sample_period) +
         ",\"seed\":" + std::to_string(cfg_.seed) +
         ",\"capacity\":" + std::to_string(cfg_.capacity) +
         ",\"offered\":" + std::to_string(offered_) +
         ",\"recorded\":" + std::to_string(ring_.size()) +
         ",\"evicted\":" + std::to_string(evicted_);
  out += ",\"ops\":[";
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    if (i != 0) out += ',';
    append_op(out, ring_[i]);
  }
  out += "],\"exemplars\":{";
  bool first_tenant = true;
  for (const auto& [tenant, ops] : exemplars_) {
    if (!first_tenant) out += ',';
    first_tenant = false;
    out += '"' + std::to_string(tenant) + "\":[";
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (i != 0) out += ',';
      append_op(out, ops[i]);
    }
    out += ']';
  }
  out += "}}";
  return out;
}

std::string merged_flight_json(
    std::vector<std::pair<std::string, FlightRecorder*>> points) {
  std::string out = "[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i != 0) out += ',';
    out += "{\"id\":\"" + escape(points[i].first) + "\",\"flight\":" +
           points[i].second->json() + '}';
  }
  out += ']';
  return out;
}

}  // namespace gputn::obs

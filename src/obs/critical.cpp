#include "obs/critical.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "sim/json.hpp"
#include "sim/trace.hpp"

namespace gputn::obs {

namespace json = ::gputn::sim::json;

namespace {

// net::Message kinds the path grouping cares about (nic/nic.hpp MsgKind;
// the values are wire-visible protocol constants, not private state).
constexpr std::uint32_t kKindPut = 1;
constexpr std::uint32_t kKindGetReq = 3;

/// Fixed category order: chain order, op-level category last. Rendering
/// ranks by weight, but iteration anywhere else uses this order.
constexpr const char* kCategories[] = {
    "trigger_wait", "qp_batch",  "doorbell",     "cmd_queue",
    "throttle",     "tx_proc",   "retransmit",   "wire",
    "switch_queue", "deposit",   "server_proc",
};

/// Contribution of segment [from, to); stamps that did not occur (from < 0)
/// or inverted pairs contribute nothing.
std::int64_t seg(std::int64_t from, std::int64_t to) {
  return (from >= 0 && to > from) ? to - from : 0;
}

void blame_leg(const FlightLeg& l, const WireParams& w,
               std::map<std::string, std::int64_t>& out) {
  out["trigger_wait"] += seg(l.t_trigger, l.t_cmd);
  out["qp_batch"] += seg(l.t_post, l.t_ring);
  out["doorbell"] += seg(l.t_ring, l.t_cmd);
  out["cmd_queue"] += seg(l.t_cmd, l.t_pop);
  out["throttle"] += seg(l.t_pop, l.t_admit);
  std::int64_t first = l.t_wire_first >= 0 ? l.t_wire_first : l.t_wire;
  out["tx_proc"] += seg(l.t_admit, first);
  out["retransmit"] += seg(first, l.t_wire);
  std::int64_t wire_meas = seg(l.t_wire, l.t_rx);
  if (wire_meas > 0) {
    std::int64_t ideal = ideal_wire_ps(w, l.bytes, l.hops);
    std::int64_t wire = std::min(wire_meas, ideal);
    out["wire"] += wire;
    out["switch_queue"] += wire_meas - wire;
  }
  out["deposit"] += seg(l.t_rx, l.t_deposit);
}

// ---- dump parsing ---------------------------------------------------------

[[noreturn]] void bad(const std::string& what) {
  throw std::runtime_error("flight dump: " + what);
}

double num(const json::Value& obj, const std::string& key, double dflt = 0.0) {
  if (!obj.has(key)) return dflt;
  const json::Value& v = obj.at(key);
  if (!v.is_number()) bad("field '" + key + "' is not a number");
  return v.number;
}

std::string str(const json::Value& obj, const std::string& key) {
  if (!obj.has(key)) return {};
  return obj.at(key).string;
}

std::int64_t stamp(const json::Value& stamps, const char* key) {
  // Omitted stamp = the stage did not occur.
  return static_cast<std::int64_t>(num(stamps, key, -1.0));
}

FlightLeg parse_leg(const json::Value& v) {
  if (!v.is_object()) bad("leg is not an object");
  FlightLeg l;
  l.flow = static_cast<std::uint64_t>(num(v, "flow"));
  l.src = static_cast<int>(num(v, "src", -1.0));
  l.dst = static_cast<int>(num(v, "dst", -1.0));
  l.kind = static_cast<std::uint32_t>(num(v, "kind"));
  l.bytes = static_cast<std::uint64_t>(num(v, "bytes"));
  l.retransmits = static_cast<std::uint32_t>(num(v, "retransmits"));
  // Dumps from single-switch builds omit the field; one hop is exact there.
  l.hops = static_cast<std::uint32_t>(num(v, "hops", 1.0));
  if (l.hops == 0) l.hops = 1;
  if (!v.has("stamps") || !v.at("stamps").is_object()) {
    bad("leg has no stamps object");
  }
  const json::Value& st = v.at("stamps");
  l.t_trigger = stamp(st, "trigger");
  l.t_post = stamp(st, "post");
  l.t_ring = stamp(st, "ring");
  l.t_cmd = stamp(st, "cmd");
  l.t_pop = stamp(st, "pop");
  l.t_admit = stamp(st, "admit");
  l.t_wire_first = stamp(st, "wire_first");
  l.t_wire = stamp(st, "wire");
  l.t_switch = stamp(st, "switch");
  l.t_rx = stamp(st, "rx");
  l.t_deposit = stamp(st, "deposit");
  return l;
}

OpRecord parse_op(const json::Value& v) {
  if (!v.is_object() || !v.has("req")) bad("op without a req leg");
  OpRecord op;
  // op_tag is written as a string (64-bit values exceed double precision);
  // accept a plain number too for hand-written test fixtures.
  if (v.has("op_tag") && v.at("op_tag").kind == json::Value::Kind::kString) {
    op.op_tag = std::strtoull(v.at("op_tag").string.c_str(), nullptr, 10);
  } else {
    op.op_tag = static_cast<std::uint64_t>(num(v, "op_tag"));
  }
  op.tenant = static_cast<std::int32_t>(num(v, "tenant", -1.0));
  op.req = parse_leg(v.at("req"));
  if (v.has("resp")) op.resp = parse_leg(v.at("resp"));
  return op;
}

AnalyzedRun parse_run(const json::Value& v, std::string id) {
  if (!v.is_object() || !v.has("ops") || !v.at("ops").is_array()) {
    bad("run object has no ops array");
  }
  AnalyzedRun run;
  run.id = std::move(id);
  run.workload = str(v, "workload");
  run.mode = str(v, "mode");
  if (v.has("wire") && v.at("wire").is_object()) {
    const json::Value& w = v.at("wire");
    run.wire.bytes_per_sec = num(w, "bytes_per_sec");
    run.wire.link_latency_ps =
        static_cast<std::int64_t>(num(w, "link_latency_ps"));
    run.wire.switch_latency_ps =
        static_cast<std::int64_t>(num(w, "switch_latency_ps"));
    run.wire.mtu_bytes = static_cast<std::uint32_t>(num(w, "mtu_bytes"));
    run.wire.header_bytes = static_cast<std::uint32_t>(num(w, "header_bytes"));
    run.wire.per_packet_overhead =
        static_cast<std::uint32_t>(num(w, "per_packet_overhead"));
  }
  run.offered = static_cast<std::uint64_t>(num(v, "offered"));
  run.recorded = static_cast<std::uint64_t>(num(v, "recorded"));
  for (const json::Value& o : *v.at("ops").array) {
    run.ops.push_back(parse_op(o));
  }
  if (v.has("exemplars")) {
    const json::Value& ex = v.at("exemplars");
    if (!ex.is_object()) bad("exemplars is not an object");
    for (const auto& [tenant_str, arr] : *ex.object) {
      if (!arr.is_array()) bad("exemplar list is not an array");
      std::int32_t tenant =
          static_cast<std::int32_t>(std::strtol(tenant_str.c_str(), nullptr,
                                                10));
      for (const json::Value& o : *arr.array) {
        run.exemplars[tenant].push_back(parse_op(o));
      }
    }
  }
  return run;
}

// ---- table building -------------------------------------------------------

struct CategoryBuild {
  std::uint64_t count = 0;
  std::uint64_t total_ps = 0;
  sim::Histogram hist;  ///< nonzero contributions, ns
};

void build_paths(AnalyzedRun& run) {
  struct PathBuild {
    std::uint64_t ops = 0;
    sim::Histogram latency;
    std::map<std::string, CategoryBuild> cats;
  };
  std::map<std::string, PathBuild> builds;
  for (const OpRecord& op : run.ops) {
    PathBuild& b = builds[op_path(op)];
    ++b.ops;
    std::int64_t lat = op.latency();
    b.latency.add(lat > 0 ? static_cast<std::uint64_t>(lat) / 1000 : 0);
    for (const auto& [cat, ps] : blame_op(op, run.wire)) {
      if (ps <= 0) continue;
      CategoryBuild& c = b.cats[cat];
      ++c.count;
      c.total_ps += static_cast<std::uint64_t>(ps);
      c.hist.add(static_cast<std::uint64_t>(ps) / 1000);
    }
  }
  for (auto& [path, b] : builds) {
    PathTable t;
    t.path = path;
    t.ops = b.ops;
    t.latency = b.latency;
    std::uint64_t grand = 0;
    for (const auto& [cat, c] : b.cats) grand += c.total_ps;
    for (const auto& [cat, c] : b.cats) {
      CategoryRow row;
      row.category = cat;
      row.count = c.count;
      row.total_ps = c.total_ps;
      row.share_pct =
          grand > 0 ? 100.0 * static_cast<double>(c.total_ps) /
                          static_cast<double>(grand)
                    : 0.0;
      row.p50_ns = c.hist.quantile(0.50);
      row.p99_ns = c.hist.quantile(0.99);
      row.p999_ns = c.hist.quantile(0.999);
      row.max_ns = c.hist.max();
      t.rows.push_back(row);
    }
    std::sort(t.rows.begin(), t.rows.end(),
              [](const CategoryRow& a, const CategoryRow& b2) {
                if (a.total_ps != b2.total_ps) return a.total_ps > b2.total_ps;
                return a.category < b2.category;
              });
    run.paths.push_back(std::move(t));
  }
}

std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, f, v);
  return buf;
}

}  // namespace

std::int64_t ideal_wire_ps(const WireParams& w, std::uint64_t payload_bytes,
                           std::uint32_t hops) {
  auto ser = [&](std::uint64_t bytes) -> std::int64_t {
    if (bytes == 0 || w.bytes_per_sec <= 0.0) return 0;
    // Replicates sim::Bandwidth::serialize (same double math, same
    // rounding) so an uncongested leg's switch_queue comes out zero.
    return static_cast<std::int64_t>(
        static_cast<double>(bytes) / w.bytes_per_sec * 1e12 + 0.5);
  };
  std::int64_t h = hops > 0 ? static_cast<std::int64_t>(hops) : 1;
  std::uint64_t wire = w.header_bytes + payload_bytes;
  std::uint64_t mtu = w.mtu_bytes > 0 ? w.mtu_bytes : wire;
  if (mtu == 0) mtu = 1;
  std::uint64_t first_pkt = std::min(wire, mtu) + w.per_packet_overhead;
  std::uint64_t packets = (wire + mtu - 1) / mtu;
  std::uint64_t total_wire = wire + packets * w.per_packet_overhead;
  // Total serialization pipelines across hops; each of the h crossbars and
  // h + 1 links re-adds the lead packet's serialization and its fixed
  // latency (mirrors Fabric::ideal_latency's hop-aware overload).
  return ser(total_wire) + h * ser(first_pkt) +
         (h + 1) * w.link_latency_ps + h * w.switch_latency_ps;
}

std::map<std::string, std::int64_t> blame_op(const OpRecord& op,
                                             const WireParams& wire) {
  std::map<std::string, std::int64_t> out;
  blame_leg(op.req, wire, out);
  if (op.has_resp()) {
    // The gap between the request landing and the response being issued is
    // the server: CPU proxy scan + compute + post, or GPU poll + compute +
    // trigger store.
    out["server_proc"] += seg(op.req.t_deposit, op.resp.start());
    blame_leg(op.resp, wire, out);
  }
  return out;
}

std::string op_path(const OpRecord& op) {
  if (op.has_resp()) {
    if (op.req.kind == kKindGetReq) return "get";
    if (op.req.kind == kKindPut) return "put";
  }
  return "oneway";
}

std::uint64_t op_id(const OpRecord& op) {
  return op.op_tag != 0 ? op.op_tag : op.req.flow;
}

Analysis analyze_flight(const std::string& json_text, std::string source) {
  json::Value doc = json::parse(json_text);
  Analysis a;
  a.source = std::move(source);
  if (doc.is_array()) {
    // Merged --replicas dump: [{"id": ..., "flight": {...}}, ...].
    for (const json::Value& entry : *doc.array) {
      if (!entry.is_object() || !entry.has("flight")) {
        bad("merged entry without a flight object");
      }
      a.runs.push_back(parse_run(entry.at("flight"), str(entry, "id")));
    }
  } else if (doc.is_object()) {
    a.runs.push_back(parse_run(doc, ""));
  } else {
    bad("document is neither an object nor an array");
  }
  for (AnalyzedRun& run : a.runs) build_paths(run);
  return a;
}

std::string render_analysis(const Analysis& a, const AnalyzeOptions& opt) {
  std::string out;
  out += "flight analysis: " + a.source + "\n";
  for (const AnalyzedRun& run : a.runs) {
    out += "\n== run";
    if (!run.id.empty()) out += " " + run.id;
    out += ": " + (run.workload.empty() ? "?" : run.workload) + " / " +
           (run.mode.empty() ? "?" : run.mode) + "  (ops offered " +
           std::to_string(run.offered) + ", recorded " +
           std::to_string(run.recorded) + ")\n";
    for (const PathTable& t : run.paths) {
      out += "-- path " + t.path + ": " + std::to_string(t.ops) +
             " ops, latency ns p50=" + fmt("%.0f", t.latency.quantile(0.5)) +
             " p99=" + fmt("%.0f", t.latency.quantile(0.99)) +
             " p999=" + fmt("%.0f", t.latency.quantile(0.999)) +
             " max=" + fmt("%.0f", t.latency.max()) + "\n";
      out += "   category       count     total_us  share%       p50_ns"
             "       p99_ns      p999_ns       max_ns\n";
      int shown = 0;
      for (const CategoryRow& r : t.rows) {
        if (opt.top > 0 && shown++ >= opt.top) break;
        char line[256];
        std::snprintf(line, sizeof line,
                      "   %-13s %6llu %12.1f  %5.1f%% %12.0f %12.0f %12.0f"
                      " %12.0f\n",
                      r.category.c_str(),
                      static_cast<unsigned long long>(r.count),
                      static_cast<double>(r.total_ps) / 1e6, r.share_pct,
                      r.p50_ns, r.p99_ns, r.p999_ns, r.max_ns);
        out += line;
      }
    }
    bool any_ex = false;
    for (const auto& [tenant, ops] : run.exemplars) {
      for (const OpRecord& op : ops) {
        if (!any_ex) {
          out += "-- tail exemplars (use `gputn analyze FILE --exemplar ID "
                 "--trace OUT.json` to dump one)\n";
          any_ex = true;
        }
        // Heaviest category of this op, for at-a-glance blame.
        std::string top_cat = "-";
        std::int64_t top_ps = 0;
        for (const auto& [cat, ps] : blame_op(op, run.wire)) {
          if (ps > top_ps) {
            top_ps = ps;
            top_cat = cat;
          }
        }
        char line[256];
        std::snprintf(line, sizeof line,
                      "   tenant %3d  id=%llu  path=%s  latency_ns=%lld"
                      "  top=%s(%.0fns)  retx=%u\n",
                      tenant, static_cast<unsigned long long>(op_id(op)),
                      op_path(op).c_str(),
                      static_cast<long long>(op.latency() / 1000),
                      top_cat.c_str(), static_cast<double>(top_ps) / 1e3,
                      op.req.retransmits + op.resp.retransmits);
        out += line;
      }
    }
  }
  return out;
}

AnalyzeDiff diff_analyses(const Analysis& cur, const Analysis& base,
                          const AnalyzeOptions& opt) {
  AnalyzeDiff d;
  d.text += "blame diff: " + cur.source + " vs " + base.source + "\n";
  auto find_base_run = [&](const AnalyzedRun& c,
                           std::size_t pos) -> const AnalyzedRun* {
    if (!c.id.empty()) {
      for (const AnalyzedRun& b : base.runs) {
        if (b.id == c.id) return &b;
      }
      return nullptr;
    }
    return pos < base.runs.size() ? &base.runs[pos] : nullptr;
  };
  auto gate = [&](const std::string& label, double cur_v, double base_v) {
    double pct;
    if (base_v > 0.0) {
      pct = 100.0 * (cur_v - base_v) / base_v;
    } else {
      pct = cur_v > 0.0 ? 1e9 : 0.0;  // appeared from nothing
    }
    bool reg = pct > opt.threshold_pct;
    if (reg || cur_v != base_v) {
      char line[256];
      std::snprintf(line, sizeof line, "  %-44s %12.0f -> %12.0f  %+8.1f%%%s\n",
                    label.c_str(), base_v, cur_v,
                    base_v > 0.0 ? 100.0 * (cur_v - base_v) / base_v
                                 : (cur_v > 0.0 ? 999.9 : 0.0),
                    reg ? "  REGRESSION" : "");
      d.text += line;
    }
    if (reg) ++d.regressions;
  };
  for (std::size_t i = 0; i < cur.runs.size(); ++i) {
    const AnalyzedRun& c = cur.runs[i];
    const AnalyzedRun* b = find_base_run(c, i);
    std::string rid = c.id.empty() ? "run" : "run " + c.id;
    if (b == nullptr) {
      d.text += "  " + rid + ": no baseline counterpart (not gated)\n";
      continue;
    }
    for (const PathTable& ct : c.paths) {
      const PathTable* bt = nullptr;
      for (const PathTable& t : b->paths) {
        if (t.path == ct.path) bt = &t;
      }
      if (bt == nullptr) {
        d.text += "  " + rid + "/" + ct.path +
                  ": path absent in baseline (not gated)\n";
        continue;
      }
      std::string prefix = rid + "/" + ct.path;
      gate(prefix + ".latency.p999_ns", ct.latency.quantile(0.999),
           bt->latency.quantile(0.999));
      for (const CategoryRow& cr : ct.rows) {
        const CategoryRow* br = nullptr;
        for (const CategoryRow& r : bt->rows) {
          if (r.category == cr.category) br = &r;
        }
        if (br == nullptr) continue;  // category appeared: informational only
        gate(prefix + "." + cr.category + ".p99_ns", cr.p99_ns, br->p99_ns);
        gate(prefix + "." + cr.category + ".p999_ns", cr.p999_ns,
             br->p999_ns);
      }
    }
  }
  d.text += d.regressions == 0
                ? "OK: no blame metric regressed\n"
                : "FAIL: " + std::to_string(d.regressions) +
                      " blame metric(s) regressed past " +
                      fmt("%.1f", opt.threshold_pct) + "%\n";
  return d;
}

bool dump_exemplar_trace(const AnalyzedRun& run, std::uint64_t selector,
                         const std::string& path) {
  const OpRecord* found = nullptr;
  for (const auto& [tenant, ops] : run.exemplars) {
    for (const OpRecord& op : ops) {
      if (op_id(op) == selector) found = &op;
    }
  }
  if (found == nullptr) {
    for (const OpRecord& op : run.ops) {
      if (op_id(op) == selector) found = &op;
    }
  }
  if (found == nullptr) return false;

  sim::TraceRecorder tr;
  auto leg_spans = [&](const FlightLeg& l, const std::string& src_lane,
                       const std::string& dst_lane) {
    auto span = [&](const char* name, std::int64_t a, std::int64_t b,
                    const std::string& lane) {
      if (a >= 0 && b > a) tr.span(lane, name, "blame", a, b);
    };
    span("trigger_wait", l.t_trigger, l.t_cmd, src_lane);
    span("qp_batch", l.t_post, l.t_ring, src_lane);
    span("doorbell", l.t_ring, l.t_cmd, src_lane);
    span("cmd_queue", l.t_cmd, l.t_pop, src_lane);
    span("throttle", l.t_pop, l.t_admit, src_lane);
    std::int64_t first = l.t_wire_first >= 0 ? l.t_wire_first : l.t_wire;
    span("tx_proc", l.t_admit, first, src_lane);
    span("retransmit", first, l.t_wire, src_lane);
    if (l.t_wire >= 0 && l.t_rx > l.t_wire) {
      std::int64_t ideal =
          std::min(ideal_wire_ps(run.wire, l.bytes, l.hops),
                   l.t_rx - l.t_wire);
      tr.span("net", "wire", "blame", l.t_wire, l.t_wire + ideal,
              "{\"bytes\":" + std::to_string(l.bytes) + "}");
      if (l.t_wire + ideal < l.t_rx) {
        tr.span("net", "switch_queue", "blame", l.t_wire + ideal, l.t_rx);
      }
    }
    if (l.t_switch >= 0) tr.instant("net", "at-switch", "blame", l.t_switch);
    span("deposit", l.t_rx, l.t_deposit, dst_lane);
  };
  leg_spans(found->req, "initiator", found->has_resp() ? "server"
                                                       : "target");
  if (found->has_resp()) {
    if (found->req.t_deposit >= 0 &&
        found->resp.start() > found->req.t_deposit) {
      tr.span("server", "server_proc", "blame", found->req.t_deposit,
              found->resp.start(),
              "{\"op_tag\":" + std::to_string(found->op_tag) + "}");
    }
    leg_spans(found->resp, "server", "initiator");
  }
  return tr.write_json(path);
}

}  // namespace gputn::obs

// Per-op flight recorder: a bounded, deterministic record of individual
// operations' stage timestamps, for post-hoc critical-path blame analysis
// (obs/critical.hpp, `gputn analyze`).
//
// Histograms (lat.*) erase per-op causality and Chrome traces are forbidden
// under --replicas/sweeps; the flight recorder fills the gap. Every NIC a
// recorder is attached to (Cluster::attach_flight) offers it one FlightLeg
// per delivered message, carrying the stamps net::Message already collected
// on its way (post -> ring -> cmd queue -> pop -> token-bucket admit ->
// wire -> switch -> rx -> deposit). Legs sharing a nonzero op_tag — a serve
// put request and its response, a get request and its reply — are stitched
// into one round-trip OpRecord.
//
// Determinism contract (the drift suite pins this):
//   * Recording is pure bookkeeping: no simulator interaction, no delay, so
//     an attached recorder cannot perturb simulated time or any counter.
//   * Sampling is a pure function of (op key, seed): hash-keep 1-in-P. The
//     same run records the same ops regardless of tracing, host threads, or
//     --jobs value.
//   * Tail exemplars: the K slowest ops per tenant are always retained,
//     even when hash-sampled out of the ring, so the op behind a p999
//     spike is available by construction.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "sim/units.hpp"

namespace gputn::obs {

/// One direction of one logical op: a single delivered message's stamps,
/// all in simulator ticks (picoseconds), -1 for stages that did not occur.
struct FlightLeg {
  std::uint64_t flow = 0;
  int src = -1;
  int dst = -1;
  std::uint32_t kind = 0;  ///< NIC message kind (put/get-req/get-reply/...)
  std::uint64_t bytes = 0;
  std::uint32_t retransmits = 0;
  /// Switches the message crossed (>= 1); scales the ideal wire model so
  /// the wire-vs-switch_queue blame split stays exact on multi-hop routes.
  std::uint32_t hops = 1;
  std::int64_t t_trigger = -1;
  std::int64_t t_post = -1;
  std::int64_t t_ring = -1;
  std::int64_t t_cmd = -1;
  std::int64_t t_pop = -1;
  std::int64_t t_admit = -1;
  std::int64_t t_wire_first = -1;
  std::int64_t t_wire = -1;
  std::int64_t t_switch = -1;
  std::int64_t t_rx = -1;
  std::int64_t t_deposit = -1;

  /// Where this leg's latency clock starts: software post when the op went
  /// through a Qp, else the trigger store, else command-queue entry.
  std::int64_t start() const {
    if (t_post >= 0) return t_post;
    if (t_trigger >= 0) return t_trigger;
    return t_cmd;
  }
};

/// One recorded logical operation: a request leg and, when the op is a
/// round trip paired by op_tag, its response leg.
struct OpRecord {
  std::uint64_t op_tag = 0;  ///< 0 = unpaired single-leg op
  std::int32_t tenant = -1;
  FlightLeg req;
  FlightLeg resp;  ///< valid only when has_resp()
  bool has_resp() const { return resp.flow != 0; }

  std::int64_t end() const {
    return has_resp() ? resp.t_deposit : req.t_deposit;
  }
  /// End-to-end op latency (post/trigger to final deposit).
  std::int64_t latency() const { return end() - req.start(); }
};

struct FlightConfig {
  /// Bounded ring of sampled ops; the oldest is overwritten when full.
  std::size_t capacity = 4096;
  /// Keep one op in `sample_period` (hash of op key + seed); 1 = keep all.
  std::uint64_t sample_period = 1;
  std::uint64_t seed = 1;
  /// Slowest ops always retained per tenant, sampling notwithstanding.
  int exemplars_per_tenant = 4;
};

/// Wire parameters embedded in the dump so the analyzer can compute the
/// ideal (uncongested) wire latency of each leg and split measured wire
/// time into serialization vs switch queueing.
struct WireParams {
  double bytes_per_sec = 0.0;
  std::int64_t link_latency_ps = 0;
  std::int64_t switch_latency_ps = 0;
  std::uint32_t mtu_bytes = 0;
  std::uint32_t header_bytes = 0;
  std::uint32_t per_packet_overhead = 0;
};

/// Where a NIC offers delivered-message stamps. FlightRecorder implements
/// it directly; under sharded (parallel DES) runs each node instead records
/// into a per-node FlightSpool, replayed into the recorder after the run in
/// a canonical order so the dump is bit-identical at every shard count.
class FlightSink {
 public:
  virtual ~FlightSink() = default;
  virtual void record(const FlightLeg& leg, std::uint64_t op_tag,
                      std::int32_t tenant) = 0;
};

/// Per-node staging buffer for flight legs. Recording stamps the node's
/// simulated time, so a post-run replay can re-create one global order —
/// (t_record, node, arrival seq) — that is a pure function of each node's
/// (deterministic) event sequence, independent of how nodes are interleaved
/// across shards or threads. Pure bookkeeping, like the recorder itself.
class FlightSpool : public FlightSink {
 public:
  explicit FlightSpool(const sim::Tick* now, int node)
      : now_(now), node_(node) {}

  struct Entry {
    sim::Tick t_record = 0;
    int node = -1;
    std::uint64_t seq = 0;  ///< arrival index within this spool
    FlightLeg leg;
    std::uint64_t op_tag = 0;
    std::int32_t tenant = -1;
  };

  void record(const FlightLeg& leg, std::uint64_t op_tag,
              std::int32_t tenant) override {
    entries_.push_back(Entry{*now_, node_, entries_.size(), leg, op_tag,
                             tenant});
  }

  std::vector<Entry>& entries() { return entries_; }

 private:
  const sim::Tick* now_;
  int node_;
  std::vector<Entry> entries_;
};

/// Drain several spools into `sink` in the canonical replay order; clears
/// the spools so a second flush is a no-op.
void replay_spools(std::vector<FlightSpool*> spools, FlightSink& sink);

class FlightRecorder : public FlightSink {
 public:
  explicit FlightRecorder(FlightConfig cfg = {});
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The deterministic keep decision: pure function of (key, seed, period).
  static bool sampled(std::uint64_t key, std::uint64_t seed,
                      std::uint64_t period);

  /// Offer one delivered message's stamps. op_tag == 0 records a single-leg
  /// op immediately; a nonzero tag parks the first leg until its partner
  /// arrives (unmatched legs are flushed as single-leg ops at export).
  void record(const FlightLeg& leg, std::uint64_t op_tag,
              std::int32_t tenant) override;

  void set_wire(const WireParams& wire) { wire_ = wire; }
  /// Run labels written into the dump header (workload name, strategy).
  void set_run_info(std::string label, std::string mode) {
    label_ = std::move(label);
    mode_ = std::move(mode);
  }

  std::uint64_t offered() const { return offered_; }
  std::uint64_t recorded() const { return ring_.size(); }
  std::uint64_t evicted() const { return evicted_; }
  const FlightConfig& config() const { return cfg_; }

  /// Exemplars for one tenant, slowest first (deterministic order).
  std::vector<OpRecord> exemplars(std::int32_t tenant) const;

  /// Deterministic JSON dump: header (labels, wire params, sampling
  /// config), the sampled-op ring in completion order, and the per-tenant
  /// tail exemplars. Flushes still-unpaired legs first (idempotent), so a
  /// dump taken after the run is complete.
  std::string json();

 private:
  struct Pending {
    FlightLeg leg;
    std::int32_t tenant;
    std::uint64_t order;  ///< arrival index, for deterministic flushing
  };

  void finish_op(OpRecord&& op);
  void flush_pending();

  FlightConfig cfg_;
  WireParams wire_;
  std::string label_;
  std::string mode_;
  std::map<std::uint64_t, Pending> pending_;  ///< first legs by op_tag
  std::deque<OpRecord> ring_;                 ///< sampled ops, oldest first
  /// Slowest-K ops per tenant, kept sorted slowest first.
  std::map<std::int32_t, std::vector<OpRecord>> exemplars_;
  std::uint64_t offered_ = 0;   ///< completed ops seen (pre-sampling)
  std::uint64_t evicted_ = 0;   ///< ring overwrites
  std::uint64_t arrivals_ = 0;  ///< legs seen (pending-order source)
};

/// Serialize several runs' dumps as one JSON array in the given (plan)
/// order: [{"id": ..., "flight": {...}}, ...]. Used by `--flight` with
/// --replicas; bit-identical across --jobs values because the recorders
/// are per-point and the order is the plan's.
std::string merged_flight_json(
    std::vector<std::pair<std::string, FlightRecorder*>> points);

}  // namespace gputn::obs

// Causal what-if profiler: counterfactual hardware sensitivity analysis
// (`gputn whatif`).
//
// The observability stack so far *describes* where time went — PR 5's
// util.* busy ledgers, PR 7's blame taxonomy — but busy != bottleneck and
// blame shares don't compose under queueing. A deterministic simulator
// makes Coz-style causal profiling exact: re-run the identical workload
// under virtually-scaled hardware and measure the real end-to-end delta.
//
// Model: a registry of named hardware knobs (link bandwidth/latency,
// switch latency/credits, NIC command rate, DMA bandwidth, host post cost,
// trigger-table latency, doorbell latency/batch, GPU CU count), each
// mapping a *speed* factor s onto cluster::SystemConfig / NicConfig /
// FabricConfig (s > 1 = faster hardware, s = inf = the resource is free).
// The profiler runs, per strategy,
//
//   * a baseline with a private flight recorder (blame source),
//   * a knob x {0.5x, 2x, inf} counterfactual matrix,
//   * a virtual-speedup curve for the top-ranked knob,
//
// through exp::Plan / exp::Runner — parallel and bit-identical at any
// --jobs value — and ranks knobs by measured end-to-end improvement.
//
// The headline analysis is the cross-check: for every knob the measured
// improvement at 2x speed is compared against two predictions derived from
// the baseline run alone —
//
//   * blame model (PR 7): the knob's attributed critical-path picoseconds
//     (its blame categories plus its slice of the ideal wire model),
//     scaled by (1 - 1/s);
//   * busy fractions (PR 5): the busiest matching util.* resource's
//     effective busy time, scaled the same way;
//
// and divergences are flagged: "queueing" when the measured win beats the
// linear blame prediction (contention nonlinearity), "overlapped" when
// blamed time turns out to be off the critical path (hidden parallelism),
// "unattributed" when the blame model is blind to the knob entirely (e.g.
// host posting cost between ops). On an idle star fabric the wire knobs'
// measured deltas match the blame prediction *exactly* (integer
// picoseconds) — tests/obs/whatif_test.cpp pins that.
//
// All derived artifacts (render, JSON, diff) are deterministic; the JSON
// report supports a --baseline diff gate like `gputn report`.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "cluster/config.hpp"
#include "workloads/options.hpp"
#include "workloads/registry.hpp"
#include "workloads/strategy.hpp"

namespace gputn::obs {

/// Sentinel speed factor: the resource becomes free / unlimited.
inline constexpr double kInfiniteSpeed =
    std::numeric_limits<double>::infinity();

/// Which slice of the ideal wire model (critical.cpp's ideal_wire_ps) a
/// knob scales; used to split per-leg wire blame between the wire knobs.
enum class WirePart { kNone, kSerialization, kLinkLatency, kSwitchLatency };

/// One named hardware knob.
struct Knob {
  std::string name;
  std::string kind;  ///< "cost" (latency-like) or "capacity" (rate-like)
  std::string description;
  /// Scale the resource's speed by `s` on a config copy; may also rewrite
  /// workload parameters (doorbell batch). Returns false when this scale
  /// has no effect (credits already unlimited) or is unsafe (gpu_cus
  /// downscale can livelock persistent kernels) — that scale-point is
  /// skipped; the knob is inert only when every scale is skipped.
  std::function<bool(cluster::SystemConfig&, workloads::WorkloadParams&,
                     double s)>
      apply;
  /// Blame categories (critical.hpp taxonomy) attributed to this knob.
  std::vector<std::string> blame_categories;
  WirePart wire_part = WirePart::kNone;
  /// util.* resource-name substring whose busy fraction predicts this knob
  /// ("" = no busy-ledger counterpart, e.g. pure latencies).
  std::string busy_pattern;
  /// Restrict to these workloads ("" = all): knobs that rewrite a
  /// workload-specific parameter are inert elsewhere.
  std::vector<std::string> only_workloads;
};

/// The built-in knob registry, fixed order (= report order).
const std::vector<Knob>& knob_registry();

struct WhatifOptions {
  std::vector<workloads::Strategy> strategies = {
      workloads::Strategy::kCpu, workloads::Strategy::kGpuTn};
  /// Speed factors for the counterfactual matrix (kInfiniteSpeed = free).
  std::vector<double> scales = {0.5, 2.0, kInfiniteSpeed};
  /// Knob names to profile; empty = the full registry.
  std::vector<std::string> knobs;
  /// Divergence tolerance for the measured-vs-predicted cross-check, as a
  /// percentage of the baseline total time.
  double tolerance_pct = 2.0;
  /// Baseline-diff gate threshold (like `gputn report`).
  double threshold_pct = 5.0;
  /// Knobs rendered per strategy (0 = all). The JSON always carries all.
  int top = 0;
  /// Run the virtual-speedup curve for each strategy's top knob.
  bool curve = true;
  /// Worker threads for the counterfactual matrix (exp::Runner semantics;
  /// 0 = hardware concurrency). Output is bit-identical for every value.
  int jobs = 1;
};

/// One counterfactual run.
struct WhatifPoint {
  double scale = 1.0;  ///< speed factor (kInfiniteSpeed = free)
  bool ok = false;
  std::string error;  ///< set when the run failed (watchdog, livelock, ...)
  std::int64_t total_ps = 0;
};

/// One knob's sensitivity under one strategy.
struct KnobResult {
  std::string name;
  std::string kind;
  bool inert = false;
  std::vector<WhatifPoint> points;  ///< matrix points, opt.scales order
  /// Measured end-to-end improvement (baseline - counterfactual, ps).
  std::int64_t improve2x_ps = 0;  ///< at speed 2x (0 when absent/failed)
  std::int64_t ideal_ps = 0;      ///< at speed inf (0 when absent/failed)
  std::int64_t best_improve_ps = 0;  ///< max over all speeds > 1
  /// Swing of the matrix: (t(slowest) - t(fastest)) / baseline, percent.
  double swing_pct = 0.0;
  /// Predictions at baseline (attributed picoseconds; scale by 1 - 1/s).
  std::int64_t predicted_blame_ps = 0;
  std::int64_t predicted_busy_ps = 0;
  /// Cross-check at the mildest accelerating scale (2x when present):
  /// measured vs blame-predicted improvement and the verdict —
  /// match | queueing | overlapped | unattributed | inert | n/a.
  std::int64_t measured_ps = 0;
  std::int64_t predicted_ps = 0;
  std::string verdict = "n/a";
};

/// One strategy's full sensitivity analysis.
struct StrategyReport {
  std::string strategy;
  bool baseline_ok = false;
  std::string baseline_error;
  std::int64_t baseline_ps = 0;
  std::uint64_t ops_offered = 0;
  std::uint64_t ops_recorded = 0;
  std::vector<KnobResult> knobs;     ///< registry order
  std::vector<std::string> ranking;  ///< knob names, biggest causal win first
  int divergences = 0;  ///< knobs whose verdict is not match/inert/n-a
  std::string curve_knob;          ///< top knob the curve ran on ("" = none)
  std::vector<WhatifPoint> curve;  ///< extra speeds {1.25, 1.5, 4, 8}
};

struct WhatifReport {
  std::string workload;
  double tolerance_pct = 2.0;
  std::vector<StrategyReport> strategies;
};

/// Run the full profile. Throws std::invalid_argument on unknown knob or
/// workload names or a "strategy" workload parameter (the profiler drives
/// strategies itself) — all before any simulation starts; individual
/// counterfactual runs that fail are isolated per point (ok = false), like
/// exp::Runner. `base_opts`'s fabric overrides (topology/routing/credits)
/// are folded into `sys` once, before knobs apply, so a --credits override
/// composes with the switch_credits knob instead of clobbering it.
WhatifReport run_whatif(const workloads::Registry& reg,
                        const std::string& workload,
                        const workloads::WorkloadParams& params,
                        const workloads::RunOptions& base_opts,
                        const cluster::SystemConfig& sys,
                        const WhatifOptions& opt);

/// Human-readable tables (per-strategy ranking + cross-check verdicts).
std::string render_whatif(const WhatifReport& rep, const WhatifOptions& opt);

/// Deterministic JSON: bit-identical across --jobs values and repeat runs.
std::string whatif_json(const WhatifReport& rep);

/// Parse a whatif JSON report (for --baseline). Unknown keys are ignored;
/// malformed input throws std::runtime_error.
WhatifReport parse_whatif(const std::string& json_text,
                          const std::string& source);

struct WhatifDiff {
  std::string text;
  /// Gated regressions: top-knob identity changes, baseline/improvement
  /// shifts past the threshold. A self-diff is always 0.
  int regressions = 0;
};

/// Diff `cur` against `base`: strategies matched by name, knobs by name.
WhatifDiff diff_whatif(const WhatifReport& cur, const WhatifReport& base,
                       double threshold_pct);

}  // namespace gputn::obs

#include "obs/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "sim/json.hpp"

namespace gputn::obs {

namespace json = ::gputn::sim::json;

namespace {

std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), f, v);
  return buf;
}

std::string fmt_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

bool starts_with(const std::string& s, const char* p) {
  return s.rfind(p, 0) == 0;
}

/// Strip a known util.* metric suffix; returns the resource name or ""
/// when `key` (already without the "util." prefix) ends in none of them.
std::string split_metric(const std::string& key, std::string& metric) {
  static const char* suffixes[] = {".busy_ps", ".capacity", ".ops",
                                   ".bytes",   ".q.max",    ".q.time_ps"};
  for (const char* s : suffixes) {
    std::string suf = s;
    if (key.size() > suf.size() &&
        key.compare(key.size() - suf.size(), suf.size(), suf) == 0) {
      metric = suf.substr(1);  // drop the leading '.'
      return key.substr(0, key.size() - suf.size());
    }
  }
  metric.clear();
  return "";
}

/// Flatten the numeric leaves of a stats object into dotted keys
/// ("counters.net.bytes", "histograms.lat.wire.p99"). Histogram bucket
/// arrays are skipped: bucket-level diffs are noise, the derived quantiles
/// already cover them.
void flatten(const json::Value& v, const std::string& prefix,
             std::map<std::string, double>& out) {
  if (v.is_number()) {
    out[prefix] = v.number;
    return;
  }
  if (v.is_object()) {
    for (const auto& [k, child] : *v.object) {
      flatten(child, prefix.empty() ? k : prefix + "." + k, out);
    }
  }
  // Arrays (buckets, rows) and non-numeric scalars are not diffable.
}

double num_or(const json::Value& obj, const char* key, double dflt) {
  if (!obj.has(key)) return dflt;
  const json::Value& v = obj.at(key);
  return v.is_number() ? v.number : dflt;
}

/// Build one PointReport from a stats object ({"counters": ..., ...}).
PointReport point_from_stats(const json::Value& stats) {
  if (!stats.is_object() || !stats.has("counters")) {
    throw std::runtime_error(
        "not a stats object (no \"counters\" section)");
  }
  PointReport pt;
  flatten(stats, "", pt.metrics);

  std::map<std::string, ResourceRow> rows;
  std::map<int, ServeRow> serve_rows;
  if (stats.at("counters").is_object()) {
    for (const auto& [name, v] : *stats.at("counters").object) {
      if (!v.is_number()) continue;
      if (starts_with(name, "serve.")) {
        std::string key = name.substr(6);
        if (key == "window_ps") {
          pt.serve_window_ps = static_cast<std::uint64_t>(v.number);
        } else if (key.size() > 1 && key[0] == 't') {
          // serve.t<i>.{ops,slo_ok,bytes}
          char* end = nullptr;
          long tenant = std::strtol(key.c_str() + 1, &end, 10);
          if (end != nullptr && *end == '.' && tenant >= 0) {
            std::string metric = end + 1;
            ServeRow& row = serve_rows[static_cast<int>(tenant)];
            row.tenant = static_cast<int>(tenant);
            auto u = static_cast<std::uint64_t>(v.number);
            if (metric == "ops") row.ops = u;
            else if (metric == "slo_ok") row.slo_ok = u;
            else if (metric == "bytes") row.bytes = u;
          }
        }
        continue;
      }
      if (!starts_with(name, "util.")) continue;
      std::string key = name.substr(5);
      if (key == "window_ps") {
        pt.window_ps = static_cast<std::uint64_t>(v.number);
        continue;
      }
      std::string metric;
      std::string res = split_metric(key, metric);
      if (res.empty()) continue;
      ResourceRow& row = rows[res];
      row.name = res;
      auto u = static_cast<std::uint64_t>(v.number);
      if (metric == "busy_ps") row.busy_ps = u;
      else if (metric == "capacity") row.capacity = u;
      else if (metric == "ops") row.ops = u;
      else if (metric == "bytes") row.bytes = u;
      else if (metric == "q.max") { row.q_max = u; row.has_queue = true; }
      else if (metric == "q.time_ps") { row.q_time_ps = u; row.has_queue = true; }
    }
  }
  if (stats.has("histograms") && stats.at("histograms").is_object()) {
    for (const auto& [name, h] : *stats.at("histograms").object) {
      if (!h.is_object()) continue;
      if (starts_with(name, "util.") && name.size() >= 13 &&
          name.compare(name.size() - 7, 7, ".qdepth") == 0) {
        std::string res = name.substr(5, name.size() - 5 - 7);
        auto it = rows.find(res);
        if (it != rows.end()) {
          it->second.q_p99 = num_or(h, "p99", 0.0);
          it->second.has_queue = true;
        }
      } else if (starts_with(name, "lat.")) {
        LatencyRow lr;
        lr.stage = name.substr(4);
        lr.count = static_cast<std::uint64_t>(num_or(h, "count", 0.0));
        lr.mean_ns = num_or(h, "mean", 0.0);
        lr.p50_ns = num_or(h, "p50", 0.0);
        lr.p90_ns = num_or(h, "p90", 0.0);
        lr.p99_ns = num_or(h, "p99", 0.0);
        lr.p999_ns = num_or(h, "p999", 0.0);
        lr.max_ns = num_or(h, "max", 0.0);
        pt.latency.push_back(std::move(lr));
      }
    }
  }

  pt.resources.reserve(rows.size());
  for (auto& [name, row] : rows) pt.resources.push_back(std::move(row));
  // Rank by busy fraction (busy_ps normalized by capacity — the shared
  // window cancels), busiest first; name-sorted within ties so the table
  // is deterministic.
  std::stable_sort(pt.resources.begin(), pt.resources.end(),
                   [](const ResourceRow& a, const ResourceRow& b) {
                     double fa = static_cast<double>(a.busy_ps) /
                                 static_cast<double>(a.capacity ? a.capacity : 1);
                     double fb = static_cast<double>(b.busy_ps) /
                                 static_cast<double>(b.capacity ? b.capacity : 1);
                     if (fa != fb) return fa > fb;
                     return a.name < b.name;
                   });

  // Finalize the serving rows: derived SLO-hit / goodput values, tenant
  // tail from the lat.serve.t<i> histogram's flattened p999. The goodput
  // also becomes a diffable (higher-is-better gated) metric.
  for (auto& [tenant, row] : serve_rows) {
    row.slo_pct = row.ops > 0 ? 100.0 * static_cast<double>(row.slo_ok) /
                                    static_cast<double>(row.ops)
                              : 0.0;
    row.goodput_rps =
        pt.serve_window_ps > 0
            ? static_cast<double>(row.slo_ok) /
                  (static_cast<double>(pt.serve_window_ps) / 1e12)
            : 0.0;
    auto it = pt.metrics.find("histograms.lat.serve.t" +
                              std::to_string(tenant) + ".p999");
    if (it != pt.metrics.end()) row.p999_ns = it->second;
    pt.metrics["serve.t" + std::to_string(tenant) + ".goodput_rps"] =
        row.goodput_rps;
    pt.serve.push_back(row);
  }
  return pt;
}

}  // namespace

Report parse_report(const std::string& json_text, std::string source) {
  Report rep;
  rep.source = std::move(source);
  json::Value doc = json::parse(json_text);
  if (doc.is_object()) {
    rep.points.push_back(point_from_stats(doc));
    return rep;
  }
  if (doc.is_array()) {
    for (const json::Value& entry : *doc.array) {
      if (!entry.is_object() || !entry.has("id")) {
        throw std::runtime_error(
            "not a sweep results array (points need \"id\")");
      }
      if (entry.has("ok") && entry.at("ok").kind == json::Value::Kind::kBool &&
          !entry.at("ok").boolean) {
        PointReport pt;
        pt.id = entry.at("id").string;
        pt.ok = false;
        pt.error = entry.has("error") ? entry.at("error").string : "failed";
        rep.points.push_back(std::move(pt));
        continue;
      }
      if (!entry.has("stats")) {
        throw std::runtime_error("sweep point '" + entry.at("id").string +
                                 "' has no \"stats\" object");
      }
      PointReport pt = point_from_stats(entry.at("stats"));
      pt.id = entry.at("id").string;
      pt.total_time_ps =
          static_cast<std::int64_t>(num_or(entry, "total_time_ps", -1.0));
      if (pt.total_time_ps >= 0) {
        pt.metrics["total_time_ps"] = static_cast<double>(pt.total_time_ps);
      }
      rep.points.push_back(std::move(pt));
    }
    return rep;
  }
  throw std::runtime_error("expected a stats object or sweep results array");
}

std::string render_report(const Report& rep, const ReportOptions& opt) {
  std::string out;
  for (const PointReport& pt : rep.points) {
    std::string title = pt.id.empty() ? rep.source : pt.id;
    if (!pt.ok) {
      out += "== " + title + " == FAILED: " + pt.error + "\n";
      continue;
    }
    out += "== " + title + " (window " +
           fmt("%.3f", static_cast<double>(pt.window_ps) / 1e9) + " ms)";
    if (pt.total_time_ps >= 0) {
      out += ", total " +
             fmt("%.3f", static_cast<double>(pt.total_time_ps) / 1e9) + " ms";
    }
    out += " ==\n";
    out += "  resource                busy%        ops       q.max  "
           "q.mean   q.p99\n";
    int shown = 0;
    for (const ResourceRow& r : pt.resources) {
      if (opt.top > 0 && shown >= opt.top) break;
      ++shown;
      out += "  " + r.name + std::string(r.name.size() < 22
                                             ? 22 - r.name.size()
                                             : 1, ' ');
      out += fmt("%7.1f", r.busy_pct(pt.window_ps));
      out += fmt("%11.0f", static_cast<double>(r.ops));
      if (r.has_queue) {
        out += fmt("%12.0f", static_cast<double>(r.q_max));
        out += fmt("%8.2f", r.q_mean(pt.window_ps));
        out += fmt("%8.1f", r.q_p99);
      } else {
        out += "           -       -       -";
      }
      if (r.busy_pct(pt.window_ps) > opt.saturation_pct) out += "  SATURATED";
      out += "\n";
    }
    if (pt.resources.empty()) {
      out += "  (no util.* counters — stats predate the utilization "
             "ledger)\n";
    }
    if (opt.top > 0 &&
        static_cast<int>(pt.resources.size()) > opt.top) {
      out += "  ... " +
             fmt_u64(pt.resources.size() - static_cast<std::size_t>(opt.top)) +
             " more resources (--top)\n";
    }
    if (!pt.latency.empty()) {
      out += "  latency stages (us)       count      mean       p50       "
             "p90       p99      p999       max\n";
      for (const LatencyRow& l : pt.latency) {
        out += "  " + l.stage +
               std::string(l.stage.size() < 24 ? 24 - l.stage.size() : 1, ' ');
        out += fmt("%9.0f", static_cast<double>(l.count));
        out += fmt("%10.3f", l.mean_ns / 1000.0);
        out += fmt("%10.3f", l.p50_ns / 1000.0);
        out += fmt("%10.3f", l.p90_ns / 1000.0);
        out += fmt("%10.3f", l.p99_ns / 1000.0);
        out += fmt("%10.3f", l.p999_ns / 1000.0);
        out += fmt("%10.3f", l.max_ns / 1000.0);
        out += "\n";
      }
    }
    if (!pt.serve.empty()) {
      out += "  serving tenants (window " +
             fmt("%.3f", static_cast<double>(pt.serve_window_ps) / 1e9) +
             " ms)\n";
      out += "  tenant          ops     slo_ok    slo%   goodput/s   "
             "p999_us\n";
      for (const ServeRow& s : pt.serve) {
        char line[160];
        std::snprintf(line, sizeof(line),
                      "  t%-6d %10llu %10llu  %5.1f%% %11.0f %9.1f\n",
                      s.tenant, static_cast<unsigned long long>(s.ops),
                      static_cast<unsigned long long>(s.slo_ok), s.slo_pct,
                      s.goodput_rps, s.p999_ns / 1000.0);
        out += line;
      }
    }
  }
  return out;
}

namespace {

/// Gated metrics: the ones a perf regression must not move past the
/// threshold — end-to-end time and the latency-stage quantiles/means.
bool is_gated(const std::string& key) {
  if (key == "total_time_ps") return true;
  if (!starts_with(key, "histograms.lat.")) return false;
  for (const char* s : {".mean", ".p50", ".p90", ".p99", ".p999"}) {
    std::string suf = s;
    if (key.size() > suf.size() &&
        key.compare(key.size() - suf.size(), suf.size(), suf) == 0) {
      return true;
    }
  }
  return false;
}

/// Gated in the opposite direction: these must not *drop* past the
/// threshold (serving goodput under an SLO).
bool is_gated_higher(const std::string& key) {
  static const char* suf = ".goodput_rps";
  std::string s = suf;
  return starts_with(key, "serve.t") && key.size() > s.size() &&
         key.compare(key.size() - s.size(), s.size(), s) == 0;
}

}  // namespace

Diff diff_reports(const Report& cur, const Report& base,
                  const ReportOptions& opt) {
  Diff d;
  // Match points by id, falling back to position for id-less (single
  // stats file) reports.
  for (std::size_t i = 0; i < cur.points.size(); ++i) {
    const PointReport& c = cur.points[i];
    const PointReport* b = nullptr;
    if (c.id.empty()) {
      if (i < base.points.size()) b = &base.points[i];
    } else {
      for (const PointReport& cand : base.points) {
        if (cand.id == c.id) {
          b = &cand;
          break;
        }
      }
    }
    std::string title = c.id.empty() ? cur.source : c.id;
    if (b == nullptr) {
      d.text += "== " + title + " == not in baseline, skipped\n";
      continue;
    }
    d.text += "== " + title + " vs baseline ==\n";
    int changed = 0;
    for (const auto& [key, cv] : c.metrics) {
      auto it = b->metrics.find(key);
      if (it == b->metrics.end()) continue;
      double bv = it->second;
      if (cv == bv) continue;
      ++changed;
      double pct = bv != 0.0 ? 100.0 * (cv - bv) / bv : 0.0;
      bool gated = is_gated(key);
      bool regressed = gated && bv > 0.0 && pct > opt.threshold_pct;
      if (is_gated_higher(key) && bv > 0.0 && pct < -opt.threshold_pct) {
        regressed = true;
      }
      if (regressed) ++d.regressions;
      d.text += "  " + key +
                std::string(key.size() < 40 ? 40 - key.size() : 1, ' ') +
                fmt("%14.3f", bv) + " ->" + fmt("%14.3f", cv) +
                fmt(" %+9.2f%%", pct);
      if (regressed) {
        d.text += "  REGRESSION (>" + fmt("%.1f", opt.threshold_pct) + "%)";
      }
      d.text += "\n";
    }
    // One-sided lat.* metrics are printed explicitly instead of being
    // silently folded into the summary count: a latency stage that exists
    // on only one side of a diff is exactly the kind of apples-to-oranges
    // comparison that must fail loudly. A *gated* lat.* metric the
    // candidate lost counts as a regression; metrics that are new in the
    // candidate (e.g. a newly exported quantile) do not.
    int only_cur = 0, only_base = 0;
    for (const auto& [key, cv] : c.metrics) {
      if (b->metrics.find(key) != b->metrics.end()) continue;
      if (starts_with(key, "histograms.lat.")) {
        d.text += "  " + key +
                  std::string(key.size() < 40 ? 40 - key.size() : 1, ' ') +
                  "(metric absent) ->" + fmt("%14.3f", cv) + "\n";
      } else {
        ++only_cur;
      }
    }
    for (const auto& [key, bv] : b->metrics) {
      if (c.metrics.find(key) != c.metrics.end()) continue;
      if (starts_with(key, "histograms.lat.")) {
        d.text += "  " + key +
                  std::string(key.size() < 40 ? 40 - key.size() : 1, ' ') +
                  fmt("%14.3f", bv) + " -> (metric absent)";
        if (is_gated(key)) {
          ++d.regressions;
          d.text += "  REGRESSION (lost metric)";
        }
        d.text += "\n";
      } else {
        ++only_base;
      }
    }
    if (changed == 0) d.text += "  no metric deltas\n";
    if (only_cur > 0 || only_base > 0) {
      d.text += "  " + fmt_u64(static_cast<std::uint64_t>(only_cur)) +
                " metrics only in current, " +
                fmt_u64(static_cast<std::uint64_t>(only_base)) +
                " only in baseline\n";
    }
  }
  d.text += d.regressions == 0
                ? "OK: no gated metric regressed\n"
                : "FAIL: " + fmt_u64(static_cast<std::uint64_t>(d.regressions)) +
                      " gated metric(s) regressed past " +
                      fmt("%.1f", opt.threshold_pct) + "%\n";
  return d;
}

}  // namespace gputn::obs

// Critical-path blame attribution over flight-recorder dumps
// (`gputn analyze`).
//
// Reads the JSON obs::FlightRecorder writes — a single run's dump, or the
// merged [{"id", "flight"}] array a --replicas run produces — reconstructs
// each recorded op's stage chain, and attributes every picosecond of its
// latency to exactly one blame category:
//
//   trigger_wait  GPU trigger store -> command visible to the NIC
//   qp_batch      posted to a software queue -> its batch doorbell rung
//   doorbell      doorbell ring -> command visible to the NIC
//   cmd_queue     in the NIC command FIFO (TX engine backlog)
//   throttle      token-bucket admission stall (rate limiting)
//   tx_proc       command fetch + TX DMA until first wire hand-off
//   retransmit    first wire hand-off -> the accepted copy's hand-off
//   wire          ideal (uncongested) serialization + propagation
//   switch_queue  measured wire time beyond ideal (fabric congestion)
//   deposit       last packet received -> payload deposited (RX DMA)
//   server_proc   request deposited -> response issued (round trips only)
//
// The stage chain is contiguous, so the categories sum exactly to the op's
// end-to-end latency (stamps that did not occur contribute zero). `wire` is
// recomputed from the wire parameters embedded in the dump, replicating
// net::Fabric::ideal_latency; the remainder of measured wire time is
// switch_queue. Ops are grouped by path — "put" (a paired request/response
// put round trip), "get" (get request/reply), "oneway" (everything else) —
// which is what separates the CPU proxy's put-path blame (server_proc /
// cmd_queue heavy) from GPU-TN's.
//
// All functions are pure (string -> struct -> string) and deterministic, so
// analyzer output over the same dump is byte-identical regardless of how
// many worker threads produced the dump.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/flight.hpp"
#include "sim/stats.hpp"

namespace gputn::obs {

struct AnalyzeOptions {
  /// Diff: allowed relative growth on gated metrics (category p99/p999 and
  /// path-latency p999) before the diff counts a regression.
  double threshold_pct = 10.0;
  /// Show only the N heaviest categories per path (0 = all).
  int top = 0;
};

/// One blame category's aggregate over one path's ops.
struct CategoryRow {
  std::string category;
  std::uint64_t count = 0;     ///< ops with a nonzero contribution
  std::uint64_t total_ps = 0;  ///< summed over all of the path's ops
  /// Of the path's total blamed time.
  double share_pct = 0.0;
  /// Quantiles (ns) over the nonzero contributions.
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double p999_ns = 0.0;
  double max_ns = 0.0;
};

/// One path's ("put" / "get" / "oneway") blame table.
struct PathTable {
  std::string path;
  std::uint64_t ops = 0;
  sim::Histogram latency;  ///< op end-to-end latency, ns
  std::vector<CategoryRow> rows;  ///< ranked by total_ps desc, name tiebreak
};

/// A per-op blame breakdown (category -> picoseconds); used by tests and
/// the exemplar trace dump.
std::map<std::string, std::int64_t> blame_op(const OpRecord& op,
                                             const WireParams& wire);

/// The ideal (uncongested) wire latency of a `payload_bytes` message
/// crossing `hops` switches under `wire` — a replica of
/// net::Fabric::ideal_latency so the analyzer can split measured wire time
/// without access to the simulator. `hops` == 1 is the star fabric.
std::int64_t ideal_wire_ps(const WireParams& wire,
                           std::uint64_t payload_bytes,
                           std::uint32_t hops = 1);

/// One run's (one dump's) analysis.
struct AnalyzedRun {
  std::string id;  ///< sweep point id; empty for a single-run dump
  std::string workload;
  std::string mode;
  WireParams wire;
  std::uint64_t offered = 0;
  std::uint64_t recorded = 0;
  std::vector<OpRecord> ops;  ///< the sampled ring, completion order
  std::map<std::int32_t, std::vector<OpRecord>> exemplars;
  std::vector<PathTable> paths;  ///< name-sorted
};

struct Analysis {
  std::string source;
  std::vector<AnalyzedRun> runs;
};

/// Path an op belongs to: "put", "get", or "oneway".
std::string op_path(const OpRecord& op);

/// The selector an op is addressed by (--exemplar): its op_tag when paired,
/// else its request flow id.
std::uint64_t op_id(const OpRecord& op);

/// Parse a flight dump (single object or merged array) and compute every
/// blame table. Throws std::runtime_error on malformed input.
Analysis analyze_flight(const std::string& json_text, std::string source);

/// Render the per-run, per-path blame tables plus the tail-exemplar list.
std::string render_analysis(const Analysis& a, const AnalyzeOptions& opt);

struct AnalyzeDiff {
  std::string text;
  /// Gated metrics that regressed past the threshold; the CLI exits
  /// nonzero when > 0. A self-diff is always 0.
  int regressions = 0;
};

/// Category-by-category diff of `cur` against `base`: runs matched by id
/// (position when ids are empty), paths and categories by name; only
/// metrics present on both sides are gated.
AnalyzeDiff diff_analyses(const Analysis& cur, const Analysis& base,
                          const AnalyzeOptions& opt);

/// Write one op (found by op_id() == selector, exemplars searched first)
/// as a single-op Chrome trace: one span per blame segment on initiator /
/// wire / server lanes, loadable in Perfetto. Returns false when no op
/// matches or the file cannot be written.
bool dump_exemplar_trace(const AnalyzedRun& run, std::uint64_t selector,
                         const std::string& path);

}  // namespace gputn::obs

// Opt-in time-series sampler: snapshots registered gauges at a fixed
// simulated-time interval via self-rescheduling observation-only events.
//
// Determinism rule: a sampler event only *reads* component state (through
// the registered probe callbacks) and appends a row to its own buffer — it
// never mutates simulated state, never wakes a coroutine, and never
// schedules anything other than its own next tick. Sampler events therefore
// shift only Simulator::scheduled_events()/executed_events() (which no
// stats export includes); every workload event keeps its timestamp and its
// relative order, so results, counters, and final times are bit-identical
// with and without sampling (enforced by tests/obs/zero_drift_test.cpp).
//
// Termination: the sampler reschedules itself only while other events are
// pending (Simulator::pending_events() > 0). Once it is the only thing
// left in the queue, nothing can ever become runnable again, so it records
// its final row and stops — and sim.run() returns as usual. Corollary: at
// most one TimeSeries may sample a simulator at a time (two would keep each
// other pending forever).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/units.hpp"

namespace gputn::obs {

class TimeSeries {
 public:
  /// `interval` is the simulated time between samples (> 0).
  explicit TimeSeries(sim::Tick interval);

  /// Register an instantaneous gauge (queue depth, units in use, window
  /// size): each row records fn() at the sample instant.
  void add_gauge(std::string name, std::function<std::uint64_t()> fn);
  /// Register a cumulative counter (bytes transmitted, ops): each row
  /// records the delta since the previous sample, so columns read as
  /// per-interval rates.
  void add_counter(std::string name, std::function<std::uint64_t()> fn);

  /// Take the t=now baseline sample and begin periodic sampling on `sim`.
  /// Probes must stay callable for as long as sampling runs (i.e. the
  /// components they read must outlive sim.run()); the recorded rows are
  /// plain numbers and remain valid after the components are gone. Call
  /// after every add_gauge/add_counter and at most once.
  void start(sim::Simulator& sim);

  sim::Tick interval() const { return interval_; }
  std::size_t columns() const { return probes_.size(); }
  std::size_t rows() const {
    return probes_.empty() ? 0 : data_.size() / (1 + probes_.size());
  }
  /// Row-major access: row r is [t_ps, probe0, probe1, ...].
  std::uint64_t cell(std::size_t row, std::size_t col) const {
    return data_[row * (1 + probes_.size()) + col];
  }

  /// CSV: header "t_ps,<name>,..." then one row per sample. Deterministic:
  /// column order is registration order, all values are integers.
  void write_csv(std::ostream& out) const;
  /// JSON: {"interval_ps": ..., "columns": [...], "rows": [[...], ...]}.
  void write_json(std::ostream& out) const;

 private:
  struct Probe {
    std::string name;
    bool delta;  // counter probes record per-interval deltas
    std::function<std::uint64_t()> fn;
    std::uint64_t last = 0;
  };

  void sample();
  void schedule_next();

  sim::Simulator* sim_ = nullptr;
  sim::Tick interval_;
  std::vector<Probe> probes_;
  std::vector<std::uint64_t> data_;  // rows x (1 + probes): t_ps, values...
};

}  // namespace gputn::obs

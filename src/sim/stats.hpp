// Statistics collection for simulated components and experiment reporting.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace gputn::sim {

/// Streaming accumulator (Welford) for scalar samples.
class Accumulator {
 public:
  void add(double x) {
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double sum() const { return sum_; }
  /// Empty-accumulator sentinel: min()/max() (like mean()) return 0.0 when
  /// no sample was added — a deliberate NaN-free choice so exporters can
  /// print any accumulator without guarding. Callers that must distinguish
  /// "no samples" from "all samples were 0" check count() first.
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  void reset() { *this = Accumulator{}; }

  /// Exact parallel merge (Chan et al. combination of Welford states):
  /// count/mean/variance/min/max/sum all come out as if every sample had
  /// been added to one accumulator.
  void merge(const Accumulator& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    std::uint64_t n = count_ + other.count_;
    double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                           static_cast<double>(other.count_) /
                           static_cast<double>(n);
    mean_ += delta * static_cast<double>(other.count_) /
             static_cast<double>(n);
    count_ = n;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Power-of-two bucketed histogram for latency / size distributions.
class Histogram {
 public:
  void add(std::uint64_t value) {
    int bucket = value == 0 ? 0 : 64 - std::countl_zero(value);
    if (bucket >= static_cast<int>(buckets_.size())) {
      buckets_.resize(bucket + 1, 0);
    }
    ++buckets_[bucket];
    acc_.add(static_cast<double>(value));
  }

  std::uint64_t count() const { return acc_.count(); }
  double mean() const { return acc_.mean(); }
  double min() const { return acc_.min(); }
  double max() const { return acc_.max(); }
  std::uint64_t bucket_count(int b) const {
    return b < static_cast<int>(buckets_.size()) ? buckets_[b] : 0;
  }
  int num_buckets() const { return static_cast<int>(buckets_.size()); }
  const Accumulator& summary() const { return acc_; }

  /// Quantile estimate (q in [0, 1]) from the pow2 buckets: walk the
  /// cumulative counts to the target rank and interpolate linearly within
  /// the covering bucket [2^(b-1), 2^b). Bucket 0 holds only the value 0.
  /// Edge cases return exact values, never interpolated garbage: an empty
  /// histogram reports 0, a single sample reports that sample, and every
  /// estimate is clamped to the observed [min, max] so p100 is not inflated
  /// to the bucket's upper edge (nor low quantiles deflated below min).
  double quantile(double q) const;

  /// Exact bucket-wise merge: the result is identical to having added both
  /// histograms' samples to one histogram.
  void merge(const Histogram& other) {
    if (other.buckets_.size() > buckets_.size()) {
      buckets_.resize(other.buckets_.size(), 0);
    }
    for (std::size_t b = 0; b < other.buckets_.size(); ++b) {
      buckets_[b] += other.buckets_[b];
    }
    acc_.merge(other.acc_);
  }

 private:
  std::vector<std::uint64_t> buckets_;
  Accumulator acc_;
};

/// Named counter registry so components can publish stats without global
/// state; owned by the top-level experiment or node.
class StatRegistry {
 public:
  std::uint64_t& counter(const std::string& name) { return counters_[name]; }
  Accumulator& accumulator(const std::string& name) { return accums_[name]; }
  Histogram& histogram(const std::string& name) { return histos_[name]; }

  std::uint64_t counter_value(const std::string& name) const {
    auto it = counters_.find(name);
    return it != counters_.end() ? it->second : 0;
  }
  /// The named histogram, or nullptr if it was never registered.
  const Histogram* find_histogram(const std::string& name) const {
    auto it = histos_.find(name);
    return it != histos_.end() ? &it->second : nullptr;
  }

  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, Accumulator>& accumulators() const {
    return accums_;
  }
  const std::map<std::string, Histogram>& histograms() const {
    return histos_;
  }

  /// Render all stats as "name = value" lines (for debugging / reports).
  std::string to_string() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, Accumulator> accums_;
  std::map<std::string, Histogram> histos_;
};

/// Serialize a registry to a JSON object with "counters", "accumulators"
/// and "histograms" sections; histograms carry p50/p90/p99 quantile
/// estimates plus the raw pow2 buckets. Deterministic: map iteration is
/// name-sorted and number formatting is fixed.
std::string stats_json(const StatRegistry& reg);

}  // namespace gputn::sim

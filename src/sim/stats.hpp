// Statistics collection for simulated components and experiment reporting.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace gputn::sim {

/// Streaming accumulator (Welford) for scalar samples.
class Accumulator {
 public:
  void add(double x) {
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  void reset() { *this = Accumulator{}; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Power-of-two bucketed histogram for latency / size distributions.
class Histogram {
 public:
  void add(std::uint64_t value) {
    int bucket = value == 0 ? 0 : 64 - std::countl_zero(value);
    if (bucket >= static_cast<int>(buckets_.size())) {
      buckets_.resize(bucket + 1, 0);
    }
    ++buckets_[bucket];
    acc_.add(static_cast<double>(value));
  }

  std::uint64_t count() const { return acc_.count(); }
  double mean() const { return acc_.mean(); }
  std::uint64_t bucket_count(int b) const {
    return b < static_cast<int>(buckets_.size()) ? buckets_[b] : 0;
  }
  int num_buckets() const { return static_cast<int>(buckets_.size()); }
  const Accumulator& summary() const { return acc_; }

 private:
  std::vector<std::uint64_t> buckets_;
  Accumulator acc_;
};

/// Named counter registry so components can publish stats without global
/// state; owned by the top-level experiment or node.
class StatRegistry {
 public:
  std::uint64_t& counter(const std::string& name) { return counters_[name]; }
  Accumulator& accumulator(const std::string& name) { return accums_[name]; }

  std::uint64_t counter_value(const std::string& name) const {
    auto it = counters_.find(name);
    return it != counters_.end() ? it->second : 0;
  }

  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, Accumulator>& accumulators() const {
    return accums_;
  }

  /// Render all stats as "name = value" lines (for debugging / reports).
  std::string to_string() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, Accumulator> accums_;
};

}  // namespace gputn::sim

#include "sim/shard.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace gputn::sim {

ShardEngine::ShardEngine(int shards) {
  if (shards < 1) throw std::invalid_argument("ShardEngine: shards < 1");
  auto n = static_cast<std::size_t>(shards);
  sims_.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    sims_.push_back(std::make_unique<Simulator>());
  }
  deferred_.resize(n);
  emit_seq_.assign(n, 0);
  mail_.resize(n * n);
  stats_.resize(n);
  win_executed_.assign(n, 0);
  win_error_.resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    sims_[s]->set_defer_sink(&deferred_[s], &emit_seq_[s]);
  }
  if (shards > 1) {
    workers_.reserve(n);
    for (int s = 0; s < shards; ++s) {
      workers_.emplace_back([this, s] { worker_main(s); });
    }
  }
}

ShardEngine::~ShardEngine() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_start_.notify_all();
    for (auto& w : workers_) w.join();
  }
}

void ShardEngine::post(int src, int dst, Tick when, EventFn fn) {
  auto s = static_cast<std::size_t>(src);
  mail_[s * sims_.size() + static_cast<std::size_t>(dst)].push_back(
      Mail{when, sims_[s]->now(), emit_seq_[s]++, std::move(fn)});
}

void ShardEngine::merge_barrier() {
  const std::size_t S = sims_.size();
  for (std::size_t dst = 0; dst < S; ++dst) {
    merge_scratch_.clear();
    for (auto& d : deferred_[dst]) {
      merge_scratch_.push_back(MergeItem{d.when, d.t_sched,
                                         static_cast<int>(dst), d.seq,
                                         std::move(d.fn)});
    }
    deferred_[dst].clear();
    for (std::size_t src = 0; src < S; ++src) {
      auto& box = mail_[src * S + dst];
      for (auto& m : box) {
        merge_scratch_.push_back(MergeItem{m.when, m.t_sched,
                                           static_cast<int>(src), m.seq,
                                           std::move(m.fn)});
      }
      box.clear();
    }
    if (merge_scratch_.empty()) continue;
    // Canonical order: scheduling-time order first (sequentially,
    // same-`when` events execute in scheduling order, and an event
    // scheduled at an earlier tick always has the smaller sequence
    // number), then source shard, then the shard's own emit order.
    std::sort(merge_scratch_.begin(), merge_scratch_.end(),
              [](const MergeItem& a, const MergeItem& b) {
                if (a.when != b.when) return a.when < b.when;
                if (a.t_sched != b.t_sched) return a.t_sched < b.t_sched;
                if (a.src != b.src) return a.src < b.src;
                return a.seq < b.seq;
              });
    for (auto& it : merge_scratch_) {
      sims_[dst]->schedule_event(it.when, std::move(it.fn));
    }
    merge_scratch_.clear();
  }
}

void ShardEngine::worker_main(int s) {
  auto idx = static_cast<std::size_t>(s);
  std::uint64_t seen = 0;
  for (;;) {
    Tick limit;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_start_.wait(lk, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      limit = win_limit_;
    }
    std::uint64_t executed = 0;
    std::exception_ptr err;
    try {
      executed = sims_[idx]->run_window(limit);
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      win_executed_[idx] = executed;
      win_error_[idx] = err;
      ++done_;
    }
    cv_done_.notify_one();
  }
}

bool ShardEngine::step(Tick limit) {
  const int S = shards();
  if (S == 1) {
    Simulator& sim = *sims_[0];
    Tick gmin = sim.next_pending_time();
    // kTickMax means "nothing pending" — return false even when the limit
    // is kTickMax itself (run() passes it), not just when gmin > limit.
    if (gmin > limit || gmin == kTickMax) return false;
    // Degenerate single-shard window: no horizon, no merge — just a
    // bounded slice of the one sequential calendar, so interleaving
    // step() with caller inspection cannot change any result.
    Tick la = lookahead_ > 0 ? lookahead_ : ns(100);
    Tick horizon = gmin > kTickMax - la ? kTickMax : gmin + la;
    Tick wl = std::min(horizon == kTickMax ? kTickMax : horizon - 1, limit);
    std::uint64_t executed = sim.run_window(wl);
    ++rounds_;
    stats_[0].events += executed;
    if (executed > 0) {
      stats_[0].busy_ps += static_cast<std::uint64_t>(wl - gmin) + 1;
    } else {
      stats_[0].idle_ps += static_cast<std::uint64_t>(wl - gmin) + 1;
      ++stats_[0].barrier_waits;
    }
    return true;
  }

  merge_barrier();
  Tick gmin = kTickMax;
  for (auto& sp : sims_) gmin = std::min(gmin, sp->next_pending_time());
  if (gmin > limit || gmin == kTickMax) return false;
  assert(lookahead_ > 0 && "multi-shard run without a lookahead");
  Tick horizon =
      gmin > kTickMax - lookahead_ ? kTickMax : gmin + lookahead_;
  Tick wl = std::min(horizon == kTickMax ? kTickMax : horizon - 1, limit);

  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& sp : sims_) sp->set_horizon(horizon);
    win_limit_ = wl;
    done_ = 0;
    ++epoch_;
  }
  cv_start_.notify_all();
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return done_ == S; });
  }
  for (auto& sp : sims_) sp->set_horizon(kTickMax);
  for (int s = 0; s < S; ++s) {
    if (win_error_[static_cast<std::size_t>(s)]) {
      std::exception_ptr e = win_error_[static_cast<std::size_t>(s)];
      for (auto& err : win_error_) err = nullptr;
      std::rethrow_exception(e);
    }
  }
  ++rounds_;
  std::uint64_t span = static_cast<std::uint64_t>(wl - gmin) + 1;
  for (int s = 0; s < S; ++s) {
    auto idx = static_cast<std::size_t>(s);
    stats_[idx].events += win_executed_[idx];
    if (win_executed_[idx] > 0) {
      stats_[idx].busy_ps += span;
    } else {
      stats_[idx].idle_ps += span;
      ++stats_[idx].barrier_waits;
    }
  }
  return true;
}

Tick ShardEngine::next_time() {
  merge_barrier();
  Tick g = kTickMax;
  for (auto& sp : sims_) g = std::min(g, sp->next_pending_time());
  return g;
}

void ShardEngine::finish_until(Tick until) {
  // step() merges before refusing, so mailboxes and deferral buffers are
  // empty here; run_until parks each clock (and wheel cursor) at `until`
  // exactly as the sequential engine would.
  merge_barrier();
  for (auto& sp : sims_) sp->run_until(until);
}

std::uint64_t ShardEngine::run_until(Tick until) {
  if (shards() == 1) {
    Tick t0 = sims_[0]->now();
    std::uint64_t executed = sims_[0]->run_until(until);
    ++rounds_;
    stats_[0].events += executed;
    stats_[0].busy_ps += static_cast<std::uint64_t>(sims_[0]->now() - t0);
    return executed;
  }
  std::uint64_t before = executed_events();
  while (step(until)) {
  }
  finish_until(until);
  return executed_events() - before;
}

std::uint64_t ShardEngine::run() {
  if (shards() == 1) {
    Tick t0 = sims_[0]->now();
    std::uint64_t executed = sims_[0]->run();
    ++rounds_;
    stats_[0].events += executed;
    stats_[0].busy_ps += static_cast<std::uint64_t>(sims_[0]->now() - t0);
    return executed;
  }
  std::uint64_t before = executed_events();
  while (step(kTickMax)) {
  }
  merge_barrier();
  // Sequential run() leaves the one clock at the last executed event;
  // align every shard there so cross-phase code (spawns between phases,
  // stats exports) sees a single consistent clock.
  Tick last = 0;
  for (auto& sp : sims_) last = std::max(last, sp->now());
  for (auto& sp : sims_) sp->run_until(last);
  return executed_events() - before;
}

int ShardEngine::live_processes() const {
  int n = 0;
  for (const auto& sp : sims_) n += sp->live_processes();
  return n;
}

std::uint64_t ShardEngine::executed_events() const {
  std::uint64_t n = 0;
  for (const auto& sp : sims_) n += sp->executed_events();
  return n;
}

void ShardEngine::reap_processes() {
  for (auto& sp : sims_) sp->reap_processes();
}

}  // namespace gputn::sim

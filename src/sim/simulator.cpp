#include "sim/simulator.hpp"

#include <cassert>
#include <cstdio>
#include <stdexcept>

namespace gputn::sim {

std::string format_time(Tick t) {
  char buf[64];
  if (t < ns(10)) {
    std::snprintf(buf, sizeof(buf), "%ldps", static_cast<long>(t));
  } else if (t < us(10)) {
    std::snprintf(buf, sizeof(buf), "%.3fns", to_ns(t));
  } else if (t < ms(10)) {
    std::snprintf(buf, sizeof(buf), "%.3fus", to_us(t));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fms", to_ms(t));
  }
  return buf;
}

struct ProcessHandle::State {
  Simulator* sim = nullptr;
  std::string name;
  bool finished = false;
  std::exception_ptr exception;
  std::vector<std::coroutine_handle<>> waiters;
  std::coroutine_handle<> frame;  // detached wrapper frame, owned by Simulator
};

bool ProcessHandle::finished() const {
  return state_ != nullptr && state_->finished;
}

Task<> ProcessHandle::join() {
  struct JoinAwaiter {
    State* s;
    bool await_ready() const noexcept { return s->finished; }
    void await_suspend(std::coroutine_handle<> h) { s->waiters.push_back(h); }
    void await_resume() const noexcept {}
  };
  if (!state_) throw std::logic_error("join() on empty ProcessHandle");
  co_await JoinAwaiter{state_.get()};
  if (state_->exception) std::rethrow_exception(state_->exception);
}

Simulator::Simulator() : log_("sim", &now_) {}

Simulator::~Simulator() { reap_processes(); }

void Simulator::reap_processes() {
  // Destroy still-suspended detached frames (infinite service loops such as
  // link pumps, NIC engines). Destroying a suspended coroutine runs its
  // locals' destructors; nothing is resumed.
  for (auto& state : live_states_) {
    if (state->frame) {
      state->frame.destroy();
      state->frame = nullptr;
    }
    if (!state->finished) {
      state->finished = true;
      --live_processes_;
    }
  }
  live_states_.clear();
}

void Simulator::schedule_at(Tick when, std::function<void()> fn) {
  assert(when >= now_ && "cannot schedule events in the past");
  queue_.push(Scheduled{when, next_seq_++, std::move(fn)});
}

void Simulator::schedule_in(Tick delay, std::function<void()> fn) {
  schedule_at(now_ + delay, std::move(fn));
}

std::uint64_t Simulator::run() {
  std::uint64_t executed = 0;
  while (!queue_.empty()) {
    // priority_queue::top() is const; the callback is moved out before pop.
    auto& top = const_cast<Scheduled&>(queue_.top());
    Tick when = top.when;
    auto fn = std::move(top.fn);
    queue_.pop();
    now_ = when;
    fn();
    ++executed;
  }
  executed_events_ += executed;
  return executed;
}

std::uint64_t Simulator::run_until(Tick until) {
  std::uint64_t executed = 0;
  while (!queue_.empty() && queue_.top().when <= until) {
    auto& top = const_cast<Scheduled&>(queue_.top());
    Tick when = top.when;
    auto fn = std::move(top.fn);
    queue_.pop();
    now_ = when;
    fn();
    ++executed;
  }
  if (now_ < until) now_ = until;
  executed_events_ += executed;
  return executed;
}

namespace {

/// Fire-and-forget wrapper coroutine: starts eagerly, stays suspended at its
/// final suspend point so the Simulator (which owns the handle via the
/// process state) can destroy the frame. The wrapped Task's frame lives in
/// this frame and is destroyed with it.
struct Detached {
  struct promise_type {
    Detached get_return_object() noexcept {
      return Detached{
          std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { std::terminate(); }
  };
  std::coroutine_handle<> handle;
};

}  // namespace

void Simulator::finish_process(std::shared_ptr<ProcessHandle::State> state) {
  state->finished = true;
  --live_processes_;
  if (state->exception) {
    log_.warn("process '%s' finished with an exception", state->name.c_str());
  }
  for (auto waiter : state->waiters) {
    schedule_in(0, [waiter] { waiter.resume(); });
  }
  state->waiters.clear();
  // The frame is currently executing (about to reach final_suspend); reclaim
  // it once it has suspended. The state stays in live_states_ until the
  // frame is actually destroyed so ~Simulator can still reclaim it if the
  // destroy event never runs (e.g. run_until stopped early).
  schedule_in(0, [this, state] {
    if (state->frame) {
      state->frame.destroy();
      state->frame = nullptr;
    }
    std::erase(live_states_, state);
  });
}

ProcessHandle Simulator::spawn(Task<> task, std::string name) {
  auto state = std::make_shared<ProcessHandle::State>();
  state->sim = this;
  state->name = std::move(name);
  ++live_processes_;
  live_states_.push_back(state);

  auto runner = [](Simulator* sim, Task<> t,
                   std::shared_ptr<ProcessHandle::State> st) -> Detached {
    try {
      co_await std::move(t);
    } catch (...) {
      st->exception = std::current_exception();
    }
    sim->finish_process(st);
  };
  Detached d = runner(this, std::move(task), state);
  // The coroutine may already have finished (synchronously); only record the
  // frame if it is still alive so we do not double-destroy.
  if (!state->finished) {
    state->frame = d.handle;
  } else {
    d.handle.destroy();
  }
  return ProcessHandle(std::move(state));
}

}  // namespace gputn::sim

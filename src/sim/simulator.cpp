#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdio>
#include <stdexcept>

namespace gputn::sim {

std::string format_time(Tick t) {
  char buf[64];
  if (t < ns(10)) {
    std::snprintf(buf, sizeof(buf), "%ldps", static_cast<long>(t));
  } else if (t < us(10)) {
    std::snprintf(buf, sizeof(buf), "%.3fns", to_ns(t));
  } else if (t < ms(10)) {
    std::snprintf(buf, sizeof(buf), "%.3fus", to_us(t));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fms", to_ms(t));
  }
  return buf;
}

struct ProcessHandle::State {
  Simulator* sim = nullptr;
  std::string name;
  bool finished = false;
  std::exception_ptr exception;
  std::vector<std::coroutine_handle<>> waiters;
  std::coroutine_handle<> frame;  // detached wrapper frame, owned by Simulator
};

bool ProcessHandle::finished() const {
  return state_ != nullptr && state_->finished;
}

Task<> ProcessHandle::join() {
  struct JoinAwaiter {
    State* s;
    bool await_ready() const noexcept { return s->finished; }
    void await_suspend(std::coroutine_handle<> h) { s->waiters.push_back(h); }
    void await_resume() const noexcept {}
  };
  if (!state_) throw std::logic_error("join() on empty ProcessHandle");
  co_await JoinAwaiter{state_.get()};
  if (state_->exception) std::rethrow_exception(state_->exception);
}

namespace {
/// Min-heap comparator for the overflow tier: true when `a` fires after `b`.
struct OverflowAfter {
  template <typename ItemT>
  bool operator()(const ItemT& a, const ItemT& b) const {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }
};
}  // namespace

Simulator::Simulator() : log_("sim", &now_) {}

Simulator::~Simulator() { reap_processes(); }

void Simulator::reap_processes() {
  // Destroy still-suspended detached frames (infinite service loops such as
  // link pumps, NIC engines). Destroying a suspended coroutine runs its
  // locals' destructors; nothing is resumed.
  for (auto& state : live_states_) {
    if (state->frame) {
      state->frame.destroy();
      state->frame = nullptr;
    }
    if (!state->finished) {
      state->finished = true;
      --live_processes_;
    }
  }
  live_states_.clear();
}

void Simulator::schedule_overflow(Tick when, EventFn fn) {
  std::uint64_t blk = block_of(when);
  overflow_.push_back(Item{when, next_seq_ - 1, std::move(fn)});
  std::push_heap(overflow_.begin(), overflow_.end(), OverflowAfter{});
  if (blk < overflow_min_blk_) overflow_min_blk_ = blk;
}

void Simulator::defer_event(Tick when, EventFn fn) {
  assert(deferred_ != nullptr && emit_seq_ != nullptr &&
         "deferral horizon armed without a sink");
  deferred_->push_back(Deferred{when, now_, (*emit_seq_)++, std::move(fn)});
}

void Simulator::schedule_event(Tick when, EventFn fn) {
  assert(when >= now_ && "cannot schedule events in the past");
  next_seq_++;
  pending_++;
  if (when <= now_) {
    fifo_.push_back(std::move(fn));
    return;
  }
  std::uint64_t blk = block_of(when);
  if (blk < cur_blk_ + kBuckets) {
    insert_into_wheel(Item{when, next_seq_ - 1, std::move(fn)});
  } else {
    schedule_overflow(when, std::move(fn));
  }
}

Tick Simulator::next_pending_time() const {
  if (fifo_head_ < fifo_.size()) return now_;
  Tick best = kTickMax;
  if (!overflow_.empty()) best = overflow_.front().when;
  if (!drain_.empty()) {
    // Drain items all live in the cursor's block, and later wheel buckets
    // hold strictly later blocks — but the cursor bucket itself may have
    // gained items after the swap, so scan it alongside drain_'s tail.
    Tick m = drain_.back().when;
    for (const Item& it : wheel_[cur_blk_ & kBucketMask]) {
      m = std::min(m, it.when);
    }
    return std::min(best, m);
  }
  std::size_t off = next_occupied_offset();
  if (off != kBuckets) {
    for (const Item& it : wheel_[(cur_blk_ + off) & kBucketMask]) {
      best = std::min(best, it.when);
    }
  }
  return best;
}

void Simulator::insert_into_wheel(Item&& item) {
  std::uint64_t blk = block_of(item.when);
  std::size_t idx = blk & kBucketMask;
  wheel_[idx].push_back(std::move(item));
  OccWord& w = occ_[idx >> 6];
  std::uint64_t bit = std::uint64_t{1} << (idx & 63);
  w.occ |= bit;
  w.dirty |= bit;
  occ_summary_ |= std::uint64_t{1} << (idx >> 6);
}

std::size_t Simulator::next_occupied_offset() const {
  std::size_t start = cur_blk_ & kBucketMask;
  std::size_t w0 = start >> 6;
  unsigned bit0 = static_cast<unsigned>(start & 63);
  // Bits at or after the cursor within its own occupancy word.
  std::uint64_t word = occ_[w0].occ & (~std::uint64_t{0} << bit0);
  if (word) {
    std::size_t bit =
        w0 * 64 + static_cast<std::size_t>(std::countr_zero(word));
    return bit - start;
  }
  // Later words, in circular order: rotate the summary so its bit 0 is
  // word w0+1, bit 62 is word w0+63, and bit 63 is w0 itself — the
  // wrap-around case, excluded here and handled below restricted to the
  // pre-cursor bits already masked out of the first check.
  std::uint64_t later =
      std::rotr(occ_summary_, static_cast<int>((w0 + 1) & 63)) &
      ~(std::uint64_t{1} << 63);
  if (later) {
    std::size_t wi =
        (w0 + 1 + static_cast<std::size_t>(std::countr_zero(later))) &
        (kOccWords - 1);
    std::size_t bit =
        wi * 64 + static_cast<std::size_t>(std::countr_zero(occ_[wi].occ));
    return (bit + kBuckets - start) & kBucketMask;
  }
  word = occ_[w0].occ & (bit0 ? ~(~std::uint64_t{0} << bit0) : 0);
  if (word) {
    std::size_t bit =
        w0 * 64 + static_cast<std::size_t>(std::countr_zero(word));
    return (bit + kBuckets - start) & kBucketMask;
  }
  return kBuckets;
}

void Simulator::promote_overflow() {
  while (!overflow_.empty() &&
         block_of(overflow_.front().when) < cur_blk_ + kBuckets) {
    std::pop_heap(overflow_.begin(), overflow_.end(), OverflowAfter{});
    insert_into_wheel(std::move(overflow_.back()));
    overflow_.pop_back();
  }
  overflow_min_blk_ = overflow_.empty() ? ~std::uint64_t{0}
                                        : block_of(overflow_.front().when);
}

template <bool Bounded>
inline bool Simulator::advance_to_next_batch(Tick limit) {
  // When Bounded, the cursor must never be committed past block_of(limit):
  // a blocked run_until would otherwise park it at the pending event's
  // block, and events scheduled afterwards at earlier times (legal:
  // run_until only advances now() to the limit) would land in buckets
  // behind the cursor, where the bitmap scan reads them as ~a wheel lap in
  // the future — executing them after later events with now() moving
  // backwards. Every event in block B has when >= B << kBlockShift, so any
  // block past limit_blk holds only events past the limit and the advance
  // can refuse it without looking inside. run() (Bounded=false) drains the
  // queue completely, so its instantiation folds all of this away.
  const std::uint64_t limit_blk = Bounded ? block_of(limit) : 0;
  for (;;) {
    // Fast path: the cursor's own block still has events (in its bucket or
    // already in drain_ — the occupancy bit covers both). Nothing pending
    // can be earlier — every other wheel item is in a later block (the
    // cursor never passes a non-drained block) and the overflow tier is
    // beyond the horizon — so skip the bitmap scan and promotion check.
    std::size_t cidx = cur_blk_ & kBucketMask;
    if (occ_[cidx >> 6].occ & (std::uint64_t{1} << (cidx & 63))) {
      return prepare_batch<Bounded>(cur_blk_, limit);
    }
    std::size_t off = next_occupied_offset();
    if (off == kBuckets) {
      if constexpr (Bounded) {
        // Everything pending is in the overflow tier, past the limit's
        // block? Refuse without moving the cursor (overflow_min_blk_ is ~0
        // when the tier is empty too, so this also covers "no events").
        if (overflow_min_blk_ > limit_blk) return false;
      } else {
        if (overflow_.empty()) return false;
      }
      // Wheel empty: jump the cursor to the earliest overflow block, then
      // promote everything that now fits the horizon and rescan.
      cur_blk_ = overflow_min_blk_;
      promote_overflow();
      continue;
    }
    std::uint64_t blk = cur_blk_ + off;
    if (blk != cur_blk_) {
      if constexpr (Bounded) {
        // blk > limit_blk implies blk != cur_blk_ (the cursor never sits
        // past limit_blk), so the refusal lives on the advance branch only.
        if (blk > limit_blk) [[unlikely]] return false;
      }
      cur_blk_ = blk;
      // Every cursor advance must re-promote so no overflow item is ever
      // behind the horizon. Promoted items land at blocks >= the old
      // cur_blk_ + kBuckets > blk, so the chosen bucket stays authoritative.
      if (overflow_min_blk_ < cur_blk_ + kBuckets) promote_overflow();
    }
    return prepare_batch<Bounded>(blk, limit);
  }
}

template <bool Bounded>
inline bool Simulator::prepare_batch(std::uint64_t blk, Tick limit) {
  std::size_t idx = blk & kBucketMask;
  auto& bucket = wheel_[idx];
  OccWord& w = occ_[idx >> 6];
  std::uint64_t bit = std::uint64_t{1} << (idx & 63);
  if (!bucket.empty()) {
    bool need_sort = (w.dirty & bit) != 0;
    if (drain_.empty()) {
      // O(1) hand-off: the whole bucket becomes the drain; the bucket
      // inherits drain_'s old (empty) storage, so vector capacities
      // circulate through the wheel and steady state never allocates.
      drain_.swap(bucket);
    } else {
      // Rare: new events landed in this block after it was swapped out
      // (scheduled by an event of an earlier batch at a later time inside
      // the same 128 ps block). Merge and re-sort the remainder.
      for (Item& it : bucket) drain_.push_back(std::move(it));
      bucket.clear();
      need_sort = true;
    }
    if (need_sort) {
      if (drain_.size() == 2) {
        // By far the most common multi-event case at realistic densities;
        // a compare-and-swap skips std::sort's dispatch overhead.
        if (OverflowAfter{}(drain_[1], drain_[0])) {
          std::swap(drain_[0], drain_[1]);
        }
      } else if (drain_.size() > 2) {
        std::sort(drain_.begin(), drain_.end(), OverflowAfter{});
      }
      w.dirty &= ~bit;
    }
  }
  // drain_ is sorted descending by (when, seq): the tail is the earliest
  // pending event, and the run of equal-when items before it is in
  // descending sequence order, so run_loop executing off the back yields
  // the batch in FIFO order.
  Tick min_when = drain_.back().when;
  if constexpr (Bounded) {
    if (min_when > limit) return false;
  }
  now_ = min_when;
  return true;
}

void Simulator::consume_after_throw(Tick t) {
  // The throwing event counts as consumed (seed semantics). The rest of
  // its batch must stay runnable and must precede anything the batch
  // appended to the FIFO, so it moves there — drain_'s tail run is in
  // reverse execution order, hence the backwards walk.
  drain_.pop_back();
  std::size_t i = drain_.size();
  while (i > 0 && drain_[i - 1].when == t) --i;
  if (i < drain_.size()) {
    std::vector<EventFn> rest;
    rest.reserve(drain_.size() - i);
    for (std::size_t j = drain_.size(); j > i; --j) {
      rest.push_back(std::move(drain_[j - 1].fn));
    }
    fifo_.insert(fifo_.begin() + static_cast<std::ptrdiff_t>(fifo_head_),
                 std::make_move_iterator(rest.begin()),
                 std::make_move_iterator(rest.end()));
    drain_.erase(drain_.begin() + static_cast<std::ptrdiff_t>(i),
                 drain_.end());
  }
  if (drain_.empty()) {
    std::size_t idx = cur_blk_ & kBucketMask;
    if (wheel_[idx].empty()) {
      OccWord& w = occ_[idx >> 6];
      w.occ &= ~(std::uint64_t{1} << (idx & 63));
      if (w.occ == 0) occ_summary_ &= ~(std::uint64_t{1} << (idx >> 6));
    }
  }
}

template <bool Bounded>
std::uint64_t Simulator::run_loop(Tick limit) {
  std::uint64_t executed = 0;
  for (;;) {
    while (fifo_head_ < fifo_.size()) {
      // Reclaim the consumed prefix if a long same-timestamp chain keeps
      // appending; amortized O(1) per event.
      if (fifo_head_ >= 1024 && fifo_head_ * 2 >= fifo_.size()) {
        fifo_.erase(fifo_.begin(),
                    fifo_.begin() + static_cast<std::ptrdiff_t>(fifo_head_));
        fifo_head_ = 0;
      }
      EventFn fn = std::move(fifo_[fifo_head_]);
      ++fifo_head_;
      --pending_;
      fn();
      ++executed;
    }
    if (fifo_head_ != 0) {
      fifo_.clear();
      fifo_head_ = 0;
    }
    if (!advance_to_next_batch<Bounded>(limit)) break;
    // Execute the batch — every drain_ tail item at now() — in place, no
    // relocation into scratch: user code can never reach drain_ (schedules
    // at now() land in the FIFO, later ones in the bucket vector), so the
    // storage is stable across the call. Anything the batch schedules at
    // now() runs on the next pass — correct, because every batch item's
    // sequence number predates anything scheduled while it runs. If an
    // event throws it counts as consumed (seed semantics; the local
    // executed count is lost on propagation).
    const Tick t = now_;
    for (;;) {
      --pending_;
      try {
        drain_.back().fn();
      } catch (...) {
        consume_after_throw(t);
        throw;
      }
      drain_.pop_back();
      ++executed;
      if (drain_.empty() || drain_.back().when != t) break;
    }
    if (drain_.empty()) {
      std::size_t idx = cur_blk_ & kBucketMask;
      // The batch may have scheduled into its own block; only clear the
      // occupancy bit when the bucket really is empty too.
      if (wheel_[idx].empty()) {
        OccWord& w = occ_[idx >> 6];
        w.occ &= ~(std::uint64_t{1} << (idx & 63));
        if (w.occ == 0) occ_summary_ &= ~(std::uint64_t{1} << (idx >> 6));
      }
    }
  }
  executed_events_ += executed;
  return executed;
}

std::uint64_t Simulator::run() { return run_loop<false>(kTickMax); }

std::uint64_t Simulator::run_until(Tick until) {
  std::uint64_t executed = run_loop<true>(until);
  if (now_ < until) now_ = until;
  std::uint64_t blk = block_of(until);
  if (blk > cur_blk_) {
    cur_blk_ = blk;
    promote_overflow();
  }
  return executed;
}

namespace {

/// Fire-and-forget wrapper coroutine: starts eagerly, stays suspended at its
/// final suspend point so the Simulator (which owns the handle via the
/// process state) can destroy the frame. The wrapped Task's frame lives in
/// this frame and is destroyed with it.
struct Detached {
  struct promise_type {
    Detached get_return_object() noexcept {
      return Detached{
          std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { std::terminate(); }
  };
  std::coroutine_handle<> handle;
};

}  // namespace

void Simulator::finish_process(std::shared_ptr<ProcessHandle::State> state) {
  state->finished = true;
  --live_processes_;
  if (state->exception) {
    log_.warn("process '%s' finished with an exception", state->name.c_str());
  }
  for (auto waiter : state->waiters) {
    wake(waiter);
  }
  state->waiters.clear();
  // The frame is currently executing (about to reach final_suspend); reclaim
  // it once it has suspended. The state stays in live_states_ until the
  // frame is actually destroyed so ~Simulator can still reclaim it if the
  // destroy event never runs (e.g. run_until stopped early).
  schedule_in(0, [this, state] {
    if (state->frame) {
      state->frame.destroy();
      state->frame = nullptr;
    }
    std::erase(live_states_, state);
  });
}

ProcessHandle Simulator::spawn(Task<> task, std::string name) {
  auto state = std::make_shared<ProcessHandle::State>();
  state->sim = this;
  state->name = std::move(name);
  ++live_processes_;
  live_states_.push_back(state);

  auto runner = [](Simulator* sim, Task<> t,
                   std::shared_ptr<ProcessHandle::State> st) -> Detached {
    try {
      co_await std::move(t);
    } catch (...) {
      st->exception = std::current_exception();
    }
    sim->finish_process(st);
  };
  Detached d = runner(this, std::move(task), state);
  // The coroutine may already have finished (synchronously); only record the
  // frame if it is still alive so we do not double-destroy.
  if (!state->finished) {
    state->frame = d.handle;
  } else {
    d.handle.destroy();
  }
  return ProcessHandle(std::move(state));
}

}  // namespace gputn::sim

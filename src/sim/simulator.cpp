#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdio>
#include <stdexcept>

namespace gputn::sim {

std::string format_time(Tick t) {
  char buf[64];
  if (t < ns(10)) {
    std::snprintf(buf, sizeof(buf), "%ldps", static_cast<long>(t));
  } else if (t < us(10)) {
    std::snprintf(buf, sizeof(buf), "%.3fns", to_ns(t));
  } else if (t < ms(10)) {
    std::snprintf(buf, sizeof(buf), "%.3fus", to_us(t));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fms", to_ms(t));
  }
  return buf;
}

struct ProcessHandle::State {
  Simulator* sim = nullptr;
  std::string name;
  bool finished = false;
  std::exception_ptr exception;
  std::vector<std::coroutine_handle<>> waiters;
  std::coroutine_handle<> frame;  // detached wrapper frame, owned by Simulator
};

bool ProcessHandle::finished() const {
  return state_ != nullptr && state_->finished;
}

Task<> ProcessHandle::join() {
  struct JoinAwaiter {
    State* s;
    bool await_ready() const noexcept { return s->finished; }
    void await_suspend(std::coroutine_handle<> h) { s->waiters.push_back(h); }
    void await_resume() const noexcept {}
  };
  if (!state_) throw std::logic_error("join() on empty ProcessHandle");
  co_await JoinAwaiter{state_.get()};
  if (state_->exception) std::rethrow_exception(state_->exception);
}

namespace {
/// Min-heap comparator for the overflow tier: true when `a` fires after `b`.
struct OverflowAfter {
  template <typename ItemT>
  bool operator()(const ItemT& a, const ItemT& b) const {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }
};
}  // namespace

Simulator::Simulator() : log_("sim", &now_) {}

Simulator::~Simulator() { reap_processes(); }

void Simulator::reap_processes() {
  // Destroy still-suspended detached frames (infinite service loops such as
  // link pumps, NIC engines). Destroying a suspended coroutine runs its
  // locals' destructors; nothing is resumed.
  for (auto& state : live_states_) {
    if (state->frame) {
      state->frame.destroy();
      state->frame = nullptr;
    }
    if (!state->finished) {
      state->finished = true;
      --live_processes_;
    }
  }
  live_states_.clear();
}

void Simulator::schedule_overflow(Tick when, EventFn fn) {
  std::uint64_t blk = block_of(when);
  overflow_.push_back(Item{when, next_seq_ - 1, std::move(fn)});
  std::push_heap(overflow_.begin(), overflow_.end(), OverflowAfter{});
  if (blk < overflow_min_blk_) overflow_min_blk_ = blk;
}

void Simulator::insert_into_wheel(Item&& item) {
  std::uint64_t blk = block_of(item.when);
  std::size_t idx = blk & kBucketMask;
  wheel_[idx].push_back(std::move(item));
  OccWord& w = occ_[idx >> 6];
  std::uint64_t bit = std::uint64_t{1} << (idx & 63);
  w.occ |= bit;
  w.dirty |= bit;
}

std::size_t Simulator::next_occupied_offset() const {
  std::size_t start = cur_blk_ & kBucketMask;
  std::size_t w0 = start >> 6;
  unsigned bit0 = static_cast<unsigned>(start & 63);
  for (std::size_t i = 0; i <= kOccWords; ++i) {
    std::size_t wi = (w0 + i) & (kOccWords - 1);
    std::uint64_t word = occ_[wi].occ;
    if (i == 0) {
      word &= ~std::uint64_t{0} << bit0;
    } else if (i == kOccWords) {
      // Wrapped all the way back to the start word: only bits before the
      // start position remain unexamined.
      word &= bit0 ? ~(~std::uint64_t{0} << bit0) : 0;
    }
    if (word) {
      std::size_t bit = wi * 64 + static_cast<std::size_t>(std::countr_zero(word));
      return (bit + kBuckets - start) & kBucketMask;
    }
  }
  return kBuckets;
}

void Simulator::promote_overflow() {
  while (!overflow_.empty() &&
         block_of(overflow_.front().when) < cur_blk_ + kBuckets) {
    std::pop_heap(overflow_.begin(), overflow_.end(), OverflowAfter{});
    insert_into_wheel(std::move(overflow_.back()));
    overflow_.pop_back();
  }
  overflow_min_blk_ = overflow_.empty() ? ~std::uint64_t{0}
                                        : block_of(overflow_.front().when);
}

inline bool Simulator::advance_to_next_batch(Tick limit) {
  for (;;) {
    // Fast path: the cursor's own bucket still has events. Nothing pending
    // can be earlier — every other wheel item is in a later block (the
    // cursor never passes a non-empty bucket) and the overflow tier is
    // beyond the horizon — so skip the bitmap scan and promotion check.
    if (!wheel_[cur_blk_ & kBucketMask].empty()) {
      std::uint64_t blk = cur_blk_;
      return extract_batch(blk, limit);
    }
    std::size_t off = next_occupied_offset();
    if (off == kBuckets) {
      if (overflow_.empty()) return false;
      // Wheel empty: jump the cursor to the earliest overflow block, then
      // promote everything that now fits the horizon and rescan.
      cur_blk_ = overflow_min_blk_;
      promote_overflow();
      continue;
    }
    std::uint64_t blk = cur_blk_ + off;
    if (blk != cur_blk_) {
      cur_blk_ = blk;
      // Every cursor advance must re-promote so no overflow item is ever
      // behind the horizon. Promoted items land at blocks >= the old
      // cur_blk_ + kBuckets > blk, so the chosen bucket stays authoritative.
      if (overflow_min_blk_ < cur_blk_ + kBuckets) promote_overflow();
    }
    return extract_batch(blk, limit);
  }
}

inline bool Simulator::extract_batch(std::uint64_t blk, Tick limit) {
  std::size_t idx = blk & kBucketMask;
  auto& bucket = wheel_[idx];
  OccWord& w = occ_[idx >> 6];
  std::uint64_t bit = std::uint64_t{1} << (idx & 63);
  if (w.dirty & bit) {
    if (bucket.size() > 1) {
      std::sort(bucket.begin(), bucket.end(), OverflowAfter{});
    }
    w.dirty &= ~bit;
  }
  // Sorted descending by (when, seq): the tail is the earliest pending
  // event, and the run of equal-when items before it is in descending
  // sequence order, so popping off the back yields the batch already in
  // FIFO order. Extract ALL events at min_when before executing any —
  // this is what preserves FIFO-at-equal-time across bucket appends and
  // overflow promotions. (Anything user code schedules at the batch's
  // own timestamp goes to the now-FIFO, never this bucket, so the sorted
  // invariant survives execution.)
  Tick min_when = bucket.back().when;
  if (min_when > limit) return false;
  now_ = min_when;
  std::size_t n = bucket.size();
  if (n == 1 || bucket[n - 2].when != min_when) {
    // The common case: a batch of one. Leave it in single_ so run_loop can
    // invoke it in place without another relocation.
    single_ = std::move(bucket.back().fn);
    have_single_ = true;
    bucket.pop_back();
    if (n == 1) w.occ &= ~bit;
    return true;
  }
  batch_.clear();
  do {
    batch_.push_back(std::move(bucket.back().fn));
    bucket.pop_back();
  } while (!bucket.empty() && bucket.back().when == min_when);
  if (bucket.empty()) {
    w.occ &= ~bit;
  }
  return true;
}

std::uint64_t Simulator::run_loop(Tick limit) {
  std::uint64_t executed = 0;
  for (;;) {
    while (fifo_head_ < fifo_.size()) {
      // Reclaim the consumed prefix if a long same-timestamp chain keeps
      // appending; amortized O(1) per event.
      if (fifo_head_ >= 1024 && fifo_head_ * 2 >= fifo_.size()) {
        fifo_.erase(fifo_.begin(),
                    fifo_.begin() + static_cast<std::ptrdiff_t>(fifo_head_));
        fifo_head_ = 0;
      }
      EventFn fn = std::move(fifo_[fifo_head_]);
      ++fifo_head_;
      fn();
      ++executed;
    }
    if (fifo_head_ != 0) {
      fifo_.clear();
      fifo_head_ = 0;
    }
    if (!advance_to_next_batch(limit)) break;
    // Execute the batch in place. Anything it schedules at now() lands in
    // the FIFO and runs on the next pass — correct, because every batch
    // item's sequence number predates anything scheduled while it runs.
    // Invoking through the stored record (no move-out) is safe: user code
    // never touches single_/batch_, and the records are reset on the next
    // extraction. If an event throws it counts as consumed (seed
    // semantics; the local executed count is lost on propagation).
    if (have_single_) {
      have_single_ = false;
      single_();
      ++executed;
      continue;
    }
    std::size_t bi = 0;
    try {
      for (; bi < batch_.size(); ++bi) {
        batch_[bi]();
      }
      executed += batch_.size();
    } catch (...) {
      // The rest of the batch must stay runnable and must precede anything
      // the batch appended to the FIFO.
      fifo_.insert(fifo_.begin() + static_cast<std::ptrdiff_t>(fifo_head_),
                   std::make_move_iterator(batch_.begin() +
                                           static_cast<std::ptrdiff_t>(bi) + 1),
                   std::make_move_iterator(batch_.end()));
      batch_.clear();
      throw;
    }
    batch_.clear();
  }
  executed_events_ += executed;
  return executed;
}

std::uint64_t Simulator::run() { return run_loop(kTickMax); }

std::uint64_t Simulator::run_until(Tick until) {
  std::uint64_t executed = run_loop(until);
  if (now_ < until) now_ = until;
  std::uint64_t blk = block_of(until);
  if (blk > cur_blk_) {
    cur_blk_ = blk;
    promote_overflow();
  }
  return executed;
}

namespace {

/// Fire-and-forget wrapper coroutine: starts eagerly, stays suspended at its
/// final suspend point so the Simulator (which owns the handle via the
/// process state) can destroy the frame. The wrapped Task's frame lives in
/// this frame and is destroyed with it.
struct Detached {
  struct promise_type {
    Detached get_return_object() noexcept {
      return Detached{
          std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { std::terminate(); }
  };
  std::coroutine_handle<> handle;
};

}  // namespace

void Simulator::finish_process(std::shared_ptr<ProcessHandle::State> state) {
  state->finished = true;
  --live_processes_;
  if (state->exception) {
    log_.warn("process '%s' finished with an exception", state->name.c_str());
  }
  for (auto waiter : state->waiters) {
    wake(waiter);
  }
  state->waiters.clear();
  // The frame is currently executing (about to reach final_suspend); reclaim
  // it once it has suspended. The state stays in live_states_ until the
  // frame is actually destroyed so ~Simulator can still reclaim it if the
  // destroy event never runs (e.g. run_until stopped early).
  schedule_in(0, [this, state] {
    if (state->frame) {
      state->frame.destroy();
      state->frame = nullptr;
    }
    std::erase(live_states_, state);
  });
}

ProcessHandle Simulator::spawn(Task<> task, std::string name) {
  auto state = std::make_shared<ProcessHandle::State>();
  state->sim = this;
  state->name = std::move(name);
  ++live_processes_;
  live_states_.push_back(state);

  auto runner = [](Simulator* sim, Task<> t,
                   std::shared_ptr<ProcessHandle::State> st) -> Detached {
    try {
      co_await std::move(t);
    } catch (...) {
      st->exception = std::current_exception();
    }
    sim->finish_process(st);
  };
  Detached d = runner(this, std::move(task), state);
  // The coroutine may already have finished (synchronously); only record the
  // frame if it is still alive so we do not double-destroy.
  if (!state->finished) {
    state->frame = d.handle;
  } else {
    d.handle.destroy();
  }
  return ProcessHandle(std::move(state));
}

}  // namespace gputn::sim

#include "sim/log.hpp"

#include <cstdio>

namespace gputn::sim {

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}
}  // namespace

void log_line(LogLevel level, Tick now, std::string_view component,
              std::string_view message) {
  std::fprintf(stderr, "[%12.3fus] %s %.*s: %.*s\n", to_us(now),
               level_name(level), static_cast<int>(component.size()),
               component.data(), static_cast<int>(message.size()),
               message.data());
}

}  // namespace gputn::sim

// Coroutine synchronization primitives for simulated processes.
//
// All primitives resume waiters *through the simulator's event queue* at the
// current tick rather than inline. This bounds native stack depth and makes
// wake-up ordering deterministic (FIFO by registration).
#pragma once

#include <coroutine>
#include <deque>
#include <functional>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace gputn::sim {

/// One-shot latch. Once triggered, all current and future waiters proceed
/// immediately. Typical use: completion notifications.
class Event {
 public:
  explicit Event(Simulator& sim) : sim_(&sim) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  bool triggered() const { return triggered_; }

  void trigger() {
    if (triggered_) return;
    triggered_ = true;
    for (auto h : waiters_) {
      sim_->wake(h);
    }
    waiters_.clear();
  }

  auto wait() {
    struct Awaiter {
      Event* e;
      bool await_ready() const noexcept { return e->triggered_; }
      void await_suspend(std::coroutine_handle<> h) {
        e->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  Simulator* sim_;
  bool triggered_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Recurring notification. `wait()` completes on the next `notify_all()`;
/// `wait_until(pred)` loops until the predicate holds. There is no latch:
/// notifications wake only currently-registered waiters.
class Condition {
 public:
  explicit Condition(Simulator& sim) : sim_(&sim) {}
  Condition(const Condition&) = delete;
  Condition& operator=(const Condition&) = delete;

  void notify_all() {
    for (auto h : waiters_) {
      sim_->wake(h);
    }
    waiters_.clear();
  }

  auto wait() {
    struct Awaiter {
      Condition* c;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        c->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  Task<> wait_until(std::function<bool()> pred) {
    while (!pred()) co_await wait();
  }

  int waiter_count() const { return static_cast<int>(waiters_.size()); }

 private:
  Simulator* sim_;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Unbounded FIFO mailbox. `push` never blocks; `pop` suspends while empty.
/// Used for NIC command queues, trigger FIFOs, and inter-agent messages.
template <typename T>
class Channel {
 public:
  explicit Channel(Simulator& sim) : sim_(&sim) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  void push(T value) {
    buffer_.push_back(std::move(value));
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_->wake(h);
    }
  }

  Task<T> pop() {
    while (buffer_.empty()) {
      struct Awaiter {
        Channel* ch;
        bool await_ready() const noexcept { return false; }
        void await_suspend(std::coroutine_handle<> h) {
          ch->waiters_.push_back(h);
        }
        void await_resume() const noexcept {}
      };
      co_await Awaiter{this};
    }
    T v = std::move(buffer_.front());
    buffer_.pop_front();
    // If items remain and other consumers are waiting, let the next one run.
    if (!buffer_.empty() && !waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_->wake(h);
    }
    co_return v;
  }

  /// Non-suspending pop for polling-style consumers.
  std::optional<T> try_pop() {
    if (buffer_.empty()) return std::nullopt;
    T v = std::move(buffer_.front());
    buffer_.pop_front();
    return v;
  }

  bool empty() const { return buffer_.empty(); }
  std::size_t size() const { return buffer_.size(); }

 private:
  Simulator* sim_;
  std::deque<T> buffer_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore with FIFO hand-off. Models exclusive or limited
/// resources (link occupancy, DMA engines, CPU cores, compute units).
class Semaphore {
 public:
  Semaphore(Simulator& sim, int initial) : sim_(&sim), available_(initial) {
    if (initial < 0) throw std::invalid_argument("negative semaphore count");
  }
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  Task<> acquire() {
    if (available_ > 0 && waiters_.empty()) {
      --available_;
      co_return;
    }
    struct Awaiter {
      Semaphore* s;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        s->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    co_await Awaiter{this};
    // The releaser transferred a permit directly to us.
  }

  void release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_->wake(h);
    } else {
      ++available_;
    }
  }

  int available() const { return available_; }
  int waiting() const { return static_cast<int>(waiters_.size()); }

 private:
  Simulator* sim_;
  int available_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// RAII guard: acquire on construction (via `lock`), release on destruction.
class SemaphoreGuard {
 public:
  static Task<SemaphoreGuard> lock(Semaphore& s) {
    co_await s.acquire();
    co_return SemaphoreGuard(&s);
  }
  SemaphoreGuard(SemaphoreGuard&& o) noexcept
      : sem_(std::exchange(o.sem_, nullptr)) {}
  SemaphoreGuard& operator=(SemaphoreGuard&& o) noexcept {
    if (this != &o) {
      reset();
      sem_ = std::exchange(o.sem_, nullptr);
    }
    return *this;
  }
  SemaphoreGuard(const SemaphoreGuard&) = delete;
  SemaphoreGuard& operator=(const SemaphoreGuard&) = delete;
  ~SemaphoreGuard() { reset(); }

 private:
  explicit SemaphoreGuard(Semaphore* s) : sem_(s) {}
  void reset() {
    if (sem_ != nullptr) {
      sem_->release();
      sem_ = nullptr;
    }
  }
  Semaphore* sem_;
};

/// Reusable rendezvous barrier for `parties` processes. The last arriver
/// releases everyone; the barrier then resets for the next round.
class Barrier {
 public:
  Barrier(Simulator& sim, int parties) : sim_(&sim), parties_(parties) {
    if (parties <= 0) throw std::invalid_argument("barrier parties <= 0");
  }
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  Task<> arrive_and_wait() {
    ++arrived_;
    if (arrived_ == parties_) {
      arrived_ = 0;
      for (auto h : waiters_) {
        sim_->wake(h);
      }
      waiters_.clear();
      co_return;
    }
    struct Awaiter {
      Barrier* b;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        b->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    co_await Awaiter{this};
  }

 private:
  Simulator* sim_;
  int parties_;
  int arrived_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Await completion of a set of process handles (fork/join helper).
inline Task<> join_all(std::vector<ProcessHandle> handles) {
  for (auto& h : handles) co_await h.join();
}

}  // namespace gputn::sim

// Lightweight component-tagged trace logging for the simulator.
//
// Logging is off by default (Level::kWarn) so tests and benches run quietly;
// a bench or test can raise the level to trace protocol interleavings.
#pragma once

#include <atomic>
#include <cstdio>
#include <string>
#include <string_view>

#include "sim/units.hpp"

namespace gputn::sim {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Process-wide log configuration — the one piece of global state the
/// simulation path reads. Each Simulator instance is single-threaded, but
/// exp::Runner executes many of them on concurrent worker threads, so the
/// level is an atomic: set once by the driver before workers start, read
/// (relaxed — no ordering is implied by a level change) on every log call.
class LogConfig {
 public:
  static LogLevel level() { return level_.load(std::memory_order_relaxed); }
  static void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  static bool enabled(LogLevel level) {
    return static_cast<int>(level) >=
           static_cast<int>(level_.load(std::memory_order_relaxed));
  }

 private:
  static inline std::atomic<LogLevel> level_ = LogLevel::kWarn;
};

/// Emit one formatted log line: `[   12.345us] component: message`.
void log_line(LogLevel level, Tick now, std::string_view component,
              std::string_view message);

/// printf-style logging helper bound to a component name and a time source.
/// Each simulated object holds a Logger tagged with its name.
class Logger {
 public:
  Logger(std::string component, const Tick* now_source)
      : component_(std::move(component)), now_(now_source) {}

  template <typename... Args>
  void trace(const char* fmt, Args... args) const {
    logf(LogLevel::kTrace, fmt, args...);
  }
  template <typename... Args>
  void debug(const char* fmt, Args... args) const {
    logf(LogLevel::kDebug, fmt, args...);
  }
  template <typename... Args>
  void info(const char* fmt, Args... args) const {
    logf(LogLevel::kInfo, fmt, args...);
  }
  template <typename... Args>
  void warn(const char* fmt, Args... args) const {
    logf(LogLevel::kWarn, fmt, args...);
  }
  template <typename... Args>
  void error(const char* fmt, Args... args) const {
    logf(LogLevel::kError, fmt, args...);
  }

  const std::string& component() const { return component_; }

 private:
  template <typename... Args>
  void logf(LogLevel level, const char* fmt, Args... args) const {
    if (!LogConfig::enabled(level)) return;
    char buf[512];
    if constexpr (sizeof...(Args) == 0) {
      std::snprintf(buf, sizeof(buf), "%s", fmt);
    } else {
      std::snprintf(buf, sizeof(buf), fmt, args...);
    }
    log_line(level, now_ != nullptr ? *now_ : 0, component_, buf);
  }

  std::string component_;
  const Tick* now_;
};

}  // namespace gputn::sim

// Discrete-event simulation kernel.
//
// The simulator owns a two-level calendar queue of (time, sequence, callback)
// events: a "now" FIFO for events at the current timestamp, a bucketed wheel
// covering the near-term horizon, and a sorted overflow tier for far-future
// events. Events at equal times execute in insertion order, which — together
// with the single-threaded execution model — makes every simulation fully
// deterministic. Coroutine processes (`Task<>`) are driven by scheduling
// their resumption through this queue.
#pragma once

#include <array>
#include <cassert>
#include <coroutine>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/log.hpp"
#include "sim/task.hpp"
#include "sim/units.hpp"

namespace gputn::sim {

class Simulator;

/// Join handle for a detached process started with Simulator::spawn.
/// Cheap to copy; all copies refer to the same process.
class ProcessHandle {
 public:
  ProcessHandle() = default;

  bool valid() const { return state_ != nullptr; }
  bool finished() const;
  /// Suspends until the process finishes; rethrows its exception, if any.
  Task<> join();

 private:
  friend class Simulator;
  struct State;
  explicit ProcessHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

/// Ownership rule (parallel experiments): a Simulator and everything built
/// on it — Cluster, nodes, stats registries, trace recorders, buffer pools,
/// RNGs, workload state — form one isolated world confined to a single
/// thread at a time. The simulation path holds no mutable globals (the two
/// process-wide objects, workloads::Registry and sim::LogConfig, are
/// written only before workers start — the registry is append-only at
/// startup and the log level is an atomic), so exp::Runner may execute any
/// number of Simulators concurrently, one per run point, and their results
/// are bit-identical to serial execution. Anything a run mutates must be
/// owned by (or reachable only from) its own Simulator/Cluster.
class Simulator {
 public:
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Tick now() const { return now_; }
  /// Stable pointer to the current time, for Logger construction.
  const Tick* now_ptr() const { return &now_; }

  /// Schedule a callback at absolute time `when` (must be >= now()).
  /// A forwarding template defined inline so hot callers compile down to
  /// constructing the closure directly in its event slot — no call, no
  /// intermediate EventFn relocation.
  template <typename F>
    requires std::is_invocable_r_v<void, std::remove_cvref_t<F>&>
  void schedule_at(Tick when, F&& fn) {
    assert(when >= now_ && "cannot schedule events in the past");
    if (when >= horizon_) [[unlikely]] {
      // Parallel-DES window in progress (sim/shard.hpp): events at or past
      // the conservative horizon are diverted to the deferred buffer and
      // re-inserted at the next barrier in deterministic merge order
      // alongside cross-shard arrivals.
      defer_event(when, EventFn(std::forward<F>(fn)));
      return;
    }
    next_seq_++;
    pending_++;
    if (when <= now_) {
      // Current-timestamp event (includes the delay-0 wakeup fast path,
      // and — under NDEBUG — clamps any past timestamp to now). Appending
      // preserves sequence order: every pending event at now() is already
      // in the FIFO.
      fifo_.emplace_back(std::forward<F>(fn));
      return;
    }
    std::uint64_t blk = block_of(when);
    if (blk < cur_blk_ + kBuckets) {
      std::size_t idx = blk & kBucketMask;
      wheel_[idx].emplace_back(when, next_seq_ - 1, std::forward<F>(fn));
      OccWord& w = occ_[idx >> 6];
      std::uint64_t bit = std::uint64_t{1} << (idx & 63);
      w.occ |= bit;
      w.dirty |= bit;
      occ_summary_ |= std::uint64_t{1} << (idx >> 6);
    } else {
      schedule_overflow(when, EventFn(std::forward<F>(fn)));
    }
  }
  /// Schedule a callback `delay` picoseconds from now.
  template <typename F>
    requires std::is_invocable_r_v<void, std::remove_cvref_t<F>&>
  void schedule_in(Tick delay, F&& fn) {
    schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Zero-allocation fast path: resume `h` at the current timestamp, after
  /// all already-scheduled events at now(). Equivalent to
  /// `schedule_in(0, [h] { h.resume(); })` without the closure.
  void wake(std::coroutine_handle<> h) { schedule_at(now_, EventFn(h)); }
  /// Zero-allocation fast path: resume `h` after `delay` picoseconds.
  void schedule_resume(Tick delay, std::coroutine_handle<> h) {
    schedule_at(now_ + delay, EventFn(h));
  }

  /// Run until the event queue is empty. Returns the number of events
  /// executed by this call.
  std::uint64_t run();
  /// Run all events with time <= `until`, then advance now() to `until`.
  std::uint64_t run_until(Tick until);

  // --- Conservative-PDES hooks (driven by sim::ShardEngine) -------------

  /// An event diverted by the deferral horizon. `t_sched` is the clock at
  /// scheduling time and `seq` the shard's emit counter; together with the
  /// source shard id they form the deterministic cross-shard merge key.
  struct Deferred {
    Tick when;
    Tick t_sched;
    std::uint64_t seq;
    EventFn fn;
  };

  /// Arm the deferral machinery: schedules at `when >= horizon` land in
  /// `*buf` (stamped from `*emit_seq`, shared with the engine's remote
  /// mailbox path so local and cross-shard emissions at one tick keep
  /// their relative order). Pass kTickMax to disarm. The buffers outlive
  /// the window; only the engine's barrier drains them.
  void set_defer_sink(std::vector<Deferred>* buf, std::uint64_t* emit_seq) {
    deferred_ = buf;
    emit_seq_ = emit_seq;
  }
  void set_horizon(Tick horizon) { horizon_ = horizon; }
  Tick horizon() const { return horizon_; }

  /// Insert an event at absolute `when` with a fresh sequence number,
  /// bypassing the deferral horizon — the engine's barrier merge uses this
  /// to re-insert deferred and cross-shard events in canonical order.
  void schedule_event(Tick when, EventFn fn);

  /// Bounded run for one conservative window: executes events with
  /// when <= `limit` but — unlike run_until — neither parks now() at the
  /// limit nor commits the wheel cursor past it, so the clock stays at the
  /// last executed event and later windows behave exactly like one
  /// uninterrupted run.
  std::uint64_t run_window(Tick limit) { return run_loop<true>(limit); }

  /// Earliest pending timestamp (FIFO / drain / wheel / overflow), or
  /// kTickMax when the calendar is empty. Deferred events are excluded:
  /// the engine merges them back before asking.
  Tick next_pending_time() const;

  /// Awaitable that suspends the current coroutine for `d` picoseconds.
  auto delay(Tick d) {
    struct Awaiter {
      Simulator* sim;
      Tick d;
      bool await_ready() const noexcept { return d <= 0; }
      void await_suspend(std::coroutine_handle<> h) {
        sim->schedule_resume(d, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, d};
  }

  /// Start a detached process. The coroutine runs immediately until its
  /// first suspension; its frame is destroyed when it completes. The
  /// returned handle can be joined or ignored.
  ProcessHandle spawn(Task<> task, std::string name = "process");

  /// Number of processes spawned that have not yet finished. A nonzero value
  /// after run() returns indicates a deadlocked process (e.g. waiting on an
  /// event nobody will trigger).
  int live_processes() const { return live_processes_; }

  std::uint64_t executed_events() const { return executed_events_; }
  std::uint64_t scheduled_events() const { return next_seq_; }
  /// Events scheduled but not yet started, excluding the one currently
  /// executing. Maintained live (executed_events() is flushed only when a
  /// run loop exits), so an event callback observing pending_events() == 0
  /// knows the queue will be empty — and run() will return — the moment it
  /// finishes. This is what lets a self-rescheduling observer (the
  /// obs::TimeSeries sampler) stop instead of keeping the simulation alive
  /// forever.
  std::uint64_t pending_events() const { return pending_; }

  /// Destroy all still-suspended detached process frames. Owners of
  /// simulated hardware (e.g. Cluster) call this in their destructors so
  /// service-loop coroutines die before the objects they reference.
  void reap_processes();

 private:
  friend class ProcessHandle;

  // Calendar geometry: 4096 buckets of 128 ps each give a ~0.52 us horizon
  // — enough that the per-packet delays (wire hops, doorbells, DMA, all
  // under ~0.5 us) stay on the wheel and only coarse timeouts and kernel
  // launches spill to the overflow tier.
  static constexpr int kBlockShift = 7;  // 128 ps per bucket
  static constexpr std::size_t kBucketBits = 12;
  static constexpr std::size_t kBuckets = std::size_t{1} << kBucketBits;
  static constexpr std::size_t kBucketMask = kBuckets - 1;
  static constexpr std::size_t kOccWords = kBuckets / 64;

  struct Item {
    Tick when;
    std::uint64_t seq;
    EventFn fn;
  };

  static constexpr std::uint64_t block_of(Tick when) {
    return static_cast<std::uint64_t>(when) >> kBlockShift;
  }

  /// Shared core of run()/run_until(): executes events with when <= limit.
  /// Templated on whether the limit is finite: run() — the hot full-drain
  /// loop — instantiates Bounded=false and compiles with zero limit checks,
  /// while run_until's instantiation carries the guards that keep the wheel
  /// cursor from being parked past block_of(limit) (see
  /// advance_to_next_batch).
  template <bool Bounded>
  std::uint64_t run_loop(Tick limit);
  /// Advances the cursor to the earliest occupied block (promoting overflow
  /// as needed) and stages its events via prepare_batch, leaving the next
  /// batch on drain_'s tail and now() at its timestamp. Returns false — with
  /// the cursor never committed past block_of(limit) — when the earliest
  /// pending event exceeds `limit`, or when nothing is pending. Inlined into
  /// run_loop: one call per batch is pure overhead.
  template <bool Bounded>
  __attribute__((always_inline)) bool advance_to_next_batch(Tick limit);
  /// Out-of-line slow path of schedule_at: push onto the far-future heap.
  void schedule_overflow(Tick when, EventFn fn);
  /// Out-of-line slow path of schedule_at under an armed deferral horizon.
  void defer_event(Tick when, EventFn fn);
  /// Moves bucket `blk`'s events into drain_ (an O(1) vector swap when
  /// drain_ is empty), sorts them if inserts dirtied the bucket, and sets
  /// now() to the earliest pending timestamp — leaving that batch on
  /// drain_'s tail for run_loop to execute in place. Returns false without
  /// committing anything if the earliest event is past `limit`. Inlined
  /// into the advance path: it runs once per batch.
  template <bool Bounded>
  __attribute__((always_inline)) bool prepare_batch(std::uint64_t blk,
                                                    Tick limit);
  /// Cold path of run_loop when an executing event throws: consumes the
  /// thrown event and re-queues the rest of its batch into the FIFO so it
  /// stays runnable, ordered before anything the batch appended there.
  void consume_after_throw(Tick t);
  /// Offset in [0, kBuckets) of the first occupied bucket at or after
  /// cur_blk_, or kBuckets if the wheel is empty.
  std::size_t next_occupied_offset() const;
  /// Moves overflow items that now fall inside the wheel horizon
  /// [cur_blk_, cur_blk_ + kBuckets) into their buckets. Must be called on
  /// every cur_blk_ increase so no overflow item is ever behind the cursor.
  void promote_overflow();
  void insert_into_wheel(Item&& item);

  void finish_process(std::shared_ptr<ProcessHandle::State> state);

  Tick now_ = 0;
  // Deferral horizon for conservative-PDES windows; kTickMax (the reset
  // value) keeps the hot schedule_at branch always-false in sequential
  // runs. Armed only while the ShardEngine executes a window.
  Tick horizon_ = kTickMax;
  std::vector<Deferred>* deferred_ = nullptr;
  std::uint64_t* emit_seq_ = nullptr;
  std::uint64_t cur_blk_ = 0;  // invariant: block_of(now_) <= cur_blk_
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_events_ = 0;
  std::uint64_t pending_ = 0;  // scheduled, not yet started (live count)
  int live_processes_ = 0;

  // Events at when == now(): executed front to back; appends during
  // execution keep sequence order because only current-time events land
  // here. This is the zero-delay wakeup fast path — no heap, no sort.
  std::vector<EventFn> fifo_;
  std::size_t fifo_head_ = 0;

  // kBuckets lazily-sorted vectors. A bucket is unordered while the cursor
  // is elsewhere (inserts just append and set its dirty bit); when the
  // cursor reaches it, it is sorted ONCE, descending by (when, seq), so
  // every same-timestamp batch is a pop_back run off the tail — O(1) per
  // event, already in sequence order, no matter how deep the bucket is.
  std::array<std::vector<Item>, kBuckets> wheel_;
  // Occupancy ("has events") and dirty ("needs re-sort") bitmaps, word-
  // interleaved so an insert updates both with one cache line touched.
  struct OccWord {
    std::uint64_t occ = 0;
    std::uint64_t dirty = 0;
  };
  std::array<OccWord, kOccWords> occ_{};
  // Second bitmap level: bit w set iff occ_[w].occ != 0. With kOccWords ==
  // 64 one word summarizes the whole wheel, so next_occupied_offset is two
  // countr_zero calls instead of a scan over up to 65 words.
  static_assert(kOccWords == 64, "occ_summary_ assumes a 64-word wheel");
  std::uint64_t occ_summary_ = 0;
  // The cursor bucket's events, sorted descending by (when, seq) — handed
  // over from the bucket vector by swap, executed straight off the tail.
  // Private to the engine: user code can never reach it (same-time
  // schedules go to the FIFO, same-block ones to the bucket vector), so
  // events are invoked in place with no relocation into scratch. Non-empty
  // only for the cursor's block; the cursor never advances past a block
  // whose drain still has content.
  std::vector<Item> drain_;
  // Far-future tier: min-heap on (when, seq). A heap (not a sorted vector)
  // because promotion interleaves with insertion — peeking the minimum must
  // stay O(1) no matter how many far timeouts pile up between advances.
  std::vector<Item> overflow_;
  // block_of(overflow_.front().when), or ~0 when overflow_ is empty.
  // Cached so the per-advance "anything to promote?" check is one compare
  // against a hot member instead of a heap peek behind a function call.
  std::uint64_t overflow_min_blk_ = ~std::uint64_t{0};
  /// Detached process frames still running; destroyed (suspended) frames are
  /// reclaimed when the process finishes, and any remainder in ~Simulator.
  std::vector<std::shared_ptr<ProcessHandle::State>> live_states_;
  Logger log_;
};

}  // namespace gputn::sim

// Discrete-event simulation kernel.
//
// The simulator owns a priority queue of (time, sequence, callback) events.
// Events at equal times execute in insertion order, which — together with the
// single-threaded execution model — makes every simulation fully
// deterministic. Coroutine processes (`Task<>`) are driven by scheduling
// their resumption through this queue.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/log.hpp"
#include "sim/task.hpp"
#include "sim/units.hpp"

namespace gputn::sim {

class Simulator;

/// Join handle for a detached process started with Simulator::spawn.
/// Cheap to copy; all copies refer to the same process.
class ProcessHandle {
 public:
  ProcessHandle() = default;

  bool valid() const { return state_ != nullptr; }
  bool finished() const;
  /// Suspends until the process finishes; rethrows its exception, if any.
  Task<> join();

 private:
  friend class Simulator;
  struct State;
  explicit ProcessHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

class Simulator {
 public:
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Tick now() const { return now_; }
  /// Stable pointer to the current time, for Logger construction.
  const Tick* now_ptr() const { return &now_; }

  /// Schedule a callback at absolute time `when` (must be >= now()).
  void schedule_at(Tick when, std::function<void()> fn);
  /// Schedule a callback `delay` picoseconds from now.
  void schedule_in(Tick delay, std::function<void()> fn);

  /// Run until the event queue is empty. Returns the number of events
  /// executed by this call.
  std::uint64_t run();
  /// Run all events with time <= `until`, then advance now() to `until`.
  std::uint64_t run_until(Tick until);

  /// Awaitable that suspends the current coroutine for `d` picoseconds.
  auto delay(Tick d) {
    struct Awaiter {
      Simulator* sim;
      Tick d;
      bool await_ready() const noexcept { return d <= 0; }
      void await_suspend(std::coroutine_handle<> h) {
        sim->schedule_in(d, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, d};
  }

  /// Start a detached process. The coroutine runs immediately until its
  /// first suspension; its frame is destroyed when it completes. The
  /// returned handle can be joined or ignored.
  ProcessHandle spawn(Task<> task, std::string name = "process");

  /// Number of processes spawned that have not yet finished. A nonzero value
  /// after run() returns indicates a deadlocked process (e.g. waiting on an
  /// event nobody will trigger).
  int live_processes() const { return live_processes_; }

  std::uint64_t executed_events() const { return executed_events_; }
  std::uint64_t scheduled_events() const { return next_seq_; }

  /// Destroy all still-suspended detached process frames. Owners of
  /// simulated hardware (e.g. Cluster) call this in their destructors so
  /// service-loop coroutines die before the objects they reference.
  void reap_processes();

 private:
  friend class ProcessHandle;

  struct Scheduled {
    Tick when;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Scheduled& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  void finish_process(std::shared_ptr<ProcessHandle::State> state);

  Tick now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_events_ = 0;
  int live_processes_ = 0;
  std::priority_queue<Scheduled, std::vector<Scheduled>, std::greater<>> queue_;
  /// Detached process frames still running; destroyed (suspended) frames are
  /// reclaimed when the process finishes, and any remainder in ~Simulator.
  std::vector<std::shared_ptr<ProcessHandle::State>> live_states_;
  Logger log_;
};

}  // namespace gputn::sim

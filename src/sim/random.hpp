// Deterministic random number generation for workload synthesis.
//
// A single seeded generator per experiment keeps runs reproducible; the
// simulator core itself is deterministic and uses no randomness.
#pragma once

#include <cstdint>
#include <random>

namespace gputn::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Log-normal sized messages (typical of DL gradient buckets).
  double lognormal(double log_mean, double log_sigma) {
    return std::lognormal_distribution<double>(log_mean, log_sigma)(engine_);
  }

  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace gputn::sim

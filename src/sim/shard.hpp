// Conservative parallel discrete-event engine.
//
// A ShardEngine owns S sequential Simulators ("shards"), each driven by its
// own persistent worker thread, and synchronizes them with conservative
// barrier-window rounds. Per round:
//
//   1. barrier merge — cross-shard deposits (per-edge mailboxes) and
//      horizon-deferred local events are re-inserted into their destination
//      shard's calendar in canonical (when, t_sched, src_shard, seq) order;
//   2. gmin = min over shards of the earliest pending timestamp;
//   3. every shard executes events with when <= min(gmin + lookahead - 1,
//      limit) concurrently, with the deferral horizon armed at
//      gmin + lookahead.
//
// The lookahead is the minimum cross-shard wire propagation delay (set by
// Fabric::finalize), so no shard can receive a cross-shard event inside the
// window it is executing: any remote deposit emitted during the window lands
// at >= t_sched + lookahead >= gmin + lookahead, past every window end.
//
// Determinism: within one shard a window executes in exactly sequential
// (when, seq) order. Across shards, all events at or past the horizon —
// local or remote — are funneled through one merge sorted by
// (when, t_sched, src_shard, seq), where t_sched is the emitting shard's
// clock and seq its per-shard emit counter (shared between the deferral
// path and the mailbox path, so one tick's emissions keep program order).
// Sequentially, same-`when` events execute in scheduling order, and
// scheduling order is exactly t_sched order (ties broken by emit order);
// the merge reproduces it, so every workload result, checksum, and stats
// export is bit-identical to the sequential engine at any shard count.
// tests/workloads/golden_test.cpp pins this on every registered workload.
//
// shards == 1 is a degenerate fast path: no worker threads, no horizon, no
// mailboxes — run()/run_until() delegate directly to the one Simulator.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/simulator.hpp"
#include "sim/units.hpp"

namespace gputn::sim {

class ShardEngine {
 public:
  explicit ShardEngine(int shards);
  ~ShardEngine();
  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  int shards() const { return static_cast<int>(sims_.size()); }
  Simulator& shard(int s) { return *sims_[static_cast<std::size_t>(s)]; }
  const Simulator& shard(int s) const {
    return *sims_[static_cast<std::size_t>(s)];
  }

  /// Conservative lookahead in picoseconds. Must be > 0 before the first
  /// multi-shard run; Fabric::finalize sets it to the minimum cross-shard
  /// link propagation delay (or an effectively-unbounded value when no
  /// edge crosses shards).
  void set_lookahead(Tick la) { lookahead_ = la; }
  Tick lookahead() const { return lookahead_; }

  /// Cross-shard deposit: run `fn` on shard `dst` at absolute time `when`.
  /// Must be called from shard `src`'s window (its worker thread) with
  /// when >= shard(src).now() + lookahead(); the event is mailboxed and
  /// merged at the next barrier.
  void post(int src, int dst, Tick when, EventFn fn);

  /// Drain every shard, then align all clocks at the global last-event
  /// time (sequential run() semantics: one clock). Returns events executed.
  std::uint64_t run();
  /// Run all events with when <= `until`, then park every clock at
  /// `until` (sequential run_until semantics). Returns events executed.
  std::uint64_t run_until(Tick until);

  /// One conservative round: barrier-merge pending deposits, then execute
  /// one lookahead window bounded by `limit`. Returns false — after the
  /// merge, without running a window — when nothing is pending at or below
  /// `limit`. Between calls the shards are quiescent: the caller may
  /// inspect cross-shard state and schedule follow-up events (the serving
  /// workload uses this for its setup-release barrier).
  bool step(Tick limit);
  /// After step() returns false: park every shard clock at `until`.
  void finish_until(Tick until);
  /// Earliest pending timestamp across all shards (kTickMax when idle),
  /// after folding in any mailboxed deposits. step(next_time()) executes a
  /// single-tick window — the serving workload's setup phase uses this so
  /// no shard clock overruns the traffic-release tick.
  Tick next_time();

  int live_processes() const;
  std::uint64_t executed_events() const;
  void reap_processes();

  /// Deterministic per-shard telemetry, exported as util.shard<i>.*:
  /// window spans are virtual time, so the numbers depend only on the
  /// partition and the event trace, never on thread scheduling.
  struct ShardStats {
    std::uint64_t events = 0;         ///< events executed in windows
    std::uint64_t busy_ps = 0;        ///< window span sum when >=1 event ran
    std::uint64_t idle_ps = 0;        ///< window span sum when none did
    std::uint64_t barrier_waits = 0;  ///< windows this shard sat idle
  };
  const std::vector<ShardStats>& shard_stats() const { return stats_; }
  std::uint64_t rounds() const { return rounds_; }

 private:
  struct Mail {
    Tick when;
    Tick t_sched;
    std::uint64_t seq;
    EventFn fn;
  };
  struct MergeItem {
    Tick when;
    Tick t_sched;
    int src;
    std::uint64_t seq;
    EventFn fn;
  };

  /// Re-insert all mailboxed and deferred events in canonical order.
  void merge_barrier();
  void worker_main(int s);

  std::vector<std::unique_ptr<Simulator>> sims_;
  Tick lookahead_ = 0;
  // Per-shard deferral buffers and emit counters (wired into each
  // Simulator via set_defer_sink); per-(src,dst) mailboxes at src*S+dst.
  // During a window, shard s's worker is the only writer of deferred_[s],
  // emit_seq_[s], and mail_[s*S+..]; the round barrier (mu_) publishes
  // them to the merging main thread — no atomics anywhere on the path.
  std::vector<std::vector<Simulator::Deferred>> deferred_;
  std::vector<std::uint64_t> emit_seq_;
  std::vector<std::vector<Mail>> mail_;
  std::vector<MergeItem> merge_scratch_;

  std::vector<ShardStats> stats_;
  std::uint64_t rounds_ = 0;

  // Round protocol: main arms win_limit_/epoch_ under mu_ and wakes the
  // workers; each runs one window and reports back via done_.
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t epoch_ = 0;
  int done_ = 0;
  Tick win_limit_ = 0;
  bool stop_ = false;
  std::vector<std::uint64_t> win_executed_;
  std::vector<std::exception_ptr> win_error_;
  std::vector<std::thread> workers_;
};

}  // namespace gputn::sim

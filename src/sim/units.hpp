// Simulation time and rate units.
//
// All simulated time is kept in integer picoseconds (`Tick`). Picosecond
// resolution lets us express both sub-nanosecond serialization delays
// (100 Gbps == 80 ps/byte) and multi-millisecond workloads without rounding.
#pragma once

#include <concepts>
#include <cstdint>
#include <string>

namespace gputn::sim {

/// Simulated time in picoseconds.
using Tick = std::int64_t;

inline constexpr Tick kTickMax = INT64_MAX;

/// Construct a Tick from picoseconds / nanoseconds / microseconds /
/// milliseconds / seconds. Integral arguments stay exact; floating-point
/// arguments round to the nearest picosecond.
template <std::integral T>
constexpr Tick ps(T v) { return static_cast<Tick>(v); }
template <std::integral T>
constexpr Tick ns(T v) { return static_cast<Tick>(v) * 1'000; }
template <std::integral T>
constexpr Tick us(T v) { return static_cast<Tick>(v) * 1'000'000; }
template <std::integral T>
constexpr Tick ms(T v) { return static_cast<Tick>(v) * 1'000'000'000; }
template <std::integral T>
constexpr Tick sec(T v) { return static_cast<Tick>(v) * 1'000'000'000'000; }

constexpr Tick ns(double v) { return static_cast<Tick>(v * 1e3 + 0.5); }
constexpr Tick us(double v) { return static_cast<Tick>(v * 1e6 + 0.5); }
constexpr Tick ms(double v) { return static_cast<Tick>(v * 1e9 + 0.5); }
constexpr Tick sec(double v) { return static_cast<Tick>(v * 1e12 + 0.5); }

/// Convert a Tick back to floating-point units for reporting.
constexpr double to_ns(Tick t) { return static_cast<double>(t) / 1e3; }
constexpr double to_us(Tick t) { return static_cast<double>(t) / 1e6; }
constexpr double to_ms(Tick t) { return static_cast<double>(t) / 1e9; }
constexpr double to_sec(Tick t) { return static_cast<double>(t) / 1e12; }

/// Link / DMA bandwidth. Stored as bytes per second so configs can be given
/// in natural units (e.g. `Bandwidth::gbps(100)`).
class Bandwidth {
 public:
  constexpr Bandwidth() = default;

  static constexpr Bandwidth bytes_per_sec(double v) { return Bandwidth(v); }
  static constexpr Bandwidth gbps(double gigabits) {
    return Bandwidth(gigabits * 1e9 / 8.0);
  }
  static constexpr Bandwidth gibps(double gibibytes) {
    return Bandwidth(gibibytes * 1024.0 * 1024.0 * 1024.0);
  }

  constexpr double bytes_per_second() const { return bytes_per_sec_; }

  /// Time to serialize `bytes` at this bandwidth. Zero-byte transfers take
  /// zero time; a zero bandwidth is invalid and asserts via division guard.
  constexpr Tick serialize(std::uint64_t bytes) const {
    if (bytes == 0) return 0;
    return static_cast<Tick>(static_cast<double>(bytes) / bytes_per_sec_ * 1e12 +
                             0.5);
  }

  constexpr bool valid() const { return bytes_per_sec_ > 0.0; }

 private:
  explicit constexpr Bandwidth(double bps) : bytes_per_sec_(bps) {}
  double bytes_per_sec_ = 0.0;
};

/// Human-readable time for logs: picks ns/us/ms based on magnitude.
std::string format_time(Tick t);

}  // namespace gputn::sim

// Lazy coroutine task type used for all simulated processes.
//
// `Task<T>` is a lazily-started coroutine: it begins execution when awaited
// and resumes its awaiter on completion via symmetric transfer. Simulated
// hardware agents (CPU threads, GPU work-groups, NIC engines) are written as
// `Task<>` coroutines that `co_await` delays, events, and each other; the
// `Simulator` (see simulator.hpp) owns detached top-level processes.
//
// Tasks are single-owner move-only values. Exceptions thrown inside a task
// propagate to the awaiter at `co_await`.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <utility>

namespace gputn::sim {

template <typename T = void>
class [[nodiscard]] Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      // Resume whoever awaited us; if nobody did (detached frame managed by
      // the simulator), stay suspended so the owner can destroy the frame.
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

template <typename T>
struct Promise : PromiseBase {
  alignas(T) unsigned char storage[sizeof(T)];
  bool has_value = false;

  Task<T> get_return_object() noexcept;
  template <typename U>
  void return_value(U&& v) {
    ::new (static_cast<void*>(storage)) T(std::forward<U>(v));
    has_value = true;
  }
  T& value() { return *reinterpret_cast<T*>(storage); }
  ~Promise() {
    if (has_value) value().~T();
  }
};

template <>
struct Promise<void> : PromiseBase {
  Task<void> get_return_object() noexcept;
  void return_void() noexcept {}
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::Promise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.done(); }

  /// Awaiting a Task starts it and resumes the awaiter when it finishes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> awaiter) noexcept {
        handle.promise().continuation = awaiter;
        return handle;  // symmetric transfer: start the child now
      }
      T await_resume() {
        auto& p = handle.promise();
        if (p.exception) std::rethrow_exception(p.exception);
        if constexpr (!std::is_void_v<T>) {
          return std::move(p.value());
        }
      }
    };
    return Awaiter{handle_};
  }

  /// Release ownership of the coroutine frame (used by Simulator::spawn,
  /// which then manages the frame's lifetime).
  Handle release() { return std::exchange(handle_, {}); }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  Handle handle_;
};

namespace detail {

template <typename T>
Task<T> Promise<T>::get_return_object() noexcept {
  return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Task<void> Promise<void>::get_return_object() noexcept {
  return Task<void>(std::coroutine_handle<Promise<void>>::from_promise(*this));
}

}  // namespace detail

}  // namespace gputn::sim

// Small-buffer-optimized move-only callable used for simulator events.
//
// The engine schedules millions of tiny closures — coroutine resumptions,
// member calls with a couple of captured words, packet hand-offs. With
// `std::function` each of those may heap-allocate and always pays the
// copyable-wrapper machinery. `EventFn` stores any callable up to
// `kInlineBytes` (chosen to cover every closure on the simulator's
// per-packet hot paths) inline in the event record; larger or over-aligned
// callables — e.g. a triggered-put registration carrying a full PutDesc,
// which happens once per message, not once per packet — fall back to one
// heap allocation. Move-only, invoke-at-most-once.
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace gputn::sim {

class EventFn {
 public:
  /// Inline capture budget. 40 bytes covers the per-packet closures: a
  /// coroutine handle (8), process/timer bookkeeping (<= 24), and a link or
  /// switch packet hand-off (32: owner pointer + net::Packet). It is chosen
  /// so a calendar-queue record (when + seq + EventFn) is exactly one cache
  /// line; per-message control closures that exceed it take the heap path.
  static constexpr std::size_t kInlineBytes = 40;

  EventFn() = default;

  /// Dedicated fast path for the dominant event: resume a coroutine.
  EventFn(std::coroutine_handle<> h) noexcept {  // NOLINT(runtime/explicit)
    ::new (static_cast<void*>(buf_)) std::coroutine_handle<>(h);
    vt_ = &kResumeVt;
  }

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
             !std::is_same_v<std::remove_cvref_t<F>, std::coroutine_handle<>> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  EventFn(F&& f) {  // NOLINT(runtime/explicit)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &InlineOps<Fn>::vt;
    } else {
      ::new (static_cast<void*>(buf_))
          Fn*(new Fn(std::forward<F>(f)));
      vt_ = &HeapOps<Fn>::vt;
    }
  }

  EventFn(EventFn&& o) noexcept : vt_(o.vt_) {
    if (vt_ != nullptr) {
      relocate_from(o);
    }
  }

  EventFn& operator=(EventFn&& o) noexcept {
    if (this != &o) {
      reset();
      if (o.vt_ != nullptr) {
        vt_ = o.vt_;
        relocate_from(o);
      }
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

  void operator()() { vt_->invoke(buf_); }

 private:
  struct VTable {
    void (*invoke)(void* storage);
    /// Move-construct into `dst` from `src`, then destroy `src`. Null when
    /// a plain byte copy of the buffer relocates the callable — the common
    /// case (trivially-relocatable captures, heap pointers, coroutine
    /// handles), kept as an inline memcpy instead of an indirect call
    /// because event records relocate several times on the way through the
    /// calendar queue.
    void (*relocate)(void* dst, void* src) noexcept;
    /// Null when destruction is a no-op (trivially destructible callable).
    void (*destroy)(void* storage) noexcept;
  };

  template <typename Fn>
  struct InlineOps {
    static constexpr bool kTrivialRelocate =
        std::is_trivially_move_constructible_v<Fn> &&
        std::is_trivially_destructible_v<Fn>;
    static void invoke(void* s) { (*static_cast<Fn*>(s))(); }
    static void relocate(void* dst, void* src) noexcept {
      Fn* f = static_cast<Fn*>(src);
      ::new (dst) Fn(std::move(*f));
      f->~Fn();
    }
    static void destroy(void* s) noexcept { static_cast<Fn*>(s)->~Fn(); }
    static constexpr VTable vt{
        &invoke, kTrivialRelocate ? nullptr : &relocate,
        std::is_trivially_destructible_v<Fn> ? nullptr : &destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn*& slot(void* s) { return *static_cast<Fn**>(s); }
    static void invoke(void* s) { (*slot(s))(); }
    static void destroy(void* s) noexcept { delete slot(s); }
    // Relocation is copying the owning pointer: the byte-copy path.
    static constexpr VTable vt{&invoke, nullptr, &destroy};
  };

  static void resume_invoke(void* s) {
    static_cast<std::coroutine_handle<>*>(s)->resume();
  }
  static constexpr VTable kResumeVt{&resume_invoke, nullptr, nullptr};

  /// Precondition: vt_ == o.vt_ != nullptr. Leaves `o` empty.
  void relocate_from(EventFn& o) noexcept {
    if (vt_->relocate != nullptr) {
      vt_->relocate(buf_, o.buf_);
    } else {
      std::memcpy(buf_, o.buf_, kInlineBytes);
    }
    o.vt_ = nullptr;
  }

  void reset() noexcept {
    if (vt_ != nullptr) {
      if (vt_->destroy != nullptr) vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const VTable* vt_ = nullptr;
};

}  // namespace gputn::sim

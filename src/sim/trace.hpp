// Chrome-tracing (chrome://tracing / Perfetto) export of simulation
// timelines.
//
// Components emit spans ("X" events) and instants ("i" events) onto named
// lanes; write_json() produces a file loadable in any trace viewer, which
// is the practical way to inspect protocol interleavings (who waited on
// whom, where the kernel boundary costs sit) beyond what the ASCII
// timelines of bench/fig03 show.
//
// Flow events (ph "s"/"t"/"f" sharing an id) bind to the enclosing slice on
// their lane and make the viewer draw causality arrows across lanes — e.g.
// GPU trigger store -> threshold fire -> NIC tx -> switch hop -> remote
// deposit for one message. Every emitter may attach a preformatted JSON
// `args` object ("{...}") shown in the viewer's detail pane.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sim/units.hpp"

namespace gputn::sim {

class TraceRecorder {
 public:
  /// Record a completed span [begin, end) on `lane`. `args`, when
  /// non-empty, must be a JSON object (including braces).
  void span(const std::string& lane, const std::string& name,
            const std::string& category, Tick begin, Tick end,
            std::string args = {});
  /// Record an instantaneous event.
  void instant(const std::string& lane, const std::string& name,
               const std::string& category, Tick at, std::string args = {});

  /// Flow events: a begin/step/end triple sharing `id` draws arrows between
  /// the slices enclosing each event (same lane + timestamp). All events of
  /// one flow should use the same name and category.
  void flow_begin(const std::string& lane, const std::string& name,
                  const std::string& category, Tick at, std::uint64_t id,
                  std::string args = {});
  void flow_step(const std::string& lane, const std::string& name,
                 const std::string& category, Tick at, std::uint64_t id,
                 std::string args = {});
  void flow_end(const std::string& lane, const std::string& name,
                const std::string& category, Tick at, std::uint64_t id,
                std::string args = {});

  std::size_t event_count() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Serialize to Chrome Trace Event JSON (returns the JSON text).
  std::string to_json() const;
  /// Stream the JSON to `os` without materializing it in one string.
  void write_json(std::ostream& os) const;
  /// Write to a file; returns false on I/O failure.
  bool write_json(const std::string& path) const;

 private:
  /// Chrome trace phase. kFlowStart/Step/End serialize as "s"/"t"/"f".
  enum class Phase : char {
    kSpan = 'X',
    kInstant = 'i',
    kFlowStart = 's',
    kFlowStep = 't',
    kFlowEnd = 'f',
  };
  struct Event {
    int lane;
    std::string name;
    std::string category;
    Tick begin;
    Tick duration;  ///< spans only
    Phase phase;
    std::uint64_t flow_id;  ///< flow events only
    std::string args;       ///< preformatted JSON object, may be empty
  };
  int lane_id(const std::string& lane);
  void flow(Phase ph, const std::string& lane, const std::string& name,
            const std::string& category, Tick at, std::uint64_t id,
            std::string args);

  std::map<std::string, int> lanes_;
  std::vector<Event> events_;
};

}  // namespace gputn::sim

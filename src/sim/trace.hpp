// Chrome-tracing (chrome://tracing / Perfetto) export of simulation
// timelines.
//
// Components emit spans ("X" events) and instants ("i" events) onto named
// lanes; write_json() produces a file loadable in any trace viewer, which
// is the practical way to inspect protocol interleavings (who waited on
// whom, where the kernel boundary costs sit) beyond what the ASCII
// timelines of bench/fig03 show.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/units.hpp"

namespace gputn::sim {

class TraceRecorder {
 public:
  /// Record a completed span [begin, end) on `lane`.
  void span(const std::string& lane, const std::string& name,
            const std::string& category, Tick begin, Tick end);
  /// Record an instantaneous event.
  void instant(const std::string& lane, const std::string& name,
               const std::string& category, Tick at);

  std::size_t event_count() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Serialize to Chrome Trace Event JSON (returns the JSON text).
  std::string to_json() const;
  /// Write to a file; returns false on I/O failure.
  bool write_json(const std::string& path) const;

 private:
  struct Event {
    int lane;
    std::string name;
    std::string category;
    Tick begin;
    Tick duration;  ///< < 0 for instants
  };
  int lane_id(const std::string& lane);

  std::map<std::string, int> lanes_;
  std::vector<Event> events_;
};

}  // namespace gputn::sim

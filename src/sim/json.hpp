// Shared minimal JSON support: RFC 8259 string escaping for the exporters
// and the one hand-rolled reader every consumer shares.
//
// The reader (gputn::sim::json) covers the subset our own exporters emit —
// objects, arrays, strings, numbers, bools, null — plus anything a
// hand-edited baseline file may reasonably contain. It used to exist three
// times (obs/json_read.hpp for report/analyze, tests/support/json_lite.hpp
// for test assertions); the copies drifted, so the parser now lives here
// once with both error disciplines on top of the same code path:
//
//   * parse()      throws std::runtime_error with a byte offset — the CLI
//                  turns that into a nonzero exit naming the offending file
//   * try_parse()  returns std::nullopt on any syntax error, so
//                  EXPECT_TRUE(try_parse(text).has_value()) doubles as a
//                  strict validity check in tests
//
// Malformed-input behavior of both entry points is pinned by
// tests/sim/json_reader_test.cpp.
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace gputn::sim {

/// RFC 8259 string escaping: quote, backslash, the common control-character
/// shorthands, and \u00XX for the rest of the C0 range.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += hex;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

namespace json {

struct Value;
using Object = std::map<std::string, Value>;
using Array = std::vector<Value>;

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::shared_ptr<Array> array;
  std::shared_ptr<Object> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool has(const std::string& key) const {
    return is_object() && object->count(key) > 0;
  }
  const Value& at(const std::string& key) const { return object->at(key); }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("invalid JSON at byte " + std::to_string(pos_) +
                             ": " + what);
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect(char c, const char* ctx) {
    if (!consume(c)) fail(std::string("expected '") + c + "' in " + ctx);
  }
  void literal(const char* word) {
    std::size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) fail("unrecognized token");
    pos_ += n;
  }

  std::string string_token() {
    expect('"', "string");
    std::string out;
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("control char in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      char esc = s_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(s_[pos_ + i]))) {
              fail("bad \\u escape");
            }
          }
          // Our exporters only escape ASCII; decode the low byte.
          out.push_back(static_cast<char>(
              std::strtol(s_.substr(pos_, 4).c_str(), nullptr, 16)));
          pos_ += 4;
          break;
        }
        default:
          fail("unknown escape");
      }
    }
    fail("unterminated string");
  }

  Value value() {
    skip_ws();
    if (pos_ >= s_.size()) fail("unexpected end of input");
    char c = s_[pos_];
    Value v;
    if (c == '{') {
      ++pos_;
      v.kind = Value::Kind::kObject;
      v.object = std::make_shared<Object>();
      skip_ws();
      if (consume('}')) return v;
      while (true) {
        std::string key = string_token();
        expect(':', "object");
        (*v.object)[key] = value();
        if (consume(',')) continue;
        expect('}', "object");
        return v;
      }
    }
    if (c == '[') {
      ++pos_;
      v.kind = Value::Kind::kArray;
      v.array = std::make_shared<Array>();
      skip_ws();
      if (consume(']')) return v;
      while (true) {
        v.array->push_back(value());
        if (consume(',')) continue;
        expect(']', "array");
        return v;
      }
    }
    if (c == '"') {
      v.kind = Value::Kind::kString;
      v.string = string_token();
      return v;
    }
    if (c == 't') {
      literal("true");
      v.kind = Value::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (c == 'f') {
      literal("false");
      v.kind = Value::Kind::kBool;
      return v;
    }
    if (c == 'n') {
      literal("null");
      return v;
    }
    std::size_t start = pos_;
    if (c == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("unrecognized token");
    std::string tok = s_.substr(start, pos_ - start);
    char* end = nullptr;
    v.number = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number");
    v.kind = Value::Kind::kNumber;
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

/// Strict parse; throws std::runtime_error ("invalid JSON at byte N: ...")
/// on malformed input.
inline Value parse(const std::string& text) { return Parser(text).parse(); }

/// Same parser, nullopt discipline: any syntax error returns std::nullopt.
inline std::optional<Value> try_parse(const std::string& text) {
  try {
    return Parser(text).parse();
  } catch (const std::runtime_error&) {
    return std::nullopt;
  }
}

}  // namespace json

}  // namespace gputn::sim

// Minimal JSON string escaping shared by the trace and stats serializers.
#pragma once

#include <cstdio>
#include <string>

namespace gputn::sim {

/// RFC 8259 string escaping: quote, backslash, the common control-character
/// shorthands, and \u00XX for the rest of the C0 range.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += hex;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace gputn::sim

#include "sim/trace.hpp"

#include <cstdio>
#include <fstream>

namespace gputn::sim {

int TraceRecorder::lane_id(const std::string& lane) {
  auto it = lanes_.find(lane);
  if (it != lanes_.end()) return it->second;
  int id = static_cast<int>(lanes_.size()) + 1;
  lanes_.emplace(lane, id);
  return id;
}

void TraceRecorder::span(const std::string& lane, const std::string& name,
                         const std::string& category, Tick begin, Tick end) {
  events_.push_back(Event{lane_id(lane), name, category, begin,
                          end > begin ? end - begin : 0});
}

void TraceRecorder::instant(const std::string& lane, const std::string& name,
                            const std::string& category, Tick at) {
  events_.push_back(Event{lane_id(lane), name, category, at, -1});
}

namespace {
/// RFC 8259 string escaping: quote, backslash, the common control-character
/// shorthands, and \u00XX for the rest of the C0 range.
std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += hex;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}
}  // namespace

std::string TraceRecorder::to_json() const {
  std::string out = "[\n";
  char buf[512];
  // Thread-name metadata so viewers show lane names.
  for (const auto& [name, id] : lanes_) {
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":"
                  "\"thread_name\",\"args\":{\"name\":\"%s\"}},\n",
                  id, escape(name).c_str());
    out += buf;
  }
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    if (e.duration >= 0) {
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"name\":\"%s\","
                    "\"cat\":\"%s\",\"ts\":%.3f,\"dur\":%.3f}",
                    e.lane, escape(e.name).c_str(), escape(e.category).c_str(),
                    to_us(e.begin), to_us(e.duration));
    } else {
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\":\"i\",\"pid\":1,\"tid\":%d,\"name\":\"%s\","
                    "\"cat\":\"%s\",\"ts\":%.3f,\"s\":\"t\"}",
                    e.lane, escape(e.name).c_str(), escape(e.category).c_str(),
                    to_us(e.begin));
    }
    out += buf;
    out += i + 1 < events_.size() ? ",\n" : "\n";
  }
  out += "]\n";
  return out;
}

bool TraceRecorder::write_json(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_json();
  return static_cast<bool>(f);
}

}  // namespace gputn::sim

#include "sim/trace.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "sim/json.hpp"

namespace gputn::sim {

int TraceRecorder::lane_id(const std::string& lane) {
  auto it = lanes_.find(lane);
  if (it != lanes_.end()) return it->second;
  int id = static_cast<int>(lanes_.size()) + 1;
  lanes_.emplace(lane, id);
  return id;
}

void TraceRecorder::span(const std::string& lane, const std::string& name,
                         const std::string& category, Tick begin, Tick end,
                         std::string args) {
  events_.push_back(Event{lane_id(lane), name, category, begin,
                          end > begin ? end - begin : 0, Phase::kSpan, 0,
                          std::move(args)});
}

void TraceRecorder::instant(const std::string& lane, const std::string& name,
                            const std::string& category, Tick at,
                            std::string args) {
  events_.push_back(Event{lane_id(lane), name, category, at, 0,
                          Phase::kInstant, 0, std::move(args)});
}

void TraceRecorder::flow(Phase ph, const std::string& lane,
                         const std::string& name,
                         const std::string& category, Tick at,
                         std::uint64_t id, std::string args) {
  events_.push_back(
      Event{lane_id(lane), name, category, at, 0, ph, id, std::move(args)});
}

void TraceRecorder::flow_begin(const std::string& lane,
                               const std::string& name,
                               const std::string& category, Tick at,
                               std::uint64_t id, std::string args) {
  flow(Phase::kFlowStart, lane, name, category, at, id, std::move(args));
}

void TraceRecorder::flow_step(const std::string& lane,
                              const std::string& name,
                              const std::string& category, Tick at,
                              std::uint64_t id, std::string args) {
  flow(Phase::kFlowStep, lane, name, category, at, id, std::move(args));
}

void TraceRecorder::flow_end(const std::string& lane, const std::string& name,
                             const std::string& category, Tick at,
                             std::uint64_t id, std::string args) {
  flow(Phase::kFlowEnd, lane, name, category, at, id, std::move(args));
}

namespace {
/// Microsecond timestamp. Six decimals represent integer-picosecond ticks
/// exactly, so ts + dur of a span always equals the end tick a concurrent
/// event (e.g. a flow arrow terminator) was stamped with. Numbers only, so
/// a small fixed buffer cannot truncate anything.
std::string fmt_us(Tick t) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", to_us(t));
  return buf;
}
}  // namespace

void TraceRecorder::write_json(std::ostream& os) const {
  os << "[\n";
  bool first = true;
  auto emit = [&os, &first](const std::string& line) {
    if (!first) os << ",\n";
    first = false;
    os << line;
  };
  // Thread-name metadata so viewers show lane names. Event lines are built
  // with string concatenation: arbitrarily long lane/name/args strings are
  // emitted intact (no fixed-size formatting buffer to truncate them).
  for (const auto& [name, id] : lanes_) {
    emit("{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(id) +
         ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
         json_escape(name) + "\"}}");
  }
  for (const Event& e : events_) {
    std::string line = "{\"ph\":\"";
    line.push_back(static_cast<char>(e.phase));
    line += "\",\"pid\":1,\"tid\":" + std::to_string(e.lane) +
            ",\"name\":\"" + json_escape(e.name) + "\",\"cat\":\"" +
            json_escape(e.category) + "\",\"ts\":" + fmt_us(e.begin);
    switch (e.phase) {
      case Phase::kSpan:
        line += ",\"dur\":" + fmt_us(e.duration);
        break;
      case Phase::kInstant:
        line += ",\"s\":\"t\"";
        break;
      case Phase::kFlowStart:
      case Phase::kFlowStep:
        line += ",\"id\":" + std::to_string(e.flow_id);
        break;
      case Phase::kFlowEnd:
        // Bind the arrow head to the enclosing slice rather than the next
        // slice to begin on the lane.
        line += ",\"id\":" + std::to_string(e.flow_id) + ",\"bp\":\"e\"";
        break;
    }
    if (!e.args.empty()) line += ",\"args\":" + e.args;
    line += "}";
    emit(line);
  }
  os << "\n]\n";
}

std::string TraceRecorder::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

bool TraceRecorder::write_json(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write_json(f);
  return static_cast<bool>(f);
}

}  // namespace gputn::sim

#include "sim/stats.hpp"

#include <cstdio>

namespace gputn::sim {

std::string StatRegistry::to_string() const {
  std::string out;
  char buf[256];
  for (const auto& [name, value] : counters_) {
    std::snprintf(buf, sizeof(buf), "%s = %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += buf;
  }
  for (const auto& [name, acc] : accums_) {
    std::snprintf(buf, sizeof(buf),
                  "%s: n=%llu mean=%.3f min=%.3f max=%.3f sd=%.3f\n",
                  name.c_str(), static_cast<unsigned long long>(acc.count()),
                  acc.mean(), acc.min(), acc.max(), acc.stddev());
    out += buf;
  }
  return out;
}

}  // namespace gputn::sim

#include "sim/stats.hpp"

#include <cstdio>

#include "sim/json.hpp"

namespace gputn::sim {

double Histogram::quantile(double q) const {
  std::uint64_t n = acc_.count();
  if (n == 0) return 0.0;
  // A single sample IS every quantile; interpolating across its pow2
  // bucket would report e.g. 6 for the lone sample 7.
  if (n == 1) return acc_.max();
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  double target = q * static_cast<double>(n);
  double cum = 0.0;
  for (int b = 0; b < num_buckets(); ++b) {
    double c = static_cast<double>(buckets_[b]);
    if (c == 0.0) continue;
    if (cum + c >= target) {
      // Bucket 0 holds only zeros; bucket b >= 1 covers [2^(b-1), 2^b).
      double lo = b == 0 ? 0.0 : std::ldexp(1.0, b - 1);
      double hi = b == 0 ? 0.0 : std::ldexp(1.0, b);
      double frac = (target - cum) / c;
      double v = lo + (hi - lo) * frac;
      // Clamp to the observed range on both sides: the covering bucket's
      // edges can lie outside [min, max] (low quantiles in a sparsely
      // filled bucket used to come out below the smallest sample).
      return std::min(std::max(v, acc_.min()), acc_.max());
    }
    cum += c;
  }
  return acc_.max();
}

std::string StatRegistry::to_string() const {
  std::string out;
  char buf[256];
  for (const auto& [name, value] : counters_) {
    std::snprintf(buf, sizeof(buf), "%s = %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += buf;
  }
  for (const auto& [name, acc] : accums_) {
    std::snprintf(buf, sizeof(buf),
                  "%s: n=%llu mean=%.3f min=%.3f max=%.3f sd=%.3f\n",
                  name.c_str(), static_cast<unsigned long long>(acc.count()),
                  acc.mean(), acc.min(), acc.max(), acc.stddev());
    out += buf;
  }
  for (const auto& [name, h] : histos_) {
    std::snprintf(buf, sizeof(buf),
                  "%s: n=%llu mean=%.3f p50=%.3f p90=%.3f p99=%.3f "
                  "p999=%.3f max=%.3f\n",
                  name.c_str(), static_cast<unsigned long long>(h.count()),
                  h.mean(), h.quantile(0.50), h.quantile(0.90),
                  h.quantile(0.99), h.quantile(0.999), h.max());
    out += buf;
  }
  return out;
}

namespace {

std::string fmt_num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string fmt_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::string stats_json(const StatRegistry& reg) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : reg.counters()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + fmt_u64(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"accumulators\": {";
  first = true;
  for (const auto& [name, acc] : reg.accumulators()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": {\"count\": " +
           fmt_u64(acc.count()) + ", \"mean\": " + fmt_num(acc.mean()) +
           ", \"min\": " + fmt_num(acc.min()) +
           ", \"max\": " + fmt_num(acc.max()) +
           ", \"stddev\": " + fmt_num(acc.stddev()) +
           ", \"sum\": " + fmt_num(acc.sum()) + "}";
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : reg.histograms()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": {\"count\": " +
           fmt_u64(h.count()) + ", \"mean\": " + fmt_num(h.mean()) +
           ", \"min\": " + fmt_num(h.min()) +
           ", \"max\": " + fmt_num(h.max()) +
           ", \"p50\": " + fmt_num(h.quantile(0.50)) +
           ", \"p90\": " + fmt_num(h.quantile(0.90)) +
           ", \"p99\": " + fmt_num(h.quantile(0.99)) +
           ", \"p999\": " + fmt_num(h.quantile(0.999)) + ", \"buckets\": [";
    for (int b = 0; b < h.num_buckets(); ++b) {
      if (b > 0) out += ", ";
      out += fmt_u64(h.bucket_count(b));
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

}  // namespace gputn::sim

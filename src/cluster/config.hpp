// System configuration (Table 2) bundling all component configs.
#pragma once

#include <cstdint>
#include <string>

#include "core/triggered.hpp"
#include "cpu/cpu.hpp"
#include "gpu/gpu.hpp"
#include "net/fabric.hpp"
#include "nic/nic.hpp"

namespace gputn::cluster {

struct SystemConfig {
  cpu::CpuConfig cpu;
  gpu::GpuConfig gpu;
  nic::NicConfig nic;
  core::TriggeredNicConfig triggered;
  net::FabricConfig fabric;
  /// Backing DRAM per node. Sized for the largest workload; raise for
  /// bigger experiments.
  std::uint64_t dram_bytes = 64ull << 20;

  /// The paper's simulation configuration (Table 2): returns the defaults,
  /// spelled out for discoverability.
  static SystemConfig table2();

  /// Human-readable dump (bench/tab02_config prints this).
  std::string describe() const;
};

}  // namespace gputn::cluster

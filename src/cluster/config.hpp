// System configuration (Table 2) bundling all component configs.
#pragma once

#include <cstdint>
#include <string>

#include "core/triggered.hpp"
#include "cpu/cpu.hpp"
#include "fault/fault.hpp"
#include "gpu/gpu.hpp"
#include "net/fabric.hpp"
#include "nic/nic.hpp"

namespace gputn::cluster {

struct SystemConfig {
  cpu::CpuConfig cpu;
  gpu::GpuConfig gpu;
  nic::NicConfig nic;
  core::TriggeredNicConfig triggered;
  net::FabricConfig fabric;
  /// Fabric fault injection (loss / corruption / jitter per link, plus
  /// scripted faults). When enabled() the cluster automatically switches
  /// every NIC to reliable delivery; when disabled (the default) the wire
  /// protocol is exactly the lossless one — zero extra messages.
  fault::FaultConfig fault;
  /// Backing DRAM per node. Sized for the largest workload; raise for
  /// bigger experiments.
  std::uint64_t dram_bytes = 64ull << 20;

  /// The paper's simulation configuration (Table 2): returns the defaults,
  /// spelled out for discoverability.
  static SystemConfig table2();

  /// Table 2 plus uniform packet loss on every link (reliable delivery is
  /// enabled implicitly by Cluster).
  static SystemConfig table2_with_loss(double loss_rate,
                                       std::uint64_t seed = 1);

  /// Human-readable dump (bench/tab02_config prints this).
  std::string describe() const;
};

}  // namespace gputn::cluster

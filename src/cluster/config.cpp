#include "cluster/config.hpp"

#include <cstdio>

namespace gputn::cluster {

SystemConfig SystemConfig::table2() {
  SystemConfig c;
  // CPU: 8-wide OOO, 4 GHz, 8 cores; DDR4 8 channels 2133 MHz.
  c.cpu.cores = 8;
  c.cpu.clock_ghz = 4.0;
  // GPU: 1 GHz, 24 compute units; 1.5 us launch / 1.5 us teardown (§5.1).
  c.gpu.cu_count = 24;
  c.gpu.clock_ghz = 1.0;
  c.gpu.launch_latency = sim::us(1.5);
  c.gpu.teardown_latency = sim::us(1.5);
  // Network: 100 ns link, 100 ns switch, 100 Gbps, star topology.
  c.fabric.bandwidth = sim::Bandwidth::gbps(100);
  c.fabric.link_latency = sim::ns(100);
  c.fabric.switch_latency = sim::ns(100);
  // Triggered ops: associative lookup, 16 simultaneous entries (§3.3) —
  // workloads that need more rounds in flight use the hash variant.
  c.triggered.table.lookup = core::LookupKind::kAssociative;
  c.triggered.table.associative_entries = 16;
  return c;
}

SystemConfig SystemConfig::table2_with_loss(double loss_rate,
                                            std::uint64_t seed) {
  SystemConfig c = table2();
  c.fault = fault::FaultConfig::uniform_loss(loss_rate, seed);
  return c;
}

std::string SystemConfig::describe() const {
  char buf[2048];
  std::snprintf(
      buf, sizeof(buf),
      "CPU:      %d cores @ %.1f GHz, %.0f flops/core/cycle, mem %.1f GB/s\n"
      "GPU:      %d CUs @ %.1f GHz, launch %.2f us, teardown %.2f us\n"
      "NIC:      doorbell %.0f ns, cmd fetch %.0f ns, rx pipe %.0f ns\n"
      "Trigger:  lookup=%s, entries=%d, update %.0f ns\n"
      "Network:  %.0f Gbps, link %.0f ns, switch %.0f ns, MTU %u B, "
      "%s/%s%s\n"
      "Faults:   %s (loss %.4f, corrupt %.4f, jitter <= %.0f ns, %zu scripted)\n"
      "DRAM:     %llu MiB per node\n",
      cpu.cores, cpu.clock_ghz, cpu.flops_per_core_per_cycle,
      cpu.mem_bandwidth.bytes_per_second() / 1e9, gpu.cu_count, gpu.clock_ghz,
      sim::to_us(gpu.launch_latency), sim::to_us(gpu.teardown_latency),
      sim::to_ns(nic.doorbell_latency), sim::to_ns(nic.cmd_fetch),
      sim::to_ns(nic.rx_pipeline),
      triggered.table.lookup == core::LookupKind::kAssociative ? "associative"
      : triggered.table.lookup == core::LookupKind::kHash      ? "hash"
                                                                : "linked-list",
      triggered.table.associative_entries, sim::to_ns(triggered.update_cost),
      fabric.bandwidth.bytes_per_second() * 8 / 1e9,
      sim::to_ns(fabric.link_latency), sim::to_ns(fabric.switch_latency),
      fabric.mtu_bytes, fabric.topology.c_str(), fabric.routing.c_str(),
      fabric.credits_per_port > 0
          ? (", " + std::to_string(fabric.credits_per_port) +
             " credits/port").c_str()
          : "",
      fault.enabled() ? "injected (reliable delivery on)" : "none (lossless)",
      fault.default_profile.loss_rate, fault.default_profile.corrupt_rate,
      sim::to_ns(fault.default_profile.jitter_max), fault.script.size(),
      static_cast<unsigned long long>(dram_bytes >> 20));
  return buf;
}

}  // namespace gputn::cluster

#include "cluster/cluster.hpp"

#include <string>

#include "obs/flight.hpp"
#include "obs/timeseries.hpp"

namespace gputn::cluster {

Node::Node(sim::Simulator& sim, net::Fabric& fabric,
           const SystemConfig& config)
    : memory_(config.dram_bytes),
      cpu_(sim, memory_, config.cpu),
      gpu_(sim, memory_, config.gpu),
      nic_(sim, memory_, fabric, config.nic),
      triggered_(sim, nic_, memory_, config.triggered),
      rt_(sim, cpu_, gpu_, nic_, triggered_, memory_) {}

void Cluster::install_faults() {
  if (!config_.fault.enabled()) return;
  // Faults on the wire: install the injectors and switch every NIC to
  // reliable delivery before any node (and thus any link) is built. The
  // injectors are deterministic per link (rng seeded from the link name),
  // so they are also naturally shard-safe: each link's packet sequence is
  // classified on the shard that owns the link.
  fault_ = std::make_unique<fault::FaultModel>(config_.fault);
  fabric_.set_fault_injector_provider([this](const std::string& name) {
    return fault_->injector_for(name);
  });
  config_.nic.reliability.enabled = true;
}

Cluster::Cluster(sim::Simulator& sim, SystemConfig config, int node_count)
    : sim_(&sim), config_(std::move(config)), fabric_(sim, config_.fabric) {
  install_faults();
  nodes_.reserve(node_count);
  for (int i = 0; i < node_count; ++i) {
    nodes_.push_back(std::make_unique<Node>(sim, fabric_, config_));
  }
  // All nodes are attached: build the switch graph now, so a bad topology
  // spec throws std::invalid_argument here instead of surfacing as a
  // mysterious stall on the first in-simulation send.
  fabric_.finalize();
}

Cluster::Cluster(sim::ShardEngine& engine, SystemConfig config, int node_count)
    : sim_(&engine.shard(0)),
      engine_(&engine),
      config_(std::move(config)),
      fabric_(engine.shard(0), config_.fabric) {
  const int S = engine.shards();
  std::vector<int> shard_of(static_cast<std::size_t>(node_count));
  for (int i = 0; i < node_count; ++i) {
    shard_of[static_cast<std::size_t>(i)] =
        static_cast<int>(static_cast<std::int64_t>(i) * S / node_count);
  }
  fabric_.set_sharding(&engine, std::move(shard_of));
  install_faults();
  nodes_.reserve(node_count);
  for (int i = 0; i < node_count; ++i) {
    nodes_.push_back(
        std::make_unique<Node>(fabric_.node_sim(i), fabric_, config_));
  }
  fabric_.finalize();
}

void Cluster::export_net_stats(sim::StatRegistry& out, sim::Tick window) const {
  fabric_.export_stats(out);
  if (fault_) fault_->export_stats(out);
  sim::Tick now = sim_->now();
  out.counter("util.window_ps") +=
      static_cast<std::uint64_t>(window >= 0 ? window : now);
  for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
    std::string p = "util.node" + std::to_string(i) + ".";
    Node& n = *nodes_[i];
    n.cpu().util().export_into(out, p + "cpu", now);
    n.gpu().cu_util().export_into(out, p + "gpu.cu", now);
    n.nic().cmd_util().export_into(out, p + "nic.cmd", now);
    n.nic().tx_dma_util().export_into(out, p + "dma.tx", now);
    n.nic().rx_dma_util().export_into(out, p + "dma.rx", now);
  }
  // Engine telemetry: per-shard window activity, plus a pseudo-resource
  // per shard whose "busy" time is the spans that shard sat out — the
  // report then ranks barrier waiting against real resources with no
  // report-side changes. Deterministic (virtual-time spans only), but by
  // construction a function of the partition: the golden suite strips
  // util.shard* before comparing stats across shard counts. Gated to
  // multi-shard runs so --shards 1 exports are byte-identical to the
  // sequential seed's.
  if (engine_ != nullptr && engine_->shards() > 1) {
    const auto& ss = engine_->shard_stats();
    for (std::size_t i = 0; i < ss.size(); ++i) {
      std::string p = "util.shard" + std::to_string(i);
      out.counter(p + ".busy_ps") += ss[i].busy_ps;
      out.counter(p + ".capacity") += 1;
      out.counter(p + ".ops") += ss[i].events;
      out.counter(p + ".barrier.busy_ps") += ss[i].idle_ps;
      out.counter(p + ".barrier.capacity") += 1;
      out.counter(p + ".barrier.ops") += ss[i].barrier_waits;
    }
    out.counter("util.engine.rounds") += engine_->rounds();
    out.counter("util.engine.lookahead_ps") +=
        static_cast<std::uint64_t>(engine_->lookahead());
  }
  for (const auto& node : nodes_) {
    const sim::StatRegistry& s = node->nic().stats();
    for (const auto& [name, value] : s.counters()) {
      if (name.rfind("rel.", 0) == 0) out.counter(name) += value;
    }
    for (const auto& [name, acc] : s.accumulators()) {
      if (name.rfind("rel.", 0) != 0) continue;
      // Exact Welford-state combination: the aggregate's count / mean /
      // min / max / stddev match a single accumulator fed every sample.
      out.accumulator(name).merge(acc);
    }
    // Per-stage latency histograms (lat.*, recorded at each destination
    // NIC) merge exactly bucket-wise, so cluster-wide p50/p90/p99 are as
    // good as the per-node ones.
    for (const auto& [name, h] : s.histograms()) {
      out.histogram(name).merge(h);
    }
  }
}

void Cluster::attach_flight(obs::FlightRecorder& flight) {
  obs::WireParams wire;
  wire.bytes_per_sec = config_.fabric.bandwidth.bytes_per_second();
  wire.link_latency_ps = config_.fabric.link_latency;
  wire.switch_latency_ps = config_.fabric.switch_latency;
  wire.mtu_bytes = config_.fabric.mtu_bytes;
  wire.header_bytes = config_.fabric.header_bytes;
  wire.per_packet_overhead = config_.fabric.per_packet_overhead;
  flight.set_wire(wire);
  if (engine_ != nullptr) {
    // Sharded runs record into per-node spools; flush_flight() replays
    // them into the recorder in a canonical order that is the same at
    // every shard count (including 1 — every engine-driven run takes this
    // path, so the dump never depends on --shards).
    flight_ = &flight;
    spools_.clear();
    for (int i = 0; i < size(); ++i) {
      spools_.push_back(
          std::make_unique<obs::FlightSpool>(node_sim(i).now_ptr(), i));
      nodes_[static_cast<std::size_t>(i)]->nic().set_flight(
          spools_.back().get());
    }
    return;
  }
  for (auto& node : nodes_) node->nic().set_flight(&flight);
}

void Cluster::flush_flight() {
  if (flight_ == nullptr) return;
  std::vector<obs::FlightSpool*> sp;
  sp.reserve(spools_.size());
  for (auto& s : spools_) sp.push_back(s.get());
  obs::replay_spools(std::move(sp), *flight_);
}

void Cluster::attach_timeseries(obs::TimeSeries& ts) {
  for (int i = 0; i < size(); ++i) {
    std::string id = std::to_string(i);
    net::Link& up = fabric_.uplink(i);
    net::Link& down = fabric_.downlink(i);
    ts.add_counter("link.up" + id + ".bytes",
                   [&up] { return up.bytes_transmitted(); });
    ts.add_counter("link.down" + id + ".bytes",
                   [&down] { return down.bytes_transmitted(); });
    Node& n = node(i);
    nic::Nic& nic = n.nic();
    ts.add_gauge("node" + id + ".nic.cmdq",
                 [&nic] { return static_cast<std::uint64_t>(
                     nic.cmd_queue_depth()); });
    ts.add_gauge("node" + id + ".nic.unacked",
                 [&nic] { return static_cast<std::uint64_t>(
                     nic.reliability().unacked()); });
    gpu::Gpu& gpu = n.gpu();
    ts.add_gauge("node" + id + ".gpu.wgs",
                 [&gpu] { return static_cast<std::uint64_t>(
                     gpu.cu_util().in_use()); });
  }
  ts.start(*sim_);
}

void Cluster::enable_tracing(sim::TraceRecorder& trace) {
  for (int i = 0; i < size(); ++i) {
    std::string prefix = "node" + std::to_string(i);
    node(i).cpu().set_trace(&trace, prefix + ".cpu");
    node(i).gpu().set_trace(&trace, prefix + ".gpu");
    // The NIC learns its sibling lanes so message flows can start on the
    // gpu lane (trigger store) and step through the trigger unit's lane.
    node(i).nic().set_trace(&trace, prefix + ".nic", prefix + ".gpu",
                            prefix + ".trig");
    node(i).triggered().set_trace(&trace, prefix + ".trig");
  }
  fabric_.set_trace(&trace);
}

Cluster::~Cluster() {
  // Service loops (NIC engines, GPU front-ends, link pumps) hold references
  // into the nodes; destroy their frames before the nodes die.
  if (engine_ != nullptr) {
    engine_->reap_processes();
  } else {
    sim_->reap_processes();
  }
}

}  // namespace gputn::cluster

#include "cluster/cluster.hpp"

#include <string>

namespace gputn::cluster {

Node::Node(sim::Simulator& sim, net::Fabric& fabric,
           const SystemConfig& config)
    : memory_(config.dram_bytes),
      cpu_(sim, memory_, config.cpu),
      gpu_(sim, memory_, config.gpu),
      nic_(sim, memory_, fabric, config.nic),
      triggered_(sim, nic_, memory_, config.triggered),
      rt_(sim, cpu_, gpu_, nic_, triggered_, memory_) {}

Cluster::Cluster(sim::Simulator& sim, SystemConfig config, int node_count)
    : sim_(&sim), config_(std::move(config)), fabric_(sim, config_.fabric) {
  if (config_.fault.enabled()) {
    // Faults on the wire: install the injectors and switch every NIC to
    // reliable delivery before any node (and thus any link) is built.
    fault_ = std::make_unique<fault::FaultModel>(config_.fault);
    fabric_.set_fault_injector_provider([this](const std::string& name) {
      return fault_->injector_for(name);
    });
    config_.nic.reliability.enabled = true;
  }
  nodes_.reserve(node_count);
  for (int i = 0; i < node_count; ++i) {
    nodes_.push_back(std::make_unique<Node>(sim, fabric_, config_));
  }
}

void Cluster::export_net_stats(sim::StatRegistry& out) const {
  fabric_.export_stats(out);
  if (fault_) fault_->export_stats(out);
  for (const auto& node : nodes_) {
    const sim::StatRegistry& s = node->nic().stats();
    for (const auto& [name, value] : s.counters()) {
      if (name.rfind("rel.", 0) == 0) out.counter(name) += value;
    }
    for (const auto& [name, acc] : s.accumulators()) {
      if (name.rfind("rel.", 0) != 0) continue;
      // Exact Welford-state combination: the aggregate's count / mean /
      // min / max / stddev match a single accumulator fed every sample.
      out.accumulator(name).merge(acc);
    }
    // Per-stage latency histograms (lat.*, recorded at each destination
    // NIC) merge exactly bucket-wise, so cluster-wide p50/p90/p99 are as
    // good as the per-node ones.
    for (const auto& [name, h] : s.histograms()) {
      out.histogram(name).merge(h);
    }
  }
}

void Cluster::enable_tracing(sim::TraceRecorder& trace) {
  for (int i = 0; i < size(); ++i) {
    std::string prefix = "node" + std::to_string(i);
    node(i).cpu().set_trace(&trace, prefix + ".cpu");
    node(i).gpu().set_trace(&trace, prefix + ".gpu");
    // The NIC learns its sibling lanes so message flows can start on the
    // gpu lane (trigger store) and step through the trigger unit's lane.
    node(i).nic().set_trace(&trace, prefix + ".nic", prefix + ".gpu",
                            prefix + ".trig");
    node(i).triggered().set_trace(&trace, prefix + ".trig");
  }
  fabric_.set_trace(&trace);
}

Cluster::~Cluster() {
  // Service loops (NIC engines, GPU front-ends, link pumps) hold references
  // into the nodes; destroy their frames before the nodes die.
  sim_->reap_processes();
}

}  // namespace gputn::cluster

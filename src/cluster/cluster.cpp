#include "cluster/cluster.hpp"

#include <string>

namespace gputn::cluster {

Node::Node(sim::Simulator& sim, net::Fabric& fabric,
           const SystemConfig& config)
    : memory_(config.dram_bytes),
      cpu_(sim, memory_, config.cpu),
      gpu_(sim, memory_, config.gpu),
      nic_(sim, memory_, fabric, config.nic),
      triggered_(sim, nic_, memory_, config.triggered),
      rt_(sim, cpu_, gpu_, nic_, triggered_, memory_) {}

Cluster::Cluster(sim::Simulator& sim, SystemConfig config, int node_count)
    : sim_(&sim), config_(config), fabric_(sim, config.fabric) {
  nodes_.reserve(node_count);
  for (int i = 0; i < node_count; ++i) {
    nodes_.push_back(std::make_unique<Node>(sim, fabric_, config_));
  }
}

void Cluster::enable_tracing(sim::TraceRecorder& trace) {
  for (int i = 0; i < size(); ++i) {
    std::string prefix = "node" + std::to_string(i);
    node(i).gpu().set_trace(&trace, prefix + ".gpu");
    node(i).nic().set_trace(&trace, prefix + ".nic");
    node(i).triggered().set_trace(&trace, prefix + ".trig");
  }
}

Cluster::~Cluster() {
  // Service loops (NIC engines, GPU front-ends, link pumps) hold references
  // into the nodes; destroy their frames before the nodes die.
  sim_->reap_processes();
}

}  // namespace gputn::cluster

// Node and Cluster assembly: each node is a coherent SoC of {CPU, GPU, NIC +
// triggered-op extension, shared memory} (§5.1); nodes connect through the
// star fabric.
#pragma once

#include <memory>
#include <vector>

#include "cluster/config.hpp"
#include "core/triggered.hpp"
#include "cpu/cpu.hpp"
#include "fault/fault.hpp"
#include "gpu/gpu.hpp"
#include "mem/memory.hpp"
#include "net/fabric.hpp"
#include "nic/nic.hpp"
#include "rt/runtime.hpp"
#include "sim/shard.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace gputn::obs {
class FlightRecorder;
class FlightSpool;
class TimeSeries;
}  // namespace gputn::obs

namespace gputn::cluster {

class Node {
 public:
  Node(sim::Simulator& sim, net::Fabric& fabric, const SystemConfig& config);
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  net::NodeId id() const { return nic_.node_id(); }
  mem::Memory& memory() { return memory_; }
  cpu::Cpu& cpu() { return cpu_; }
  gpu::Gpu& gpu() { return gpu_; }
  nic::Nic& nic() { return nic_; }
  core::TriggeredNic& triggered() { return triggered_; }
  rt::NodeRuntime& rt() { return rt_; }

 private:
  mem::Memory memory_;
  cpu::Cpu cpu_;
  gpu::Gpu gpu_;
  nic::Nic nic_;
  core::TriggeredNic triggered_;
  rt::NodeRuntime rt_;
};

class Cluster {
 public:
  /// Build `node_count` identical nodes on `sim` with `config`.
  Cluster(sim::Simulator& sim, SystemConfig config, int node_count);
  /// Parallel-DES build: nodes are partitioned over the engine's shards in
  /// balanced contiguous blocks (node i on shard i*S/node_count) and each
  /// node's components run on its shard's simulator; the fabric places
  /// switches and installs cross-shard hops (net::Fabric::set_sharding).
  /// With a 1-shard engine this is exactly the sequential build.
  Cluster(sim::ShardEngine& engine, SystemConfig config, int node_count);
  /// Reaps all service-loop processes so component destructors run safely.
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Simulator& simulator() { return *sim_; }
  /// The parallel engine driving this cluster, or nullptr when built on a
  /// plain Simulator.
  sim::ShardEngine* engine() { return engine_; }
  /// The simulator owning node `i` (== simulator() without an engine).
  sim::Simulator& node_sim(int i) { return fabric_.node_sim(i); }
  int node_shard(int i) const { return fabric_.node_shard_of(i); }
  const SystemConfig& config() const { return config_; }
  net::Fabric& fabric() { return fabric_; }
  int size() const { return static_cast<int>(nodes_.size()); }

  /// Attach a trace recorder to every node's CPU, GPU, NIC, and trigger
  /// unit (lanes "node<i>.cpu" / ".gpu" / ".nic" / ".trig") plus the
  /// fabric ("net.switch", "net.down<i>"), with cross-lane flow events
  /// following each message from trigger store to remote deposit.
  void enable_tracing(sim::TraceRecorder& trace);
  Node& node(int i) { return *nodes_.at(i); }
  rt::NodeRuntime& rt(int i) { return node(i).rt(); }

  /// The fault model driving this cluster's links, or nullptr when the
  /// config has fault injection disabled.
  fault::FaultModel* fault_model() { return fault_.get(); }

  /// Merge fabric counters (net.*), injected-fault counters (fault.*),
  /// every node's reliability counters (rel.*, summed across nodes), the
  /// per-stage latency histograms (lat.*, exact bucket-wise merge), and
  /// the utilization ledgers (util.link.<name>.* via the fabric plus
  /// util.node<i>.{cpu,gpu.cu,nic.cmd,dma.tx,dma.rx}.*) into `out`.
  /// Deterministic: iteration orders are all sorted-map based.
  ///
  /// `window` is published as util.window_ps, the denominator report
  /// tooling uses for busy fractions. Callers pass the workload's own
  /// total time rather than defaulting to sim.now(): a trailing sampler
  /// event advances now() past the last workload event, and the exported
  /// stats must be bit-identical with and without sampling.
  void export_net_stats(sim::StatRegistry& out, sim::Tick window = -1) const;

  /// Attach a per-op flight recorder to every node's NIC and embed the
  /// fabric's wire parameters in it (the analyzer needs them to split wire
  /// serialization from switch queueing). The recorder must outlive the
  /// run. Recording never perturbs timing or counters. Engine-driven
  /// clusters record into per-node spools instead — call flush_flight()
  /// after the run so the recorder sees the canonical replay order (which
  /// makes the dump bit-identical at every shard count).
  void attach_flight(obs::FlightRecorder& flight);

  /// Replay spooled flight legs into the attached recorder (no-op without
  /// an engine-driven attach_flight, idempotent otherwise).
  void flush_flight();

  /// Register this cluster's standard time-series probes on `ts` (per-link
  /// bytes per interval, per-node NIC command queue depth, unacked
  /// retransmission-window size, GPU work-group slots in use) and start
  /// sampling. The cluster must outlive the sampling run.
  void attach_timeseries(obs::TimeSeries& ts);

 private:
  void install_faults();

  sim::Simulator* sim_;
  sim::ShardEngine* engine_ = nullptr;
  SystemConfig config_;
  /// Owned before fabric_ so link callbacks into injectors stay valid for
  /// the fabric's whole lifetime.
  std::unique_ptr<fault::FaultModel> fault_;
  net::Fabric fabric_;
  std::vector<std::unique_ptr<Node>> nodes_;
  obs::FlightRecorder* flight_ = nullptr;
  std::vector<std::unique_ptr<obs::FlightSpool>> spools_;
};

}  // namespace gputn::cluster

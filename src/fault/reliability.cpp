#include "fault/reliability.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace gputn::fault {

ReliabilityLayer::ReliabilityLayer(
    sim::Simulator& sim, net::Fabric& fabric, net::NodeId self,
    ReliabilityConfig config, sim::StatRegistry& stats,
    std::function<void(net::Message&&)> deliver_up)
    : sim_(&sim),
      fabric_(&fabric),
      self_(self),
      config_(config),
      stats_(&stats),
      deliver_up_(std::move(deliver_up)) {}

std::size_t ReliabilityLayer::unacked() const {
  std::size_t n = 0;
  for (const auto& [peer, tx] : tx_) n += tx.window.size();
  return n;
}

// Copy `src` with its payload staged in a pooled buffer (assign into
// acquired capacity instead of a fresh allocation). `src` is left intact.
static net::Message pooled_copy(net::BufferPool& pool, net::Message& src) {
  std::vector<std::byte> payload = std::move(src.payload);
  net::Message copy = src;  // header-only copy: payload is moved out
  src.payload = std::move(payload);
  copy.payload = pool.acquire();
  copy.payload.assign(src.payload.begin(), src.payload.end());
  return copy;
}

void ReliabilityLayer::send(net::Message&& msg) {
  if (!config_.enabled) {
    fabric_->send(std::move(msg));
    return;
  }
  net::NodeId peer = msg.dst;
  PeerTx& tx = tx_[peer];
  msg.reliable = true;
  msg.seq = tx.next_seq++;
  ++stats_->counter("rel.tx_data");

  Outstanding out;
  out.rto = rto_for(msg);
  out.deadline = sim_->now() + out.rto;
  // First wire hand-off is this very tick (fabric_->send below runs in the
  // same call). Stamped here, before the window copy, so retransmitted
  // copies still carry the original first-wire time.
  if (msg.t_wire_first < 0) msg.t_wire_first = sim_->now();
  // Full copy kept for retransmission, staged in a pooled buffer.
  out.msg = pooled_copy(fabric_->payload_pool(), msg);
  bool was_empty = tx.window.empty();
  tx.window.push_back(std::move(out));
  fabric_->send(std::move(msg));
  if (was_empty) arm_timer(peer);
}

void ReliabilityLayer::arm_timer(net::NodeId peer) {
  PeerTx& tx = tx_[peer];
  std::uint64_t epoch = ++tx.timer_epoch;  // invalidate any pending callback
  if (tx.window.empty()) return;
  sim::Tick delay = std::max<sim::Tick>(0, tx.window.front().deadline -
                                               sim_->now());
  sim_->schedule_in(delay,
                    [this, peer, epoch] { on_timeout(peer, epoch); });
}

void ReliabilityLayer::on_timeout(net::NodeId peer, std::uint64_t epoch) {
  auto it = tx_.find(peer);
  if (it == tx_.end() || it->second.timer_epoch != epoch ||
      it->second.window.empty()) {
    return;  // stale timer: the window advanced since it was armed
  }
  retransmit_head(peer, it->second, "timeout");
  arm_timer(peer);
}

void ReliabilityLayer::retransmit_head(net::NodeId peer, PeerTx& tx,
                                       const char* why) {
  Outstanding& head = tx.window.front();
  if (++head.retries > config_.max_retries) {
    throw std::runtime_error(
        "reliability: seq " + std::to_string(head.msg.seq) + " to node " +
        std::to_string(peer) + " exceeded max retries — protocol bug or "
        "pathological fault configuration");
  }
  ++stats_->counter("rel.retransmits");
  // The window copy is the template for every resend: bumping it here means
  // the copy that finally lands reports how many wire attempts preceded it.
  ++head.msg.retransmits;
  stats_->accumulator("rel.timeout_us").add(sim::to_us(head.rto));
  head.rto = std::min<sim::Tick>(
      static_cast<sim::Tick>(static_cast<double>(head.rto) * config_.backoff),
      config_.max_rto);
  head.deadline = sim_->now() + head.rto;
  if (trace_ != nullptr) {
    trace_->instant(trace_lane_,
                    std::string("retx:") + why + " seq=" +
                        std::to_string(head.msg.seq) + " dst=" +
                        std::to_string(peer),
                    "rel", sim_->now());
  }
  fabric_->send(pooled_copy(fabric_->payload_pool(), head.msg));
}

void ReliabilityLayer::send_ack(net::NodeId dst, net::Ctrl ctrl,
                                std::uint64_t cumulative) {
  ++stats_->counter(ctrl == net::Ctrl::kAck ? "rel.acks_tx" : "rel.nacks_tx");
  net::Message ack;
  ack.src = self_;
  ack.dst = dst;
  ack.ctrl = ctrl;
  ack.ack = cumulative;
  fabric_->send(std::move(ack));
}

void ReliabilityLayer::handle_ack(const net::Message& msg) {
  ++stats_->counter(msg.ctrl == net::Ctrl::kAck ? "rel.acks_rx"
                                                : "rel.nacks_rx");
  auto it = tx_.find(msg.src);
  if (it == tx_.end()) return;
  PeerTx& tx = it->second;
  bool progress = false;
  while (!tx.window.empty() && tx.window.front().msg.seq < msg.ack) {
    // Acknowledged: the retransmission copy is dead, recycle its buffer.
    fabric_->payload_pool().release(
        std::move(tx.window.front().msg.payload));
    tx.window.pop_front();
    progress = true;
  }
  if (msg.ctrl == net::Ctrl::kNack && !tx.window.empty()) {
    // The receiver discarded a corrupted message: resend the oldest
    // unacknowledged without waiting for its timeout.
    retransmit_head(msg.src, tx, "nack");
    arm_timer(msg.src);
  } else if (progress) {
    arm_timer(msg.src);  // re-arm (or disarm, if the window drained)
  }
}

void ReliabilityLayer::deliver_in_order(PeerRx& rx, net::Message&& msg) {
  deliver_up_(std::move(msg));
  ++rx.expected;
  // Drain any parked arrivals the gap-fill unblocked.
  for (auto it = rx.reorder.begin();
       it != rx.reorder.end() && it->first == rx.expected;
       it = rx.reorder.erase(it)) {
    deliver_up_(std::move(it->second));
    ++rx.expected;
  }
}

void ReliabilityLayer::on_wire_receive(net::Message&& msg) {
  if (!config_.enabled) {
    if (msg.corrupted) {
      // No reliability protocol to recover it: drop, as hardware drops a
      // frame with a bad checksum. The loss is visible in this counter.
      ++stats_->counter("rel.corrupt_dropped");
      fabric_->payload_pool().release(std::move(msg.payload));
      return;
    }
    deliver_up_(std::move(msg));
    return;
  }
  if (msg.ctrl != net::Ctrl::kData) {
    handle_ack(msg);
    return;
  }
  if (!msg.reliable) {
    deliver_up_(std::move(msg));  // peer sent outside the protocol
    return;
  }
  PeerRx& rx = rx_[msg.src];
  if (msg.corrupted) {
    // A corrupted header cannot be trusted, so the NACK requests
    // retransmission from the receive cursor rather than naming msg.seq.
    ++stats_->counter("rel.corrupt_dropped");
    fabric_->payload_pool().release(std::move(msg.payload));
    send_ack(msg.src, net::Ctrl::kNack, rx.expected);
    return;
  }
  if (msg.seq < rx.expected) {
    // Duplicate — our ACK was probably lost; repeat it.
    ++stats_->counter("rel.dup_dropped");
    fabric_->payload_pool().release(std::move(msg.payload));
    send_ack(msg.src, net::Ctrl::kAck, rx.expected);
    return;
  }
  net::NodeId peer = msg.src;
  if (msg.seq == rx.expected) {
    ++stats_->counter("rel.rx_data");
    deliver_in_order(rx, std::move(msg));
  } else {
    // Out of order (jitter reordering or a loss ahead of us): park it.
    // emplace keeps the first copy if a retransmission already landed here.
    ++stats_->counter("rel.reorder_buffered");
    rx.reorder.emplace(msg.seq, std::move(msg));
  }
  send_ack(peer, net::Ctrl::kAck, rx.expected);
}

}  // namespace gputn::fault

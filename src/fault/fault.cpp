#include "fault/fault.hpp"

#include <utility>

namespace gputn::fault {

namespace {

/// FNV-1a, so a link's RNG stream depends only on (seed, link name).
std::uint64_t hash_name(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

LinkFaultInjector::LinkFaultInjector(std::string name, LinkFaultProfile profile,
                                     std::uint64_t seed,
                                     sim::StatRegistry& stats)
    : name_(std::move(name)),
      profile_(profile),
      rng_(seed ^ hash_name(name_)),
      stats_(&stats) {}

void LinkFaultInjector::add_scripted(const ScriptedFault& f) {
  script_.emplace(f.packet_index, f);
}

net::FaultVerdict LinkFaultInjector::classify(const net::Packet& p) {
  (void)p;
  std::uint64_t index = packet_index_++;
  net::FaultVerdict v;

  // Probabilistic faults. All three draws happen for every packet so that
  // a packet's fate never perturbs the random stream seen by later packets
  // (keeps scripted + probabilistic composition deterministic).
  bool drop = profile_.loss_rate > 0.0 && rng_.bernoulli(profile_.loss_rate);
  bool corrupt =
      profile_.corrupt_rate > 0.0 && rng_.bernoulli(profile_.corrupt_rate);
  sim::Tick jitter = 0;
  if (profile_.jitter_max > profile_.jitter_min) {
    jitter = rng_.uniform_int(profile_.jitter_min, profile_.jitter_max);
  } else if (profile_.jitter_max > 0) {
    jitter = profile_.jitter_max;
  }

  // Scripted faults override/augment the probabilistic draw.
  for (auto [it, end] = script_.equal_range(index); it != end; ++it) {
    switch (it->second.kind) {
      case FaultKind::kDrop:
        drop = true;
        break;
      case FaultKind::kCorrupt:
        corrupt = true;
        break;
      case FaultKind::kDelay:
        jitter += it->second.delay;
        break;
    }
  }

  if (drop) {
    v.drop = true;
    ++stats_->counter("fault.drops");
    ++stats_->counter("fault." + name_ + ".drops");
    return v;  // a dropped packet is neither corrupted nor delayed
  }
  if (corrupt) {
    v.corrupt = true;
    ++stats_->counter("fault.corruptions");
    ++stats_->counter("fault." + name_ + ".corruptions");
  }
  if (jitter > 0) {
    v.extra_delay = jitter;
    ++stats_->counter("fault.delays");
    stats_->accumulator("fault.jitter_ns").add(sim::to_ns(jitter));
  }
  return v;
}

FaultModel::FaultModel(FaultConfig config) : config_(std::move(config)) {}

LinkFaultInjector* FaultModel::injector_for(const std::string& link_name) {
  auto it = injectors_.find(link_name);
  if (it != injectors_.end()) return it->second.get();

  LinkFaultProfile profile = config_.default_profile;
  auto po = config_.per_link.find(link_name);
  if (po != config_.per_link.end()) profile = po->second;

  auto injector = std::make_unique<LinkFaultInjector>(link_name, profile,
                                                      config_.seed, stats_);
  for (const auto& f : config_.script) {
    if (f.link == link_name) injector->add_scripted(f);
  }
  auto* raw = injector.get();
  injectors_.emplace(link_name, std::move(injector));
  return raw;
}

void FaultModel::export_stats(sim::StatRegistry& reg) const {
  for (const auto& [name, value] : stats_.counters()) {
    reg.counter(name) += value;
  }
  for (const auto& [name, acc] : stats_.accumulators()) {
    // Accumulators cannot be merged exactly; copy when absent (the common
    // case: one model exporting into one report registry).
    if (reg.accumulators().find(name) == reg.accumulators().end()) {
      reg.accumulator(name) = acc;
    }
  }
}

}  // namespace gputn::fault

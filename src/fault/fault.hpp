// Deterministic fault injection for the fabric.
//
// A FaultModel owns one LinkFaultInjector per named link (net::Link consults
// it via the net::FaultInjector interface once per packet, in FIFO order).
// Every injector draws from its own RNG seeded by `seed ^ hash(link name)`,
// so the fault sequence on a link depends only on the configuration and the
// packets that traverse that link — never on construction order or on
// traffic elsewhere — which keeps whole-cluster runs reproducible.
//
// Two injection mechanisms compose:
//   * probabilistic: per-link loss rate, corruption rate, and uniform
//     jitter-delay bounds (a LinkFaultProfile, with per-link overrides);
//   * scripted: "do X to packet #N on link L" entries, for deterministic
//     regression tests of specific protocol corners (drop exactly the RTS,
//     corrupt exactly one chunk, ...).
//
// Corruption is a flag on the message, not a payload bit-flip: the receiver
// NIC's reliability layer (fault/reliability.hpp) detects it as a failed
// checksum would be and discards the message, so corrupt payload bytes are
// never interpreted.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "sim/units.hpp"

namespace gputn::fault {

/// Probabilistic fault rates for one link.
struct LinkFaultProfile {
  double loss_rate = 0.0;     ///< P(drop) per packet
  double corrupt_rate = 0.0;  ///< P(corrupt flag) per packet
  /// Uniform jitter added to a packet's propagation, in [jitter_min,
  /// jitter_max]. Both zero = no jitter. Jitter can reorder messages on a
  /// path, exercising the receiver's reordering tolerance.
  sim::Tick jitter_min = 0;
  sim::Tick jitter_max = 0;

  bool active() const {
    return loss_rate > 0.0 || corrupt_rate > 0.0 || jitter_max > 0;
  }
};

enum class FaultKind { kDrop, kCorrupt, kDelay };

/// A scripted, fully deterministic fault: applied to the `packet_index`-th
/// packet (0-based, in transmission order) on the link named `link`.
struct ScriptedFault {
  std::string link;
  std::uint64_t packet_index = 0;
  FaultKind kind = FaultKind::kDrop;
  sim::Tick delay = 0;  ///< for kDelay
};

struct FaultConfig {
  std::uint64_t seed = 1;
  /// Applied to every link without an entry in `per_link`.
  LinkFaultProfile default_profile;
  /// Overrides keyed by link name ("up0", "down3", ...).
  std::map<std::string, LinkFaultProfile> per_link;
  std::vector<ScriptedFault> script;

  /// True if this configuration can ever inject a fault. The cluster
  /// enables the NIC reliability layer exactly when this holds, so a
  /// lossless configuration pays zero protocol overhead (no sequence
  /// numbers on the wire, no ACKs).
  bool enabled() const {
    if (default_profile.active() || !script.empty()) return true;
    for (const auto& [name, p] : per_link) {
      if (p.active()) return true;
    }
    return false;
  }

  /// Convenience: uniform loss on every link.
  static FaultConfig uniform_loss(double rate, std::uint64_t seed = 1) {
    FaultConfig c;
    c.seed = seed;
    c.default_profile.loss_rate = rate;
    return c;
  }
};

/// Per-link injector state; created and owned by FaultModel.
class LinkFaultInjector final : public net::FaultInjector {
 public:
  LinkFaultInjector(std::string name, LinkFaultProfile profile,
                    std::uint64_t seed, sim::StatRegistry& stats);

  /// Add a scripted fault for this link (packet_index in tx order).
  void add_scripted(const ScriptedFault& f);

  net::FaultVerdict classify(const net::Packet& p) override;

  const std::string& name() const { return name_; }
  std::uint64_t packets_seen() const { return packet_index_; }

 private:
  std::string name_;
  LinkFaultProfile profile_;
  sim::Rng rng_;
  sim::StatRegistry* stats_;
  std::uint64_t packet_index_ = 0;
  /// Scripted entries keyed by packet index; multimap allows e.g. a delay
  /// and a corrupt on the same packet.
  std::multimap<std::uint64_t, ScriptedFault> script_;
};

class FaultModel {
 public:
  explicit FaultModel(FaultConfig config);
  FaultModel(const FaultModel&) = delete;
  FaultModel& operator=(const FaultModel&) = delete;

  /// The injector for `link_name`, created on first use (so the model works
  /// with any topology without pre-declaring links). Returns a pointer the
  /// link keeps for its lifetime; the model must outlive the fabric's links.
  LinkFaultInjector* injector_for(const std::string& link_name);

  const FaultConfig& config() const { return config_; }

  /// Aggregate + per-link injection counters:
  ///   fault.drops / fault.corruptions / fault.delays, fault.jitter_ns,
  ///   fault.<link>.drops / ...
  const sim::StatRegistry& stats() const { return stats_; }

  /// Merge this model's counters into an experiment-level registry.
  void export_stats(sim::StatRegistry& reg) const;

 private:
  FaultConfig config_;
  sim::StatRegistry stats_;
  std::map<std::string, std::unique_ptr<LinkFaultInjector>> injectors_;
};

}  // namespace gputn::fault

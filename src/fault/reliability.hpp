// End-to-end reliable delivery between NIC pairs.
//
// The Portals-4 NIC model assumed a lossless fabric; with fault injection
// (fault/fault.hpp) the fabric may drop, corrupt, or reorder messages, so
// each NIC runs this reliability layer between its protocol engine and the
// fabric:
//
//   TX  — every outbound message is stamped with a per-destination sequence
//         number, copied into a retransmit buffer, and retransmitted on
//         timeout with exponential backoff until cumulatively ACKed. A NACK
//         (corruption report) short-circuits the timeout.
//   RX  — per-source cursors deliver exactly once and in order: duplicates
//         are dropped (and re-ACKed, since the duplicate usually means our
//         ACK was lost), out-of-order arrivals are parked in a reorder
//         buffer until the gap fills, and corrupted messages are discarded
//         with a NACK. Every accepted or duplicate data message generates a
//         cumulative ACK.
//
// Exactly-once in-order delivery is what makes the upper layers fault-
// oblivious: a triggered put whose message is retransmitted still bumps the
// target's counting-receive counter exactly once, so trigger chains fire
// correctly under loss.
//
// When `enabled == false` the layer is a strict pass-through: no sequence
// numbers are stamped and no control messages are generated, so a lossless
// configuration has byte-for-byte identical wire traffic with or without
// this code (verified by tests/fault/reliability_test.cpp).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "net/fabric.hpp"
#include "net/message.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "sim/units.hpp"

namespace gputn::fault {

struct ReliabilityConfig {
  bool enabled = false;
  /// Initial retransmit timeout for a zero-byte message. Must exceed the
  /// fabric RTT with queueing headroom; spurious retransmits are safe
  /// (duplicates are suppressed) but waste bandwidth.
  sim::Tick base_rto = sim::us(100);
  /// Per-payload-byte addition to a message's RTO, covering its own
  /// serialization time (80 ps/B at 100 Gbps) with ~12x margin for queueing.
  sim::Tick rto_per_byte = sim::ps(1000);
  double backoff = 2.0;       ///< RTO multiplier per retransmission
  sim::Tick max_rto = sim::ms(5);
  /// Give up (throw) after this many retransmissions of one message: under
  /// any sane loss rate this indicates a protocol bug, not bad luck.
  int max_retries = 64;
};

class ReliabilityLayer {
 public:
  /// `self` is the owning NIC's node id (ACK/NACK source address).
  /// `deliver_up` receives exactly-once, in-order data messages (it feeds
  /// the NIC's RX queue). `stats` is the owning NIC's registry; counters
  /// are published under "rel.".
  ReliabilityLayer(sim::Simulator& sim, net::Fabric& fabric, net::NodeId self,
                   ReliabilityConfig config, sim::StatRegistry& stats,
                   std::function<void(net::Message&&)> deliver_up);
  ReliabilityLayer(const ReliabilityLayer&) = delete;
  ReliabilityLayer& operator=(const ReliabilityLayer&) = delete;

  /// TX entry: stamp, buffer, and send (or pass through when disabled).
  void send(net::Message&& msg);

  /// RX entry: the NIC's MessageSink::deliver forwards everything here.
  /// Control traffic and protocol work are absorbed; data flows to
  /// `deliver_up` in order.
  void on_wire_receive(net::Message&& msg);

  bool enabled() const { return config_.enabled; }
  /// Messages currently awaiting acknowledgement (all destinations).
  std::size_t unacked() const;

  void set_trace(sim::TraceRecorder* trace, std::string lane) {
    trace_ = trace;
    trace_lane_ = std::move(lane);
  }

 private:
  struct Outstanding {
    net::Message msg;       ///< full copy for retransmission
    sim::Tick deadline = 0;
    sim::Tick rto = 0;
    int retries = 0;
  };
  struct PeerTx {
    std::uint64_t next_seq = 0;
    std::deque<Outstanding> window;  ///< FIFO by seq
    /// Bumped on every window-head change; pending timer callbacks carry
    /// the epoch they were armed under and no-op when stale.
    std::uint64_t timer_epoch = 0;
  };
  struct PeerRx {
    std::uint64_t expected = 0;  ///< next in-order seq to deliver
    std::map<std::uint64_t, net::Message> reorder;
  };

  sim::Tick rto_for(const net::Message& msg) const {
    return config_.base_rto +
           static_cast<sim::Tick>(msg.payload.size()) * config_.rto_per_byte;
  }

  void arm_timer(net::NodeId peer);
  void on_timeout(net::NodeId peer, std::uint64_t epoch);
  void retransmit_head(net::NodeId peer, PeerTx& tx, const char* why);
  void handle_ack(const net::Message& msg);
  void send_ack(net::NodeId dst, net::Ctrl ctrl, std::uint64_t cumulative);
  void deliver_in_order(PeerRx& rx, net::Message&& msg);

  sim::Simulator* sim_;
  net::Fabric* fabric_;
  net::NodeId self_;
  ReliabilityConfig config_;
  sim::StatRegistry* stats_;
  std::function<void(net::Message&&)> deliver_up_;
  std::map<net::NodeId, PeerTx> tx_;
  std::map<net::NodeId, PeerRx> rx_;
  sim::TraceRecorder* trace_ = nullptr;
  std::string trace_lane_;
};

}  // namespace gputn::fault

// Parallel experiment runner: shards a Plan's independent run points
// across a thread pool and merges the results deterministically.
//
// Model: each worker thread claims the next unstarted point off a shared
// atomic cursor (self-scheduling — the work-stealing-friendly shape for
// points whose costs vary by orders of magnitude: a 1024-grid Jacobi next
// to a 2-node microbench), constructs the point's entire simulated world
// inside the closure, runs it to completion, and writes the result into a
// pre-sized slot keyed by *plan index*. Nothing is ever appended in
// completion order.
//
// Determinism contract: because every point owns its Simulator/Cluster
// outright (the ownership rule documented on sim::Simulator) and each
// simulation is single-threaded and deterministic, the merged RunSummary —
// and therefore results_json() — is bit-identical for --jobs 1 and
// --jobs N. Host wall-clock figures are the one nondeterministic output;
// they are kept out of results_json by construction.
//
// Failure isolation: a point that throws is recorded as failed (ok=false,
// error=what()) in its own slot; every other point still runs. The sweep
// never aborts half-merged.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "exp/plan.hpp"
#include "workloads/options.hpp"

namespace gputn::exp {

/// Outcome of one run point, in its plan slot.
struct RunResult {
  std::string id;
  bool ok = false;     ///< the closure returned (no exception escaped)
  std::string error;   ///< exception message when !ok
  workloads::ResultBase result;  ///< valid only when ok
  /// Host milliseconds spent executing this point. Reporting only —
  /// deliberately excluded from results_json (nondeterministic).
  double wall_ms = 0.0;
};

/// All results of a sweep, in plan order.
struct RunSummary {
  std::vector<RunResult> results;
  std::size_t failures = 0;  ///< points whose closure threw
  double wall_ms = 0.0;      ///< host time for the whole sweep
  /// Every point ran and verified.
  bool all_correct() const {
    for (const RunResult& r : results) {
      if (!r.ok || !r.result.correct) return false;
    }
    return true;
  }
};

class Runner {
 public:
  /// `jobs` worker threads; 0 means hardware_concurrency. Clamped to >= 1.
  explicit Runner(int jobs = 0);

  int jobs() const { return jobs_; }

  /// Execute every point of `plan` and return results in plan order.
  /// jobs() == 1 runs inline on the calling thread (no pool) through the
  /// exact same per-point code path, so the two modes cannot diverge.
  RunSummary run(const Plan& plan) const;

  /// std::thread::hardware_concurrency with a floor of 1.
  static int hardware_jobs();

 private:
  int jobs_;
};

/// Deterministic JSON array of a sweep's results, in plan order: one object
/// per point with "id", "ok", and — for points that ran — "label", "mode",
/// "nodes", "total_time_ps", "correct", and the full "stats" registry
/// (sim::stats_json). Failed points carry "error" instead. Bit-identical
/// across --jobs values: no wall-clock or thread-id data is included.
/// Each point's stats carry the per-resource utilization ledger
/// (util.window_ps plus util.link.*/util.node<i>.* busy/ops/queue
/// summaries), so `gputn report <sweep.json>` can rank bottlenecks and
/// `--baseline` can gate regressions without re-running the sweep.
std::string results_json(const RunSummary& summary);

}  // namespace gputn::exp

#include "exp/sweeps.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cluster/config.hpp"
#include "serve/serve.hpp"
#include "workloads/allreduce.hpp"
#include "workloads/broadcast.hpp"
#include "workloads/jacobi.hpp"
#include "workloads/strategy.hpp"

namespace gputn::exp {

namespace {

using workloads::AllreduceConfig;
using workloads::BroadcastConfig;
using workloads::JacobiConfig;
using workloads::Strategy;

std::string num(long long v) { return std::to_string(v); }

}  // namespace

Plan fig09_plan(const std::vector<int>& grids, int iterations, int num_wgs) {
  Plan plan;
  for (int n : grids) {
    for (Strategy s : workloads::kAllStrategies) {
      JacobiConfig cfg;
      cfg.strategy = s;
      cfg.n = n;
      cfg.iterations = iterations;
      cfg.num_wgs = num_wgs;
      plan.add("jacobi/n" + num(n) + "/" + strategy_name(s),
               [cfg] { return workloads::run_jacobi(cfg); });
    }
  }
  return plan;
}

Plan fig10_plan(const std::vector<int>& node_counts, std::size_t elements) {
  Plan plan;
  for (int nodes : node_counts) {
    for (Strategy s : workloads::kAllStrategies) {
      AllreduceConfig cfg;
      cfg.strategy = s;
      cfg.nodes = nodes;
      cfg.elements = elements;
      plan.add("allreduce/p" + num(nodes) + "/" + strategy_name(s),
               [cfg] { return workloads::run_allreduce(cfg); });
    }
  }
  return plan;
}

Plan jacobi_overlap_plan(const std::vector<int>& grids, int iterations) {
  Plan plan;
  for (int n : grids) {
    for (bool overlap : {false, true}) {
      JacobiConfig cfg;
      cfg.strategy = Strategy::kGpuTn;
      cfg.n = n;
      cfg.iterations = iterations;
      cfg.overlap = overlap;
      plan.add("jacobi-overlap/n" + num(n) + (overlap ? "/on" : "/off"),
               [cfg] { return workloads::run_jacobi(cfg); });
    }
  }
  return plan;
}

Plan coll_offload_plan(
    const std::vector<std::pair<int, std::size_t>>& rows) {
  Plan plan;
  for (const auto& [nodes, elements] : rows) {
    for (bool offload : {false, true}) {
      AllreduceConfig cfg;
      cfg.strategy = Strategy::kGpuTn;
      cfg.nodes = nodes;
      cfg.elements = elements;
      cfg.nic_offload_allgather = offload;
      plan.add("allreduce-offload/p" + num(nodes) + "/e" +
                   num(static_cast<long long>(elements)) +
                   (offload ? "/nic" : "/gpu"),
               [cfg] { return workloads::run_allreduce(cfg); });
    }
  }
  return plan;
}

Plan fault_loss_plan(const std::vector<double>& loss_rates, int nodes,
                     std::size_t elements, std::uint64_t seed) {
  Plan plan;
  for (double loss : loss_rates) {
    AllreduceConfig cfg;
    cfg.strategy = Strategy::kGpuTn;
    cfg.nodes = nodes;
    cfg.elements = elements;
    cluster::SystemConfig sys =
        cluster::SystemConfig::table2_with_loss(loss, seed);
    char tag[32];
    std::snprintf(tag, sizeof(tag), "%g", loss);
    plan.add("allreduce-loss/" + std::string(tag),
             [cfg, sys] { return workloads::run_allreduce(cfg, sys); });
  }
  return plan;
}

Plan broadcast_plan(const std::vector<int>& node_counts, std::size_t bytes,
                    int chunks) {
  Plan plan;
  for (int nodes : node_counts) {
    for (workloads::BroadcastDrive d :
         {workloads::BroadcastDrive::kHdn, workloads::BroadcastDrive::kGpuTn,
          workloads::BroadcastDrive::kNicChain}) {
      BroadcastConfig cfg;
      cfg.drive = d;
      cfg.nodes = nodes;
      cfg.bytes = bytes;
      cfg.chunks = chunks;
      plan.add("broadcast/p" + num(nodes) + "/" +
                   workloads::broadcast_drive_name(d),
               [cfg] { return workloads::run_broadcast(cfg); });
    }
  }
  return plan;
}

Plan serve_load_plan(const std::vector<double>& offered_loads,
                     serve::ServeConfig base) {
  Plan plan;
  for (double load : offered_loads) {
    for (Strategy s : {Strategy::kCpu, Strategy::kGpuTn}) {
      serve::ServeConfig cfg = base;
      cfg.strategy = s;
      cfg.offered_load = load;
      cfg.quiet = true;
      char tag[32];
      std::snprintf(tag, sizeof(tag), "%g", load);
      plan.add("serve-load/" + std::string(tag) + "/" + strategy_name(s),
               [cfg] { return serve::run_serve(cfg); });
    }
  }
  return plan;
}

Plan serve_skew_plan(const std::vector<double>& skews,
                     serve::ServeConfig base) {
  Plan plan;
  for (double skew : skews) {
    for (Strategy s : {Strategy::kCpu, Strategy::kGpuTn}) {
      serve::ServeConfig cfg = base;
      cfg.strategy = s;
      cfg.zipf = skew;
      cfg.quiet = true;
      char tag[32];
      std::snprintf(tag, sizeof(tag), "%g", skew);
      plan.add("serve-skew/" + std::string(tag) + "/" + strategy_name(s),
               [cfg] { return serve::run_serve(cfg); });
    }
  }
  return plan;
}

Plan fabric_scale_plan(const std::vector<int>& node_counts,
                       const std::vector<std::string>& topologies,
                       std::size_t elements, const std::string& routing) {
  Plan plan;
  for (int nodes : node_counts) {
    for (const std::string& topo : topologies) {
      for (Strategy s : {Strategy::kCpu, Strategy::kGpuTn}) {
        AllreduceConfig cfg;
        cfg.strategy = s;
        cfg.nodes = nodes;
        cfg.elements = elements;
        cfg.topology = topo;
        cfg.routing = routing;
        plan.add("fabric/p" + num(nodes) + "/" + topo + "/" + strategy_name(s),
                 [cfg] { return workloads::run_allreduce(cfg); });
      }
    }
  }
  return plan;
}

Plan mini_sweep_plan() {
  Plan plan;
  plan.append(fig09_plan({16, 32, 64}, /*iterations=*/5));
  plan.append(fig10_plan({2, 4, 8}, /*elements=*/64 * 1024));
  plan.append(jacobi_overlap_plan({32, 64}, /*iterations=*/5));
  plan.append(coll_offload_plan({{4, 64 * 1024}, {8, 64 * 1024}}));
  plan.append(
      fault_loss_plan({0.0, 0.01}, /*nodes=*/4, /*elements=*/32 * 1024));
  plan.append(broadcast_plan({4, 8}, /*bytes=*/256 * 1024, /*chunks=*/8));
  {
    serve::ServeConfig small;
    small.tenants = 2;
    small.window = 2;
    small.requests = 64;
    small.keyspace = 128;
    small.read_fraction = 0.5;
    plan.append(serve_load_plan({5e5, 2e6}, small));
  }
  return plan;
}

int jobs_from_args(int argc, char** argv, int dflt) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --jobs needs a value\n", argv[0]);
        std::exit(2);
      }
      char* end = nullptr;
      long v = std::strtol(argv[i + 1], &end, 10);
      if (end == argv[i + 1] || *end != '\0' || v < 0 || v > 4096) {
        std::fprintf(stderr, "%s: bad --jobs value '%s'\n", argv[0],
                     argv[i + 1]);
        std::exit(2);
      }
      return static_cast<int>(v);
    }
  }
  return dflt;
}

}  // namespace gputn::exp

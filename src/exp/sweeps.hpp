// Shared sweep plans for the paper's figures and ablations.
//
// The bench drivers (fig09/fig10/abl_*) used to hand-roll the same nested
// loops — for each grid/node-count, for each strategy, build a config, run,
// collect. These helpers emit the equivalent exp::Plan instead, so every
// driver, the micro_sweep benchmark, `gputn sweep`, and the exp tests all
// enumerate run points through one code path and inherit --jobs parallelism
// and deterministic merge for free.
//
// Point-order conventions (the drivers index results as row * width + col):
//   fig09_plan:          for each grid n, kAllStrategies order (CPU, HDN,
//                        GDS, GPU-TN).
//   fig10_plan:          for each node count, kAllStrategies order.
//   jacobi_overlap_plan: for each grid n, {no-overlap, overlap}.
//   coll_offload_plan:   for each (nodes, elements) row, {GPU-driven,
//                        NIC-offloaded allgather}.
//   fault_loss_plan:     one GPU-TN allreduce per loss rate.
//   broadcast_plan:      for each node count, {HDN, GPU-TN, NIC-chain}.
//   serve_load_plan:     for each offered load (req/s per tenant),
//                        {CPU, GPU-TN}.
//   serve_skew_plan:     for each Zipf skew, {CPU, GPU-TN}.
//   fabric_scale_plan:   for each node count, for each topology spec,
//                        {CPU, GPU-TN}.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "exp/plan.hpp"
#include "serve/serve.hpp"

namespace gputn::exp {

/// Figure 9: 2-D Jacobi across local grid sizes x all four strategies.
Plan fig09_plan(const std::vector<int>& grids, int iterations = 10,
                int num_wgs = 16);

/// Figure 10: ring allreduce strong scaling across node counts x all four
/// strategies. `elements` is the fp32 count (Figure 10 uses 2 Mi = 8 MB).
Plan fig10_plan(const std::vector<int>& node_counts, std::size_t elements);

/// Ablation: GPU-TN Jacobi with and without interior/halo overlap.
Plan jacobi_overlap_plan(const std::vector<int>& grids, int iterations = 10);

/// Ablation: GPU-TN allreduce, GPU-driven vs NIC-offloaded allgather, one
/// pair of points per (nodes, elements) row.
Plan coll_offload_plan(
    const std::vector<std::pair<int, std::size_t>>& rows);

/// Ablation: GPU-TN allreduce under uniform per-packet loss, one point per
/// rate (rate 0 is the exact lossless protocol).
Plan fault_loss_plan(const std::vector<double>& loss_rates, int nodes,
                     std::size_t elements, std::uint64_t seed = 1);

/// Extension: pipelined ring broadcast, all three drives per node count.
Plan broadcast_plan(const std::vector<int>& node_counts, std::size_t bytes,
                    int chunks);

/// Serving: CPU-proxy vs GPU-TN response path per offered load (open-loop
/// req/s per tenant). `base` carries the fixed knobs (tenants, mix, skew);
/// its strategy/offered_load fields are overwritten per point.
Plan serve_load_plan(const std::vector<double>& offered_loads,
                     serve::ServeConfig base = {});

/// Serving: CPU vs GPU-TN per Zipf skew at a fixed offered load.
Plan serve_skew_plan(const std::vector<double>& skews,
                     serve::ServeConfig base = {});

/// Scale-out fabric: ring allreduce strong scaling per node count x
/// topology spec (net::TopologyFactory strings, e.g. "star",
/// "fat-tree:k=16") x {CPU, GPU-TN}. Point ids are
/// "fabric/p<nodes>/<topology>/<strategy>". `routing` applies to every
/// point ("" = config default).
Plan fabric_scale_plan(const std::vector<int>& node_counts,
                       const std::vector<std::string>& topologies,
                       std::size_t elements,
                       const std::string& routing = "");

/// The fig09 + fig10 + ablation mini-sweep: small-parameter versions of the
/// plans above concatenated in a fixed order. This is the workload for
/// bench/micro_sweep (BENCH_sweep.json), `gputn sweep`, and the jobs=1 vs
/// jobs=N bit-identity tests.
Plan mini_sweep_plan();

/// Bench-driver helper: the value of a `--jobs N` argument in argv, or
/// `dflt` when absent (0 = hardware concurrency). Exits with a usage
/// message on a malformed value. Benches stay deterministic at any jobs
/// count, so their default is "all cores".
int jobs_from_args(int argc, char** argv, int dflt = 0);

}  // namespace gputn::exp

// Experiment plans: the unit of work for the parallel experiment engine.
//
// Reproducing the paper's evaluation surface (Figures 8-11, Table 3, the
// ablations) means executing dozens of *independent* (config, workload,
// seed) simulation runs. A Plan enumerates those runs as an ordered list of
// RunPoints — each one a closure that constructs its own Simulator +
// Cluster, executes, and returns the sliced workloads::ResultBase — and the
// exp::Runner shards them across a thread pool (runner.hpp).
//
// The plan's *order* is the determinism anchor: results are always
// reported, merged, and serialized in plan order, never completion order,
// so every derived artifact is bit-identical for any --jobs value.
//
// Points can be added directly (add) from typed workload configs, or
// generically (add_workload) through workloads::Registry, which makes every
// registered workload sweepable with string parameters for free — the same
// validation path the CLI uses.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "cluster/config.hpp"
#include "workloads/options.hpp"
#include "workloads/registry.hpp"

namespace gputn::exp {

/// One independent simulation run. `run` must be self-contained: it builds
/// every piece of simulated hardware it needs and shares no mutable state
/// with any other point (see the ownership rule on sim::Simulator).
struct RunPoint {
  std::string id;  ///< stable human-readable key, e.g. "jacobi/n256/GPU-TN"
  std::function<workloads::ResultBase()> run;
};

/// An ordered list of run points. Build once, run with exp::Runner.
class Plan {
 public:
  /// Append a point; returns its index (== position in the results vector).
  std::size_t add(std::string id,
                  std::function<workloads::ResultBase()> run) {
    points_.push_back(RunPoint{std::move(id), std::move(run)});
    return points_.size() - 1;
  }

  /// Append a registry-dispatched point: `workload` is looked up in `reg`
  /// immediately (throwing std::invalid_argument on an unknown name, so a
  /// bad plan fails at build time, not mid-sweep) and executed with
  /// opts.quiet forced on — parallel workers must not interleave stdout.
  std::size_t add_workload(const workloads::Registry& reg, std::string id,
                           const std::string& workload,
                           workloads::RunOptions opts,
                           workloads::WorkloadParams params,
                           cluster::SystemConfig sys);

  /// Move every point of `other` onto the end of this plan (for composing
  /// sweep helpers into one run, e.g. exp::mini_sweep_plan).
  void append(Plan other) {
    for (RunPoint& p : other.points_) points_.push_back(std::move(p));
  }

  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const RunPoint& operator[](std::size_t i) const { return points_[i]; }
  const std::vector<RunPoint>& points() const { return points_; }

 private:
  std::vector<RunPoint> points_;
};

}  // namespace gputn::exp

#include "exp/runner.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <thread>

#include "sim/json.hpp"
#include "sim/stats.hpp"
#include "workloads/strategy.hpp"

namespace gputn::exp {

namespace {

/// Execute one plan point into its result slot. The single per-point code
/// path shared by the inline (jobs=1) and pooled modes — determinism across
/// job counts falls out of there being nothing else to diverge.
void run_point(const RunPoint& point, RunResult& slot) {
  slot.id = point.id;
  auto t0 = std::chrono::steady_clock::now();
  try {
    slot.result = point.run();
    slot.ok = true;
  } catch (const std::exception& e) {
    slot.error = e.what();
  } catch (...) {
    slot.error = "unknown exception";
  }
  slot.wall_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
}

}  // namespace

Runner::Runner(int jobs) : jobs_(jobs > 0 ? jobs : hardware_jobs()) {}

int Runner::hardware_jobs() {
  unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? static_cast<int>(n) : 1;
}

RunSummary Runner::run(const Plan& plan) const {
  RunSummary summary;
  summary.results.resize(plan.size());
  auto t0 = std::chrono::steady_clock::now();

  const std::size_t n = plan.size();
  const int workers = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(jobs_), n));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      run_point(plan[i], summary.results[i]);
    }
  } else {
    // Self-scheduling pool: one shared cursor, each worker claims the next
    // unstarted index. No locks around results — slot i is written by
    // exactly one thread and read only after join().
    std::atomic<std::size_t> next{0};
    auto worker = [&plan, &summary, &next, n] {
      for (;;) {
        std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        run_point(plan[i], summary.results[i]);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  for (const RunResult& r : summary.results) {
    if (!r.ok) ++summary.failures;
  }
  summary.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  return summary;
}

std::string results_json(const RunSummary& summary) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < summary.results.size(); ++i) {
    const RunResult& r = summary.results[i];
    out += "  {\"id\": \"" + sim::json_escape(r.id) + "\", \"ok\": ";
    out += r.ok ? "true" : "false";
    if (r.ok) {
      const workloads::ResultBase& res = r.result;
      const char* mode =
          !res.mode.empty() ? res.mode.c_str() : strategy_name(res.strategy);
      out += ", \"label\": \"" + sim::json_escape(res.label) + "\"";
      out += ", \"mode\": \"" + sim::json_escape(mode) + "\"";
      out += ", \"nodes\": " + std::to_string(res.nodes);
      out += ", \"total_time_ps\": " + std::to_string(res.total_time);
      out += ", \"correct\": ";
      out += res.correct ? "true" : "false";
      out += ",\n   \"stats\": " + sim::stats_json(res.net_stats);
    } else {
      out += ", \"error\": \"" + sim::json_escape(r.error) + "\"";
    }
    out += i + 1 < summary.results.size() ? "},\n" : "}\n";
  }
  out += "]";
  return out;
}

}  // namespace gputn::exp

#include "exp/plan.hpp"

#include <stdexcept>
#include <utility>

namespace gputn::exp {

std::size_t Plan::add_workload(const workloads::Registry& reg, std::string id,
                               const std::string& workload,
                               workloads::RunOptions opts,
                               workloads::WorkloadParams params,
                               cluster::SystemConfig sys) {
  const workloads::WorkloadEntry* entry = reg.find(workload);
  if (entry == nullptr) {
    throw std::invalid_argument("exp::Plan: unknown workload '" + workload +
                                "'");
  }
  opts.quiet = true;
  // The entry outlives the plan (registries are built once and never
  // shrink); capture the runner by reference to the registry's storage.
  const workloads::WorkloadRunner& run = entry->run;
  return add(std::move(id),
             [&run, opts, params = std::move(params),
              sys = std::move(sys)]() -> workloads::ResultBase {
               return run(opts, params, sys);
             });
}

}  // namespace gputn::exp

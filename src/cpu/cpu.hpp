// Host CPU model.
//
// Host code runs as simulator coroutines; the Cpu object models aggregate
// compute throughput (Table 2: 8-wide OOO, 4 GHz, 8 cores) and the software
// costs of the networking runtime (message setup, posting, polling) that the
// paper's strategies pay in different places.
#pragma once

#include <cstdint>

#include "mem/memory.hpp"
#include "obs/busy.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"
#include "sim/trace.hpp"

namespace gputn::cpu {

struct CpuConfig {
  int cores = 8;             // Table 2
  double clock_ghz = 4.0;    // Table 2
  /// Sustained flops per core per cycle (8-wide OOO with FMA SIMD).
  double flops_per_core_per_cycle = 16.0;
  /// Parallel-efficiency factor for OpenMP-style loops.
  double parallel_efficiency = 0.85;
  /// Aggregate DRAM bandwidth (Table 2: DDR4, 8 channels, 2133 MHz).
  sim::Bandwidth mem_bandwidth = sim::Bandwidth::gibps(127);
  /// L3 capacity and bandwidth (Table 2: 16 MB L3). Working sets that fit
  /// in L3 stream much faster — this is what makes the CPU competitive on
  /// small problems (Figures 9 and 10 crossovers).
  std::uint64_t l3_bytes = 16ull << 20;
  sim::Bandwidth l3_bandwidth = sim::Bandwidth::gibps(400);
  /// Per-operation bytes below which the L3 tier applies. Streaming
  /// kernels share the L3 with the rest of the working set (vectors, MPI
  /// internals, DMA-fresh lines), so only ops well under the capacity see
  /// cache-speed service; 1/8 of L3 is a standard effective-residency rule.
  std::uint64_t l3_tier_bytes = 2ull << 20;
  /// Two-sided MPI staging-copy bandwidth (per side). The pure-CPU baseline
  /// pays these eager-protocol bounce-buffer copies; GPU configurations use
  /// peer-to-peer RDMA (GPUDirect-style) and do not (§1).
  sim::Bandwidth copy_bandwidth = sim::Bandwidth::gibps(80);
  /// Software cost to build + post a two-sided message (full network stack).
  sim::Tick send_stack_cost = sim::ns(350);
  /// Software cost to post a receive.
  sim::Tick recv_stack_cost = sim::ns(150);
  /// Software cost to construct + register a one-sided put / triggered op
  /// ("partial network stack" of Table 1: packet build off the critical
  /// path).
  sim::Tick post_cost = sim::ns(250);
  /// Driver-side cost to enqueue a kernel to the GPU stream.
  sim::Tick kernel_enqueue_cost = sim::ns(200);
  /// Interval between polls when host code spins on a memory flag.
  sim::Tick poll_interval = sim::ns(60);
};

class Cpu {
 public:
  Cpu(sim::Simulator& sim, mem::Memory& memory, CpuConfig config)
      : sim_(&sim), mem_(&memory), config_(config), util_(config.cores) {}
  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  const CpuConfig& config() const { return config_; }
  sim::Simulator& simulator() { return *sim_; }
  mem::Memory& memory() { return *mem_; }

  /// Busy the host for `t` (single thread).
  sim::Task<> compute(sim::Tick t) { return occupy(1, t); }

  /// Single-threaded flop-bound phase.
  sim::Task<> compute_flops_serial(double flops);

  /// OpenMP-style parallel phase: `flops` of arithmetic touching `bytes` of
  /// memory, spread across all cores; takes the max of the compute-bound
  /// and bandwidth-bound times (roofline).
  sim::Task<> compute_parallel(double flops, std::uint64_t bytes);

  /// Spin until *addr >= value, polling at the configured interval.
  sim::Task<> wait_value_ge(mem::Addr addr, std::uint64_t value);

  /// Streaming time for `bytes` with the L3/DRAM blend: the first
  /// `l3_tier_bytes` are served at L3 speed, the remainder at `miss_bw`.
  /// Continuous in `bytes`, so scaling curves have no cliff at the tier.
  sim::Tick tiered_stream_time(std::uint64_t bytes,
                               const sim::Bandwidth& miss_bw) const;

  /// Time compute_parallel would take (for closed-form sanity checks).
  sim::Tick parallel_time(double flops, std::uint64_t bytes) const;

  /// Host staging copy (eager-protocol bounce buffer) of `bytes`; uses L3
  /// bandwidth when the buffer fits in L3.
  sim::Task<> staging_copy(std::uint64_t bytes);
  sim::Tick staging_copy_time(std::uint64_t bytes) const;

  sim::StatRegistry& stats() { return stats_; }

  /// Core-occupancy ledger over `cores` units. Flag-poll spins count as
  /// busy (they go through compute()): burning a core to poll is exactly
  /// the CPU cost the paper's triggered strategies avoid, so it must show
  /// up in the utilization report.
  const obs::BusyTracker& util() const { return util_; }

  /// Attach a trace recorder; parallel-compute and staging-copy phases are
  /// emitted as spans onto `lane`. Flag-poll spins are deliberately not
  /// traced — one span per poll would drown the timeline.
  void set_trace(sim::TraceRecorder* trace, std::string lane) {
    trace_ = trace;
    trace_lane_ = std::move(lane);
  }

 private:
  /// Hold `units` cores in the ledger while the delay elapses. The model
  /// itself has no core contention (phases just take time); the ledger is
  /// what distinguishes a single polling thread from an all-cores phase.
  sim::Task<> occupy(int units, sim::Tick t) {
    for (int i = 0; i < units; ++i) util_.acquire(sim_->now());
    co_await sim_->delay(t);
    for (int i = 0; i < units; ++i) util_.release(sim_->now());
  }

  sim::Simulator* sim_;
  mem::Memory* mem_;
  CpuConfig config_;
  obs::BusyTracker util_;
  sim::StatRegistry stats_;
  sim::TraceRecorder* trace_ = nullptr;
  std::string trace_lane_;
};

}  // namespace gputn::cpu

#include "cpu/cpu.hpp"

#include <algorithm>

namespace gputn::cpu {

sim::Task<> Cpu::compute_flops_serial(double flops) {
  double flops_per_ns = config_.flops_per_core_per_cycle * config_.clock_ghz;
  co_await compute(sim::ns(flops / flops_per_ns));
}

sim::Tick Cpu::tiered_stream_time(std::uint64_t bytes,
                                  const sim::Bandwidth& miss_bw) const {
  std::uint64_t hit = std::min(bytes, config_.l3_tier_bytes);
  std::uint64_t miss = bytes - hit;
  return config_.l3_bandwidth.serialize(hit) + miss_bw.serialize(miss);
}

sim::Tick Cpu::parallel_time(double flops, std::uint64_t bytes) const {
  double flops_per_ns = config_.flops_per_core_per_cycle * config_.clock_ghz *
                        config_.cores * config_.parallel_efficiency;
  sim::Tick compute_bound = sim::ns(flops / flops_per_ns);
  sim::Tick memory_bound = tiered_stream_time(bytes, config_.mem_bandwidth);
  return std::max(compute_bound, memory_bound);
}

sim::Tick Cpu::staging_copy_time(std::uint64_t bytes) const {
  return tiered_stream_time(bytes, config_.copy_bandwidth);
}

sim::Task<> Cpu::staging_copy(std::uint64_t bytes) {
  sim::Tick begin = sim_->now();
  co_await compute(staging_copy_time(bytes));
  if (trace_ != nullptr) {
    trace_->span(trace_lane_, "staging_copy", "cpu", begin, sim_->now(),
                 "{\"bytes\":" + std::to_string(bytes) + "}");
  }
}

sim::Task<> Cpu::compute_parallel(double flops, std::uint64_t bytes) {
  sim::Tick begin = sim_->now();
  co_await occupy(config_.cores, parallel_time(flops, bytes));
  if (trace_ != nullptr) {
    trace_->span(trace_lane_, "compute", "cpu", begin, sim_->now(),
                 "{\"flops\":" + std::to_string(flops) +
                     ",\"bytes\":" + std::to_string(bytes) + "}");
  }
}

sim::Task<> Cpu::wait_value_ge(mem::Addr addr, std::uint64_t value) {
  ++stats_.counter("flag_waits");
  while (mem_->load<std::uint64_t>(addr) < value) {
    co_await compute(config_.poll_interval);
  }
}

}  // namespace gputn::cpu

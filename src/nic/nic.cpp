#include "nic/nic.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace gputn::nic {

Nic::Nic(sim::Simulator& sim, mem::Memory& memory, net::Fabric& fabric,
         NicConfig config)
    : sim_(&sim),
      mem_(&memory),
      fabric_(&fabric),
      config_(config),
      node_id_(fabric.add_node(this)),
      cmd_queue_(sim),
      rx_queue_(sim),
      tx_dma_(sim, memory, config.dma_bandwidth, config.dma_startup),
      rx_dma_(sim, memory, config.dma_bandwidth, config.dma_startup),
      cq_(sim),
      reliability_(sim, fabric, node_id_, config.reliability, stats_,
                   [this](net::Message&& m) { rx_queue_.push(std::move(m)); }),
      log_("nic" + std::to_string(node_id_), sim.now_ptr()) {
  sim_->spawn(tx_loop(), log_.component() + ".tx");
  sim_->spawn(rx_loop(), log_.component() + ".rx");
}

void Nic::ring_doorbell(Command cmd) {
  ++stats_.counter("doorbells");
  sim_->schedule_in(config_.doorbell_latency, [this, cmd = std::move(cmd)] {
    cmd_queue_.push(cmd);
  });
}

void Nic::enqueue_internal(Command cmd) {
  ++stats_.counter("internal_cmds");
  cmd_queue_.push(std::move(cmd));
}

void Nic::issue_rndv_pull(const PendingRts& rts, const RecvDesc& r) {
  if (rts.bytes > r.max_bytes) {
    throw std::runtime_error("recv buffer too small for rendezvous send");
  }
  ++stats_.counter("rendezvous_pulls");
  net::Message pull;
  pull.src = node_id_;
  pull.dst = rts.src;
  pull.kind = kRndvPull;
  pull.h0 = rts.sender_buf;
  pull.h1 = rts.bytes;
  pull.h2 = r.local_addr;
  pull.h3 = r.flag;
  pull.h4 = r.flag_value;
  pull.h5 = r.cq_cookie;
  reliability_.send(std::move(pull));
}

void Nic::post_recv(RecvDesc r) {
  ++stats_.counter("recvs_posted");
  // Check parked rendezvous RTS descriptors first...
  for (auto it = pending_rts_.begin(); it != pending_rts_.end(); ++it) {
    if ((r.src == kAnySource || it->src == r.src) && it->tag == r.tag) {
      PendingRts rts = *it;
      pending_rts_.erase(it);
      issue_rndv_pull(rts, r);
      return;
    }
  }
  // ...then the unexpected eager queue (message arrived before the recv).
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if ((r.src == kAnySource || it->src == r.src) && it->h0 == r.tag) {
      net::Message msg = std::move(*it);
      unexpected_.erase(it);
      if (msg.payload.size() > r.max_bytes) {
        throw std::runtime_error("recv buffer too small for matched send");
      }
      ++stats_.counter("recvs_matched_unexpected");
      std::uint64_t bytes = msg.payload.size();
      std::uint64_t cookie = r.cq_cookie;
      sim_->spawn(
          [](Nic* nic, mem::Addr dst, std::vector<std::byte> payload,
             mem::Addr flag, std::uint64_t flag_value, std::uint64_t cookie,
             std::uint64_t bytes) -> sim::Task<> {
            co_await nic->land_payload(dst, std::move(payload), flag,
                                       flag_value);
            nic->push_cq(cookie, 3, bytes);
          }(this, r.local_addr, std::move(msg.payload), r.flag, r.flag_value,
            cookie, bytes),
          log_.component() + ".land");
      return;
    }
  }
  posted_.push_back(r);
}

void Nic::deliver(net::Message&& msg) {
  // All wire arrivals pass through the reliability layer: ACK/NACK traffic
  // is absorbed there, data reaches rx_queue_ exactly once and in order.
  reliability_.on_wire_receive(std::move(msg));
}

void Nic::set_flag(mem::Addr flag, std::uint64_t value) {
  if (flag != 0) mem_->store<std::uint64_t>(flag, value);
}

void Nic::push_cq(std::uint64_t cookie, std::uint32_t kind,
                  std::uint64_t bytes) {
  if (cookie == 0) return;
  ++stats_.counter("cq_entries");
  cq_.push(CqEntry{cookie, kind, bytes, sim_->now()});
}

sim::Task<> Nic::tx_loop() {
  for (;;) {
    Command cmd = co_await cmd_queue_.pop();
    sim::Tick begin = sim_->now();
    co_await sim_->delay(config_.cmd_fetch);
    const char* kind = std::holds_alternative<PutDesc>(cmd)   ? "put"
                       : std::holds_alternative<GetDesc>(cmd) ? "get"
                                                              : "send";
    co_await execute(std::move(cmd));
    if (trace_ != nullptr) {
      trace_->span(trace_lane_, std::string("tx:") + kind, "nic", begin,
                   sim_->now());
    }
  }
}

sim::Task<> Nic::execute(Command cmd) {
  if (auto* put = std::get_if<PutDesc>(&cmd)) {
    ++stats_.counter("puts");
    net::Message msg;
    msg.src = node_id_;
    msg.dst = put->target;
    msg.kind = kPut;
    msg.h0 = put->remote_addr;
    msg.h1 = put->remote_flag;
    msg.h2 = put->flag_value;
    msg.h3 = put->remote_trigger_tag_plus1;
    co_await tx_dma_.read_into(msg.payload, put->local_addr, put->bytes);
    // Payload has left the send buffer: local completion.
    set_flag(put->local_flag, put->flag_value);
    push_cq(put->cq_cookie, 1, put->bytes);
    reliability_.send(std::move(msg));
  } else if (auto* get = std::get_if<GetDesc>(&cmd)) {
    ++stats_.counter("gets");
    net::Message msg;
    msg.src = node_id_;
    msg.dst = get->target;
    msg.kind = kGetReq;
    msg.h0 = get->remote_addr;   // where to read at the target
    msg.h1 = get->bytes;
    msg.h2 = get->local_addr;    // reply lands here
    msg.h3 = (static_cast<std::uint64_t>(get->local_flag));
    // Stash the flag value in the reply via the target (h2/h3 round-trip).
    reliability_.send(std::move(msg));
    // local_flag is raised when the GetReply lands (rx path).
    (void)get->flag_value;  // carried implicitly: reply uses value 1 + addr
  } else if (auto* send = std::get_if<SendDesc>(&cmd)) {
    ++stats_.counter("sends");
    if (send->bytes <= config_.eager_threshold) {
      net::Message msg;
      msg.src = node_id_;
      msg.dst = send->target;
      msg.kind = kSend;
      msg.h0 = send->tag;
      co_await tx_dma_.read_into(msg.payload, send->local_addr, send->bytes);
      set_flag(send->local_flag, send->flag_value);
      push_cq(send->cq_cookie, 2, send->bytes);
      reliability_.send(std::move(msg));
    } else {
      // Rendezvous: ship only the ready-to-send descriptor; the payload
      // stays put until the target's receive matches and pulls it.
      ++stats_.counter("rendezvous_sends");
      rndv_sender_state_[send->local_addr] =
          SenderRndvState{send->local_flag, send->flag_value, send->cq_cookie};
      net::Message rts;
      rts.src = node_id_;
      rts.dst = send->target;
      rts.kind = kRts;
      rts.h0 = send->tag;
      rts.h1 = send->bytes;
      rts.h2 = send->local_addr;
      reliability_.send(std::move(rts));
      // Local completion is raised when the pull drains the buffer.
    }
  }
}

sim::Task<> Nic::land_payload(mem::Addr dst, std::vector<std::byte>&& payload,
                              mem::Addr flag, std::uint64_t flag_value) {
  if (payload.empty()) {
    set_flag(flag, flag_value);
    co_return;
  }
  std::vector<std::byte> data = std::move(payload);
  co_await rx_dma_.write_from(dst, data);
  set_flag(flag, flag_value);
}

sim::Task<> Nic::handle_rx(net::Message msg) {
  switch (msg.kind) {
    case kPut: {
      ++stats_.counter("puts_received");
      std::uint64_t trigger_tag_plus1 = msg.h3;
      co_await land_payload(msg.h0, std::move(msg.payload), msg.h1, msg.h2);
      if (trigger_tag_plus1 != 0 && rx_trigger_hook_) {
        // Counting receive event: bump the local trigger counter so a
        // chained operation can fire with no processor involvement.
        ++stats_.counter("rx_trigger_events");
        rx_trigger_hook_(trigger_tag_plus1 - 1);
      }
      break;
    }
    case kSend: {
      ++stats_.counter("sends_received");
      bool matched = false;
      for (auto it = posted_.begin(); it != posted_.end(); ++it) {
        if ((it->src == kAnySource || it->src == msg.src) &&
            it->tag == msg.h0) {
          RecvDesc r = *it;
          posted_.erase(it);
          if (msg.payload.size() > r.max_bytes) {
            throw std::runtime_error("recv buffer too small for matched send");
          }
          std::uint64_t bytes = msg.payload.size();
          co_await land_payload(r.local_addr, std::move(msg.payload), r.flag,
                                r.flag_value);
          push_cq(r.cq_cookie, 3, bytes);
          matched = true;
          break;
        }
      }
      if (!matched) {
        ++stats_.counter("unexpected_msgs");
        unexpected_.push_back(std::move(msg));
      }
      break;
    }
    case kRts: {
      ++stats_.counter("rts_received");
      PendingRts rts{msg.src, msg.h0, msg.h1, msg.h2};
      bool matched = false;
      for (auto it = posted_.begin(); it != posted_.end(); ++it) {
        if ((it->src == kAnySource || it->src == msg.src) &&
            it->tag == msg.h0) {
          RecvDesc r = *it;
          posted_.erase(it);
          issue_rndv_pull(rts, r);
          matched = true;
          break;
        }
      }
      if (!matched) pending_rts_.push_back(rts);
      break;
    }
    case kRndvPull: {
      ++stats_.counter("rndv_pulls_received");
      // We are the original sender: stream the payload to the receiver.
      net::Message data;
      data.src = node_id_;
      data.dst = msg.src;
      data.kind = kRndvData;
      data.h0 = msg.h2;  // receiver's buffer
      data.h1 = msg.h3;  // receiver's flag
      data.h2 = msg.h4;  // receiver's flag value
      data.h3 = msg.h5;  // receiver's cq cookie
      co_await tx_dma_.read_into(data.payload, msg.h0, msg.h1);
      // Payload has left the send buffer: the send's local completion.
      auto st = rndv_sender_state_.find(msg.h0);
      if (st != rndv_sender_state_.end()) {
        set_flag(st->second.local_flag, st->second.flag_value);
        push_cq(st->second.cq_cookie, 2, msg.h1);
        rndv_sender_state_.erase(st);
      }
      reliability_.send(std::move(data));
      break;
    }
    case kRndvData: {
      ++stats_.counter("rndv_data_received");
      std::uint64_t bytes = msg.payload.size();
      std::uint64_t cookie = msg.h3;
      co_await land_payload(msg.h0, std::move(msg.payload), msg.h1, msg.h2);
      push_cq(cookie, 3, bytes);
      break;
    }
    case kGetReq: {
      ++stats_.counter("get_reqs_received");
      net::Message reply;
      reply.src = node_id_;
      reply.dst = msg.src;
      reply.kind = kGetReply;
      reply.h0 = msg.h2;  // initiator's local_addr
      reply.h1 = msg.h3;  // initiator's local_flag
      reply.h2 = 1;       // flag value
      co_await tx_dma_.read_into(reply.payload, msg.h0, msg.h1);
      reliability_.send(std::move(reply));
      break;
    }
    case kGetReply: {
      ++stats_.counter("get_replies_received");
      co_await land_payload(msg.h0, std::move(msg.payload), msg.h1, msg.h2);
      break;
    }
    default:
      throw std::logic_error("nic: unknown message kind");
  }
}

sim::Task<> Nic::rx_loop() {
  for (;;) {
    net::Message msg = co_await rx_queue_.pop();
    sim::Tick begin = sim_->now();
    std::uint32_t kind = msg.kind;
    co_await sim_->delay(config_.rx_pipeline);
    co_await handle_rx(std::move(msg));
    if (trace_ != nullptr) {
      trace_->span(trace_lane_, "rx:" + std::to_string(kind), "nic", begin,
                   sim_->now());
    }
  }
}

}  // namespace gputn::nic

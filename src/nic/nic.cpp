#include "nic/nic.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "obs/flight.hpp"

namespace gputn::nic {

Nic::Nic(sim::Simulator& sim, mem::Memory& memory, net::Fabric& fabric,
         NicConfig config)
    : sim_(&sim),
      mem_(&memory),
      fabric_(&fabric),
      config_(config),
      node_id_(fabric.add_node(this)),
      cmd_queue_(sim),
      rx_queue_(sim),
      tx_dma_(sim, memory, config.dma_bandwidth, config.dma_startup),
      rx_dma_(sim, memory, config.dma_bandwidth, config.dma_startup),
      cq_(sim),
      reliability_(sim, fabric, node_id_, config.reliability, stats_,
                   [this](net::Message&& m) { rx_queue_.push(std::move(m)); }),
      log_("nic" + std::to_string(node_id_), sim.now_ptr()) {
  if (config_.rate_limit.ops_per_sec > 0.0) {
    rate_ = std::make_unique<TokenBucket>(sim, config_.rate_limit);
  }
  sim_->spawn(tx_loop(), log_.component() + ".tx");
  sim_->spawn(rx_loop(), log_.component() + ".rx");
}

void Nic::ring_doorbell(Command cmd) {
  // A direct ring is post and flush in one: posted == rung.
  ring_doorbell(std::move(cmd), sim_->now());
}

void Nic::ring_doorbell(Command cmd, sim::Tick posted) {
  ++stats_.counter("doorbells");
  // Stage the command and schedule a [this]-only event rather than moving
  // the (large) Command variant through the queue: the doorbell latency is
  // constant, so pop-front order equals ring order, and the event always
  // fits EventFn's inline storage.
  QueuedCmd qc;
  qc.cmd = std::move(cmd);
  qc.posted = posted;
  qc.rung = sim_->now();
  doorbell_staging_.push_back(std::move(qc));
  sim_->schedule_in(config_.doorbell_latency, [this] {
    cmd_util_.enqueue(sim_->now());
    QueuedCmd front = std::move(doorbell_staging_.front());
    doorbell_staging_.pop_front();
    front.enqueued = sim_->now();
    cmd_queue_.push(std::move(front));
  });
}

void Nic::enqueue_internal(Command cmd) {
  enqueue_internal(std::move(cmd), -1, false);
}

void Nic::enqueue_internal(Command cmd, sim::Tick trigger_at,
                           bool trigger_mmio) {
  ++stats_.counter("internal_cmds");
  cmd_util_.enqueue(sim_->now());
  cmd_queue_.push(
      QueuedCmd{std::move(cmd), sim_->now(), trigger_at, trigger_mmio});
}

void Nic::stamp_tx(net::Message& msg, sim::Tick t_cmd, sim::Tick t_trigger,
                   bool trigger_mmio) {
  msg.flow = fabric_->next_flow(node_id_);
  msg.t_cmd = t_cmd;
  msg.t_trigger = t_trigger;
  if (trace_ == nullptr) return;
  std::string args = net::flow_args(msg);
  if (msg.t_post >= 0 && msg.t_ring > msg.t_post) {
    // Satellite view of Qp batching: how long this op waited in the
    // software queue before its batch's doorbell was rung.
    trace_->span(trace_lane_, "qp:batch-wait", "nic", msg.t_post, msg.t_ring,
                 args);
  }
  if (t_trigger >= 0 && trigger_mmio && !gpu_lane_.empty()) {
    // Triggered by a GPU store: the flow starts inside the kernel's span
    // on the gpu lane, steps through the trigger unit's match span, then
    // through this NIC's tx span.
    trace_->flow_begin(gpu_lane_, "msg", "flow", t_trigger, msg.flow, args);
    if (!trig_lane_.empty() && t_cmd >= 0) {
      trace_->flow_step(trig_lane_, "msg", "flow", t_cmd, msg.flow, args);
    }
    trace_->flow_step(trace_lane_, "msg", "flow", sim_->now(), msg.flow,
                      args);
  } else if (t_trigger >= 0 && !trig_lane_.empty()) {
    // Fired by a counting-receive event: causality starts at the trigger
    // unit, not the GPU.
    trace_->flow_begin(trig_lane_, "msg", "flow", t_cmd, msg.flow, args);
    trace_->flow_step(trace_lane_, "msg", "flow", sim_->now(), msg.flow,
                      args);
  } else {
    trace_->flow_begin(trace_lane_, "msg", "flow", sim_->now(), msg.flow,
                       args);
  }
}

void Nic::stamp_tx(net::Message& msg, const QueuedCmd& qc) {
  msg.t_post = qc.posted;
  msg.t_ring = qc.rung;
  msg.t_pop = qc.popped;
  msg.t_admit = qc.admitted;
  stamp_tx(msg, qc.enqueued, qc.trigger, qc.trigger_mmio);
}

void Nic::record_delivery(const RxStamps& s) {
  sim::Tick now = sim_->now();
  // Stage deltas in nanoseconds, pow2-bucketed. Recording is pure
  // bookkeeping (no simulator interaction), so it cannot perturb timing;
  // it is always on, which is what lets every run report a Figure-8-style
  // latency decomposition for free.
  auto rec = [this](const char* name, sim::Tick from, sim::Tick to) {
    if (from < 0 || to < from) return;
    stats_.histogram(name).add(static_cast<std::uint64_t>((to - from) /
                                                          1000));
  };
  if (s.t_trigger >= 0) rec("lat.trigger_to_fire", s.t_trigger, s.t_cmd);
  rec("lat.tx_queue", s.t_cmd, s.t_wire);
  rec("lat.wire", s.t_wire, s.t_rx);
  rec("lat.rx_to_deposit", s.t_rx, now);
  rec("lat.end_to_end", s.t_trigger >= 0 ? s.t_trigger : s.t_cmd, now);
  if (trace_ != nullptr && s.flow != 0) {
    trace_->flow_end(trace_lane_, "msg", "flow", now, s.flow);
  }
  record_flight(s, now);
}

void Nic::record_flight(const RxStamps& s, sim::Tick t_deposit) {
  if (flight_ == nullptr) return;
  obs::FlightLeg leg;
  leg.flow = s.flow;
  leg.src = s.src;
  leg.dst = s.dst;
  leg.kind = s.kind;
  leg.bytes = s.bytes;
  leg.retransmits = s.retransmits;
  leg.hops = s.hops;
  leg.t_trigger = s.t_trigger;
  leg.t_post = s.t_post;
  leg.t_ring = s.t_ring;
  leg.t_cmd = s.t_cmd;
  leg.t_pop = s.t_pop;
  leg.t_admit = s.t_admit;
  leg.t_wire_first = s.t_wire_first;
  leg.t_wire = s.t_wire;
  leg.t_switch = s.t_switch;
  leg.t_rx = s.t_rx;
  leg.t_deposit = t_deposit;
  flight_->record(leg, s.op_tag, s.tenant);
}

void Nic::issue_rndv_pull(const PendingRts& rts, const RecvDesc& r) {
  if (rts.bytes > r.max_bytes) {
    throw std::runtime_error("recv buffer too small for rendezvous send");
  }
  ++stats_.counter("rendezvous_pulls");
  net::Message pull;
  pull.src = node_id_;
  pull.dst = rts.src;
  pull.kind = kRndvPull;
  pull.h0 = rts.sender_buf;
  pull.h1 = rts.bytes;
  pull.h2 = r.local_addr;
  pull.h3 = r.flag;
  pull.h4 = r.flag_value;
  pull.h5 = r.cq_cookie;
  stamp_tx(pull, sim_->now(), -1, false);
  reliability_.send(std::move(pull));
}

void Nic::post_recv(RecvDesc r) {
  ++stats_.counter("recvs_posted");
  // Check parked rendezvous RTS descriptors first...
  for (auto it = pending_rts_.begin(); it != pending_rts_.end(); ++it) {
    if ((r.src == kAnySource || it->src == r.src) && it->tag == r.tag) {
      PendingRts rts = *it;
      pending_rts_.erase(it);
      issue_rndv_pull(rts, r);
      return;
    }
  }
  // ...then the unexpected eager queue (message arrived before the recv).
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if ((r.src == kAnySource || it->src == r.src) && it->h0 == r.tag) {
      net::Message msg = std::move(*it);
      unexpected_.erase(it);
      if (msg.payload.size() > r.max_bytes) {
        throw std::runtime_error("recv buffer too small for matched send");
      }
      ++stats_.counter("recvs_matched_unexpected");
      std::uint64_t bytes = msg.payload.size();
      std::uint64_t cookie = r.cq_cookie;
      RxStamps stamps = RxStamps::from(msg);
      sim_->spawn(
          [](Nic* nic, mem::Addr dst, std::vector<std::byte> payload,
             mem::Addr flag, std::uint64_t flag_value, std::uint64_t cookie,
             std::uint64_t bytes, RxStamps stamps) -> sim::Task<> {
            co_await nic->land_payload(dst, std::move(payload), flag,
                                       flag_value);
            nic->push_cq(cookie, 3, bytes);
            nic->record_delivery(stamps);
          }(this, r.local_addr, std::move(msg.payload), r.flag, r.flag_value,
            cookie, bytes, stamps),
          log_.component() + ".land");
      return;
    }
  }
  posted_.push_back(r);
}

void Nic::deliver(net::Message&& msg) {
  // All wire arrivals pass through the reliability layer: ACK/NACK traffic
  // is absorbed there, data reaches rx_queue_ exactly once and in order.
  reliability_.on_wire_receive(std::move(msg));
}

void Nic::set_flag(mem::Addr flag, std::uint64_t value) {
  if (flag != 0) mem_->store<std::uint64_t>(flag, value);
}

void Nic::push_cq(std::uint64_t cookie, std::uint32_t kind,
                  std::uint64_t bytes) {
  if (cookie == 0) return;
  ++stats_.counter("cq_entries");
  cq_.push(CqEntry{cookie, kind, bytes, sim_->now()});
}

sim::Task<> Nic::tx_loop() {
  for (;;) {
    QueuedCmd qc = co_await cmd_queue_.pop();
    qc.popped = sim_->now();
    if (rate_ != nullptr) {
      // Rate-limited admission: the command stays "queued" in the ledger
      // while it waits for a token, so pacing stalls show up as NIC
      // command-queue time in the utilization report.
      co_await rate_->acquire();
      stats_.counter("nic.tb.admitted") = rate_->admitted();
      stats_.counter("nic.tb.stalls") = rate_->stalls();
      stats_.counter("nic.tb.stall_ps") =
          static_cast<std::uint64_t>(rate_->stalled_time());
    }
    sim::Tick begin = sim_->now();
    qc.admitted = begin;  // == popped when pacing is off or had tokens
    cmd_util_.dequeue(begin);
    cmd_util_.acquire(begin);
    co_await sim_->delay(config_.cmd_fetch);
    const char* kind = std::holds_alternative<PutDesc>(qc.cmd)   ? "put"
                       : std::holds_alternative<GetDesc>(qc.cmd) ? "get"
                                                                 : "send";
    co_await execute(std::move(qc));
    cmd_util_.release(sim_->now());
    if (trace_ != nullptr) {
      trace_->span(trace_lane_, std::string("tx:") + kind, "nic", begin,
                   sim_->now());
    }
  }
}

sim::Task<> Nic::execute(QueuedCmd qc) {
  Command& cmd = qc.cmd;
  if (auto* put = std::get_if<PutDesc>(&cmd)) {
    ++stats_.counter("puts");
    net::Message msg;
    msg.src = node_id_;
    msg.dst = put->target;
    msg.kind = kPut;
    msg.h0 = put->remote_addr;
    msg.h1 = put->remote_flag;
    msg.h2 = put->flag_value;
    msg.h3 = put->remote_trigger_tag_plus1;
    msg.op_tag = put->op_tag;
    msg.tenant = put->tenant;
    msg.payload = fabric_->payload_pool().acquire();
    co_await tx_dma_.read_into(msg.payload, put->local_addr, put->bytes);
    // Payload has left the send buffer: local completion.
    set_flag(put->local_flag, put->flag_value);
    push_cq(put->cq_cookie, 1, put->bytes);
    stamp_tx(msg, qc);
    reliability_.send(std::move(msg));
  } else if (auto* get = std::get_if<GetDesc>(&cmd)) {
    ++stats_.counter("gets");
    net::Message msg;
    msg.src = node_id_;
    msg.dst = get->target;
    msg.kind = kGetReq;
    msg.h0 = get->remote_addr;   // where to read at the target
    msg.h1 = get->bytes;
    msg.h2 = get->local_addr;    // reply lands here
    msg.h3 = (static_cast<std::uint64_t>(get->local_flag));
    msg.op_tag = get->op_tag;
    msg.tenant = get->tenant;
    // Stash the flag value in the reply via the target (h2/h3 round-trip).
    stamp_tx(msg, qc);
    reliability_.send(std::move(msg));
    // local_flag is raised when the GetReply lands (rx path).
    (void)get->flag_value;  // carried implicitly: reply uses value 1 + addr
  } else if (auto* send = std::get_if<SendDesc>(&cmd)) {
    ++stats_.counter("sends");
    if (send->bytes <= config_.eager_threshold) {
      net::Message msg;
      msg.src = node_id_;
      msg.dst = send->target;
      msg.kind = kSend;
      msg.h0 = send->tag;
      msg.op_tag = send->op_tag;
      msg.tenant = send->tenant;
      msg.payload = fabric_->payload_pool().acquire();
      co_await tx_dma_.read_into(msg.payload, send->local_addr, send->bytes);
      set_flag(send->local_flag, send->flag_value);
      push_cq(send->cq_cookie, 2, send->bytes);
      stamp_tx(msg, qc);
      reliability_.send(std::move(msg));
    } else {
      // Rendezvous: ship only the ready-to-send descriptor; the payload
      // stays put until the target's receive matches and pulls it.
      ++stats_.counter("rendezvous_sends");
      rndv_sender_state_[send->local_addr] =
          SenderRndvState{send->local_flag, send->flag_value, send->cq_cookie};
      net::Message rts;
      rts.src = node_id_;
      rts.dst = send->target;
      rts.kind = kRts;
      rts.h0 = send->tag;
      rts.h1 = send->bytes;
      rts.h2 = send->local_addr;
      rts.op_tag = send->op_tag;
      rts.tenant = send->tenant;
      stamp_tx(rts, qc);
      reliability_.send(std::move(rts));
      // Local completion is raised when the pull drains the buffer.
    }
  }
}

sim::Task<> Nic::land_payload(mem::Addr dst, std::vector<std::byte>&& payload,
                              mem::Addr flag, std::uint64_t flag_value) {
  if (payload.empty()) {
    set_flag(flag, flag_value);
    co_return;
  }
  std::vector<std::byte> data = std::move(payload);
  co_await rx_dma_.write_from(dst, data);
  set_flag(flag, flag_value);
  // The staging buffer's bytes are in memory now; recycle its allocation.
  fabric_->payload_pool().release(std::move(data));
}

sim::Task<> Nic::handle_rx(net::Message msg) {
  // Captured before the payload is moved out; data-carrying kinds feed the
  // stage histograms (and end their trace flow) once the deposit is done.
  RxStamps stamps = RxStamps::from(msg);
  switch (msg.kind) {
    case kPut: {
      ++stats_.counter("puts_received");
      std::uint64_t trigger_tag_plus1 = msg.h3;
      co_await land_payload(msg.h0, std::move(msg.payload), msg.h1, msg.h2);
      record_delivery(stamps);
      if (trigger_tag_plus1 != 0 && rx_trigger_hook_) {
        // Counting receive event: bump the local trigger counter so a
        // chained operation can fire with no processor involvement.
        ++stats_.counter("rx_trigger_events");
        rx_trigger_hook_(trigger_tag_plus1 - 1);
      }
      break;
    }
    case kSend: {
      ++stats_.counter("sends_received");
      bool matched = false;
      for (auto it = posted_.begin(); it != posted_.end(); ++it) {
        if ((it->src == kAnySource || it->src == msg.src) &&
            it->tag == msg.h0) {
          RecvDesc r = *it;
          posted_.erase(it);
          if (msg.payload.size() > r.max_bytes) {
            throw std::runtime_error("recv buffer too small for matched send");
          }
          std::uint64_t bytes = msg.payload.size();
          co_await land_payload(r.local_addr, std::move(msg.payload), r.flag,
                                r.flag_value);
          push_cq(r.cq_cookie, 3, bytes);
          record_delivery(stamps);
          matched = true;
          break;
        }
      }
      if (!matched) {
        ++stats_.counter("unexpected_msgs");
        unexpected_.push_back(std::move(msg));
      }
      break;
    }
    case kRts: {
      ++stats_.counter("rts_received");
      PendingRts rts{msg.src, msg.h0, msg.h1, msg.h2};
      bool matched = false;
      for (auto it = posted_.begin(); it != posted_.end(); ++it) {
        if ((it->src == kAnySource || it->src == msg.src) &&
            it->tag == msg.h0) {
          RecvDesc r = *it;
          posted_.erase(it);
          issue_rndv_pull(rts, r);
          matched = true;
          break;
        }
      }
      if (!matched) pending_rts_.push_back(rts);
      break;
    }
    case kRndvPull: {
      ++stats_.counter("rndv_pulls_received");
      // We are the original sender: stream the payload to the receiver.
      net::Message data;
      data.src = node_id_;
      data.dst = msg.src;
      data.kind = kRndvData;
      data.h0 = msg.h2;  // receiver's buffer
      data.h1 = msg.h3;  // receiver's flag
      data.h2 = msg.h4;  // receiver's flag value
      data.h3 = msg.h5;  // receiver's cq cookie
      data.payload = fabric_->payload_pool().acquire();
      co_await tx_dma_.read_into(data.payload, msg.h0, msg.h1);
      // Payload has left the send buffer: the send's local completion.
      auto st = rndv_sender_state_.find(msg.h0);
      if (st != rndv_sender_state_.end()) {
        set_flag(st->second.local_flag, st->second.flag_value);
        push_cq(st->second.cq_cookie, 2, msg.h1);
        rndv_sender_state_.erase(st);
      }
      stamp_tx(data, sim_->now(), -1, false);
      reliability_.send(std::move(data));
      break;
    }
    case kRndvData: {
      ++stats_.counter("rndv_data_received");
      std::uint64_t bytes = msg.payload.size();
      std::uint64_t cookie = msg.h3;
      co_await land_payload(msg.h0, std::move(msg.payload), msg.h1, msg.h2);
      push_cq(cookie, 3, bytes);
      record_delivery(stamps);
      break;
    }
    case kGetReq: {
      ++stats_.counter("get_reqs_received");
      // The request leg ends here (no payload deposits). Feeds only the
      // flight recorder — the always-on histograms never saw get requests
      // and must not start to (pinned goldens).
      record_flight(stamps, sim_->now());
      net::Message reply;
      reply.src = node_id_;
      reply.dst = msg.src;
      reply.kind = kGetReply;
      reply.h0 = msg.h2;  // initiator's local_addr
      reply.h1 = msg.h3;  // initiator's local_flag
      reply.h2 = 1;       // flag value
      // The reply is the same logical op's second leg.
      reply.op_tag = msg.op_tag;
      reply.tenant = msg.tenant;
      reply.payload = fabric_->payload_pool().acquire();
      co_await tx_dma_.read_into(reply.payload, msg.h0, msg.h1);
      stamp_tx(reply, sim_->now(), -1, false);
      reliability_.send(std::move(reply));
      break;
    }
    case kGetReply: {
      ++stats_.counter("get_replies_received");
      co_await land_payload(msg.h0, std::move(msg.payload), msg.h1, msg.h2);
      record_delivery(stamps);
      break;
    }
    default:
      throw std::logic_error("nic: unknown message kind");
  }
}

sim::Task<> Nic::rx_loop() {
  for (;;) {
    net::Message msg = co_await rx_queue_.pop();
    sim::Tick begin = sim_->now();
    std::uint32_t kind = msg.kind;
    co_await sim_->delay(config_.rx_pipeline);
    co_await handle_rx(std::move(msg));
    if (trace_ != nullptr) {
      trace_->span(trace_lane_, "rx:" + std::to_string(kind), "nic", begin,
                   sim_->now());
    }
  }
}

}  // namespace gputn::nic

// RDMA-capable NIC model (Portals-4-flavoured).
//
// The NIC exposes a command queue fed by doorbells. Commands are one-sided
// puts/gets or two-sided tagged sends. The TX engine fetches a command,
// DMA-reads the payload out of node memory (after which the local completion
// flag is raised — the buffer is reusable), and hands the message to the
// fabric. The RX engine lands payloads via DMA and raises target-side
// completion flags, and performs tag matching for two-sided traffic
// (posted-receive list + unexpected-message queue, as in MPI).
//
// The GPU-TN triggered-operation extension lives in core/triggered.hpp and
// feeds this command queue when a trigger entry fires (§3.3: "the logic-level
// changes required for GPU-TN would be simple to add").
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <variant>

#include "fault/reliability.hpp"
#include "mem/dma.hpp"
#include "mem/memory.hpp"
#include "net/fabric.hpp"
#include "nic/token_bucket.hpp"
#include "obs/busy.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "sim/sync.hpp"

namespace gputn::obs {
class FlightSink;
}  // namespace gputn::obs

namespace gputn::nic {

struct NicConfig {
  /// Delay from a doorbell ring (MMIO store by CPU or GPU) until the command
  /// is visible to the NIC command processor.
  sim::Tick doorbell_latency = sim::ns(40);
  /// Command fetch/decode occupancy per command.
  sim::Tick cmd_fetch = sim::ns(30);
  /// RX pipeline latency per inbound message before DMA.
  sim::Tick rx_pipeline = sim::ns(40);
  /// On-die DMA engines (SoC: CPU/GPU/NIC share memory, no PCIe copy).
  /// Well above wire speed so staging does not add store-and-forward
  /// latency that a real cut-through RDMA NIC would pipeline away.
  sim::Bandwidth dma_bandwidth = sim::Bandwidth::gbps(1600);
  sim::Tick dma_startup = sim::ns(20);
  /// Two-sided sends up to this size travel eagerly (payload with the
  /// first message, buffered if unexpected); larger sends use the
  /// rendezvous protocol (RTS -> pull -> data), which avoids buffering
  /// large unexpected payloads at the cost of an extra round trip.
  std::uint64_t eager_threshold = 64 * 1024;
  /// End-to-end reliable delivery (sequence numbers, ACK/NACK, retransmit
  /// with exponential backoff). Disabled by default — a lossless fabric
  /// needs none of it and must pay zero message overhead; the cluster turns
  /// it on automatically when fault injection is configured.
  fault::ReliabilityConfig reliability;
  /// Token-bucket pacing of the command pipeline (multi-tenant NIC rate
  /// limiting). Disabled by default (ops_per_sec == 0): commands are
  /// admitted unconditionally and the limiter never suspends, so existing
  /// workloads are bit-identical with or without this field existing.
  TokenBucketConfig rate_limit;
};

/// Completion-queue entry: an alternative notification mechanism to
/// NIC-written memory flags (§4.2.4 contrasts the two). Commands may carry
/// a user cookie; the NIC pushes an entry when the operation completes
/// locally (puts/sends: payload out of the buffer; recvs: payload landed).
struct CqEntry {
  std::uint64_t cookie = 0;
  std::uint32_t kind = 0;  ///< 1=put, 2=send, 3=recv, 4=get
  std::uint64_t bytes = 0;
  sim::Tick timestamp = 0;
};

/// One-sided put: write `bytes` from initiator `local_addr` to target
/// `remote_addr`. Completion flags are optional (0 = none).
struct PutDesc {
  net::NodeId target = -1;
  mem::Addr local_addr = 0;
  std::uint64_t bytes = 0;
  mem::Addr remote_addr = 0;
  /// Initiator-side flag: set when the payload has left the send buffer.
  mem::Addr local_flag = 0;
  /// Target-side flag: set (in target memory) after the payload has landed.
  mem::Addr remote_flag = 0;
  std::uint64_t flag_value = 1;
  /// If nonzero - 1 != 0 semantics: after the payload lands, the target
  /// NIC increments its own trigger counter `remote_trigger_tag - 1`
  /// (Portals-style counting receive event). This is what lets triggered
  /// chains span nodes with no processor involvement (§6, Underwood et
  /// al.). 0 = disabled; tag T is encoded as T + 1.
  std::uint64_t remote_trigger_tag_plus1 = 0;
  /// Optional completion-queue cookie (0 = no CQ entry on local completion).
  std::uint64_t cq_cookie = 0;
  /// Observability pass-through (net::Message op_tag/tenant): pairs this
  /// put with its logical partner in the flight recorder. Never interpreted
  /// by the NIC.
  std::uint64_t op_tag = 0;
  std::int32_t tenant = -1;
};

/// One-sided get: read `bytes` from target `remote_addr` into initiator
/// `local_addr`; `local_flag` set when the data has landed locally.
struct GetDesc {
  net::NodeId target = -1;
  mem::Addr local_addr = 0;
  std::uint64_t bytes = 0;
  mem::Addr remote_addr = 0;
  mem::Addr local_flag = 0;
  std::uint64_t flag_value = 1;
  /// Observability pass-through; the GetReply inherits both (see PutDesc).
  std::uint64_t op_tag = 0;
  std::int32_t tenant = -1;
};

/// Two-sided tagged send (matched against a posted receive at the target).
/// Sends above the eager threshold use rendezvous: only a ready-to-send
/// header travels; the target pulls the payload once the receive matches.
struct SendDesc {
  net::NodeId target = -1;
  mem::Addr local_addr = 0;
  std::uint64_t bytes = 0;
  std::uint64_t tag = 0;
  mem::Addr local_flag = 0;
  std::uint64_t flag_value = 1;
  /// Optional completion-queue cookie (0 = no CQ entry).
  std::uint64_t cq_cookie = 0;
  /// Observability pass-through (see PutDesc).
  std::uint64_t op_tag = 0;
  std::int32_t tenant = -1;
};

using Command = std::variant<PutDesc, GetDesc, SendDesc>;

/// Posted receive for two-sided matching. `src == kAnySource` matches any.
struct RecvDesc {
  net::NodeId src = -1;
  std::uint64_t tag = 0;
  mem::Addr local_addr = 0;
  std::uint64_t max_bytes = 0;
  mem::Addr flag = 0;            ///< set when the payload has landed
  std::uint64_t flag_value = 1;
  /// Optional completion-queue cookie (0 = no CQ entry on completion).
  std::uint64_t cq_cookie = 0;
};

inline constexpr net::NodeId kAnySource = -1;

class Nic : public net::MessageSink {
 public:
  Nic(sim::Simulator& sim, mem::Memory& memory, net::Fabric& fabric,
      NicConfig config);
  ~Nic() override = default;

  net::NodeId node_id() const { return node_id_; }
  const NicConfig& config() const { return config_; }

  /// Ring the command doorbell. Models the doorbell-write-to-NIC latency;
  /// commands execute FIFO. Zero-cost for the caller (posted write).
  void ring_doorbell(Command cmd);
  /// Same, for commands that sat in a software queue before the ring (Qp
  /// batching): `posted` is when the command entered that queue, so the
  /// post->ring gap (batch wait) is visible per op instead of every command
  /// of a batch inheriting the flush time.
  void ring_doorbell(Command cmd, sim::Tick posted);

  /// Enqueue a command with no doorbell delay (used by on-NIC agents such as
  /// the triggered-op unit, which is already inside the NIC).
  void enqueue_internal(Command cmd);
  /// Same, carrying the triggering store's arrival time (latency stage
  /// `lat.trigger_to_fire`) and whether that store came from the GPU's
  /// MMIO trigger address (anchors the trace flow on the gpu lane) rather
  /// than a counting-receive event.
  void enqueue_internal(Command cmd, sim::Tick trigger_at, bool trigger_mmio);

  /// Post a two-sided receive. Matching is FIFO per (src, tag), wildcard
  /// source supported; checks the unexpected queue first.
  void post_recv(RecvDesc r);

  /// Hook invoked when an inbound put carries a counting-receive tag
  /// (PutDesc::remote_trigger_tag_plus1). The triggered-op extension
  /// registers itself here.
  void set_rx_trigger_hook(std::function<void(std::uint64_t tag)> hook) {
    rx_trigger_hook_ = std::move(hook);
  }

  /// Completion queue (§4.2.4's alternative to flag polling). Entries are
  /// pushed for commands that carry a nonzero cq_cookie.
  std::optional<CqEntry> cq_poll() { return cq_.try_pop(); }
  sim::Task<CqEntry> cq_wait() { return cq_.pop(); }
  std::size_t cq_depth() const { return cq_.size(); }

  // -- net::MessageSink ----------------------------------------------------
  void deliver(net::Message&& msg) override;

  sim::StatRegistry& stats() { return stats_; }
  const sim::StatRegistry& stats() const { return stats_; }

  /// Attach a trace recorder; TX command and RX message events are
  /// emitted onto `lane`, retransmission instants included. The optional
  /// sibling lanes let the NIC anchor flow begins on the GPU lane (trigger
  /// store) and route flow steps through the trigger lane, so the viewer
  /// draws gpu -> trig -> nic -> fabric -> remote-nic arrows.
  void set_trace(sim::TraceRecorder* trace, std::string lane,
                 std::string gpu_lane = {}, std::string trig_lane = {}) {
    trace_ = trace;
    trace_lane_ = lane;
    gpu_lane_ = std::move(gpu_lane);
    trig_lane_ = std::move(trig_lane);
    reliability_.set_trace(trace, std::move(lane));
  }
  int posted_recvs() const { return static_cast<int>(posted_.size()); }
  int unexpected_msgs() const { return static_cast<int>(unexpected_.size()); }

  /// The reliable-delivery layer between this NIC and the fabric
  /// (pass-through when NicConfig::reliability.enabled is false).
  fault::ReliabilityLayer& reliability() { return reliability_; }
  const fault::ReliabilityLayer& reliability() const { return reliability_; }

  /// Command-pipeline ledger: busy from command fetch through execution
  /// (including the TX DMA), queued while commands wait in the FIFO.
  const obs::BusyTracker& cmd_util() const { return cmd_util_; }
  /// The TX / RX DMA engines' ledgers.
  const obs::BusyTracker& tx_dma_util() const { return tx_dma_.util(); }
  const obs::BusyTracker& rx_dma_util() const { return rx_dma_.util(); }
  /// Commands currently waiting in the FIFO (time-series gauge).
  std::size_t cmd_queue_depth() const { return cmd_queue_.size(); }

  /// The command-pipeline rate limiter, or nullptr when NicConfig left it
  /// disabled.
  const TokenBucket* rate_limiter() const { return rate_.get(); }

  /// Attach a per-op flight recorder (obs/flight.hpp): every delivered
  /// data message is offered to it with its full stamp set. nullptr
  /// detaches. Recording is pure bookkeeping and cannot perturb timing.
  void set_flight(obs::FlightSink* flight) { flight_ = flight; }

 private:
  enum MsgKind : std::uint32_t {
    kPut = 1,
    kSend = 2,
    kGetReq = 3,
    kGetReply = 4,
    kRts = 5,       ///< rendezvous ready-to-send (header only)
    kRndvPull = 6,  ///< rendezvous pull request (header only)
    kRndvData = 7,  ///< rendezvous payload
  };

  /// RTS descriptors parked at the target until a receive matches.
  struct PendingRts {
    net::NodeId src;
    std::uint64_t tag;
    std::uint64_t bytes;
    std::uint64_t sender_buf;
  };
  /// Sender-side completion state for an in-flight rendezvous, keyed by
  /// the (unique) send buffer address; resolved when the pull arrives.
  struct SenderRndvState {
    mem::Addr local_flag;
    std::uint64_t flag_value;
    std::uint64_t cq_cookie;
  };

  /// Command-queue entry: the command plus observability context (when it
  /// entered the queue and, for triggered ops, when the trigger arrived).
  struct QueuedCmd {
    Command cmd;
    sim::Tick enqueued = -1;  ///< entered the NIC command queue
    sim::Tick trigger = -1;
    bool trigger_mmio = false;
    sim::Tick posted = -1;    ///< posted to a software queue (Qp)
    sim::Tick rung = -1;      ///< doorbell rung (batch flush instant)
    sim::Tick popped = -1;    ///< TX engine popped it off the queue
    sim::Tick admitted = -1;  ///< token bucket admitted (== popped unpaced)
  };
  /// Stamps captured off a delivered message before its payload is moved,
  /// so latency recording can happen after the deposit DMA completes.
  struct RxStamps {
    std::uint64_t flow = 0;
    std::uint64_t op_tag = 0;
    std::int32_t tenant = -1;
    net::NodeId src = -1;
    net::NodeId dst = -1;
    std::uint32_t kind = 0;
    std::uint64_t bytes = 0;
    std::uint32_t retransmits = 0;
    std::uint32_t hops = 1;
    sim::Tick t_trigger = -1;
    sim::Tick t_post = -1;
    sim::Tick t_ring = -1;
    sim::Tick t_cmd = -1;
    sim::Tick t_pop = -1;
    sim::Tick t_admit = -1;
    sim::Tick t_wire_first = -1;
    sim::Tick t_wire = -1;
    sim::Tick t_switch = -1;
    sim::Tick t_rx = -1;
    /// Capture every observability field (payload size included) before the
    /// payload vector is moved out for the deposit DMA.
    static RxStamps from(const net::Message& m) {
      return RxStamps{m.flow,      m.op_tag,       m.tenant,   m.src,
                      m.dst,       m.kind,         m.payload_bytes(),
                      m.retransmits, m.hops,
                      m.t_trigger, m.t_post,       m.t_ring,   m.t_cmd,
                      m.t_pop,     m.t_admit,      m.t_wire_first,
                      m.t_wire,    m.t_switch,     m.t_rx};
    }
  };

  sim::Task<> tx_loop();
  sim::Task<> rx_loop();
  sim::Task<> execute(QueuedCmd qc);
  sim::Task<> handle_rx(net::Message msg);

  /// Stamp flow id + stage timestamps on an outbound message and emit its
  /// trace flow begin/steps. Must run before reliability_.send so the
  /// retransmission window copies carry the flow id.
  void stamp_tx(net::Message& msg, sim::Tick t_cmd, sim::Tick t_trigger,
                bool trigger_mmio);
  /// Same, copying the full stage context a queued command accumulated
  /// (post/ring/pop/admit on top of cmd/trigger).
  void stamp_tx(net::Message& msg, const QueuedCmd& qc);
  /// Record the always-on lat.* stage histograms (and the trace flow end)
  /// for a message whose payload just deposited.
  void record_delivery(const RxStamps& s);
  /// Offer a delivered message's full stamp set to the attached flight
  /// recorder (no-op when none is attached).
  void record_flight(const RxStamps& s, sim::Tick t_deposit);
  sim::Task<> land_payload(mem::Addr dst, std::vector<std::byte>&& payload,
                           mem::Addr flag, std::uint64_t flag_value);
  /// Receiver side of rendezvous: issue the pull for a matched RTS.
  void issue_rndv_pull(const PendingRts& rts, const RecvDesc& r);

  void set_flag(mem::Addr flag, std::uint64_t value);
  void push_cq(std::uint64_t cookie, std::uint32_t kind, std::uint64_t bytes);

  sim::Simulator* sim_;
  mem::Memory* mem_;
  net::Fabric* fabric_;
  NicConfig config_;
  net::NodeId node_id_;

  /// Commands rung but not yet past the doorbell latency; drained FIFO by
  /// the events ring_doorbell schedules (constant latency keeps order).
  /// Entries already carry posted/rung; `enqueued` is stamped on drain.
  std::deque<QueuedCmd> doorbell_staging_;
  sim::Channel<QueuedCmd> cmd_queue_;
  obs::BusyTracker cmd_util_;
  std::unique_ptr<TokenBucket> rate_;
  sim::Channel<net::Message> rx_queue_;
  mem::DmaEngine tx_dma_;
  mem::DmaEngine rx_dma_;

  std::deque<RecvDesc> posted_;
  std::deque<net::Message> unexpected_;
  std::deque<PendingRts> pending_rts_;
  std::map<mem::Addr, SenderRndvState> rndv_sender_state_;
  std::function<void(std::uint64_t)> rx_trigger_hook_;
  sim::Channel<CqEntry> cq_;

  sim::TraceRecorder* trace_ = nullptr;
  obs::FlightSink* flight_ = nullptr;
  std::string trace_lane_;
  std::string gpu_lane_;
  std::string trig_lane_;
  sim::StatRegistry stats_;
  /// Declared after stats_ (it publishes counters there) and after
  /// node_id_/rx_queue_ (it addresses ACKs and feeds the RX queue).
  fault::ReliabilityLayer reliability_;
  sim::Logger log_;
};

}  // namespace gputn::nic

// Token-bucket rate limiter for the NIC command pipeline.
//
// Serving workloads share a NIC between many tenants; a token bucket is
// the standard way a NIC (or its hypervisor) caps a flow's command rate
// while still absorbing short bursts. Tokens accrue at `ops_per_sec` up to
// a `burst` cap; each command consumes one token, and a command arriving
// to an empty bucket stalls until the next token accrues. All arithmetic
// is integer picoseconds, so paced runs stay bit-deterministic.
//
// Disabled (ops_per_sec == 0) the bucket is pass-through and never
// suspends, so existing workloads pay nothing and drift nothing.
#pragma once

#include <cstdint>

#include "sim/simulator.hpp"
#include "sim/units.hpp"

namespace gputn::nic {

struct TokenBucketConfig {
  /// Sustained command admission rate. 0 = unlimited (pass-through).
  double ops_per_sec = 0.0;
  /// Bucket capacity: how many commands a burst may admit back-to-back.
  int burst = 16;
};

class TokenBucket {
 public:
  TokenBucket(sim::Simulator& sim, TokenBucketConfig cfg);

  bool enabled() const { return period_ > 0; }
  /// Inter-token interval (ps); 0 when the bucket is pass-through.
  sim::Tick period() const { return period_; }

  /// Consume one token, suspending until one accrues if the bucket is
  /// empty. Never suspends when a token is available (or when disabled).
  sim::Task<> acquire();

  std::uint64_t admitted() const { return admitted_; }
  /// Commands that had to wait for a token.
  std::uint64_t stalls() const { return stalls_; }
  /// Total time commands spent waiting for tokens.
  sim::Tick stalled_time() const { return stalled_time_; }

 private:
  /// Credit tokens earned since `stamp_`; advances `stamp_` only by whole
  /// periods so fractional credit is never lost (integer-exact pacing).
  void settle(sim::Tick now);

  sim::Simulator* sim_;
  sim::Tick period_ = 0;
  int burst_ = 1;
  int tokens_ = 1;
  sim::Tick stamp_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t stalls_ = 0;
  sim::Tick stalled_time_ = 0;
};

}  // namespace gputn::nic

#include "nic/token_bucket.hpp"

namespace gputn::nic {

TokenBucket::TokenBucket(sim::Simulator& sim, TokenBucketConfig cfg)
    : sim_(&sim), burst_(cfg.burst < 1 ? 1 : cfg.burst) {
  if (cfg.ops_per_sec > 0.0) {
    double p = 1e12 / cfg.ops_per_sec;
    period_ = p < 1.0 ? 1 : static_cast<sim::Tick>(p);
  }
  tokens_ = burst_;  // a fresh bucket is full: bursts up to `burst` pass
}

void TokenBucket::settle(sim::Tick now) {
  if (tokens_ >= burst_) {
    stamp_ = now;  // full bucket does not bank extra credit
    return;
  }
  sim::Tick earned = (now - stamp_) / period_;
  if (earned >= static_cast<sim::Tick>(burst_ - tokens_)) {
    tokens_ = burst_;
    stamp_ = now;
  } else {
    tokens_ += static_cast<int>(earned);
    stamp_ += earned * period_;
  }
}

sim::Task<> TokenBucket::acquire() {
  ++admitted_;
  if (!enabled()) co_return;
  settle(sim_->now());
  bool stalled = false;
  while (tokens_ == 0) {
    stalled = true;
    sim::Tick t0 = sim_->now();
    sim::Tick wait = stamp_ + period_ - t0;
    co_await sim_->delay(wait > 0 ? wait : 1);
    stalled_time_ += sim_->now() - t0;
    settle(sim_->now());
  }
  if (stalled) ++stalls_;
  --tokens_;
}

}  // namespace gputn::nic

#include "nic/qp.hpp"

#include <utility>

namespace gputn::nic {

void Qp::post(Command cmd) {
  ++posted_;
  pending_.push_back(Pending{std::move(cmd), sim_->now()});
  if (static_cast<int>(pending_.size()) >= cfg_.batch_size) {
    ++batch_flushes_;
    flush();
    return;
  }
  if (pending_.size() == 1 && cfg_.flush_timeout > 0) {
    // First command of a partial batch: arm the flush timer. Later posts
    // join this batch without re-arming, so the flush happens at most
    // `flush_timeout` after the *oldest* pending command.
    std::uint64_t gen = timer_gen_;
    sim_->schedule_in(cfg_.flush_timeout, [this, gen] {
      if (gen == timer_gen_ && !pending_.empty()) {
        ++timeout_flushes_;
        flush();
      }
    });
  }
}

void Qp::flush() {
  ++timer_gen_;  // cancel any armed timer
  if (pending_.empty()) return;
  ++doorbells_;
  occupancy_.add(pending_.size());
  for (auto& p : pending_) {
    nic_->ring_doorbell(std::move(p.cmd), p.posted);
  }
  pending_.clear();
}

}  // namespace gputn::nic

// Queue pair with doorbell batching.
//
// A Qp is a software send queue in front of one NIC. Instead of ringing
// the doorbell per command (one MMIO write each), commands accumulate in
// the queue and the doorbell is rung once per batch — when `batch_size`
// commands are pending, or `flush_timeout` after the oldest pending
// command was posted, whichever comes first. All commands of a batch
// become visible to the NIC at the same doorbell instant, in post order
// (the NIC's constant doorbell latency preserves FIFO).
//
// This is the per-tenant QP of the serving subsystem: each tenant gets
// its own Qp so one tenant's batching timer never delays another's
// traffic, and per-QP counters (doorbells, batch vs timeout flushes,
// batch occupancy) attribute doorbell pressure to tenants.
#pragma once

#include <cstdint>
#include <deque>

#include "nic/nic.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace gputn::nic {

struct QpConfig {
  /// Ring the doorbell as soon as this many commands are pending.
  /// 1 = no batching (every post rings immediately).
  int batch_size = 4;
  /// Ring a partial batch this long after its first command was posted.
  /// 0 = never flush on timeout (only full batches and explicit flush()).
  sim::Tick flush_timeout = sim::us(1);
};

class Qp {
 public:
  Qp(sim::Simulator& sim, Nic& nic, QpConfig cfg)
      : sim_(&sim), nic_(&nic), cfg_(cfg) {
    if (cfg_.batch_size < 1) cfg_.batch_size = 1;
  }
  Qp(const Qp&) = delete;
  Qp& operator=(const Qp&) = delete;

  /// Post a command; zero-cost for the caller. May ring the doorbell
  /// immediately (full batch) or arm the flush timer (first of a batch).
  void post(Command cmd);

  /// Ring the doorbell for whatever is pending (cancels the armed timer).
  void flush();

  Nic& nic() { return *nic_; }
  const QpConfig& config() const { return cfg_; }
  std::size_t pending() const { return pending_.size(); }

  std::uint64_t posted() const { return posted_; }
  std::uint64_t doorbells() const { return doorbells_; }
  std::uint64_t batch_flushes() const { return batch_flushes_; }
  std::uint64_t timeout_flushes() const { return timeout_flushes_; }
  /// Commands per doorbell, the batching win the counters exist to show.
  const sim::Histogram& occupancy() const { return occupancy_; }

 private:
  /// Pending command plus the tick it was posted, so a flushed batch can
  /// report each op's own queue-entry time rather than the shared flush
  /// instant (visible as per-op batch wait in traces and flight records).
  struct Pending {
    Command cmd;
    sim::Tick posted;
  };

  sim::Simulator* sim_;
  Nic* nic_;
  QpConfig cfg_;
  std::deque<Pending> pending_;
  /// Timer generation: bumped on every flush so a stale timer event
  /// (scheduled before a full-batch flush) becomes a no-op.
  std::uint64_t timer_gen_ = 0;
  std::uint64_t posted_ = 0;
  std::uint64_t doorbells_ = 0;
  std::uint64_t batch_flushes_ = 0;
  std::uint64_t timeout_flushes_ = 0;
  sim::Histogram occupancy_;
};

}  // namespace gputn::nic

// 2-D Jacobi relaxation (§5.3, Figure 9).
//
// A 2N x 2N global torus is split across 4 nodes in a 2x2 decomposition;
// each node iterates a 5-point stencil on its NxN block (with ghost layer)
// and exchanges four halo edges per iteration. The four strategies differ
// only in how the halo exchange is driven:
//
//   CPU    — OpenMP-style stencil on the host; MPI send/recv with eager
//            staging copies.
//   HDN    — stencil kernel per iteration; host does send/recv at every
//            kernel boundary ("exiting the kernel and returning to the host
//            for MPI send/receives after every round").
//   GDS    — communication pre-registered; stream = [kernel, puts, waits]
//            per iteration: boundaries remain, host does not.
//   GPU-TN — one persistent kernel for the whole run; edges are sent with
//            intra-kernel triggered puts and halos awaited by polling
//            NIC-written flags.
//
// The numerics are real: every strategy computes the same doubles, verified
// against a scalar reference of the global torus.
#pragma once

#include "cluster/config.hpp"
#include "workloads/options.hpp"
#include "workloads/strategy.hpp"

namespace gputn::workloads {

/// Strategy/trace/nodes come from RunOptions; the 2x2 decomposition fixes
/// the node count at 4.
struct JacobiConfig : RunOptions {
  JacobiConfig() { nodes = 4; }
  int n = 256;          ///< local grid edge (Figure 9 x-axis: N x N local)
  int iterations = 10;  ///< measured iterations (steady state)
  /// Work-groups per stencil kernel (<= CU count so the GPU-TN persistent
  /// kernel stays resident).
  int num_wgs = 16;
  /// Overlap communication with interior compute (GPU-TN only). The
  /// paper's implementation "does not exploit overlap" (§5.3); with this
  /// flag the persistent kernel computes the halo-independent interior
  /// while the halos are in flight, then finishes the boundary ring.
  bool overlap = false;
};

struct JacobiResult : ResultBase {
  int n = 0;
  int iterations = 0;
  /// Average per measured iteration; 0 when iterations == 0 (the guarded
  /// ResultBase::per_op replaces the unconditional division this used to
  /// do, which was UB at iterations == 0).
  sim::Tick per_iteration() const { return per_op(iterations); }
  /// Sum over the local grid of node 0 after the last iteration.
  double checksum = 0.0;
};

JacobiResult run_jacobi(const JacobiConfig& cfg,
                        const cluster::SystemConfig& sys);
JacobiResult run_jacobi(const JacobiConfig& cfg);

}  // namespace gputn::workloads

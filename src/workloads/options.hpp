// Shared workload run options and result base (unified Workload API).
//
// Every workload used to re-declare the same plumbing — strategy, trace
// recorder, node count on the config side; strategy, node count, total time,
// correctness flag and captured counters on the result side — and every
// bench/CLI call site re-implemented the same printing and stats-export
// logic. `RunOptions`/`ResultBase` hoist those fields into one place:
// workload configs and results inherit them (so existing `cfg.strategy`,
// `res.total_time`, `res.net_stats` call sites are untouched) and the CLI
// drives a single `report()`/`stats_json()` path for every workload.
#pragma once

#include <cstdint>
#include <string>

#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "sim/units.hpp"
#include "workloads/strategy.hpp"

namespace gputn::cluster {
struct SystemConfig;
}  // namespace gputn::cluster

namespace gputn::obs {
class FlightRecorder;
class TimeSeries;
}  // namespace gputn::obs

namespace gputn::workloads {

/// Options every workload runner understands. Workload configs inherit this
/// and add their own knobs; their default constructors set the
/// workload-appropriate node count (Jacobi's 2x2 decomposition fixes 4, the
/// collectives default to 8, the microbench pairs 2).
struct RunOptions {
  Strategy strategy = Strategy::kGpuTn;
  /// Cluster size. 0 means "workload default" — the generic CLI path leaves
  /// it 0 unless --nodes was given, and each runner then keeps its config's
  /// own default.
  int nodes = 0;
  /// When non-null, the run records a Chrome trace (Cluster::enable_tracing
  /// lanes + message flow events) into this recorder. Tracing is pure
  /// observation: simulated time and all counters are bit-identical to an
  /// untraced run. Must be a recorder private to this run when runs execute
  /// in parallel (exp::Runner) — TraceRecorder is not synchronized.
  sim::TraceRecorder* trace = nullptr;
  /// When non-null, the run attaches the cluster's standard probes to this
  /// sampler (Cluster::attach_timeseries) and samples them at its interval.
  /// Sampling is pure observation like tracing: results, counters, and
  /// timestamps are bit-identical to an unsampled run (the zero-drift test
  /// enforces this). Same parallel-runner caveat as `trace`.
  obs::TimeSeries* timeseries = nullptr;
  /// When non-null, the run attaches this per-op flight recorder to every
  /// NIC (Cluster::attach_flight): each delivered message's stage stamps
  /// are offered to it for `gputn analyze`. Pure observation with the same
  /// bit-identical guarantee and parallel-runner caveat as `trace` —
  /// except that the CLI does allow it under --replicas, with one private
  /// recorder per point merged in plan order.
  obs::FlightRecorder* flight = nullptr;
  /// Suppress the per-run stdout report. exp::Plan forces this on for
  /// points executed by the parallel runner, whose workers must not
  /// interleave prints; the driver reports from the merged results instead.
  bool quiet = false;
  /// Intra-run parallel DES: partition the cluster over this many worker
  /// threads (sim::ShardEngine), conservative-lookahead synchronized.
  /// Results, checksums, stats exports and flight dumps are bit-identical
  /// to --shards 1 at every value (the golden suite pins this). Runners
  /// clamp to the node count. Composes with --flight and fault injection;
  /// rejected (std::invalid_argument in make_config) with --trace or
  /// --timeseries, whose recorders are unsynchronized by design — same
  /// policy as --replicas.
  int shards = 1;
  // -- fabric selection (net::TopologyFactory / net::RouterFactory) --------
  /// Topology spec, e.g. "star" | "fat-tree:k=8" | "torus:4x4x4" |
  /// "dragonfly:a=4,h=2,p=2". Empty keeps the SystemConfig's default
  /// (Table 2's star).
  std::string topology;
  /// Routing policy ("deterministic" | "adaptive"); empty keeps the
  /// config default.
  std::string routing;
  /// Switch output-port credits: 0 = explicitly unlimited, negative =
  /// keep the config default.
  int credits = -1;
};

/// Copy of `sys` with this run's fabric overrides (topology / routing /
/// credits) applied; every workload runner folds its RunOptions through
/// this before building its Cluster, so "topology x routing" composes from
/// the command line with zero call-site recompiles.
cluster::SystemConfig with_fabric_overrides(const RunOptions& opts,
                                            const cluster::SystemConfig& sys);

/// Which multi-run / observer flags a command line activated. The pairwise
/// accept/reject rules between them used to be hand-coded per flag at each
/// call site (CLI replicas checks, make_config shard checks) and drifted;
/// this is the one table both the driver and `gputn config` read.
struct ActiveFlags {
  bool replicas = false;    ///< --replicas > 1
  bool shards = false;      ///< --shards > 1
  bool trace = false;       ///< --trace FILE
  bool timeseries = false;  ///< --timeseries FILE
  bool flight = false;      ///< --flight FILE
};

/// First pairwise conflict between the active flags, as a ready-to-print
/// message naming both flags and the reason; empty when the combination is
/// allowed. Deterministic: rules are checked in a fixed order.
std::string flag_conflict(const ActiveFlags& f);

/// The full pairwise compatibility matrix, rendered for `gputn config` and
/// the docs. Covers every {--replicas, --shards, --trace, --timeseries,
/// --flight} pair with the reason a pair is rejected or allowed.
std::string flag_matrix();

/// Result fields shared by every workload, plus the single report/export
/// path. Workload results inherit this; the Registry returns it by value
/// (sliced), which keeps exactly the generic fields a driver needs.
struct ResultBase {
  Strategy strategy = Strategy::kGpuTn;
  int nodes = 0;
  std::string label;   ///< workload name, e.g. "jacobi"
  /// How the run was driven, for report(): usually the strategy name;
  /// broadcast puts its drive name here. Empty = use strategy_name().
  std::string mode;
  /// Human-readable parameter summary for report(), e.g. "256x256 x10 iters".
  std::string detail;
  sim::Tick total_time = 0;
  /// End-to-end verification outcome (numerics / payload / data match).
  bool correct = false;
  /// net.* / fault.* / rel.* / lat.* counters and histograms captured
  /// before teardown.
  sim::StatRegistry net_stats;

  /// Average time per operation, safe at ops == 0 (returns 0 instead of the
  /// division UB the per-workload copies used to have).
  sim::Tick per_op(std::int64_t ops) const {
    return ops > 0 ? total_time / ops : 0;
  }

  /// Deterministic JSON of the captured counters/histograms.
  std::string stats_json() const;

  /// One-line human summary (label, mode, detail, total time, verification)
  /// plus a fault/recovery line when the run saw injected faults.
  void report() const;
};

}  // namespace gputn::workloads

// Pipelined ring broadcast — a second collective built on the same
// primitives (§6: "triggered operations have been shown to be effective
// for implementing collective operations").
//
// The root splits the vector into chunks and streams them around the ring;
// each node forwards chunk c to its right neighbour while receiving chunk
// c+1 (classic pipelined broadcast). Three drives:
//
//   HDN       — per-hop, per-chunk kernel-boundary send/recv on the host.
//   GPU-TN    — a persistent kernel on every node polls each chunk's
//               arrival and triggers the pre-staged forward put.
//   GPU-TN + NIC chains — forwarding is armed by counting receive events:
//               after the root's initial triggers, the entire pipeline
//               runs on NICs (no GPU or CPU on any intermediate hop).
#pragma once

#include "cluster/config.hpp"
#include "workloads/options.hpp"
#include "workloads/strategy.hpp"

namespace gputn::workloads {

enum class BroadcastDrive {
  kHdn,      ///< host send/recv per hop per chunk
  kGpuTn,    ///< persistent kernel forwards via triggered puts
  kNicChain, ///< counting-receive chains: NIC-only forwarding
};

inline const char* broadcast_drive_name(BroadcastDrive d) {
  switch (d) {
    case BroadcastDrive::kHdn:
      return "HDN";
    case BroadcastDrive::kGpuTn:
      return "GPU-TN";
    case BroadcastDrive::kNicChain:
      return "NIC-chain";
  }
  return "?";
}

/// Nodes/trace come from RunOptions (default 8); the drive enum replaces
/// the strategy field for this workload (RunOptions::strategy is unused).
struct BroadcastConfig : RunOptions {
  BroadcastConfig() { nodes = 8; }
  BroadcastDrive drive = BroadcastDrive::kGpuTn;
  std::size_t bytes = 1 << 20;  ///< vector size at the root
  int chunks = 16;              ///< pipeline depth
};

struct BroadcastResult : ResultBase {
  BroadcastDrive drive = BroadcastDrive::kGpuTn;
  std::size_t bytes = 0;
};

BroadcastResult run_broadcast(const BroadcastConfig& cfg,
                              const cluster::SystemConfig& sys);
BroadcastResult run_broadcast(const BroadcastConfig& cfg);

}  // namespace gputn::workloads

#include "workloads/broadcast.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "sim/sync.hpp"

namespace gputn::workloads {

namespace {

float pattern(std::size_t i) {
  return static_cast<float>((i * 2654435761u) % 1000) * 0.5f;
}

struct Workspace {
  Workspace(const cluster::SystemConfig& sys, const BroadcastConfig& cfg)
      : engine(std::max(1, std::min(cfg.shards, cfg.nodes))),
        cluster(engine, sys, cfg.nodes),
        config(cfg) {
    elems = cfg.bytes / sizeof(float);
    chunk_elems = elems / cfg.chunks;
    if (chunk_elems == 0) throw std::invalid_argument("too many chunks");
    for (int n = 0; n < cfg.nodes; ++n) {
      vec.push_back(cluster.node(n).memory().alloc(cfg.bytes));
      std::vector<mem::Addr> f;
      for (int c = 0; c < cfg.chunks; ++c) {
        f.push_back(cluster.node(n).rt().alloc_flag());
      }
      flags.push_back(std::move(f));
    }
    auto root = cluster.node(0).memory().typed<float>(vec[0], elems);
    for (std::size_t i = 0; i < elems; ++i) root[i] = pattern(i);
  }

  std::size_t chunk_count(int c) const {
    return c == config.chunks - 1
               ? elems - chunk_elems * (config.chunks - 1)
               : chunk_elems;
  }
  mem::Addr chunk_addr(int node, int c) const {
    return vec[node] + chunk_elems * static_cast<std::size_t>(c) * 4;
  }

  /// The simulator owning node `id` (all of them when --shards 1).
  sim::Simulator& node_sim(int id) { return cluster.node_sim(id); }

  sim::ShardEngine engine;
  cluster::Cluster cluster;
  BroadcastConfig config;
  std::size_t elems = 0;
  std::size_t chunk_elems = 0;
  std::vector<mem::Addr> vec;
  std::vector<std::vector<mem::Addr>> flags;
};

/// Host-driven pipelined broadcast: each hop is a blocking recv + send.
sim::Task<> hdn_node(Workspace& w, int id) {
  auto& node = w.cluster.node(id);
  const int chunks = w.config.chunks;
  const int last = w.config.nodes - 1;
  for (int c = 0; c < chunks; ++c) {
    if (id != 0) {
      co_await node.rt().recv(id - 1, c, w.chunk_addr(id, c),
                              w.chunk_count(c) * 4);
    }
    if (id != last) {
      co_await node.rt().send(id + 1, c, w.chunk_addr(id, c),
                              w.chunk_count(c) * 4);
    }
  }
}

/// Build the forward put for chunk `c` out of node `id` (to id + 1).
nic::PutDesc forward_put(Workspace& w, int id, int c, bool chain_next) {
  nic::PutDesc put;
  put.target = id + 1;
  put.local_addr = w.chunk_addr(id, c);
  put.bytes = w.chunk_count(c) * 4;
  put.remote_addr = w.chunk_addr(id + 1, c);
  put.remote_flag = w.flags[id + 1][c];
  // Arm the receiver's own forward put for this chunk on arrival.
  if (chain_next) {
    put.remote_trigger_tag_plus1 = static_cast<std::uint64_t>(c) + 1;
  }
  return put;
}

/// GPU-TN: persistent kernels pace the pipeline with triggered puts.
sim::Task<> gputn_node(Workspace& w, int id, bool nic_chain) {
  auto& node = w.cluster.node(id);
  const int chunks = w.config.chunks;
  const int last = w.config.nodes - 1;

  // Register the forward puts *after* launching the kernel: relaxed
  // synchronization (§3.2) lets early triggers park as orphans, hiding the
  // serial posting cost behind the launch.
  auto register_puts = [&]() -> sim::Task<> {
    bool receiver_forwards = id + 1 != last;
    for (int c = 0; c < chunks; ++c) {
      co_await node.rt().trig_put(
          static_cast<std::uint64_t>(c), /*threshold=*/1,
          forward_put(w, id, c, nic_chain && receiver_forwards));
    }
  };

  if (id == 0) {
    // Root kernel: release the chunks in order.
    mem::Addr trig = node.rt().trigger_addr();
    gpu::KernelDesc k;
    k.name = "bcast-root";
    k.num_wgs = 1;
    k.fn = [trig, chunks](gpu::WorkGroupCtx& ctx) -> sim::Task<> {
      co_await ctx.fence_system();
      for (int c = 0; c < chunks; ++c) {
        co_await ctx.store_system(trig, static_cast<std::uint64_t>(c));
      }
    };
    auto rec = co_await node.rt().launch(std::move(k));
    co_await register_puts();
    co_await rec->done.wait();
  } else if (id == last || nic_chain) {
    if (id != last) co_await register_puts();
    // The last node (and, with chains, every intermediate) has no kernel in
    // the control path: the host just observes the final chunk arrivals.
    for (int c = 0; c < chunks; ++c) {
      co_await node.cpu().wait_value_ge(w.flags[id][c], 1);
    }
  } else {
    // GPU-paced intermediate: poll each arrival, trigger the forward.
    mem::Addr trig = node.rt().trigger_addr();
    auto* flags = &w.flags[id];
    gpu::KernelDesc k;
    k.name = "bcast-fwd";
    k.num_wgs = 1;
    k.fn = [trig, chunks, flags](gpu::WorkGroupCtx& ctx) -> sim::Task<> {
      for (int c = 0; c < chunks; ++c) {
        co_await ctx.wait_value_ge((*flags)[c], 1);
        co_await ctx.store_system(trig, static_cast<std::uint64_t>(c));
      }
    };
    auto rec = co_await node.rt().launch(std::move(k));
    co_await register_puts();
    co_await rec->done.wait();
  }
}

}  // namespace

BroadcastResult run_broadcast(const BroadcastConfig& cfg,
                              const cluster::SystemConfig& sys) {
  if (cfg.nodes < 2) throw std::invalid_argument("broadcast needs >= 2 nodes");
  cluster::SystemConfig adjusted = with_fabric_overrides(cfg, sys);
  adjusted.dram_bytes = cfg.bytes + (4u << 20);
  if (cfg.chunks > adjusted.triggered.table.associative_entries) {
    adjusted.triggered.table.lookup = core::LookupKind::kHash;
  }

  Workspace w(adjusted, cfg);
  if (cfg.trace != nullptr) w.cluster.enable_tracing(*cfg.trace);
  if (cfg.timeseries != nullptr) w.cluster.attach_timeseries(*cfg.timeseries);
  if (cfg.flight != nullptr) w.cluster.attach_flight(*cfg.flight);
  std::vector<std::vector<sim::ProcessHandle>> by_shard(
      static_cast<std::size_t>(w.engine.shards()));
  for (int n = 0; n < cfg.nodes; ++n) {
    sim::ProcessHandle h;
    switch (cfg.drive) {
      case BroadcastDrive::kHdn:
        h = w.node_sim(n).spawn(hdn_node(w, n), "bcast");
        break;
      case BroadcastDrive::kGpuTn:
        h = w.node_sim(n).spawn(gputn_node(w, n, false), "bcast");
        break;
      case BroadcastDrive::kNicChain:
        h = w.node_sim(n).spawn(gputn_node(w, n, true), "bcast");
        break;
    }
    by_shard[static_cast<std::size_t>(w.cluster.node_shard(n))].push_back(h);
  }
  // Per-shard completion monitors (see allreduce.cpp for rationale).
  std::vector<sim::Tick> shard_done(by_shard.size(), -1);
  for (std::size_t s = 0; s < by_shard.size(); ++s) {
    if (by_shard[s].empty()) {
      shard_done[s] = 0;
      continue;
    }
    w.engine.shard(static_cast<int>(s)).spawn(
        [](sim::Simulator& sh, std::vector<sim::ProcessHandle> hs,
           sim::Tick& out) -> sim::Task<> {
          co_await sim::join_all(std::move(hs));
          out = sh.now();
        }(w.engine.shard(static_cast<int>(s)), std::move(by_shard[s]),
          shard_done[s]),
        "monitor");
  }
  w.engine.run_until(sim::sec(10));
  sim::Tick finished_at = -1;
  for (sim::Tick t : shard_done) {
    if (t < 0) {
      throw std::runtime_error("broadcast: deadlocked");
    }
    finished_at = std::max(finished_at, t);
  }
  w.cluster.flush_flight();

  BroadcastResult res;
  res.drive = cfg.drive;
  res.nodes = cfg.nodes;
  res.label = "broadcast";
  res.mode = broadcast_drive_name(cfg.drive);
  res.detail = std::to_string(cfg.bytes) + " B in " +
               std::to_string(cfg.chunks) + " chunks over " +
               std::to_string(cfg.nodes) + " nodes";
  res.bytes = cfg.bytes;
  res.total_time = finished_at;
  w.cluster.export_net_stats(res.net_stats, res.total_time);
  res.correct = true;
  for (int n = 0; n < cfg.nodes && res.correct; ++n) {
    auto v = w.cluster.node(n).memory().typed<float>(w.vec[n], w.elems);
    for (std::size_t i = 0; i < w.elems; ++i) {
      if (v[i] != pattern(i)) {
        res.correct = false;
        break;
      }
    }
  }
  return res;
}

BroadcastResult run_broadcast(const BroadcastConfig& cfg) {
  return run_broadcast(cfg, cluster::SystemConfig::table2());
}

}  // namespace gputn::workloads

// Application-level speedup projection for deep learning (Figure 11,
// §5.4.2), using the paper's own methodology:
//
//   1. Measure per-call Allreduce latency for every gradient-bucket size
//      under every strategy, on a simulated 8-node cluster.
//   2. For each workload, total communication time = sum over its reduction
//      mix; total compute time is inferred from the Table 3 %Blocked figure
//      under the baseline strategy.
//   3. Synchronous SGD has no compute/communication overlap ("there are no
//      computation/communication overlap effects to worry about"), so
//      projected app time = compute + communication, and speedup follows.
#pragma once

#include <map>
#include <vector>

#include "cluster/config.hpp"
#include "workloads/dl_traces.hpp"
#include "workloads/strategy.hpp"

namespace gputn::workloads {

struct DlProjectionConfig {
  int nodes = 8;  ///< Figure 11: cluster of 8 nodes
  /// Strategy whose %Blocked matches Table 3 (the cluster the traces were
  /// taken on ran classic host-driven networking).
  Strategy baseline = Strategy::kHdn;
  /// Normalization for the reported speedup bars.
  Strategy normalize_to = Strategy::kCpu;
};

/// Per-call allreduce latency for each (strategy, bucket size), measured by
/// running the real ring-allreduce simulation.
class AllreduceLatencyModel {
 public:
  AllreduceLatencyModel(const cluster::SystemConfig& sys, int nodes);

  /// Simulated latency of one allreduce call of `elements` fp32 under `s`
  /// (memoized).
  sim::Tick latency(Strategy s, std::size_t elements);

 private:
  cluster::SystemConfig sys_;
  int nodes_;
  std::map<std::pair<int, std::size_t>, sim::Tick> cache_;
};

struct DlProjection {
  DlWorkload workload;
  /// Total projected communication time per strategy.
  std::map<Strategy, double> comm_seconds;
  /// Inferred compute time (strategy independent).
  double compute_seconds = 0.0;
  /// Projected speedup vs. the normalization strategy.
  std::map<Strategy, double> speedup;
};

/// Project all Table 3 workloads.
std::vector<DlProjection> project_dl_workloads(
    const DlProjectionConfig& cfg, const cluster::SystemConfig& sys);

}  // namespace gputn::workloads

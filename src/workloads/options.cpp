#include "workloads/options.hpp"

#include <cstdio>

#include "cluster/config.hpp"

namespace gputn::workloads {

cluster::SystemConfig with_fabric_overrides(const RunOptions& opts,
                                            const cluster::SystemConfig& sys) {
  cluster::SystemConfig out = sys;
  if (!opts.topology.empty()) out.fabric.topology = opts.topology;
  if (!opts.routing.empty()) out.fabric.routing = opts.routing;
  if (opts.credits >= 0) out.fabric.credits_per_port = opts.credits;
  return out;
}

std::string ResultBase::stats_json() const {
  return sim::stats_json(net_stats);
}

void ResultBase::report() const {
  const char* m = !mode.empty() ? mode.c_str() : strategy_name(strategy);
  std::printf("%s [%s] %s: %.2f us, %s\n", label.c_str(), m, detail.c_str(),
              sim::to_us(total_time),
              correct ? "verified" : "VERIFICATION FAILED");
  std::uint64_t drops = net_stats.counter_value("fault.drops");
  std::uint64_t corruptions = net_stats.counter_value("fault.corruptions");
  if (drops != 0 || corruptions != 0) {
    std::printf(
        "  faults: %llu dropped, %llu corrupted; recovery: %llu retransmits, "
        "%llu acks, %llu nacks\n",
        static_cast<unsigned long long>(drops),
        static_cast<unsigned long long>(corruptions),
        static_cast<unsigned long long>(
            net_stats.counter_value("rel.retransmits")),
        static_cast<unsigned long long>(net_stats.counter_value("rel.acks_tx")),
        static_cast<unsigned long long>(
            net_stats.counter_value("rel.nacks_tx")));
  }
}

}  // namespace gputn::workloads

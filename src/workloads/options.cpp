#include "workloads/options.hpp"

#include <cstdio>

#include "cluster/config.hpp"

namespace gputn::workloads {

cluster::SystemConfig with_fabric_overrides(const RunOptions& opts,
                                            const cluster::SystemConfig& sys) {
  cluster::SystemConfig out = sys;
  if (!opts.topology.empty()) out.fabric.topology = opts.topology;
  if (!opts.routing.empty()) out.fabric.routing = opts.routing;
  if (opts.credits >= 0) out.fabric.credits_per_port = opts.credits;
  return out;
}

namespace {

/// One pairwise rule. The reject reasons repeat the rationale the original
/// per-flag rejections carried; the accept reasons document why the pair
/// composes (each observer is private to a run or spooled per node).
struct FlagRule {
  const char* a;
  const char* b;
  bool ok;
  const char* why;
};

constexpr FlagRule kFlagRules[] = {
    {"--replicas", "--shards", false,
     "replicas already run in parallel via --jobs; S*R threads would "
     "oversubscribe the host"},
    {"--replicas", "--trace", false, "replicas share no trace recorder"},
    {"--replicas", "--timeseries", false, "replicas share no sampler"},
    {"--replicas", "--flight", true,
     "one private recorder per replica, dumps merged in plan order"},
    {"--shards", "--trace", false,
     "the trace recorder is unsynchronized across shard workers"},
    {"--shards", "--timeseries", false,
     "the sampler is unsynchronized across shard workers"},
    {"--shards", "--flight", true,
     "per-node spools, replayed in one canonical order after the run"},
    {"--trace", "--timeseries", true, "both are pure single-run observers"},
    {"--trace", "--flight", true, "both are pure single-run observers"},
    {"--timeseries", "--flight", true, "both are pure single-run observers"},
};

bool flag_active(const ActiveFlags& f, const std::string& name) {
  if (name == "--replicas") return f.replicas;
  if (name == "--shards") return f.shards;
  if (name == "--trace") return f.trace;
  if (name == "--timeseries") return f.timeseries;
  return f.flight;
}

}  // namespace

std::string flag_conflict(const ActiveFlags& f) {
  for (const FlagRule& r : kFlagRules) {
    if (r.ok) continue;
    if (flag_active(f, r.a) && flag_active(f, r.b)) {
      return std::string(r.a) + " cannot be combined with " + r.b + " (" +
             r.why + ")";
    }
  }
  return {};
}

std::string flag_matrix() {
  const char* flags[] = {"--replicas", "--shards", "--trace", "--timeseries",
                         "--flight"};
  std::string out =
      "Flag compatibility (pairwise; all five compose with --jobs):\n";
  char line[160];
  std::snprintf(line, sizeof(line), "  %-14s", "");
  out += line;
  for (const char* col : flags) {
    std::snprintf(line, sizeof(line), "%-14s", col);
    out += line;
  }
  out += "\n";
  for (const char* row : flags) {
    std::snprintf(line, sizeof(line), "  %-14s", row);
    out += line;
    for (const char* col : flags) {
      const char* cell = ".";
      if (std::string(row) != col) {
        for (const FlagRule& r : kFlagRules) {
          if ((r.a == std::string(row) && r.b == col) ||
              (r.a == std::string(col) && r.b == row)) {
            cell = r.ok ? "ok" : "no";
          }
        }
      }
      std::snprintf(line, sizeof(line), "%-14s", cell);
      out += line;
    }
    out += "\n";
  }
  for (const FlagRule& r : kFlagRules) {
    if (r.ok) continue;
    out += std::string("  ") + r.a + " + " + r.b + ": " + r.why + "\n";
  }
  return out;
}

std::string ResultBase::stats_json() const {
  return sim::stats_json(net_stats);
}

void ResultBase::report() const {
  const char* m = !mode.empty() ? mode.c_str() : strategy_name(strategy);
  std::printf("%s [%s] %s: %.2f us, %s\n", label.c_str(), m, detail.c_str(),
              sim::to_us(total_time),
              correct ? "verified" : "VERIFICATION FAILED");
  std::uint64_t drops = net_stats.counter_value("fault.drops");
  std::uint64_t corruptions = net_stats.counter_value("fault.corruptions");
  if (drops != 0 || corruptions != 0) {
    std::printf(
        "  faults: %llu dropped, %llu corrupted; recovery: %llu retransmits, "
        "%llu acks, %llu nacks\n",
        static_cast<unsigned long long>(drops),
        static_cast<unsigned long long>(corruptions),
        static_cast<unsigned long long>(
            net_stats.counter_value("rel.retransmits")),
        static_cast<unsigned long long>(net_stats.counter_value("rel.acks_tx")),
        static_cast<unsigned long long>(
            net_stats.counter_value("rel.nacks_tx")));
  }
}

}  // namespace gputn::workloads

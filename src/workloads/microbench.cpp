#include "workloads/microbench.hpp"

#include <algorithm>
#include <stdexcept>

#include "cluster/cluster.hpp"
#include "sim/sync.hpp"

namespace gputn::workloads {

namespace {

constexpr std::uint64_t kPayloadBytes = 64;  // one cache line (§5.2)
constexpr std::uint64_t kMagic = 0x5ca1ab1e;
/// In-kernel time to vector-copy one cache line (loads + stores through the
/// GPU cache hierarchy); common to every GPU strategy.
constexpr sim::Tick kCopyTime = sim::ns(380);

struct Rig {
  Rig(const cluster::SystemConfig& cfg, int shards)
      : engine(std::max(1, std::min(shards, 2))),
        cluster(engine, cfg, 2),
        initiator(cluster.node(0)),
        target(cluster.node(1)) {
    src = initiator.memory().alloc(kPayloadBytes);
    input = initiator.memory().alloc(kPayloadBytes);
    dst = target.memory().alloc(kPayloadBytes);
    rflag = target.rt().alloc_flag();
    initiator.memory().store<std::uint64_t>(input, kMagic);
  }

  nic::PutDesc put_desc() {
    nic::PutDesc p;
    p.target = 1;
    p.local_addr = src;
    p.bytes = kPayloadBytes;
    p.remote_addr = dst;
    p.remote_flag = rflag;
    return p;
  }

  /// The simulator owning node `id` (both when --shards 1).
  sim::Simulator& node_sim(int id) { return cluster.node_sim(id); }

  sim::ShardEngine engine;
  cluster::Cluster cluster;
  cluster::Node& initiator;
  cluster::Node& target;
  mem::Addr src = 0;    // kernel's output buffer == send buffer
  mem::Addr input = 0;  // kernel's input cache line
  mem::Addr dst = 0;
  mem::Addr rflag = 0;
};

/// Target-side observer: polls the completion flag on the host CPU.
sim::Task<> target_poll(Rig& r, sim::Tick& completion) {
  co_await r.target.cpu().wait_value_ge(r.rflag, 1);
  completion = r.node_sim(1).now();
}

/// The kernel body shared by the GPU strategies: copy one cache line from
/// `input` to `src`.
sim::Task<> copy_kernel_body(gpu::WorkGroupCtx& ctx, mem::Addr input,
                             mem::Addr src) {
  std::uint64_t v = ctx.load_data<std::uint64_t>(input);
  ctx.store_data<std::uint64_t>(src, v);
  co_await ctx.compute(kCopyTime);
}

MicrobenchResult run_hdn(Rig& r) {
  MicrobenchResult res;
  res.strategy = Strategy::kHdn;

  sim::Tick target_done = -1;
  r.node_sim(1).spawn(
      [](Rig& rr, sim::Tick& out) -> sim::Task<> {
        // Two-sided target: post the receive, wait for the payload.
        co_await rr.target.rt().recv(0, /*tag=*/1, rr.dst, kPayloadBytes);
        rr.target.memory().store<std::uint64_t>(rr.rflag, 1);
        out = rr.node_sim(1).now();
      }(r, target_done),
      "target");

  std::shared_ptr<gpu::KernelRecord> rec;
  sim::Tick send_begin = -1, send_end = -1;
  r.node_sim(0).spawn(
      [](Rig& rr, std::shared_ptr<gpu::KernelRecord>& rec_out,
         sim::Tick& sb, sim::Tick& se) -> sim::Task<> {
        gpu::KernelDesc k;
        k.name = "ubench";
        k.num_wgs = 1;
        mem::Addr in = rr.input, out = rr.src;
        k.fn = [in, out](gpu::WorkGroupCtx& ctx) -> sim::Task<> {
          co_await copy_kernel_body(ctx, in, out);
        };
        auto rec = co_await rr.initiator.rt().launch(std::move(k));
        rec_out = rec;
        co_await rec->done.wait();  // host waits on the kernel boundary
        sb = rr.node_sim(0).now();
        co_await rr.initiator.rt().send(1, /*tag=*/1, rr.src, kPayloadBytes);
        se = rr.node_sim(0).now();
      }(r, rec, send_begin, send_end),
      "initiator");

  r.engine.run();
  res.initiator_phases = {
      {"launch", rec->launch_begin, rec->exec_begin},
      {"kernel", rec->exec_begin, rec->exec_end},
      {"teardown", rec->exec_end, rec->done_time},
      {"send", send_begin, send_end},
  };
  res.target_completion = target_done;
  res.initiator_completion = send_end;
  return res;
}

MicrobenchResult run_gds(Rig& r) {
  MicrobenchResult res;
  res.strategy = Strategy::kGds;

  sim::Tick target_done = -1;
  r.node_sim(1).spawn(target_poll(r, target_done), "target");

  std::shared_ptr<gpu::KernelRecord> rec;
  sim::Tick host_done = -1;
  r.node_sim(0).spawn(
      [](Rig& rr, std::shared_ptr<gpu::KernelRecord>& rec_out,
         sim::Tick& hd) -> sim::Task<> {
        gpu::KernelDesc k;
        k.name = "ubench";
        k.num_wgs = 1;
        mem::Addr in = rr.input, out = rr.src;
        k.fn = [in, out](gpu::WorkGroupCtx& ctx) -> sim::Task<> {
          co_await copy_kernel_body(ctx, in, out);
        };
        // Pre-post: kernel followed by the put on the same stream; the GPU
        // front-end rings the doorbell at the kernel boundary.
        auto rec = co_await rr.initiator.rt().launch(std::move(k));
        rec_out = rec;
        co_await rr.initiator.rt().gds_stream_put(rr.put_desc());
        co_await rec->done.wait();
        hd = rr.node_sim(0).now();
      }(r, rec, host_done),
      "initiator");

  r.engine.run();
  res.initiator_phases = {
      {"launch", rec->launch_begin, rec->exec_begin},
      {"kernel", rec->exec_begin, rec->exec_end},
      {"teardown", rec->exec_end, rec->done_time},
  };
  res.target_completion = target_done;
  res.initiator_completion = host_done;
  return res;
}

MicrobenchResult run_gputn(Rig& r) {
  MicrobenchResult res;
  res.strategy = Strategy::kGpuTn;

  sim::Tick target_done = -1;
  r.node_sim(1).spawn(target_poll(r, target_done), "target");

  std::shared_ptr<gpu::KernelRecord> rec;
  r.node_sim(0).spawn(
      [](Rig& rr, std::shared_ptr<gpu::KernelRecord>& rec_out) -> sim::Task<> {
        // Figure 6: register the triggered put, then launch the kernel that
        // triggers it from inside (Figure 7c with one work-group).
        co_await rr.initiator.rt().trig_put(/*tag=*/1, /*threshold=*/1,
                                            rr.put_desc());
        mem::Addr trig = rr.initiator.rt().trigger_addr();
        gpu::KernelDesc k;
        k.name = "ubench";
        k.num_wgs = 1;
        mem::Addr in = rr.input, out = rr.src;
        k.fn = [in, out, trig](gpu::WorkGroupCtx& ctx) -> sim::Task<> {
          co_await copy_kernel_body(ctx, in, out);
          co_await ctx.fence_system();
          co_await ctx.store_system(trig, /*tag=*/1);
        };
        auto rec = co_await rr.initiator.rt().launch(std::move(k));
        rec_out = rec;
        co_await rec->done.wait();
      }(r, rec),
      "initiator");

  r.engine.run();
  res.initiator_phases = {
      {"launch", rec->launch_begin, rec->exec_begin},
      {"kernel", rec->exec_begin, rec->exec_end},
      {"teardown", rec->exec_end, rec->done_time},
  };
  res.target_completion = target_done;
  res.initiator_completion = rec->done_time;
  return res;
}

// GPU Host Networking (§1, §5.1.1): the kernel writes the payload to a
// bounce buffer and raises a request flag; a dedicated CPU helper thread
// polls the flag, builds the network packet (full send-side stack on the
// critical path), and rings the NIC. The GPU never leaves the kernel, but
// a host core is burned polling and the stack cost precedes every message.
MicrobenchResult run_ghn(Rig& r) {
  MicrobenchResult res;
  res.strategy = Strategy::kGhn;

  sim::Tick target_done = -1;
  r.node_sim(1).spawn(target_poll(r, target_done), "target");

  mem::Addr bounce = r.initiator.memory().alloc(kPayloadBytes);
  mem::Addr request = r.initiator.rt().alloc_flag();
  mem::Addr helper_stop = r.initiator.rt().alloc_flag();

  // The helper thread: poll for GPU requests, service them.
  std::uint64_t polls = 0;
  r.node_sim(0).spawn(
      [](Rig& rr, mem::Addr bounce, mem::Addr request, mem::Addr stop,
         std::uint64_t& polls) -> sim::Task<> {
        auto& cpu = rr.initiator.cpu();
        auto& mem = rr.initiator.memory();
        for (;;) {
          while (mem.load<std::uint64_t>(request) == 0) {
            if (mem.load<std::uint64_t>(stop) != 0) co_return;
            ++polls;
            co_await cpu.compute(cpu.config().poll_interval);
          }
          mem.store<std::uint64_t>(request, 0);
          // Critical-path packet construction (the GPU-TN design moves
          // this off the critical path).
          co_await cpu.compute(cpu.config().send_stack_cost);
          nic::PutDesc put;
          put.target = 1;
          put.local_addr = bounce;
          put.bytes = kPayloadBytes;
          put.remote_addr = rr.dst;
          put.remote_flag = rr.rflag;
          rr.initiator.nic().ring_doorbell(put);
        }
      }(r, bounce, request, helper_stop, polls),
      "helper-thread");

  std::shared_ptr<gpu::KernelRecord> rec;
  r.node_sim(0).spawn(
      [](Rig& rr, std::shared_ptr<gpu::KernelRecord>& rec_out,
         mem::Addr bounce, mem::Addr request, mem::Addr stop) -> sim::Task<> {
        gpu::KernelDesc k;
        k.name = "ubench";
        k.num_wgs = 1;
        mem::Addr in = rr.input;
        k.fn = [in, bounce, request](gpu::WorkGroupCtx& ctx) -> sim::Task<> {
          // Copy the cache line into the bounce buffer, then hand off.
          co_await copy_kernel_body(ctx, in, bounce);
          co_await ctx.fence_system();
          co_await ctx.store_system(request, 1);
        };
        auto rec = co_await rr.initiator.rt().launch(std::move(k));
        rec_out = rec;
        co_await rec->done.wait();
        // Tear the helper down once the message is out (bench hygiene).
        rr.initiator.memory().store<std::uint64_t>(stop, 1);
      }(r, rec, bounce, request, helper_stop),
      "initiator");

  r.engine.run();
  res.initiator_phases = {
      {"launch", rec->launch_begin, rec->exec_begin},
      {"kernel", rec->exec_begin, rec->exec_end},
      {"teardown", rec->exec_end, rec->done_time},
  };
  res.target_completion = target_done;
  res.initiator_completion = rec->done_time;
  ++r.initiator.cpu().stats().counter("helper_threads");
  r.initiator.cpu().stats().counter("helper_polls") += polls;
  return res;
}

// GPU Native Networking (§1, §5.1.1): the kernel itself builds the network
// command — serial, scalar, divergence-prone work a GPU is bad at — and
// writes it to the NIC command queue with a series of uncached MMIO
// stores. No CPU anywhere, but the in-kernel critical path is long.
MicrobenchResult run_gnn(Rig& r) {
  MicrobenchResult res;
  res.strategy = Strategy::kGnn;

  sim::Tick target_done = -1;
  r.node_sim(1).spawn(target_poll(r, target_done), "target");

  // In-kernel packet construction cost: serial pointer chasing through QP
  // state held in global memory; a single lane does the work while the
  // wavefront idles (cf. Oden et al. [31], GPUrdma [8]).
  constexpr sim::Tick kGpuPacketBuild = sim::ns(700);
  constexpr int kCommandWords = 5;  // WQE descriptor written over MMIO

  std::shared_ptr<gpu::KernelRecord> rec;
  nic::PutDesc put = r.put_desc();
  r.node_sim(0).spawn(
      [](Rig& rr, std::shared_ptr<gpu::KernelRecord>& rec_out,
         nic::PutDesc put) -> sim::Task<> {
        gpu::KernelDesc k;
        k.name = "ubench";
        k.num_wgs = 1;
        mem::Addr in = rr.input, out = rr.src;
        auto* nic = &rr.initiator.nic();
        k.fn = [in, out, put, nic](gpu::WorkGroupCtx& ctx) -> sim::Task<> {
          co_await copy_kernel_body(ctx, in, out);
          co_await ctx.fence_system();
          co_await ctx.compute(kGpuPacketBuild);  // build the WQE in-kernel
          for (int wq = 0; wq < kCommandWords; ++wq) {
            co_await ctx.compute(ctx.gpu().config().store_system_latency);
          }
          // Ring the doorbell with the completed command.
          nic->ring_doorbell(put);
        };
        auto rec = co_await rr.initiator.rt().launch(std::move(k));
        rec_out = rec;
        co_await rec->done.wait();
      }(r, rec, put),
      "initiator");

  r.engine.run();
  res.initiator_phases = {
      {"launch", rec->launch_begin, rec->exec_begin},
      {"kernel", rec->exec_begin, rec->exec_end},
      {"teardown", rec->exec_end, rec->done_time},
  };
  res.target_completion = target_done;
  res.initiator_completion = rec->done_time;
  return res;
}

MicrobenchResult run_cpu(Rig& r) {
  MicrobenchResult res;
  res.strategy = Strategy::kCpu;

  sim::Tick target_done = -1;
  r.node_sim(1).spawn(
      [](Rig& rr, sim::Tick& out) -> sim::Task<> {
        co_await rr.target.rt().recv(0, 1, rr.dst, kPayloadBytes,
                                     /*host_staging=*/true);
        rr.target.memory().store<std::uint64_t>(rr.rflag, 1);
        out = rr.node_sim(1).now();
      }(r, target_done),
      "target");

  sim::Tick copy_begin = -1, send_begin = -1, send_end = -1;
  r.node_sim(0).spawn(
      [](Rig& rr, sim::Tick& cb, sim::Tick& sb, sim::Tick& se) -> sim::Task<> {
        cb = rr.node_sim(0).now();
        std::uint64_t v = rr.initiator.memory().load<std::uint64_t>(rr.input);
        rr.initiator.memory().store<std::uint64_t>(rr.src, v);
        co_await rr.initiator.cpu().compute(sim::ns(40));  // 64B copy
        sb = rr.node_sim(0).now();
        co_await rr.initiator.rt().send(1, 1, rr.src, kPayloadBytes,
                                        /*host_staging=*/true);
        se = rr.node_sim(0).now();
      }(r, copy_begin, send_begin, send_end),
      "initiator");

  r.engine.run();
  res.initiator_phases = {
      {"copy", copy_begin, send_begin},
      {"send", send_begin, send_end},
  };
  res.target_completion = target_done;
  res.initiator_completion = send_end;
  return res;
}

}  // namespace

MicrobenchResult run_microbench(const MicrobenchConfig& cfg,
                                const cluster::SystemConfig& config) {
  cluster::SystemConfig adjusted = with_fabric_overrides(cfg, config);
  Rig r(adjusted, cfg.shards);
  if (cfg.trace != nullptr) r.cluster.enable_tracing(*cfg.trace);
  if (cfg.timeseries != nullptr) r.cluster.attach_timeseries(*cfg.timeseries);
  if (cfg.flight != nullptr) r.cluster.attach_flight(*cfg.flight);
  MicrobenchResult res;
  switch (cfg.strategy) {
    case Strategy::kCpu:
      res = run_cpu(r);
      break;
    case Strategy::kHdn:
      res = run_hdn(r);
      break;
    case Strategy::kGds:
      res = run_gds(r);
      break;
    case Strategy::kGpuTn:
      res = run_gputn(r);
      break;
    case Strategy::kGhn:
      res = run_ghn(r);
      break;
    case Strategy::kGnn:
      res = run_gnn(r);
      break;
  }
  r.cluster.flush_flight();
  res.correct = r.target.memory().load<std::uint64_t>(r.dst) == kMagic;
  if (res.target_completion <= 0) {
    throw std::runtime_error("microbench: target never observed the payload");
  }
  res.nodes = 2;
  res.label = "microbench";
  res.detail = "one cache line, initiator -> target";
  res.total_time = res.target_completion;
  r.cluster.export_net_stats(res.net_stats, res.total_time);
  return res;
}

MicrobenchResult run_microbench(const MicrobenchConfig& cfg) {
  return run_microbench(cfg, cluster::SystemConfig::table2());
}

MicrobenchResult run_microbench(Strategy strategy,
                                const cluster::SystemConfig& config,
                                sim::TraceRecorder* trace) {
  MicrobenchConfig cfg;
  cfg.strategy = strategy;
  cfg.trace = trace;
  return run_microbench(cfg, config);
}

MicrobenchResult run_microbench(Strategy strategy) {
  return run_microbench(strategy, cluster::SystemConfig::table2());
}

}  // namespace gputn::workloads

// MPI Allreduce over a chunked ring (§5.4.1, Figure 10).
//
// An 8 MB single-precision sum-allreduce executed with the libNBC-style
// schedule (rt/collectives.hpp) under each strategy:
//
//   CPU    — host reduce + two-sided send/recv with eager staging copies.
//   HDN    — per-step reduce kernel at kernel boundaries; host send/recv
//            (GPUDirect zero copy) between kernels.
//   GDS    — the whole schedule pre-posted on the GPU stream: per step
//            [wait chunk | reduce kernel | put chunk].
//   GPU-TN — one persistent kernel performs the entire collective: each
//            work-group reduces its slice of the arriving chunk and
//            triggers the slice's put, pipelining compute with transfer
//            ("our implementation triggers the network operation at the
//            granularity of a work-group").
//
// Real fp32 data flows end to end; each rank's result is verified against
// the sequential sum of all input vectors.
#pragma once

#include "cluster/config.hpp"
#include "workloads/options.hpp"
#include "workloads/strategy.hpp"

namespace gputn::workloads {

/// Strategy/nodes/trace come from RunOptions (default 8 nodes, Figure 10).
struct AllreduceConfig : RunOptions {
  AllreduceConfig() { nodes = 8; }
  std::size_t elements = 2 * 1024 * 1024;  ///< fp32 count (8 MB, Figure 10)
  int num_wgs = 16;  ///< work-groups per reduce step
  /// GPU-TN pipelines each chunk as up to `num_wgs` slice messages, but a
  /// slice smaller than this is not worth its registration + per-message
  /// overhead; the implementation then coarsens toward kernel-level
  /// triggering (mixed granularity, §4.2.3).
  std::uint64_t min_slice_bytes = 8192;
  /// GPU-TN only: run the allgather phase as a NIC-offloaded trigger chain
  /// (counting receive events arm each forward hop, §6/Underwood et al.) —
  /// the GPU neither polls nor triggers in pure-forwarding steps.
  bool nic_offload_allgather = false;
};

struct AllreduceResult : ResultBase {
  std::size_t elements = 0;
  /// Max |error| vs. the sequential reduction across sampled elements.
  double max_error = 0.0;
};

AllreduceResult run_allreduce(const AllreduceConfig& cfg,
                              const cluster::SystemConfig& sys);
AllreduceResult run_allreduce(const AllreduceConfig& cfg);

}  // namespace gputn::workloads

#include "workloads/dl_projection.hpp"

#include <stdexcept>

#include "workloads/allreduce.hpp"

namespace gputn::workloads {

AllreduceLatencyModel::AllreduceLatencyModel(const cluster::SystemConfig& sys,
                                             int nodes)
    : sys_(sys), nodes_(nodes) {}

sim::Tick AllreduceLatencyModel::latency(Strategy s, std::size_t elements) {
  auto key = std::make_pair(static_cast<int>(s), elements);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  AllreduceConfig cfg;
  cfg.strategy = s;
  cfg.nodes = nodes_;
  cfg.elements = elements;
  AllreduceResult res = run_allreduce(cfg, sys_);
  if (!res.correct) {
    throw std::runtime_error("dl projection: allreduce verification failed");
  }
  cache_.emplace(key, res.total_time);
  return res.total_time;
}

std::vector<DlProjection> project_dl_workloads(
    const DlProjectionConfig& cfg, const cluster::SystemConfig& sys) {
  AllreduceLatencyModel model(sys, cfg.nodes);
  std::vector<DlProjection> out;

  for (const DlWorkload& w : table3_workloads()) {
    DlProjection p;
    p.workload = w;

    for (Strategy s : kAllStrategies) {
      double comm = 0.0;
      for (std::size_t b = 0; b < kBucketElems.size(); ++b) {
        if (w.bucket_weight[b] <= 0.0) continue;
        double calls = w.bucket_weight[b] * static_cast<double>(w.reductions);
        comm += calls * sim::to_sec(model.latency(s, kBucketElems[b]));
      }
      p.comm_seconds[s] = comm;
    }

    // Table 3's %Blocked is measured under the baseline strategy:
    // blocked = comm_base / (comm_base + compute).
    double comm_base = p.comm_seconds[cfg.baseline];
    p.compute_seconds = comm_base * (1.0 - w.pct_blocked) / w.pct_blocked;

    double t_norm = p.compute_seconds + p.comm_seconds[cfg.normalize_to];
    for (Strategy s : kAllStrategies) {
      p.speedup[s] = t_norm / (p.compute_seconds + p.comm_seconds[s]);
    }
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace gputn::workloads

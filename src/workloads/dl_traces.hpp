// CNTK deep-learning workload traces (Table 3, §5.4.2).
//
// The paper ran six CNTK workloads on the Stampede supercomputer and
// measured the frequency, time, and data size of their Allreduce calls,
// then *projected* application-level speedup from simulator results. We do
// not have Stampede or CNTK runs, so we synthesize traces that match the
// published Table 3 characteristics (%time blocked on Allreduce under the
// baseline, total reduction count) plus a per-workload gradient-bucket size
// distribution chosen to match each model's structure (large dense layers
// for AlexNet, small frequent LSTM buckets for AN4, tiny CIFAR convnets,
// ...). The projection methodology itself (dl_projection.hpp) is the
// paper's own.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace gputn::workloads {

/// The shared palette of gradient-bucket sizes (fp32 elements) used by all
/// traces. Keeping a common palette lets the projection simulate each
/// (size, strategy) pair once.
inline constexpr std::array<std::size_t, 5> kBucketElems = {
    16 * 1024, 64 * 1024, 256 * 1024, 1024 * 1024, 2 * 1024 * 1024};

struct DlWorkload {
  std::string name;
  std::string domain;
  /// Fraction of total time spent blocked on Allreduce (Table 3 %Blocked),
  /// measured under the baseline configuration.
  double pct_blocked = 0.0;
  /// Total number of reduction calls over the training run (Table 3).
  std::uint64_t reductions = 0;
  /// Weight of each kBucketElems size in the reduction mix (sums to 1).
  std::array<double, kBucketElems.size()> bucket_weight = {};

  /// Mean reduced bytes per call.
  double mean_bytes_per_reduction() const;
};

/// The six workloads of Table 3.
const std::vector<DlWorkload>& table3_workloads();

/// Render Table 3 (name, domain, %blocked, reductions).
std::string format_table3();

}  // namespace gputn::workloads

// Latency microbenchmark (§5.2, Figure 8): a kernel on the initiator copies
// one cache line and sends it to the target; we decompose where the time
// goes for HDN, GDS, and GPU-TN, and record when the target observes the
// data relative to the initiator's kernel lifecycle.
#pragma once

#include <string>
#include <vector>

#include "cluster/config.hpp"
#include "workloads/options.hpp"
#include "workloads/strategy.hpp"

namespace gputn::workloads {

struct PhaseSpan {
  std::string label;
  sim::Tick begin = 0;
  sim::Tick end = 0;
  double us() const { return sim::to_us(end - begin); }
};

/// The microbenchmark always pairs two nodes (initiator + target); only
/// strategy and trace from RunOptions matter.
struct MicrobenchConfig : RunOptions {
  MicrobenchConfig() { nodes = 2; }
};

/// ResultBase::total_time is the §5.2 end-to-end metric (target
/// completion); ResultBase::correct is the payload verification.
struct MicrobenchResult : ResultBase {
  std::vector<PhaseSpan> initiator_phases;
  /// When the target observed the payload (its completion flag / recv).
  sim::Tick target_completion = 0;
  /// When the initiator finished everything (kernel teardown + sends).
  sim::Tick initiator_completion = 0;
  /// End-to-end metric used for the §5.2 uplift claims.
  sim::Tick end_to_end() const { return target_completion; }
};

/// Run the one-cache-line microbenchmark on a fresh 2-node cluster. Pass
/// cfg.trace to record a Chrome trace of the run (observability only —
/// does not perturb timing).
MicrobenchResult run_microbench(const MicrobenchConfig& cfg,
                                const cluster::SystemConfig& config);
MicrobenchResult run_microbench(const MicrobenchConfig& cfg);

/// Convenience overloads predating MicrobenchConfig; still the tersest way
/// to sweep strategies in benches.
MicrobenchResult run_microbench(Strategy strategy,
                                const cluster::SystemConfig& config,
                                sim::TraceRecorder* trace = nullptr);
MicrobenchResult run_microbench(Strategy strategy);

}  // namespace gputn::workloads

// Latency microbenchmark (§5.2, Figure 8): a kernel on the initiator copies
// one cache line and sends it to the target; we decompose where the time
// goes for HDN, GDS, and GPU-TN, and record when the target observes the
// data relative to the initiator's kernel lifecycle.
#pragma once

#include <string>
#include <vector>

#include "cluster/config.hpp"
#include "sim/trace.hpp"
#include "workloads/strategy.hpp"

namespace gputn::workloads {

struct PhaseSpan {
  std::string label;
  sim::Tick begin = 0;
  sim::Tick end = 0;
  double us() const { return sim::to_us(end - begin); }
};

struct MicrobenchResult {
  Strategy strategy = Strategy::kHdn;
  std::vector<PhaseSpan> initiator_phases;
  /// When the target observed the payload (its completion flag / recv).
  sim::Tick target_completion = 0;
  /// When the initiator finished everything (kernel teardown + sends).
  sim::Tick initiator_completion = 0;
  /// End-to-end metric used for the §5.2 uplift claims.
  sim::Tick end_to_end() const { return target_completion; }
  bool payload_correct = false;
  /// net.* / rel.* / lat.* counters and histograms captured before teardown.
  sim::StatRegistry net_stats;
};

/// Run the one-cache-line microbenchmark under `strategy` on a fresh
/// 2-node cluster. Pass `trace` to record a Chrome trace of the run
/// (observability only — does not perturb timing).
MicrobenchResult run_microbench(Strategy strategy,
                                const cluster::SystemConfig& config,
                                sim::TraceRecorder* trace = nullptr);

/// Convenience: Table 2 configuration.
MicrobenchResult run_microbench(Strategy strategy);

}  // namespace gputn::workloads

#include "workloads/allreduce.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "rt/collectives.hpp"
#include "sim/sync.hpp"

namespace gputn::workloads {

namespace {

/// Small integer inputs keep fp32 ring sums exact, so verification against
/// the sequential reduction is bit-accurate regardless of combine order.
float initial_value(int rank, std::size_t i) {
  return static_cast<float>(static_cast<int>((rank * 7 + i * 13) % 31) - 15);
}

struct NodeState {
  mem::Addr vec = 0;               // the fp32 vector being reduced
  mem::Addr rx[2] = {0, 0};        // chunk landing buffers (ping-pong)
  mem::Addr step_flag = 0;         // chunk-level arrival flag, value = step+1
  std::vector<mem::Addr> slice_flag[2];  // GPU-TN per-slice arrival flags
  rt::RingAllreducePlan plan{0, 2, 2};
  rt::CollSchedule schedule;
};

struct Workspace {
  Workspace(const cluster::SystemConfig& sys, const AllreduceConfig& cfg)
      : engine(std::max(1, std::min(cfg.shards, cfg.nodes))),
        cluster(engine, sys, cfg.nodes),
        config(cfg),
        states(cfg.nodes) {
    for (int r = 0; r < cfg.nodes; ++r) {
      auto& node = cluster.node(r);
      auto& st = states[r];
      st.plan = rt::RingAllreducePlan(r, cfg.nodes, cfg.elements);
      st.schedule = rt::build_ring_allreduce_schedule(st.plan);
      st.vec = node.memory().alloc(cfg.elements * sizeof(float));
      std::size_t stage = st.plan.max_chunk_elems() * sizeof(float);
      st.rx[0] = node.memory().alloc(stage);
      st.rx[1] = node.memory().alloc(stage);
      st.step_flag = node.rt().alloc_flag();
      for (int p = 0; p < 2; ++p) {
        for (int w = 0; w < cfg.num_wgs; ++w) {
          st.slice_flag[p].push_back(node.rt().alloc_flag());
        }
      }
      auto v = node.memory().typed<float>(st.vec, cfg.elements);
      for (std::size_t i = 0; i < cfg.elements; ++i) {
        v[i] = initial_value(r, i);
      }
    }
  }

  mem::Addr chunk_addr(int rank, int chunk) const {
    return states[rank].vec +
           states[rank].plan.chunk_offset(chunk) * sizeof(float);
  }
  std::uint64_t chunk_bytes(int rank, int chunk) const {
    return states[rank].plan.chunk_elems(chunk) * sizeof(float);
  }

  /// The simulator owning rank `r` (all of them when --shards 1).
  sim::Simulator& node_sim(int r) { return cluster.node_sim(r); }

  sim::ShardEngine engine;
  cluster::Cluster cluster;
  AllreduceConfig config;
  std::vector<NodeState> states;
};

/// Functional combine: add `elems` floats at `src` into `dst`.
void combine(mem::Memory& m, mem::Addr dst, mem::Addr src, std::size_t elems) {
  auto d = m.typed<float>(dst, elems);
  auto s = m.typed<float>(src, elems);
  for (std::size_t i = 0; i < elems; ++i) d[i] += s[i];
}

/// GPU combine streams read+read+write coalesced.
std::uint64_t reduce_traffic(std::uint64_t bytes) { return 3 * bytes; }
/// The host additionally pays write-allocate on the destination.
std::uint64_t cpu_reduce_traffic(std::uint64_t bytes) { return 4 * bytes; }

// ---------------------------------------------------------------------------
// CPU: the libNBC schedule driven entirely by the host.
// ---------------------------------------------------------------------------
sim::Task<> cpu_rank(Workspace& w, int r, bool staging) {
  auto& node = w.cluster.node(r);
  auto& st = w.states[r];
  auto& m = node.memory();
  for (std::size_t round = 0; round < st.schedule.rounds.size(); ++round) {
    const auto& rd = st.schedule.rounds[round];
    const rt::CollSend& snd = rd.sends[0];
    const rt::CollRecv& rcv = rd.recvs[0];
    const bool reduce = !rd.reduces.empty();
    int p = static_cast<int>(round % 2);
    mem::Addr land = reduce ? st.rx[p] : w.chunk_addr(r, rcv.chunk);

    std::vector<sim::ProcessHandle> ops;
    ops.push_back(w.node_sim(r).spawn(
        node.rt().send(snd.peer, round, w.chunk_addr(r, snd.chunk),
                       w.chunk_bytes(r, snd.chunk), staging),
        "send"));
    ops.push_back(w.node_sim(r).spawn(
        node.rt().recv(rcv.peer, round, land, w.chunk_bytes(r, rcv.chunk),
                       staging),
        "recv"));
    co_await sim::join_all(std::move(ops));

    if (reduce) {
      std::size_t elems = st.plan.chunk_elems(rcv.chunk);
      combine(m, w.chunk_addr(r, rcv.chunk), land, elems);
      co_await node.cpu().compute_parallel(
          static_cast<double>(elems),
          cpu_reduce_traffic(w.chunk_bytes(r, rcv.chunk)));
    }
  }
}

// ---------------------------------------------------------------------------
// HDN: same schedule; reductions are GPU kernels at kernel boundaries.
// ---------------------------------------------------------------------------
sim::Task<> hdn_rank(Workspace& w, int r) {
  auto& node = w.cluster.node(r);
  auto& st = w.states[r];
  for (std::size_t round = 0; round < st.schedule.rounds.size(); ++round) {
    const auto& rd = st.schedule.rounds[round];
    const rt::CollSend& snd = rd.sends[0];
    const rt::CollRecv& rcv = rd.recvs[0];
    const bool reduce = !rd.reduces.empty();
    int p = static_cast<int>(round % 2);
    mem::Addr land = reduce ? st.rx[p] : w.chunk_addr(r, rcv.chunk);

    std::vector<sim::ProcessHandle> ops;
    ops.push_back(w.node_sim(r).spawn(
        node.rt().send(snd.peer, round, w.chunk_addr(r, snd.chunk),
                       w.chunk_bytes(r, snd.chunk)),
        "send"));
    ops.push_back(w.node_sim(r).spawn(
        node.rt().recv(rcv.peer, round, land, w.chunk_bytes(r, rcv.chunk)),
        "recv"));
    co_await sim::join_all(std::move(ops));

    if (reduce) {
      std::size_t elems = st.plan.chunk_elems(rcv.chunk);
      mem::Addr dst = w.chunk_addr(r, rcv.chunk);
      std::uint64_t bytes = w.chunk_bytes(r, rcv.chunk);
      gpu::KernelDesc k;
      k.name = "reduce";
      k.num_wgs = w.config.num_wgs;
      auto* mp = &node.memory();
      k.fn = [mp, dst, land, elems, bytes](gpu::WorkGroupCtx& ctx)
          -> sim::Task<> {
        if (ctx.wg_id() == 0) {
          combine(*mp, dst, land, elems);
          ctx.mark_dirty();
        }
        co_await ctx.compute_mem(reduce_traffic(bytes) /
                                 static_cast<std::uint64_t>(ctx.num_wgs()));
      };
      co_await node.rt().launch_sync(std::move(k));
    }
  }
}

// ---------------------------------------------------------------------------
// GDS: the whole schedule pre-posted on the GPU stream.
// Per round: [put send_chunk | wait arrival | reduce kernel].
// ---------------------------------------------------------------------------
sim::Task<> gds_rank(Workspace& w, int r) {
  auto& node = w.cluster.node(r);
  auto& st = w.states[r];
  std::shared_ptr<gpu::KernelRecord> last;
  sim::Event all_posted(w.node_sim(r));

  for (std::size_t round = 0; round < st.schedule.rounds.size(); ++round) {
    const auto& rd = st.schedule.rounds[round];
    const rt::CollSend& snd = rd.sends[0];
    const rt::CollRecv& rcv = rd.recvs[0];
    const bool reduce = !rd.reduces.empty();
    int p = static_cast<int>(round % 2);
    auto& peer = w.states[snd.peer];
    // Where my chunk lands at the receiver: staging (reduce phase) or final
    // position (allgather phase). Static scheme, known at post time (§3.4).
    mem::Addr remote =
        reduce ? peer.rx[p] : w.chunk_addr(snd.peer, snd.chunk);

    nic::PutDesc put;
    put.target = snd.peer;
    put.local_addr = w.chunk_addr(r, snd.chunk);
    put.bytes = w.chunk_bytes(r, snd.chunk);
    put.remote_addr = remote;
    put.remote_flag = peer.step_flag;
    put.flag_value = round + 1;
    co_await node.rt().gds_stream_put(put);
    node.rt().gds_stream_wait(st.step_flag, round + 1);

    if (reduce) {
      std::size_t elems = st.plan.chunk_elems(rcv.chunk);
      mem::Addr dst = w.chunk_addr(r, rcv.chunk);
      mem::Addr land = st.rx[p];
      std::uint64_t bytes = w.chunk_bytes(r, rcv.chunk);
      gpu::KernelDesc k;
      k.name = "reduce";
      k.num_wgs = w.config.num_wgs;
      auto* mp = &node.memory();
      k.fn = [mp, dst, land, elems, bytes](gpu::WorkGroupCtx& ctx)
          -> sim::Task<> {
        if (ctx.wg_id() == 0) {
          combine(*mp, dst, land, elems);
          ctx.mark_dirty();
        }
        co_await ctx.compute_mem(reduce_traffic(bytes) /
                                 static_cast<std::uint64_t>(ctx.num_wgs()));
      };
      last = co_await node.rt().launch(std::move(k));
    }
  }
  // Allgather rounds end with a wait; ensure the final round's data arrived.
  co_await node.cpu().wait_value_ge(st.step_flag,
                                    st.schedule.rounds.size());
  if (last) co_await last->done.wait();
}

// ---------------------------------------------------------------------------
// GPU-TN: one persistent kernel; work-group-granularity triggered puts
// pipeline each chunk's slices with the reduction (§5.4.1).
// ---------------------------------------------------------------------------
sim::Task<> gputn_rank(Workspace& w, int r) {
  auto& node = w.cluster.node(r);
  auto& st = w.states[r];
  const int wgs = w.config.num_wgs;
  const auto& steps = st.plan.steps();
  const int nsteps = static_cast<int>(steps.size());
  mem::Addr trig = node.rt().trigger_addr();

  // Mixed granularity (§4.2.3): pipeline each chunk as `slices` messages,
  // coarsening (by powers of two, so slices divides num_wgs) until a slice
  // meets the minimum useful size. slices == num_wgs is pure work-group
  // granularity; slices == 1 degenerates to kernel-level triggering with
  // threshold = num_wgs.
  std::uint64_t min_chunk = st.plan.chunk_elems(0) * sizeof(float);
  int slices = wgs;
  while (slices > 1 && min_chunk / slices < w.config.min_slice_bytes) {
    slices /= 2;
  }
  const int group = wgs / slices;  // work-groups contributing per slice

  // Transfer-slice partition of a chunk.
  auto slice_of = [slices](std::size_t elems, int slice,
                           std::size_t& off, std::size_t& cnt) {
    std::size_t base = elems / slices;
    off = base * slice;
    cnt = (slice == slices - 1) ? elems - off : base;
  };
  // Compute partition: WG w reduces its share of its own transfer slice
  // (j = w / group), so a slice's arrival unblocks exactly the WGs that
  // consume it.
  auto wg_part = [slices, group, slice_of](std::size_t elems, int wg,
                                           std::size_t& off,
                                           std::size_t& cnt) {
    int j = wg / group;
    int p = wg % group;
    std::size_t soff, scnt;
    slice_of(elems, j, soff, scnt);
    std::size_t base = scnt / group;
    off = soff + base * p;
    cnt = (p == group - 1) ? scnt - base * p : base;
    (void)slices;
  };

  // Launch the persistent kernel FIRST; registration overlaps execution
  // (relaxed synchronization, §3.2/§4.1 — early triggers become orphans).
  gpu::KernelDesc kern;
  kern.name = "allreduce-persistent";
  kern.num_wgs = wgs;
  auto* ws = &w;
  int rank = r;
  const bool offload = w.config.nic_offload_allgather;
  const int first_ag = st.plan.nranks() - 1;  // first allgather step index
  kern.fn = [ws, rank, trig, nsteps, slices, group, wg_part, offload,
             first_ag](gpu::WorkGroupCtx& ctx) -> sim::Task<> {
    auto& w2 = *ws;
    auto& st2 = w2.states[rank];
    auto& m = w2.cluster.node(rank).memory();
    const int wg = ctx.wg_id();
    const int j = wg / group;  // my transfer slice
    for (int s = 0; s < nsteps; ++s) {
      const rt::RingStep& step = st2.plan.steps()[s];
      int p = s % 2;
      // Trigger my slice's put: it fires once all `group` contributing
      // work-groups have arrived (threshold = group). With NIC offload,
      // forwarding steps beyond the first allgather hop are armed by the
      // incoming put's counting-receive event — no GPU trigger at all.
      if (!(offload && s > first_ag)) {
        co_await ctx.store_system(
            trig, static_cast<std::uint64_t>(s) * slices + j);
      }
      // Await my slice of the arriving chunk.
      co_await ctx.wait_value_ge(st2.slice_flag[p][j],
                                 static_cast<std::uint64_t>(s) + 1);
      if (step.reduce) {
        std::size_t elems = st2.plan.chunk_elems(step.recv_chunk);
        std::size_t off, cnt;
        wg_part(elems, wg, off, cnt);
        combine(m, w2.chunk_addr(rank, step.recv_chunk) + off * sizeof(float),
                st2.rx[p] + off * sizeof(float), cnt);
        ctx.mark_dirty();
        co_await ctx.compute_mem(reduce_traffic(cnt * sizeof(float)));
        co_await ctx.fence_system();
      }
    }
  };
  auto rec = co_await node.rt().launch(std::move(kern));

  // Host: build + register every triggered put. With many slices per step
  // this exceeds the 16-entry associative prototype, so allreduce runs the
  // hash-lookup table variant (see DESIGN.md).
  for (int s = 0; s < nsteps; ++s) {
    const rt::RingStep& step = steps[s];
    auto& peer = w.states[step.to];
    int p = s % 2;
    std::size_t elems = st.plan.chunk_elems(step.send_chunk);
    bool peer_reduces = step.reduce;  // same phase at every rank
    for (int j = 0; j < slices; ++j) {
      std::size_t off, cnt;
      slice_of(elems, j, off, cnt);
      nic::PutDesc put;
      put.target = step.to;
      put.local_addr =
          w.chunk_addr(r, step.send_chunk) + off * sizeof(float);
      put.bytes = cnt * sizeof(float);
      put.remote_addr =
          (peer_reduces ? peer.rx[p]
                        : w.chunk_addr(step.to, step.send_chunk)) +
          off * sizeof(float);
      put.remote_flag = peer.slice_flag[p][j];
      put.flag_value = static_cast<std::uint64_t>(s) + 1;
      // NIC-offloaded allgather: my put for a non-final forwarding step
      // also arms the receiver's next-hop put (the chunk I deliver at
      // step s is exactly what the receiver forwards at step s + 1).
      bool chain_next =
          offload && s >= first_ag && s + 1 < nsteps;
      if (chain_next) {
        put.remote_trigger_tag_plus1 =
            (static_cast<std::uint64_t>(s + 1) * slices + j) + 1;
      }
      // Forward-hop puts are armed by one receive event, not `group` GPU
      // trigger stores.
      std::uint64_t threshold =
          (offload && s > first_ag) ? 1 : static_cast<std::uint64_t>(group);
      co_await node.rt().trig_put(
          static_cast<std::uint64_t>(s) * slices + j, threshold, put);
    }
  }
  co_await rec->done.wait();
  // The final allgather arrivals land via DMA after the last kernel round
  // consumed its flags; the kernel's last waits cover them.
}

}  // namespace

AllreduceResult run_allreduce(const AllreduceConfig& cfg,
                              const cluster::SystemConfig& sys) {
  if (cfg.nodes < 2) throw std::invalid_argument("allreduce needs >= 2 nodes");
  cluster::SystemConfig adjusted = with_fabric_overrides(cfg, sys);
  std::uint64_t vec_bytes = cfg.elements * sizeof(float);
  adjusted.dram_bytes = vec_bytes + 4 * (vec_bytes / cfg.nodes) + (8u << 20);
  if (cfg.strategy == Strategy::kGpuTn) {
    // 2*(N-1)*num_wgs simultaneous triggered ops exceed the associative
    // prototype's 16 entries; use the hash variant for this workload.
    adjusted.triggered.table.lookup = core::LookupKind::kHash;
  }

  Workspace w(adjusted, cfg);
  if (cfg.trace != nullptr) w.cluster.enable_tracing(*cfg.trace);
  if (cfg.timeseries != nullptr) w.cluster.attach_timeseries(*cfg.timeseries);
  if (cfg.flight != nullptr) w.cluster.attach_flight(*cfg.flight);
  std::vector<std::vector<sim::ProcessHandle>> by_shard(
      static_cast<std::size_t>(w.engine.shards()));
  for (int r = 0; r < cfg.nodes; ++r) {
    sim::ProcessHandle h;
    switch (cfg.strategy) {
      case Strategy::kCpu:
        h = w.node_sim(r).spawn(cpu_rank(w, r, /*staging=*/true), "cpu_rank");
        break;
      case Strategy::kHdn:
        h = w.node_sim(r).spawn(hdn_rank(w, r), "hdn_rank");
        break;
      case Strategy::kGds:
        h = w.node_sim(r).spawn(gds_rank(w, r), "gds_rank");
        break;
      case Strategy::kGpuTn:
        h = w.node_sim(r).spawn(gputn_rank(w, r), "gputn_rank");
        break;
      case Strategy::kGhn:
      case Strategy::kGnn:
        throw std::invalid_argument(
            "allreduce: GHN/GNN are microbenchmark-only strategies");
    }
    by_shard[static_cast<std::size_t>(w.cluster.node_shard(r))].push_back(h);
  }
  // Completion monitors + watchdog: a protocol bug that livelocks (e.g. a
  // poll loop whose flag never arrives) would otherwise spin the event
  // queue forever; and run_until pads the clock, so the collective's end
  // time is captured when the last rank finishes. One monitor per shard
  // (each joins only shard-local ranks); the run's finish is their max,
  // which equals the sequential single-join tick — the globally last
  // rank's finish.
  std::vector<sim::Tick> shard_done(by_shard.size(), -1);
  for (std::size_t s = 0; s < by_shard.size(); ++s) {
    if (by_shard[s].empty()) {
      shard_done[s] = 0;
      continue;
    }
    w.engine.shard(static_cast<int>(s)).spawn(
        [](sim::Simulator& sh, std::vector<sim::ProcessHandle> hs,
           sim::Tick& out) -> sim::Task<> {
          co_await sim::join_all(std::move(hs));
          out = sh.now();
        }(w.engine.shard(static_cast<int>(s)), std::move(by_shard[s]),
          shard_done[s]),
        "monitor");
  }
  w.engine.run_until(sim::sec(10));
  sim::Tick finished_at = -1;
  for (sim::Tick t : shard_done) {
    if (t < 0) {
      throw std::runtime_error("allreduce: deadlocked (rank never finished)");
    }
    finished_at = std::max(finished_at, t);
  }
  w.cluster.flush_flight();

  AllreduceResult res;
  res.strategy = cfg.strategy;
  res.nodes = cfg.nodes;
  res.label = "allreduce";
  res.detail = std::to_string(cfg.elements) + " fp32 over " +
               std::to_string(cfg.nodes) + " ranks";
  res.elements = cfg.elements;
  res.total_time = finished_at;
  w.cluster.export_net_stats(res.net_stats, res.total_time);

  // Verify a stride of elements on every rank against the sequential sum.
  res.correct = true;
  std::size_t stride = cfg.elements > 100000 ? 997 : 1;
  for (std::size_t i = 0; i < cfg.elements; i += stride) {
    float want = 0.0f;
    for (int rk = 0; rk < cfg.nodes; ++rk) want += initial_value(rk, i);
    for (int rk = 0; rk < cfg.nodes; ++rk) {
      float got = w.cluster.node(rk).memory().load<float>(
          w.states[rk].vec + i * sizeof(float));
      double err = std::abs(static_cast<double>(got) - want);
      res.max_error = std::max(res.max_error, err);
      if (err != 0.0) res.correct = false;
    }
  }
  return res;
}

AllreduceResult run_allreduce(const AllreduceConfig& cfg) {
  return run_allreduce(cfg, cluster::SystemConfig::table2());
}

}  // namespace gputn::workloads

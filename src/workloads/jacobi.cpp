#include "workloads/jacobi.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "rt/collectives.hpp"
#include "sim/sync.hpp"

namespace gputn::workloads {

namespace {

// 2x2 torus decomposition. Ghost sides from the receiver's perspective.
enum Side { kNorth = 0, kSouth = 1, kWest = 2, kEast = 3 };
constexpr int kNodes = 4;
constexpr int kRows = 2, kCols = 2;

int node_id(int r, int c) {
  return ((r % kRows + kRows) % kRows) * kCols + ((c % kCols + kCols) % kCols);
}

/// Neighbor that fills my ghost side `s`.
int neighbor(int id, int s) {
  int r = id / kCols, c = id % kCols;
  switch (s) {
    case kNorth: return node_id(r - 1, c);
    case kSouth: return node_id(r + 1, c);
    case kWest: return node_id(r, c - 1);
    case kEast: return node_id(r, c + 1);
  }
  throw std::logic_error("bad side");
}

/// When I send my edge adjacent to my ghost side `s`, it becomes the
/// receiver's ghost on the opposite side.
int opposite(int s) {
  switch (s) {
    case kNorth: return kSouth;
    case kSouth: return kNorth;
    case kWest: return kEast;
    case kEast: return kWest;
  }
  throw std::logic_error("bad side");
}

std::uint64_t halo_tag(int iter, int side) {
  return static_cast<std::uint64_t>(iter) * 4 + static_cast<std::uint64_t>(side);
}

/// Deterministic initial condition over the global torus.
double initial_value(int gi, int gj) {
  return static_cast<double>((gi * 31 + gj * 17) % 97) / 97.0;
}

/// Per-node simulated state: an (n+2)^2 ghost-padded grid pair plus packed
/// edge (tx) and halo landing (rx) buffers, all in node memory.
struct NodeData {
  int n = 0;
  int id = 0;
  mem::Memory* mem = nullptr;
  mem::Addr grid[2] = {0, 0};  // current / next, (n+2)^2 doubles
  int cur = 0;
  mem::Addr tx[2][4] = {};       // packed outgoing edges (ping-pong), n doubles
  mem::Addr rx[2][4] = {};       // halo landing buffers (ping-pong)
  mem::Addr flag[4] = {};        // arrival flags, value = iter + 1
  mem::Addr local_flag[4] = {};  // GPU-TN local completion, value = iter + 1

  std::size_t row_bytes() const { return static_cast<std::size_t>(n) * 8; }
  std::size_t pitch() const { return static_cast<std::size_t>(n) + 2; }

  mem::Addr at(int gridsel, int i, int j) const {
    // i, j in [0, n+2): ghost-padded local coordinates.
    return grid[gridsel] +
           (static_cast<std::size_t>(i) * pitch() + j) * sizeof(double);
  }

  void alloc(mem::Memory& m, int n_, int id_) {
    n = n_;
    id = id_;
    mem = &m;
    std::size_t cells = pitch() * pitch();
    grid[0] = m.alloc(cells * 8);
    grid[1] = m.alloc(cells * 8);
    for (int p = 0; p < 2; ++p) {
      for (int s = 0; s < 4; ++s) {
        tx[p][s] = m.alloc(row_bytes());
        rx[p][s] = m.alloc(row_bytes());
      }
    }
    for (int s = 0; s < 4; ++s) {
      flag[s] = m.alloc(8);
      m.store<std::uint64_t>(flag[s], 0);
      local_flag[s] = m.alloc(8);
      m.store<std::uint64_t>(local_flag[s], 0);
    }
  }

  void init_values() {
    int r0 = (id / kCols) * n, c0 = (id % kCols) * n;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        double v = initial_value(r0 + i, c0 + j);
        mem->store<double>(at(0, i + 1, j + 1), v);
        mem->store<double>(at(1, i + 1, j + 1), 0.0);
      }
    }
  }

  /// Pack the four interior edges of `gridsel` into tx[parity].
  void pack_edges(int gridsel, int parity) {
    for (int j = 0; j < n; ++j) {
      mem->store<double>(tx[parity][kNorth] + j * 8,
                         mem->load<double>(at(gridsel, 1, j + 1)));
      mem->store<double>(tx[parity][kSouth] + j * 8,
                         mem->load<double>(at(gridsel, n, j + 1)));
    }
    for (int i = 0; i < n; ++i) {
      mem->store<double>(tx[parity][kWest] + i * 8,
                         mem->load<double>(at(gridsel, i + 1, 1)));
      mem->store<double>(tx[parity][kEast] + i * 8,
                         mem->load<double>(at(gridsel, i + 1, n)));
    }
  }

  /// Unpack rx[parity] halos into the ghost layer of `gridsel`.
  void unpack_halos(int gridsel, int parity) {
    for (int j = 0; j < n; ++j) {
      mem->store<double>(at(gridsel, 0, j + 1),
                         mem->load<double>(rx[parity][kNorth] + j * 8));
      mem->store<double>(at(gridsel, n + 1, j + 1),
                         mem->load<double>(rx[parity][kSouth] + j * 8));
    }
    for (int i = 0; i < n; ++i) {
      mem->store<double>(at(gridsel, i + 1, 0),
                         mem->load<double>(rx[parity][kWest] + i * 8));
      mem->store<double>(at(gridsel, i + 1, n + 1),
                         mem->load<double>(rx[parity][kEast] + i * 8));
    }
  }

  /// 5-point Jacobi step: cur -> next (functional; timing modelled by the
  /// executing agent).
  void stencil() {
    int nx = 1 - cur;
    for (int i = 1; i <= n; ++i) {
      for (int j = 1; j <= n; ++j) {
        double v = 0.25 * (mem->load<double>(at(cur, i - 1, j)) +
                           mem->load<double>(at(cur, i + 1, j)) +
                           mem->load<double>(at(cur, i, j - 1)) +
                           mem->load<double>(at(cur, i, j + 1)));
        mem->store<double>(at(nx, i, j), v);
      }
    }
    cur = nx;
  }
};

/// Modelled data traffic of one stencil iteration. The GPU streams
/// coalesced reads + writes (row reuse absorbed by the L2): 16 B/point.
std::uint64_t stencil_bytes(int n) {
  return static_cast<std::uint64_t>(n) * n * 16;
}
/// The host pays row re-reads and write-allocate on top: 40 B/point.
std::uint64_t cpu_stencil_bytes(int n) {
  return static_cast<std::uint64_t>(n) * n * 40;
}
double stencil_flops(int n) { return 4.0 * n * n; }
std::uint64_t pack_bytes(int n) {
  return static_cast<std::uint64_t>(n) * 8 * 4 * 2;  // 4 edges, read+write
}

struct Workspace {
  explicit Workspace(const cluster::SystemConfig& sys, const JacobiConfig& cfg)
      : engine(std::max(1, std::min(cfg.shards, kNodes))),
        cluster(engine, sys, kNodes),
        config(cfg) {
    for (int i = 0; i < kNodes; ++i) {
      data[i].alloc(cluster.node(i).memory(), cfg.n, i);
      data[i].init_values();
    }
  }
  /// The simulator owning node `id` (all four when --shards 1).
  sim::Simulator& node_sim(int id) { return cluster.node_sim(id); }
  sim::ShardEngine engine;
  cluster::Cluster cluster;
  JacobiConfig config;
  NodeData data[kNodes];
};

// ---------------------------------------------------------------------------
// Strategy executors. Per-iteration structure (identical data flow):
//   1. transmit tx[k%2] (edges of the current state) to the 4 neighbours
//   2. await the 4 halos for iteration k; unpack
//   3. stencil; pack the new edges into tx[(k+1)%2]
// ---------------------------------------------------------------------------

sim::Task<> cpu_node(Workspace& w, int id) {
  auto& node = w.cluster.node(id);
  auto& d = w.data[id];
  const int n = w.config.n;
  d.pack_edges(d.cur, 0);
  co_await node.cpu().compute_parallel(0, pack_bytes(n));

  for (int k = 0; k < w.config.iterations; ++k) {
    int p = k % 2;
    // Non-blocking sends/recvs (staging copies: pure-CPU eager protocol).
    std::vector<sim::ProcessHandle> ops;
    for (int s = 0; s < 4; ++s) {
      ops.push_back(w.node_sim(id).spawn(
          node.rt().send(neighbor(id, s), halo_tag(k, opposite(s)),
                         d.tx[p][s], d.row_bytes(), /*host_staging=*/true),
          "send"));
      ops.push_back(w.node_sim(id).spawn(
          node.rt().recv(neighbor(id, s), halo_tag(k, s), d.rx[p][s],
                         d.row_bytes(), /*host_staging=*/true),
          "recv"));
    }
    co_await sim::join_all(std::move(ops));
    d.unpack_halos(d.cur, p);
    d.stencil();
    d.pack_edges(d.cur, (k + 1) % 2);
    co_await node.cpu().compute_parallel(
        stencil_flops(n), cpu_stencil_bytes(n) + pack_bytes(n));
  }
}

/// The stencil kernel shared by HDN and GDS: unpack halos (parity p),
/// stencil, pack new edges into tx[1-p]; work-group 0 performs the
/// functional update, every work-group accounts its share of the traffic.
gpu::KernelDesc make_stencil_kernel(Workspace& w, int id, int parity) {
  auto& d = w.data[id];
  const int n = w.config.n;
  gpu::KernelDesc k;
  k.name = "jacobi";
  k.num_wgs = w.config.num_wgs;
  k.fn = [&d, n, parity](gpu::WorkGroupCtx& ctx) -> sim::Task<> {
    if (ctx.wg_id() == 0) {
      d.unpack_halos(d.cur, parity);
      d.stencil();
      d.pack_edges(d.cur, 1 - parity);
      ctx.mark_dirty();
    }
    co_await ctx.compute_mem((stencil_bytes(n) + pack_bytes(n)) /
                             static_cast<std::uint64_t>(ctx.num_wgs()));
  };
  return k;
}

sim::Task<> hdn_node(Workspace& w, int id) {
  auto& node = w.cluster.node(id);
  auto& d = w.data[id];
  d.pack_edges(d.cur, 0);
  co_await node.cpu().compute(sim::ns(200));  // initial host pack

  for (int k = 0; k < w.config.iterations; ++k) {
    int p = k % 2;
    // Kernel boundary: control is on the host, which drives MPI-style
    // send/recv (GPUDirect: zero copy).
    std::vector<sim::ProcessHandle> ops;
    for (int s = 0; s < 4; ++s) {
      ops.push_back(w.node_sim(id).spawn(
          node.rt().send(neighbor(id, s), halo_tag(k, opposite(s)),
                         d.tx[p][s], d.row_bytes()),
          "send"));
      ops.push_back(w.node_sim(id).spawn(
          node.rt().recv(neighbor(id, s), halo_tag(k, s), d.rx[p][s],
                         d.row_bytes()),
          "recv"));
    }
    co_await sim::join_all(std::move(ops));
    co_await node.rt().launch_sync(make_stencil_kernel(w, id, p));
  }
}

sim::Task<> gds_node(Workspace& w, int id) {
  auto& node = w.cluster.node(id);
  auto& d = w.data[id];
  d.pack_edges(d.cur, 0);
  co_await node.cpu().compute(sim::ns(200));

  // Pre-post the whole stream: [4 puts | 4 waits | kernel] per iteration.
  // The host's work ends after posting; the GPU front-end drives everything.
  std::shared_ptr<gpu::KernelRecord> last;
  for (int k = 0; k < w.config.iterations; ++k) {
    int p = k % 2;
    for (int s = 0; s < 4; ++s) {
      nic::PutDesc put;
      put.target = neighbor(id, s);
      put.local_addr = d.tx[p][s];
      put.bytes = d.row_bytes();
      auto& peer = w.data[put.target];
      put.remote_addr = peer.rx[p][opposite(s)];
      put.remote_flag = peer.flag[opposite(s)];
      put.flag_value = static_cast<std::uint64_t>(k) + 1;
      co_await node.rt().gds_stream_put(put);
    }
    for (int s = 0; s < 4; ++s) {
      node.rt().gds_stream_wait(d.flag[s], static_cast<std::uint64_t>(k) + 1);
    }
    last = co_await node.rt().launch(make_stencil_kernel(w, id, p));
  }
  co_await last->done.wait();
}

sim::Task<> gputn_node(Workspace& w, int id) {
  auto& node = w.cluster.node(id);
  auto& d = w.data[id];
  const int n = w.config.n;
  const int iters = w.config.iterations;
  const int wgs = w.config.num_wgs;
  d.pack_edges(d.cur, 0);
  co_await node.cpu().compute(sim::ns(200));

  auto register_iter = [&](int k) -> sim::Task<> {
    int p = k % 2;
    for (int s = 0; s < 4; ++s) {
      nic::PutDesc put;
      put.target = neighbor(id, s);
      put.local_addr = d.tx[p][s];
      put.bytes = d.row_bytes();
      auto& peer = w.data[put.target];
      put.remote_addr = peer.rx[p][opposite(s)];
      put.remote_flag = peer.flag[opposite(s)];
      put.flag_value = static_cast<std::uint64_t>(k) + 1;
      put.local_flag = d.local_flag[s];
      co_await node.rt().trig_put(halo_tag(k, s),
                                  static_cast<std::uint64_t>(wgs), put);
    }
  };

  // Sliding registration window: the prototype trigger table holds at most
  // 16 simultaneous entries (§3.3), so the host keeps <= 3 iterations (12
  // tags) registered and reclaims fired tags as their puts complete
  // locally. All of this overlaps the persistent kernel (§3.2).
  const int window = std::min(iters, 3);
  for (int k = 0; k < window; ++k) co_await register_iter(k);

  // One persistent kernel for the entire run (§5.3: "GPU-TN uses a single
  // kernel for the entire duration of the program").
  gpu::KernelDesc kern;
  kern.name = "jacobi-persistent";
  kern.num_wgs = wgs;
  mem::Addr trig = node.rt().trigger_addr();
  const bool overlap = w.config.overlap;
  kern.fn = [&d, n, iters, trig, overlap](gpu::WorkGroupCtx& ctx)
      -> sim::Task<> {
    // Interior points need no halos; the boundary ring does.
    std::uint64_t interior = n > 2 ? stencil_bytes(n - 2) : 0;
    std::uint64_t boundary = stencil_bytes(n) - interior;
    for (int k = 0; k < iters; ++k) {
      int p = k % 2;
      // Trigger the four halo puts for this iteration (threshold = #WGs:
      // every WG reaching this point means the previous pack is complete).
      for (int s = 0; s < 4; ++s) {
        co_await ctx.store_system(trig, halo_tag(k, s));
      }
      if (overlap) {
        // Compute the interior while the halos are in flight (§5.3's
        // unexploited overlap, implemented as an extension).
        co_await ctx.compute_mem(interior /
                                 static_cast<std::uint64_t>(ctx.num_wgs()));
      }
      // Await this iteration's halos from the NIC.
      for (int s = 0; s < 4; ++s) {
        co_await ctx.wait_value_ge(d.flag[s], static_cast<std::uint64_t>(k) + 1);
      }
      if (ctx.wg_id() == 0) {
        d.unpack_halos(d.cur, p);
        d.stencil();
        d.pack_edges(d.cur, 1 - p);
        ctx.mark_dirty();
      }
      std::uint64_t remaining =
          (overlap ? boundary : stencil_bytes(n)) + pack_bytes(n);
      co_await ctx.compute_mem(remaining /
                               static_cast<std::uint64_t>(ctx.num_wgs()));
      co_await ctx.fence_system();  // new edges visible before next trigger
    }
  };
  auto rec = co_await node.rt().launch(std::move(kern));

  // Host-side re-arming loop, fully off the critical path.
  for (int k = 0; k + window < iters; ++k) {
    for (int s = 0; s < 4; ++s) {
      co_await node.cpu().wait_value_ge(d.local_flag[s],
                                        static_cast<std::uint64_t>(k) + 1);
    }
    for (int s = 0; s < 4; ++s) node.triggered().release(halo_tag(k, s));
    co_await register_iter(k + window);
  }
  co_await rec->done.wait();
}

/// Scalar reference: the full 2N x 2N torus.
std::vector<double> reference(int n, int iterations) {
  int g = 2 * n;
  std::vector<double> cur(static_cast<std::size_t>(g) * g);
  std::vector<double> nxt(cur.size());
  for (int i = 0; i < g; ++i) {
    for (int j = 0; j < g; ++j) cur[static_cast<std::size_t>(i) * g + j] = initial_value(i, j);
  }
  auto at = [g](std::vector<double>& v, int i, int j) -> double& {
    return v[static_cast<std::size_t>((i + g) % g) * g + (j + g) % g];
  };
  for (int k = 0; k < iterations; ++k) {
    for (int i = 0; i < g; ++i) {
      for (int j = 0; j < g; ++j) {
        at(nxt, i, j) = 0.25 * (at(cur, i - 1, j) + at(cur, i + 1, j) +
                                at(cur, i, j - 1) + at(cur, i, j + 1));
      }
    }
    cur.swap(nxt);
  }
  return cur;
}

}  // namespace

JacobiResult run_jacobi(const JacobiConfig& cfg,
                        const cluster::SystemConfig& sys) {
  cluster::SystemConfig adjusted = with_fabric_overrides(cfg, sys);
  std::uint64_t grid_bytes =
      2ull * (cfg.n + 2) * (cfg.n + 2) * 8 + 16ull * cfg.n * 8 + (1 << 20);
  adjusted.dram_bytes = std::max(adjusted.dram_bytes, grid_bytes + (4u << 20));

  Workspace w(adjusted, cfg);
  if (cfg.trace != nullptr) w.cluster.enable_tracing(*cfg.trace);
  if (cfg.timeseries != nullptr) w.cluster.attach_timeseries(*cfg.timeseries);
  if (cfg.flight != nullptr) w.cluster.attach_flight(*cfg.flight);
  std::vector<std::vector<sim::ProcessHandle>> by_shard(
      static_cast<std::size_t>(w.engine.shards()));
  for (int i = 0; i < kNodes; ++i) {
    sim::ProcessHandle h;
    switch (cfg.strategy) {
      case Strategy::kCpu:
        h = w.node_sim(i).spawn(cpu_node(w, i), "cpu_node");
        break;
      case Strategy::kHdn:
        h = w.node_sim(i).spawn(hdn_node(w, i), "hdn_node");
        break;
      case Strategy::kGds:
        h = w.node_sim(i).spawn(gds_node(w, i), "gds_node");
        break;
      case Strategy::kGpuTn:
        h = w.node_sim(i).spawn(gputn_node(w, i), "gputn_node");
        break;
      case Strategy::kGhn:
      case Strategy::kGnn:
        throw std::invalid_argument(
            "jacobi: GHN/GNN are microbenchmark-only strategies");
    }
    by_shard[static_cast<std::size_t>(w.cluster.node_shard(i))].push_back(h);
  }
  // Per-shard completion monitors + watchdog (see allreduce.cpp for
  // rationale). Each records the tick its last local node finishes; the
  // run's finish time is their max, which equals the sequential monitor's
  // single join tick (the globally last node's finish).
  std::vector<sim::Tick> shard_done(by_shard.size(), -1);
  for (std::size_t s = 0; s < by_shard.size(); ++s) {
    if (by_shard[s].empty()) {
      shard_done[s] = 0;
      continue;
    }
    w.engine.shard(static_cast<int>(s)).spawn(
        [](sim::Simulator& sh, std::vector<sim::ProcessHandle> hs,
           sim::Tick& out) -> sim::Task<> {
          co_await sim::join_all(std::move(hs));
          out = sh.now();
        }(w.engine.shard(static_cast<int>(s)), std::move(by_shard[s]),
          shard_done[s]),
        "monitor");
  }
  w.engine.run_until(sim::sec(10));
  sim::Tick finished_at = -1;
  for (sim::Tick t : shard_done) {
    if (t < 0) {
      throw std::runtime_error("jacobi: deadlocked (node never finished)");
    }
    finished_at = std::max(finished_at, t);
  }
  w.cluster.flush_flight();

  JacobiResult res;
  res.strategy = cfg.strategy;
  res.nodes = kNodes;
  res.label = "jacobi";
  res.detail = std::to_string(cfg.n) + "x" + std::to_string(cfg.n) + " local, " +
               std::to_string(cfg.iterations) + " iters";
  res.n = cfg.n;
  res.iterations = cfg.iterations;
  res.total_time = finished_at;
  w.cluster.export_net_stats(res.net_stats, res.total_time);

  auto ref = reference(cfg.n, cfg.iterations);
  int g = 2 * cfg.n;
  bool ok = true;
  double checksum = 0.0;
  for (int node = 0; node < kNodes && ok; ++node) {
    auto& d = w.data[node];
    int r0 = (node / kCols) * cfg.n, c0 = (node % kCols) * cfg.n;
    for (int i = 0; i < cfg.n && ok; ++i) {
      for (int j = 0; j < cfg.n; ++j) {
        double got = w.data[node].mem->load<double>(d.at(d.cur, i + 1, j + 1));
        double want = ref[static_cast<std::size_t>(r0 + i) * g + (c0 + j)];
        if (node == 0) checksum += got;
        if (std::abs(got - want) > 1e-12) {
          ok = false;
          break;
        }
      }
    }
  }
  res.correct = ok;
  res.checksum = checksum;
  return res;
}

JacobiResult run_jacobi(const JacobiConfig& cfg) {
  return run_jacobi(cfg, cluster::SystemConfig::table2());
}

}  // namespace gputn::workloads

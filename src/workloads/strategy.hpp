// The four networking strategies evaluated in §5.1.
#pragma once

namespace gputn::workloads {

enum class Strategy {
  kCpu,    ///< all compute + communication on the host CPU
  kHdn,    ///< GPU compute, host-driven kernel-boundary send/recv
  kGds,    ///< GPUDirect-Async-style: pre-posted ops fired by the GPU
           ///< front-end at kernel boundaries
  kGpuTn,  ///< GPU Triggered Networking: intra-kernel triggered operations
  // The two intra-kernel alternatives the paper compares against only
  // qualitatively (§5.1.1, Table 1); implemented here so the comparison
  // can be quantified (bench/tab01_taxonomy).
  kGhn,  ///< GPU Host Networking: bounce buffer + CPU helper thread
  kGnn,  ///< GPU Native Networking: the GPU builds the command packet
};

inline const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kCpu:
      return "CPU";
    case Strategy::kHdn:
      return "HDN";
    case Strategy::kGds:
      return "GDS";
    case Strategy::kGpuTn:
      return "GPU-TN";
    case Strategy::kGhn:
      return "GHN";
    case Strategy::kGnn:
      return "GNN";
  }
  return "?";
}

/// The four configurations evaluated quantitatively in §5.
inline constexpr Strategy kAllStrategies[] = {Strategy::kCpu, Strategy::kHdn,
                                              Strategy::kGds, Strategy::kGpuTn};

/// The full Table 1 taxonomy (microbenchmark only).
inline constexpr Strategy kTaxonomyStrategies[] = {
    Strategy::kCpu, Strategy::kHdn,   Strategy::kGds,
    Strategy::kGhn, Strategy::kGnn,   Strategy::kGpuTn};

}  // namespace gputn::workloads

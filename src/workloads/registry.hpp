// Workload registry: one table mapping workload names to runners so the
// CLI (and any future driver) dispatches generically instead of hard-coding
// a subcommand per workload.
//
// A runner takes the shared RunOptions (strategy / node count / trace
// recorder), the workload-specific string parameters, and the system
// config; it validates the parameters (throwing std::invalid_argument on
// bad input so the driver can report a usage error instead of running with
// garbage), executes the workload, prints its report, and returns the
// sliced ResultBase for the driver's exit-code / stats-export plumbing.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cluster/config.hpp"
#include "workloads/options.hpp"

namespace gputn::workloads {

/// Workload-specific CLI parameters as validated string key/values.
/// Unlike raw atol/atof, the typed getters reject non-numeric text and
/// enforce range bounds at parse time (throwing std::invalid_argument),
/// so e.g. `--iterations banana` or `--chunks 0` fail before the
/// simulation starts.
class WorkloadParams {
 public:
  void set(std::string key, std::string value) {
    values_[std::move(key)] = std::move(value);
  }
  bool has(const std::string& key) const { return values_.count(key) > 0; }

  /// Boolean flag: present (with or without a value) means true.
  bool flag(const std::string& key) const { return has(key); }

  std::string get(const std::string& key, const std::string& dflt) const;

  /// Integer parameter with inclusive bounds; throws std::invalid_argument
  /// when the value is not an integer or out of [min, max].
  long get_int(const std::string& key, long dflt, long min, long max) const;

  /// Floating-point parameter with inclusive bounds; same validation.
  double get_double(const std::string& key, double dflt, double min,
                    double max) const;

 private:
  std::map<std::string, std::string> values_;
};

/// Runs one workload and returns the common slice of its result.
using WorkloadRunner = std::function<ResultBase(
    const RunOptions&, const WorkloadParams&, const cluster::SystemConfig&)>;

struct WorkloadEntry {
  std::string name;          ///< CLI subcommand, e.g. "jacobi"
  std::string description;   ///< one-liner for the usage text
  std::string options_help;  ///< workload-specific flags for the usage text
  WorkloadRunner run;
};

/// Name -> runner table. Entries keep registration order for usage text.
class Registry {
 public:
  void add(WorkloadEntry entry);
  const WorkloadEntry* find(const std::string& name) const;
  const std::vector<WorkloadEntry>& entries() const { return entries_; }

  /// The process-wide registry the CLI uses.
  static Registry& instance();

 private:
  std::vector<WorkloadEntry> entries_;
};

/// Register microbench/jacobi/allreduce/broadcast into `reg`. Explicit
/// call (no static initializers) so tests control what is registered.
void register_builtin_workloads(Registry& reg);

}  // namespace gputn::workloads

#include "workloads/registry.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "serve/serve.hpp"
#include "workloads/allreduce.hpp"
#include "workloads/broadcast.hpp"
#include "workloads/jacobi.hpp"
#include "workloads/microbench.hpp"

namespace gputn::workloads {

std::string WorkloadParams::get(const std::string& key,
                                const std::string& dflt) const {
  auto it = values_.find(key);
  return it != values_.end() && !it->second.empty() ? it->second : dflt;
}

long WorkloadParams::get_int(const std::string& key, long dflt, long min,
                             long max) const {
  long v = dflt;
  auto it = values_.find(key);
  if (it != values_.end()) {
    const char* s = it->second.c_str();
    char* end = nullptr;
    errno = 0;
    v = std::strtol(s, &end, 10);
    if (end == s || *end != '\0' || errno == ERANGE) {
      throw std::invalid_argument("--" + key + ": expected an integer, got '" +
                                  it->second + "'");
    }
  }
  if (v < min || v > max) {
    throw std::invalid_argument("--" + key + ": " + std::to_string(v) +
                                " out of range [" + std::to_string(min) + ", " +
                                std::to_string(max) + "]");
  }
  return v;
}

double WorkloadParams::get_double(const std::string& key, double dflt,
                                  double min, double max) const {
  double v = dflt;
  auto it = values_.find(key);
  if (it != values_.end()) {
    const char* s = it->second.c_str();
    char* end = nullptr;
    errno = 0;
    v = std::strtod(s, &end);
    if (end == s || *end != '\0' || errno == ERANGE) {
      throw std::invalid_argument("--" + key + ": expected a number, got '" +
                                  it->second + "'");
    }
  }
  if (!(v >= min && v <= max)) {
    throw std::invalid_argument("--" + key + ": " + std::to_string(v) +
                                " out of range [" + std::to_string(min) + ", " +
                                std::to_string(max) + "]");
  }
  return v;
}

void Registry::add(WorkloadEntry entry) { entries_.push_back(std::move(entry)); }

const WorkloadEntry* Registry::find(const std::string& name) const {
  for (const auto& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

Registry& Registry::instance() {
  static Registry reg;
  return reg;
}

namespace {

Strategy parse_strategy(const std::string& s) {
  for (Strategy st : kTaxonomyStrategies) {
    if (s == strategy_name(st)) return st;
  }
  throw std::invalid_argument("unknown strategy '" + s +
                              "' (CPU|HDN|GDS|GPU-TN|GHN|GNN)");
}

BroadcastDrive parse_drive(const std::string& s) {
  for (BroadcastDrive d : {BroadcastDrive::kHdn, BroadcastDrive::kGpuTn,
                           BroadcastDrive::kNicChain}) {
    if (s == broadcast_drive_name(d)) return d;
  }
  throw std::invalid_argument("unknown drive '" + s +
                              "' (HDN|GPU-TN|NIC-chain)");
}

/// Copy the shared options into a workload config; opts.nodes == 0 keeps
/// the workload's own default node count.
template <typename Cfg>
Cfg make_config(const RunOptions& opts, const WorkloadParams& p) {
  Cfg cfg;
  if (p.has("strategy")) {
    cfg.strategy = parse_strategy(p.get("strategy", ""));
  } else {
    cfg.strategy = opts.strategy;
  }
  if (opts.nodes != 0) cfg.nodes = opts.nodes;
  cfg.trace = opts.trace;
  cfg.timeseries = opts.timeseries;
  cfg.flight = opts.flight;
  cfg.quiet = opts.quiet;
  cfg.topology = opts.topology;
  cfg.routing = opts.routing;
  cfg.credits = opts.credits;
  cfg.shards = opts.shards;
  if (cfg.shards < 1) {
    throw std::invalid_argument("--shards must be >= 1");
  }
  // Shard rejection policy, centralized so every workload behaves the
  // same: the trace and time-series recorders are unsynchronized pure
  // observers, and under parallel DES workers on different shards would
  // interleave writes into them. Reject loudly — the same stance the CLI
  // already takes for --trace with --replicas — instead of silently
  // serializing or racing. --flight composes (per-node spools); faults
  // compose (per-link deterministic RNGs).
  if (cfg.shards > 1 && cfg.trace != nullptr) {
    throw std::invalid_argument(
        "--shards > 1 cannot be combined with --trace (the trace recorder "
        "is unsynchronized; run the traced run with --shards 1)");
  }
  if (cfg.shards > 1 && cfg.timeseries != nullptr) {
    throw std::invalid_argument(
        "--shards > 1 cannot be combined with --timeseries (the sampler "
        "is unsynchronized; run the sampled run with --shards 1)");
  }
  return cfg;
}

ResultBase run_microbench_entry(const RunOptions& opts,
                                const WorkloadParams& p,
                                const cluster::SystemConfig& sys) {
  MicrobenchConfig cfg = make_config<MicrobenchConfig>(opts, p);
  if (cfg.nodes != 2) {
    throw std::invalid_argument("microbench always pairs 2 nodes");
  }
  MicrobenchResult res = run_microbench(cfg, sys);
  if (!opts.quiet) {
    std::printf("%s one-cache-line microbenchmark:\n",
                strategy_name(cfg.strategy));
    for (const auto& ph : res.initiator_phases) {
      std::printf("  %-10s %.3f us\n", ph.label.c_str(), ph.us());
    }
    std::printf("  initiator complete  %.3f us\n",
                sim::to_us(res.initiator_completion));
    res.report();
  }
  return res;
}

ResultBase run_jacobi_entry(const RunOptions& opts, const WorkloadParams& p,
                            const cluster::SystemConfig& sys) {
  JacobiConfig cfg = make_config<JacobiConfig>(opts, p);
  if (cfg.nodes != 4) {
    throw std::invalid_argument("jacobi is a fixed 2x2 decomposition: 4 nodes");
  }
  cfg.n = static_cast<int>(p.get_int("n", 256, 1, 1 << 14));
  cfg.iterations = static_cast<int>(p.get_int("iterations", 10, 1, 1 << 20));
  cfg.overlap = p.flag("overlap");
  JacobiResult res = run_jacobi(cfg, sys);
  if (!opts.quiet) {
    res.report();
    std::printf("  per-iteration %.2f us\n", sim::to_us(res.per_iteration()));
  }
  return res;
}

ResultBase run_allreduce_entry(const RunOptions& opts, const WorkloadParams& p,
                               const cluster::SystemConfig& sys) {
  AllreduceConfig cfg = make_config<AllreduceConfig>(opts, p);
  if (cfg.nodes < 2) {
    throw std::invalid_argument("allreduce needs at least 2 ranks");
  }
  cfg.elements = static_cast<std::size_t>(
      p.get_double("mb", 8.0, 1.0 / 1024, 4096.0) * 1024 * 1024 / 4);
  cfg.nic_offload_allgather = p.flag("offload");
  AllreduceResult res = run_allreduce(cfg, sys);
  if (!opts.quiet) {
    res.report();
    if (res.max_error > 0.0) {
      std::printf("  max |error| %.3g\n", res.max_error);
    }
  }
  return res;
}

ResultBase run_broadcast_entry(const RunOptions& opts, const WorkloadParams& p,
                               const cluster::SystemConfig& sys) {
  BroadcastConfig cfg = make_config<BroadcastConfig>(opts, p);
  if (cfg.nodes < 2) {
    throw std::invalid_argument("broadcast needs at least 2 nodes");
  }
  cfg.drive = parse_drive(p.get("drive", "NIC-chain"));
  cfg.bytes = static_cast<std::size_t>(
      p.get_double("mb", 1.0, 1.0 / 1024, 4096.0) * 1024 * 1024);
  cfg.chunks = static_cast<int>(p.get_int("chunks", 16, 1, 1 << 16));
  BroadcastResult res = run_broadcast(cfg, sys);
  if (!opts.quiet) res.report();
  return res;
}

ResultBase run_serve_entry(const RunOptions& opts, const WorkloadParams& p,
                           const cluster::SystemConfig& sys) {
  serve::ServeConfig cfg = make_config<serve::ServeConfig>(opts, p);
  cfg.clients = static_cast<int>(p.get_int("clients", cfg.clients, 1, 64));
  cfg.servers = static_cast<int>(p.get_int("servers", cfg.servers, 1, 64));
  cfg.tenants = static_cast<int>(p.get_int("tenants", cfg.tenants, 1, 256));
  cfg.window = static_cast<int>(p.get_int("window", cfg.window, 1, 64));
  cfg.keyspace = static_cast<std::uint64_t>(
      p.get_int("keys", static_cast<long>(cfg.keyspace), 1, 1 << 22));
  cfg.zipf = p.get_double("zipf", cfg.zipf, 0.0, 4.0);
  cfg.read_fraction = p.get_double("rw-mix", cfg.read_fraction, 0.0, 1.0);
  cfg.offered_load =
      p.get_double("offered-load", cfg.offered_load, 1.0, 1e12);
  cfg.requests =
      static_cast<int>(p.get_int("requests", cfg.requests, 1, 1 << 22));
  cfg.value_bytes = static_cast<std::uint64_t>(
      p.get_int("value-bytes", static_cast<long>(cfg.value_bytes), 16,
                1 << 20));
  cfg.slo = sim::us(p.get_double("slo-us", sim::to_us(cfg.slo), 0.0, 1e9));
  cfg.request_compute = sim::ns(p.get_double(
      "compute-ns", static_cast<double>(cfg.request_compute) / 1000.0, 0.0,
      1e9));
  cfg.qp_batch = static_cast<int>(p.get_int("batch", cfg.qp_batch, 1, 1024));
  cfg.nic_rate_limit =
      p.get_double("rate-limit", cfg.nic_rate_limit, 0.0, 1e12);
  cfg.seed = static_cast<std::uint64_t>(
      p.get_int("seed", static_cast<long>(cfg.seed), 0, 1L << 62));
  serve::ServeResult res = run_serve(cfg, sys);
  return res;
}

}  // namespace

void register_builtin_workloads(Registry& reg) {
  reg.add({"microbench", "one-cache-line latency decomposition (Fig. 8)",
           "--strategy CPU|HDN|GDS|GPU-TN|GHN|GNN", run_microbench_entry});
  reg.add({"jacobi", "2-D Jacobi halo exchange on a 2x2 torus (Fig. 9)",
           "--strategy S --n <grid> --iterations <k> --overlap",
           run_jacobi_entry});
  reg.add({"allreduce", "chunked-ring fp32 sum allreduce (Fig. 10)",
           "--strategy S --nodes <n> --mb <size> --offload",
           run_allreduce_entry});
  reg.add({"broadcast", "pipelined ring broadcast / NIC trigger chains",
           "--drive HDN|GPU-TN|NIC-chain --nodes <n> --mb <size> --chunks <c>",
           run_broadcast_entry});
  reg.add({"serve",
           "Zipf-skewed multi-tenant KV serving with tail-latency SLOs",
           "--strategy CPU|GPU-TN --clients <n> --servers <m> --tenants <t> "
           "--zipf <s> --rw-mix <r> --offered-load <rps> --slo-us <us>",
           run_serve_entry});
}

}  // namespace gputn::workloads

#include "workloads/dl_traces.hpp"

#include <cstdio>

namespace gputn::workloads {

double DlWorkload::mean_bytes_per_reduction() const {
  double bytes = 0.0;
  for (std::size_t i = 0; i < kBucketElems.size(); ++i) {
    bytes += bucket_weight[i] * static_cast<double>(kBucketElems[i]) * 4.0;
  }
  return bytes;
}

const std::vector<DlWorkload>& table3_workloads() {
  // Bucket weights are synthesized per model family:
  //  * AlexNet: few huge dense layers dominate the gradient volume.
  //  * AN4 LSTM: many medium recurrent weight matrices, very frequent.
  //  * CIFAR: small convnet, tiny buckets, enormous call count.
  //  * Large Synth: synthetic benchmark with uniformly large layers.
  //  * MNIST Conv: small convolutional model.
  //  * MNIST Hidden: fully-connected hidden layers (medium buckets).
  static const std::vector<DlWorkload> workloads = {
      {"AlexNet", "Classification", 0.14, 4672,
       {0.05, 0.10, 0.25, 0.35, 0.25}},
      {"AN4 LSTM", "Speech", 0.50, 131192,
       {0.10, 0.30, 0.40, 0.20, 0.00}},
      {"CIFAR", "Classification", 0.04, 939820,
       {0.70, 0.25, 0.05, 0.00, 0.00}},
      {"Large Synth", "Synthetic", 0.28, 52800,
       {0.00, 0.05, 0.15, 0.40, 0.40}},
      {"MNIST Conv", "Text Recognition", 0.12, 900000,
       {0.60, 0.30, 0.10, 0.00, 0.00}},
      {"MNIST Hidden", "Text Recognition", 0.29, 900000,
       {0.20, 0.40, 0.30, 0.10, 0.00}},
  };
  return workloads;
}

std::string format_table3() {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-14s %-18s %9s %11s %14s\n", "Name",
                "Domain", "%Blocked", "Reductions", "MeanKB/call");
  out += buf;
  for (const auto& w : table3_workloads()) {
    std::snprintf(buf, sizeof(buf), "%-14s %-18s %8.0f%% %11llu %14.1f\n",
                  w.name.c_str(), w.domain.c_str(), w.pct_blocked * 100.0,
                  static_cast<unsigned long long>(w.reductions),
                  w.mean_bytes_per_reduction() / 1024.0);
    out += buf;
  }
  return out;
}

}  // namespace gputn::workloads

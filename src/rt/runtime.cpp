#include "rt/runtime.hpp"

namespace gputn::rt {

mem::Addr NodeRuntime::alloc_flag() {
  mem::Addr f = mem_->alloc(sizeof(std::uint64_t), 8);
  mem_->store<std::uint64_t>(f, 0);
  return f;
}

sim::Task<> NodeRuntime::send(net::NodeId dst, std::uint64_t tag,
                              mem::Addr buf, std::uint64_t bytes,
                              bool host_staging) {
  co_await cpu_->compute(cpu_->config().send_stack_cost);
  if (host_staging) co_await cpu_->staging_copy(bytes);
  mem::Addr flag = alloc_flag();
  nic::SendDesc s;
  s.target = dst;
  s.local_addr = buf;
  s.bytes = bytes;
  s.tag = tag;
  s.local_flag = flag;
  nic_->ring_doorbell(s);
  co_await cpu_->wait_value_ge(flag, 1);
}

sim::Task<> NodeRuntime::recv(net::NodeId src, std::uint64_t tag,
                              mem::Addr buf, std::uint64_t max_bytes,
                              bool host_staging) {
  co_await cpu_->compute(cpu_->config().recv_stack_cost);
  mem::Addr flag = alloc_flag();
  nic::RecvDesc r;
  r.src = src;
  r.tag = tag;
  r.local_addr = buf;
  r.max_bytes = max_bytes;
  r.flag = flag;
  nic_->post_recv(r);
  co_await cpu_->wait_value_ge(flag, 1);
  if (host_staging) co_await cpu_->staging_copy(max_bytes);
}

sim::Task<> NodeRuntime::put_nb(nic::PutDesc put) {
  co_await cpu_->compute(cpu_->config().post_cost);
  nic_->ring_doorbell(put);
}

sim::Task<> NodeRuntime::put(nic::PutDesc put) {
  if (put.local_flag == 0) put.local_flag = alloc_flag();
  mem::Addr flag = put.local_flag;
  std::uint64_t value = put.flag_value;
  co_await put_nb(put);
  co_await cpu_->wait_value_ge(flag, value);
}

sim::Task<> NodeRuntime::trig_put(core::Tag tag, std::uint64_t threshold,
                                  nic::PutDesc put) {
  // The host builds the command packet (partial network stack)...
  co_await cpu_->compute(cpu_->config().post_cost);
  // ...and registers it with the NIC; the registration write takes a
  // doorbell-latency to become visible to the trigger unit.
  sim_->schedule_in(nic_->config().doorbell_latency,
                    [this, tag, threshold, put] {
                      trig_->register_put(tag, threshold, put);
                    });
}

sim::Task<std::shared_ptr<gpu::KernelRecord>> NodeRuntime::launch(
    gpu::KernelDesc desc) {
  co_await cpu_->compute(cpu_->config().kernel_enqueue_cost);
  co_return gpu_->enqueue_kernel(std::move(desc));
}

sim::Task<> NodeRuntime::launch_sync(gpu::KernelDesc desc) {
  auto record = co_await launch(std::move(desc));
  co_await record->done.wait();
  // The host detects completion by polling the stream (cudaStreamSynchronize
  // style) — one poll interval of detection latency.
  co_await cpu_->compute(cpu_->config().poll_interval);
}

sim::Task<> NodeRuntime::gds_stream_put(nic::PutDesc put) {
  co_await cpu_->compute(cpu_->config().post_cost);
  gpu_->enqueue_gds_put(*nic_, put);
}

void NodeRuntime::gds_stream_wait(mem::Addr addr, std::uint64_t value) {
  gpu_->enqueue_gds_wait(addr, value);
}

}  // namespace gputn::rt

// Per-node runtime: the host-facing APIs of the four evaluated strategies.
//
//   * Two-sided MPI-style send/recv (CPU + HDN baselines).
//   * One-sided put/get from the host.
//   * The GPU-TN host API of Figure 6: TrigPut / GetTriggerAddr, plus
//     completion-flag plumbing (§4.2.4).
//   * GDS-style pre-posting: stage a put on the GPU stream so the front-end
//     rings the doorbell at the preceding kernel's boundary.
//
// Software costs (packet construction, posting, polling) are modelled per
// CpuConfig; the runtime never does hidden zero-time work on the critical
// path.
#pragma once

#include <cstdint>
#include <memory>

#include "core/triggered.hpp"
#include "cpu/cpu.hpp"
#include "gpu/gpu.hpp"
#include "mem/memory.hpp"
#include "nic/nic.hpp"

namespace gputn::rt {

class NodeRuntime {
 public:
  NodeRuntime(sim::Simulator& sim, cpu::Cpu& cpu, gpu::Gpu& gpu,
              nic::Nic& nic, core::TriggeredNic& trig, mem::Memory& memory)
      : sim_(&sim), cpu_(&cpu), gpu_(&gpu), nic_(&nic), trig_(&trig),
        mem_(&memory) {}
  NodeRuntime(const NodeRuntime&) = delete;
  NodeRuntime& operator=(const NodeRuntime&) = delete;

  net::NodeId rank() const { return nic_->node_id(); }
  mem::Memory& memory() { return *mem_; }
  cpu::Cpu& cpu() { return *cpu_; }
  gpu::Gpu& gpu() { return *gpu_; }
  nic::Nic& nic() { return *nic_; }
  core::TriggeredNic& triggered() { return *trig_; }

  /// Allocate an 8-byte zero-initialized completion flag.
  mem::Addr alloc_flag();

  // -- Two-sided (MPI-style; used by the CPU and HDN configurations) ------
  /// Blocking send: pays the full host network-stack cost, rings the NIC,
  /// returns when the payload has left the buffer. With `host_staging`
  /// (pure-CPU baseline, no GPUDirect-style zero copy) the host first
  /// copies the payload into an eager bounce buffer.
  sim::Task<> send(net::NodeId dst, std::uint64_t tag, mem::Addr buf,
                   std::uint64_t bytes, bool host_staging = false);
  /// Blocking receive: posts the receive, then polls until the payload has
  /// landed in `buf`. With `host_staging` the host copies the payload out
  /// of the bounce buffer after it lands.
  sim::Task<> recv(net::NodeId src, std::uint64_t tag, mem::Addr buf,
                   std::uint64_t max_bytes, bool host_staging = false);

  // -- One-sided from the host ---------------------------------------------
  /// Post a put and return once it is handed to the NIC (non-blocking).
  sim::Task<> put_nb(nic::PutDesc put);
  /// Put and wait for local completion (buffer reusable).
  sim::Task<> put(nic::PutDesc put);

  // -- GPU-TN host API (Figure 6) -------------------------------------------
  /// TrigPut: construct the network packet and register it with the NIC
  /// trigger list. Pays the partial-network-stack post cost.
  sim::Task<> trig_put(core::Tag tag, std::uint64_t threshold,
                       nic::PutDesc put);
  /// GetTriggerAddr: the MMIO address kernels store tags to.
  mem::Addr trigger_addr() const { return trig_->trigger_address(); }

  // -- Kernel dispatch -------------------------------------------------------
  /// LaunchKern: pays the driver enqueue cost, places the kernel on the GPU
  /// stream, returns its record (completion observed via record->done).
  sim::Task<std::shared_ptr<gpu::KernelRecord>> launch(gpu::KernelDesc desc);
  /// Launch and wait for kernel completion (HDN-style synchronous use).
  sim::Task<> launch_sync(gpu::KernelDesc desc);

  // -- GDS-style stream network ops -----------------------------------------
  /// Pre-post a put on the GPU stream (fires at the previous kernel's
  /// boundary). Host pays the post cost now, off the critical path.
  sim::Task<> gds_stream_put(nic::PutDesc put);
  /// Stream-ordered wait until *addr >= value (front-end poll).
  void gds_stream_wait(mem::Addr addr, std::uint64_t value);

 private:
  sim::Simulator* sim_;
  cpu::Cpu* cpu_;
  gpu::Gpu* gpu_;
  nic::Nic* nic_;
  core::TriggeredNic* trig_;
  mem::Memory* mem_;
};

}  // namespace gputn::rt

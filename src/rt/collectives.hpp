// libNBC-style non-blocking collective schedules (§5.4.1).
//
// "When a collective application is called, libNBC creates a schedule of
// subtasks that completely define all operations and dependencies" — we
// reproduce that structure: a Schedule is an ordered list of rounds; ops
// within a round are independent; a round starts when the previous round's
// ops complete. Strategy executors (workloads/allreduce.cpp) interpret the
// same schedule with CPU send/recv, kernel-boundary messaging, GDS streams,
// or GPU-TN triggered operations — which is exactly why "schedule creation
// in libNBC maps perfectly to the triggered operation semantics".
#pragma once

#include <cstdint>
#include <vector>

namespace gputn::rt {

/// One step of a chunked ring allreduce. The first (nranks-1) steps are the
/// reduce-scatter phase (arriving data is combined), the remaining
/// (nranks-1) steps are the allgather phase (arriving data is final).
struct RingStep {
  int index = 0;       ///< 0 .. 2*(nranks-1)-1
  bool reduce = false; ///< reduce-scatter phase?
  int send_chunk = 0;  ///< chunk this rank transmits
  int recv_chunk = 0;  ///< chunk this rank receives (and maybe reduces)
  int to = 0;          ///< right neighbour
  int from = 0;        ///< left neighbour
};

/// Ring allreduce plan for one rank: NCCL-style chunked ring with
/// reduce-scatter + allgather; total bytes on the wire per rank is
/// 2*(N-1)/N * vector size.
class RingAllreducePlan {
 public:
  RingAllreducePlan(int rank, int nranks, std::size_t elements);

  int rank() const { return rank_; }
  int nranks() const { return nranks_; }
  std::size_t elements() const { return elements_; }
  const std::vector<RingStep>& steps() const { return steps_; }
  int num_steps() const { return static_cast<int>(steps_.size()); }

  /// Element count / offset of chunk `c` (last chunk absorbs the remainder).
  std::size_t chunk_elems(int c) const;
  std::size_t chunk_offset(int c) const;
  /// Largest chunk (staging buffer sizing).
  std::size_t max_chunk_elems() const;

 private:
  int rank_;
  int nranks_;
  std::size_t elements_;
  std::size_t base_chunk_;
  std::vector<RingStep> steps_;
};

/// libNBC-style schedule ops, interpreted by strategy executors.
struct CollSend {
  int peer;
  int chunk;
};
struct CollRecv {
  int peer;
  int chunk;
};
struct CollReduce {
  int chunk;  ///< combine received data into the local vector chunk
};

struct CollRound {
  std::vector<CollSend> sends;
  std::vector<CollRecv> recvs;
  std::vector<CollReduce> reduces;
};

struct CollSchedule {
  std::vector<CollRound> rounds;
};

/// Build the ring-allreduce schedule for one rank (one round per ring step).
CollSchedule build_ring_allreduce_schedule(const RingAllreducePlan& plan);

}  // namespace gputn::rt

#include "rt/collectives.hpp"

#include <algorithm>
#include <stdexcept>

namespace gputn::rt {

namespace {
int mod(int a, int n) { return ((a % n) + n) % n; }
}  // namespace

RingAllreducePlan::RingAllreducePlan(int rank, int nranks,
                                     std::size_t elements)
    : rank_(rank), nranks_(nranks), elements_(elements) {
  if (nranks < 2) throw std::invalid_argument("ring allreduce needs >= 2 ranks");
  if (rank < 0 || rank >= nranks) throw std::invalid_argument("bad rank");
  if (elements < static_cast<std::size_t>(nranks)) {
    throw std::invalid_argument("fewer elements than ranks");
  }
  base_chunk_ = elements / nranks;

  const int to = mod(rank + 1, nranks);
  const int from = mod(rank - 1, nranks);
  // Reduce-scatter: step s sends chunk (rank - s), receives (rank - s - 1)
  // and reduces it. After N-1 steps this rank owns the fully reduced chunk
  // (rank + 1) mod N.
  for (int s = 0; s < nranks - 1; ++s) {
    RingStep st;
    st.index = s;
    st.reduce = true;
    st.send_chunk = mod(rank - s, nranks);
    st.recv_chunk = mod(rank - s - 1, nranks);
    st.to = to;
    st.from = from;
    steps_.push_back(st);
  }
  // Allgather: step s sends chunk (rank + 1 - s), receives (rank - s).
  for (int s = 0; s < nranks - 1; ++s) {
    RingStep st;
    st.index = nranks - 1 + s;
    st.reduce = false;
    st.send_chunk = mod(rank + 1 - s, nranks);
    st.recv_chunk = mod(rank - s, nranks);
    st.to = to;
    st.from = from;
    steps_.push_back(st);
  }
}

std::size_t RingAllreducePlan::chunk_elems(int c) const {
  if (c == nranks_ - 1) return elements_ - base_chunk_ * (nranks_ - 1);
  return base_chunk_;
}

std::size_t RingAllreducePlan::chunk_offset(int c) const {
  return base_chunk_ * static_cast<std::size_t>(c);
}

std::size_t RingAllreducePlan::max_chunk_elems() const {
  return std::max(base_chunk_, chunk_elems(nranks_ - 1));
}

CollSchedule build_ring_allreduce_schedule(const RingAllreducePlan& plan) {
  CollSchedule sched;
  for (const RingStep& st : plan.steps()) {
    CollRound round;
    round.sends.push_back(CollSend{st.to, st.send_chunk});
    round.recvs.push_back(CollRecv{st.from, st.recv_chunk});
    if (st.reduce) round.reduces.push_back(CollReduce{st.recv_chunk});
    sched.rounds.push_back(std::move(round));
  }
  return sched;
}

}  // namespace gputn::rt

#include "gpu/launch_model.hpp"

namespace gputn::gpu {

std::vector<std::unique_ptr<LaunchModel>> figure1_gpu_profiles() {
  std::vector<std::unique_ptr<LaunchModel>> profiles;
  // GPU 1: discrete flagship — very high single-kernel cost, amortizes well.
  profiles.push_back(std::make_unique<AmortizedLaunchModel>(
      "GPU 1", sim::us(4.0), sim::us(16.0)));
  // GPU 2: discrete midrange.
  profiles.push_back(std::make_unique<AmortizedLaunchModel>(
      "GPU 2", sim::us(3.6), sim::us(8.0)));
  // GPU 3: integrated APU — lowest launch overhead, least amortization.
  profiles.push_back(std::make_unique<AmortizedLaunchModel>(
      "GPU 3", sim::us(3.2), sim::us(4.0)));
  return profiles;
}

}  // namespace gputn::gpu

#include "gpu/gpu.hpp"

#include <algorithm>

#include <stdexcept>
#include <utility>

namespace gputn::gpu {

mem::Memory& WorkGroupCtx::mem() { return gpu_->memory(); }

sim::Task<> WorkGroupCtx::compute(sim::Tick t) {
  co_await gpu_->simulator().delay(t);
}

sim::Task<> WorkGroupCtx::compute_flops(double flops) {
  const auto& cfg = gpu_->config();
  double flops_per_ns = cfg.flops_per_cu_per_cycle * cfg.clock_ghz;
  co_await compute(sim::ns(flops / flops_per_ns));
}

sim::Task<> WorkGroupCtx::compute_mem(std::uint64_t bytes) {
  const auto& cfg = gpu_->config();
  // Per-CU share of aggregate bandwidth; work-groups on different CUs
  // stream concurrently.
  double share = cfg.mem_bandwidth.bytes_per_second() / cfg.cu_count;
  co_await compute(
      sim::Bandwidth::bytes_per_sec(share).serialize(bytes));
}

sim::Task<> WorkGroupCtx::barrier() {
  co_await compute(gpu_->config().barrier_latency);
}

sim::Task<> WorkGroupCtx::diverged(int paths, sim::Tick per_path) {
  if (paths < 1) paths = 1;
  ++gpu_->stats().counter("divergent_regions");
  co_await compute(static_cast<sim::Tick>(paths) * per_path);
}

sim::Task<> WorkGroupCtx::fence_system() {
  co_await compute(gpu_->config().fence_system_latency);
  dirty_ = false;
}

sim::Task<> WorkGroupCtx::store_system(mem::Addr addr, std::uint64_t value) {
  if (mem().is_mmio(addr) && dirty_) {
    // §4.2.6: triggering the NIC while buffer writes are still only
    // work-group-visible races the DMA read against the GPU caches.
    gpu_->note_hazard();
  }
  co_await compute(gpu_->config().store_system_latency);
  if (mem().is_mmio(addr)) {
    mem().mmio_store(addr, value);
  } else {
    mem().store<std::uint64_t>(addr, value);
  }
}

sim::Task<std::uint64_t> WorkGroupCtx::load_system(mem::Addr addr) {
  co_await compute(gpu_->config().load_system_latency);
  co_return mem().load<std::uint64_t>(addr);
}

sim::Task<> WorkGroupCtx::wait_value_ge(mem::Addr addr, std::uint64_t value) {
  for (;;) {
    std::uint64_t v = co_await load_system(addr);
    if (v >= value) co_return;
    co_await compute(gpu_->config().poll_interval);
  }
}

Gpu::Gpu(sim::Simulator& sim, mem::Memory& memory, GpuConfig config)
    : sim_(&sim),
      mem_(&memory),
      config_(config),
      launch_model_(std::make_unique<FixedLaunchModel>(config.launch_latency)),
      stream_(sim),
      cus_(sim, config.cu_count * std::max(1, config.max_wgs_per_cu)),
      cu_util_(config.cu_count * std::max(1, config.max_wgs_per_cu)),
      log_("gpu", sim.now_ptr()) {
  if (config.cu_count <= 0) throw std::invalid_argument("cu_count <= 0");
  sim_->spawn(front_end_loop(), "gpu.front_end");
}

void Gpu::set_launch_model(std::unique_ptr<LaunchModel> model) {
  launch_model_ = std::move(model);
}

std::shared_ptr<KernelRecord> Gpu::enqueue_kernel(KernelDesc desc) {
  if (desc.num_wgs <= 0) throw std::invalid_argument("num_wgs <= 0");
  auto record = std::make_shared<KernelRecord>(*sim_);
  record->enqueue_time = sim_->now();
  ++stats_.counter("kernels_enqueued");
  stream_.push(KernelOp{std::move(desc), record});
  return record;
}

void Gpu::enqueue_gds_put(nic::Nic& nic, nic::Command cmd) {
  ++stats_.counter("gds_puts_enqueued");
  stream_.push(GdsPutOp{&nic, std::move(cmd)});
}

void Gpu::enqueue_gds_wait(mem::Addr addr, std::uint64_t value) {
  stream_.push(GdsWaitOp{addr, value});
}

void Gpu::note_hazard() {
  ++hazards_;
  log_.warn("memory-model hazard: trigger store with unfenced buffer writes");
}

sim::Task<> Gpu::front_end_loop() {
  for (;;) {
    StreamOp op = co_await stream_.pop();
    if (auto* k = std::get_if<KernelOp>(&op)) {
      co_await execute_kernel(std::move(*k));
    } else if (auto* p = std::get_if<GdsPutOp>(&op)) {
      // The front-end scheduler rings a pre-posted doorbell on the NIC
      // when the stream reaches this entry (GDS model, §1/§5.1).
      co_await sim_->delay(config_.gds_doorbell_latency);
      p->nic->ring_doorbell(std::move(p->cmd));
      ++stats_.counter("gds_doorbells");
    } else if (auto* w = std::get_if<GdsWaitOp>(&op)) {
      while (mem_->load<std::uint64_t>(w->addr) < w->value) {
        co_await sim_->delay(config_.poll_interval);
      }
    }
  }
}

sim::Task<> Gpu::execute_kernel(KernelOp op) {
  auto& record = *op.record;
  record.launch_begin = sim_->now();
  // Commands visible to the hardware scheduler: this one plus anything
  // still queued behind it (Figure 1's batching effect).
  int visible = 1 + static_cast<int>(stream_.size());
  co_await sim_->delay(launch_model_->launch_cost(visible));
  record.exec_begin = sim_->now();
  ++stats_.counter("kernels_launched");

  if (op.desc.fn) {
    sim::Event all_done(*sim_);
    int remaining = op.desc.num_wgs;
    for (int wg = 0; wg < op.desc.num_wgs; ++wg) {
      co_await sim_->delay(config_.wg_dispatch_latency);
      sim_->spawn(run_work_group(op.desc, wg, &remaining, &all_done),
                  op.desc.name + ".wg" + std::to_string(wg));
    }
    co_await all_done.wait();
  }
  record.exec_end = sim_->now();
  co_await sim_->delay(config_.teardown_latency);
  record.done_time = sim_->now();
  ++stats_.counter("kernels_completed");
  if (trace_ != nullptr) {
    trace_->span(trace_lane_, op.desc.name + ":launch", "gpu",
                 record.launch_begin, record.exec_begin);
    trace_->span(trace_lane_, op.desc.name, "gpu", record.exec_begin,
                 record.exec_end);
    trace_->span(trace_lane_, op.desc.name + ":teardown", "gpu",
                 record.exec_end, record.done_time);
  }
  record.done.trigger();
}

sim::Task<> Gpu::run_work_group(const KernelDesc& desc, int wg_id,
                                int* remaining, sim::Event* all_done) {
  cu_util_.enqueue(sim_->now());
  co_await cus_.acquire();
  cu_util_.dequeue(sim_->now());
  cu_util_.acquire(sim_->now());
  WorkGroupCtx ctx(*this, wg_id, desc.num_wgs, desc.items_per_wg);
  co_await desc.fn(ctx);
  if (ctx.has_unfenced_writes()) {
    // Kernel end implies a full system-visibility point; writes left
    // unfenced at kernel end are made visible by teardown, not a hazard.
  }
  cu_util_.release(sim_->now());
  cus_.release();
  if (--*remaining == 0) all_done->trigger();
}

}  // namespace gputn::gpu

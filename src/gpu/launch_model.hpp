// Kernel launch-latency models (Figure 1 and §5.1 calibration).
//
// The paper motivates GPU-TN with measured kernel launch latencies on three
// (vendor-anonymous) GPUs: per-kernel launch cost falls as more kernel
// commands are queued at the front-end scheduler at once (driver/doorbell
// costs amortize), but never below 3-4 µs. The main experiments calibrate to
// the optimistic end: a flat 1.5 µs launch + 1.5 µs teardown (§5.1).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/units.hpp"

namespace gputn::gpu {

class LaunchModel {
 public:
  virtual ~LaunchModel() = default;
  /// Launch cost for the next kernel given the number of kernel commands
  /// currently visible to the hardware scheduler (>= 1).
  virtual sim::Tick launch_cost(int commands_visible) const = 0;
  virtual std::string name() const = 0;
};

/// Flat launch cost (the §5.1 calibration: 1.5 µs).
class FixedLaunchModel final : public LaunchModel {
 public:
  explicit FixedLaunchModel(sim::Tick cost) : cost_(cost) {}
  sim::Tick launch_cost(int) const override { return cost_; }
  std::string name() const override { return "fixed"; }

 private:
  sim::Tick cost_;
};

/// Queue-depth-amortized model: cost(q) = floor + amortized / q.
/// Reproduces the Figure 1 curves: expensive for lone kernels, approaching
/// the hardware floor when many commands are batched.
class AmortizedLaunchModel final : public LaunchModel {
 public:
  AmortizedLaunchModel(std::string name, sim::Tick floor, sim::Tick amortized)
      : name_(std::move(name)), floor_(floor), amortized_(amortized) {}

  sim::Tick launch_cost(int commands_visible) const override {
    if (commands_visible < 1) commands_visible = 1;
    return floor_ + amortized_ / commands_visible;
  }
  std::string name() const override { return name_; }

  sim::Tick floor() const { return floor_; }
  sim::Tick amortized() const { return amortized_; }

 private:
  std::string name_;
  sim::Tick floor_;
  sim::Tick amortized_;
};

/// The three hardware profiles of Figure 1 (product names omitted in the
/// paper to avoid cross-vendor comparison; calibrated to the described
/// 3-20 µs envelope with a 3-4 µs best case).
std::vector<std::unique_ptr<LaunchModel>> figure1_gpu_profiles();

}  // namespace gputn::gpu

// GPU model: front-end command processor, compute units, work-group
// execution, and the device-side memory operations GPU-TN relies on.
//
// Kernels are written as C++ coroutines executed once per work-group (the
// paper triggers at work-item, work-group, and kernel granularity — a
// work-group coroutine can model all three since work-items within a group
// run effectively in lockstep and trigger stores are issued by the group
// leader or by modelled per-item loops; see §4.2).
//
// The front-end processes an in-order stream of operations, mirroring how
// GDS integrates network initiation into CUDA streams (§5.1): a stream entry
// is a kernel dispatch, a pre-posted network op whose doorbell the front-end
// rings when reached (GDS put), or a wait-on-flag (GDS wait).
//
// Memory-model checking (§4.2.6): a work-group that stores to the trigger
// address while it has unfenced buffer writes outstanding is detected and
// counted — this is the correctness hazard the paper's release-fence
// discussion warns about.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "gpu/launch_model.hpp"
#include "mem/memory.hpp"
#include "nic/nic.hpp"
#include "obs/busy.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "sim/sync.hpp"

namespace gputn::gpu {

struct GpuConfig {
  int cu_count = 24;                 // Table 2
  /// Resident work-groups per CU. Occupancy > 1 lets persistent kernels
  /// oversubscribe for latency hiding (polling work-groups do not consume
  /// compute); a kernel with more work-groups than cu_count *
  /// max_wgs_per_cu that synchronizes across work-groups will livelock —
  /// the real persistent-kernel constraint, surfaced by the model.
  int max_wgs_per_cu = 1;
  double clock_ghz = 1.0;            // Table 2
  double flops_per_cu_per_cycle = 128.0;  // 64 lanes x fma
  /// Aggregate GPU memory bandwidth for bandwidth-bound kernel phases.
  sim::Bandwidth mem_bandwidth = sim::Bandwidth::gibps(320);
  sim::Tick launch_latency = sim::us(1.5);    // §5.1 calibration
  sim::Tick teardown_latency = sim::us(1.5);  // §5.1 calibration
  sim::Tick wg_dispatch_latency = sim::ns(10);
  sim::Tick barrier_latency = sim::ns(30);
  /// Release fence to system scope (flush/bypass GPU caches, §4.2.6).
  sim::Tick fence_system_latency = sim::ns(60);
  /// System-scope atomic store (cache-bypassing; reaches MMIO or DRAM).
  sim::Tick store_system_latency = sim::ns(80);
  sim::Tick load_system_latency = sim::ns(120);
  /// Interval between polls when a kernel spins on a memory flag.
  sim::Tick poll_interval = sim::ns(100);
  /// Front-end doorbell ring for GDS stream network ops.
  sim::Tick gds_doorbell_latency = sim::ns(50);
};

class Gpu;

/// Per-work-group device execution context (the kernel API of Figure 7).
class WorkGroupCtx {
 public:
  WorkGroupCtx(Gpu& gpu, int wg_id, int num_wgs, int items_per_wg)
      : gpu_(&gpu), wg_id_(wg_id), num_wgs_(num_wgs),
        items_per_wg_(items_per_wg) {}

  int wg_id() const { return wg_id_; }
  int num_wgs() const { return num_wgs_; }
  int items_per_wg() const { return items_per_wg_; }
  /// Global id of this group's leader work-item.
  int leader_global_id() const { return wg_id_ * items_per_wg_; }

  Gpu& gpu() { return *gpu_; }
  mem::Memory& mem();

  // -- Timed device operations --------------------------------------------
  /// Occupy this work-group's compute unit for `t`.
  sim::Task<> compute(sim::Tick t);
  /// Flop-bound phase executed by this work-group.
  sim::Task<> compute_flops(double flops);
  /// Memory-bandwidth-bound phase touching `bytes` (per work-group share).
  sim::Task<> compute_mem(std::uint64_t bytes);
  /// Work-group barrier (§4.2: leader triggers after the barrier).
  sim::Task<> barrier();
  /// Divergent control flow: a wavefront taking `paths` distinct branch
  /// directions executes them serially under an execution mask (§2.1.1) —
  /// total time is paths * per_path. This is the §5.1.1 cost that makes
  /// serial packet construction (GNN) expensive on a GPU.
  sim::Task<> diverged(int paths, sim::Tick per_path);
  /// Release fence to system scope: makes prior buffer writes visible to
  /// the NIC (§4.2.6). Clears the unfenced-writes hazard state.
  sim::Task<> fence_system();
  /// System-scope atomic store; routes to MMIO (trigger address) or DRAM.
  /// Firing a trigger with unfenced buffer writes is counted as a memory-
  /// model hazard.
  sim::Task<> store_system(mem::Addr addr, std::uint64_t value);
  /// System-scope acquire load.
  sim::Task<std::uint64_t> load_system(mem::Addr addr);
  /// Spin (with the configured poll interval) until *addr >= value.
  sim::Task<> wait_value_ge(mem::Addr addr, std::uint64_t value);

  // -- Functional buffer access (time accounted via compute_* phases) -----
  /// Device writes to global memory: tracked for fence-hazard detection.
  template <typename T>
  void store_data(mem::Addr addr, const T& v) {
    mem().store(addr, v);
    dirty_ = true;
  }
  template <typename T>
  void write_data(mem::Addr addr, std::span<const T> src) {
    mem().write(addr, src.data(), src.size_bytes());
    dirty_ = true;
  }
  template <typename T>
  T load_data(mem::Addr addr) {
    return mem().load<T>(addr);
  }
  /// Typed mutable view; mark_dirty() must accompany in-place mutation.
  template <typename T>
  std::span<T> view(mem::Addr addr, std::size_t count) {
    return mem().typed<T>(addr, count);
  }
  void mark_dirty() { dirty_ = true; }
  bool has_unfenced_writes() const { return dirty_; }

 private:
  friend class Gpu;
  Gpu* gpu_;
  int wg_id_;
  int num_wgs_;
  int items_per_wg_;
  bool dirty_ = false;
};

using KernelFn = std::function<sim::Task<>(WorkGroupCtx&)>;

struct KernelDesc {
  std::string name = "kernel";
  int num_wgs = 1;
  int items_per_wg = 64;
  KernelFn fn;  ///< may be empty: an empty kernel (Figure 1 study)
};

/// Timestamps and completion event for one dispatched kernel.
struct KernelRecord {
  explicit KernelRecord(sim::Simulator& sim) : done(sim) {}
  sim::Event done;
  sim::Tick enqueue_time = -1;
  sim::Tick launch_begin = -1;
  sim::Tick exec_begin = -1;
  sim::Tick exec_end = -1;
  sim::Tick done_time = -1;
};

class Gpu {
 public:
  Gpu(sim::Simulator& sim, mem::Memory& memory, GpuConfig config);
  Gpu(const Gpu&) = delete;
  Gpu& operator=(const Gpu&) = delete;

  const GpuConfig& config() const { return config_; }
  sim::Simulator& simulator() { return *sim_; }
  mem::Memory& memory() { return *mem_; }

  /// Replace the launch model (default: FixedLaunchModel(launch_latency)).
  void set_launch_model(std::unique_ptr<LaunchModel> model);

  /// Enqueue a kernel on the (single, in-order) stream.
  std::shared_ptr<KernelRecord> enqueue_kernel(KernelDesc desc);
  /// Enqueue a GDS-style pre-posted network op: the front-end rings the
  /// NIC doorbell when the stream reaches this entry (i.e. after the
  /// preceding kernel's completion).
  void enqueue_gds_put(nic::Nic& nic, nic::Command cmd);
  /// Enqueue a GDS-style wait: the front-end blocks the stream until the
  /// flag at `addr` is >= `value`.
  void enqueue_gds_wait(mem::Addr addr, std::uint64_t value);

  sim::StatRegistry& stats() { return stats_; }
  std::uint64_t memory_model_hazards() const { return hazards_; }

  /// Work-group slot ledger over cu_count * max_wgs_per_cu units: a slot is
  /// busy while a resident work-group runs (polling groups included — a
  /// parked persistent work-group still holds its slot), queued while a
  /// dispatched group waits for a free slot.
  const obs::BusyTracker& cu_util() const { return cu_util_; }

  /// Attach a trace recorder; kernel launch/exec/teardown spans are
  /// emitted onto `lane`.
  void set_trace(sim::TraceRecorder* trace, std::string lane) {
    trace_ = trace;
    trace_lane_ = std::move(lane);
  }

 private:
  friend class WorkGroupCtx;

  struct KernelOp {
    KernelDesc desc;
    std::shared_ptr<KernelRecord> record;
  };
  struct GdsPutOp {
    nic::Nic* nic;
    nic::Command cmd;
  };
  struct GdsWaitOp {
    mem::Addr addr;
    std::uint64_t value;
  };
  using StreamOp = std::variant<KernelOp, GdsPutOp, GdsWaitOp>;

  sim::Task<> front_end_loop();
  sim::Task<> execute_kernel(KernelOp op);
  sim::Task<> run_work_group(const KernelDesc& desc, int wg_id,
                             int* remaining, sim::Event* all_done);
  void note_hazard();

  sim::Simulator* sim_;
  mem::Memory* mem_;
  GpuConfig config_;
  std::unique_ptr<LaunchModel> launch_model_;
  sim::Channel<StreamOp> stream_;
  sim::Semaphore cus_;
  obs::BusyTracker cu_util_;
  sim::StatRegistry stats_;
  std::uint64_t hazards_ = 0;
  sim::TraceRecorder* trace_ = nullptr;
  std::string trace_lane_;
  sim::Logger log_;
};

}  // namespace gputn::gpu

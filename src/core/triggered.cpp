#include "core/triggered.hpp"

#include <stdexcept>
#include <string>

namespace gputn::core {

TriggeredNic::TriggeredNic(sim::Simulator& sim, nic::Nic& nic,
                           mem::Memory& memory, TriggeredNicConfig config)
    : sim_(&sim),
      nic_(&nic),
      config_(config),
      table_(config.table),
      trigger_addr_(memory.map_mmio(sizeof(std::uint64_t), this)),
      dyn_trigger_addr_(memory.map_mmio(sizeof(std::uint64_t), this)),
      fifo_(sim),
      log_("trig" + std::to_string(nic.node_id()), sim.now_ptr()) {
  // Counting receive events (puts that carry a trigger tag) feed the same
  // matching FIFO as GPU trigger stores.
  nic_->set_rx_trigger_hook([this](std::uint64_t tag) {
    ++triggers_received_;
    ++nic_->stats().counter("trig.events");
    fifo_.push(TriggerEvent{tag, false, sim_->now(), false});
  });
  sim_->spawn(match_loop(), log_.component() + ".match");
}

void TriggeredNic::register_dynamic_put(Tag tag, nic::PutDesc put) {
  put.target = -1;  // patched from the trigger event
  register_op(tag, /*threshold=*/1, nic::Command(put), {});
}

void TriggeredNic::register_put(Tag tag, std::uint64_t threshold,
                                nic::PutDesc put) {
  register_command(tag, threshold, nic::Command(put));
}

void TriggeredNic::register_command(Tag tag, std::uint64_t threshold,
                                    nic::Command cmd) {
  register_op(tag, threshold, std::move(cmd), {});
}

void TriggeredNic::register_op(Tag tag, std::uint64_t threshold,
                               std::optional<nic::Command> cmd,
                               std::vector<Tag> chain) {
  std::vector<nic::Command> ready;
  table_.register_op(TriggeredOp{tag, threshold, std::move(cmd),
                                 /*fired=*/false, /*sequence=*/0,
                                 std::move(chain)},
                     ready);
  if (!ready.empty()) {
    log_.debug("tag %llu registered with threshold already met; firing",
               static_cast<unsigned long long>(tag));
    // Note: a *dynamic* put cannot legally reach here — orphan counters do
    // not retain the event's target, so dynamic ops do not compose with
    // trigger-before-post (fire() faults on the -1 target). The triggering
    // store's arrival time is not retained by the orphan counter either,
    // so the fire carries no trigger timestamp.
    fire(std::move(ready), /*dynamic_target=*/-1, /*trigger_at=*/-1,
         /*trigger_mmio=*/false);
  }
}

void TriggeredNic::on_mmio_store(mem::Addr addr, std::uint64_t value) {
  if (addr != trigger_addr_ && addr != dyn_trigger_addr_) {
    throw std::logic_error("triggered NIC: store to unexpected MMIO address");
  }
  ++triggers_received_;
  ++nic_->stats().counter("trig.events");
  fifo_.push(TriggerEvent{value, addr == dyn_trigger_addr_, sim_->now(),
                          true});
  fifo_high_water_ = std::max(fifo_high_water_, fifo_.size());
  if (config_.fault_on_fifo_overflow &&
      fifo_.size() > static_cast<std::size_t>(config_.fifo_depth)) {
    throw std::runtime_error("trigger FIFO overflow");
  }
}

void TriggeredNic::fire(std::vector<nic::Command>&& cmds, int dynamic_target,
                        sim::Tick trigger_at, bool trigger_mmio) {
  nic_->stats().counter("trig.fires") += cmds.size();
  for (auto& cmd : cmds) {
    if (auto* put = std::get_if<nic::PutDesc>(&cmd); put != nullptr &&
        put->target < 0) {
      // A dynamic op (§3.4): the target comes from the trigger event.
      if (dynamic_target < 0) {
        throw std::runtime_error(
            "dynamic triggered put fired by a non-dynamic trigger event");
      }
      put->target = dynamic_target;
    }
    nic_->enqueue_internal(std::move(cmd), trigger_at, trigger_mmio);
  }
}

sim::Task<> TriggeredNic::match_loop() {
  for (;;) {
    TriggerEvent ev = co_await fifo_.pop();
    Tag tag = ev.tag();
    // Pay the lookup cost before touching the table so a concurrent host
    // release() cannot invalidate the entry across the delay.
    sim::Tick cost = table_.probe_cost(tag) + config_.update_cost;
    if (ev.dynamic) cost += config_.dynamic_decode_cost;
    co_await sim_->delay(cost);
    auto [counter, lookup_cost, created] = table_.find_or_create(tag);
    (void)lookup_cost;
    if (created) {
      log_.debug("orphan counter created for tag %llu (relaxed sync)",
                 static_cast<unsigned long long>(tag));
    }
    std::vector<nic::Command> ready;
    int chain_hops = 0;
    table_.increment(*counter, ready, &chain_hops);
    if (chain_hops > 0) {
      // Each chained counter update costs another pass through the
      // matching hardware.
      co_await sim_->delay(chain_hops *
                           (config_.update_cost + table_.probe_cost(tag)));
    }
    if (trace_ != nullptr) {
      // A span (store arrival -> counter updated) rather than an instant,
      // so flow steps through the trigger unit have a slice to bind to.
      trace_->span(trace_lane_,
                   "trigger tag=" + std::to_string(tag) +
                       (ready.empty() ? "" : " FIRE"),
                   "trigger", ev.at >= 0 ? ev.at : sim_->now(), sim_->now());
    }
    if (!ready.empty()) fire(std::move(ready), ev.target(), ev.at, ev.mmio);
  }
}

}  // namespace gputn::core

// Trigger list / trigger entries (§3.1, Figure 5) with the lookup-strategy
// alternatives discussed in §3.3.
//
// A trigger *counter* collects GPU writes of a tag; *triggered operations*
// reference a tag and fire when that tag's counter reaches their threshold.
// The paper's base design bundles the two (one op per entry); we keep them
// separable — exactly like Portals 4 counting events — which expresses the
// paper's mixed granularities (§4.2.3) and multi-round schedules naturally
// while reducing to the paper's entry when one op is registered per tag.
//
// §3.3 considers three hardware lookup structures for tag matching: a linked
// list (as in the Portals spec / BXI), a bounded associative array (the
// paper's prototype: <= 16 simultaneous entries), and a hash table. The
// table models each variant's per-lookup cost so the ablation bench can
// compare them.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "nic/nic.hpp"
#include "sim/units.hpp"

namespace gputn::core {

using Tag = std::uint64_t;

/// How the NIC finds the trigger entry for a written tag (§3.3).
enum class LookupKind {
  kAssociative,  ///< bounded CAM: constant-time, limited entries (prototype)
  kHash,         ///< hash table: near-constant, unbounded
  kLinkedList,   ///< linked list walk: O(active entries), unbounded
};

struct TriggerTableConfig {
  LookupKind lookup = LookupKind::kAssociative;
  /// Associative lookup capacity (the paper's prototype uses 16).
  int associative_entries = 16;
  /// Cost of one associative/CAM probe.
  sim::Tick associative_cost = sim::ns(4);
  /// Cost of a hash probe (hash + one bucket access).
  sim::Tick hash_cost = sim::ns(8);
  /// Cost per linked-list element traversed.
  sim::Tick list_hop_cost = sim::ns(6);
};

/// A counting entry: number of tag writes observed (Figure 5's Counter).
struct TriggerCounter {
  Tag tag = 0;
  std::uint64_t count = 0;
  /// True when created by a GPU write that preceded host registration
  /// (relaxed synchronization, §3.2).
  bool orphan = false;
};

/// A registered operation waiting on a counter (Figure 5). Besides a
/// network command, an op may carry *chained increments*: counters bumped
/// when it fires (Portals 4 triggered CTInc) — the mechanism behind fully
/// NIC-offloaded operation sequences (§6, Underwood et al.). An op with no
/// command and a non-empty chain is a pure counter-to-counter link.
struct TriggeredOp {
  Tag tag = 0;
  std::uint64_t threshold = 0;
  std::optional<nic::Command> op;
  bool fired = false;
  std::uint64_t sequence = 0;  ///< registration order (fire order tie-break)
  std::vector<Tag> chain;      ///< counters to increment on firing
  /// Tombstone set by TriggerTable::release; the slot is skipped until the
  /// next compaction. Last so existing aggregate initializers still work.
  bool released = false;
};

/// The trigger list plus lookup-cost model. Pure data structure: the timed
/// agent driving it lives in triggered.hpp.
class TriggerTable {
 public:
  explicit TriggerTable(TriggerTableConfig config);

  /// Find the counter for `tag`, creating an orphan if absent (§3.2).
  /// Returns the counter and the modelled lookup cost.
  struct LookupResult {
    TriggerCounter* counter;
    sim::Tick cost;
    bool created;
  };
  LookupResult find_or_create(Tag tag);

  /// Find without creating (host-side queries). Cost not modelled.
  TriggerCounter* find(Tag tag);

  /// Modelled hardware cost of looking up `tag` right now (a miss walks the
  /// whole list in the linked-list variant). Lets the timed agent pay the
  /// cost *before* mutating the table, so entries released concurrently
  /// cannot dangle across the delay.
  sim::Tick probe_cost(Tag tag) const;

  /// Register a triggered op. If the tag's counter has already reached the
  /// threshold (a GPU triggered before the CPU posted — relaxed
  /// synchronization, §3.2), the op is appended to `fired` for immediate
  /// execution.
  void register_op(TriggeredOp op, std::vector<nic::Command>& fired);

  /// Increment `tag`'s counter (the tag-write side); appends any ops whose
  /// thresholds are now met to `fired` in registration order. Chained
  /// increments cascade immediately (data-structure level); if
  /// `chain_hops` is non-null it accumulates the number of cascade hops so
  /// the timed agent can charge per-hop hardware cost.
  void increment(TriggerCounter& counter, std::vector<nic::Command>& fired,
                 int* chain_hops = nullptr);

  /// Remove a counter and all ops referencing it (host reclaim).
  void release(Tag tag);

  int active_counters() const { return static_cast<int>(counters_.size()); }
  int pending_ops() const;
  int total_ops() const { return live_ops_; }
  std::uint64_t orphans_created() const { return orphans_created_; }
  std::uint64_t ops_fired() const { return ops_fired_; }

  const TriggerTableConfig& config() const { return config_; }

 private:
  /// Index entry: list iterator (stable across unrelated mutations — callers
  /// hold counter pointers across timed delays) plus the cached list
  /// position, so the linked-list cost model no longer walks the list on
  /// every lookup. Positions shift only on release(), which is rare host
  /// reclaim and pays the O(n) renumbering there.
  struct Slot {
    std::list<TriggerCounter>::iterator it;
    std::size_t pos;
  };

  sim::Tick lookup_cost(std::size_t position_in_list) const;
  void collect_ready(Tag tag, std::uint64_t count,
                     std::vector<nic::Command>& fired, int* chain_hops,
                     int depth);
  void fire_op(TriggeredOp& op, std::vector<nic::Command>& fired,
               int* chain_hops, int depth);
  void compact_ops();

  TriggerTableConfig config_;
  // Canonical storage is a list to model the linked-list variant's traversal
  // order; the map accelerates the simulator regardless of the modelled
  // hardware cost.
  std::list<TriggerCounter> counters_;
  std::unordered_map<Tag, Slot> index_;
  std::vector<TriggeredOp> ops_;
  /// Per-tag indices into ops_, in registration order: increment() touches
  /// only the incremented tag's ops instead of scanning the whole table.
  std::unordered_map<Tag, std::vector<std::size_t>> ops_by_tag_;
  int live_ops_ = 0;
  std::size_t released_ops_ = 0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t orphans_created_ = 0;
  std::uint64_t ops_fired_ = 0;
};

}  // namespace gputn::core

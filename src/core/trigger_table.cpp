#include "core/trigger_table.hpp"

#include <algorithm>
#include <stdexcept>

namespace gputn::core {

TriggerTable::TriggerTable(TriggerTableConfig config) : config_(config) {}

sim::Tick TriggerTable::lookup_cost(std::size_t position_in_list) const {
  switch (config_.lookup) {
    case LookupKind::kAssociative:
      return config_.associative_cost;
    case LookupKind::kHash:
      return config_.hash_cost;
    case LookupKind::kLinkedList:
      return static_cast<sim::Tick>(position_in_list + 1) *
             config_.list_hop_cost;
  }
  return 0;
}

TriggerTable::LookupResult TriggerTable::find_or_create(Tag tag) {
  auto it = index_.find(tag);
  if (it != index_.end()) {
    std::size_t pos = static_cast<std::size_t>(
        std::distance(counters_.begin(), it->second));
    return {&*it->second, lookup_cost(pos), false};
  }
  if (config_.lookup == LookupKind::kAssociative &&
      static_cast<int>(counters_.size()) >= config_.associative_entries) {
    throw std::runtime_error(
        "trigger table: associative lookup capacity exceeded (" +
        std::to_string(config_.associative_entries) + " entries)");
  }
  counters_.push_back(TriggerCounter{tag, 0, /*orphan=*/true});
  auto inserted = std::prev(counters_.end());
  index_.emplace(tag, inserted);
  ++orphans_created_;
  // A miss walks the whole list in the linked-list variant.
  return {&*inserted, lookup_cost(counters_.size() - 1), true};
}

TriggerCounter* TriggerTable::find(Tag tag) {
  auto it = index_.find(tag);
  return it != index_.end() ? &*it->second : nullptr;
}

sim::Tick TriggerTable::probe_cost(Tag tag) const {
  auto it = index_.find(tag);
  if (it != index_.end()) {
    std::size_t pos = static_cast<std::size_t>(
        std::distance(counters_.begin(),
                      std::list<TriggerCounter>::const_iterator(it->second)));
    return lookup_cost(pos);
  }
  return lookup_cost(counters_.empty() ? 0 : counters_.size() - 1);
}

void TriggerTable::register_op(TriggeredOp op,
                               std::vector<nic::Command>& fired) {
  op.sequence = next_sequence_++;
  std::uint64_t current = 0;
  auto it = index_.find(op.tag);
  if (it == index_.end()) {
    if (config_.lookup == LookupKind::kAssociative &&
        static_cast<int>(counters_.size()) >= config_.associative_entries) {
      throw std::runtime_error(
          "trigger table: associative lookup capacity exceeded (" +
          std::to_string(config_.associative_entries) + " entries)");
    }
    counters_.push_back(TriggerCounter{op.tag, 0, /*orphan=*/false});
    index_.emplace(op.tag, std::prev(counters_.end()));
  } else {
    current = it->second->count;
  }
  // §3.2: if a GPU already advanced this counter past the threshold, the
  // operation executes immediately on registration.
  if (current >= op.threshold) {
    op.fired = true;
    ++ops_fired_;
    if (op.op.has_value()) fired.push_back(*op.op);
    for (Tag next : op.chain) {
      auto r = find_or_create(next);
      ++r.counter->count;
      collect_ready(next, r.counter->count, fired, nullptr, 0);
    }
  }
  ops_.push_back(std::move(op));
}

void TriggerTable::collect_ready(Tag tag, std::uint64_t count,
                                 std::vector<nic::Command>& fired,
                                 int* chain_hops, int depth) {
  if (depth > 64) {
    throw std::runtime_error("trigger chain depth exceeds 64 (cycle?)");
  }
  // Fire in registration order so multi-op-per-tag schedules are ordered.
  // Chains may register new firings while we scan; iterate by index.
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    if (ops_[i].fired || ops_[i].tag != tag || count < ops_[i].threshold) {
      continue;
    }
    ops_[i].fired = true;
    ++ops_fired_;
    if (ops_[i].op.has_value()) fired.push_back(*ops_[i].op);
    // Cascade chained counter increments (Portals triggered CTInc).
    std::vector<Tag> chain = ops_[i].chain;  // copy: recursion may realloc
    for (Tag next : chain) {
      if (chain_hops != nullptr) ++*chain_hops;
      auto r = find_or_create(next);
      ++r.counter->count;
      collect_ready(next, r.counter->count, fired, chain_hops, depth + 1);
    }
  }
}

void TriggerTable::increment(TriggerCounter& counter,
                             std::vector<nic::Command>& fired,
                             int* chain_hops) {
  ++counter.count;
  collect_ready(counter.tag, counter.count, fired, chain_hops, 0);
}

void TriggerTable::release(Tag tag) {
  auto it = index_.find(tag);
  if (it == index_.end()) return;
  counters_.erase(it->second);
  index_.erase(it);
  std::erase_if(ops_, [tag](const TriggeredOp& op) { return op.tag == tag; });
}

int TriggerTable::pending_ops() const {
  return static_cast<int>(
      std::count_if(ops_.begin(), ops_.end(),
                    [](const TriggeredOp& op) { return !op.fired; }));
}

}  // namespace gputn::core

#include "core/trigger_table.hpp"

#include <algorithm>
#include <stdexcept>

namespace gputn::core {

TriggerTable::TriggerTable(TriggerTableConfig config) : config_(config) {}

sim::Tick TriggerTable::lookup_cost(std::size_t position_in_list) const {
  switch (config_.lookup) {
    case LookupKind::kAssociative:
      return config_.associative_cost;
    case LookupKind::kHash:
      return config_.hash_cost;
    case LookupKind::kLinkedList:
      return static_cast<sim::Tick>(position_in_list + 1) *
             config_.list_hop_cost;
  }
  return 0;
}

TriggerTable::LookupResult TriggerTable::find_or_create(Tag tag) {
  auto it = index_.find(tag);
  if (it != index_.end()) {
    return {&*it->second.it, lookup_cost(it->second.pos), false};
  }
  if (config_.lookup == LookupKind::kAssociative &&
      static_cast<int>(counters_.size()) >= config_.associative_entries) {
    throw std::runtime_error(
        "trigger table: associative lookup capacity exceeded (" +
        std::to_string(config_.associative_entries) + " entries)");
  }
  counters_.push_back(TriggerCounter{tag, 0, /*orphan=*/true});
  auto inserted = std::prev(counters_.end());
  index_.emplace(tag, Slot{inserted, counters_.size() - 1});
  ++orphans_created_;
  // A miss walks the whole list in the linked-list variant.
  return {&*inserted, lookup_cost(counters_.size() - 1), true};
}

TriggerCounter* TriggerTable::find(Tag tag) {
  auto it = index_.find(tag);
  return it != index_.end() ? &*it->second.it : nullptr;
}

sim::Tick TriggerTable::probe_cost(Tag tag) const {
  auto it = index_.find(tag);
  if (it != index_.end()) return lookup_cost(it->second.pos);
  return lookup_cost(counters_.empty() ? 0 : counters_.size() - 1);
}

void TriggerTable::register_op(TriggeredOp op,
                               std::vector<nic::Command>& fired) {
  op.sequence = next_sequence_++;
  std::uint64_t current = 0;
  auto it = index_.find(op.tag);
  if (it == index_.end()) {
    if (config_.lookup == LookupKind::kAssociative &&
        static_cast<int>(counters_.size()) >= config_.associative_entries) {
      throw std::runtime_error(
          "trigger table: associative lookup capacity exceeded (" +
          std::to_string(config_.associative_entries) + " entries)");
    }
    counters_.push_back(TriggerCounter{op.tag, 0, /*orphan=*/false});
    index_.emplace(op.tag, Slot{std::prev(counters_.end()),
                                counters_.size() - 1});
  } else {
    current = it->second.it->count;
  }
  // §3.2: if a GPU already advanced this counter past the threshold, the
  // operation executes immediately on registration.
  if (current >= op.threshold) {
    op.fired = true;
    ++ops_fired_;
    if (op.op.has_value()) fired.push_back(*op.op);
    for (Tag next : op.chain) {
      auto r = find_or_create(next);
      ++r.counter->count;
      collect_ready(next, r.counter->count, fired, nullptr, 0);
    }
  }
  ops_by_tag_[op.tag].push_back(ops_.size());
  ops_.push_back(std::move(op));
  ++live_ops_;
}

void TriggerTable::fire_op(TriggeredOp& op, std::vector<nic::Command>& fired,
                           int* chain_hops, int depth) {
  op.fired = true;
  ++ops_fired_;
  if (op.op.has_value()) fired.push_back(*op.op);
  // Cascade chained counter increments (Portals triggered CTInc).
  std::vector<Tag> chain = op.chain;  // copy: keep safe across recursion
  for (Tag next : chain) {
    if (chain_hops != nullptr) ++*chain_hops;
    auto r = find_or_create(next);
    ++r.counter->count;
    collect_ready(next, r.counter->count, fired, chain_hops, depth + 1);
  }
}

void TriggerTable::collect_ready(Tag tag, std::uint64_t count,
                                 std::vector<nic::Command>& fired,
                                 int* chain_hops, int depth) {
  if (depth > 64) {
    throw std::runtime_error("trigger chain depth exceeds 64 (cycle?)");
  }
  // Only this tag's ops can become ready; the per-tag index holds them in
  // registration order, so fire order matches a full-table scan. Cascades
  // may mark later entries fired mid-loop but never append to this vector
  // (registration happens outside collect_ready), so indexed iteration is
  // stable.
  auto it = ops_by_tag_.find(tag);
  if (it == ops_by_tag_.end()) return;
  const std::vector<std::size_t>& idxs = it->second;
  for (std::size_t k = 0; k < idxs.size(); ++k) {
    TriggeredOp& op = ops_[idxs[k]];
    if (op.fired || op.released || count < op.threshold) continue;
    fire_op(op, fired, chain_hops, depth);
  }
}

void TriggerTable::increment(TriggerCounter& counter,
                             std::vector<nic::Command>& fired,
                             int* chain_hops) {
  ++counter.count;
  collect_ready(counter.tag, counter.count, fired, chain_hops, 0);
}

void TriggerTable::release(Tag tag) {
  auto it = index_.find(tag);
  if (it == index_.end()) return;
  std::size_t erased_pos = it->second.pos;
  counters_.erase(it->second.it);
  index_.erase(it);
  // Counters behind the erased list node shift forward one position.
  for (auto& [t, slot] : index_) {
    if (slot.pos > erased_pos) --slot.pos;
  }
  auto ops_it = ops_by_tag_.find(tag);
  if (ops_it != ops_by_tag_.end()) {
    for (std::size_t i : ops_it->second) {
      if (!ops_[i].released) {
        ops_[i].released = true;
        --live_ops_;
        ++released_ops_;
      }
    }
    ops_by_tag_.erase(ops_it);
  }
  if (released_ops_ > 64 && released_ops_ * 2 > ops_.size()) compact_ops();
}

void TriggerTable::compact_ops() {
  std::vector<TriggeredOp> keep;
  keep.reserve(ops_.size() - released_ops_);
  for (TriggeredOp& op : ops_) {
    if (!op.released) keep.push_back(std::move(op));
  }
  ops_ = std::move(keep);
  released_ops_ = 0;
  ops_by_tag_.clear();
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    ops_by_tag_[ops_[i].tag].push_back(i);
  }
}

int TriggerTable::pending_ops() const {
  return static_cast<int>(std::count_if(
      ops_.begin(), ops_.end(),
      [](const TriggeredOp& op) { return !op.fired && !op.released; }));
}

}  // namespace gputn::core

// GPU-TN triggered-operation NIC extension (§3, Figure 4).
//
// This is the timed hardware agent wrapping TriggerTable:
//
//   * It maps a *trigger address* into the node's MMIO space. A GPU
//     work-item activates a trigger by a system-scope posted store of a tag
//     to that address (§3.1 step 3); the store lands in the trigger FIFO.
//   * A matching unit pops the FIFO, looks the tag up in the trigger list
//     (paying the configured lookup cost, §3.3), increments the counter, and
//     fires any triggered operations whose thresholds are now met by pushing
//     their pre-staged commands into the NIC command queue (§3.1 step 4).
//   * Host-side registration (TrigPut, Figure 6) goes through register_put;
//     relaxed synchronization (§3.2) is inherited from TriggerTable: a tag
//     written before registration creates an orphan counter, and a
//     registration that finds its threshold already met fires immediately.
#pragma once

#include <cstdint>

#include "core/trigger_table.hpp"
#include "mem/memory.hpp"
#include "nic/nic.hpp"
#include "sim/log.hpp"
#include "sim/trace.hpp"
#include "sim/sync.hpp"

namespace gputn::core {

struct TriggeredNicConfig {
  TriggerTableConfig table;
  /// Latency from FIFO pop to counter update, excluding the tag lookup cost
  /// (two comparators + incrementer, Figure 5).
  sim::Tick update_cost = sim::ns(4);
  /// Extra decode + command-patch cost for dynamic trigger events (§3.4).
  sim::Tick dynamic_decode_cost = sim::ns(4);
  /// Depth of the trigger FIFO; stores beyond this backpressure the GPU in
  /// real hardware. The model tracks the high-water mark and (optionally)
  /// faults on overflow to surface undersized configurations.
  int fifo_depth = 1024;
  bool fault_on_fifo_overflow = false;
};

/// Encode a dynamic trigger store: the low 32 bits carry the tag, the high
/// bits the GPU-chosen target node (§3.4's dynamic extension).
constexpr std::uint64_t encode_dynamic_trigger(Tag tag, int target) {
  return (static_cast<std::uint64_t>(target + 1) << 32) |
         (tag & 0xffffffffull);
}

class TriggeredNic : public mem::MmioHandler {
 public:
  TriggeredNic(sim::Simulator& sim, nic::Nic& nic, mem::Memory& memory,
               TriggeredNicConfig config);
  ~TriggeredNic() override = default;

  /// The memory-mapped trigger address handed to kernels (GetTriggerAddr,
  /// Figure 6 step 3).
  mem::Addr trigger_address() const { return trigger_addr_; }

  /// The dynamic-trigger address (§3.4, implemented here although the
  /// paper leaves it as future work): stores are encoded with
  /// encode_dynamic_trigger and carry the target node, which the NIC
  /// patches into the fired put. Costs one extra field decode on the NIC
  /// and GPU-side control flow to compute the target; removes the static-
  /// communication-pattern restriction.
  mem::Addr dynamic_trigger_address() const { return dyn_trigger_addr_; }

  /// Register a put whose target node is supplied by the GPU at trigger
  /// time (the staged put's `target` is ignored). Restricted to
  /// threshold == 1: with several contributors the "which target wins"
  /// question has no sane hardware answer.
  void register_dynamic_put(Tag tag, nic::PutDesc put);

  /// Host API: register a triggered put that fires when `tag`'s counter
  /// reaches `threshold` (TrigPut, Figure 6 step 2). Zero-cost for the
  /// caller; the host runtime models its own posting cost.
  void register_put(Tag tag, std::uint64_t threshold, nic::PutDesc put);

  /// Generalized triggered operation: any NIC command (put, get, or
  /// two-sided send) may be staged behind a counter — Portals 4 offers the
  /// same family of triggered operations.
  void register_command(Tag tag, std::uint64_t threshold, nic::Command cmd);

  /// Fully general registration: an optional command plus chained counter
  /// increments fired together (triggered CTInc). Pure chains (no command)
  /// let the NIC sequence multi-step schedules by itself.
  void register_op(Tag tag, std::uint64_t threshold,
                   std::optional<nic::Command> cmd, std::vector<Tag> chain);

  /// Host API: reclaim a tag's counter and ops.
  void release(Tag tag) { table_.release(tag); }

  /// mem::MmioHandler — the GPU's (or any agent's) trigger-address store.
  void on_mmio_store(mem::Addr addr, std::uint64_t value) override;

  const TriggerTable& table() const { return table_; }

  /// Attach a trace recorder; trigger events and fires land on `lane`.
  void set_trace(sim::TraceRecorder* trace, std::string lane) {
    trace_ = trace;
    trace_lane_ = std::move(lane);
  }

  std::uint64_t triggers_received() const { return triggers_received_; }
  std::uint64_t fifo_high_water() const { return fifo_high_water_; }

 private:
  struct TriggerEvent {
    std::uint64_t raw = 0;
    bool dynamic = false;
    /// When the store landed in the FIFO (observability: the start of the
    /// lat.trigger_to_fire stage).
    sim::Tick at = -1;
    /// True for MMIO trigger-address stores (GPU-originated) as opposed to
    /// counting-receive events; decides which trace lane a flow starts on.
    bool mmio = false;
    Tag tag() const { return dynamic ? (raw & 0xffffffffull) : raw; }
    /// Target encoded in a dynamic store, or -1.
    int target() const {
      return dynamic ? static_cast<int>(raw >> 32) - 1 : -1;
    }
  };

  sim::Task<> match_loop();
  void fire(std::vector<nic::Command>&& cmds, int dynamic_target,
            sim::Tick trigger_at, bool trigger_mmio);

  sim::Simulator* sim_;
  nic::Nic* nic_;
  TriggeredNicConfig config_;
  TriggerTable table_;
  mem::Addr trigger_addr_;
  mem::Addr dyn_trigger_addr_;
  sim::Channel<TriggerEvent> fifo_;
  std::uint64_t triggers_received_ = 0;
  std::uint64_t fifo_high_water_ = 0;
  sim::TraceRecorder* trace_ = nullptr;
  std::string trace_lane_;
  sim::Logger log_;
};

}  // namespace gputn::core

#include "net/fabric.hpp"

#include <stdexcept>
#include <string>

namespace gputn::net {

Fabric::Fabric(sim::Simulator& sim, FabricConfig config)
    : sim_(&sim), config_(std::move(config)) {}

NodeId Fabric::add_node(MessageSink* sink) {
  if (topo_ != nullptr) {
    throw std::logic_error("fabric: add_node after the switch graph was "
                           "finalized (all nodes must attach before traffic)");
  }
  NodeId id = static_cast<NodeId>(sinks_.size());
  sinks_.push_back(sink);
  uplinks_.push_back(std::make_unique<Link>(
      *sim_, "up" + std::to_string(id), config_.bandwidth,
      config_.link_latency,
      [this, id](Packet&& p) { inject(id, std::move(p)); }));
  downlinks_.push_back(std::make_unique<Link>(
      *sim_, "down" + std::to_string(id), config_.bandwidth,
      config_.link_latency,
      [this, id](Packet&& p) { deliver(id, std::move(p)); }));
  if (fault_provider_) {
    uplinks_.back()->set_fault_injector(
        fault_provider_(uplinks_.back()->name()));
    downlinks_.back()->set_fault_injector(
        fault_provider_(downlinks_.back()->name()));
  }
  return id;
}

void Fabric::finalize() {
  if (topo_ != nullptr) return;
  topo_ = TopologyFactory::instance().make(config_.topology, node_count());
  router_ = RouterFactory::instance().make(config_.routing);
  int nsw = topo_->switch_count();
  switches_.reserve(static_cast<std::size_t>(nsw));
  for (int s = 0; s < nsw; ++s) {
    switches_.push_back(std::make_unique<Switch>(
        *sim_, s, topo_->radix(s), config_.switch_latency,
        config_.credits_per_port));
    switches_.back()->set_router(topo_.get(), router_.get());
  }
  host_port_.resize(sinks_.size());
  for (NodeId n = 0; n < node_count(); ++n) host_port_[n] = topo_->host(n);
  for (int s = 0; s < nsw; ++s) {
    for (int p = 0; p < topo_->radix(s); ++p) {
      PortPeer peer = topo_->peer(s, p);
      if (peer.kind == PortPeer::Kind::kNode) {
        // Host slots beyond the attached node count stay idle (unwired).
        if (peer.index < node_count()) {
          switches_[static_cast<std::size_t>(s)]->attach_output(
              p, downlinks_[static_cast<std::size_t>(peer.index)].get());
        }
      } else if (peer.kind == PortPeer::Kind::kSwitch) {
        // One directed trunk per transmitting port; the receiving switch
        // dequeues into its crossbar and returns the port's credit there.
        trunks_.push_back(std::make_unique<Link>(
            *sim_, "sw" + std::to_string(s) + "p" + std::to_string(p),
            config_.bandwidth, config_.link_latency,
            [this, t = peer.index, s, p](Packet&& pk) {
              switches_[static_cast<std::size_t>(t)]->arrive(
                  std::move(pk), switches_[static_cast<std::size_t>(s)].get(),
                  p);
            }));
        if (fault_provider_) {
          trunks_.back()->set_fault_injector(
              fault_provider_(trunks_.back()->name()));
        }
        switches_[static_cast<std::size_t>(s)]->attach_output(
            p, trunks_.back().get());
      }
    }
  }
  apply_trace();
}

const Topology& Fabric::topology() {
  finalize();
  return *topo_;
}

const Router& Fabric::router() {
  finalize();
  return *router_;
}

int Fabric::switch_count() {
  finalize();
  return static_cast<int>(switches_.size());
}

Switch& Fabric::switch_at(int id) {
  finalize();
  return *switches_.at(static_cast<std::size_t>(id));
}

int Fabric::hop_count(NodeId src, NodeId dst) {
  finalize();
  return topo_->hop_count(src, dst);
}

void Fabric::inject(NodeId src, Packet&& p) {
  switches_[static_cast<std::size_t>(host_port_[static_cast<std::size_t>(src)]
                                         .sw)]
      ->arrive(std::move(p), nullptr, 0);
}

void Fabric::deliver(NodeId dst, Packet&& p) {
  auto flight = p.flight;
  if (--flight->packets_remaining == 0) {
    flight->msg.corrupted = flight->corrupted;
    flight->msg.t_rx = sim_->now();
    flight->msg.t_switch = flight->t_switch;
    if (trace_ != nullptr && flight->msg.flow != 0 &&
        flight->msg.t_wire >= 0) {
      // One span per message (not per packet) covering its whole time on
      // the wire, on the destination's downlink lane.
      std::string lane = "net.down" + std::to_string(flight->msg.dst);
      trace_->span(lane, "msg", "net", flight->msg.t_wire, flight->msg.t_rx,
                   flow_args(flight->msg));
      trace_->flow_step(lane, "msg", "flow", flight->msg.t_wire,
                        flight->msg.flow);
    }
    flight->sink->deliver(std::move(flight->msg));
  }
  // Host ejection is the downstream dequeue of the egress switch port:
  // return its credit (per packet, after delivery bookkeeping).
  const HostPort& hp = host_port_[static_cast<std::size_t>(dst)];
  switches_[static_cast<std::size_t>(hp.sw)]->credit_return(hp.port);
}

void Fabric::set_fault_injector_provider(
    std::function<FaultInjector*(const std::string&)> provider) {
  fault_provider_ = std::move(provider);
  auto apply = [&](Link& l) {
    l.set_fault_injector(fault_provider_ ? fault_provider_(l.name())
                                         : nullptr);
  };
  for (auto& l : uplinks_) apply(*l);
  for (auto& l : downlinks_) apply(*l);
  for (auto& l : trunks_) apply(*l);
}

void Fabric::export_stats(sim::StatRegistry& reg) const {
  reg.counter("net.messages") += messages_;
  reg.counter("net.bytes") += bytes_;
  std::uint64_t sw_packets = 0, stalls = 0;
  for (const auto& s : switches_) {
    sw_packets += s->packets_forwarded();
    stalls += s->credit_stalls();
  }
  reg.counter("net.switch.packets") += sw_packets;
  if (stalls > 0) reg.counter("net.credit_stalls") += stalls;
  std::uint64_t link_bytes = 0, link_packets = 0, link_drops = 0,
                link_corrupt = 0;
  auto per_link = [&](const Link& l) {
    link_bytes += l.bytes_transmitted();
    link_packets += l.packets_transmitted();
    link_drops += l.packets_dropped();
    link_corrupt += l.packets_corrupted();
    std::string p = "net.link." + l.name() + ".";
    reg.counter(p + "bytes") += l.bytes_transmitted();
    reg.counter(p + "packets") += l.packets_transmitted();
    if (l.packets_dropped() > 0) reg.counter(p + "drops") += l.packets_dropped();
    if (l.packets_corrupted() > 0) {
      reg.counter(p + "corruptions") += l.packets_corrupted();
    }
    l.util().export_into(reg, "util.link." + l.name(), sim_->now());
  };
  for (const auto& l : uplinks_) per_link(*l);
  for (const auto& l : downlinks_) per_link(*l);
  for (const auto& l : trunks_) per_link(*l);
  reg.counter("net.link.bytes") += link_bytes;
  reg.counter("net.link.packets") += link_packets;
  reg.counter("net.link.drops") += link_drops;
  reg.counter("net.link.corruptions") += link_corrupt;
  // Per-port credit/queue ledgers carry meaning only under flow control;
  // export the ports that saw traffic or pressure.
  if (config_.credits_per_port > 0) {
    for (const auto& s : switches_) {
      for (int p = 0; p < s->radix(); ++p) {
        const obs::BusyTracker& u = s->port_util(p);
        if (u.ops() == 0 && u.queue_max() == 0) continue;
        u.export_into(reg,
                      "util.sw." + std::to_string(s->id()) + ".port" +
                          std::to_string(p),
                      sim_->now());
      }
    }
  }
}

void Fabric::apply_trace() {
  bool single = switches_.size() == 1;
  for (auto& s : switches_) {
    s->set_trace(trace_, single ? "net.switch"
                                : "net.sw" + std::to_string(s->id()));
  }
}

void Fabric::set_trace(sim::TraceRecorder* trace) {
  trace_ = trace;
  apply_trace();
}

void Fabric::send(Message&& msg) {
  if (msg.src < 0 || msg.src >= node_count() || msg.dst < 0 ||
      msg.dst >= node_count()) {
    throw std::out_of_range("fabric: send with unknown src/dst node");
  }
  finalize();
  // Observability stamps. NICs stamp `flow` at first tx; anything else that
  // reaches the wire (ACK/NACK control traffic, direct fabric users) gets a
  // fallback id here. t_wire is re-stamped per wire copy, so a retransmit
  // measures its own wire time; t_wire_first survives retransmission (the
  // reliability layer pre-stamps it on the window copy), so the spread
  // between the two is the total retransmission delay.
  if (msg.flow == 0) msg.flow = next_flow();
  msg.t_wire = sim_->now();
  if (msg.t_wire_first < 0) msg.t_wire_first = msg.t_wire;
  // Deterministic-route switch count for the analyzer's per-hop ideal wire
  // model; candidate minimality makes it route-independent (topology_api).
  msg.hops = static_cast<std::uint32_t>(topo_->hop_count(msg.src, msg.dst));
  ++messages_;
  std::uint64_t wire = config_.header_bytes + msg.payload_bytes();
  bytes_ += wire;

  auto flight = std::make_shared<MessageInFlight>();
  flight->sink = sinks_[static_cast<std::size_t>(msg.dst)];
  NodeId src = msg.src;
  flight->msg = std::move(msg);

  // Packetize: first packet carries the header; each packet adds the
  // per-packet overhead on the wire.
  std::uint64_t remaining = wire;
  int packets = 0;
  Link* up = uplinks_[static_cast<std::size_t>(src)].get();
  std::vector<Packet> pkts;
  while (remaining > 0) {
    std::uint64_t chunk = remaining < config_.mtu_bytes ? remaining
                                                        : config_.mtu_bytes;
    remaining -= chunk;
    Packet p;
    p.flight = flight;
    p.wire_bytes = static_cast<std::uint32_t>(chunk) + config_.per_packet_overhead;
    p.last = remaining == 0;
    pkts.push_back(std::move(p));
    ++packets;
  }
  flight->packets_remaining = packets;
  for (auto& p : pkts) up->submit(std::move(p));
}

sim::Tick Fabric::ideal_latency(std::uint64_t payload_bytes) const {
  std::uint64_t wire = config_.header_bytes + payload_bytes;
  // Total serialization on one link (packets pipeline across hops), plus the
  // first packet's serialization on the second link, plus per-hop latencies.
  std::uint64_t first_pkt =
      std::min<std::uint64_t>(wire, config_.mtu_bytes) + config_.per_packet_overhead;
  std::uint64_t packets = (wire + config_.mtu_bytes - 1) / config_.mtu_bytes;
  std::uint64_t total_wire = wire + packets * config_.per_packet_overhead;
  return config_.bandwidth.serialize(total_wire) +
         config_.bandwidth.serialize(first_pkt) + 2 * config_.link_latency +
         config_.switch_latency;
}

sim::Tick Fabric::ideal_latency(std::uint64_t payload_bytes, NodeId src,
                                NodeId dst) {
  finalize();
  std::int64_t h = topo_->hop_count(src, dst);
  std::uint64_t wire = config_.header_bytes + payload_bytes;
  std::uint64_t first_pkt =
      std::min<std::uint64_t>(wire, config_.mtu_bytes) +
      config_.per_packet_overhead;
  std::uint64_t packets = (wire + config_.mtu_bytes - 1) / config_.mtu_bytes;
  std::uint64_t total_wire = wire + packets * config_.per_packet_overhead;
  // The message's total serialization is paid once (hops pipeline), every
  // later link adds only the lead packet's serialization; h switches mean
  // h + 1 links and h crossbar latencies. h == 1 reduces to the star form.
  return config_.bandwidth.serialize(total_wire) +
         h * config_.bandwidth.serialize(first_pkt) +
         (h + 1) * config_.link_latency + h * config_.switch_latency;
}

}  // namespace gputn::net

#include "net/fabric.hpp"

#include <stdexcept>
#include <string>

namespace gputn::net {

Fabric::Fabric(sim::Simulator& sim, FabricConfig config)
    : sim_(&sim), config_(config), switch_(sim, config.switch_latency) {}

NodeId Fabric::add_node(MessageSink* sink) {
  NodeId id = static_cast<NodeId>(sinks_.size());
  sinks_.push_back(sink);
  uplinks_.push_back(std::make_unique<Link>(
      *sim_, "up" + std::to_string(id), config_.bandwidth,
      config_.link_latency, [this](Packet&& p) { switch_.forward(std::move(p)); }));
  downlinks_.push_back(std::make_unique<Link>(
      *sim_, "down" + std::to_string(id), config_.bandwidth,
      config_.link_latency, [this](Packet&& p) {
        auto flight = p.flight;
        if (--flight->packets_remaining == 0) {
          flight->msg.corrupted = flight->corrupted;
          flight->msg.t_rx = sim_->now();
          flight->msg.t_switch = flight->t_switch;
          if (trace_ != nullptr && flight->msg.flow != 0 &&
              flight->msg.t_wire >= 0) {
            // One span per message (not per packet) covering its whole
            // time on the wire, on the destination's downlink lane.
            std::string lane = "net.down" + std::to_string(flight->msg.dst);
            trace_->span(lane, "msg", "net", flight->msg.t_wire,
                         flight->msg.t_rx, flow_args(flight->msg));
            trace_->flow_step(lane, "msg", "flow", flight->msg.t_wire,
                              flight->msg.flow);
          }
          flight->sink->deliver(std::move(flight->msg));
        }
      }));
  switch_.attach_output(id, downlinks_.back().get());
  if (fault_provider_) {
    uplinks_.back()->set_fault_injector(
        fault_provider_(uplinks_.back()->name()));
    downlinks_.back()->set_fault_injector(
        fault_provider_(downlinks_.back()->name()));
  }
  return id;
}

void Fabric::set_fault_injector_provider(
    std::function<FaultInjector*(const std::string&)> provider) {
  fault_provider_ = std::move(provider);
  for (auto& l : uplinks_) {
    l->set_fault_injector(fault_provider_ ? fault_provider_(l->name())
                                          : nullptr);
  }
  for (auto& l : downlinks_) {
    l->set_fault_injector(fault_provider_ ? fault_provider_(l->name())
                                          : nullptr);
  }
}

void Fabric::export_stats(sim::StatRegistry& reg) const {
  reg.counter("net.messages") += messages_;
  reg.counter("net.bytes") += bytes_;
  reg.counter("net.switch.packets") += switch_.packets_forwarded();
  std::uint64_t link_bytes = 0, link_packets = 0, link_drops = 0,
                link_corrupt = 0;
  auto per_link = [&](const Link& l) {
    link_bytes += l.bytes_transmitted();
    link_packets += l.packets_transmitted();
    link_drops += l.packets_dropped();
    link_corrupt += l.packets_corrupted();
    std::string p = "net.link." + l.name() + ".";
    reg.counter(p + "bytes") += l.bytes_transmitted();
    reg.counter(p + "packets") += l.packets_transmitted();
    if (l.packets_dropped() > 0) reg.counter(p + "drops") += l.packets_dropped();
    if (l.packets_corrupted() > 0) {
      reg.counter(p + "corruptions") += l.packets_corrupted();
    }
    l.util().export_into(reg, "util.link." + l.name(), sim_->now());
  };
  for (const auto& l : uplinks_) per_link(*l);
  for (const auto& l : downlinks_) per_link(*l);
  reg.counter("net.link.bytes") += link_bytes;
  reg.counter("net.link.packets") += link_packets;
  reg.counter("net.link.drops") += link_drops;
  reg.counter("net.link.corruptions") += link_corrupt;
}

void Fabric::set_trace(sim::TraceRecorder* trace) {
  trace_ = trace;
  switch_.set_trace(trace);
}

void Fabric::send(Message&& msg) {
  if (msg.src < 0 || msg.src >= node_count() || msg.dst < 0 ||
      msg.dst >= node_count()) {
    throw std::out_of_range("fabric: send with unknown src/dst node");
  }
  // Observability stamps. NICs stamp `flow` at first tx; anything else that
  // reaches the wire (ACK/NACK control traffic, direct fabric users) gets a
  // fallback id here. t_wire is re-stamped per wire copy, so a retransmit
  // measures its own wire time; t_wire_first survives retransmission (the
  // reliability layer pre-stamps it on the window copy), so the spread
  // between the two is the total retransmission delay.
  if (msg.flow == 0) msg.flow = next_flow();
  msg.t_wire = sim_->now();
  if (msg.t_wire_first < 0) msg.t_wire_first = msg.t_wire;
  ++messages_;
  std::uint64_t wire = config_.header_bytes + msg.payload_bytes();
  bytes_ += wire;

  auto flight = std::make_shared<MessageInFlight>();
  flight->sink = sinks_[msg.dst];
  NodeId src = msg.src;
  flight->msg = std::move(msg);

  // Packetize: first packet carries the header; each packet adds the
  // per-packet overhead on the wire.
  std::uint64_t remaining = wire;
  int packets = 0;
  Link* up = uplinks_[src].get();
  std::vector<Packet> pkts;
  while (remaining > 0) {
    std::uint64_t chunk = remaining < config_.mtu_bytes ? remaining
                                                        : config_.mtu_bytes;
    remaining -= chunk;
    Packet p;
    p.flight = flight;
    p.wire_bytes = static_cast<std::uint32_t>(chunk) + config_.per_packet_overhead;
    p.last = remaining == 0;
    pkts.push_back(std::move(p));
    ++packets;
  }
  flight->packets_remaining = packets;
  for (auto& p : pkts) up->submit(std::move(p));
}

sim::Tick Fabric::ideal_latency(std::uint64_t payload_bytes) const {
  std::uint64_t wire = config_.header_bytes + payload_bytes;
  // Total serialization on one link (packets pipeline across hops), plus the
  // first packet's serialization on the second link, plus per-hop latencies.
  std::uint64_t first_pkt =
      std::min<std::uint64_t>(wire, config_.mtu_bytes) + config_.per_packet_overhead;
  std::uint64_t packets = (wire + config_.mtu_bytes - 1) / config_.mtu_bytes;
  std::uint64_t total_wire = wire + packets * config_.per_packet_overhead;
  return config_.bandwidth.serialize(total_wire) +
         config_.bandwidth.serialize(first_pkt) + 2 * config_.link_latency +
         config_.switch_latency;
}

}  // namespace gputn::net

#include "net/fabric.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>

#include "sim/shard.hpp"

namespace gputn::net {

Fabric::Fabric(sim::Simulator& sim, FabricConfig config)
    : sim_(&sim), config_(std::move(config)) {}

void Fabric::set_sharding(sim::ShardEngine* engine,
                          std::vector<int> node_shard) {
  if (!sinks_.empty()) {
    throw std::logic_error(
        "fabric: set_sharding after nodes were attached (the partition "
        "decides which simulator owns each node's links)");
  }
  engine_ = engine;
  node_shard_ = std::move(node_shard);
  if (engine_ != nullptr) {
    for (int s : node_shard_) {
      if (s < 0 || s >= engine_->shards()) {
        throw std::invalid_argument("fabric: node shard out of range");
      }
    }
  }
}

sim::Simulator& Fabric::node_sim(NodeId id) {
  if (engine_ == nullptr) return *sim_;
  return engine_->shard(node_shard_[static_cast<std::size_t>(id)]);
}

int Fabric::node_shard_of(NodeId id) const {
  if (engine_ == nullptr) return 0;
  return node_shard_[static_cast<std::size_t>(id)];
}

sim::Simulator& Fabric::switch_sim(int s) {
  if (engine_ == nullptr) return *sim_;
  return engine_->shard(switch_shard_[static_cast<std::size_t>(s)]);
}

NodeId Fabric::add_node(MessageSink* sink) {
  if (topo_ != nullptr) {
    throw std::logic_error("fabric: add_node after the switch graph was "
                           "finalized (all nodes must attach before traffic)");
  }
  NodeId id = static_cast<NodeId>(sinks_.size());
  if (engine_ != nullptr &&
      static_cast<std::size_t>(id) >= node_shard_.size()) {
    throw std::logic_error("fabric: more nodes attached than the shard map "
                           "passed to set_sharding covers");
  }
  sinks_.push_back(sink);
  flow_seq_.push_back(0);
  messages_by_src_.push_back(0);
  bytes_by_src_.push_back(0);
  // The uplink lives on the transmitting node's shard: its pump runs where
  // the NIC submits. The matching downlink is built at finalize(), once the
  // egress switch's shard is known.
  uplinks_.push_back(std::make_unique<Link>(
      node_sim(id), "up" + std::to_string(id), config_.bandwidth,
      config_.link_latency,
      [this, id](Packet&& p) { inject(id, std::move(p)); }));
  if (fault_provider_) {
    uplinks_.back()->set_fault_injector(
        fault_provider_(uplinks_.back()->name()));
  }
  return id;
}

void Fabric::finalize() {
  if (topo_ != nullptr) return;
  topo_ = TopologyFactory::instance().make(config_.topology, node_count());
  router_ = RouterFactory::instance().make(config_.routing);
  int nsw = topo_->switch_count();

  // Shard assignment for switches. A trunk hand-off is a direct crossbar
  // call (Switch::arrive with the transmitting switch's credit return), so
  // switches connected by trunks must share a shard: union-find the trunk
  // graph, then round-robin the components over the shards. Only
  // host <-> edge-switch links can cross shards.
  switch_shard_.assign(static_cast<std::size_t>(nsw), 0);
  const int S = engine_ != nullptr ? engine_->shards() : 1;
  if (S > 1) {
    std::vector<int> parent(static_cast<std::size_t>(nsw));
    std::iota(parent.begin(), parent.end(), 0);
    auto find = [&](int x) {
      while (parent[static_cast<std::size_t>(x)] != x) {
        parent[static_cast<std::size_t>(x)] =
            parent[static_cast<std::size_t>(
                parent[static_cast<std::size_t>(x)])];
        x = parent[static_cast<std::size_t>(x)];
      }
      return x;
    };
    for (int s = 0; s < nsw; ++s) {
      for (int p = 0; p < topo_->radix(s); ++p) {
        PortPeer peer = topo_->peer(s, p);
        if (peer.kind == PortPeer::Kind::kSwitch) {
          int a = find(s), b = find(peer.index);
          if (a != b) parent[static_cast<std::size_t>(a)] = b;
        }
      }
    }
    std::vector<int> comp_shard(static_cast<std::size_t>(nsw), -1);
    int comps = 0;
    for (int s = 0; s < nsw; ++s) {
      int r = find(s);
      if (comp_shard[static_cast<std::size_t>(r)] < 0) {
        comp_shard[static_cast<std::size_t>(r)] = comps++ % S;
      }
      switch_shard_[static_cast<std::size_t>(s)] =
          comp_shard[static_cast<std::size_t>(r)];
    }
  }

  switches_.reserve(static_cast<std::size_t>(nsw));
  for (int s = 0; s < nsw; ++s) {
    switches_.push_back(std::make_unique<Switch>(
        switch_sim(s), s, topo_->radix(s), config_.switch_latency,
        config_.credits_per_port));
    switches_.back()->set_router(topo_.get(), router_.get());
  }
  host_port_.resize(sinks_.size());
  for (NodeId n = 0; n < node_count(); ++n) host_port_[n] = topo_->host(n);
  downlinks_.resize(sinks_.size());
  bool cross_shard_edges = false;
  for (int s = 0; s < nsw; ++s) {
    for (int p = 0; p < topo_->radix(s); ++p) {
      PortPeer peer = topo_->peer(s, p);
      if (peer.kind == PortPeer::Kind::kNode) {
        // Host slots beyond the attached node count stay idle (unwired).
        if (peer.index < node_count()) {
          NodeId n = peer.index;
          // The downlink lives on the egress switch's shard (the switch
          // submits into it); its terminus splits when the node lives
          // elsewhere: the host-side delivery hops shards, the egress
          // credit return stays local.
          downlinks_[static_cast<std::size_t>(n)] = std::make_unique<Link>(
              switch_sim(s), "down" + std::to_string(n), config_.bandwidth,
              config_.link_latency,
              [this, n](Packet&& pk) { deliver(n, std::move(pk)); });
          Link* down = downlinks_[static_cast<std::size_t>(n)].get();
          if (fault_provider_) {
            down->set_fault_injector(fault_provider_(down->name()));
          }
          int node_sh = node_shard_of(n);
          int sw_sh = switch_shard_[static_cast<std::size_t>(s)];
          if (engine_ != nullptr && node_sh != sw_sh) {
            cross_shard_edges = true;
            down->set_remote([this, n, s, p, node_sh, sw_sh](sim::Tick when,
                                                            Packet&& pk) {
              Switch* esw = switches_[static_cast<std::size_t>(s)].get();
              switch_sim(s).schedule_at(
                  when, [esw, p] { esw->credit_return(p); });
              engine_->post(sw_sh, node_sh, when,
                            [this, n, pk = std::move(pk)]() mutable {
                              deliver_host(n, std::move(pk));
                            });
            });
          }
          switches_[static_cast<std::size_t>(s)]->attach_output(p, down);
        }
      } else if (peer.kind == PortPeer::Kind::kSwitch) {
        // One directed trunk per transmitting port; the receiving switch
        // dequeues into its crossbar and returns the port's credit there.
        // Both ends share a shard by construction (one trunk component).
        trunks_.push_back(std::make_unique<Link>(
            switch_sim(s), "sw" + std::to_string(s) + "p" + std::to_string(p),
            config_.bandwidth, config_.link_latency,
            [this, t = peer.index, s, p](Packet&& pk) {
              switches_[static_cast<std::size_t>(t)]->arrive(
                  std::move(pk), switches_[static_cast<std::size_t>(s)].get(),
                  p);
            }));
        if (fault_provider_) {
          trunks_.back()->set_fault_injector(
              fault_provider_(trunks_.back()->name()));
        }
        switches_[static_cast<std::size_t>(s)]->attach_output(
            p, trunks_.back().get());
      }
    }
  }
  // Cross-shard uplink termini: the packet hops to the edge switch's shard.
  if (engine_ != nullptr) {
    for (NodeId n = 0; n < node_count(); ++n) {
      int sw = host_port_[static_cast<std::size_t>(n)].sw;
      int node_sh = node_shard_of(n);
      int sw_sh = switch_shard_[static_cast<std::size_t>(sw)];
      if (node_sh != sw_sh) {
        cross_shard_edges = true;
        uplinks_[static_cast<std::size_t>(n)]->set_remote(
            [this, n, node_sh, sw_sh](sim::Tick when, Packet&& pk) {
              engine_->post(node_sh, sw_sh, when,
                            [this, n, pk = std::move(pk)]() mutable {
                              inject(n, std::move(pk));
                            });
            });
      }
    }
    if (S > 1) {
      // Conservative lookahead: the minimum propagation over the links
      // whose endpoints live on different shards (every cross-shard event
      // is a packet that paid at least that propagation). No cross-shard
      // edge means the shards are independent; an effectively unbounded
      // lookahead lets each run to completion in one window.
      sim::Tick la =
          cross_shard_edges ? config_.link_latency : sim::kTickMax / 2;
      if (la <= 0) {
        throw std::invalid_argument(
            "fabric: parallel runs need a positive link latency (the "
            "conservative lookahead is the cross-shard wire propagation)");
      }
      engine_->set_lookahead(la);
    }
  }
  apply_trace();
}

const Topology& Fabric::topology() {
  finalize();
  return *topo_;
}

const Router& Fabric::router() {
  finalize();
  return *router_;
}

int Fabric::switch_count() {
  finalize();
  return static_cast<int>(switches_.size());
}

Switch& Fabric::switch_at(int id) {
  finalize();
  return *switches_.at(static_cast<std::size_t>(id));
}

int Fabric::hop_count(NodeId src, NodeId dst) {
  finalize();
  return topo_->hop_count(src, dst);
}

void Fabric::inject(NodeId src, Packet&& p) {
  switches_[static_cast<std::size_t>(host_port_[static_cast<std::size_t>(src)]
                                         .sw)]
      ->arrive(std::move(p), nullptr, 0);
}

void Fabric::deliver(NodeId dst, Packet&& p) {
  deliver_host(dst, std::move(p));
  // Host ejection is the downstream dequeue of the egress switch port:
  // return its credit (per packet, after delivery bookkeeping).
  const HostPort& hp = host_port_[static_cast<std::size_t>(dst)];
  switches_[static_cast<std::size_t>(hp.sw)]->credit_return(hp.port);
}

void Fabric::deliver_host(NodeId dst, Packet&& p) {
  auto flight = p.flight;
  if (--flight->packets_remaining == 0) {
    flight->msg.corrupted = flight->corrupted;
    flight->msg.t_rx = node_sim(dst).now();
    flight->msg.t_switch = flight->t_switch;
    if (trace_ != nullptr && flight->msg.flow != 0 &&
        flight->msg.t_wire >= 0) {
      // One span per message (not per packet) covering its whole time on
      // the wire, on the destination's downlink lane.
      std::string lane = "net.down" + std::to_string(flight->msg.dst);
      trace_->span(lane, "msg", "net", flight->msg.t_wire, flight->msg.t_rx,
                   flow_args(flight->msg));
      trace_->flow_step(lane, "msg", "flow", flight->msg.t_wire,
                        flight->msg.flow);
    }
    flight->sink->deliver(std::move(flight->msg));
  }
}

void Fabric::set_fault_injector_provider(
    std::function<FaultInjector*(const std::string&)> provider) {
  fault_provider_ = std::move(provider);
  auto apply = [&](Link& l) {
    l.set_fault_injector(fault_provider_ ? fault_provider_(l.name())
                                         : nullptr);
  };
  for (auto& l : uplinks_) apply(*l);
  for (auto& l : downlinks_) apply(*l);
  for (auto& l : trunks_) apply(*l);
}

std::uint64_t Fabric::messages_sent() const {
  return std::accumulate(messages_by_src_.begin(), messages_by_src_.end(),
                         std::uint64_t{0});
}

std::uint64_t Fabric::bytes_sent() const {
  return std::accumulate(bytes_by_src_.begin(), bytes_by_src_.end(),
                         std::uint64_t{0});
}

void Fabric::export_stats(sim::StatRegistry& reg) const {
  reg.counter("net.messages") += messages_sent();
  reg.counter("net.bytes") += bytes_sent();
  std::uint64_t sw_packets = 0, stalls = 0;
  for (const auto& s : switches_) {
    sw_packets += s->packets_forwarded();
    stalls += s->credit_stalls();
  }
  reg.counter("net.switch.packets") += sw_packets;
  if (stalls > 0) reg.counter("net.credit_stalls") += stalls;
  std::uint64_t link_bytes = 0, link_packets = 0, link_drops = 0,
                link_corrupt = 0;
  auto per_link = [&](const Link& l) {
    link_bytes += l.bytes_transmitted();
    link_packets += l.packets_transmitted();
    link_drops += l.packets_dropped();
    link_corrupt += l.packets_corrupted();
    std::string p = "net.link." + l.name() + ".";
    reg.counter(p + "bytes") += l.bytes_transmitted();
    reg.counter(p + "packets") += l.packets_transmitted();
    if (l.packets_dropped() > 0) reg.counter(p + "drops") += l.packets_dropped();
    if (l.packets_corrupted() > 0) {
      reg.counter(p + "corruptions") += l.packets_corrupted();
    }
    l.util().export_into(reg, "util.link." + l.name(), sim_->now());
  };
  for (const auto& l : uplinks_) per_link(*l);
  for (const auto& l : downlinks_) per_link(*l);
  for (const auto& l : trunks_) per_link(*l);
  reg.counter("net.link.bytes") += link_bytes;
  reg.counter("net.link.packets") += link_packets;
  reg.counter("net.link.drops") += link_drops;
  reg.counter("net.link.corruptions") += link_corrupt;
  // Per-port credit/queue ledgers carry meaning only under flow control;
  // export the ports that saw traffic or pressure.
  if (config_.credits_per_port > 0) {
    for (const auto& s : switches_) {
      for (int p = 0; p < s->radix(); ++p) {
        const obs::BusyTracker& u = s->port_util(p);
        if (u.ops() == 0 && u.queue_max() == 0) continue;
        u.export_into(reg,
                      "util.sw." + std::to_string(s->id()) + ".port" +
                          std::to_string(p),
                      sim_->now());
      }
    }
  }
}

void Fabric::apply_trace() {
  bool single = switches_.size() == 1;
  for (auto& s : switches_) {
    s->set_trace(trace_, single ? "net.switch"
                                : "net.sw" + std::to_string(s->id()));
  }
}

void Fabric::set_trace(sim::TraceRecorder* trace) {
  trace_ = trace;
  apply_trace();
}

void Fabric::send(Message&& msg) {
  if (msg.src < 0 || msg.src >= node_count() || msg.dst < 0 ||
      msg.dst >= node_count()) {
    throw std::out_of_range("fabric: send with unknown src/dst node");
  }
  finalize();
  // Observability stamps. NICs stamp `flow` at first tx; anything else that
  // reaches the wire (ACK/NACK control traffic, direct fabric users) gets a
  // fallback id here. t_wire is re-stamped per wire copy, so a retransmit
  // measures its own wire time; t_wire_first survives retransmission (the
  // reliability layer pre-stamps it on the window copy), so the spread
  // between the two is the total retransmission delay.
  if (msg.flow == 0) msg.flow = next_flow(msg.src);
  msg.t_wire = node_sim(msg.src).now();
  if (msg.t_wire_first < 0) msg.t_wire_first = msg.t_wire;
  // Deterministic-route switch count for the analyzer's per-hop ideal wire
  // model; candidate minimality makes it route-independent (topology_api).
  msg.hops = static_cast<std::uint32_t>(topo_->hop_count(msg.src, msg.dst));
  ++messages_by_src_[static_cast<std::size_t>(msg.src)];
  std::uint64_t wire = config_.header_bytes + msg.payload_bytes();
  bytes_by_src_[static_cast<std::size_t>(msg.src)] += wire;

  auto flight = std::make_shared<MessageInFlight>();
  flight->sink = sinks_[static_cast<std::size_t>(msg.dst)];
  NodeId src = msg.src;
  flight->msg = std::move(msg);

  // Packetize: first packet carries the header; each packet adds the
  // per-packet overhead on the wire.
  std::uint64_t remaining = wire;
  int packets = 0;
  Link* up = uplinks_[static_cast<std::size_t>(src)].get();
  std::vector<Packet> pkts;
  while (remaining > 0) {
    std::uint64_t chunk = remaining < config_.mtu_bytes ? remaining
                                                        : config_.mtu_bytes;
    remaining -= chunk;
    Packet p;
    p.flight = flight;
    p.wire_bytes = static_cast<std::uint32_t>(chunk) + config_.per_packet_overhead;
    p.last = remaining == 0;
    pkts.push_back(std::move(p));
    ++packets;
  }
  flight->packets_remaining = packets;
  for (auto& p : pkts) up->submit(std::move(p));
}

sim::Tick Fabric::ideal_latency(std::uint64_t payload_bytes) const {
  std::uint64_t wire = config_.header_bytes + payload_bytes;
  // Total serialization on one link (packets pipeline across hops), plus the
  // first packet's serialization on the second link, plus per-hop latencies.
  std::uint64_t first_pkt =
      std::min<std::uint64_t>(wire, config_.mtu_bytes) + config_.per_packet_overhead;
  std::uint64_t packets = (wire + config_.mtu_bytes - 1) / config_.mtu_bytes;
  std::uint64_t total_wire = wire + packets * config_.per_packet_overhead;
  return config_.bandwidth.serialize(total_wire) +
         config_.bandwidth.serialize(first_pkt) + 2 * config_.link_latency +
         config_.switch_latency;
}

sim::Tick Fabric::ideal_latency(std::uint64_t payload_bytes, NodeId src,
                                NodeId dst) {
  finalize();
  std::int64_t h = topo_->hop_count(src, dst);
  std::uint64_t wire = config_.header_bytes + payload_bytes;
  std::uint64_t first_pkt =
      std::min<std::uint64_t>(wire, config_.mtu_bytes) +
      config_.per_packet_overhead;
  std::uint64_t packets = (wire + config_.mtu_bytes - 1) / config_.mtu_bytes;
  std::uint64_t total_wire = wire + packets * config_.per_packet_overhead;
  // The message's total serialization is paid once (hops pipeline), every
  // later link adds only the lead packet's serialization; h switches mean
  // h + 1 links and h crossbar latencies. h == 1 reduces to the star form.
  return config_.bandwidth.serialize(total_wire) +
         h * config_.bandwidth.serialize(first_pkt) +
         (h + 1) * config_.link_latency + h * config_.switch_latency;
}

}  // namespace gputn::net

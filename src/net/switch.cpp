#include "net/switch.hpp"

#include <stdexcept>
#include <utility>

#include "net/fabric.hpp"

namespace gputn::net {

Switch::Switch(sim::Simulator& sim, int id, int radix,
               sim::Tick forwarding_latency, int credits_per_port)
    : sim_(&sim), id_(id), latency_(forwarding_latency),
      credits_(credits_per_port) {
  ports_.reserve(static_cast<std::size_t>(radix));
  for (int p = 0; p < radix; ++p) {
    // Ledger capacity = the credit pool when flow control is on (so busy
    // fraction 1.0 means "all credits pinned downstream"), 1 otherwise.
    ports_.push_back(Port{nullptr, {}, 0,
                          obs::BusyTracker(credits_ > 0 ? credits_ : 1)});
  }
}

void Switch::attach_output(int port, Link* out) {
  if (port < 0 || port >= radix()) {
    throw std::logic_error("switch: output port out of range");
  }
  ports_[static_cast<std::size_t>(port)].out = out;
}

void Switch::arrive(Packet&& p, Switch* from_sw, int from_port) {
  NodeId dst = p.flight->msg.dst;
  if (dst < 0) {
    throw std::out_of_range("switch: packet for unknown node");
  }
  ++forwarded_;
  if (p.flight->t_switch < 0) p.flight->t_switch = sim_->now();
  if (trace_ != nullptr && p.last && p.flight->msg.flow != 0) {
    // One span per message covering first arrival to last crossbar exit;
    // the flow step at the start keeps the arrow inside the slice.
    sim::Tick end = sim_->now() + latency_;
    trace_->span(lane_, "msg", "net", p.flight->t_switch, end,
                 flow_args(p.flight->msg));
    trace_->flow_step(lane_, "msg", "flow", p.flight->t_switch,
                      p.flight->msg.flow);
  }
  // The crossbar dequeues this packet from the input after the forwarding
  // latency; that instant frees the upstream output-port credit it holds.
  sim_->schedule_in(latency_, [this, from_sw, from_port,
                               p = std::move(p)]() mutable {
    route_out(std::move(p));
    if (from_sw != nullptr) from_sw->credit_return(from_port);
  });
}

void Switch::route_out(Packet&& p) {
  if (topo_ == nullptr || router_ == nullptr) {
    throw std::logic_error("switch: no router attached");
  }
  int port = router_->select(*topo_, id_, p.flight->msg.dst,
                            [this](int pt) { return depth(pt); }, scratch_);
  if (port < 0 || port >= radix()) {
    throw std::out_of_range("switch: routed past the radix (bad destination)");
  }
  Port& o = ports_[static_cast<std::size_t>(port)];
  if (o.out == nullptr) {
    throw std::logic_error("switch: routed to an unattached port");
  }
  if (o.queue.empty() && (credits_ == 0 || o.inflight < credits_)) {
    submit_out(o, std::move(p));
    return;
  }
  // Credit-stalled: park in the output FIFO until credit_return drains it.
  ++credit_stalls_;
  o.util.enqueue(sim_->now());
  o.queue.push_back(std::move(p));
}

void Switch::submit_out(Port& o, Packet&& p) {
  ++o.inflight;
  // The credit-occupancy ledger only means something under flow control
  // (capacity == credit pool); with unlimited credits, in-flight packets
  // are ordinary wire pipelining, not buffer pressure, so it stays quiet.
  if (credits_ > 0) o.util.acquire(sim_->now());
  o.util.add_bytes(p.wire_bytes);
  o.out->submit(std::move(p));
}

void Switch::credit_return(int port) {
  Port& o = ports_[static_cast<std::size_t>(port)];
  if (o.inflight > 0) --o.inflight;
  if (credits_ > 0) o.util.release(sim_->now());
  if (!o.queue.empty() && (credits_ == 0 || o.inflight < credits_)) {
    Packet p = std::move(o.queue.front());
    o.queue.pop_front();
    o.util.dequeue(sim_->now());
    submit_out(o, std::move(p));
  }
}

}  // namespace gputn::net

#include "net/switch.hpp"

#include "net/fabric.hpp"

#include <stdexcept>

namespace gputn::net {

void Switch::attach_output(NodeId id, Link* out) {
  if (id != static_cast<NodeId>(outputs_.size())) {
    throw std::logic_error("switch outputs must be attached in node order");
  }
  outputs_.push_back(out);
}

void Switch::forward(Packet&& p) {
  NodeId dst = p.flight->msg.dst;
  if (dst < 0 || dst >= static_cast<NodeId>(outputs_.size())) {
    throw std::out_of_range("switch: packet for unknown node");
  }
  ++forwarded_;
  if (p.flight->t_switch < 0) p.flight->t_switch = sim_->now();
  if (trace_ != nullptr && p.last && p.flight->msg.flow != 0) {
    // One span per message covering first arrival to last forward; the
    // flow step at the start keeps the arrow inside the slice.
    sim::Tick end = sim_->now() + latency_;
    trace_->span("net.switch", "msg", "net", p.flight->t_switch, end,
                 flow_args(p.flight->msg));
    trace_->flow_step("net.switch", "msg", "flow", p.flight->t_switch,
                      p.flight->msg.flow);
  }
  Link* out = outputs_[dst];
  sim_->schedule_in(latency_, [out, p = std::move(p)]() mutable {
    out->submit(std::move(p));
  });
}

}  // namespace gputn::net

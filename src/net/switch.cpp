#include "net/switch.hpp"

#include "net/fabric.hpp"

#include <stdexcept>

namespace gputn::net {

void Switch::attach_output(NodeId id, Link* out) {
  if (id != static_cast<NodeId>(outputs_.size())) {
    throw std::logic_error("switch outputs must be attached in node order");
  }
  outputs_.push_back(out);
}

void Switch::forward(Packet&& p) {
  NodeId dst = p.flight->msg.dst;
  if (dst < 0 || dst >= static_cast<NodeId>(outputs_.size())) {
    throw std::out_of_range("switch: packet for unknown node");
  }
  ++forwarded_;
  Link* out = outputs_[dst];
  sim_->schedule_in(latency_, [out, p = std::move(p)]() mutable {
    out->submit(std::move(p));
  });
}

}  // namespace gputn::net

// Wire message: what NICs exchange over the fabric.
//
// The network layer is deliberately dumb: it moves a fixed-size header plus
// an opaque payload from one node to another. The four 64-bit header words
// are interpreted by the NIC protocol layer (nic/nic.hpp); the fabric never
// looks at them. Keeping a concrete struct (rather than type erasure) keeps
// hot-path allocations to the payload vector only.
//
// The reliability sub-header (ctrl/seq/ack/reliable) belongs to the
// end-to-end retransmission protocol (fault/reliability.hpp). On a lossless
// fabric (reliability disabled) none of these fields are stamped and no
// ACK/NACK traffic exists; `corrupted` is set in flight by fault injection
// (net/link.hpp) and never by a sender.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gputn::net {

using NodeId = int;

/// Reliability-protocol message class. Data messages carry NIC payloads;
/// ACK/NACK are link-layer-free end-to-end control traffic between the two
/// NICs' reliability layers and are never seen by the NIC protocol layer.
enum class Ctrl : std::uint8_t {
  kData = 0,
  kAck = 1,   ///< cumulative acknowledgement: `ack` = next seq expected
  kNack = 2,  ///< corruption report: retransmit from `ack` immediately
};

struct Message {
  NodeId src = -1;
  NodeId dst = -1;
  std::uint32_t kind = 0;  ///< NIC-defined opcode.
  /// NIC-defined header words (e.g. remote address, completion flag
  /// address, match tag, byte count). Six words cover the largest control
  /// message (the rendezvous pull request).
  std::uint64_t h0 = 0, h1 = 0, h2 = 0, h3 = 0, h4 = 0, h5 = 0;

  // -- Reliability sub-header (fault/reliability.hpp) ----------------------
  Ctrl ctrl = Ctrl::kData;
  /// True once the sender's reliability layer stamped `seq`; the receiver
  /// then runs duplicate suppression and in-order delivery for it.
  bool reliable = false;
  /// Set in flight when fault injection corrupts any packet of the message.
  bool corrupted = false;
  /// Per (src, dst) flow sequence number (valid when `reliable`).
  std::uint64_t seq = 0;
  /// Cumulative acknowledgement (valid for kAck / kNack).
  std::uint64_t ack = 0;

  std::vector<std::byte> payload;

  std::uint64_t payload_bytes() const { return payload.size(); }
};

/// Destination-side receiver; the NIC implements this.
class MessageSink {
 public:
  virtual ~MessageSink() = default;
  virtual void deliver(Message&& msg) = 0;
};

}  // namespace gputn::net

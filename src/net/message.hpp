// Wire message: what NICs exchange over the fabric.
//
// The network layer is deliberately dumb: it moves a fixed-size header plus
// an opaque payload from one node to another. The four 64-bit header words
// are interpreted by the NIC protocol layer (nic/nic.hpp); the fabric never
// looks at them. Keeping a concrete struct (rather than type erasure) keeps
// hot-path allocations to the payload vector only.
//
// The reliability sub-header (ctrl/seq/ack/reliable) belongs to the
// end-to-end retransmission protocol (fault/reliability.hpp). On a lossless
// fabric (reliability disabled) none of these fields are stamped and no
// ACK/NACK traffic exists; `corrupted` is set in flight by fault injection
// (net/link.hpp) and never by a sender.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gputn::net {

using NodeId = int;

/// Reliability-protocol message class. Data messages carry NIC payloads;
/// ACK/NACK are link-layer-free end-to-end control traffic between the two
/// NICs' reliability layers and are never seen by the NIC protocol layer.
enum class Ctrl : std::uint8_t {
  kData = 0,
  kAck = 1,   ///< cumulative acknowledgement: `ack` = next seq expected
  kNack = 2,  ///< corruption report: retransmit from `ack` immediately
};

struct Message {
  NodeId src = -1;
  NodeId dst = -1;
  std::uint32_t kind = 0;  ///< NIC-defined opcode.
  /// NIC-defined header words (e.g. remote address, completion flag
  /// address, match tag, byte count). Six words cover the largest control
  /// message (the rendezvous pull request).
  std::uint64_t h0 = 0, h1 = 0, h2 = 0, h3 = 0, h4 = 0, h5 = 0;

  // -- Reliability sub-header (fault/reliability.hpp) ----------------------
  Ctrl ctrl = Ctrl::kData;
  /// True once the sender's reliability layer stamped `seq`; the receiver
  /// then runs duplicate suppression and in-order delivery for it.
  bool reliable = false;
  /// Set in flight when fault injection corrupts any packet of the message.
  bool corrupted = false;
  /// Per (src, dst) flow sequence number (valid when `reliable`).
  std::uint64_t seq = 0;
  /// Cumulative acknowledgement (valid for kAck / kNack).
  std::uint64_t ack = 0;

  // -- Observability sub-header (never interpreted by any component) -------
  /// Monotonic end-to-end flow id, stamped at first NIC tx (0 = unstamped).
  /// Retransmitted copies keep the original id so a trace groups every
  /// wire attempt of one logical message under one flow.
  std::uint64_t flow = 0;
  /// Logical-operation pairing tag (0 = unpaired). A request and its
  /// response carry the same tag, so the flight recorder can stitch the two
  /// one-way messages into one round-trip op (serve put request/response,
  /// get request/reply). Copied from the issuing command descriptor.
  std::uint64_t op_tag = 0;
  /// Tenant the operation belongs to (-1 = untenanted traffic).
  std::int32_t tenant = -1;
  /// Wire copies beyond the first for this logical message. Bumped on the
  /// retransmission-window copy before each resend, so the copy that is
  /// finally accepted reports how many extra wire attempts it cost.
  std::uint32_t retransmits = 0;
  /// Switches this message traverses src -> dst, stamped by the fabric at
  /// send from the topology's deterministic route (1 on a star). The
  /// flight recorder needs it to compute the per-hop ideal wire latency.
  std::uint32_t hops = 1;
  /// Per-stage timestamps in simulator ticks (picoseconds); -1 marks a
  /// stage that did not occur for this message. Pure bookkeeping: stamping
  /// never schedules events or adds delay, so latency accounting cannot
  /// perturb simulated time.
  std::int64_t t_trigger = -1;  ///< GPU trigger store reached the NIC
  std::int64_t t_post = -1;     ///< command posted to a software queue (Qp)
  std::int64_t t_ring = -1;     ///< doorbell rung (batch flush instant)
  std::int64_t t_cmd = -1;      ///< command entered the NIC command queue
  std::int64_t t_pop = -1;      ///< command left the queue (TX engine pop)
  std::int64_t t_admit = -1;    ///< token bucket admitted (== t_pop unpaced)
  std::int64_t t_wire = -1;     ///< handed to the fabric (fresh per retransmit)
  std::int64_t t_wire_first = -1;  ///< first fabric hand-off (kept on retx)
  std::int64_t t_switch = -1;   ///< first packet reached the switch
  std::int64_t t_rx = -1;       ///< last packet left the destination downlink

  std::vector<std::byte> payload;

  std::uint64_t payload_bytes() const { return payload.size(); }
};

/// Trace-event args JSON for one message's flow events (sim/trace.hpp);
/// shared by every emitter so the viewer shows a consistent detail pane.
inline std::string flow_args(const Message& m) {
  return "{\"flow\":" + std::to_string(m.flow) +
         ",\"src\":" + std::to_string(m.src) +
         ",\"dst\":" + std::to_string(m.dst) +
         ",\"kind\":" + std::to_string(m.kind) +
         ",\"bytes\":" + std::to_string(m.payload_bytes()) + "}";
}

/// Destination-side receiver; the NIC implements this.
class MessageSink {
 public:
  virtual ~MessageSink() = default;
  virtual void deliver(Message&& msg) = 0;
};

}  // namespace gputn::net

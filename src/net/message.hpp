// Wire message: what NICs exchange over the fabric.
//
// The network layer is deliberately dumb: it moves a fixed-size header plus
// an opaque payload from one node to another. The four 64-bit header words
// are interpreted by the NIC protocol layer (nic/nic.hpp); the fabric never
// looks at them. Keeping a concrete struct (rather than type erasure) keeps
// hot-path allocations to the payload vector only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gputn::net {

using NodeId = int;

struct Message {
  NodeId src = -1;
  NodeId dst = -1;
  std::uint32_t kind = 0;  ///< NIC-defined opcode.
  /// NIC-defined header words (e.g. remote address, completion flag
  /// address, match tag, byte count). Six words cover the largest control
  /// message (the rendezvous pull request).
  std::uint64_t h0 = 0, h1 = 0, h2 = 0, h3 = 0, h4 = 0, h5 = 0;
  std::vector<std::byte> payload;

  std::uint64_t payload_bytes() const { return payload.size(); }
};

/// Destination-side receiver; the NIC implements this.
class MessageSink {
 public:
  virtual ~MessageSink() = default;
  virtual void deliver(Message&& msg) = 0;
};

}  // namespace gputn::net

// Router contract: pick one output port among a topology's candidates.
//
// The Topology (topology_api.hpp) supplies the legal minimal output ports
// for (switch, dst); the Router's only job is the choice among them. Both
// built-in policies are deterministic functions of their inputs:
//
//   "deterministic"  always the first candidate. On a fat-tree the
//                    candidate rotation makes this d-mod-k ECMP up-routing;
//                    on a torus it is dimension-order routing.
//   "adaptive"       the candidate with the smallest local output-port
//                    depth (queued + credit-held packets), first-listed
//                    wins ties — so two runs observing identical queue
//                    states make identical choices, which is what keeps
//                    adaptive runs bit-identical across --jobs.
//
// Routers are stateless and shared by every switch of a fabric; the
// per-call scratch vector is caller-owned so the hot path never allocates.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/topology_api.hpp"

namespace gputn::net {

class Router {
 public:
  virtual ~Router() = default;
  Router() = default;
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  virtual const std::string& name() const = 0;

  /// Output-port choice for a packet to `dst` sitting at `sw`. `depth`
  /// reports the current depth of one of `sw`'s output ports (queued
  /// packets plus packets holding one of its credits); implementations may
  /// only call it for candidate ports. `scratch` is reused between calls.
  virtual int select(const Topology& topo, int sw, NodeId dst,
                     const std::function<int(int)>& depth,
                     std::vector<int>& scratch) const = 0;
};

/// Self-registering name -> Router registry (mirrors TopologyFactory).
class RouterFactory {
 public:
  using Builder = std::function<std::unique_ptr<Router>()>;

  static RouterFactory& instance();

  void add(std::string name, Builder builder);
  /// Throws std::invalid_argument on an unknown policy name.
  std::unique_ptr<Router> make(const std::string& name) const;
  std::vector<std::string> names() const;

 private:
  std::map<std::string, Builder> builders_;
};

struct RouterRegistrar {
  RouterRegistrar(const char* name, RouterFactory::Builder builder);
};

namespace detail {
/// Anchor referenced by the factory so the static library member holding
/// the built-in routers (routing.cpp) is always linked in.
void link_builtin_routers();
}  // namespace detail

}  // namespace gputn::net

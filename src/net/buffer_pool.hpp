// Freelist of payload staging buffers for net::Message.
//
// Every message send DMA-reads its payload into a fresh
// `std::vector<std::byte>`, and the reliability layer keeps a second copy in
// its retransmission window — at high message rates the allocator becomes a
// measurable cost. The pool recycles those vectors: `acquire()` hands back a
// cleared vector with its old capacity intact (so the subsequent
// `resize(n)` allocates nothing when a same-size buffer was pooled), and
// `release()` returns a buffer once its bytes have been deposited or its
// window entry acknowledged.
//
// Pooling is pure allocator behavior: it never touches simulated time or any
// exported `net.*`/`rel.*` counter, so pooled and unpooled runs are
// bit-identical. Hit/miss accessors exist for benchmarks but are
// deliberately not exported into StatRegistry.
//
// The pool is shared by every NIC on a fabric, and under sharded (parallel
// DES) runs NICs on different shards acquire/release concurrently — the
// freelist is mutex-guarded. Which thread gets which recycled capacity can
// vary, but capacity reuse is invisible to results by the argument above,
// so determinism is unaffected; only hits()/misses() are scheduling-
// dependent, which is why they stay out of StatRegistry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace gputn::net {

class BufferPool {
 public:
  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// A cleared buffer, reusing pooled capacity when available.
  std::vector<std::byte> acquire() {
    std::lock_guard<std::mutex> lk(mu_);
    if (free_.empty()) {
      ++misses_;
      return {};
    }
    ++hits_;
    std::vector<std::byte> v = std::move(free_.back());
    free_.pop_back();
    v.clear();
    return v;
  }

  /// Return a buffer whose contents are no longer needed. Buffers with no
  /// capacity are not worth keeping; beyond kMaxFree the buffer is simply
  /// freed so an allocation burst cannot pin memory forever.
  void release(std::vector<std::byte>&& v) {
    if (v.capacity() == 0) return;
    std::lock_guard<std::mutex> lk(mu_);
    if (free_.size() >= kMaxFree) return;
    v.clear();
    free_.push_back(std::move(v));
  }

  std::size_t pooled() const {
    std::lock_guard<std::mutex> lk(mu_);
    return free_.size();
  }
  std::uint64_t hits() const {
    std::lock_guard<std::mutex> lk(mu_);
    return hits_;
  }
  std::uint64_t misses() const {
    std::lock_guard<std::mutex> lk(mu_);
    return misses_;
  }

 private:
  static constexpr std::size_t kMaxFree = 256;
  mutable std::mutex mu_;
  std::vector<std::vector<std::byte>> free_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace gputn::net

#include "net/link.hpp"

#include <utility>

namespace gputn::net {

Link::Link(sim::Simulator& sim, std::string name, sim::Bandwidth bandwidth,
           sim::Tick propagation, PacketFn downstream)
    : sim_(&sim),
      name_(std::move(name)),
      bandwidth_(bandwidth),
      propagation_(propagation),
      downstream_(std::move(downstream)),
      queue_(sim) {
  sim_->spawn(pump(), "link:" + name_);
}

void Link::submit(Packet&& p) { queue_.push(std::move(p)); }

sim::Task<> Link::pump() {
  for (;;) {
    Packet p = co_await queue_.pop();
    co_await sim_->delay(bandwidth_.serialize(p.wire_bytes));
    bytes_ += p.wire_bytes;
    ++packets_;
    // Propagation overlaps with the next packet's serialization.
    auto fn = downstream_;
    sim_->schedule_in(propagation_,
                      [fn, p = std::move(p)]() mutable { fn(std::move(p)); });
  }
}

}  // namespace gputn::net

#include "net/link.hpp"

#include <utility>

#include "net/fabric.hpp"  // MessageInFlight definition

namespace gputn::net {

Link::Link(sim::Simulator& sim, std::string name, sim::Bandwidth bandwidth,
           sim::Tick propagation, PacketFn downstream)
    : sim_(&sim),
      name_(std::move(name)),
      bandwidth_(bandwidth),
      propagation_(propagation),
      downstream_(std::move(downstream)),
      queue_(sim) {
  sim_->spawn(pump(), "link:" + name_);
}

void Link::submit(Packet&& p) {
  util_.enqueue(sim_->now());
  queue_.push(std::move(p));
}

sim::Task<> Link::pump() {
  for (;;) {
    Packet p = co_await queue_.pop();
    util_.dequeue(sim_->now());
    util_.acquire(sim_->now());
    co_await sim_->delay(bandwidth_.serialize(p.wire_bytes));
    util_.release(sim_->now());
    util_.add_bytes(p.wire_bytes);
    bytes_ += p.wire_bytes;
    ++packets_;
    // Faults act on the wire: serialization occupancy is already paid by the
    // time a packet is dropped, corrupted, or delayed.
    sim::Tick extra = 0;
    if (fault_ != nullptr) {
      FaultVerdict v = fault_->classify(p);
      if (v.drop) {
        ++dropped_;
        continue;  // the packet — and with it the whole message — is lost
      }
      if (v.corrupt) {
        ++corrupted_;
        if (p.flight) p.flight->corrupted = true;
      }
      extra = v.extra_delay;
    }
    // Propagation overlaps with the next packet's serialization. The link
    // outlives every in-flight packet (pending events are destroyed, never
    // invoked, on simulator teardown), so capturing `this` keeps the event
    // small enough for EventFn's inline storage.
    if (remote_) {
      remote_(sim_->now() + propagation_ + extra, std::move(p));
      continue;
    }
    sim_->schedule_in(
        propagation_ + extra,
        [this, p = std::move(p)]() mutable { downstream_(std::move(p)); });
  }
}

}  // namespace gputn::net

// Built-in routing policies (see routing_api.hpp for the contract).
#include "net/routing_api.hpp"

#include <stdexcept>

namespace gputn::net {

RouterFactory& RouterFactory::instance() {
  static RouterFactory factory;
  return factory;
}

void RouterFactory::add(std::string name, Builder builder) {
  builders_[std::move(name)] = std::move(builder);
}

std::unique_ptr<Router> RouterFactory::make(const std::string& name) const {
  detail::link_builtin_routers();
  auto it = builders_.find(name);
  if (it == builders_.end()) {
    std::string known;
    for (const auto& [k, b] : builders_) {
      if (!known.empty()) known += "|";
      known += k;
    }
    throw std::invalid_argument("unknown routing policy '" + name + "' (" +
                                known + ")");
  }
  return it->second();
}

std::vector<std::string> RouterFactory::names() const {
  std::vector<std::string> out;
  for (const auto& [k, b] : builders_) out.push_back(k);
  return out;
}

RouterRegistrar::RouterRegistrar(const char* name,
                                 RouterFactory::Builder builder) {
  RouterFactory::instance().add(name, std::move(builder));
}

namespace {

class DeterministicRouter final : public Router {
 public:
  const std::string& name() const override {
    static const std::string n = "deterministic";
    return n;
  }
  int select(const Topology& topo, int sw, NodeId dst,
             const std::function<int(int)>& depth,
             std::vector<int>& scratch) const override {
    (void)depth;
    topo.candidates(sw, dst, scratch);
    if (scratch.empty()) {
      throw std::logic_error("router: no candidate port at switch " +
                             std::to_string(sw) + " for node " +
                             std::to_string(dst));
    }
    return scratch.front();
  }
};

class AdaptiveRouter final : public Router {
 public:
  const std::string& name() const override {
    static const std::string n = "adaptive";
    return n;
  }
  int select(const Topology& topo, int sw, NodeId dst,
             const std::function<int(int)>& depth,
             std::vector<int>& scratch) const override {
    topo.candidates(sw, dst, scratch);
    if (scratch.empty()) {
      throw std::logic_error("router: no candidate port at switch " +
                             std::to_string(sw) + " for node " +
                             std::to_string(dst));
    }
    // Strict < keeps the earliest-listed minimum on ties: the choice is a
    // pure function of the observed depths, so identical queue states give
    // identical routes (the adaptive determinism tests pin this).
    int best = scratch.front();
    int best_depth = depth(best);
    for (std::size_t i = 1; i < scratch.size(); ++i) {
      int d = depth(scratch[i]);
      if (d < best_depth) {
        best = scratch[i];
        best_depth = d;
      }
    }
    return best;
  }
};

const RouterRegistrar kDeterministic{
    "deterministic", [] { return std::make_unique<DeterministicRouter>(); }};
const RouterRegistrar kAdaptive{
    "adaptive", [] { return std::make_unique<AdaptiveRouter>(); }};

}  // namespace

namespace detail {
void link_builtin_routers() {}
}  // namespace detail

}  // namespace gputn::net

// Topology contract: the shape of the fabric, and nothing else.
//
// A Topology is a pure, immutable description of how endpoints (nodes) and
// switches are wired: how many of each, what every switch port connects to,
// which switch port each node hangs off, and — the routing substrate — the
// set of minimal output ports a packet at some switch may take toward a
// destination. It owns no simulator state: the Fabric instantiates links
// and switches from it, and a Router (routing_api.hpp) picks among its
// candidate ports. Keeping the contract this narrow is what lets a new
// topology land as one self-registered builder with zero fabric changes.
//
// Determinism rules every implementation must obey:
//   * candidates() returns ports in a fixed preference order that depends
//     only on (switch, dst) — never on simulator state or iteration order
//     of an unordered container. The first candidate defines the
//     deterministic route (and therefore hop_count()).
//   * Every candidate is minimal: following it strictly decreases the
//     remaining switch-hop distance to the destination. This makes
//     deterministic and adaptive routing loop-free by construction and
//     keeps hop counts router-independent, which the flight recorder's
//     wire-vs-switch_queue blame split relies on.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/message.hpp"

namespace gputn::net {

/// What one switch port is wired to.
struct PortPeer {
  enum class Kind : std::uint8_t { kUnused, kNode, kSwitch };
  Kind kind = Kind::kUnused;
  int index = -1;  ///< NodeId (kNode) or switch id (kSwitch)
  int port = -1;   ///< peer switch's port index (kSwitch only)
};

/// Where a node attaches: its switch and the port on that switch.
struct HostPort {
  int sw = -1;
  int port = -1;
};

class Topology {
 public:
  virtual ~Topology() = default;
  Topology() = default;
  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  /// Canonical spec string, e.g. "fat-tree:k=8" (round-trips through the
  /// factory and appears in describe() output — stable across runs).
  virtual const std::string& name() const = 0;

  /// Endpoint capacity. Runs may attach fewer nodes (ids [0, n) in order);
  /// unused host slots simply stay idle.
  virtual int node_count() const = 0;
  virtual int switch_count() const = 0;
  virtual int radix(int sw) const = 0;
  virtual PortPeer peer(int sw, int port) const = 0;
  virtual HostPort host(NodeId node) const = 0;

  /// Minimal output ports of `sw` toward `dst`, in deterministic
  /// preference order (see header comment). `out` is cleared first.
  virtual void candidates(int sw, NodeId dst, std::vector<int>& out) const = 0;

  /// First-candidate output port (the deterministic route's choice).
  int deterministic_port(int sw, NodeId dst) const;

  /// Switches on the deterministic route from the switch `sw` to `dst`'s
  /// host switch, counting `sw` itself (>= 1). Bounded by switch_count();
  /// throws std::logic_error if a (buggy) topology fails to converge.
  int hops_from(int sw, NodeId dst) const;

  /// Switches traversed src -> dst (>= 1; a star is always 1). Minimality
  /// of candidates makes this the hop count of *every* allowed route, so
  /// adaptive routing never changes it.
  int hop_count(NodeId src, NodeId dst) const;
};

/// Parsed topology spec: "name" or "name:k=v,k=v,..."; a bare value token
/// (no '=') is stored under the key "" — torus uses it for its dimensions
/// ("torus:4x4x4").
struct TopologySpec {
  std::string text;  ///< the original spec, canonical form
  std::string kind;
  std::map<std::string, std::string> params;

  static TopologySpec parse(const std::string& text);
  std::string get(const std::string& key, const std::string& dflt) const;
  /// Integer param with inclusive bounds; throws std::invalid_argument on
  /// malformed or out-of-range values (same contract as WorkloadParams).
  long get_int(const std::string& key, long dflt, long min, long max) const;
};

/// Self-registering builder registry, keyed by the spec's kind. Builders
/// receive the parsed spec plus the number of nodes the run attaches and
/// must either return a topology with node_count() >= nodes or throw
/// std::invalid_argument.
class TopologyFactory {
 public:
  using Builder =
      std::function<std::unique_ptr<Topology>(const TopologySpec&, int nodes)>;

  static TopologyFactory& instance();

  void add(std::string kind, Builder builder);
  /// Parse `spec` and build; throws std::invalid_argument on an unknown
  /// kind, malformed spec, or insufficient endpoint capacity.
  std::unique_ptr<Topology> make(const std::string& spec, int nodes) const;
  std::vector<std::string> kinds() const;

 private:
  std::map<std::string, Builder> builders_;
};

/// One static instance per builder translation unit registers the kind at
/// load time (see GPUTN_REGISTER_TOPOLOGY in topologies.cpp).
struct TopologyRegistrar {
  TopologyRegistrar(const char* kind, TopologyFactory::Builder builder);
};

namespace detail {
/// Anchor referenced by the factory so the static library member holding
/// the built-in builders (topologies.cpp) is always linked in.
void link_builtin_topologies();
}  // namespace detail

}  // namespace gputn::net

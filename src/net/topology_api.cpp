#include "net/topology_api.hpp"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>

namespace gputn::net {

int Topology::deterministic_port(int sw, NodeId dst) const {
  std::vector<int> cand;
  candidates(sw, dst, cand);
  if (cand.empty()) {
    throw std::logic_error("topology '" + name() +
                           "': no route from switch " + std::to_string(sw) +
                           " to node " + std::to_string(dst));
  }
  return cand.front();
}

int Topology::hops_from(int sw, NodeId dst) const {
  int hops = 1;
  int at = sw;
  int target = host(dst).sw;
  // Candidate minimality bounds the walk by the switch count; exceeding it
  // means a topology emitted a non-minimal or cyclic candidate.
  while (at != target) {
    PortPeer p = peer(at, deterministic_port(at, dst));
    if (p.kind != PortPeer::Kind::kSwitch) {
      throw std::logic_error("topology '" + name() +
                             "': route left the switch graph before reaching "
                             "node " + std::to_string(dst));
    }
    at = p.index;
    if (++hops > switch_count()) {
      throw std::logic_error("topology '" + name() +
                             "': route to node " + std::to_string(dst) +
                             " did not converge");
    }
  }
  return hops;
}

int Topology::hop_count(NodeId src, NodeId dst) const {
  return hops_from(host(src).sw, dst);
}

TopologySpec TopologySpec::parse(const std::string& text) {
  if (text.empty()) {
    throw std::invalid_argument("topology spec is empty");
  }
  TopologySpec spec;
  spec.text = text;
  std::size_t colon = text.find(':');
  spec.kind = text.substr(0, colon);
  if (spec.kind.empty()) {
    throw std::invalid_argument("topology spec '" + text + "' has no kind");
  }
  if (colon == std::string::npos) return spec;
  std::string rest = text.substr(colon + 1);
  std::size_t start = 0;
  while (start <= rest.size()) {
    std::size_t comma = rest.find(',', start);
    std::string tok = rest.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (tok.empty()) {
      throw std::invalid_argument("topology spec '" + text +
                                  "' has an empty parameter");
    }
    std::size_t eq = tok.find('=');
    if (eq == std::string::npos) {
      spec.params[""] = tok;  // bare value, e.g. the torus dimensions
    } else {
      std::string key = tok.substr(0, eq);
      std::string val = tok.substr(eq + 1);
      if (key.empty() || val.empty()) {
        throw std::invalid_argument("topology spec '" + text +
                                    "': malformed parameter '" + tok + "'");
      }
      spec.params[key] = val;
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return spec;
}

std::string TopologySpec::get(const std::string& key,
                              const std::string& dflt) const {
  auto it = params.find(key);
  return it != params.end() ? it->second : dflt;
}

long TopologySpec::get_int(const std::string& key, long dflt, long min,
                           long max) const {
  long v = dflt;
  auto it = params.find(key);
  if (it != params.end()) {
    const char* s = it->second.c_str();
    char* end = nullptr;
    errno = 0;
    v = std::strtol(s, &end, 10);
    if (end == s || *end != '\0' || errno == ERANGE) {
      throw std::invalid_argument("topology spec '" + text + "': parameter '" +
                                  key + "' expects an integer, got '" +
                                  it->second + "'");
    }
  }
  if (v < min || v > max) {
    throw std::invalid_argument(
        "topology spec '" + text + "': parameter '" + key + "' = " +
        std::to_string(v) + " out of range [" + std::to_string(min) + ", " +
        std::to_string(max) + "]");
  }
  return v;
}

TopologyFactory& TopologyFactory::instance() {
  static TopologyFactory factory;
  return factory;
}

void TopologyFactory::add(std::string kind, Builder builder) {
  builders_[std::move(kind)] = std::move(builder);
}

std::unique_ptr<Topology> TopologyFactory::make(const std::string& spec,
                                                int nodes) const {
  detail::link_builtin_topologies();
  TopologySpec parsed = TopologySpec::parse(spec);
  auto it = builders_.find(parsed.kind);
  if (it == builders_.end()) {
    std::string known;
    for (const auto& [k, b] : builders_) {
      if (!known.empty()) known += "|";
      known += k;
    }
    throw std::invalid_argument("unknown topology '" + parsed.kind + "' (" +
                                known + ")");
  }
  std::unique_ptr<Topology> topo = it->second(parsed, nodes);
  if (topo->node_count() < nodes) {
    throw std::invalid_argument(
        "topology '" + spec + "' has capacity for " +
        std::to_string(topo->node_count()) + " nodes, run needs " +
        std::to_string(nodes));
  }
  return topo;
}

std::vector<std::string> TopologyFactory::kinds() const {
  std::vector<std::string> out;
  for (const auto& [k, b] : builders_) out.push_back(k);
  return out;
}

TopologyRegistrar::TopologyRegistrar(const char* kind,
                                     TopologyFactory::Builder builder) {
  TopologyFactory::instance().add(kind, std::move(builder));
}

}  // namespace gputn::net

// Built-in topologies: star, fat-tree(k), 2D/3D torus, dragonfly.
//
// Each builder is a pure function of its spec: all wiring below is closed
// form (no tables proportional to nodes x switches), so even large
// instances cost only their id arithmetic. See topology_api.hpp for the
// determinism and minimality rules the candidate orders obey.
#include <stdexcept>

#include "net/topology_api.hpp"

namespace gputn::net {
namespace {

#define GPUTN_REGISTER_TOPOLOGY(kind, fn) \
  const TopologyRegistrar kReg_##fn { kind, fn }

// ---- star -----------------------------------------------------------------
// The seed fabric: one switch, port i <-> node i. Every route is one hop.

class StarTopology final : public Topology {
 public:
  explicit StarTopology(int nodes) : nodes_(nodes > 0 ? nodes : 1) {}

  const std::string& name() const override {
    static const std::string n = "star";
    return n;
  }
  int node_count() const override { return nodes_; }
  int switch_count() const override { return 1; }
  int radix(int) const override { return nodes_; }
  PortPeer peer(int, int port) const override {
    return PortPeer{PortPeer::Kind::kNode, port, -1};
  }
  HostPort host(NodeId node) const override { return HostPort{0, node}; }
  void candidates(int, NodeId dst, std::vector<int>& out) const override {
    out.clear();
    out.push_back(dst);
  }

 private:
  int nodes_;
};

std::unique_ptr<Topology> make_star(const TopologySpec& spec, int nodes) {
  (void)spec;
  return std::make_unique<StarTopology>(nodes);
}

GPUTN_REGISTER_TOPOLOGY("star", make_star);

// ---- fat-tree(k) ----------------------------------------------------------
// Standard three-tier k-ary fat-tree: k pods of k/2 edge + k/2 aggregation
// switches, (k/2)^2 cores, k^3/4 hosts. Up-candidates rotate by the
// destination's leaf index, so the deterministic (first-candidate) route is
// d-mod-k ECMP: flows to different leaves spread across up-links while one
// destination always uses one path.

class FatTreeTopology final : public Topology {
 public:
  explicit FatTreeTopology(int k, std::string name)
      : k_(k), half_(k / 2), name_(std::move(name)) {}

  const std::string& name() const override { return name_; }
  int node_count() const override { return k_ * half_ * half_; }
  int switch_count() const override { return k_ * k_ + half_ * half_; }
  int radix(int) const override { return k_; }

  PortPeer peer(int sw, int port) const override {
    const int edges = k_ * half_;  // then aggs, then cores
    if (sw < edges) {             // edge(pod, e)
      int pod = sw / half_, e = sw % half_;
      if (port < half_) {  // host leaf
        return PortPeer{PortPeer::Kind::kNode,
                        pod * half_ * half_ + e * half_ + port, -1};
      }
      int u = port - half_;  // up to agg(pod, u), its down port e
      return PortPeer{PortPeer::Kind::kSwitch, edges + pod * half_ + u, e};
    }
    if (sw < 2 * edges) {  // agg(pod, a)
      int pod = (sw - edges) / half_, a = (sw - edges) % half_;
      if (port < half_) {  // down to edge(pod, port), its up port a
        return PortPeer{PortPeer::Kind::kSwitch, pod * half_ + port,
                        half_ + a};
      }
      int u = port - half_;  // up to core a*half+u, its port pod
      return PortPeer{PortPeer::Kind::kSwitch, 2 * edges + a * half_ + u,
                      pod};
    }
    // core c: port p goes down to agg(p, c / half), its up port c % half.
    int c = sw - 2 * edges;
    return PortPeer{PortPeer::Kind::kSwitch, edges + port * half_ + c / half_,
                    half_ + c % half_};
  }

  HostPort host(NodeId node) const override {
    int pod = node / (half_ * half_);
    int e = (node / half_) % half_;
    return HostPort{pod * half_ + e, node % half_};
  }

  void candidates(int sw, NodeId dst, std::vector<int>& out) const override {
    out.clear();
    const int edges = k_ * half_;
    int dpod = dst / (half_ * half_);
    int dedge = (dst / half_) % half_;
    int dleaf = dst % half_;
    if (sw < edges) {  // edge
      int pod = sw / half_, e = sw % half_;
      if (pod == dpod && e == dedge) {
        out.push_back(dleaf);
        return;
      }
      push_rotated_ups(out, dst);
      return;
    }
    if (sw < 2 * edges) {  // agg
      int pod = (sw - edges) / half_;
      if (pod == dpod) {
        out.push_back(dedge);
        return;
      }
      push_rotated_ups(out, dst);
      return;
    }
    out.push_back(dpod);  // core: one down port per pod
  }

 private:
  /// Up-ports [half, k) starting at the d-mod-k choice for `dst`.
  void push_rotated_ups(std::vector<int>& out, NodeId dst) const {
    int start = dst % half_;
    for (int j = 0; j < half_; ++j) {
      out.push_back(half_ + (start + j) % half_);
    }
  }

  int k_, half_;
  std::string name_;
};

std::unique_ptr<Topology> make_fat_tree(const TopologySpec& spec, int nodes) {
  (void)nodes;
  int k = static_cast<int>(spec.get_int("k", 4, 2, 64));
  if (k % 2 != 0) {
    throw std::invalid_argument("topology spec '" + spec.text +
                                "': fat-tree k must be even");
  }
  return std::make_unique<FatTreeTopology>(k, "fat-tree:k=" +
                                                  std::to_string(k));
}

GPUTN_REGISTER_TOPOLOGY("fat-tree", make_fat_tree);

// ---- torus (2D/3D) --------------------------------------------------------
// One host per switch; each switch has a +/- port per dimension with wrap
// links. The deterministic candidate is dimension-order routing (lowest
// differing dimension, shortest wrap direction, ties broken toward +);
// the remaining differing dimensions follow as adaptive alternatives —
// every one is minimal, so escaping a hot dimension never lengthens the
// path.

class TorusTopology final : public Topology {
 public:
  explicit TorusTopology(std::vector<int> dims, std::string name)
      : dims_(std::move(dims)), name_(std::move(name)) {
    total_ = 1;
    for (int d : dims_) total_ *= d;
  }

  const std::string& name() const override { return name_; }
  int node_count() const override { return total_; }
  int switch_count() const override { return total_; }
  int radix(int) const override {
    return 1 + 2 * static_cast<int>(dims_.size());
  }

  PortPeer peer(int sw, int port) const override {
    if (port == 0) return PortPeer{PortPeer::Kind::kNode, sw, -1};
    int dim = (port - 1) / 2;
    bool plus = ((port - 1) % 2) == 0;
    int coord = coord_of(sw, dim);
    int d = dims_[dim];
    int next = plus ? (coord + 1) % d : (coord + d - 1) % d;
    int peer_sw = with_coord(sw, dim, next);
    // A +step lands on the peer's - port and vice versa.
    return PortPeer{PortPeer::Kind::kSwitch, peer_sw,
                    plus ? 2 + 2 * dim : 1 + 2 * dim};
  }

  HostPort host(NodeId node) const override { return HostPort{node, 0}; }

  void candidates(int sw, NodeId dst, std::vector<int>& out) const override {
    out.clear();
    if (sw == dst) {
      out.push_back(0);
      return;
    }
    for (std::size_t dim = 0; dim < dims_.size(); ++dim) {
      int sc = coord_of(sw, static_cast<int>(dim));
      int dc = coord_of(dst, static_cast<int>(dim));
      if (sc == dc) continue;
      int d = dims_[dim];
      int plus_dist = (dc - sc + d) % d;
      int minus_dist = (sc - dc + d) % d;
      bool plus = plus_dist <= minus_dist;
      out.push_back(plus ? 1 + 2 * static_cast<int>(dim)
                         : 2 + 2 * static_cast<int>(dim));
    }
  }

 private:
  int coord_of(int sw, int dim) const {
    for (int i = 0; i < dim; ++i) sw /= dims_[i];
    return sw % dims_[dim];
  }
  int with_coord(int sw, int dim, int coord) const {
    int stride = 1;
    for (int i = 0; i < dim; ++i) stride *= dims_[i];
    int old = coord_of(sw, dim);
    return sw + (coord - old) * stride;
  }

  std::vector<int> dims_;
  int total_;
  std::string name_;
};

std::unique_ptr<Topology> make_torus(const TopologySpec& spec, int nodes) {
  (void)nodes;
  std::string dims_text = spec.get("", spec.get("dims", ""));
  if (dims_text.empty()) {
    throw std::invalid_argument("topology spec '" + spec.text +
                                "': torus needs dimensions, e.g. torus:4x4x4");
  }
  std::vector<int> dims;
  std::size_t start = 0;
  while (start <= dims_text.size()) {
    std::size_t x = dims_text.find('x', start);
    std::string tok = dims_text.substr(
        start, x == std::string::npos ? std::string::npos : x - start);
    char* end = nullptr;
    long v = std::strtol(tok.c_str(), &end, 10);
    if (tok.empty() || end == tok.c_str() || *end != '\0' || v < 2 ||
        v > 1024) {
      throw std::invalid_argument("topology spec '" + spec.text +
                                  "': bad torus dimension '" + tok +
                                  "' (each must be an integer in [2, 1024])");
    }
    dims.push_back(static_cast<int>(v));
    if (x == std::string::npos) break;
    start = x + 1;
  }
  if (dims.size() < 2 || dims.size() > 3) {
    throw std::invalid_argument("topology spec '" + spec.text +
                                "': torus supports 2 or 3 dimensions");
  }
  long total = 1;
  for (int d : dims) total *= d;
  if (total > (1L << 20)) {
    throw std::invalid_argument("topology spec '" + spec.text +
                                "': torus larger than 2^20 switches");
  }
  return std::make_unique<TorusTopology>(std::move(dims),
                                         "torus:" + dims_text);
}

GPUTN_REGISTER_TOPOLOGY("torus", make_torus);

// ---- dragonfly(a, h, p) ---------------------------------------------------
// Canonical balanced dragonfly: g = a*h + 1 groups of `a` routers; each
// router serves `p` hosts, connects to the a-1 other routers of its group
// (full mesh) and owns `h` global links. Global slot q = r*h + j of group G
// reaches group (q < G ? q : q+1), so every group pair is joined by exactly
// one global link. Minimal routing (<= 4 switch hops: router, gateway,
// remote gateway, destination router) has a unique path, so the adaptive
// policy degenerates to the deterministic one here — non-minimal Valiant
// escape paths are future work.

class DragonflyTopology final : public Topology {
 public:
  DragonflyTopology(int a, int h, int p, std::string name)
      : a_(a), h_(h), p_(p), groups_(a * h + 1), name_(std::move(name)) {}

  const std::string& name() const override { return name_; }
  int node_count() const override { return groups_ * a_ * p_; }
  int switch_count() const override { return groups_ * a_; }
  int radix(int) const override { return p_ + (a_ - 1) + h_; }

  PortPeer peer(int sw, int port) const override {
    int g = sw / a_, r = sw % a_;
    if (port < p_) {
      return PortPeer{PortPeer::Kind::kNode, sw * p_ + port, -1};
    }
    if (port < p_ + a_ - 1) {  // local full mesh
      int j = port - p_;
      int rp = j < r ? j : j + 1;
      return PortPeer{PortPeer::Kind::kSwitch, g * a_ + rp,
                      p_ + (r < rp ? r : r - 1)};
    }
    // Global link: slot q of this group to its paired group.
    int q = r * h_ + (port - p_ - (a_ - 1));
    int v = q < g ? q : q + 1;
    int qp = g < v ? g : g - 1;  // the slot in v that points back at g
    return PortPeer{PortPeer::Kind::kSwitch, v * a_ + qp / h_,
                    p_ + (a_ - 1) + qp % h_};
  }

  HostPort host(NodeId node) const override {
    return HostPort{node / p_, node % p_};
  }

  void candidates(int sw, NodeId dst, std::vector<int>& out) const override {
    out.clear();
    int g = sw / a_, r = sw % a_;
    int dsw = dst / p_;
    int dg = dsw / a_, dr = dsw % a_;
    if (g == dg) {
      if (r == dr) {
        out.push_back(dst % p_);
      } else {
        out.push_back(local_port(r, dr));
      }
      return;
    }
    int q = dg < g ? dg : dg - 1;  // this group's slot toward dg
    int gw = q / h_;
    if (r == gw) {
      out.push_back(p_ + (a_ - 1) + q % h_);
    } else {
      out.push_back(local_port(r, gw));
    }
  }

 private:
  int local_port(int r, int rp) const { return p_ + (rp < r ? rp : rp - 1); }

  int a_, h_, p_, groups_;
  std::string name_;
};

std::unique_ptr<Topology> make_dragonfly(const TopologySpec& spec, int nodes) {
  (void)nodes;
  int a = static_cast<int>(spec.get_int("a", 4, 1, 64));
  int h = static_cast<int>(spec.get_int("h", 2, 1, 64));
  int p = static_cast<int>(spec.get_int("p", h, 1, 64));
  long hosts = static_cast<long>(a * h + 1) * a * p;
  if (hosts > (1L << 22)) {
    throw std::invalid_argument("topology spec '" + spec.text +
                                "': dragonfly larger than 2^22 hosts");
  }
  return std::make_unique<DragonflyTopology>(
      a, h, p,
      "dragonfly:a=" + std::to_string(a) + ",h=" + std::to_string(h) +
          ",p=" + std::to_string(p));
}

GPUTN_REGISTER_TOPOLOGY("dragonfly", make_dragonfly);

}  // namespace

namespace detail {
void link_builtin_topologies() {}
}  // namespace detail

}  // namespace gputn::net

// Star-topology switch (Table 2: single switch, 100 ns per hop).
//
// The switch models an ideal crossbar: each arriving packet is forwarded to
// the destination's output link after a fixed forwarding latency. Output
// contention is resolved by the output link's serialization FIFO.
#pragma once

#include <memory>
#include <vector>

#include "net/link.hpp"
#include "net/message.hpp"
#include "sim/trace.hpp"

namespace gputn::net {

class Switch {
 public:
  Switch(sim::Simulator& sim, sim::Tick forwarding_latency)
      : sim_(&sim), latency_(forwarding_latency) {}
  Switch(const Switch&) = delete;
  Switch& operator=(const Switch&) = delete;

  /// Register the output link toward node `id` (index == id).
  void attach_output(NodeId id, Link* out);

  /// Entry point for packets arriving from any input link.
  void forward(Packet&& p);

  std::uint64_t packets_forwarded() const { return forwarded_; }

  /// Attach a trace recorder: one "net.switch" span per message covering
  /// first packet arrival to last packet forwarded, with a flow step.
  void set_trace(sim::TraceRecorder* trace) { trace_ = trace; }

 private:
  sim::Simulator* sim_;
  sim::Tick latency_;
  std::vector<Link*> outputs_;
  std::uint64_t forwarded_ = 0;
  sim::TraceRecorder* trace_ = nullptr;
};

}  // namespace gputn::net

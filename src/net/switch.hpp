// Multi-port switch with routed output queues and credit-based flow control.
//
// Packets arriving from any input link spend the fixed forwarding latency
// in the crossbar, are routed to an output port (Topology candidates x
// Router choice), and then either go straight onto the output link or wait
// in that port's FIFO for a credit. Credits model downstream buffer slots:
// a finite-credit port may have at most `credits_per_port` packets between
// "submitted to our link" and "dequeued by the next switch's crossbar (or
// delivered to the host)"; the consumer returns the credit at that dequeue
// instant. credits_per_port == 0 means unlimited (the seed's idealized
// star behaves exactly as before).
//
// Output queues are unbounded, so credit exhaustion throttles upstream
// ports but can never wedge the event queue: every queued packet drains as
// soon as its credit comes back, and a fabric with no traffic in flight has
// no pending switch events. Per-port obs::BusyTracker ledgers (exported by
// the Fabric as util.sw.<id>.port<p>.*) account credit occupancy as
// service time and credit-stalled packets as queue time — pure
// bookkeeping, so instrumentation never perturbs simulated time.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/message.hpp"
#include "net/routing_api.hpp"
#include "net/topology_api.hpp"
#include "sim/trace.hpp"

namespace gputn::net {

class Switch {
 public:
  /// `credits_per_port` == 0 disables flow control (unlimited credits).
  Switch(sim::Simulator& sim, int id, int radix, sim::Tick forwarding_latency,
         int credits_per_port);
  Switch(const Switch&) = delete;
  Switch& operator=(const Switch&) = delete;

  /// Wire output `port` to a link (toward a node or the next switch).
  /// Unused ports stay unattached; routing a packet to one is a logic
  /// error surfaced by the topology's candidate walk, not here.
  void attach_output(int port, Link* out);

  /// Route lookups go through `topo`/`router`; both must outlive the
  /// switch and be set before the first packet arrives.
  void set_router(const Topology* topo, const Router* router) {
    topo_ = topo;
    router_ = router;
  }

  /// Packet arrival from an input link. When the packet holds a credit of
  /// an upstream switch port, (`from_sw`, `from_port`) identify it and the
  /// credit is returned once this crossbar dequeues the packet (i.e. after
  /// the forwarding latency, when it is routed to an output queue); host
  /// injections pass from_sw == nullptr.
  void arrive(Packet&& p, Switch* from_sw, int from_port);

  /// A downstream consumer freed one of `port`'s credits (next-switch
  /// dequeue or host delivery); drains the port's queue if packets wait.
  void credit_return(int port);

  /// Queued + credit-holding packets at `port` — the adaptive router's
  /// congestion signal.
  int depth(int port) const {
    const Port& o = ports_[static_cast<std::size_t>(port)];
    return static_cast<int>(o.queue.size()) + o.inflight;
  }

  int id() const { return id_; }
  int radix() const { return static_cast<int>(ports_.size()); }
  int credits_per_port() const { return credits_; }
  /// Credits currently available at `port` (radix() when unlimited).
  int credits_available(int port) const {
    const Port& o = ports_[static_cast<std::size_t>(port)];
    return credits_ == 0 ? radix() : credits_ - o.inflight;
  }
  int inflight(int port) const {
    return ports_[static_cast<std::size_t>(port)].inflight;
  }
  std::uint64_t packets_forwarded() const { return forwarded_; }
  /// Packets that had to wait for a credit at some output port.
  std::uint64_t credit_stalls() const { return credit_stalls_; }
  const obs::BusyTracker& port_util(int port) const {
    return ports_[static_cast<std::size_t>(port)].util;
  }

  /// Attach a trace recorder: one span per message on `lane` covering
  /// first packet arrival to last packet routed, with a flow step.
  void set_trace(sim::TraceRecorder* trace, std::string lane) {
    trace_ = trace;
    lane_ = std::move(lane);
  }

 private:
  struct Port {
    Link* out = nullptr;
    std::deque<Packet> queue;  ///< credit-stalled packets (FIFO)
    int inflight = 0;          ///< packets holding one of this port's credits
    obs::BusyTracker util;
  };

  /// Post-crossbar: pick the output port and send or queue the packet.
  void route_out(Packet&& p);
  /// Take a credit and put `p` on the wire of `port`.
  void submit_out(Port& o, Packet&& p);

  sim::Simulator* sim_;
  int id_;
  sim::Tick latency_;
  int credits_;
  const Topology* topo_ = nullptr;
  const Router* router_ = nullptr;
  std::vector<Port> ports_;
  std::vector<int> scratch_;  ///< router candidate scratch (no hot allocs)
  std::uint64_t forwarded_ = 0;
  std::uint64_t credit_stalls_ = 0;
  sim::TraceRecorder* trace_ = nullptr;
  std::string lane_ = "net.switch";
};

}  // namespace gputn::net

// Point-to-point link with serialization (occupancy) and propagation delay.
//
// Packets entering the link queue FIFO on the transmitter: each occupies the
// link for `bytes / bandwidth`, then propagates for a fixed latency during
// which the next packet may already be serializing (standard pipelined wire
// model). The link hands packets to a downstream callback (switch input or
// NIC receive path).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "obs/busy.hpp"
#include "sim/sync.hpp"
#include "sim/units.hpp"

namespace gputn::net {

struct Packet;
using PacketFn = std::function<void(Packet&&)>;

/// In-flight fragment of a Message. The shared state owns the full message;
/// the last packet to arrive delivers it.
struct MessageInFlight;

struct Packet {
  std::shared_ptr<MessageInFlight> flight;
  std::uint32_t wire_bytes = 0;
  bool last = false;
};

/// What fault injection decides for one packet traversing a link.
struct FaultVerdict {
  bool drop = false;
  bool corrupt = false;       ///< flag the whole message as corrupted
  sim::Tick extra_delay = 0;  ///< jitter added to this packet's propagation
};

/// Per-link fault-injection interface, consulted once per packet in FIFO
/// transmission order (so a deterministic injector sees a deterministic
/// packet sequence). Implemented by fault::FaultModel; a null injector
/// means a perfect link.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  virtual FaultVerdict classify(const Packet& p) = 0;
};

class Link {
 public:
  Link(sim::Simulator& sim, std::string name, sim::Bandwidth bandwidth,
       sim::Tick propagation, PacketFn downstream);
  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Enqueue a packet for transmission (non-blocking; FIFO).
  void submit(Packet&& p);

  /// Attach a fault injector (nullptr = lossless). Applies to packets not
  /// yet serialized; typically wired before traffic starts.
  void set_fault_injector(FaultInjector* injector) { fault_ = injector; }

  /// Cross-shard hop (parallel DES): when set, the pump hands each packet
  /// and its absolute arrival time (serialization end + propagation +
  /// jitter) to this hook instead of scheduling `downstream` locally. The
  /// Fabric wires it to ShardEngine::post for links whose endpoints live
  /// on different shards; the propagation delay is what guarantees the
  /// deposit lands past the conservative lookahead window.
  using RemoteHop = std::function<void(sim::Tick when, Packet&& p)>;
  void set_remote(RemoteHop hop) { remote_ = std::move(hop); }

  const std::string& name() const { return name_; }
  std::uint64_t bytes_transmitted() const { return bytes_; }
  std::uint64_t packets_transmitted() const { return packets_; }
  std::uint64_t packets_dropped() const { return dropped_; }
  std::uint64_t packets_corrupted() const { return corrupted_; }

  /// Wire-occupancy ledger: busy while a packet serializes, queued while
  /// packets wait behind it (propagation is pipelined and not occupancy).
  const obs::BusyTracker& util() const { return util_; }

 private:
  sim::Task<> pump();

  sim::Simulator* sim_;
  std::string name_;
  sim::Bandwidth bandwidth_;
  sim::Tick propagation_;
  PacketFn downstream_;
  RemoteHop remote_;
  FaultInjector* fault_ = nullptr;
  sim::Channel<Packet> queue_;
  obs::BusyTracker util_;
  std::uint64_t bytes_ = 0;
  std::uint64_t packets_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t corrupted_ = 0;
};

}  // namespace gputn::net

// Network fabric: ties NICs, links, switches, topology and routing together.
//
// The fabric's shape is pluggable (FabricConfig::topology, a spec string
// resolved through net::TopologyFactory): the default "star" reproduces the
// paper's Table 2 single-switch network exactly, while "fat-tree:k=8",
// "torus:4x4x4" and "dragonfly:a=4,h=2,p=2" build multi-switch fabrics with
// inter-switch trunk links and per-port credit-based flow control
// (net/switch.hpp). A message is packetized at the transmitter into
// MTU-sized packets which pipeline through uplink -> switch graph ->
// downlink; the destination sink receives the whole Message when the last
// packet lands. With the deterministic router every (src, dst) pair uses
// one path, so per-flow FIFO ordering holds by construction; the adaptive
// router may spread a pair across paths and reorder *messages*, but a
// single message always survives intact (delivery counts packets, not
// arrival order).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/buffer_pool.hpp"
#include "net/link.hpp"
#include "net/message.hpp"
#include "net/routing_api.hpp"
#include "net/switch.hpp"
#include "net/topology_api.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace gputn::sim {
class ShardEngine;
}  // namespace gputn::sim

namespace gputn::net {

struct FabricConfig {
  sim::Bandwidth bandwidth = sim::Bandwidth::gbps(100);  // Table 2
  sim::Tick link_latency = sim::ns(100);                 // Table 2
  sim::Tick switch_latency = sim::ns(100);               // Table 2
  std::uint32_t mtu_bytes = 4096;
  std::uint32_t header_bytes = 64;  ///< wire overhead per message header
  std::uint32_t per_packet_overhead = 16;
  /// Topology spec resolved through TopologyFactory at finalize():
  /// "star" | "fat-tree:k=8" | "torus:4x4x4" | "dragonfly:a=4,h=2,p=2".
  std::string topology = "star";
  /// Routing policy resolved through RouterFactory ("deterministic" |
  /// "adaptive").
  std::string routing = "deterministic";
  /// Switch output-port credits (0 = unlimited, the seed's idealized
  /// lossless behavior). See net/switch.hpp for the credit model.
  int credits_per_port = 0;
};

/// State shared by all packets of one in-flight message.
struct MessageInFlight {
  Message msg;
  int packets_remaining = 0;
  MessageSink* sink = nullptr;
  /// Latched when fault injection corrupts any packet; copied into
  /// Message::corrupted on delivery.
  bool corrupted = false;
  /// First packet's arrival at the first switch (-1 until then); copied
  /// into Message::t_switch on delivery so the flight recorder can split
  /// wire serialization from switch queueing.
  std::int64_t t_switch = -1;
};

class Fabric {
 public:
  Fabric(sim::Simulator& sim, FabricConfig config);
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Partition the fabric across a ShardEngine (parallel DES). Must be
  /// called before the first add_node; `node_shard[i]` is the shard owning
  /// node i's simulator. finalize() then places each switch component on a
  /// shard, installs cross-shard remote hops on the edge links, and sets
  /// the engine's conservative lookahead to the minimum cross-shard link
  /// propagation. With a null engine (or one shard) the fabric behaves
  /// exactly as the sequential seed.
  void set_sharding(sim::ShardEngine* engine, std::vector<int> node_shard);

  /// The simulator that owns node `id`'s endpoint state (its uplink pump,
  /// NIC, and delivery events). Without sharding this is the fabric's one
  /// simulator.
  sim::Simulator& node_sim(NodeId id);
  /// Shard owning node `id` (0 without sharding).
  int node_shard_of(NodeId id) const;

  /// Register a node's receive sink; returns its NodeId. All nodes must be
  /// added before the first send (the switch graph is built from the final
  /// node count).
  NodeId add_node(MessageSink* sink);

  int node_count() const { return static_cast<int>(sinks_.size()); }
  const FabricConfig& config() const { return config_; }

  /// Build the topology, switches and trunk links for the current node
  /// count. Idempotent; called implicitly by the first send. Throws
  /// std::invalid_argument on an unknown/malformed topology or routing
  /// spec, or when the topology lacks capacity for the attached nodes.
  void finalize();
  bool finalized() const { return topo_ != nullptr; }

  /// The resolved topology/routing (finalizes on first use).
  const Topology& topology();
  const Router& router();
  int switch_count();
  Switch& switch_at(int id);

  /// Switches traversed src -> dst (1 on a star); finalizes on first use.
  int hop_count(NodeId src, NodeId dst);

  /// Hand a message to the wire. The transmitting NIC calls this after its
  /// DMA has staged the payload; serialization contention on the uplink is
  /// modelled by the link itself.
  void send(Message&& msg);

  /// Wire latency of a `bytes`-byte message crossing one switch with an
  /// idle network — the star reference figure (useful to sanity-check
  /// calibration in tests, and replicated by obs::ideal_wire_ps for the
  /// analyzer's blame split).
  sim::Tick ideal_latency(std::uint64_t payload_bytes) const;

  /// Hop-count-aware ideal latency src -> dst on this fabric's topology
  /// (equals the 1-arg form on a star). Finalizes on first use.
  sim::Tick ideal_latency(std::uint64_t payload_bytes, NodeId src, NodeId dst);

  std::uint64_t messages_sent() const;
  std::uint64_t bytes_sent() const;

  /// Install a per-link fault-injector factory (called with the link name,
  /// e.g. "up3"/"down0"/"sw0p4"; may return nullptr for a lossless link).
  /// Applies to links already built and to links built later.
  void set_fault_injector_provider(
      std::function<FaultInjector*(const std::string&)> provider);

  /// Publish fabric-level counters (messages/bytes, per-link utilisation,
  /// switch forwards, credit stalls, per-port credit/queue ledgers when
  /// flow control is on) into `reg`, prefixed "net."/"util.".
  void export_stats(sim::StatRegistry& reg) const;

  /// Allocate the next flow id for traffic originating at `src` (see
  /// Message::flow). Ids are per-source ((src+1) << 40 | seq) so they are
  /// unique cluster-wide yet allocated without any cross-node — and under
  /// sharding cross-thread — counter, keeping runs bit-identical at every
  /// shard count; allocation is independent of tracing so runs are
  /// identical with tracing off.
  std::uint64_t next_flow(NodeId src) {
    return ((static_cast<std::uint64_t>(src) + 1) << 40) |
           ++flow_seq_[static_cast<std::size_t>(src)];
  }

  /// Attach a trace recorder: per-message spans land on the switch lanes
  /// ("net.switch" on a single-switch fabric, "net.sw<id>" otherwise) and
  /// "net.down<dst>" with flow steps so viewer arrows pass through the
  /// fabric. nullptr detaches.
  void set_trace(sim::TraceRecorder* trace);

  Link& uplink(NodeId id) { return *uplinks_.at(id); }
  Link& downlink(NodeId id) { return *downlinks_.at(id); }

  /// Shared freelist for Message payload staging buffers. NICs acquire
  /// before the TX DMA and release once a payload has deposited (or its
  /// retransmission-window entry is acknowledged); see BufferPool for why
  /// this cannot affect timing or counters.
  BufferPool& payload_pool() { return payload_pool_; }

 private:
  /// Uplink terminus: hand a packet from node `src` to its edge switch.
  void inject(NodeId src, Packet&& p);
  /// Downlink terminus: per-packet delivery bookkeeping for node `dst`,
  /// then return the egress port's credit.
  void deliver(NodeId dst, Packet&& p);
  /// The node-side half of deliver(): packets_remaining bookkeeping and
  /// final-message hand-off to the sink. Under sharding this runs on the
  /// destination node's shard while the credit return stays on the egress
  /// switch's shard (the two touch disjoint state).
  void deliver_host(NodeId dst, Packet&& p);
  /// Simulator owning switch `s` (the fabric's one simulator without
  /// sharding). Valid after finalize().
  sim::Simulator& switch_sim(int s);
  void apply_trace();

  sim::Simulator* sim_;
  FabricConfig config_;
  std::unique_ptr<Topology> topo_;      // null until finalize()
  std::unique_ptr<Router> router_;
  std::vector<std::unique_ptr<Switch>> switches_;
  // Per node: uplink (node -> edge switch) and downlink (egress switch ->
  // node); multi-switch topologies add directed trunk links ("sw<s>p<p>",
  // named for their transmitting port). Downlinks are built at finalize()
  // because their owning simulator is the egress switch's shard.
  std::vector<std::unique_ptr<Link>> uplinks_;
  std::vector<std::unique_ptr<Link>> downlinks_;
  std::vector<std::unique_ptr<Link>> trunks_;
  std::vector<HostPort> host_port_;  // per node, filled at finalize()
  std::vector<MessageSink*> sinks_;
  std::function<FaultInjector*(const std::string&)> fault_provider_;
  // Parallel DES partition (null engine = sequential). switch_shard_ is
  // computed at finalize(): switches connected by trunks form one
  // component (trunk hand-off is a direct crossbar call and must stay on
  // one shard); components round-robin over shards.
  sim::ShardEngine* engine_ = nullptr;
  std::vector<int> node_shard_;
  std::vector<int> switch_shard_;
  // Per-source-node ledgers: sends happen on the source's shard, so the
  // counters must not share a cache line or a race across workers. Summed
  // on export (post-run, single-threaded).
  std::vector<std::uint64_t> messages_by_src_;
  std::vector<std::uint64_t> bytes_by_src_;
  std::vector<std::uint64_t> flow_seq_;
  BufferPool payload_pool_;
  sim::TraceRecorder* trace_ = nullptr;
};

}  // namespace gputn::net

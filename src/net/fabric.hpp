// Network fabric: ties NICs, links, and the switch together.
//
// Topology (Table 2): star — every node has an uplink to a single central
// switch and a downlink from it. A message is packetized at the transmitter
// into MTU-sized packets which pipeline through uplink -> switch -> downlink;
// the destination sink receives the whole Message when the last packet
// lands. Per-path FIFO ordering is guaranteed by construction.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/buffer_pool.hpp"
#include "net/link.hpp"
#include "net/message.hpp"
#include "net/switch.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace gputn::net {

struct FabricConfig {
  sim::Bandwidth bandwidth = sim::Bandwidth::gbps(100);  // Table 2
  sim::Tick link_latency = sim::ns(100);                 // Table 2
  sim::Tick switch_latency = sim::ns(100);               // Table 2
  std::uint32_t mtu_bytes = 4096;
  std::uint32_t header_bytes = 64;  ///< wire overhead per message header
  std::uint32_t per_packet_overhead = 16;
};

/// State shared by all packets of one in-flight message.
struct MessageInFlight {
  Message msg;
  int packets_remaining = 0;
  MessageSink* sink = nullptr;
  /// Latched when fault injection corrupts any packet; copied into
  /// Message::corrupted on delivery.
  bool corrupted = false;
  /// First packet's arrival at the switch (-1 until then); copied into
  /// Message::t_switch on delivery so the flight recorder can split wire
  /// serialization from switch queueing.
  std::int64_t t_switch = -1;
};

class Fabric {
 public:
  Fabric(sim::Simulator& sim, FabricConfig config);
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Register a node's receive sink; returns its NodeId. All nodes must be
  /// added before the first send.
  NodeId add_node(MessageSink* sink);

  int node_count() const { return static_cast<int>(sinks_.size()); }
  const FabricConfig& config() const { return config_; }

  /// Hand a message to the wire. The transmitting NIC calls this after its
  /// DMA has staged the payload; serialization contention on the uplink is
  /// modelled by the link itself.
  void send(Message&& msg);

  /// Wire latency of a `bytes`-byte message with an idle network (useful to
  /// sanity-check calibration in tests).
  sim::Tick ideal_latency(std::uint64_t payload_bytes) const;

  std::uint64_t messages_sent() const { return messages_; }
  std::uint64_t bytes_sent() const { return bytes_; }

  /// Install a per-link fault-injector factory (called with the link name,
  /// e.g. "up3"/"down0"; may return nullptr for a lossless link). Applies
  /// to links already built and to links of nodes added later.
  void set_fault_injector_provider(
      std::function<FaultInjector*(const std::string&)> provider);

  /// Publish fabric-level counters (messages/bytes, per-link utilisation,
  /// switch forwards, injected drops) into `reg`, prefixed "net.".
  void export_stats(sim::StatRegistry& reg) const;

  /// Allocate the next monotonic flow id (see Message::flow). Shared by
  /// every NIC on the fabric so ids are unique cluster-wide; allocation is
  /// independent of tracing so runs are identical with tracing off.
  std::uint64_t next_flow() { return ++flow_counter_; }

  /// Attach a trace recorder: per-message spans land on "net.switch" and
  /// "net.down<dst>" lanes with flow steps so viewer arrows pass through
  /// the fabric. nullptr detaches.
  void set_trace(sim::TraceRecorder* trace);

  Link& uplink(NodeId id) { return *uplinks_.at(id); }
  Link& downlink(NodeId id) { return *downlinks_.at(id); }

  /// Shared freelist for Message payload staging buffers. NICs acquire
  /// before the TX DMA and release once a payload has deposited (or its
  /// retransmission-window entry is acknowledged); see BufferPool for why
  /// this cannot affect timing or counters.
  BufferPool& payload_pool() { return payload_pool_; }

 private:
  sim::Simulator* sim_;
  FabricConfig config_;
  Switch switch_;
  // Per node: uplink (node -> switch) and downlink (switch -> node).
  std::vector<std::unique_ptr<Link>> uplinks_;
  std::vector<std::unique_ptr<Link>> downlinks_;
  std::vector<MessageSink*> sinks_;
  std::function<FaultInjector*(const std::string&)> fault_provider_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t flow_counter_ = 0;
  BufferPool payload_pool_;
  sim::TraceRecorder* trace_ = nullptr;
};

}  // namespace gputn::net

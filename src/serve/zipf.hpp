// Bounded Zipf(s) sampler over {0, ..., n-1} for key popularity.
//
// Serving traffic is never uniform: a small set of hot keys absorbs most
// requests (the classic YCSB/production-trace shape), and that skew is what
// concentrates load on one shard's NIC. The sampler precomputes the CDF of
// p(k) ~ 1 / (k+1)^s once and inverts it by binary search, so sampling is
// a pure function of one uniform draw — the caller owns the RNG, which
// keeps request schedules reproducible from a single seed (the
// `rdma-dm-sim` WorkloadRunner convention: `key = zipf(U(rng))`).
//
// skew == 0 degenerates to the uniform distribution; rank 0 is the hottest
// key. Memory is 8 bytes per key, fine for the simulated keyspaces here.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace gputn::serve {

class Zipf {
 public:
  Zipf(std::uint64_t n, double skew) : n_(n), skew_(skew) {
    if (n == 0) throw std::invalid_argument("zipf: empty keyspace");
    if (skew < 0.0) throw std::invalid_argument("zipf: negative skew");
    cdf_.resize(n);
    double sum = 0.0;
    for (std::uint64_t k = 0; k < n; ++k) {
      sum += 1.0 / std::pow(static_cast<double>(k + 1), skew);
      cdf_[k] = sum;
    }
    for (std::uint64_t k = 0; k < n; ++k) cdf_[k] /= sum;
    cdf_[n - 1] = 1.0;  // guard against rounding: u < 1 always lands
  }

  std::uint64_t keyspace() const { return n_; }
  double skew() const { return skew_; }

  /// Map one uniform draw u in [0, 1) to a key; rank 0 is hottest.
  std::uint64_t sample(double u) const {
    auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end()) --it;
    return static_cast<std::uint64_t>(it - cdf_.begin());
  }

  /// Probability mass of key k (for empirical-skew checks in tests).
  double pmf(std::uint64_t k) const {
    if (k >= n_) return 0.0;
    return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
  }

 private:
  std::uint64_t n_;
  double skew_;
  std::vector<double> cdf_;
};

}  // namespace gputn::serve

#include "serve/serve.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "nic/qp.hpp"
#include "serve/zipf.hpp"
#include "sim/random.hpp"
#include "sim/sync.hpp"

namespace gputn::serve {

namespace {

/// Value signature: the first 8 bytes of every stored value are this
/// key-derived stamp, preserved by puts, so gets can verify end to end.
std::uint64_t key_sig(std::uint64_t key) {
  std::uint64_t x = key * 0x9e3779b97f4a7c15ull + 0xd1b54a32d192ed03ull;
  x ^= x >> 31;
  return x * 0xbf58476d1ce4e5b9ull;
}

/// Unique trigger tag per (server slot, request round); threshold is always
/// 1, so the trigger table's hash lookup stays O(1) per fire.
core::Tag slot_tag(int slot, std::uint64_t round) {
  return (static_cast<core::Tag>(slot) << 32) | round;
}

/// Flight-recorder op tag for the put (server, slot, round): the client's
/// request put and the server's response put carry the same tag, so the
/// analyzer sees one round-trip op. slot_tag() is only unique per server,
/// hence the server-qualified encoding; the top bits keep put tags disjoint
/// from get tags (and from 0 = untagged).
std::uint64_t put_op_tag(int s, int slot, std::uint64_t round) {
  return (2ull << 62) | (static_cast<std::uint64_t>(s) << 44) |
         (static_cast<std::uint64_t>(slot) << 24) | round;
}

/// One pre-generated open-loop request.
struct Req {
  sim::Tick at = 0;  ///< intended arrival, relative to traffic start
  bool is_get = true;
  int server = 0;
  std::uint64_t key = 0;
  std::uint64_t round = 0;  ///< put sequence number on its (slot, server)
};

/// Per-server request slots and store shard.
struct ServerState {
  mem::Addr value_slab = 0;
  mem::Addr req_slab = 0;
  mem::Addr staging_slab = 0;
  std::vector<mem::Addr> req_flag;       ///< per slot
  std::vector<std::uint64_t> expected;   ///< puts per slot (schedule total)
  std::vector<std::uint64_t> processed;  ///< puts applied so far
  std::vector<int> active;               ///< slots with expected > 0
};

/// Per-(tenant, worker) client-side buffers. The get buffer/flag and the
/// put request stage are shared across servers (a worker has at most one
/// request outstanding), but the put response landing zone is per *server*:
/// response flag values are the (worker, server) round sequence, and a
/// shared flag would let server A's round-r response satisfy a wait for
/// server B's round r.
struct ClientSlot {
  mem::Addr req_stage = 0;
  mem::Addr get_buf = 0;
  mem::Addr get_flag = 0;
  std::vector<mem::Addr> resp_buf;   ///< per server
  std::vector<mem::Addr> resp_flag;  ///< per server
};

/// Completion multiplexer: one poller coroutine per client node scans all
/// outstanding flag waits at the CPU poll interval (epoll-style), so client
/// CPU time scales with nodes, not with outstanding requests.
struct Reactor {
  explicit Reactor(sim::Simulator& sim) : cond(sim) {}
  struct Waiter {
    mem::Addr addr;
    std::uint64_t value;
    sim::Event* ev;
  };
  std::vector<Waiter> waiters;
  sim::Condition cond;
};

struct Workspace {
  Workspace(const cluster::SystemConfig& sys, const ServeConfig& cfg)
      : engine(std::max(1, std::min(cfg.shards, cfg.clients + cfg.servers))),
        cluster(engine, sys, cfg.clients + cfg.servers),
        config(cfg) {
    slot_bytes = (16 + cfg.value_bytes + 63) / 64 * 64;
    nslots = cfg.tenants * cfg.window;
    generate_schedule();
    build_memory();
    // Client-side machinery is per client node (reactor, traffic-release
    // event, SLO reporter, error counter): under the sharded engine a
    // client node's workers run on that node's shard, so every mutable
    // client-side object must live with its node. The per-node SLO
    // reporters are merged exactly (disjoint tenant sets) after the run.
    for (int c = 0; c < cfg.clients; ++c) {
      reactors.push_back(std::make_unique<Reactor>(node_sim(c)));
      start.push_back(std::make_unique<sim::Event>(node_sim(c)));
      slo_node.push_back(std::make_unique<SloReporter>(cfg.tenants, cfg.slo));
    }
    errors_node.assign(static_cast<std::size_t>(cfg.clients), 0);
    get_tag.assign(static_cast<std::size_t>(cfg.tenants), 0);
    nic::QpConfig qpc{cfg.qp_batch, cfg.qp_flush_timeout};
    for (int t = 0; t < cfg.tenants; ++t) {
      qps.push_back(std::make_unique<nic::Qp>(
          node_sim(client_of(t)), cluster.node(client_of(t)).nic(), qpc));
    }
  }

  /// The simulator owning node `id` (all of them when --shards 1).
  sim::Simulator& node_sim(int id) { return cluster.node_sim(id); }

  int client_of(int tenant) const { return tenant % config.clients; }
  int server_node(int s) const { return config.clients + s; }
  int slot_of(int tenant, int worker) const {
    return tenant * config.window + worker;
  }
  mem::Addr value_addr(int s, std::uint64_t key) const {
    return srv[static_cast<std::size_t>(s)].value_slab +
           (key / static_cast<std::uint64_t>(config.servers)) *
               config.value_bytes;
  }
  mem::Addr slot_addr(int s, int slot) const {
    return srv[static_cast<std::size_t>(s)].req_slab +
           static_cast<std::uint64_t>(slot) * slot_bytes;
  }
  mem::Addr staging_addr(int s, int slot) const {
    return srv[static_cast<std::size_t>(s)].staging_slab +
           static_cast<std::uint64_t>(slot) * config.value_bytes;
  }

  /// Pre-draw every request from the seed: inter-arrival (exponential),
  /// op kind, key — in that fixed order — so the schedule is a pure
  /// function of (seed, tenant) and runs are bit-identical.
  void generate_schedule() {
    Zipf zipf(config.keyspace, config.zipf);
    sched.resize(static_cast<std::size_t>(config.tenants));
    for (int t = 0; t < config.tenants; ++t) {
      sim::Rng rng(config.seed * 0x9e3779b97f4a7c15ull +
                   static_cast<std::uint64_t>(t) + 1);
      // round counter per (worker, server) — put responses for one slot
      // carry strictly increasing flag values.
      std::vector<std::uint64_t> rounds(
          static_cast<std::size_t>(config.window * config.servers), 0);
      double at_ps = 0.0;
      auto& reqs = sched[static_cast<std::size_t>(t)];
      reqs.reserve(static_cast<std::size_t>(config.requests));
      for (int i = 0; i < config.requests; ++i) {
        double u = rng.uniform();
        at_ps += -std::log(1.0 - u) * 1e12 / config.offered_load;
        Req r;
        r.at = static_cast<sim::Tick>(at_ps);
        r.is_get = rng.uniform() < config.read_fraction;
        r.key = zipf.sample(rng.uniform());
        r.server = static_cast<int>(
            r.key % static_cast<std::uint64_t>(config.servers));
        if (!r.is_get) {
          int w = i % config.window;
          r.round = ++rounds[static_cast<std::size_t>(
              w * config.servers + r.server)];
        }
        reqs.push_back(r);
      }
    }
  }

  void build_memory() {
    srv.resize(static_cast<std::size_t>(config.servers));
    std::uint64_t keys_per_shard =
        config.keyspace / static_cast<std::uint64_t>(config.servers) + 1;
    for (int s = 0; s < config.servers; ++s) {
      auto& node = cluster.node(server_node(s));
      auto& st = srv[static_cast<std::size_t>(s)];
      st.value_slab = node.memory().alloc(keys_per_shard * config.value_bytes);
      st.req_slab =
          node.memory().alloc(static_cast<std::uint64_t>(nslots) * slot_bytes);
      st.staging_slab = node.memory().alloc(
          static_cast<std::uint64_t>(nslots) * config.value_bytes);
      st.expected.assign(static_cast<std::size_t>(nslots), 0);
      st.processed.assign(static_cast<std::size_t>(nslots), 0);
      for (int slot = 0; slot < nslots; ++slot) {
        st.req_flag.push_back(node.rt().alloc_flag());
      }
    }
    // Seed every key's value with its signature (version 0).
    for (std::uint64_t k = 0; k < config.keyspace; ++k) {
      int s = static_cast<int>(k % static_cast<std::uint64_t>(config.servers));
      auto& memory = cluster.node(server_node(s)).memory();
      memory.store<std::uint64_t>(value_addr(s, k), key_sig(k));
      memory.store<std::uint64_t>(value_addr(s, k) + 8, 0);
    }
    // Per-slot put totals (the kernels' / proxies' exit condition).
    for (int t = 0; t < config.tenants; ++t) {
      for (std::size_t i = 0; i < sched[static_cast<std::size_t>(t)].size();
           ++i) {
        const Req& r = sched[static_cast<std::size_t>(t)][i];
        if (r.is_get) continue;
        int slot = slot_of(t, static_cast<int>(i) % config.window);
        ++srv[static_cast<std::size_t>(r.server)]
              .expected[static_cast<std::size_t>(slot)];
      }
    }
    for (auto& st : srv) {
      for (int slot = 0; slot < nslots; ++slot) {
        if (st.expected[static_cast<std::size_t>(slot)] > 0) {
          st.active.push_back(slot);
        }
      }
    }
    cli.resize(static_cast<std::size_t>(nslots));
    for (int t = 0; t < config.tenants; ++t) {
      auto& node = cluster.node(client_of(t));
      for (int w = 0; w < config.window; ++w) {
        auto& c = cli[static_cast<std::size_t>(slot_of(t, w))];
        c.req_stage = node.memory().alloc(slot_bytes);
        c.get_buf = node.memory().alloc(config.value_bytes);
        c.get_flag = node.rt().alloc_flag();
        for (int s = 0; s < config.servers; ++s) {
          c.resp_buf.push_back(node.memory().alloc(config.value_bytes));
          c.resp_flag.push_back(node.rt().alloc_flag());
        }
      }
    }
  }

  /// The response put for (server s, slot, round) — identical descriptor on
  /// both strategies; only who fires it differs.
  nic::PutDesc response_put(int s, int slot, std::uint64_t round) {
    int t = slot / config.window;
    nic::PutDesc p;
    p.target = client_of(t);
    p.local_addr = staging_addr(s, slot);
    p.bytes = config.value_bytes;
    p.remote_addr =
        cli[static_cast<std::size_t>(slot)].resp_buf[static_cast<std::size_t>(s)];
    p.remote_flag = cli[static_cast<std::size_t>(slot)]
                        .resp_flag[static_cast<std::size_t>(s)];
    p.flag_value = round;
    p.op_tag = put_op_tag(s, slot, round);
    p.tenant = t;
    return p;
  }

  /// Apply one put functionally: bump the stored version, stage the
  /// response (signature echo + round). Timing is charged by the caller.
  void apply_put(int s, int slot, std::uint64_t key, std::uint64_t round,
                 mem::Memory& memory) {
    memory.store<std::uint64_t>(value_addr(s, key) + 8, round);
    memory.store<std::uint64_t>(staging_addr(s, slot), key_sig(key));
    memory.store<std::uint64_t>(staging_addr(s, slot) + 8, round);
  }

  sim::Task<> wait_flag(int client_node, mem::Addr addr, std::uint64_t value) {
    auto& node = cluster.node(client_node);
    if (node.memory().load<std::uint64_t>(addr) >= value) co_return;
    sim::Event ev(node_sim(client_node));
    auto& r = *reactors[static_cast<std::size_t>(client_node)];
    r.waiters.push_back({addr, value, &ev});
    r.cond.notify_all();
    co_await ev.wait();
  }

  sim::ShardEngine engine;
  cluster::Cluster cluster;
  ServeConfig config;
  /// Traffic release after server setup, one latch per client node (all
  /// triggered at the same tick, scheduled by the setup barrier).
  std::vector<std::unique_ptr<sim::Event>> start;
  sim::Tick traffic_start = 0;
  std::uint64_t slot_bytes = 0;
  int nslots = 0;
  std::vector<std::vector<Req>> sched;  ///< [tenant]
  std::vector<ServerState> srv;
  std::vector<ClientSlot> cli;
  std::vector<std::unique_ptr<Reactor>> reactors;     ///< per client node
  std::vector<std::unique_ptr<SloReporter>> slo_node; ///< per client node
  std::vector<std::unique_ptr<nic::Qp>> qps;          ///< per tenant
  std::vector<std::uint64_t> errors_node;             ///< per client node
  /// Monotonic get op tag per tenant (tenant-qualified so it is
  /// deterministic on every shard count — a tenant's requests issue in
  /// node-local simulation order): pairs each get request with its reply
  /// in the flight recorder.
  std::vector<std::uint64_t> get_tag;
};

sim::Task<> reactor_loop(Workspace& w, int client_node) {
  auto& node = w.cluster.node(client_node);
  auto& r = *w.reactors[static_cast<std::size_t>(client_node)];
  for (;;) {
    if (r.waiters.empty()) {
      co_await r.cond.wait();
      continue;
    }
    co_await node.cpu().compute(node.cpu().config().poll_interval);
    for (std::size_t i = 0; i < r.waiters.size();) {
      const auto& wt = r.waiters[i];
      if (node.memory().load<std::uint64_t>(wt.addr) >= wt.value) {
        wt.ev->trigger();
        r.waiters[i] = r.waiters.back();
        r.waiters.pop_back();
      } else {
        ++i;
      }
    }
  }
}

/// One open-loop worker: issues this (tenant, worker)'s share of the
/// schedule. Latency is measured from the request's *intended* arrival, so
/// time spent waiting for the worker (window exhausted) or for the server
/// counts against the SLO — the open-loop queueing property.
sim::Task<> client_worker(Workspace& w, int t, int wk) {
  const ServeConfig& cfg = w.config;
  const int cn = w.client_of(t);
  auto& node = w.cluster.node(cn);
  auto& csim = w.node_sim(cn);
  auto& cpu = node.cpu();
  auto& memory = node.memory();
  const auto& reqs = w.sched[static_cast<std::size_t>(t)];
  const int slot = w.slot_of(t, wk);
  auto& c = w.cli[static_cast<std::size_t>(slot)];

  co_await w.start[static_cast<std::size_t>(cn)]->wait();
  for (std::size_t i = static_cast<std::size_t>(wk); i < reqs.size();
       i += static_cast<std::size_t>(cfg.window)) {
    const Req& rq = reqs[i];
    sim::Tick at = w.traffic_start + rq.at;
    if (csim.now() < at) co_await csim.delay(at - csim.now());
    bool ok = false;
    if (rq.is_get) {
      // The NIC's get reply always raises the flag to 1: reset before reuse.
      memory.store<std::uint64_t>(c.get_flag, 0);
      co_await cpu.compute(cpu.config().post_cost);
      nic::GetDesc g;
      g.target = w.server_node(rq.server);
      g.local_addr = c.get_buf;
      g.bytes = cfg.value_bytes;
      g.remote_addr = w.value_addr(rq.server, rq.key);
      g.local_flag = c.get_flag;
      g.op_tag = (1ull << 62) | (static_cast<std::uint64_t>(t) << 40) |
                 ++w.get_tag[static_cast<std::size_t>(t)];
      g.tenant = t;
      w.qps[static_cast<std::size_t>(t)]->post(g);
      co_await w.wait_flag(cn, c.get_flag, 1);
      ok = memory.load<std::uint64_t>(c.get_buf) == key_sig(rq.key);
    } else {
      memory.store<std::uint64_t>(c.req_stage, rq.key);
      memory.store<std::uint64_t>(c.req_stage + 8, rq.round);
      co_await cpu.compute(cpu.config().post_cost);
      nic::PutDesc p;
      p.target = w.server_node(rq.server);
      p.local_addr = c.req_stage;
      p.bytes = w.slot_bytes;
      p.remote_addr = w.slot_addr(rq.server, slot);
      p.remote_flag = w.srv[static_cast<std::size_t>(rq.server)]
                          .req_flag[static_cast<std::size_t>(slot)];
      p.flag_value = rq.round;
      p.op_tag = put_op_tag(rq.server, slot, rq.round);
      p.tenant = t;
      w.qps[static_cast<std::size_t>(t)]->post(p);
      auto sv = static_cast<std::size_t>(rq.server);
      co_await w.wait_flag(cn, c.resp_flag[sv], rq.round);
      ok = memory.load<std::uint64_t>(c.resp_buf[sv]) == key_sig(rq.key) &&
           memory.load<std::uint64_t>(c.resp_buf[sv] + 8) == rq.round;
    }
    if (!ok) ++w.errors_node[static_cast<std::size_t>(cn)];
    w.slo_node[static_cast<std::size_t>(cn)]->record(t, csim.now() - at,
                                                     rq.is_get,
                                                     cfg.value_bytes);
  }
}

/// CPU-driven server: one host proxy polls the request slots and posts
/// every response itself. ~(compute + post) of serial core time per put
/// bounds throughput — the critical-path CPU cost GPU-TN removes.
sim::Task<> cpu_server(Workspace& w, int s, sim::Tick& ready_at) {
  auto& node = w.cluster.node(w.server_node(s));
  auto& cpu = node.cpu();
  auto& memory = node.memory();
  auto& st = w.srv[static_cast<std::size_t>(s)];
  ready_at = w.node_sim(w.server_node(s)).now();
  std::uint64_t remaining = 0;
  for (int slot : st.active) {
    remaining += st.expected[static_cast<std::size_t>(slot)];
  }
  while (remaining > 0) {
    bool progress = false;
    for (int slot : st.active) {
      auto sl = static_cast<std::size_t>(slot);
      if (st.processed[sl] >= st.expected[sl]) continue;
      std::uint64_t want = st.processed[sl] + 1;
      if (memory.load<std::uint64_t>(st.req_flag[sl]) < want) continue;
      std::uint64_t key =
          memory.load<std::uint64_t>(w.slot_addr(s, slot));
      co_await cpu.compute(w.config.request_compute);
      w.apply_put(s, slot, key, want, memory);
      co_await node.rt().put_nb(w.response_put(s, slot, want));
      st.processed[sl] = want;
      --remaining;
      progress = true;
    }
    if (!progress) co_await cpu.compute(cpu.config().poll_interval);
  }
}

/// GPU-TN server: launch the persistent serving kernel, then pre-register
/// one triggered response put per (slot, round) — round-major so early
/// rounds are armed first; relaxed synchronization (§3.2) covers any store
/// that races a late registration. Posting cost is amortized per 64-entry
/// descriptor-ring refill. Traffic is released only after setup, so the
/// serving phase itself never touches the host CPU.
sim::Task<> gputn_server(Workspace& w, int s, sim::Tick& ready_at) {
  auto& node = w.cluster.node(w.server_node(s));
  auto& st = w.srv[static_cast<std::size_t>(s)];
  if (st.active.empty()) {
    ready_at = w.node_sim(w.server_node(s)).now();
    co_return;
  }

  mem::Addr trig = node.rt().trigger_addr();
  const sim::Tick compute = w.config.request_compute;
  gpu::KernelDesc k;
  k.name = "serve-s" + std::to_string(s);
  int cu_slots =
      node.gpu().config().cu_count * node.gpu().config().max_wgs_per_cu;
  k.num_wgs = std::min(static_cast<int>(st.active.size()), cu_slots);
  k.fn = [ws = &w, s, trig, compute](gpu::WorkGroupCtx& ctx) -> sim::Task<> {
    auto& state = ws->srv[static_cast<std::size_t>(s)];
    std::vector<int> mine;
    for (std::size_t i = static_cast<std::size_t>(ctx.wg_id());
         i < state.active.size();
         i += static_cast<std::size_t>(ctx.num_wgs())) {
      mine.push_back(state.active[i]);
    }
    for (;;) {
      bool all_done = true;
      for (int slot : mine) {
        auto sl = static_cast<std::size_t>(slot);
        if (state.processed[sl] >= state.expected[sl]) continue;
        all_done = false;
        std::uint64_t want = state.processed[sl] + 1;
        // System-scope acquire load doubles as the poll pacing.
        std::uint64_t v = co_await ctx.load_system(state.req_flag[sl]);
        if (v < want) continue;
        std::uint64_t key =
            ctx.load_data<std::uint64_t>(ws->slot_addr(s, slot));
        co_await ctx.compute(compute);
        ws->apply_put(s, slot, key, want, ctx.mem());
        ctx.mark_dirty();
        co_await ctx.fence_system();
        co_await ctx.store_system(trig, slot_tag(slot, want));
        state.processed[sl] = want;
      }
      if (all_done) break;
    }
  };
  auto rec = co_await node.rt().launch(std::move(k));

  auto& cpu = node.cpu();
  std::uint64_t max_round = 0;
  for (int slot : st.active) {
    max_round =
        std::max(max_round, st.expected[static_cast<std::size_t>(slot)]);
  }
  int in_batch = 0;
  for (std::uint64_t round = 1; round <= max_round; ++round) {
    for (int slot : st.active) {
      if (round > st.expected[static_cast<std::size_t>(slot)]) continue;
      if (in_batch == 0) co_await cpu.compute(cpu.config().post_cost);
      in_batch = (in_batch + 1) % 64;
      node.triggered().register_put(slot_tag(slot, round), 1,
                                    w.response_put(s, slot, round));
    }
  }
  ready_at = w.node_sim(w.server_node(s)).now();
  co_await rec->done.wait();
}

}  // namespace

ServeResult run_serve(const ServeConfig& cfg,
                      const cluster::SystemConfig& sys) {
  if (cfg.strategy != workloads::Strategy::kCpu &&
      cfg.strategy != workloads::Strategy::kGpuTn) {
    throw std::invalid_argument(
        "serve: strategy must be CPU (host proxy) or GPU-TN");
  }
  if (cfg.clients < 1 || cfg.servers < 1 || cfg.tenants < 1 ||
      cfg.window < 1 || cfg.requests < 1) {
    throw std::invalid_argument("serve: counts must be >= 1");
  }
  if (cfg.nodes != 0 && cfg.nodes != cfg.clients + cfg.servers) {
    throw std::invalid_argument(
        "serve: node count is --clients + --servers; do not pass --nodes");
  }
  if (cfg.keyspace < 1) throw std::invalid_argument("serve: empty keyspace");
  if (cfg.value_bytes < 16) {
    throw std::invalid_argument("serve: value_bytes must be >= 16");
  }
  if (cfg.read_fraction < 0.0 || cfg.read_fraction > 1.0) {
    throw std::invalid_argument("serve: read_fraction outside [0, 1]");
  }
  if (cfg.offered_load <= 0.0) {
    throw std::invalid_argument("serve: offered_load must be > 0");
  }

  cluster::SystemConfig adjusted = workloads::with_fabric_overrides(cfg, sys);
  std::uint64_t footprint =
      cfg.keyspace * cfg.value_bytes +
      static_cast<std::uint64_t>(cfg.tenants * cfg.window) *
          (4 * cfg.value_bytes + 512);
  adjusted.dram_bytes = std::max(adjusted.dram_bytes, footprint + (8u << 20));
  if (cfg.strategy == workloads::Strategy::kGpuTn) {
    // One unique tag per (slot, round) — far beyond the associative CAM.
    adjusted.triggered.table.lookup = core::LookupKind::kHash;
  }
  if (cfg.nic_rate_limit > 0.0) {
    adjusted.nic.rate_limit.ops_per_sec = cfg.nic_rate_limit;
    adjusted.nic.rate_limit.burst = cfg.nic_rate_burst;
  }

  Workspace w(adjusted, cfg);
  if (cfg.trace != nullptr) w.cluster.enable_tracing(*cfg.trace);
  if (cfg.timeseries != nullptr) w.cluster.attach_timeseries(*cfg.timeseries);
  if (cfg.flight != nullptr) w.cluster.attach_flight(*cfg.flight);

  for (int c = 0; c < cfg.clients; ++c) {
    w.node_sim(c).spawn(reactor_loop(w, c), "serve-reactor");
  }
  std::vector<std::vector<sim::ProcessHandle>> by_shard(
      static_cast<std::size_t>(w.engine.shards()));
  std::vector<sim::Tick> ready(static_cast<std::size_t>(cfg.servers), -1);
  for (int s = 0; s < cfg.servers; ++s) {
    int node = w.server_node(s);
    by_shard[static_cast<std::size_t>(w.cluster.node_shard(node))].push_back(
        w.node_sim(node).spawn(
            cfg.strategy == workloads::Strategy::kGpuTn
                ? gputn_server(w, s, ready[static_cast<std::size_t>(s)])
                : cpu_server(w, s, ready[static_cast<std::size_t>(s)]),
            "serve-server"));
  }
  for (int t = 0; t < cfg.tenants; ++t) {
    int node = w.client_of(t);
    for (int wk = 0; wk < cfg.window; ++wk) {
      by_shard[static_cast<std::size_t>(w.cluster.node_shard(node))]
          .push_back(w.node_sim(node).spawn(client_worker(w, t, wk),
                                            "serve-client"));
    }
  }
  // Per-shard completion monitors (see allreduce.cpp for rationale);
  // reactors are excluded — they idle forever and are reaped at teardown.
  std::vector<sim::Tick> shard_done(by_shard.size(), -1);
  for (std::size_t s = 0; s < by_shard.size(); ++s) {
    if (by_shard[s].empty()) {
      shard_done[s] = 0;
      continue;
    }
    w.engine.shard(static_cast<int>(s)).spawn(
        [](sim::Simulator& sh, std::vector<sim::ProcessHandle> hs,
           sim::Tick& out) -> sim::Task<> {
          co_await sim::join_all(std::move(hs));
          out = sh.now();
        }(w.engine.shard(static_cast<int>(s)), std::move(by_shard[s]),
          shard_done[s]),
        "monitor");
  }

  // Phase A — server setup, driven in single-tick windows so no shard
  // clock overruns the traffic-release tick (a shard hosting both a server
  // and clients would otherwise race past it on kernel-poll events).
  // Server readiness ticks are node-local and deterministic, so the
  // release tick max(ready) is identical at every shard count — and equal
  // to the tick the sequential release coroutine fired at.
  auto all_ready = [&] {
    for (sim::Tick t : ready) {
      if (t < 0) return false;
    }
    return true;
  };
  while (!all_ready()) {
    sim::Tick g = w.engine.next_time();
    if (g >= sim::sec(10)) {
      throw std::runtime_error("serve: server setup never completed");
    }
    w.engine.step(g);
  }
  sim::Tick t_rel = 0;
  for (sim::Tick t : ready) t_rel = std::max(t_rel, t);
  w.traffic_start = t_rel;
  // Phase B — release traffic: trigger every client node's start latch at
  // the same tick. Phase A's single-tick windows guarantee every shard
  // clock is <= t_rel, so the release is never in any shard's past; the
  // first client send reaches any advanced server shard at least one wire
  // latency (= the engine lookahead) later.
  for (int c = 0; c < cfg.clients; ++c) {
    sim::Event* ev = w.start[static_cast<std::size_t>(c)].get();
    w.node_sim(c).schedule_at(t_rel, [ev] { ev->trigger(); });
  }
  w.engine.run_until(sim::sec(10));
  sim::Tick finished_at = -1;
  for (sim::Tick t : shard_done) {
    if (t < 0) {
      throw std::runtime_error("serve: deadlocked (offered load "
                               "unserviceable within the 10 s simulation "
                               "budget)");
    }
    finished_at = std::max(finished_at, t);
  }
  w.cluster.flush_flight();

  ServeResult res;
  res.strategy = cfg.strategy;
  res.nodes = cfg.clients + cfg.servers;
  res.label = "serve";
  res.mode = workloads::strategy_name(cfg.strategy);
  res.detail = std::to_string(cfg.tenants) + " tenants x " +
               std::to_string(cfg.requests) + " req @ " +
               std::to_string(static_cast<std::uint64_t>(cfg.offered_load)) +
               "/s, zipf " + std::to_string(cfg.zipf).substr(0, 4) + ", rw " +
               std::to_string(cfg.read_fraction).substr(0, 4) + ", " +
               std::to_string(cfg.clients) + "c+" +
               std::to_string(cfg.servers) + "s";
  res.total_time = finished_at;
  res.setup_time = w.traffic_start;
  res.serve_window = finished_at - w.traffic_start;
  // Merge the per-client-node reporters (disjoint tenant sets, exact
  // bucket-wise merge) into one run-level view.
  SloReporter slo(cfg.tenants, cfg.slo);
  for (auto& r : w.slo_node) slo.absorb(*r);
  std::uint64_t errors = 0;
  for (std::uint64_t e : w.errors_node) errors += e;
  res.requests_total = slo.total_ops();
  w.cluster.export_net_stats(res.net_stats, res.total_time);
  slo.export_into(res.net_stats);
  res.net_stats.counter("serve.setup_ps") =
      static_cast<std::uint64_t>(res.setup_time);
  res.net_stats.counter("serve.window_ps") =
      static_cast<std::uint64_t>(res.serve_window);
  for (auto& qp : w.qps) {
    res.net_stats.counter("serve.qp.posted") += qp->posted();
    res.net_stats.counter("serve.qp.doorbells") += qp->doorbells();
    res.net_stats.counter("serve.qp.flush.batch") += qp->batch_flushes();
    res.net_stats.counter("serve.qp.flush.timeout") += qp->timeout_flushes();
    res.net_stats.histogram("serve.qp.occupancy").merge(qp->occupancy());
  }
  res.tenants = slo.summaries();
  std::uint64_t expected_total =
      static_cast<std::uint64_t>(cfg.tenants) *
      static_cast<std::uint64_t>(cfg.requests);
  res.correct = errors == 0 && slo.total_ops() == expected_total;
  if (!cfg.quiet) {
    res.report();
    std::fputs(slo.table(res.serve_window).c_str(), stdout);
  }
  return res;
}

ServeResult run_serve(const ServeConfig& cfg) {
  return run_serve(cfg, cluster::SystemConfig::table2());
}

}  // namespace gputn::serve

// Multi-tenant SLO accounting for the serving workload.
//
// Each tenant gets its own latency histogram plus goodput counters (ops
// completed, ops within the latency SLO, payload bytes moved). The reporter
// folds everything into the run's StatRegistry under the existing metric
// contract — per-tenant histograms are named `lat.serve.t<i>` and aggregate
// get/put histograms `lat.serve.get` / `lat.serve.put`, all in nanoseconds —
// so `gputn report`, report diffs and `--timeseries` work on serving runs
// without modification: any `lat.*` histogram is already a latency row and
// p50/p99/p999 gating applies automatically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/stats.hpp"
#include "sim/units.hpp"

namespace gputn::serve {

/// Per-tenant rollup handed to benches (knee detection wants raw numbers,
/// not a rendered table).
struct TenantSummary {
  int tenant = 0;
  std::uint64_t ops = 0;     ///< completed requests
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t slo_ok = 0;  ///< completed within the latency SLO
  std::uint64_t bytes = 0;   ///< payload bytes moved (values only)
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double p999_ns = 0.0;
  double max_ns = 0.0;

  /// Goodput in requests/s: only SLO-conformant completions count.
  double goodput_rps(sim::Tick window) const {
    if (window <= 0) return 0.0;
    return static_cast<double>(slo_ok) * 1e12 / static_cast<double>(window);
  }
};

class SloReporter {
 public:
  /// `slo` is the per-request latency budget in ticks; 0 disables
  /// conformance accounting (every completion counts as goodput).
  SloReporter(int tenants, sim::Tick slo);

  void record(int tenant, sim::Tick latency, bool is_get, std::uint64_t bytes);

  int tenants() const { return static_cast<int>(per_tenant_.size()); }
  sim::Tick slo() const { return slo_; }
  std::uint64_t total_ops() const { return total_ops_; }
  std::uint64_t total_slo_ok() const { return total_slo_ok_; }

  TenantSummary summary(int tenant) const;
  std::vector<TenantSummary> summaries() const;

  /// Fold another reporter's samples into this one. Exact: histograms merge
  /// bucket-wise and counters sum, so absorbing per-client-node reporters
  /// (disjoint tenant sets under the sharded engine) reproduces a single
  /// reporter fed every sample. Requires identical tenant count and SLO.
  void absorb(const SloReporter& other);

  /// Fold per-tenant histograms and counters into `out`:
  ///   histograms  lat.serve.t<i>, lat.serve.get, lat.serve.put   (ns)
  ///   counters    serve.t<i>.ops / .slo_ok / .bytes, serve.slo_ok
  void export_into(sim::StatRegistry& out) const;

  /// Human-readable per-tenant table (p50/p99/p999, SLO hit rate, goodput
  /// over `window`). Deterministic formatting.
  std::string table(sim::Tick window) const;

 private:
  struct Tenant {
    sim::Histogram lat_ns;  // completion latency in nanoseconds
    std::uint64_t gets = 0;
    std::uint64_t puts = 0;
    std::uint64_t slo_ok = 0;
    std::uint64_t bytes = 0;
  };

  sim::Tick slo_;
  std::vector<Tenant> per_tenant_;
  sim::Histogram get_ns_;
  sim::Histogram put_ns_;
  std::uint64_t total_ops_ = 0;
  std::uint64_t total_slo_ok_ = 0;
};

}  // namespace gputn::serve

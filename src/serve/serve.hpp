// Serving workload: Zipf-skewed multi-tenant KV / parameter-server traffic
// with tail-latency SLOs.
//
// N client nodes issue open-loop get/put requests (Poisson arrivals per
// tenant, Zipf-popular keys, configurable read/write mix) against M server
// nodes holding a key-sharded store in simulated GPU memory. Gets are
// one-sided RDMA reads served entirely by the target NIC. Puts carry the
// request to a per-(tenant, worker) server slot and need a response:
//
//   * Strategy::kCpu   — a host proxy thread on the server polls the slot
//     flags, applies the update, and posts the response put. Every response
//     pays the serial poll + post cost on one core: the proxy is the
//     bottleneck that bends the tail at high offered load (§2's CPU-driven
//     critical path).
//   * Strategy::kGpuTn — a persistent kernel applies the update and fires a
//     pre-staged triggered response put by storing a unique
//     (slot, round) tag to the NIC trigger address (§3). Descriptor
//     registration happens in a setup phase before traffic starts, so the
//     serving-phase critical path never touches the host CPU.
//
// Clients drive per-tenant queue pairs with doorbell batching (nic::Qp) and
// the NIC command pipeline can be paced by a token bucket
// (NicConfig::rate_limit) to model multi-tenant NIC rate limiting. Latency
// is measured per request from its *intended* open-loop arrival time, so
// queueing delay from an overloaded server shows up in the tail — that is
// what the knee in bench/fig_serve_tail measures.
//
// Everything is deterministic: the whole request schedule (arrival ticks,
// op mix, keys, rounds) is pre-generated from ServeConfig::seed, and
// repeated runs are bit-identical.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/config.hpp"
#include "serve/slo.hpp"
#include "sim/units.hpp"
#include "workloads/options.hpp"

namespace gputn::serve {

struct ServeConfig : workloads::RunOptions {
  int clients = 2;   ///< client nodes (tenants are placed round-robin)
  int servers = 2;   ///< server nodes (keys sharded key % servers)
  int tenants = 4;
  /// Max outstanding requests per tenant (worker pool size). Each
  /// (tenant, worker) pair owns one request slot on every server.
  int window = 4;
  std::uint64_t keyspace = 1024;
  double zipf = 0.99;            ///< skew; 0 = uniform
  double read_fraction = 0.9;    ///< get share of the op mix
  double offered_load = 1e6;     ///< open-loop requests/s per tenant
  int requests = 200;            ///< requests per tenant
  std::uint64_t value_bytes = 128;  ///< >= 16 (signature + version header)
  /// Server-side work to apply one put (validation, index update).
  sim::Tick request_compute = sim::ns(200);
  /// Per-request latency budget; completions within it count as goodput.
  sim::Tick slo = sim::us(10);
  /// Doorbell batching on the per-tenant client QPs.
  int qp_batch = 4;
  sim::Tick qp_flush_timeout = sim::ns(200);
  /// Per-NIC command-pipeline token bucket (0 = unlimited).
  double nic_rate_limit = 0.0;
  int nic_rate_burst = 16;
  std::uint64_t seed = 1;
};

struct ServeResult : workloads::ResultBase {
  std::vector<TenantSummary> tenants;
  std::uint64_t requests_total = 0;
  /// Setup phase (GPU-TN: kernel launch + triggered-op registration)
  /// preceding the first open-loop arrival.
  sim::Tick setup_time = 0;
  /// Serving window (total_time - setup_time), the goodput denominator.
  sim::Tick serve_window = 0;

  double achieved_rps() const {
    if (serve_window <= 0) return 0.0;
    return static_cast<double>(requests_total) * 1e12 /
           static_cast<double>(serve_window);
  }
};

ServeResult run_serve(const ServeConfig& cfg,
                      const cluster::SystemConfig& sys);
ServeResult run_serve(const ServeConfig& cfg);

}  // namespace gputn::serve

#include "serve/slo.hpp"

#include <cstdio>
#include <stdexcept>

namespace gputn::serve {

namespace {

std::string fmt(const char* spec, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}

}  // namespace

SloReporter::SloReporter(int tenants, sim::Tick slo) : slo_(slo) {
  if (tenants <= 0) throw std::invalid_argument("slo: tenants must be > 0");
  per_tenant_.resize(static_cast<std::size_t>(tenants));
}

void SloReporter::record(int tenant, sim::Tick latency, bool is_get,
                         std::uint64_t bytes) {
  auto& t = per_tenant_.at(static_cast<std::size_t>(tenant));
  auto ns = static_cast<std::uint64_t>(latency / 1000);
  t.lat_ns.add(ns);
  (is_get ? get_ns_ : put_ns_).add(ns);
  (is_get ? t.gets : t.puts) += 1;
  t.bytes += bytes;
  ++total_ops_;
  if (slo_ <= 0 || latency <= slo_) {
    ++t.slo_ok;
    ++total_slo_ok_;
  }
}

void SloReporter::absorb(const SloReporter& other) {
  if (other.tenants() != tenants() || other.slo_ != slo_) {
    throw std::invalid_argument("slo: absorb() reporters must match");
  }
  for (std::size_t i = 0; i < per_tenant_.size(); ++i) {
    auto& t = per_tenant_[i];
    const auto& o = other.per_tenant_[i];
    t.lat_ns.merge(o.lat_ns);
    t.gets += o.gets;
    t.puts += o.puts;
    t.slo_ok += o.slo_ok;
    t.bytes += o.bytes;
  }
  get_ns_.merge(other.get_ns_);
  put_ns_.merge(other.put_ns_);
  total_ops_ += other.total_ops_;
  total_slo_ok_ += other.total_slo_ok_;
}

TenantSummary SloReporter::summary(int tenant) const {
  const auto& t = per_tenant_.at(static_cast<std::size_t>(tenant));
  TenantSummary s;
  s.tenant = tenant;
  s.ops = t.gets + t.puts;
  s.gets = t.gets;
  s.puts = t.puts;
  s.slo_ok = t.slo_ok;
  s.bytes = t.bytes;
  s.p50_ns = t.lat_ns.quantile(0.5);
  s.p99_ns = t.lat_ns.quantile(0.99);
  s.p999_ns = t.lat_ns.quantile(0.999);
  s.max_ns = t.lat_ns.max();
  return s;
}

std::vector<TenantSummary> SloReporter::summaries() const {
  std::vector<TenantSummary> out;
  out.reserve(per_tenant_.size());
  for (int i = 0; i < tenants(); ++i) out.push_back(summary(i));
  return out;
}

void SloReporter::export_into(sim::StatRegistry& out) const {
  for (int i = 0; i < tenants(); ++i) {
    const auto& t = per_tenant_[static_cast<std::size_t>(i)];
    std::string base = "serve.t" + std::to_string(i);
    out.histogram("lat." + base).merge(t.lat_ns);
    out.counter(base + ".ops") = t.gets + t.puts;
    out.counter(base + ".slo_ok") = t.slo_ok;
    out.counter(base + ".bytes") = t.bytes;
  }
  if (get_ns_.count() > 0) out.histogram("lat.serve.get").merge(get_ns_);
  if (put_ns_.count() > 0) out.histogram("lat.serve.put").merge(put_ns_);
  out.counter("serve.ops") = total_ops_;
  out.counter("serve.slo_ok") = total_slo_ok_;
}

std::string SloReporter::table(sim::Tick window) const {
  std::string out;
  out += "  tenant       ops   p50 us   p99 us  p999 us  slo_ok   goodput/s\n";
  for (int i = 0; i < tenants(); ++i) {
    TenantSummary s = summary(i);
    double hit = s.ops > 0 ? 100.0 * static_cast<double>(s.slo_ok) /
                                 static_cast<double>(s.ops)
                           : 0.0;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  t%-5d %9llu %8s %8s %8s %6s%% %11s\n", i,
                  static_cast<unsigned long long>(s.ops),
                  fmt("%.2f", s.p50_ns / 1000.0).c_str(),
                  fmt("%.2f", s.p99_ns / 1000.0).c_str(),
                  fmt("%.2f", s.p999_ns / 1000.0).c_str(),
                  fmt("%.1f", hit).c_str(),
                  fmt("%.0f", s.goodput_rps(window)).c_str());
    out += line;
  }
  return out;
}

}  // namespace gputn::serve

#include "mem/memory.hpp"

#include <new>

#include "mem/arena.hpp"

namespace gputn::mem {

Memory::Memory(std::uint64_t dram_bytes)
    : dram_(DramArena::acquire(dram_bytes)) {}

Memory::~Memory() { DramArena::release(std::move(dram_)); }

Addr Memory::alloc(std::uint64_t bytes, std::uint64_t align) {
  if (align == 0 || (align & (align - 1)) != 0) {
    throw std::invalid_argument("alignment must be a power of two");
  }
  Addr base = (next_ + align - 1) & ~(align - 1);
  if (base + bytes > dram_.size()) throw std::bad_alloc();
  next_ = base + bytes;
  return base;
}

void Memory::check_range(Addr addr, std::size_t n) const {
  if (is_mmio(addr)) {
    throw std::out_of_range("functional access to MMIO window");
  }
  if (addr + n > dram_.size() || addr + n < addr) {
    throw std::out_of_range("memory access out of bounds");
  }
}

void Memory::write(Addr addr, const void* src, std::size_t n) {
  check_range(addr, n);
  std::memcpy(dram_.data() + addr, src, n);
}

void Memory::read(Addr addr, void* dst, std::size_t n) const {
  check_range(addr, n);
  std::memcpy(dst, dram_.data() + addr, n);
}

std::span<std::byte> Memory::bytes(Addr addr, std::size_t n) {
  check_range(addr, n);
  return {dram_.data() + addr, n};
}

std::span<const std::byte> Memory::bytes(Addr addr, std::size_t n) const {
  check_range(addr, n);
  return {dram_.data() + addr, n};
}

Addr Memory::map_mmio(std::uint64_t bytes, MmioHandler* handler) {
  Addr base = next_mmio_;
  next_mmio_ += (bytes + 4095) & ~std::uint64_t{4095};  // page-align windows
  mmio_.emplace(base, std::make_pair(base + bytes, handler));
  return base;
}

void Memory::mmio_store(Addr addr, std::uint64_t value) {
  auto it = mmio_.upper_bound(addr);
  if (it == mmio_.begin()) throw std::out_of_range("unmapped MMIO store");
  --it;
  auto [limit, handler] = it->second;
  if (addr >= limit) throw std::out_of_range("unmapped MMIO store");
  handler->on_mmio_store(addr, value);
}

}  // namespace gputn::mem

#include "mem/dma.hpp"

namespace gputn::mem {

sim::Task<> DmaEngine::consume_time(std::uint64_t n) {
  util_.enqueue(sim_->now());
  co_await busy_.acquire();
  util_.dequeue(sim_->now());
  util_.acquire(sim_->now());
  co_await sim_->delay(startup_ + bandwidth_.serialize(n));
  bytes_moved_ += n;
  util_.release(sim_->now());
  util_.add_bytes(n);
  busy_.release();
}

sim::Task<> DmaEngine::copy(Addr dst, Addr src, std::uint64_t n) {
  co_await consume_time(n);
  // Functional move happens at completion time.
  auto s = mem_->bytes(src, n);
  auto d = mem_->bytes(dst, n);
  std::memcpy(d.data(), s.data(), n);
}

sim::Task<> DmaEngine::read_into(std::vector<std::byte>& dst, Addr src,
                                 std::uint64_t n) {
  co_await consume_time(n);
  dst.resize(n);
  mem_->read(src, dst.data(), n);
}

sim::Task<> DmaEngine::write_from(Addr dst, const std::vector<std::byte>& src) {
  co_await consume_time(src.size());
  mem_->write(dst, src.data(), src.size());
}

}  // namespace gputn::mem

// Per-node physical address space.
//
// The CPU, GPU, and NIC of a node share one coherent memory (the paper's
// high-performance SoC configuration, §5.1). Memory holds real backing bytes
// so workloads compute and verify actual data. Functional accesses (by
// compute models that account time in aggregate) are zero-time; timed
// transfers go through the DMA engine (dma.hpp).
//
// A separate MMIO window routes stores to device handlers — this is how the
// GPU's memory-mapped trigger-address stores reach the NIC (§3.1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "sim/units.hpp"

namespace gputn::mem {

using Addr = std::uint64_t;

/// Base of the MMIO window. DRAM allocations never reach this address.
inline constexpr Addr kMmioBase = Addr{1} << 48;

/// Device-side receiver for posted MMIO stores.
class MmioHandler {
 public:
  virtual ~MmioHandler() = default;
  virtual void on_mmio_store(Addr addr, std::uint64_t value) = 0;
};

class Memory {
 public:
  /// The backing store comes from (and retires into) the thread-local
  /// DramArena, so sweeping many short-lived clusters re-faults no pages;
  /// the bytes are zero-filled either way (see arena.hpp).
  explicit Memory(std::uint64_t dram_bytes);
  ~Memory();
  Memory(const Memory&) = delete;
  Memory& operator=(const Memory&) = delete;

  /// Bump-allocate a DRAM region. Throws std::bad_alloc when exhausted.
  Addr alloc(std::uint64_t bytes, std::uint64_t align = 64);

  std::uint64_t dram_bytes() const { return dram_.size(); }
  std::uint64_t allocated_bytes() const { return next_; }

  // -- Functional (zero-time) access --------------------------------------
  void write(Addr addr, const void* src, std::size_t n);
  void read(Addr addr, void* dst, std::size_t n) const;

  template <typename T>
  void store(Addr addr, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    write(addr, &value, sizeof(T));
  }
  template <typename T>
  T load(Addr addr) const {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    read(addr, &v, sizeof(T));
    return v;
  }

  /// Direct view into backing bytes (bounds-checked).
  std::span<std::byte> bytes(Addr addr, std::size_t n);
  std::span<const std::byte> bytes(Addr addr, std::size_t n) const;

  /// Typed view of a region (addr must be suitably aligned for T).
  template <typename T>
  std::span<T> typed(Addr addr, std::size_t count) {
    auto b = bytes(addr, count * sizeof(T));
    return {reinterpret_cast<T*>(b.data()), count};
  }

  // -- MMIO ----------------------------------------------------------------
  /// Map `bytes` of MMIO space to a handler; returns the window base.
  Addr map_mmio(std::uint64_t bytes, MmioHandler* handler);
  bool is_mmio(Addr addr) const { return addr >= kMmioBase; }
  /// Route a posted store to the owning device. Timing (bus latency) is
  /// modelled by the initiating agent.
  void mmio_store(Addr addr, std::uint64_t value);

 private:
  void check_range(Addr addr, std::size_t n) const;

  std::vector<std::byte> dram_;
  std::uint64_t next_ = 64;  // never hand out address 0
  Addr next_mmio_ = kMmioBase;
  // MMIO window base -> (limit, handler)
  std::map<Addr, std::pair<Addr, MmioHandler*>> mmio_;
};

/// Convenience owner for an allocated region with typed element access.
template <typename T>
class Buffer {
 public:
  Buffer() = default;
  Buffer(Memory& memory, std::size_t count)
      : mem_(&memory),
        addr_(memory.alloc(count * sizeof(T), alignof(T) > 64 ? alignof(T) : 64)),
        count_(count) {}

  Addr addr() const { return addr_; }
  std::size_t size() const { return count_; }
  std::uint64_t bytes() const { return count_ * sizeof(T); }
  std::span<T> span() { return mem_->typed<T>(addr_, count_); }
  T& operator[](std::size_t i) { return span()[i]; }

 private:
  Memory* mem_ = nullptr;
  Addr addr_ = 0;
  std::size_t count_ = 0;
};

}  // namespace gputn::mem

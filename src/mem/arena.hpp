// Thread-local recycling of DRAM backing stores.
//
// Every run point of a parameter sweep constructs a fresh Cluster, and each
// node's mem::Memory zero-fills a multi-megabyte backing vector (64 MiB per
// node under Table 2). Allocating that from the OS every run means a fresh
// mmap plus a page fault per 4 KiB on first touch — for short microbench
// points the faults cost more than the simulation. The arena keeps retired
// backings on a per-thread freelist so the next run reuses already-faulted
// pages: acquire() re-zeroes the recycled buffer (one warm memset, several
// times cheaper than faulting), which makes a recycled backing
// indistinguishable from a fresh one — runs stay bit-identical whether or
// not their memory was recycled, and whichever worker thread ran first.
//
// Thread-local (not shared + locked) on purpose: no synchronization on the
// per-run construction path, and a backing never migrates between NUMA-ish
// worker arenas. A Memory may still be *destroyed* on a different thread
// than it was built on (the runner joins workers before results are read);
// the backing simply retires into the destroying thread's freelist.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace gputn::mem {

class DramArena {
 public:
  /// A zero-filled buffer of exactly `bytes` bytes, reusing the largest
  /// adequate retired backing when one is pooled.
  static std::vector<std::byte> acquire(std::uint64_t bytes) {
    Freelist& fl = freelist();
    // Best fit = last adequate entry: the list is kept sorted by capacity,
    // so scan from the top for the smallest capacity >= bytes.
    for (std::size_t i = 0; i < fl.entries.size(); ++i) {
      if (fl.entries[i].capacity() >= bytes) {
        std::vector<std::byte> v = std::move(fl.entries[i]);
        fl.entries.erase(fl.entries.begin() + static_cast<std::ptrdiff_t>(i));
        fl.pooled_bytes -= v.capacity();
        // clear + resize value-initializes every element: one memset over
        // warm pages, and the buffer is exactly as if freshly constructed.
        v.clear();
        v.resize(bytes);
        return v;
      }
    }
    return std::vector<std::byte>(bytes);
  }

  /// Retire a backing store for reuse. Tiny buffers are not worth pooling;
  /// beyond the byte cap the buffer is simply freed so one huge sweep
  /// cannot pin memory for the rest of the process.
  static void release(std::vector<std::byte>&& v) {
    Freelist& fl = freelist();
    if (v.capacity() < kMinPooledBytes ||
        fl.pooled_bytes + v.capacity() > kMaxPooledBytes) {
      return;  // let the vector destructor free it
    }
    fl.pooled_bytes += v.capacity();
    auto pos = std::lower_bound(
        fl.entries.begin(), fl.entries.end(), v.capacity(),
        [](const std::vector<std::byte>& e, std::size_t cap) {
          return e.capacity() < cap;
        });
    fl.entries.insert(pos, std::move(v));
  }

  /// Bytes currently pooled on this thread (tests / diagnostics).
  static std::uint64_t pooled_bytes() { return freelist().pooled_bytes; }

  /// Drop this thread's freelist (tests measuring cold-start cost).
  static void clear() {
    Freelist& fl = freelist();
    fl.entries.clear();
    fl.pooled_bytes = 0;
  }

 private:
  static constexpr std::size_t kMinPooledBytes = 64 * 1024;
  static constexpr std::uint64_t kMaxPooledBytes = 1ull << 30;  // 1 GiB

  struct Freelist {
    std::vector<std::vector<std::byte>> entries;  // sorted by capacity
    std::uint64_t pooled_bytes = 0;
  };
  static Freelist& freelist() {
    thread_local Freelist fl;
    return fl;
  }
};

}  // namespace gputn::mem

// DMA engine: timed bulk data movement between memory regions.
//
// Each NIC owns a DMA engine. Transfers occupy the engine (FIFO), take
// `startup + bytes / bandwidth` simulated time, and move real bytes so data
// integrity is verifiable end-to-end.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/memory.hpp"
#include "obs/busy.hpp"
#include "sim/sync.hpp"

namespace gputn::mem {

class DmaEngine {
 public:
  DmaEngine(sim::Simulator& sim, Memory& memory, sim::Bandwidth bandwidth,
            sim::Tick startup)
      : sim_(&sim),
        mem_(&memory),
        bandwidth_(bandwidth),
        startup_(startup),
        busy_(sim, 1) {}

  /// Copy `n` bytes memory->memory within this node.
  sim::Task<> copy(Addr dst, Addr src, std::uint64_t n);

  /// Read `n` bytes from memory into a staging vector (device pulling data
  /// out of host memory, e.g. NIC TX).
  sim::Task<> read_into(std::vector<std::byte>& dst, Addr src,
                        std::uint64_t n);

  /// Write a staging buffer into memory (e.g. NIC RX landing a payload).
  sim::Task<> write_from(Addr dst, const std::vector<std::byte>& src);

  /// Pure timing: occupy the engine for the duration of an `n`-byte move.
  sim::Task<> consume_time(std::uint64_t n);

  std::uint64_t bytes_moved() const { return bytes_moved_; }

  /// Engine-occupancy ledger: busy for startup + serialization of each
  /// transfer, queued while waiting on the engine semaphore.
  const obs::BusyTracker& util() const { return util_; }

 private:
  sim::Simulator* sim_;
  Memory* mem_;
  sim::Bandwidth bandwidth_;
  sim::Tick startup_;
  sim::Semaphore busy_;
  obs::BusyTracker util_;
  std::uint64_t bytes_moved_ = 0;
};

}  // namespace gputn::mem

#include "cluster/config.hpp"

#include <gtest/gtest.h>

namespace gputn::cluster {
namespace {

TEST(Config, Table2MatchesThePaper) {
  SystemConfig c = SystemConfig::table2();
  EXPECT_EQ(c.cpu.cores, 8);
  EXPECT_DOUBLE_EQ(c.cpu.clock_ghz, 4.0);
  EXPECT_EQ(c.gpu.cu_count, 24);
  EXPECT_DOUBLE_EQ(c.gpu.clock_ghz, 1.0);
  EXPECT_EQ(c.gpu.launch_latency, sim::us(1.5));
  EXPECT_EQ(c.gpu.teardown_latency, sim::us(1.5));
  EXPECT_EQ(c.fabric.link_latency, sim::ns(100));
  EXPECT_EQ(c.fabric.switch_latency, sim::ns(100));
  EXPECT_DOUBLE_EQ(c.fabric.bandwidth.bytes_per_second() * 8 / 1e9, 100.0);
  EXPECT_EQ(c.triggered.table.lookup, core::LookupKind::kAssociative);
  EXPECT_EQ(c.triggered.table.associative_entries, 16);
}

TEST(Config, DescribeMentionsEveryComponent) {
  std::string d = SystemConfig::table2().describe();
  for (const char* key : {"CPU:", "GPU:", "NIC:", "Trigger:", "Network:",
                          "DRAM:", "associative", "star"}) {
    EXPECT_NE(d.find(key), std::string::npos) << key;
  }
}

TEST(Config, WireLatencyCalibration) {
  // Table 2's network parameters give the ~0.3 us one-cache-line wire
  // latency that Figure 8 depends on.
  SystemConfig c = SystemConfig::table2();
  sim::Tick t = net::FabricConfig{}.bandwidth.serialize(144) * 2 +
                2 * c.fabric.link_latency + c.fabric.switch_latency;
  EXPECT_GT(t, sim::ns(300));
  EXPECT_LT(t, sim::ns(350));
}

}  // namespace
}  // namespace gputn::cluster

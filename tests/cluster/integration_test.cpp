// End-to-end integration tests over assembled nodes: the full Figure 6 / 7
// flows at every trigger granularity, HDN-style kernel-boundary messaging,
// GDS streams, and cross-node data integrity.
#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include "sim/sync.hpp"

namespace gputn::cluster {
namespace {

SystemConfig small_config() {
  SystemConfig c = SystemConfig::table2();
  c.dram_bytes = 8ull << 20;
  return c;
}

TEST(Cluster, BuildsTable2Nodes) {
  sim::Simulator sim;
  Cluster cluster(sim, small_config(), 4);
  EXPECT_EQ(cluster.size(), 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(cluster.node(i).id(), i);
    EXPECT_EQ(cluster.node(i).gpu().config().cu_count, 24);
  }
  EXPECT_FALSE(SystemConfig::table2().describe().empty());
}

// The complete GPU-TN flow of Figure 6 (host) + Figure 7c (kernel-level):
// CPU registers a triggered put with threshold = #work-groups; each WG's
// leader stores the tag after a barrier; the NIC fires when all WGs arrive.
TEST(Cluster, GpuTnKernelLevelFlow) {
  sim::Simulator sim;
  Cluster cluster(sim, small_config(), 2);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);

  const int kWgs = 8;
  const std::uint64_t kBytes = 4096;
  mem::Addr src = n0.memory().alloc(kBytes);
  mem::Addr dst = n1.memory().alloc(kBytes);
  mem::Addr rflag = n1.rt().alloc_flag();

  sim.spawn(
      [](Node& a, int wgs, std::uint64_t bytes, mem::Addr s, mem::Addr d,
         mem::Addr rf) -> sim::Task<> {
        nic::PutDesc put;
        put.target = 1;
        put.local_addr = s;
        put.bytes = bytes;
        put.remote_addr = d;
        put.remote_flag = rf;
        co_await a.rt().trig_put(/*tag=*/1, /*threshold=*/wgs, put);

        mem::Addr trig = a.rt().trigger_addr();
        gpu::KernelDesc k;
        k.name = "kern3";
        k.num_wgs = wgs;
        k.fn = [trig, s, bytes, wgs](gpu::WorkGroupCtx& ctx) -> sim::Task<> {
          // Each WG fills its slice of the send buffer.
          std::uint64_t slice = bytes / static_cast<std::uint64_t>(wgs);
          for (std::uint64_t i = 0; i < slice / 8; ++i) {
            ctx.store_data<std::uint64_t>(s + ctx.wg_id() * slice + i * 8,
                                          100 + ctx.wg_id());
          }
          co_await ctx.compute_mem(slice);
          co_await ctx.barrier();
          if (true /* leader work-item */) {
            co_await ctx.fence_system();
            co_await ctx.store_system(trig, /*tag=*/1);
          }
        };
        co_await a.rt().launch_sync(std::move(k));
      }(n0, kWgs, kBytes, src, dst, rflag),
      "host0");

  sim.run();
  EXPECT_EQ(n1.memory().load<std::uint64_t>(rflag), 1u);
  for (int wg = 0; wg < kWgs; ++wg) {
    EXPECT_EQ(n1.memory().load<std::uint64_t>(dst + wg * (kBytes / kWgs)),
              100u + wg);
  }
  EXPECT_EQ(n0.gpu().memory_model_hazards(), 0u);
  EXPECT_EQ(n0.triggered().triggers_received(), static_cast<std::uint64_t>(kWgs));
}

// Figure 7b: work-group-level networking — one message per work-group,
// threshold 1, tag = tagBase + group id.
TEST(Cluster, GpuTnWorkGroupLevelFlow) {
  sim::Simulator sim;
  Cluster cluster(sim, small_config(), 2);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);

  const int kWgs = 4;
  const std::uint64_t kSlice = 512;
  mem::Addr src = n0.memory().alloc(kSlice * kWgs);
  mem::Addr dst = n1.memory().alloc(kSlice * kWgs);
  std::vector<mem::Addr> flags;
  for (int i = 0; i < kWgs; ++i) flags.push_back(n1.rt().alloc_flag());

  sim.spawn(
      [](Node& a, const std::vector<mem::Addr>& fl, mem::Addr s, mem::Addr d,
         std::uint64_t slice, int wgs) -> sim::Task<> {
        for (int wg = 0; wg < wgs; ++wg) {
          nic::PutDesc put;
          put.target = 1;
          put.local_addr = s + wg * slice;
          put.bytes = slice;
          put.remote_addr = d + wg * slice;
          put.remote_flag = fl[wg];
          co_await a.rt().trig_put(/*tagBase+wg=*/10 + wg, 1, put);
        }
        mem::Addr trig = a.rt().trigger_addr();
        gpu::KernelDesc k;
        k.name = "kern2";
        k.num_wgs = wgs;
        k.fn = [trig, s, slice](gpu::WorkGroupCtx& ctx) -> sim::Task<> {
          ctx.store_data<std::uint64_t>(s + ctx.wg_id() * slice,
                                        7000 + ctx.wg_id());
          co_await ctx.compute_mem(slice);
          co_await ctx.barrier();
          co_await ctx.fence_system();
          co_await ctx.store_system(trig, 10 + ctx.wg_id());
        };
        co_await a.rt().launch_sync(std::move(k));
      }(n0, flags, src, dst, kSlice, kWgs),
      "host0");

  sim.run();
  for (int wg = 0; wg < kWgs; ++wg) {
    EXPECT_EQ(n1.memory().load<std::uint64_t>(flags[wg]), 1u);
    EXPECT_EQ(n1.memory().load<std::uint64_t>(dst + wg * kSlice), 7000u + wg);
  }
  EXPECT_EQ(n1.nic().stats().counter_value("puts_received"),
            static_cast<std::uint64_t>(kWgs));
}

// Relaxed synchronization at system level (§3.2/§4.1): the kernel is
// launched *before* the triggered op is posted; overlap is safe.
TEST(Cluster, GpuTnPostAfterLaunchOverlap) {
  sim::Simulator sim;
  Cluster cluster(sim, small_config(), 2);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);

  mem::Addr src = n0.memory().alloc(64);
  mem::Addr dst = n1.memory().alloc(64);
  mem::Addr rflag = n1.rt().alloc_flag();
  n0.memory().store<std::uint64_t>(src, 31337);

  sim.spawn(
      [](Node& a, mem::Addr s, mem::Addr d, mem::Addr rf) -> sim::Task<> {
        mem::Addr trig = a.rt().trigger_addr();
        gpu::KernelDesc k;
        k.num_wgs = 1;
        k.fn = [trig](gpu::WorkGroupCtx& ctx) -> sim::Task<> {
          co_await ctx.fence_system();
          co_await ctx.store_system(trig, 77);  // trigger fires FIRST
        };
        auto rec = co_await a.rt().launch(std::move(k));
        // Post the operation late: well after the trigger has been written.
        co_await a.rt().cpu().compute(sim::us(30));
        nic::PutDesc put;
        put.target = 1;
        put.local_addr = s;
        put.bytes = 64;
        put.remote_addr = d;
        put.remote_flag = rf;
        co_await a.rt().trig_put(77, 1, put);
        co_await rec->done.wait();
      }(n0, src, dst, rflag),
      "host0");

  sim.run();
  EXPECT_EQ(n1.memory().load<std::uint64_t>(dst), 31337u);
  EXPECT_GE(n0.triggered().table().orphans_created(), 1u);
}

// HDN-style kernel-boundary exchange: kernel, then host send/recv.
TEST(Cluster, HdnSendRecvAcrossNodes) {
  sim::Simulator sim;
  Cluster cluster(sim, small_config(), 2);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);

  mem::Addr src = n0.memory().alloc(1024);
  mem::Addr dst = n1.memory().alloc(1024);
  bool received = false;

  sim.spawn(
      [](Node& a, mem::Addr s) -> sim::Task<> {
        gpu::KernelDesc k;
        k.num_wgs = 2;
        k.fn = [s](gpu::WorkGroupCtx& ctx) -> sim::Task<> {
          ctx.store_data<std::uint64_t>(s + ctx.wg_id() * 8,
                                        500 + ctx.wg_id());
          co_await ctx.compute(sim::ns(100));
        };
        co_await a.rt().launch_sync(std::move(k));
        co_await a.rt().send(1, /*tag=*/3, s, 1024);
      }(n0, src),
      "host0");
  sim.spawn(
      [](Node& b, mem::Addr d, bool& ok) -> sim::Task<> {
        co_await b.rt().recv(0, /*tag=*/3, d, 1024);
        ok = b.memory().load<std::uint64_t>(d) == 500 &&
             b.memory().load<std::uint64_t>(d + 8) == 501;
      }(n1, dst, received),
      "host1");

  sim.run();
  EXPECT_TRUE(received);
}

// GDS stream: kernel + pre-posted put; the GPU front-end rings the doorbell
// at the kernel boundary without host involvement.
TEST(Cluster, GdsStreamPutAtKernelBoundary) {
  sim::Simulator sim;
  Cluster cluster(sim, small_config(), 2);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);

  mem::Addr src = n0.memory().alloc(64);
  mem::Addr dst = n1.memory().alloc(64);
  mem::Addr rflag = n1.rt().alloc_flag();
  sim::Tick kernel_done = -1, host_free = -1;

  sim.spawn(
      [](sim::Simulator& s, Node& a, mem::Addr sr, mem::Addr d, mem::Addr rf,
         sim::Tick& kdone, sim::Tick& hfree) -> sim::Task<> {
        gpu::KernelDesc k;
        k.num_wgs = 1;
        k.fn = [sr](gpu::WorkGroupCtx& ctx) -> sim::Task<> {
          ctx.store_data<std::uint64_t>(sr, 246);
          co_await ctx.compute(sim::ns(400));
        };
        auto rec = co_await a.rt().launch(std::move(k));
        nic::PutDesc put;
        put.target = 1;
        put.local_addr = sr;
        put.bytes = 64;
        put.remote_addr = d;
        put.remote_flag = rf;
        co_await a.rt().gds_stream_put(put);
        hfree = s.now();  // host is done well before the kernel completes
        co_await rec->done.wait();
        kdone = s.now();
      }(sim, n0, src, dst, rflag, kernel_done, host_free),
      "host0");

  sim.run();
  EXPECT_EQ(n1.memory().load<std::uint64_t>(dst), 246u);
  EXPECT_LT(host_free, kernel_done);
  EXPECT_EQ(n0.gpu().stats().counter_value("gds_doorbells"), 1u);
}

// Data integrity across many concurrent node pairs (conservation).
TEST(Cluster, AllPairsExchangeIntegrity) {
  sim::Simulator sim;
  Cluster cluster(sim, small_config(), 4);
  const std::uint64_t kBytes = 2048;
  std::vector<std::vector<mem::Addr>> dst(4, std::vector<mem::Addr>(4));
  for (int r = 0; r < 4; ++r) {
    for (int s = 0; s < 4; ++s) {
      dst[r][s] = cluster.node(r).memory().alloc(kBytes);
    }
  }
  int completed = 0;
  for (int me = 0; me < 4; ++me) {
    sim.spawn(
        [](Cluster& cl, int self, std::vector<std::vector<mem::Addr>>& d,
           std::uint64_t bytes, int& done) -> sim::Task<> {
          auto& node = cl.node(self);
          mem::Addr src = node.memory().alloc(bytes);
          for (std::uint64_t i = 0; i < bytes / 8; ++i) {
            node.memory().store<std::uint64_t>(src + i * 8,
                                               self * 1'000'000 + i);
          }
          for (int peer = 0; peer < cl.size(); ++peer) {
            if (peer == self) continue;
            co_await node.rt().send(peer, /*tag=*/self * 10, src, bytes);
          }
          for (int peer = 0; peer < cl.size(); ++peer) {
            if (peer == self) continue;
            co_await node.rt().recv(peer, /*tag=*/peer * 10, d[self][peer],
                                    bytes);
          }
          ++done;
        }(cluster, me, dst, kBytes, completed),
        "node" + std::to_string(me));
  }
  sim.run();
  EXPECT_EQ(completed, 4);
  for (int r = 0; r < 4; ++r) {
    for (int s = 0; s < 4; ++s) {
      if (r == s) continue;
      for (std::uint64_t i = 0; i < kBytes / 8; i += 64) {
        ASSERT_EQ(cluster.node(r).memory().load<std::uint64_t>(dst[r][s] + i * 8),
                  static_cast<std::uint64_t>(s) * 1'000'000 + i)
            << "r=" << r << " s=" << s << " i=" << i;
      }
    }
  }
}

}  // namespace
}  // namespace gputn::cluster

// End-to-end checks of the observability pipeline (flow tracing, latency
// histograms, structured export) against the acceptance criteria:
//   - a triggered put produces a flow that starts on the initiator's GPU
//     lane and terminates on the destination's NIC lane,
//   - lat.* histograms are always on and exported with quantiles,
//   - enabling tracing changes *nothing* about the simulation (zero
//     counter drift, identical stats JSON).
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "../support/json_lite.hpp"
#include "cluster/cluster.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"
#include "sim/trace.hpp"
#include "workloads/jacobi.hpp"

namespace gputn {
namespace {

/// One GPU-triggered put between two nodes, traced.
sim::TraceRecorder traced_put(sim::StatRegistry* stats_out = nullptr) {
  sim::Simulator sim;
  cluster::SystemConfig cfg = cluster::SystemConfig::table2();
  cfg.dram_bytes = 4u << 20;
  cluster::Cluster cluster(sim, cfg, 2);
  sim::TraceRecorder trace;
  cluster.enable_tracing(trace);

  auto& a = cluster.node(0);
  auto& b = cluster.node(1);
  mem::Addr src = a.memory().alloc(64);
  mem::Addr dst = b.memory().alloc(64);
  mem::Addr flag = b.rt().alloc_flag();
  sim.spawn(
      [](cluster::Node& n, mem::Addr s, mem::Addr d,
         mem::Addr f) -> sim::Task<> {
        nic::PutDesc put;
        put.target = 1;
        put.local_addr = s;
        put.bytes = 64;
        put.remote_addr = d;
        put.remote_flag = f;
        co_await n.rt().trig_put(1, 1, put);
        mem::Addr trig = n.rt().trigger_addr();
        gpu::KernelDesc k;
        k.num_wgs = 1;
        k.fn = [trig](gpu::WorkGroupCtx& ctx) -> sim::Task<> {
          co_await ctx.fence_system();
          co_await ctx.store_system(trig, 1);
        };
        co_await n.rt().launch_sync(std::move(k));
      }(a, src, dst, flag),
      "host");
  sim.run();
  if (stats_out != nullptr) cluster.export_net_stats(*stats_out);
  return trace;
}

TEST(Observability, FlowLinksGpuLaneToRemoteNicLane) {
  sim::TraceRecorder trace = traced_put();
  auto parsed = test::json::parse(trace.to_json());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_array());

  // Lane name -> tid, from the thread_name metadata records.
  std::map<std::string, double> lane_tid;
  for (const auto& e : *parsed->array) {
    if (e.at("ph").string == "M" && e.at("name").string == "thread_name") {
      lane_tid[e.at("args").at("name").string] = e.at("tid").number;
    }
  }
  ASSERT_TRUE(lane_tid.count("node0.gpu"));
  ASSERT_TRUE(lane_tid.count("node1.nic"));

  // The put's flow must begin on the initiator's GPU lane (the trigger
  // store) and end on the destination's NIC lane (the payload deposit),
  // sharing one flow id so the viewer draws the causality arrow.
  double start_id = -1, end_id = -2;
  bool start_in_slice = false, end_in_slice = false;
  for (const auto& e : *parsed->array) {
    std::string ph = e.at("ph").string;
    if (ph == "s" && e.at("tid").number == lane_tid["node0.gpu"]) {
      start_id = e.at("id").number;
      // A flow event only renders when a slice encloses it on its lane.
      for (const auto& s : *parsed->array) {
        if (s.at("ph").string == "X" &&
            s.at("tid").number == e.at("tid").number &&
            s.at("ts").number <= e.at("ts").number &&
            s.at("ts").number + s.at("dur").number >= e.at("ts").number) {
          start_in_slice = true;
        }
      }
    }
    if (ph == "f" && e.at("tid").number == lane_tid["node1.nic"]) {
      end_id = e.at("id").number;
      for (const auto& s : *parsed->array) {
        if (s.at("ph").string == "X" &&
            s.at("tid").number == e.at("tid").number &&
            s.at("ts").number <= e.at("ts").number &&
            s.at("ts").number + s.at("dur").number >= e.at("ts").number) {
          end_in_slice = true;
        }
      }
    }
  }
  EXPECT_EQ(start_id, end_id);
  EXPECT_GE(start_id, 1.0);
  EXPECT_TRUE(start_in_slice);
  EXPECT_TRUE(end_in_slice);
}

TEST(Observability, LatencyHistogramsAlwaysOn) {
  // No tracing enabled: the lat.* decomposition must still be recorded.
  sim::StatRegistry stats;
  {
    sim::TraceRecorder trace = traced_put(&stats);
  }
  for (const char* name : {"lat.trigger_to_fire", "lat.tx_queue", "lat.wire",
                           "lat.rx_to_deposit", "lat.end_to_end"}) {
    const sim::Histogram* h = stats.find_histogram(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_GE(h->count(), 1u) << name;
    EXPECT_LE(h->quantile(0.5), h->quantile(0.99)) << name;
    EXPECT_LE(h->quantile(0.99), h->max()) << name;
  }
  // The stage decomposition must sum to no more than end-to-end (stages
  // are disjoint spans of one message's life).
  double e2e = stats.find_histogram("lat.end_to_end")->max();
  EXPECT_GT(e2e, 0.0);
  EXPECT_LE(stats.find_histogram("lat.wire")->max(), e2e);
}

workloads::JacobiResult small_jacobi(sim::TraceRecorder* trace) {
  workloads::JacobiConfig cfg;
  cfg.strategy = workloads::Strategy::kGpuTn;
  cfg.n = 16;
  cfg.iterations = 2;
  cfg.trace = trace;
  return workloads::run_jacobi(cfg);
}

TEST(Observability, TracingCausesZeroCounterDrift) {
  workloads::JacobiResult plain = small_jacobi(nullptr);
  sim::TraceRecorder trace;
  workloads::JacobiResult traced = small_jacobi(&trace);

  EXPECT_GT(trace.event_count(), 0u);
  EXPECT_EQ(plain.total_time, traced.total_time);
  // Identical serialized stats: every counter, accumulator and histogram
  // bucket matches bit-for-bit between the traced and untraced runs.
  EXPECT_EQ(sim::stats_json(plain.net_stats),
            sim::stats_json(traced.net_stats));
}

TEST(Observability, StatsJsonDeterministicAcrossRuns) {
  sim::TraceRecorder t1, t2;
  workloads::JacobiResult a = small_jacobi(&t1);
  workloads::JacobiResult b = small_jacobi(&t2);
  EXPECT_EQ(sim::stats_json(a.net_stats), sim::stats_json(b.net_stats));
  EXPECT_EQ(t1.to_json(), t2.to_json());
}

TEST(Observability, WorkloadExportsLatencyHistogramsAsJson) {
  workloads::JacobiResult res = small_jacobi(nullptr);
  auto parsed = test::json::parse(sim::stats_json(res.net_stats));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->has("histograms"));
  const auto& histos = parsed->at("histograms");
  for (const char* name : {"lat.wire", "lat.end_to_end"}) {
    ASSERT_TRUE(histos.has(name)) << name;
    const auto& h = histos.at(name);
    EXPECT_GT(h.at("count").number, 0.0) << name;
    EXPECT_LE(h.at("p50").number, h.at("p90").number) << name;
    EXPECT_LE(h.at("p90").number, h.at("p99").number) << name;
    EXPECT_LE(h.at("p99").number, h.at("max").number) << name;
  }
}

}  // namespace
}  // namespace gputn

#include "net/fabric.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"
#include "sim/units.hpp"

namespace gputn::net {
namespace {

class CollectingSink : public MessageSink {
 public:
  explicit CollectingSink(sim::Simulator& sim) : sim_(&sim) {}
  void deliver(Message&& msg) override {
    arrival_times.push_back(sim_->now());
    messages.push_back(std::move(msg));
  }
  sim::Simulator* sim_;
  std::vector<Message> messages;
  std::vector<sim::Tick> arrival_times;
};

FabricConfig test_config() {
  FabricConfig c;
  c.bandwidth = sim::Bandwidth::gbps(100);  // 80 ps/byte
  c.link_latency = sim::ns(100);
  c.switch_latency = sim::ns(100);
  c.mtu_bytes = 4096;
  c.header_bytes = 64;
  c.per_packet_overhead = 16;
  return c;
}

struct Fixture {
  explicit Fixture(int nodes) {
    for (int i = 0; i < nodes; ++i) {
      sinks.push_back(std::make_unique<CollectingSink>(sim));
      fabric.add_node(sinks.back().get());
    }
  }
  sim::Simulator sim;
  net::Fabric fabric{sim, test_config()};
  std::vector<std::unique_ptr<CollectingSink>> sinks;
};

Message make_msg(int src, int dst, std::size_t payload_bytes) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.kind = 1;
  m.payload.resize(payload_bytes);
  for (std::size_t i = 0; i < payload_bytes; ++i) {
    m.payload[i] = static_cast<std::byte>(i & 0xff);
  }
  return m;
}

TEST(Fabric, SmallMessageLatencyIsWireDominated) {
  Fixture f(2);
  f.fabric.send(make_msg(0, 1, 64));
  f.sim.run();
  ASSERT_EQ(f.sinks[1]->messages.size(), 1u);
  // 64B payload + 64B header + 16B overhead = 144B on the wire.
  // ser(144)*2 + 2*link + switch = 11.52*2 + 300 = ~323 ns.
  sim::Tick t = f.sinks[1]->arrival_times[0];
  EXPECT_NEAR(sim::to_ns(t), 323.0, 1.0);
  EXPECT_EQ(t, f.fabric.ideal_latency(64));
}

TEST(Fabric, PayloadArrivesIntact) {
  Fixture f(2);
  f.fabric.send(make_msg(0, 1, 10000));  // multi-packet
  f.sim.run();
  ASSERT_EQ(f.sinks[1]->messages.size(), 1u);
  const auto& p = f.sinks[1]->messages[0].payload;
  ASSERT_EQ(p.size(), 10000u);
  for (std::size_t i = 0; i < p.size(); ++i) {
    ASSERT_EQ(p[i], static_cast<std::byte>(i & 0xff));
  }
}

TEST(Fabric, LargeMessagePipelinesAcrossHops) {
  Fixture f(2);
  const std::size_t bytes = 1 << 20;  // 1 MiB
  f.fabric.send(make_msg(0, 1, bytes));
  f.sim.run();
  sim::Tick t = f.sinks[1]->arrival_times[0];
  // Store-and-forward of the whole message would take ~2x serialization;
  // packet pipelining should keep us near 1x (plus one MTU + hops).
  sim::Tick one_ser = test_config().bandwidth.serialize(bytes);
  EXPECT_GT(t, one_ser);
  EXPECT_LT(t, one_ser + sim::us(2));
}

TEST(Fabric, HeaderWordsTravelUnmodified) {
  Fixture f(2);
  Message m = make_msg(0, 1, 8);
  m.h0 = 111;
  m.h1 = 222;
  m.h2 = 333;
  m.h3 = 444;
  m.kind = 7;
  f.fabric.send(std::move(m));
  f.sim.run();
  const auto& got = f.sinks[1]->messages.at(0);
  EXPECT_EQ(got.h0, 111u);
  EXPECT_EQ(got.h1, 222u);
  EXPECT_EQ(got.h2, 333u);
  EXPECT_EQ(got.h3, 444u);
  EXPECT_EQ(got.kind, 7u);
  EXPECT_EQ(got.src, 0);
}

TEST(Fabric, MessagesOnSamePathStayOrdered) {
  Fixture f(2);
  for (int i = 0; i < 10; ++i) {
    Message m = make_msg(0, 1, 256);
    m.h0 = static_cast<std::uint64_t>(i);
    f.fabric.send(std::move(m));
  }
  f.sim.run();
  ASSERT_EQ(f.sinks[1]->messages.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(f.sinks[1]->messages[i].h0, static_cast<std::uint64_t>(i));
  }
}

TEST(Fabric, ConcurrentSendersToDistinctTargetsOverlap) {
  Fixture f(4);
  const std::size_t bytes = 1 << 18;
  f.fabric.send(make_msg(0, 2, bytes));
  f.fabric.send(make_msg(1, 3, bytes));
  f.sim.run();
  // Different uplinks and downlinks: transfers fully overlap.
  ASSERT_EQ(f.sinks[2]->arrival_times.size(), 1u);
  ASSERT_EQ(f.sinks[3]->arrival_times.size(), 1u);
  EXPECT_EQ(f.sinks[2]->arrival_times[0], f.sinks[3]->arrival_times[0]);
}

TEST(Fabric, OutputContentionSerializesOnDownlink) {
  Fixture f(3);
  const std::size_t bytes = 1 << 18;  // 256 KiB each
  f.fabric.send(make_msg(0, 2, bytes));
  f.fabric.send(make_msg(1, 2, bytes));
  f.sim.run();
  ASSERT_EQ(f.sinks[2]->arrival_times.size(), 2u);
  sim::Tick solo = f.fabric.ideal_latency(bytes);
  sim::Tick second = f.sinks[2]->arrival_times[1];
  // The second message shares the downlink: it needs ~2x the serialization.
  EXPECT_GT(second, solo + test_config().bandwidth.serialize(bytes) / 2);
}

TEST(Fabric, ByteConservation) {
  Fixture f(2);
  f.fabric.send(make_msg(0, 1, 5000));
  f.fabric.send(make_msg(1, 0, 3000));
  f.sim.run();
  EXPECT_EQ(f.fabric.messages_sent(), 2u);
  EXPECT_EQ(f.fabric.bytes_sent(), 5000u + 3000u + 2 * 64u);
  ASSERT_EQ(f.sinks[0]->messages.size(), 1u);
  ASSERT_EQ(f.sinks[1]->messages.size(), 1u);
  EXPECT_EQ(f.sinks[0]->messages[0].payload.size(), 3000u);
  EXPECT_EQ(f.sinks[1]->messages[0].payload.size(), 5000u);
}

TEST(Fabric, UnknownNodeThrows) {
  Fixture f(2);
  EXPECT_THROW(f.fabric.send(make_msg(0, 5, 8)), std::out_of_range);
  EXPECT_THROW(f.fabric.send(make_msg(-1, 1, 8)), std::out_of_range);
}

TEST(Fabric, BandwidthBoundThroughput) {
  Fixture f(2);
  // 10 x 1 MiB messages on one path: total time ~ total bytes / bandwidth.
  const std::size_t bytes = 1 << 20;
  for (int i = 0; i < 10; ++i) f.fabric.send(make_msg(0, 1, bytes));
  f.sim.run();
  double total_bytes = 10.0 * bytes;
  double secs = sim::to_sec(f.sim.now());
  double achieved = total_bytes / secs;
  double wire_rate = test_config().bandwidth.bytes_per_second();
  EXPECT_GT(achieved, 0.90 * wire_rate);
  EXPECT_LT(achieved, 1.00 * wire_rate);
}

}  // namespace
}  // namespace gputn::net

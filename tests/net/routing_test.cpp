// Unit tests for the Router policies (net/routing_api.hpp).
//
// Routers see only (topology, switch, dst, depth-oracle), so these tests
// drive them with a real topology and a fake depth function — no simulator
// needed. The properties pinned here are exactly the ones the run-level
// determinism tests rely on: the deterministic policy ignores queue state
// entirely, and the adaptive policy is a pure function of the observed
// depths with first-listed tie-breaking.
#include "net/routing_api.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "net/topology_api.hpp"

namespace gputn::net {
namespace {

TEST(RouterFactory, BuildsBothPoliciesAndRejectsUnknown) {
  auto& f = RouterFactory::instance();
  EXPECT_EQ(f.make("deterministic")->name(), "deterministic");
  EXPECT_EQ(f.make("adaptive")->name(), "adaptive");
  EXPECT_THROW(f.make("chaotic"), std::invalid_argument);
}

TEST(DeterministicRouter, AlwaysTakesTheFirstCandidateRegardlessOfDepth) {
  auto topo = TopologyFactory::instance().make("fat-tree:k=4", 16);
  auto router = RouterFactory::instance().make("deterministic");
  std::vector<int> scratch;
  // Edge switch 0 toward a cross-pod node: two up candidates exist.
  int expected = topo->deterministic_port(0, 8);
  // Pile fake congestion onto that very port — the policy must not care.
  auto congested = [&](int port) { return port == expected ? 1000 : 0; };
  EXPECT_EQ(router->select(*topo, 0, 8, congested, scratch), expected);
  auto idle = [](int) { return 0; };
  EXPECT_EQ(router->select(*topo, 0, 8, idle, scratch), expected);
}

TEST(AdaptiveRouter, PicksTheShallowestCandidate) {
  auto topo = TopologyFactory::instance().make("fat-tree:k=4", 16);
  auto router = RouterFactory::instance().make("adaptive");
  std::vector<int> scratch;
  std::vector<int> cand;
  topo->candidates(0, 8, cand);  // two up-ports at an edge switch
  ASSERT_EQ(cand.size(), 2u);
  // Make the first-listed candidate deep: adaptive must escape to the other.
  std::map<int, int> depth{{cand[0], 5}, {cand[1], 2}};
  auto oracle = [&](int port) { return depth.at(port); };
  EXPECT_EQ(router->select(*topo, 0, 8, oracle, scratch), cand[1]);
  // Flip the pressure: it follows.
  depth = {{cand[0], 1}, {cand[1], 9}};
  EXPECT_EQ(router->select(*topo, 0, 8, oracle, scratch), cand[0]);
}

TEST(AdaptiveRouter, TiesGoToTheFirstListedCandidate) {
  // Equal depths must reproduce the deterministic choice — this is what
  // keeps adaptive runs bit-identical across --jobs: identical queue
  // states always produce identical routes.
  auto topo = TopologyFactory::instance().make("fat-tree:k=4", 16);
  auto router = RouterFactory::instance().make("adaptive");
  std::vector<int> scratch;
  auto flat = [](int) { return 3; };
  EXPECT_EQ(router->select(*topo, 0, 8, flat, scratch),
            topo->deterministic_port(0, 8));
}

TEST(AdaptiveRouter, IsAPureFunctionOfTheObservedDepths) {
  auto topo = TopologyFactory::instance().make("torus:3x3", 9);
  auto router = RouterFactory::instance().make("adaptive");
  std::vector<int> scratch_a, scratch_b;
  auto oracle = [](int port) { return (port * 7) % 3; };
  for (int sw = 0; sw < topo->switch_count(); ++sw) {
    for (NodeId dst = 0; dst < topo->node_count(); ++dst) {
      EXPECT_EQ(router->select(*topo, sw, dst, oracle, scratch_a),
                router->select(*topo, sw, dst, oracle, scratch_b));
    }
  }
}

TEST(AdaptiveRouter, SingleCandidateTopologiesDegenerate) {
  // Star (and dragonfly minimal paths) offer exactly one candidate; the
  // adaptive policy must return it without consulting the oracle's value.
  auto topo = TopologyFactory::instance().make("star", 4);
  auto router = RouterFactory::instance().make("adaptive");
  std::vector<int> scratch;
  auto deep = [](int) { return 1 << 20; };
  EXPECT_EQ(router->select(*topo, 0, 3, deep, scratch), 3);
}

}  // namespace
}  // namespace gputn::net

// Unit tests for the Link and Switch primitives in isolation.
#include "net/link.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/fabric.hpp"
#include "net/switch.hpp"
#include "sim/simulator.hpp"

namespace gputn::net {
namespace {

Packet make_packet(std::uint32_t bytes, bool last = true) {
  auto flight = std::make_shared<MessageInFlight>();
  flight->packets_remaining = 1;
  Packet p;
  p.flight = std::move(flight);
  p.wire_bytes = bytes;
  p.last = last;
  return p;
}

TEST(Link, SerializationPlusPropagation) {
  sim::Simulator sim;
  std::vector<sim::Tick> arrivals;
  // 1 byte/ns, 100 ns propagation.
  Link link(sim, "t", sim::Bandwidth::bytes_per_sec(1e9), sim::ns(100),
            [&](Packet&&) { arrivals.push_back(sim.now()); });
  link.submit(make_packet(500));
  sim.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], sim::ns(600));
  EXPECT_EQ(link.bytes_transmitted(), 500u);
  EXPECT_EQ(link.packets_transmitted(), 1u);
  sim.reap_processes();
}

TEST(Link, BackToBackPacketsPipelinePropagation) {
  sim::Simulator sim;
  std::vector<sim::Tick> arrivals;
  Link link(sim, "t", sim::Bandwidth::bytes_per_sec(1e9), sim::ns(100),
            [&](Packet&&) { arrivals.push_back(sim.now()); });
  link.submit(make_packet(500));
  link.submit(make_packet(500));
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // Serialization occupies the wire (500 ns each); propagation overlaps.
  EXPECT_EQ(arrivals[0], sim::ns(600));
  EXPECT_EQ(arrivals[1], sim::ns(1100));
  sim.reap_processes();
}

TEST(Switch, ForwardsToAttachedOutputAfterLatency) {
  sim::Simulator sim;
  std::vector<sim::Tick> arrivals;
  Switch sw(sim, sim::ns(100));
  Link out(sim, "out", sim::Bandwidth::bytes_per_sec(1e9), sim::ns(50),
           [&](Packet&&) { arrivals.push_back(sim.now()); });
  sw.attach_output(0, &out);

  auto flight = std::make_shared<MessageInFlight>();
  flight->msg.dst = 0;
  flight->packets_remaining = 1;
  Packet p;
  p.flight = flight;
  p.wire_bytes = 100;
  sw.forward(std::move(p));
  sim.run();
  ASSERT_EQ(arrivals.size(), 1u);
  // 100 ns switch + 100 ns serialization + 50 ns propagation.
  EXPECT_EQ(arrivals[0], sim::ns(250));
  EXPECT_EQ(sw.packets_forwarded(), 1u);
  sim.reap_processes();
}

TEST(Switch, RejectsUnknownDestinations) {
  sim::Simulator sim;
  Switch sw(sim, sim::ns(100));
  auto flight = std::make_shared<MessageInFlight>();
  flight->msg.dst = 3;  // nothing attached
  Packet p;
  p.flight = flight;
  p.wire_bytes = 64;
  EXPECT_THROW(sw.forward(std::move(p)), std::out_of_range);
}

TEST(Switch, OutputsMustAttachInOrder) {
  sim::Simulator sim;
  Switch sw(sim, sim::ns(100));
  Link out(sim, "out", sim::Bandwidth::bytes_per_sec(1e9), sim::ns(50),
           [](Packet&&) {});
  EXPECT_THROW(sw.attach_output(1, &out), std::logic_error);
  sim.reap_processes();
}

}  // namespace
}  // namespace gputn::net

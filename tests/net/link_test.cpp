// Unit tests for the Link and Switch primitives in isolation.
#include "net/link.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/fabric.hpp"
#include "net/routing_api.hpp"
#include "net/switch.hpp"
#include "net/topology_api.hpp"
#include "sim/simulator.hpp"

namespace gputn::net {
namespace {

Packet make_packet(std::uint32_t bytes, bool last = true) {
  auto flight = std::make_shared<MessageInFlight>();
  flight->packets_remaining = 1;
  Packet p;
  p.flight = std::move(flight);
  p.wire_bytes = bytes;
  p.last = last;
  return p;
}

TEST(Link, SerializationPlusPropagation) {
  sim::Simulator sim;
  std::vector<sim::Tick> arrivals;
  // 1 byte/ns, 100 ns propagation.
  Link link(sim, "t", sim::Bandwidth::bytes_per_sec(1e9), sim::ns(100),
            [&](Packet&&) { arrivals.push_back(sim.now()); });
  link.submit(make_packet(500));
  sim.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], sim::ns(600));
  EXPECT_EQ(link.bytes_transmitted(), 500u);
  EXPECT_EQ(link.packets_transmitted(), 1u);
  sim.reap_processes();
}

TEST(Link, BackToBackPacketsPipelinePropagation) {
  sim::Simulator sim;
  std::vector<sim::Tick> arrivals;
  Link link(sim, "t", sim::Bandwidth::bytes_per_sec(1e9), sim::ns(100),
            [&](Packet&&) { arrivals.push_back(sim.now()); });
  link.submit(make_packet(500));
  link.submit(make_packet(500));
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // Serialization occupies the wire (500 ns each); propagation overlaps.
  EXPECT_EQ(arrivals[0], sim::ns(600));
  EXPECT_EQ(arrivals[1], sim::ns(1100));
  sim.reap_processes();
}

/// Star topology + deterministic router: the minimal routing harness for
/// exercising a Switch on its own.
struct SwitchRig {
  explicit SwitchRig(int nodes) {
    topo = TopologyFactory::instance().make("star", nodes);
    router = RouterFactory::instance().make("deterministic");
  }
  std::unique_ptr<Topology> topo;
  std::unique_ptr<Router> router;
};

Packet packet_to(NodeId dst, std::uint32_t bytes) {
  Packet p = make_packet(bytes);
  p.flight->msg.dst = dst;
  return p;
}

TEST(Switch, ForwardsToAttachedOutputAfterLatency) {
  sim::Simulator sim;
  SwitchRig rig(2);
  std::vector<sim::Tick> arrivals;
  Switch sw(sim, 0, rig.topo->radix(0), sim::ns(100), /*credits=*/0);
  sw.set_router(rig.topo.get(), rig.router.get());
  Link out(sim, "out", sim::Bandwidth::bytes_per_sec(1e9), sim::ns(50),
           [&](Packet&&) { arrivals.push_back(sim.now()); });
  sw.attach_output(0, &out);

  sw.arrive(packet_to(0, 100), nullptr, 0);
  sim.run();
  ASSERT_EQ(arrivals.size(), 1u);
  // 100 ns switch + 100 ns serialization + 50 ns propagation.
  EXPECT_EQ(arrivals[0], sim::ns(250));
  EXPECT_EQ(sw.packets_forwarded(), 1u);
  EXPECT_EQ(sw.credit_stalls(), 0u);
  sim.reap_processes();
}

TEST(Switch, RejectsUnknownDestinations) {
  sim::Simulator sim;
  SwitchRig rig(2);
  Switch sw(sim, 0, rig.topo->radix(0), sim::ns(100), /*credits=*/0);
  sw.set_router(rig.topo.get(), rig.router.get());
  Packet p = packet_to(-1, 64);
  EXPECT_THROW(sw.arrive(std::move(p), nullptr, 0), std::out_of_range);
  // A destination past the star's ports is caught at route time.
  sw.arrive(packet_to(5, 64), nullptr, 0);
  EXPECT_THROW(sim.run(), std::out_of_range);
  sim.reap_processes();
}

TEST(Switch, AttachRejectsOutOfRangePorts) {
  sim::Simulator sim;
  SwitchRig rig(2);
  Switch sw(sim, 0, /*radix=*/2, sim::ns(100), /*credits=*/0);
  Link out(sim, "out", sim::Bandwidth::bytes_per_sec(1e9), sim::ns(50),
           [](Packet&&) {});
  EXPECT_THROW(sw.attach_output(2, &out), std::logic_error);
  EXPECT_THROW(sw.attach_output(-1, &out), std::logic_error);
  sim.reap_processes();
}

TEST(Switch, CreditExhaustionQueuesThenDrainsOnReturn) {
  sim::Simulator sim;
  SwitchRig rig(2);
  std::vector<sim::Tick> arrivals;
  Switch sw(sim, 0, rig.topo->radix(0), sim::ns(100), /*credits=*/1);
  sw.set_router(rig.topo.get(), rig.router.get());
  Link out(sim, "out", sim::Bandwidth::bytes_per_sec(1e9), sim::ns(50),
           [&](Packet&&) { arrivals.push_back(sim.now()); });
  sw.attach_output(0, &out);

  sw.arrive(packet_to(0, 100), nullptr, 0);
  sw.arrive(packet_to(0, 100), nullptr, 0);
  sim.run();
  // Both cross the crossbar at t=100; the single credit lets the first
  // onto the wire, the second parks in the output FIFO.
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], sim::ns(250));
  EXPECT_EQ(sw.inflight(0), 1);
  EXPECT_EQ(sw.credits_available(0), 0);
  EXPECT_EQ(sw.depth(0), 2);  // 1 holding the credit + 1 queued
  EXPECT_EQ(sw.credit_stalls(), 1u);
  EXPECT_EQ(sw.port_util(0).queue_max(), 1);

  // The consumer hands the credit back; the queued packet goes out now.
  sw.credit_return(0);
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[1], sim::ns(400));  // 250 + 100 ser + 50 prop
  EXPECT_EQ(sw.port_util(0).queue_depth(), 0);
  sim.reap_processes();
}

TEST(Switch, UnlimitedCreditsNeverStall) {
  sim::Simulator sim;
  SwitchRig rig(2);
  std::vector<sim::Tick> arrivals;
  Switch sw(sim, 0, rig.topo->radix(0), sim::ns(100), /*credits=*/0);
  sw.set_router(rig.topo.get(), rig.router.get());
  Link out(sim, "out", sim::Bandwidth::bytes_per_sec(1e9), sim::ns(50),
           [&](Packet&&) { arrivals.push_back(sim.now()); });
  sw.attach_output(0, &out);
  for (int i = 0; i < 4; ++i) sw.arrive(packet_to(0, 100), nullptr, 0);
  sim.run();
  EXPECT_EQ(arrivals.size(), 4u);
  EXPECT_EQ(sw.credit_stalls(), 0u);
  // With flow control off the credit ledger stays quiet (no ops, no
  // busy time): in-flight pipelining is not buffer pressure.
  EXPECT_EQ(sw.port_util(0).ops(), 0u);
  EXPECT_EQ(sw.port_util(0).busy_ps(sim.now()), 0u);
  sim.reap_processes();
}

}  // namespace
}  // namespace gputn::net

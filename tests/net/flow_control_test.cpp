// Credit-based flow control tests (Switch credits + Fabric wiring).
//
// The contract under test: a finite-credit port never has more packets
// between wire-submit and downstream-dequeue than its credit pool; credit
// exhaustion throttles but never deadlocks (the event queue always drains);
// an idle multi-hop fabric is *exact* — a lone message arrives at precisely
// Fabric::ideal_latency, which is what keeps the flight recorder's
// wire-vs-switch_queue blame split honest; and sustained incast pressure
// surfaces as a SATURATED util.sw.* resource in `gputn report`.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/fabric.hpp"
#include "net/switch.hpp"
#include "obs/critical.hpp"
#include "obs/report.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/units.hpp"

namespace gputn::net {
namespace {

class CollectingSink : public MessageSink {
 public:
  explicit CollectingSink(sim::Simulator& sim) : sim_(&sim) {}
  void deliver(Message&& msg) override {
    arrival_times.push_back(sim_->now());
    messages.push_back(std::move(msg));
  }
  sim::Simulator* sim_;
  std::vector<Message> messages;
  std::vector<sim::Tick> arrival_times;
};

FabricConfig config_for(const std::string& topology, int credits,
                        const std::string& routing = "deterministic") {
  FabricConfig c;
  c.bandwidth = sim::Bandwidth::gbps(100);
  c.link_latency = sim::ns(100);
  c.switch_latency = sim::ns(100);
  c.mtu_bytes = 4096;
  c.header_bytes = 64;
  c.per_packet_overhead = 16;
  c.topology = topology;
  c.routing = routing;
  c.credits_per_port = credits;
  return c;
}

struct Fixture {
  Fixture(int nodes, FabricConfig cfg) : fabric(sim, std::move(cfg)) {
    for (int i = 0; i < nodes; ++i) {
      sinks.push_back(std::make_unique<CollectingSink>(sim));
      fabric.add_node(sinks.back().get());
    }
  }
  sim::Simulator sim;
  net::Fabric fabric;
  std::vector<std::unique_ptr<CollectingSink>> sinks;
};

Message make_msg(int src, int dst, std::size_t payload_bytes) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.kind = 1;
  m.payload.resize(payload_bytes, std::byte{0x5a});
  return m;
}

/// Every switch port: credits were conformed to and all came back.
void expect_credits_conserved(Fabric& fabric, int credits) {
  for (int s = 0; s < fabric.switch_count(); ++s) {
    Switch& sw = fabric.switch_at(s);
    for (int p = 0; p < sw.radix(); ++p) {
      EXPECT_EQ(sw.inflight(p), 0) << "sw" << s << " port" << p;
      if (credits > 0) {
        EXPECT_LE(sw.port_util(p).in_use_max(), credits)
            << "sw" << s << " port" << p;
      }
    }
  }
}

TEST(FlowControl, InFlightNeverExceedsCreditsUnderIncast) {
  Fixture f(4, config_for("star", /*credits=*/1));
  for (int src = 1; src < 4; ++src) {
    for (int i = 0; i < 5; ++i) f.fabric.send(make_msg(src, 0, 8192));
  }
  f.sim.run();
  ASSERT_EQ(f.sinks[0]->messages.size(), 15u);
  // The shared egress port genuinely stalled and never overshot its pool.
  EXPECT_GT(f.fabric.switch_at(0).credit_stalls(), 0u);
  expect_credits_conserved(f.fabric, 1);
  f.sim.reap_processes();
}

TEST(FlowControl, ThrottlesButDeliversEverythingOnAFatTree) {
  Fixture f(16, config_for("fat-tree:k=4", /*credits=*/2));
  // All-to-one incast across pods: every trunk toward node 0 is contended.
  for (int src = 1; src < 16; ++src) f.fabric.send(make_msg(src, 0, 4096));
  f.sim.run();
  ASSERT_EQ(f.sinks[0]->messages.size(), 15u);
  expect_credits_conserved(f.fabric, 2);
  f.sim.reap_processes();
}

TEST(FlowControl, SingleCreditTorusAllToAllNeverWedges) {
  // Deadlock-freedom smoke: the tightest credit pool on a wrapped topology
  // with every node talking to every other. Output queues are unbounded and
  // credits return on downstream dequeue, so the run must terminate with
  // every message delivered.
  Fixture f(8, config_for("torus:2x2x2", /*credits=*/1));
  for (int src = 0; src < 8; ++src) {
    for (int dst = 0; dst < 8; ++dst) {
      if (src != dst) f.fabric.send(make_msg(src, dst, 2048));
    }
  }
  f.sim.run();
  for (int dst = 0; dst < 8; ++dst) {
    EXPECT_EQ(f.sinks[dst]->messages.size(), 7u) << "node " << dst;
  }
  expect_credits_conserved(f.fabric, 1);
  f.sim.reap_processes();
}

TEST(FlowControl, AdaptiveRoutingUnderCreditsIsRunToRunIdentical) {
  auto run_once = [] {
    Fixture f(16, config_for("fat-tree:k=4", /*credits=*/2, "adaptive"));
    for (int src = 1; src < 16; ++src) {
      f.fabric.send(make_msg(src, src % 4, 4096));
      f.fabric.send(make_msg(src, 0, 4096));
    }
    f.sim.run();
    std::vector<sim::Tick> all;
    for (auto& s : f.sinks) {
      all.insert(all.end(), s->arrival_times.begin(), s->arrival_times.end());
    }
    f.sim.reap_processes();
    return all;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(FlowControl, IdleMultiHopFabricIsExactlyIdeal) {
  // One message, empty fabric: measured latency must equal the hop-aware
  // ideal to the picosecond, and the analyzer's replica of that formula
  // must agree — this pins switch_queue == 0 on an idle fat-tree.
  Fixture f(16, config_for("fat-tree:k=4", /*credits=*/0));
  const std::size_t bytes = 10000;
  EXPECT_EQ(f.fabric.hop_count(0, 15), 5);
  f.fabric.send(make_msg(0, 15, bytes));
  f.sim.run();
  ASSERT_EQ(f.sinks[15]->arrival_times.size(), 1u);
  sim::Tick got = f.sinks[15]->arrival_times[0];
  EXPECT_EQ(got, f.fabric.ideal_latency(bytes, 0, 15));

  obs::WireParams w;
  w.bytes_per_sec = sim::Bandwidth::gbps(100).bytes_per_second();
  w.link_latency_ps = sim::ns(100);
  w.switch_latency_ps = sim::ns(100);
  w.mtu_bytes = 4096;
  w.header_bytes = 64;
  w.per_packet_overhead = 16;
  EXPECT_EQ(got, obs::ideal_wire_ps(w, bytes, /*hops=*/5));
  // And the star short-circuit still matches the seed's one-arg formula.
  EXPECT_EQ(obs::ideal_wire_ps(w, bytes, 1),
            Fixture(2, config_for("star", 0)).fabric.ideal_latency(bytes));
  f.sim.reap_processes();
}

TEST(FlowControl, UnlimitedCreditsExportNoPortLedgers) {
  Fixture f(4, config_for("star", /*credits=*/0));
  for (int src = 1; src < 4; ++src) f.fabric.send(make_msg(src, 0, 8192));
  f.sim.run();
  sim::StatRegistry reg;
  f.fabric.export_stats(reg);
  EXPECT_EQ(reg.counter_value("net.credit_stalls"), 0u);
  for (const auto& [name, value] : reg.counters()) {
    EXPECT_EQ(name.rfind("util.sw.", 0), std::string::npos) << name;
    (void)value;
  }
  f.sim.reap_processes();
}

TEST(FlowControl, IncastShowsUpAsSaturatedInTheReport) {
  // Sustained single-credit incast pins the egress port's credit ledger at
  // ~100% busy; `gputn report` must rank it and flag SATURATED.
  Fixture f(4, config_for("star", /*credits=*/1));
  for (int src = 1; src < 4; ++src) {
    for (int i = 0; i < 20; ++i) f.fabric.send(make_msg(src, 0, 8192));
  }
  f.sim.run();
  sim::StatRegistry reg;
  f.fabric.export_stats(reg);
  reg.counter("util.window_ps") += static_cast<std::uint64_t>(f.sim.now());

  obs::Report rep = obs::parse_report(sim::stats_json(reg), "incast-test");
  std::string text = obs::render_report(rep, obs::ReportOptions{});
  EXPECT_NE(text.find("sw.0.port0"), std::string::npos) << text;
  EXPECT_NE(text.find("SATURATED"), std::string::npos) << text;
  f.sim.reap_processes();
}

}  // namespace
}  // namespace gputn::net

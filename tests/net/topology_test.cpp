// Contract tests for the pluggable topologies (net/topology_api.hpp).
//
// Every built-in topology must satisfy the same structural invariants —
// symmetric wiring, bijective host attachment, minimal candidates — so the
// bulk of this file is one generic sweep over all of them; the per-topology
// tests then pin the properties that make each one itself (star hop counts,
// fat-tree ECMP rotation, torus dimension-order routing, dragonfly's
// bounded diameter).
#include "net/topology_api.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace gputn::net {
namespace {

std::unique_ptr<Topology> make(const std::string& spec, int nodes = 2) {
  return TopologyFactory::instance().make(spec, nodes);
}

const char* kAllSpecs[] = {
    "star",
    "fat-tree:k=4",
    "torus:3x4",
    "torus:2x2x2",
    "dragonfly:a=2,h=2,p=2",
};

TEST(TopologyContract, WiringIsSymmetric) {
  for (const char* spec : kAllSpecs) {
    auto topo = make(spec);
    for (int sw = 0; sw < topo->switch_count(); ++sw) {
      for (int port = 0; port < topo->radix(sw); ++port) {
        PortPeer p = topo->peer(sw, port);
        if (p.kind == PortPeer::Kind::kSwitch) {
          PortPeer back = topo->peer(p.index, p.port);
          EXPECT_EQ(back.kind, PortPeer::Kind::kSwitch) << spec;
          EXPECT_EQ(back.index, sw) << spec << " sw" << sw << " port" << port;
          EXPECT_EQ(back.port, port) << spec << " sw" << sw << " port" << port;
        } else if (p.kind == PortPeer::Kind::kNode) {
          HostPort h = topo->host(p.index);
          EXPECT_EQ(h.sw, sw) << spec;
          EXPECT_EQ(h.port, port) << spec;
        }
      }
    }
  }
}

TEST(TopologyContract, HostAttachmentIsBijective) {
  for (const char* spec : kAllSpecs) {
    auto topo = make(spec);
    std::set<std::pair<int, int>> seen;
    for (NodeId n = 0; n < topo->node_count(); ++n) {
      HostPort h = topo->host(n);
      ASSERT_GE(h.sw, 0) << spec;
      ASSERT_LT(h.sw, topo->switch_count()) << spec;
      ASSERT_GE(h.port, 0) << spec;
      ASSERT_LT(h.port, topo->radix(h.sw)) << spec;
      EXPECT_TRUE(seen.insert({h.sw, h.port}).second)
          << spec << ": two nodes on one port";
      PortPeer p = topo->peer(h.sw, h.port);
      EXPECT_EQ(p.kind, PortPeer::Kind::kNode) << spec;
      EXPECT_EQ(p.index, n) << spec;
    }
  }
}

TEST(TopologyContract, EveryCandidateIsMinimal) {
  // Each candidate port must strictly decrease the remaining switch-hop
  // distance — the property that makes any router choice loop-free and
  // keeps hop_count() route-independent.
  for (const char* spec : kAllSpecs) {
    auto topo = make(spec);
    std::vector<int> cand;
    for (int sw = 0; sw < topo->switch_count(); ++sw) {
      for (NodeId dst = 0; dst < topo->node_count(); ++dst) {
        int here = topo->hops_from(sw, dst);
        topo->candidates(sw, dst, cand);
        ASSERT_FALSE(cand.empty()) << spec;
        for (int c : cand) {
          ASSERT_GE(c, 0) << spec;
          ASSERT_LT(c, topo->radix(sw)) << spec;
          PortPeer p = topo->peer(sw, c);
          if (p.kind == PortPeer::Kind::kNode) {
            EXPECT_EQ(p.index, dst) << spec;
            EXPECT_EQ(here, 1) << spec;
          } else {
            ASSERT_EQ(p.kind, PortPeer::Kind::kSwitch) << spec;
            EXPECT_EQ(topo->hops_from(p.index, dst), here - 1)
                << spec << " sw" << sw << " -> " << dst << " via port " << c;
          }
        }
      }
    }
  }
}

TEST(TopologyContract, HopCountIsSymmetric) {
  for (const char* spec : kAllSpecs) {
    auto topo = make(spec);
    for (NodeId a = 0; a < topo->node_count(); ++a) {
      for (NodeId b = 0; b < topo->node_count(); ++b) {
        EXPECT_EQ(topo->hop_count(a, b), topo->hop_count(b, a)) << spec;
      }
    }
  }
}

TEST(Star, EveryRouteIsOneHop) {
  auto topo = make("star", 8);
  EXPECT_EQ(topo->switch_count(), 1);
  for (NodeId a = 0; a < 8; ++a) {
    for (NodeId b = 0; b < 8; ++b) {
      EXPECT_EQ(topo->hop_count(a, b), 1);
    }
  }
}

TEST(FatTree, HopCountsAreOneThreeFive) {
  // k=4: pods of 2 edge + 2 agg switches, 2 hosts per edge, 16 hosts.
  auto topo = make("fat-tree:k=4");
  EXPECT_EQ(topo->node_count(), 16);
  EXPECT_EQ(topo->switch_count(), 20);
  EXPECT_EQ(topo->hop_count(0, 1), 1);   // same edge switch
  EXPECT_EQ(topo->hop_count(0, 2), 3);   // same pod, different edge
  EXPECT_EQ(topo->hop_count(0, 15), 5);  // cross-pod, via a core
}

TEST(FatTree, UpCandidatesRotateByDestination) {
  // d-mod-k ECMP: at an edge switch, the first up-candidate (the
  // deterministic route) depends on the destination's leaf index, so
  // distinct destinations spread across up-links.
  auto topo = make("fat-tree:k=4");
  // Node 8 (pod 2, leaf 0) and node 9 (pod 2, leaf 1) from edge switch 0.
  int p8 = topo->deterministic_port(0, 8);
  int p9 = topo->deterministic_port(0, 9);
  EXPECT_NE(p8, p9);
  EXPECT_GE(p8, 2);  // both are up-ports [k/2, k)
  EXPECT_GE(p9, 2);
  // And every up-port is offered as an adaptive alternative.
  std::vector<int> cand;
  topo->candidates(0, 8, cand);
  EXPECT_EQ(cand.size(), 2u);
}

TEST(Torus, HopCountIsWrapDistancePlusOne) {
  auto topo = make("torus:3x4");
  // Node ids are x + 3*y. hops = manhattan distance with wraparound + 1
  // (the destination's own switch counts).
  auto hops = [&](int ax, int ay, int bx, int by) {
    int dx = std::min((bx - ax + 3) % 3, (ax - bx + 3) % 3);
    int dy = std::min((by - ay + 4) % 4, (ay - by + 4) % 4);
    return dx + dy + 1;
  };
  for (int ax = 0; ax < 3; ++ax) {
    for (int ay = 0; ay < 4; ++ay) {
      for (int bx = 0; bx < 3; ++bx) {
        for (int by = 0; by < 4; ++by) {
          EXPECT_EQ(topo->hop_count(ax + 3 * ay, bx + 3 * by),
                    hops(ax, ay, bx, by))
              << ax << "," << ay << " -> " << bx << "," << by;
        }
      }
    }
  }
}

TEST(Torus, DeterministicRouteIsDimensionOrder) {
  // From (0,0) to (2,2) on 3x3: dim 0 first (wrap via -1 is shorter than
  // +2), then dim 1. Walk the deterministic route and record the dimension
  // of every inter-switch hop.
  auto topo = make("torus:3x3");
  NodeId dst = 2 + 3 * 2;  // (2,2) = 8
  int sw = topo->host(0).sw;
  std::vector<int> dims_taken;
  while (true) {
    int port = topo->deterministic_port(sw, dst);
    PortPeer p = topo->peer(sw, port);
    if (p.kind == PortPeer::Kind::kNode) break;
    dims_taken.push_back((port - 1) / 2);
    sw = p.index;
  }
  ASSERT_EQ(dims_taken.size(), 2u);  // one wrap step per dimension
  EXPECT_EQ(dims_taken[0], 0);       // x fully resolved before y
  EXPECT_EQ(dims_taken[1], 1);
}

TEST(Torus, AdaptiveCandidatesCoverEveryUnresolvedDimension) {
  auto topo = make("torus:3x3");
  std::vector<int> cand;
  // (0,0) -> (1,1): both dimensions differ, both +1 steps.
  topo->candidates(0, 1 + 3 * 1, cand);
  ASSERT_EQ(cand.size(), 2u);
  EXPECT_EQ(cand[0], 1);  // dim 0, + direction
  EXPECT_EQ(cand[1], 3);  // dim 1, + direction
}

TEST(Dragonfly, DiameterIsFourSwitches) {
  auto topo = make("dragonfly:a=2,h=2,p=2");
  EXPECT_EQ(topo->node_count(), 20);  // 5 groups x 2 routers x 2 hosts
  EXPECT_EQ(topo->switch_count(), 10);
  int max_hops = 0;
  for (NodeId a = 0; a < topo->node_count(); ++a) {
    for (NodeId b = 0; b < topo->node_count(); ++b) {
      max_hops = std::max(max_hops, topo->hop_count(a, b));
    }
  }
  EXPECT_LE(max_hops, 4);  // router, gateway, remote gateway, dest router
  EXPECT_GE(max_hops, 3);  // some pair genuinely crosses groups indirectly
}

TEST(TopologyFactory, RejectsUnknownKindsAndBadSpecs) {
  auto& f = TopologyFactory::instance();
  EXPECT_THROW(f.make("moebius", 2), std::invalid_argument);
  EXPECT_THROW(f.make("fat-tree:k=3", 2), std::invalid_argument);   // odd k
  EXPECT_THROW(f.make("fat-tree:k=zap", 2), std::invalid_argument);
  EXPECT_THROW(f.make("torus", 2), std::invalid_argument);          // no dims
  EXPECT_THROW(f.make("torus:4", 2), std::invalid_argument);        // 1-D
  EXPECT_THROW(f.make("torus:4x0", 2), std::invalid_argument);
  EXPECT_THROW(f.make("", 2), std::invalid_argument);
}

TEST(TopologyFactory, RejectsInsufficientCapacity) {
  // fat-tree:k=2 hosts exactly 2 nodes; torus:2x2 hosts 4.
  EXPECT_THROW(make("fat-tree:k=2", 4), std::invalid_argument);
  EXPECT_THROW(make("torus:2x2", 5), std::invalid_argument);
  EXPECT_NO_THROW(make("torus:2x2", 4));
  // Partial attachment is fine: unused host slots stay idle.
  EXPECT_NO_THROW(make("fat-tree:k=8", 3));
}

TEST(TopologySpec, ParsesParamsAndBareTokens) {
  TopologySpec s = TopologySpec::parse("fat-tree:k=8");
  EXPECT_EQ(s.kind, "fat-tree");
  EXPECT_EQ(s.get_int("k", 0, 0, 100), 8);
  TopologySpec t = TopologySpec::parse("torus:4x4x4");
  EXPECT_EQ(t.kind, "torus");
  EXPECT_EQ(t.get("", ""), "4x4x4");  // bare token lands under ""
  TopologySpec d = TopologySpec::parse("dragonfly:a=4,h=2,p=2");
  EXPECT_EQ(d.get_int("a", 0, 0, 100), 4);
  EXPECT_EQ(d.get_int("h", 0, 0, 100), 2);
  EXPECT_EQ(d.get_int("p", 0, 0, 100), 2);
}

TEST(TopologyFactory, NamesRoundTripThroughTheFactory) {
  // name() is the canonical spec: building from it again yields the same
  // shape (what describe() prints must be reproducible).
  for (const char* spec : kAllSpecs) {
    auto a = make(spec);
    auto b = make(a->name(), 2);
    EXPECT_EQ(b->name(), a->name());
    EXPECT_EQ(b->node_count(), a->node_count());
    EXPECT_EQ(b->switch_count(), a->switch_count());
  }
}

}  // namespace
}  // namespace gputn::net

#include "rt/collectives.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace gputn::rt {
namespace {

TEST(RingPlan, StepCountAndPhases) {
  RingAllreducePlan plan(0, 8, 1024);
  EXPECT_EQ(plan.num_steps(), 14);
  for (int s = 0; s < 7; ++s) EXPECT_TRUE(plan.steps()[s].reduce);
  for (int s = 7; s < 14; ++s) EXPECT_FALSE(plan.steps()[s].reduce);
}

TEST(RingPlan, NeighborsFormARing) {
  const int n = 5;
  for (int r = 0; r < n; ++r) {
    RingAllreducePlan plan(r, n, 100);
    for (const auto& st : plan.steps()) {
      EXPECT_EQ(st.to, (r + 1) % n);
      EXPECT_EQ(st.from, (r + n - 1) % n);
    }
  }
}

TEST(RingPlan, ChunkPartitionCoversVector) {
  RingAllreducePlan plan(0, 7, 1000);  // 1000 / 7 leaves a remainder
  std::size_t total = 0;
  for (int c = 0; c < 7; ++c) {
    EXPECT_EQ(plan.chunk_offset(c), total);
    total += plan.chunk_elems(c);
  }
  EXPECT_EQ(total, 1000u);
  EXPECT_GE(plan.max_chunk_elems(), plan.chunk_elems(0));
}

TEST(RingPlan, SendMatchesPeerRecvEveryStep) {
  // What rank r sends at step s must be what rank r+1 expects to receive.
  const int n = 6;
  std::vector<RingAllreducePlan> plans;
  for (int r = 0; r < n; ++r) plans.emplace_back(r, n, 600);
  for (int s = 0; s < plans[0].num_steps(); ++s) {
    for (int r = 0; r < n; ++r) {
      const auto& mine = plans[r].steps()[s];
      const auto& peers = plans[(r + 1) % n].steps()[s];
      EXPECT_EQ(mine.send_chunk, peers.recv_chunk)
          << "rank " << r << " step " << s;
    }
  }
}

// Dataflow simulation of the plan: after executing all steps functionally,
// every rank must hold the full reduction. This is a pure-algorithm check,
// independent of the simulator.
class RingDataflow : public ::testing::TestWithParam<int> {};

TEST_P(RingDataflow, ProducesFullReductionOnAllRanks) {
  const int n = GetParam();
  const std::size_t elems = 120;
  std::vector<RingAllreducePlan> plans;
  std::vector<std::vector<double>> data(n, std::vector<double>(elems));
  for (int r = 0; r < n; ++r) {
    plans.emplace_back(r, n, elems);
    for (std::size_t i = 0; i < elems; ++i) {
      data[r][i] = r * 100.0 + static_cast<double>(i);
    }
  }
  std::vector<double> expected(elems, 0.0);
  for (int r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < elems; ++i) expected[i] += data[r][i];
  }

  // Execute step-synchronously: all ranks perform step s, then s+1.
  for (int s = 0; s < plans[0].num_steps(); ++s) {
    // Snapshot sends first (simultaneous exchange).
    std::vector<std::vector<double>> in_flight(n);
    for (int r = 0; r < n; ++r) {
      const auto& st = plans[r].steps()[s];
      std::size_t off = plans[r].chunk_offset(st.send_chunk);
      std::size_t cnt = plans[r].chunk_elems(st.send_chunk);
      in_flight[st.to].assign(data[r].begin() + off,
                              data[r].begin() + off + cnt);
    }
    for (int r = 0; r < n; ++r) {
      const auto& st = plans[r].steps()[s];
      std::size_t off = plans[r].chunk_offset(st.recv_chunk);
      std::size_t cnt = plans[r].chunk_elems(st.recv_chunk);
      ASSERT_EQ(in_flight[r].size(), cnt);
      for (std::size_t i = 0; i < cnt; ++i) {
        if (st.reduce) {
          data[r][off + i] += in_flight[r][i];
        } else {
          data[r][off + i] = in_flight[r][i];
        }
      }
    }
  }
  for (int r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < elems; ++i) {
      ASSERT_DOUBLE_EQ(data[r][i], expected[i]) << "rank " << r << " i " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Rings, RingDataflow,
                         ::testing::Values(2, 3, 4, 5, 8, 16, 32));

TEST(RingPlan, RejectsBadArguments) {
  EXPECT_THROW(RingAllreducePlan(0, 1, 100), std::invalid_argument);
  EXPECT_THROW(RingAllreducePlan(5, 4, 100), std::invalid_argument);
  EXPECT_THROW(RingAllreducePlan(0, 8, 4), std::invalid_argument);
}

TEST(Schedule, MirrorsThePlan) {
  RingAllreducePlan plan(2, 4, 400);
  CollSchedule sched = build_ring_allreduce_schedule(plan);
  ASSERT_EQ(sched.rounds.size(), 6u);
  for (std::size_t i = 0; i < sched.rounds.size(); ++i) {
    const auto& round = sched.rounds[i];
    const auto& step = plan.steps()[i];
    ASSERT_EQ(round.sends.size(), 1u);
    ASSERT_EQ(round.recvs.size(), 1u);
    EXPECT_EQ(round.sends[0].peer, step.to);
    EXPECT_EQ(round.sends[0].chunk, step.send_chunk);
    EXPECT_EQ(round.recvs[0].chunk, step.recv_chunk);
    EXPECT_EQ(round.reduces.size(), step.reduce ? 1u : 0u);
  }
}

}  // namespace
}  // namespace gputn::rt

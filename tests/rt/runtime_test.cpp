// Unit tests for the per-node runtime facade (rt::NodeRuntime).
#include "rt/runtime.hpp"

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "sim/sync.hpp"

namespace gputn::rt {
namespace {

struct Rig {
  Rig() : cluster(sim, small(), 2) {}
  static cluster::SystemConfig small() {
    auto c = cluster::SystemConfig::table2();
    c.dram_bytes = 4u << 20;
    return c;
  }
  sim::Simulator sim;
  cluster::Cluster cluster;
  cluster::Node& a() { return cluster.node(0); }
  cluster::Node& b() { return cluster.node(1); }
};

TEST(Runtime, AllocFlagIsZeroed) {
  Rig r;
  mem::Addr f = r.a().rt().alloc_flag();
  EXPECT_EQ(r.a().memory().load<std::uint64_t>(f), 0u);
}

TEST(Runtime, SendPaysStackCostBeforeDoorbell) {
  Rig r;
  mem::Addr src = r.a().memory().alloc(64);
  mem::Addr dst = r.b().memory().alloc(64);
  r.b().nic().post_recv(nic::RecvDesc{0, 1, dst, 64, 0, 1, 0});
  sim::Tick done = -1;
  r.sim.spawn(
      [](Rig& rr, mem::Addr s, sim::Tick& out) -> sim::Task<> {
        co_await rr.a().rt().send(1, 1, s, 64);
        out = rr.sim.now();
      }(r, src, done),
      "sender");
  r.sim.run();
  // send returns at local completion: at least the stack cost plus
  // doorbell + command + DMA.
  EXPECT_GE(done, r.a().cpu().config().send_stack_cost);
}

TEST(Runtime, PutBlocksUntilLocalCompletion) {
  Rig r;
  mem::Addr src = r.a().memory().alloc(4096);
  mem::Addr dst = r.b().memory().alloc(4096);
  sim::Tick put_done = -1;
  r.sim.spawn(
      [](Rig& rr, mem::Addr s, mem::Addr d, sim::Tick& out) -> sim::Task<> {
        nic::PutDesc put;
        put.target = 1;
        put.local_addr = s;
        put.bytes = 4096;
        put.remote_addr = d;
        co_await rr.a().rt().put(put);
        out = rr.sim.now();
      }(r, src, dst, put_done),
      "putter");
  r.sim.run();
  EXPECT_GT(put_done, 0);
  // put() returned no later than the overall end (local completion strictly
  // precedes remote delivery, which the sim still had to finish).
  EXPECT_LE(put_done, r.sim.now());
}

TEST(Runtime, PutNbReturnsBeforeDelivery) {
  Rig r;
  mem::Addr src = r.a().memory().alloc(4096);
  mem::Addr dst = r.b().memory().alloc(4096);
  mem::Addr rflag = r.b().rt().alloc_flag();
  sim::Tick nb_done = -1;
  r.sim.spawn(
      [](Rig& rr, mem::Addr s, mem::Addr d, mem::Addr rf,
         sim::Tick& out) -> sim::Task<> {
        nic::PutDesc put;
        put.target = 1;
        put.local_addr = s;
        put.bytes = 4096;
        put.remote_addr = d;
        put.remote_flag = rf;
        co_await rr.a().rt().put_nb(put);
        out = rr.sim.now();
      }(r, src, dst, rflag, nb_done),
      "putter");
  r.sim.run();
  EXPECT_LT(nb_done, r.sim.now()) << "non-blocking post returns early";
  EXPECT_EQ(r.b().memory().load<std::uint64_t>(rflag), 1u);
}

TEST(Runtime, TrigPutRegistrationIsDelayedByDoorbell) {
  Rig r;
  mem::Addr src = r.a().memory().alloc(64);
  mem::Addr dst = r.b().memory().alloc(64);
  r.sim.spawn(
      [](Rig& rr, mem::Addr s, mem::Addr d) -> sim::Task<> {
        nic::PutDesc put;
        put.target = 1;
        put.local_addr = s;
        put.bytes = 64;
        put.remote_addr = d;
        co_await rr.a().rt().trig_put(7, 1, put);
        // Immediately after trig_put returns the registration write may
        // still be in flight (doorbell latency).
      }(r, src, dst),
      "host");
  r.sim.run_until(r.a().cpu().config().post_cost);
  EXPECT_EQ(r.a().triggered().table().total_ops(), 0)
      << "registration still in flight";
  r.sim.run();
  EXPECT_EQ(r.a().triggered().table().total_ops(), 1);
}

TEST(Runtime, GdsStreamWaitBlocksStream) {
  Rig r;
  mem::Addr flag = r.a().rt().alloc_flag();
  r.a().rt().gds_stream_wait(flag, 1);
  auto rec = r.a().gpu().enqueue_kernel(gpu::KernelDesc{"after", 1, 64, nullptr});
  r.sim.run_until(sim::us(50));
  EXPECT_FALSE(rec->done.triggered()) << "kernel must wait behind the wait op";
  r.a().memory().store<std::uint64_t>(flag, 1);
  r.sim.run();
  EXPECT_TRUE(rec->done.triggered());
}

TEST(Runtime, LaunchSyncCompletesAfterKernel) {
  Rig r;
  bool kernel_ran = false;
  sim::Tick host_resumed = -1;
  r.sim.spawn(
      [](Rig& rr, bool& ran, sim::Tick& out) -> sim::Task<> {
        gpu::KernelDesc k;
        k.num_wgs = 1;
        k.fn = [&ran](gpu::WorkGroupCtx& ctx) -> sim::Task<> {
          ran = true;
          co_await ctx.compute(sim::ns(100));
        };
        co_await rr.a().rt().launch_sync(std::move(k));
        out = rr.sim.now();
      }(r, kernel_ran, host_resumed),
      "host");
  r.sim.run();
  EXPECT_TRUE(kernel_ran);
  // launch enqueue + 1.5us launch + 0.1us body + 1.5us teardown + detection
  EXPECT_GE(host_resumed, sim::us(3.1));
}

TEST(Runtime, StagingSendsCostMoreThanZeroCopy) {
  auto run_send = [](bool staging) {
    Rig r;
    mem::Addr src = r.a().memory().alloc(16384);
    mem::Addr dst = r.b().memory().alloc(16384);
    r.b().nic().post_recv(nic::RecvDesc{0, 1, dst, 16384, 0, 1, 0});
    sim::Tick done = -1;
    r.sim.spawn(
        [](Rig& rr, mem::Addr s, bool staging, sim::Tick& out) -> sim::Task<> {
          co_await rr.a().rt().send(1, 1, s, 16384, staging);
          out = rr.sim.now();
        }(r, src, staging, done),
        "sender");
    r.sim.run();
    return done;
  };
  EXPECT_GT(run_send(true), run_send(false));
}

}  // namespace
}  // namespace gputn::rt

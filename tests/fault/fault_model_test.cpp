#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gputn::fault {
namespace {

net::Packet dummy_packet() {
  net::Packet p;
  p.wire_bytes = 128;
  return p;
}

/// Classify `n` packets and record each verdict as a compact signature.
std::vector<int> verdict_signature(LinkFaultInjector& inj, int n) {
  std::vector<int> sig;
  sig.reserve(n);
  for (int i = 0; i < n; ++i) {
    net::Packet p = dummy_packet();
    net::FaultVerdict v = inj.classify(p);
    sig.push_back((v.drop ? 1 : 0) | (v.corrupt ? 2 : 0) |
                  (v.extra_delay > 0 ? 4 : 0));
  }
  return sig;
}

TEST(FaultModel, DisabledByDefault) {
  FaultConfig c;
  EXPECT_FALSE(c.enabled());
  c.default_profile.loss_rate = 0.0;
  EXPECT_FALSE(c.enabled());
}

TEST(FaultModel, EnabledByAnyFaultSource) {
  FaultConfig loss;
  loss.default_profile.loss_rate = 0.01;
  EXPECT_TRUE(loss.enabled());

  FaultConfig per_link;
  per_link.per_link["up3"].corrupt_rate = 0.5;
  EXPECT_TRUE(per_link.enabled());

  FaultConfig scripted;
  scripted.script.push_back({"up0", 0, FaultKind::kDrop, 0});
  EXPECT_TRUE(scripted.enabled());

  FaultConfig jitter;
  jitter.default_profile.jitter_max = sim::ns(50);
  EXPECT_TRUE(jitter.enabled());
}

TEST(FaultModel, SameSeedSameLinkSameVerdicts) {
  FaultConfig c;
  c.seed = 99;
  c.default_profile.loss_rate = 0.2;
  c.default_profile.corrupt_rate = 0.1;
  c.default_profile.jitter_max = sim::ns(100);
  FaultModel a(c);
  FaultModel b(c);
  EXPECT_EQ(verdict_signature(*a.injector_for("up0"), 500),
            verdict_signature(*b.injector_for("up0"), 500));
}

TEST(FaultModel, DifferentLinksGetIndependentStreams) {
  FaultConfig c;
  c.seed = 7;
  c.default_profile.loss_rate = 0.5;
  FaultModel m(c);
  auto sig_up = verdict_signature(*m.injector_for("up0"), 200);
  auto sig_down = verdict_signature(*m.injector_for("down0"), 200);
  EXPECT_NE(sig_up, sig_down);  // astronomically unlikely to collide
}

TEST(FaultModel, VerdictsIndependentOfOtherLinksTraffic) {
  FaultConfig c;
  c.seed = 13;
  c.default_profile.loss_rate = 0.3;
  c.default_profile.jitter_max = sim::ns(80);

  // Model A: only up0 carries traffic. Model B: up1 sees 1000 packets
  // first. up0's fault stream must be identical either way.
  FaultModel a(c);
  FaultModel b(c);
  verdict_signature(*b.injector_for("up1"), 1000);
  EXPECT_EQ(verdict_signature(*a.injector_for("up0"), 300),
            verdict_signature(*b.injector_for("up0"), 300));
}

TEST(FaultModel, ScriptedDropHitsExactPacket) {
  FaultConfig c;  // no probabilistic faults
  c.script.push_back({"up2", 3, FaultKind::kDrop, 0});
  FaultModel m(c);
  auto* inj = m.injector_for("up2");
  for (int i = 0; i < 10; ++i) {
    net::Packet p = dummy_packet();
    net::FaultVerdict v = inj->classify(p);
    EXPECT_EQ(v.drop, i == 3) << "packet " << i;
    EXPECT_FALSE(v.corrupt);
    EXPECT_EQ(v.extra_delay, 0);
  }
  // Scripted faults are per-link: another link is untouched.
  auto* other = m.injector_for("up0");
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(other->classify(dummy_packet()).drop);
  }
}

TEST(FaultModel, ScriptedCorruptAndDelayCompose) {
  FaultConfig c;
  c.script.push_back({"down1", 2, FaultKind::kCorrupt, 0});
  c.script.push_back({"down1", 2, FaultKind::kDelay, sim::us(5)});
  FaultModel m(c);
  auto* inj = m.injector_for("down1");
  inj->classify(dummy_packet());
  inj->classify(dummy_packet());
  net::FaultVerdict v = inj->classify(dummy_packet());
  EXPECT_TRUE(v.corrupt);
  EXPECT_EQ(v.extra_delay, sim::us(5));
  EXPECT_FALSE(v.drop);
}

TEST(FaultModel, DropShortCircuitsCorruptAndDelay) {
  FaultConfig c;
  c.script.push_back({"up0", 0, FaultKind::kDrop, 0});
  c.script.push_back({"up0", 0, FaultKind::kCorrupt, 0});
  c.script.push_back({"up0", 0, FaultKind::kDelay, sim::us(1)});
  FaultModel m(c);
  net::Packet p = dummy_packet();
  net::FaultVerdict v = m.injector_for("up0")->classify(p);
  EXPECT_TRUE(v.drop);
  EXPECT_FALSE(v.corrupt);
  EXPECT_EQ(v.extra_delay, 0);
}

TEST(FaultModel, LossRateIsApproximatelyHonoured) {
  FaultConfig c;
  c.seed = 4242;
  c.default_profile.loss_rate = 0.1;
  FaultModel m(c);
  auto* inj = m.injector_for("up0");
  int drops = 0;
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (inj->classify(dummy_packet()).drop) ++drops;
  }
  double rate = static_cast<double>(drops) / kN;
  EXPECT_NEAR(rate, 0.1, 0.01);
  EXPECT_EQ(m.stats().counter_value("fault.drops"),
            static_cast<std::uint64_t>(drops));
  EXPECT_EQ(m.stats().counter_value("fault.up0.drops"),
            static_cast<std::uint64_t>(drops));
}

TEST(FaultModel, PerLinkProfileOverridesDefault) {
  FaultConfig c;
  c.default_profile.loss_rate = 1.0;  // everything drops...
  c.per_link["up1"] = LinkFaultProfile{};  // ...except on up1
  FaultModel m(c);
  EXPECT_TRUE(m.injector_for("up0")->classify(dummy_packet()).drop);
  EXPECT_FALSE(m.injector_for("up1")->classify(dummy_packet()).drop);
}

TEST(FaultModel, JitterWithinConfiguredBounds) {
  FaultConfig c;
  c.default_profile.jitter_min = sim::ns(10);
  c.default_profile.jitter_max = sim::ns(200);
  FaultModel m(c);
  auto* inj = m.injector_for("up0");
  for (int i = 0; i < 1000; ++i) {
    net::FaultVerdict v = inj->classify(dummy_packet());
    EXPECT_GE(v.extra_delay, sim::ns(10));
    EXPECT_LE(v.extra_delay, sim::ns(200));
  }
  EXPECT_EQ(m.stats().counter_value("fault.delays"), 1000u);
}

TEST(FaultModel, ExportStatsMergesCounters) {
  FaultConfig c;
  c.script.push_back({"up0", 0, FaultKind::kDrop, 0});
  FaultModel m(c);
  m.injector_for("up0")->classify(dummy_packet());
  sim::StatRegistry reg;
  reg.counter("fault.drops") = 5;  // pre-existing value is added to
  m.export_stats(reg);
  EXPECT_EQ(reg.counter_value("fault.drops"), 6u);
  EXPECT_EQ(reg.counter_value("fault.up0.drops"), 1u);
}

}  // namespace
}  // namespace gputn::fault

// End-to-end acceptance tests: the paper's workloads run to completion with
// bit-correct results while every link drops packets, and a lossless
// configuration pays zero protocol overhead.
#include <gtest/gtest.h>

#include "workloads/allreduce.hpp"
#include "workloads/broadcast.hpp"
#include "workloads/jacobi.hpp"

namespace gputn::workloads {
namespace {

TEST(WorkloadsUnderLoss, GpuTnAllreduceSurvivesOnePercentLoss) {
  AllreduceConfig cfg;
  cfg.strategy = Strategy::kGpuTn;
  cfg.nodes = 4;
  cfg.elements = 128 * 1024;  // 512 KiB vector
  auto sys = cluster::SystemConfig::table2_with_loss(0.01, /*seed=*/42);
  AllreduceResult res = run_allreduce(cfg, sys);
  EXPECT_TRUE(res.correct) << "max_error=" << res.max_error;
  EXPECT_GT(res.net_stats.counter_value("fault.drops"), 0u);
  EXPECT_GT(res.net_stats.counter_value("rel.retransmits"), 0u);
  EXPECT_GT(res.net_stats.counter_value("rel.acks_tx"), 0u);
  EXPECT_GT(res.net_stats.counter_value("net.link.drops"), 0u);
}

TEST(WorkloadsUnderLoss, CpuAllreduceSurvivesOnePercentLoss) {
  AllreduceConfig cfg;
  cfg.strategy = Strategy::kCpu;
  cfg.nodes = 4;
  cfg.elements = 64 * 1024;
  auto sys = cluster::SystemConfig::table2_with_loss(0.01, /*seed=*/7);
  AllreduceResult res = run_allreduce(cfg, sys);
  EXPECT_TRUE(res.correct) << "max_error=" << res.max_error;
  EXPECT_GT(res.net_stats.counter_value("rel.retransmits"), 0u);
}

TEST(WorkloadsUnderLoss, BroadcastSurvivesOnePercentLoss) {
  BroadcastConfig cfg;
  cfg.drive = BroadcastDrive::kGpuTn;
  cfg.nodes = 4;
  cfg.bytes = 512 * 1024;
  cfg.chunks = 8;
  auto sys = cluster::SystemConfig::table2_with_loss(0.01, /*seed=*/11);
  BroadcastResult res = run_broadcast(cfg, sys);
  EXPECT_TRUE(res.correct);
  EXPECT_GT(res.net_stats.counter_value("fault.drops"), 0u);
  EXPECT_GT(res.net_stats.counter_value("rel.retransmits"), 0u);
}

TEST(WorkloadsUnderLoss, JacobiSurvivesLoss) {
  JacobiConfig cfg;
  cfg.strategy = Strategy::kGpuTn;
  cfg.n = 64;
  cfg.iterations = 3;
  // Halo messages are small and few; a higher rate makes sure the run
  // actually exercises retransmission (still deterministic via the seed).
  auto sys = cluster::SystemConfig::table2_with_loss(0.05, /*seed=*/5);
  JacobiResult res = run_jacobi(cfg, sys);
  EXPECT_TRUE(res.correct);
  EXPECT_GT(res.net_stats.counter_value("rel.retransmits"), 0u);
}

TEST(WorkloadsUnderLoss, CorruptionAndJitterAlsoRecovered) {
  BroadcastConfig cfg;
  cfg.drive = BroadcastDrive::kGpuTn;
  cfg.nodes = 4;
  cfg.bytes = 256 * 1024;
  cfg.chunks = 8;
  cluster::SystemConfig sys = cluster::SystemConfig::table2();
  sys.fault.seed = 23;
  sys.fault.default_profile.corrupt_rate = 0.02;
  sys.fault.default_profile.jitter_min = sim::ns(10);
  sys.fault.default_profile.jitter_max = sim::us(2);
  BroadcastResult res = run_broadcast(cfg, sys);
  EXPECT_TRUE(res.correct);
  EXPECT_GT(res.net_stats.counter_value("fault.corruptions"), 0u);
  EXPECT_GT(res.net_stats.counter_value("fault.delays"), 0u);
}

TEST(WorkloadsUnderLoss, ZeroLossRateIsExactNoOp) {
  AllreduceConfig cfg;
  cfg.strategy = Strategy::kGpuTn;
  cfg.nodes = 4;
  cfg.elements = 32 * 1024;

  AllreduceResult base = run_allreduce(cfg, cluster::SystemConfig::table2());
  AllreduceResult zero =
      run_allreduce(cfg, cluster::SystemConfig::table2_with_loss(0.0));
  ASSERT_TRUE(base.correct);
  ASSERT_TRUE(zero.correct);

  // A loss rate of zero must not enable the protocol: no sequence numbers,
  // no ACKs, not one extra message or byte on the wire, identical timing.
  EXPECT_EQ(zero.net_stats.counter_value("net.messages"),
            base.net_stats.counter_value("net.messages"));
  EXPECT_EQ(zero.net_stats.counter_value("net.bytes"),
            base.net_stats.counter_value("net.bytes"));
  EXPECT_EQ(zero.net_stats.counter_value("rel.tx_data"), 0u);
  EXPECT_EQ(zero.net_stats.counter_value("rel.acks_tx"), 0u);
  EXPECT_EQ(zero.net_stats.counter_value("fault.drops"), 0u);
  EXPECT_EQ(zero.total_time, base.total_time);
}

}  // namespace
}  // namespace gputn::workloads

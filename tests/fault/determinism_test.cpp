// Regression guard: fault injection must not break the simulator's
// determinism. The same seed and configuration produce byte-identical
// statistics (and identical finish times) run after run.
#include <gtest/gtest.h>

#include "workloads/allreduce.hpp"
#include "workloads/broadcast.hpp"

namespace gputn::workloads {
namespace {

TEST(FaultDeterminism, BroadcastUnderLossIsByteIdenticalAcrossRuns) {
  BroadcastConfig cfg;
  cfg.drive = BroadcastDrive::kGpuTn;
  cfg.nodes = 4;
  cfg.bytes = 256 * 1024;
  cfg.chunks = 8;
  auto sys = cluster::SystemConfig::table2_with_loss(0.02, /*seed=*/99);

  BroadcastResult a = run_broadcast(cfg, sys);
  BroadcastResult b = run_broadcast(cfg, sys);
  ASSERT_TRUE(a.correct);
  ASSERT_TRUE(b.correct);
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.net_stats.to_string(), b.net_stats.to_string());
  // The runs really did inject faults (the comparison is not vacuous).
  EXPECT_GT(a.net_stats.counter_value("fault.drops"), 0u);
}

TEST(FaultDeterminism, AllreduceUnderLossIsByteIdenticalAcrossRuns) {
  AllreduceConfig cfg;
  cfg.strategy = Strategy::kGpuTn;
  cfg.nodes = 4;
  cfg.elements = 64 * 1024;
  auto sys = cluster::SystemConfig::table2_with_loss(0.01, /*seed=*/1234);

  AllreduceResult a = run_allreduce(cfg, sys);
  AllreduceResult b = run_allreduce(cfg, sys);
  ASSERT_TRUE(a.correct);
  ASSERT_TRUE(b.correct);
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.net_stats.to_string(), b.net_stats.to_string());
}

TEST(FaultDeterminism, DifferentSeedsGiveDifferentFaultPatterns) {
  BroadcastConfig cfg;
  cfg.drive = BroadcastDrive::kGpuTn;
  cfg.nodes = 4;
  cfg.bytes = 256 * 1024;
  cfg.chunks = 8;

  BroadcastResult a =
      run_broadcast(cfg, cluster::SystemConfig::table2_with_loss(0.02, 1));
  BroadcastResult b =
      run_broadcast(cfg, cluster::SystemConfig::table2_with_loss(0.02, 2));
  ASSERT_TRUE(a.correct);
  ASSERT_TRUE(b.correct);
  // Both runs recover, but the injected fault sequences differ.
  EXPECT_NE(a.net_stats.to_string(), b.net_stats.to_string());
}

}  // namespace
}  // namespace gputn::workloads

// Protocol-level tests of the NIC reliability layer against a faulty fabric:
// two bare endpoints (no NIC protocol engine on top) exchange messages while
// scripted faults exercise specific corners of the ACK/retransmit protocol.
#include "fault/reliability.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fault/fault.hpp"
#include "sim/simulator.hpp"
#include "sim/units.hpp"

namespace gputn::fault {
namespace {

net::FabricConfig fabric_config() {
  net::FabricConfig c;
  c.bandwidth = sim::Bandwidth::gbps(100);
  c.link_latency = sim::ns(100);
  c.switch_latency = sim::ns(100);
  return c;
}

struct Endpoint final : net::MessageSink {
  void deliver(net::Message&& m) override {
    layer->on_wire_receive(std::move(m));
  }
  std::unique_ptr<ReliabilityLayer> layer;
  std::vector<net::Message> received;
  std::vector<sim::Tick> arrival_times;
  sim::StatRegistry stats;
};

struct Harness {
  Harness(FaultConfig fc, ReliabilityConfig rc, int nodes = 2) : model(fc) {
    fabric.set_fault_injector_provider(
        [this](const std::string& n) { return model.injector_for(n); });
    for (int i = 0; i < nodes; ++i) {
      eps.push_back(std::make_unique<Endpoint>());
      Endpoint* ep = eps.back().get();
      net::NodeId id = fabric.add_node(ep);
      ep->layer = std::make_unique<ReliabilityLayer>(
          sim, fabric, id, rc, ep->stats, [this, ep](net::Message&& m) {
            ep->arrival_times.push_back(sim.now());
            ep->received.push_back(std::move(m));
          });
    }
  }

  net::Message make_msg(int src, int dst, std::uint64_t marker,
                        std::size_t bytes = 256) {
    net::Message m;
    m.src = src;
    m.dst = dst;
    m.kind = 1;
    m.h0 = marker;
    m.payload.assign(bytes, static_cast<std::byte>(marker & 0xff));
    return m;
  }

  sim::Simulator sim;
  net::Fabric fabric{sim, fabric_config()};
  FaultModel model;
  std::vector<std::unique_ptr<Endpoint>> eps;
};

ReliabilityConfig enabled_config() {
  ReliabilityConfig rc;
  rc.enabled = true;
  return rc;
}

TEST(Reliability, LosslessDeliversInOrderWithNoRetransmits) {
  Harness h(FaultConfig{}, enabled_config());
  for (int i = 0; i < 8; ++i) h.eps[0]->layer->send(h.make_msg(0, 1, i));
  h.sim.run();
  ASSERT_EQ(h.eps[1]->received.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(h.eps[1]->received[i].h0, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(h.eps[0]->stats.counter_value("rel.retransmits"), 0u);
  EXPECT_EQ(h.eps[0]->layer->unacked(), 0u);
}

TEST(Reliability, ScriptedDropIsRecoveredByRetransmit) {
  FaultConfig fc;
  fc.script.push_back({"up0", 0, FaultKind::kDrop, 0});  // first data packet
  Harness h(fc, enabled_config());
  h.eps[0]->layer->send(h.make_msg(0, 1, 77));
  h.sim.run();
  ASSERT_EQ(h.eps[1]->received.size(), 1u);
  EXPECT_EQ(h.eps[1]->received[0].h0, 77u);
  EXPECT_EQ(h.eps[1]->received[0].payload.size(), 256u);
  EXPECT_EQ(h.eps[1]->received[0].payload[0], static_cast<std::byte>(77));
  EXPECT_GE(h.eps[0]->stats.counter_value("rel.retransmits"), 1u);
  EXPECT_EQ(h.model.stats().counter_value("fault.drops"), 1u);
  EXPECT_EQ(h.eps[0]->layer->unacked(), 0u);
}

TEST(Reliability, LostAckCausesDuplicateWhichIsSuppressed) {
  FaultConfig fc;
  // The receiver's ACK travels up1 -> down0; dropping the first packet on
  // up1 kills the ACK, the sender times out and retransmits, and the
  // receiver must suppress the duplicate yet re-ACK it.
  fc.script.push_back({"up1", 0, FaultKind::kDrop, 0});
  Harness h(fc, enabled_config());
  h.eps[0]->layer->send(h.make_msg(0, 1, 5));
  h.sim.run();
  ASSERT_EQ(h.eps[1]->received.size(), 1u);  // exactly once
  EXPECT_GE(h.eps[0]->stats.counter_value("rel.retransmits"), 1u);
  EXPECT_GE(h.eps[1]->stats.counter_value("rel.dup_dropped"), 1u);
  EXPECT_EQ(h.eps[0]->layer->unacked(), 0u);  // the re-ACK drained the window
}

TEST(Reliability, CorruptionTriggersNackFastRetransmit) {
  FaultConfig fc;
  fc.script.push_back({"up0", 0, FaultKind::kCorrupt, 0});
  Harness h(fc, enabled_config());
  h.eps[0]->layer->send(h.make_msg(0, 1, 9));
  h.sim.run();
  ASSERT_EQ(h.eps[1]->received.size(), 1u);
  EXPECT_EQ(h.eps[1]->received[0].h0, 9u);
  EXPECT_FALSE(h.eps[1]->received[0].corrupted);
  EXPECT_GE(h.eps[1]->stats.counter_value("rel.nacks_tx"), 1u);
  EXPECT_GE(h.eps[0]->stats.counter_value("rel.nacks_rx"), 1u);
  EXPECT_GE(h.eps[0]->stats.counter_value("rel.retransmits"), 1u);
  // The NACK short-circuits the timeout: the retransmission is delivered
  // much sooner than the 100 us base RTO (one extra RTT, ~1 us here).
  // (The run's final sim time is later — a stale, epoch-invalidated backoff
  // timer still pops as a no-op — so assert on the delivery timestamp.)
  EXPECT_LT(h.eps[1]->arrival_times.at(0), sim::us(100));
}

TEST(Reliability, JitterReorderingIsHealedAtReceiver) {
  FaultConfig fc;
  // Delay only the first message's packet well past the second message's
  // arrival; the receiver must park seq 1 and deliver 0, 1 in order.
  fc.script.push_back({"up0", 0, FaultKind::kDelay, sim::us(5)});
  Harness h(fc, enabled_config());
  h.eps[0]->layer->send(h.make_msg(0, 1, 0));
  h.eps[0]->layer->send(h.make_msg(0, 1, 1));
  h.sim.run();
  ASSERT_EQ(h.eps[1]->received.size(), 2u);
  EXPECT_EQ(h.eps[1]->received[0].h0, 0u);
  EXPECT_EQ(h.eps[1]->received[1].h0, 1u);
  EXPECT_GE(h.eps[1]->stats.counter_value("rel.reorder_buffered"), 1u);
  EXPECT_EQ(h.eps[0]->stats.counter_value("rel.retransmits"), 0u);
}

TEST(Reliability, HeavyLossStillDeliversEverythingInOrder) {
  FaultConfig fc;
  fc.seed = 3;
  fc.default_profile.loss_rate = 0.2;
  Harness h(fc, enabled_config());
  const int kMsgs = 50;
  for (int i = 0; i < kMsgs; ++i) h.eps[0]->layer->send(h.make_msg(0, 1, i));
  h.sim.run();
  ASSERT_EQ(h.eps[1]->received.size(), static_cast<std::size_t>(kMsgs));
  for (int i = 0; i < kMsgs; ++i) {
    EXPECT_EQ(h.eps[1]->received[i].h0, static_cast<std::uint64_t>(i));
  }
  EXPECT_GT(h.eps[0]->stats.counter_value("rel.retransmits"), 0u);
  EXPECT_EQ(h.eps[0]->layer->unacked(), 0u);
}

TEST(Reliability, DisabledLayerIsPassThrough) {
  Harness h(FaultConfig{}, ReliabilityConfig{});  // both disabled
  h.eps[0]->layer->send(h.make_msg(0, 1, 4));
  h.sim.run();
  ASSERT_EQ(h.eps[1]->received.size(), 1u);
  // No protocol state or control traffic: one message on the wire, no
  // sequence stamp, no ACK back.
  EXPECT_FALSE(h.eps[1]->received[0].reliable);
  EXPECT_EQ(h.fabric.messages_sent(), 1u);
  EXPECT_EQ(h.eps[0]->stats.counter_value("rel.tx_data"), 0u);
  EXPECT_EQ(h.eps[1]->stats.counter_value("rel.acks_tx"), 0u);
}

TEST(Reliability, EnabledWithoutFaultsAddsOnlyAcks) {
  // Baseline wire count: disabled layer, 4 messages -> 4 on the wire.
  Harness plain(FaultConfig{}, ReliabilityConfig{});
  for (int i = 0; i < 4; ++i) plain.eps[0]->layer->send(plain.make_msg(0, 1, i));
  plain.sim.run();
  EXPECT_EQ(plain.fabric.messages_sent(), 4u);

  // Enabled layer on a lossless wire: each data message gains exactly one
  // ACK and nothing is retransmitted.
  Harness rel(FaultConfig{}, enabled_config());
  for (int i = 0; i < 4; ++i) rel.eps[0]->layer->send(rel.make_msg(0, 1, i));
  rel.sim.run();
  EXPECT_EQ(rel.fabric.messages_sent(), 8u);
  EXPECT_EQ(rel.eps[0]->stats.counter_value("rel.retransmits"), 0u);
}

TEST(Reliability, DisabledLayerDropsCorruptedMessages) {
  FaultConfig fc;
  fc.script.push_back({"up0", 0, FaultKind::kCorrupt, 0});
  Harness h(fc, ReliabilityConfig{});  // reliability off
  h.eps[0]->layer->send(h.make_msg(0, 1, 1));
  h.eps[0]->layer->send(h.make_msg(0, 1, 2));
  h.sim.run();
  // The corrupted first message is discarded like a bad-FCS frame.
  ASSERT_EQ(h.eps[1]->received.size(), 1u);
  EXPECT_EQ(h.eps[1]->received[0].h0, 2u);
  EXPECT_EQ(h.eps[1]->stats.counter_value("rel.corrupt_dropped"), 1u);
}

TEST(Reliability, PerDestinationSequencesAreIndependent) {
  Harness h(FaultConfig{}, enabled_config(), /*nodes=*/3);
  h.eps[0]->layer->send(h.make_msg(0, 1, 10));
  h.eps[0]->layer->send(h.make_msg(0, 2, 20));
  h.eps[0]->layer->send(h.make_msg(0, 1, 11));
  h.sim.run();
  ASSERT_EQ(h.eps[1]->received.size(), 2u);
  ASSERT_EQ(h.eps[2]->received.size(), 1u);
  // Each flow numbers from 0.
  EXPECT_EQ(h.eps[1]->received[0].seq, 0u);
  EXPECT_EQ(h.eps[1]->received[1].seq, 1u);
  EXPECT_EQ(h.eps[2]->received[0].seq, 0u);
}

TEST(Reliability, MultiPacketMessageSurvivesMidMessageDrop) {
  FaultConfig fc;
  // A 10000 B payload spans 3 MTU packets; drop the middle one so the
  // message (not just a packet) is lost and must be resent whole.
  fc.script.push_back({"up0", 1, FaultKind::kDrop, 0});
  Harness h(fc, enabled_config());
  h.eps[0]->layer->send(h.make_msg(0, 1, 3, /*bytes=*/10000));
  h.sim.run();
  ASSERT_EQ(h.eps[1]->received.size(), 1u);
  EXPECT_EQ(h.eps[1]->received[0].payload.size(), 10000u);
  EXPECT_GE(h.eps[0]->stats.counter_value("rel.retransmits"), 1u);
}

}  // namespace
}  // namespace gputn::fault

#include "cpu/cpu.hpp"

#include <gtest/gtest.h>

#include "mem/memory.hpp"
#include "sim/simulator.hpp"

namespace gputn::cpu {
namespace {

struct Rig {
  explicit Rig(CpuConfig cfg = CpuConfig{}) : cpu(sim, memory, cfg) {}
  sim::Simulator sim;
  mem::Memory memory{1 << 20};
  Cpu cpu;
};

TEST(Cpu, SerialFlopsMatchSingleCoreRate) {
  CpuConfig cfg;
  cfg.clock_ghz = 4.0;
  cfg.flops_per_core_per_cycle = 16.0;  // 64 flops/ns single core
  Rig r(cfg);
  r.sim.spawn(r.cpu.compute_flops_serial(64000.0), "serial");
  r.sim.run();
  EXPECT_EQ(r.sim.now(), sim::us(1));
}

TEST(Cpu, ParallelRooflineComputeBound) {
  CpuConfig cfg;
  cfg.cores = 8;
  cfg.clock_ghz = 4.0;
  cfg.flops_per_core_per_cycle = 16.0;
  cfg.parallel_efficiency = 1.0;
  cfg.mem_bandwidth = sim::Bandwidth::bytes_per_sec(1e12);  // not the limit
  Rig r(cfg);
  // 512 flops/ns aggregate.
  EXPECT_EQ(r.cpu.parallel_time(512000.0, 64), sim::us(1));
}

TEST(Cpu, ParallelRooflineMemoryBound) {
  CpuConfig cfg;
  cfg.mem_bandwidth = sim::Bandwidth::bytes_per_sec(1e9);  // 1 B/ns
  cfg.l3_tier_bytes = 0;  // force the DRAM roofline
  Rig r(cfg);
  // Tiny flops, 1 MB of traffic -> bandwidth bound: 1e6 ns.
  EXPECT_EQ(r.cpu.parallel_time(8.0, 1'000'000), sim::ms(1));
}

TEST(Cpu, ParallelEfficiencyScalesComputeTime) {
  CpuConfig full;
  full.parallel_efficiency = 1.0;
  full.mem_bandwidth = sim::Bandwidth::bytes_per_sec(1e15);
  CpuConfig half = full;
  half.parallel_efficiency = 0.5;
  Rig a(full), b(half);
  EXPECT_EQ(2 * a.cpu.parallel_time(1e6, 0), b.cpu.parallel_time(1e6, 0));
}

TEST(Cpu, WaitValuePollsUntilSet) {
  Rig r;
  mem::Addr flag = r.memory.alloc(8);
  r.memory.store<std::uint64_t>(flag, 0);
  sim::Tick done = -1;
  r.sim.spawn(
      [](Rig& rig, mem::Addr f, sim::Tick& out) -> sim::Task<> {
        co_await rig.cpu.wait_value_ge(f, 3);
        out = rig.sim.now();
      }(r, flag, done),
      "waiter");
  r.sim.schedule_at(sim::us(7), [&] { r.memory.store<std::uint64_t>(flag, 3); });
  r.sim.run();
  EXPECT_GE(done, sim::us(7));
  EXPECT_LE(done, sim::us(7) + r.cpu.config().poll_interval);
}

TEST(Cpu, WaitValueGeAcceptsLargerValues) {
  Rig r;
  mem::Addr flag = r.memory.alloc(8);
  r.memory.store<std::uint64_t>(flag, 10);
  sim::Tick done = -1;
  r.sim.spawn(
      [](Rig& rig, mem::Addr f, sim::Tick& out) -> sim::Task<> {
        co_await rig.cpu.wait_value_ge(f, 3);
        out = rig.sim.now();
      }(r, flag, done),
      "waiter");
  r.sim.run();
  EXPECT_EQ(done, 0) << "already satisfied: no polling delay";
}

}  // namespace
}  // namespace gputn::cpu

// Parallel experiment engine: determinism across job counts, failure
// isolation, and concurrent construction/teardown of per-run state.
#include <atomic>
#include <cstddef>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exp/plan.hpp"
#include "exp/runner.hpp"
#include "exp/sweeps.hpp"
#include "net/buffer_pool.hpp"
#include "workloads/jacobi.hpp"
#include "workloads/registry.hpp"

namespace gputn {
namespace {

/// A fig09 + fig10 mini-sweep: every strategy over two Jacobi grids and two
/// allreduce ring sizes — 16 full simulations, each constructing its own
/// Simulator/Cluster.
exp::Plan mini_fig_plan() {
  exp::Plan plan;
  plan.append(exp::fig09_plan({16, 32}, /*iterations=*/3));
  plan.append(exp::fig10_plan({2, 4}, /*elements=*/16 * 1024));
  return plan;
}

TEST(Runner, JobsCountBitIdentical) {
  exp::Plan plan = mini_fig_plan();
  exp::RunSummary s1 = exp::Runner(1).run(plan);
  exp::RunSummary s2 = exp::Runner(2).run(plan);
  exp::RunSummary s4 = exp::Runner(4).run(plan);

  ASSERT_EQ(s1.results.size(), plan.size());
  EXPECT_EQ(s1.failures, 0u);
  EXPECT_TRUE(s1.all_correct());

  // The determinism contract, asserted bitwise: the merged JSON — every
  // simulated time, counter, and histogram bucket of every point — is
  // byte-identical no matter how many workers executed the sweep.
  std::string j1 = exp::results_json(s1);
  EXPECT_EQ(j1, exp::results_json(s2));
  EXPECT_EQ(j1, exp::results_json(s4));

  // Results land in plan slots, never completion order.
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(s4.results[i].id, plan[i].id);
    EXPECT_EQ(s4.results[i].result.total_time, s1.results[i].result.total_time);
  }
}

TEST(Runner, MiniSweepIdsUniqueAndOrdered) {
  exp::Plan plan = exp::mini_sweep_plan();
  std::set<std::string> ids;
  for (const exp::RunPoint& p : plan.points()) {
    EXPECT_TRUE(ids.insert(p.id).second) << "duplicate run-point id " << p.id;
  }
  EXPECT_GE(plan.size(), 24u);
}

TEST(Runner, RegistryPointMatchesDirectCall) {
  workloads::Registry reg;
  workloads::register_builtin_workloads(reg);

  workloads::WorkloadParams params;
  params.set("n", "16");
  params.set("iterations", "3");
  workloads::RunOptions opts;
  opts.strategy = workloads::Strategy::kGpuTn;

  exp::Plan plan;
  plan.add_workload(reg, "jacobi/registry", "jacobi", opts, params,
                    cluster::SystemConfig::table2());
  exp::RunSummary s = exp::Runner(1).run(plan);
  ASSERT_EQ(s.failures, 0u);

  workloads::JacobiConfig cfg;
  cfg.strategy = workloads::Strategy::kGpuTn;
  cfg.n = 16;
  cfg.iterations = 3;
  workloads::JacobiResult direct = workloads::run_jacobi(cfg);

  EXPECT_EQ(s.results[0].result.total_time, direct.total_time);
  EXPECT_EQ(s.results[0].result.stats_json(), direct.stats_json());
}

TEST(Plan, UnknownWorkloadThrowsAtBuildTime) {
  workloads::Registry reg;
  exp::Plan plan;
  EXPECT_THROW(plan.add_workload(reg, "id", "no-such-workload", {}, {},
                                 cluster::SystemConfig::table2()),
               std::invalid_argument);
}

TEST(Runner, ExceptionInOnePointIsolated) {
  auto good = [](sim::Tick t) {
    return [t] {
      workloads::ResultBase r;
      r.label = "stub";
      r.total_time = t;
      r.correct = true;
      return r;
    };
  };
  exp::Plan plan;
  plan.add("good/0", good(10));
  plan.add("boom", []() -> workloads::ResultBase {
    throw std::runtime_error("injected failure");
  });
  plan.add("good/1", good(20));
  plan.add("good/2", good(30));

  exp::RunSummary s = exp::Runner(4).run(plan);
  ASSERT_EQ(s.results.size(), 4u);
  EXPECT_EQ(s.failures, 1u);
  EXPECT_FALSE(s.all_correct());

  // The failing point is reported in its own slot...
  EXPECT_FALSE(s.results[1].ok);
  EXPECT_EQ(s.results[1].error, "injected failure");
  // ...and every other point still ran to completion.
  EXPECT_TRUE(s.results[0].ok);
  EXPECT_TRUE(s.results[2].ok);
  EXPECT_TRUE(s.results[3].ok);
  EXPECT_EQ(s.results[3].result.total_time, 30);

  std::string json = exp::results_json(s);
  EXPECT_NE(json.find("\"error\": \"injected failure\""), std::string::npos);
  EXPECT_NE(json.find("\"id\": \"good/2\""), std::string::npos);
}

TEST(Runner, JobsDefaultsAndClamps) {
  EXPECT_GE(exp::Runner::hardware_jobs(), 1);
  EXPECT_EQ(exp::Runner(0).jobs(), exp::Runner::hardware_jobs());
  EXPECT_EQ(exp::Runner(3).jobs(), 3);
  // More workers than points is fine (pool is sized to the plan).
  exp::Plan plan;
  plan.add("only", [] {
    workloads::ResultBase r;
    r.correct = true;
    return r;
  });
  exp::RunSummary s = exp::Runner(16).run(plan);
  EXPECT_EQ(s.failures, 0u);
}

// net::BufferPool is per-fabric (per-run) state with no internal locking;
// the ownership rule says concurrent *instances* must be safe even though
// one instance never crosses threads. Exercise construct / traffic /
// teardown on several threads at once — meaningful under TSan/ASan, which
// the CI exp job runs.
TEST(BufferPool, ConcurrentConstructTeardown) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 100;
  std::atomic<std::uint64_t> total_hits{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&total_hits] {
      for (int round = 0; round < kRounds; ++round) {
        net::BufferPool pool;
        std::vector<std::vector<std::byte>> held;
        for (int i = 0; i < 8; ++i) {
          std::vector<std::byte> v = pool.acquire();
          v.resize(1024);
          held.push_back(std::move(v));
        }
        for (auto& v : held) pool.release(std::move(v));
        EXPECT_EQ(pool.pooled(), 8u);
        std::vector<std::byte> reused = pool.acquire();
        EXPECT_EQ(pool.hits(), 1u);
        EXPECT_GE(reused.capacity(), 1024u);
        total_hits.fetch_add(pool.hits(), std::memory_order_relaxed);
      }  // pool destroyed with buffers still pooled: teardown path
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(total_hits.load(), static_cast<std::uint64_t>(kThreads) * kRounds);
}

}  // namespace
}  // namespace gputn

// Minimal recursive-descent JSON parser for test assertions.
//
// Just enough of RFC 8259 to validate the exporters' output and walk the
// parsed structure (objects, arrays, strings, doubles, bools, null) —
// deliberately not a production parser. parse() returns nullopt on any
// syntax error, so EXPECT_TRUE(parse(text).has_value()) doubles as a
// strict validity check.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace gputn::test::json {

struct Value;
using Object = std::map<std::string, Value>;
using Array = std::vector<Value>;

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::shared_ptr<Array> array;
  std::shared_ptr<Object> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool has(const std::string& key) const {
    return is_object() && object->count(key) > 0;
  }
  const Value& at(const std::string& key) const { return object->at(key); }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  std::optional<Value> parse() {
    std::optional<Value> v = value();
    skip_ws();
    if (!v.has_value() || pos_ != s_.size()) return std::nullopt;
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(const char* word) {
    std::size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  std::optional<std::string> string_token() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) return std::nullopt;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return std::nullopt;
      char esc = s_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return std::nullopt;
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(s_[pos_ + i]))) {
              return std::nullopt;
            }
          }
          // Tests only feed ASCII escapes; decode the low byte.
          out.push_back(static_cast<char>(
              std::strtol(s_.substr(pos_, 4).c_str(), nullptr, 16)));
          pos_ += 4;
          break;
        }
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Value> value() {
    skip_ws();
    if (pos_ >= s_.size()) return std::nullopt;
    char c = s_[pos_];
    Value v;
    if (c == '{') {
      ++pos_;
      v.kind = Value::Kind::kObject;
      v.object = std::make_shared<Object>();
      skip_ws();
      if (consume('}')) return v;
      while (true) {
        std::optional<std::string> key = string_token();
        if (!key.has_value() || !consume(':')) return std::nullopt;
        std::optional<Value> member = value();
        if (!member.has_value()) return std::nullopt;
        (*v.object)[*key] = *member;
        if (consume(',')) continue;
        if (consume('}')) return v;
        return std::nullopt;
      }
    }
    if (c == '[') {
      ++pos_;
      v.kind = Value::Kind::kArray;
      v.array = std::make_shared<Array>();
      skip_ws();
      if (consume(']')) return v;
      while (true) {
        std::optional<Value> element = value();
        if (!element.has_value()) return std::nullopt;
        v.array->push_back(*element);
        if (consume(',')) continue;
        if (consume(']')) return v;
        return std::nullopt;
      }
    }
    if (c == '"') {
      std::optional<std::string> s = string_token();
      if (!s.has_value()) return std::nullopt;
      v.kind = Value::Kind::kString;
      v.string = *s;
      return v;
    }
    if (c == 't') {
      if (!literal("true")) return std::nullopt;
      v.kind = Value::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (c == 'f') {
      if (!literal("false")) return std::nullopt;
      v.kind = Value::Kind::kBool;
      return v;
    }
    if (c == 'n') {
      if (!literal("null")) return std::nullopt;
      return v;
    }
    // Number.
    std::size_t start = pos_;
    if (c == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    char* end = nullptr;
    std::string tok = s_.substr(start, pos_ - start);
    v.number = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') return std::nullopt;
    v.kind = Value::Kind::kNumber;
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

inline std::optional<Value> parse(const std::string& text) {
  return Parser(text).parse();
}

}  // namespace gputn::test::json

// Test-facing view of the shared JSON reader (sim/json.hpp).
//
// Historically this header carried its own parser copy; it is now a thin
// alias so the parser exists exactly once. The nullopt discipline is kept:
// parse() returns nullopt on any syntax error, so
// EXPECT_TRUE(parse(text).has_value()) doubles as a strict validity check.
#pragma once

#include <optional>
#include <string>

#include "sim/json.hpp"

namespace gputn::test::json {

using Value = ::gputn::sim::json::Value;
using Object = ::gputn::sim::json::Object;
using Array = ::gputn::sim::json::Array;

inline std::optional<Value> parse(const std::string& text) {
  return ::gputn::sim::json::try_parse(text);
}

}  // namespace gputn::test::json
